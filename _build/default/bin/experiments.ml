(* Run the E1-E10 validation experiments and print their tables.

   Usage: experiments [--quick] [--seed N] [ids...]
   With no ids, runs everything in order. *)

let usage () =
  prerr_endline "usage: experiments [--quick] [--seed N] [E1 E2 ...]";
  exit 2

let () =
  let quick = ref false in
  let seed = ref 1234 in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some s ->
        seed := s;
        parse rest
      | None -> usage ())
    | "--help" :: _ -> usage ()
    | id :: rest ->
      ids := id :: !ids;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let entries =
    match List.rev !ids with
    | [] -> Fn_experiments.Registry.all
    | names ->
      List.map
        (fun name ->
          match Fn_experiments.Registry.find name with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S\n" name;
            exit 2)
        names
  in
  let failures = ref 0 in
  List.iter
    (fun (e : Fn_experiments.Registry.entry) ->
      let started = Unix.gettimeofday () in
      let outcome = e.Fn_experiments.Registry.run ~quick:!quick ~seed:!seed () in
      let elapsed = Unix.gettimeofday () -. started in
      print_string (Fn_experiments.Outcome.render outcome);
      Printf.printf "  (%.1fs)\n\n" elapsed;
      if not (Fn_experiments.Outcome.all_passed outcome) then incr failures)
    entries;
  if !failures > 0 then begin
    Printf.printf "%d experiment(s) had failing checks\n" !failures;
    exit 1
  end
  else print_endline "All experiment checks passed."
