(* Regenerate the figure-shaped data series behind the E-experiments
   as CSV files (one per figure) under figures/.

   Usage: figures [--quick] [--seed N] [--outdir DIR]

   F1  gamma vs fault probability: chain graph vs base expander (E5)
   F2  chain-graph expansion vs k, with the 2/k prediction (E2)
   F3  gamma vs adversarial budget: chain-center attack vs random (E3)
   F4  sampled span vs network size for the conjecture families (E10)
   F5  bond-percolation gamma curves for the Sec 1.1 families (E8)
   F6  Prune2 survivor size/expansion vs fault probability (E6)
   F7  butterfly vs multibutterfly service vs fault rate (E13)
   F8  mesh self-embedding slowdown vs fault probability (E12) *)

open Fn_graph
open Fn_prng
open Fn_faults

let gamma g alive =
  let comps = Components.compute ~alive g in
  float_of_int (Components.largest_size comps) /. float_of_int (Graph.num_nodes g)

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let write_csv dir name table =
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Fn_stats.Table.to_csv table ^ "\n"));
  Printf.printf "wrote %s\n%!" path

let f1_gamma_vs_p rng ~quick dir =
  let base_n = if quick then 32 else 64 in
  let trials = if quick then 3 else 8 in
  let base = Fn_topology.Expander.random_regular rng ~n:base_n ~d:4 in
  let cg = Fn_topology.Chain_graph.build base ~k:32 in
  let h = cg.Fn_topology.Chain_graph.graph in
  let table = Fn_stats.Table.create [ "p"; "gamma_chain"; "gamma_expander" ] in
  List.iter
    (fun p ->
      let mc =
        mean
          (List.init trials (fun _ ->
               gamma h (Random_faults.nodes_iid rng h p).Fault_set.alive))
      in
      let mb =
        mean
          (List.init trials (fun _ ->
               gamma base (Random_faults.nodes_iid rng base p).Fault_set.alive))
      in
      Fn_stats.Table.add_float_row table (Printf.sprintf "%.4f" p) [ mc; mb ])
    (List.init 18 (fun i -> 0.01 *. float_of_int (i + 1)));
  write_csv dir "f1_gamma_vs_p.csv" table

let f2_expansion_vs_k rng ~quick dir =
  let base_n = if quick then 32 else 64 in
  let base = Fn_topology.Expander.random_regular rng ~n:base_n ~d:4 in
  let table = Fn_stats.Table.create [ "k"; "alpha"; "prediction_2_over_k" ] in
  List.iter
    (fun k ->
      let cg = Fn_topology.Chain_graph.build base ~k in
      let h = cg.Fn_topology.Chain_graph.graph in
      let alpha =
        (Fn_expansion.Estimate.run ~rng h Fn_expansion.Cut.Node).Fn_expansion.Estimate.value
      in
      Fn_stats.Table.add_float_row table (string_of_int k)
        [ alpha; 2.0 /. float_of_int k ])
    [ 2; 4; 8; 16 ];
  write_csv dir "f2_expansion_vs_k.csv" table

let f3_attack_sweep rng ~quick dir =
  let base_n = if quick then 32 else 64 in
  let base = Fn_topology.Expander.random_regular rng ~n:base_n ~d:4 in
  let cg = Fn_topology.Chain_graph.build base ~k:8 in
  let h = cg.Fn_topology.Chain_graph.graph in
  let centers = Fn_topology.Chain_graph.chain_centers cg in
  let m = Array.length centers in
  let table = Fn_stats.Table.create [ "budget"; "gamma_attack"; "gamma_random" ] in
  for step = 0 to 10 do
    let budget = step * m / 10 in
    let attack = Adversary.targets h ~targets:centers ~budget in
    let random = Adversary.random rng h ~budget in
    Fn_stats.Table.add_float_row table (string_of_int budget)
      [ gamma h attack.Fault_set.alive; gamma h random.Fault_set.alive ]
  done;
  write_csv dir "f3_attack_sweep.csv" table

let f4_span_vs_size rng ~quick dir =
  let samples = if quick then 40 else 150 in
  let table = Fn_stats.Table.create [ "family"; "nodes"; "sampled_span" ] in
  let families =
    [
      ("butterfly", List.map (fun k -> Fn_topology.Butterfly.unwrapped k) [ 3; 4; 5 ]);
      ("debruijn", List.map Fn_topology.Debruijn.graph [ 6; 8; 10 ]);
      ("shuffle_exchange", List.map Fn_topology.Shuffle_exchange.graph [ 6; 8; 10 ]);
    ]
  in
  List.iter
    (fun (name, gs) ->
      List.iter
        (fun g ->
          let est = Faultnet.Span.sample rng ~samples g in
          Fn_stats.Table.add_row table
            [
              name;
              string_of_int (Graph.num_nodes g);
              Printf.sprintf "%.4f" est.Faultnet.Span.span;
            ])
        gs)
    families;
  write_csv dir "f4_span_vs_size.csv" table

let f5_percolation_curves rng ~quick dir =
  let runs = if quick then 8 else 24 in
  let side = if quick then 24 else 48 in
  let mesh, _ = Fn_topology.Mesh.cube ~d:2 ~side in
  let families =
    [
      ("complete", Fn_topology.Basic.complete 128);
      ("sparse_d4", Fn_topology.Random_graphs.gnm rng 1024 2048);
      ("mesh2d", mesh);
      ("hypercube", Fn_topology.Hypercube.graph (if quick then 8 else 10));
    ]
  in
  let ps = List.init 20 (fun i -> 0.05 *. float_of_int (i + 1) /. 1.0) in
  let table = Fn_stats.Table.create [ "family"; "p"; "gamma_mean"; "gamma_std" ] in
  List.iter
    (fun (name, g) ->
      let pts = Fn_percolation.Threshold.gamma_curve ~runs ~rng Fn_percolation.Threshold.Bond g ps in
      List.iter
        (fun (p, m, s) ->
          Fn_stats.Table.add_row table
            [ name; Printf.sprintf "%.3f" p; Printf.sprintf "%.4f" m; Printf.sprintf "%.4f" s ])
        pts)
    families;
  write_csv dir "f5_percolation_curves.csv" table

let f6_prune2_sweep rng ~quick dir =
  let side = if quick then 12 else 16 in
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side in
  let alpha_e =
    (Fn_expansion.Estimate.run ~rng g Fn_expansion.Cut.Edge).Fn_expansion.Estimate.value
  in
  let epsilon = Faultnet.Theorem.thm34_max_epsilon ~delta:(Graph.max_degree g) in
  let table = Fn_stats.Table.create [ "p"; "kept_fraction"; "survivor_expansion" ] in
  List.iter
    (fun p ->
      let faults = Random_faults.nodes_iid rng g p in
      let res = Faultnet.Prune2.run ~rng g ~alive:faults.Fault_set.alive ~alpha_e ~epsilon in
      let kept = res.Faultnet.Prune2.kept in
      let expansion =
        match Faultnet.Report.survivor_expansion g kept Fn_expansion.Cut.Edge with
        | Some v -> v
        | None -> 0.0
      in
      Fn_stats.Table.add_float_row table (Printf.sprintf "%.3f" p)
        [
          float_of_int (Bitset.cardinal kept) /. float_of_int (Graph.num_nodes g); expansion;
        ])
    (List.init 10 (fun i -> 0.025 *. float_of_int (i + 1)));
  write_csv dir "f6_prune2_sweep.csv" table

let f7_butterfly_service rng ~quick dir =
  let k = if quick then 5 else 6 in
  let trials = if quick then 3 else 5 in
  let bf = Fn_topology.Butterfly.unwrapped k in
  let mbf = Fn_topology.Multibutterfly.build rng ~k ~multiplicity:2 in
  let rows = 1 lsl k in
  let inputs = Array.init rows (fun r -> Fn_topology.Butterfly.node ~k ~level:0 ~row:r) in
  let outputs = Array.init rows (fun r -> Fn_topology.Butterfly.node ~k ~level:k ~row:r) in
  let forward_serves g alive =
    (* fraction of alive inputs reaching >= half the alive outputs on
       level-monotone paths; mirrors e13 *)
    let alive_outputs = Array.to_list outputs |> List.filter (Bitset.mem alive) in
    let total = List.length alive_outputs in
    if total = 0 then 0.0
    else begin
      let good = ref 0 and live = ref 0 in
      Array.iter
        (fun input ->
          if Bitset.mem alive input then begin
            incr live;
            let n = Graph.num_nodes g in
            let seen = Bitset.create n in
            let q = Queue.create () in
            Bitset.add seen input;
            Queue.add input q;
            while not (Queue.is_empty q) do
              let u = Queue.pop q in
              let nl = (u / rows) + 1 in
              Graph.iter_neighbors g u (fun w ->
                  if w / rows = nl && Bitset.mem alive w && not (Bitset.mem seen w) then begin
                    Bitset.add seen w;
                    Queue.add w q
                  end)
            done;
            let reached =
              List.fold_left (fun acc o -> if Bitset.mem seen o then acc + 1 else acc) 0
                alive_outputs
            in
            if 2 * reached >= total then incr good
          end)
        inputs;
      if !live = 0 then 0.0 else float_of_int !good /. float_of_int !live
    end
  in
  let n = Graph.num_nodes bf in
  let table = Fn_stats.Table.create [ "fault_frac"; "butterfly"; "multibutterfly" ] in
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int n) in
      let measure g =
        mean
          (List.init trials (fun _ ->
               forward_serves g (Random_faults.nodes_exact rng g budget).Fault_set.alive))
      in
      Fn_stats.Table.add_float_row table (Printf.sprintf "%.3f" frac)
        [ measure bf; measure mbf.Fn_topology.Multibutterfly.graph ])
    (List.init 10 (fun i -> 0.025 *. float_of_int (i + 1)));
  write_csv dir "f7_butterfly_service.csv" table

let f8_embedding_sweep rng ~quick dir =
  let side = if quick then 12 else 16 in
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side in
  let alpha_e =
    (Fn_expansion.Estimate.run ~rng g Fn_expansion.Cut.Edge).Fn_expansion.Estimate.value
  in
  let table = Fn_stats.Table.create [ "p"; "load"; "congestion"; "dilation"; "lmr_bound" ] in
  List.iter
    (fun p ->
      let faults = Random_faults.nodes_iid rng g p in
      let res =
        Faultnet.Prune2.run ~rng g ~alive:faults.Fault_set.alive ~alpha_e ~epsilon:0.125
      in
      let emb = Faultnet.Embedding.self_embed g ~kept:res.Faultnet.Prune2.kept in
      Fn_stats.Table.add_float_row table (Printf.sprintf "%.3f" p)
        [
          float_of_int emb.Faultnet.Embedding.load;
          float_of_int emb.Faultnet.Embedding.congestion;
          float_of_int emb.Faultnet.Embedding.dilation;
          float_of_int (Faultnet.Embedding.slowdown_bound emb);
        ])
    (List.init 8 (fun i -> 0.02 *. float_of_int (i + 1)));
  write_csv dir "f8_embedding_sweep.csv" table

let () =
  let quick = ref false in
  let seed = ref 1234 in
  let outdir = ref "figures" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--outdir" :: v :: rest ->
      outdir := v;
      parse rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if not (Sys.file_exists !outdir) then Sys.mkdir !outdir 0o755;
  let rng = Rng.create !seed in
  let quick = !quick in
  f1_gamma_vs_p rng ~quick !outdir;
  f2_expansion_vs_k rng ~quick !outdir;
  f3_attack_sweep rng ~quick !outdir;
  f4_span_vs_size rng ~quick !outdir;
  f5_percolation_curves rng ~quick !outdir;
  f6_prune2_sweep rng ~quick !outdir;
  f7_butterfly_service rng ~quick !outdir;
  f8_embedding_sweep rng ~quick !outdir;
  print_endline "all figures written"
