examples/adversarial_attack.ml: Adversary Components Fault_set Fn_expansion Fn_faults Fn_graph Fn_prng Fn_topology Graph Printf
