examples/adversarial_attack.mli:
