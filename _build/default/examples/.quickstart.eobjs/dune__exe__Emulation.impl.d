examples/emulation.ml: Bitset Faultnet Fn_expansion Fn_faults Fn_graph Fn_prng Fn_topology List Printf
