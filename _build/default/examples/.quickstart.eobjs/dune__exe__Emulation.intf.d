examples/emulation.mli:
