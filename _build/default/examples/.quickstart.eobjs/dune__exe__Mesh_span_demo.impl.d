examples/mesh_span_demo.ml: Array Bitset Faultnet Fn_graph Fn_prng Fn_topology Printf
