examples/mesh_span_demo.mli:
