examples/p2p_churn.ml: Bitset Faultnet Fn_expansion Fn_faults Fn_graph Fn_prng Fn_topology Graph List Printf
