examples/percolation_thresholds.ml: Fn_graph Fn_percolation Fn_prng Fn_topology List Printf Threshold
