examples/percolation_thresholds.mli:
