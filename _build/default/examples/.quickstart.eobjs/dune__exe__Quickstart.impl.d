examples/quickstart.ml: Components Faultnet Fn_expansion Fn_faults Fn_graph Fn_prng Fn_topology Graph Printf
