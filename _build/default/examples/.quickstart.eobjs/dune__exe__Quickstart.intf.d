examples/quickstart.mli:
