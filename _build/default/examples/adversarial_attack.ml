(* Adversarial resilience: an expander shrugs off a fault budget that
   completely shatters a chain-replacement graph of the same size
   scale (Theorems 2.1 vs 2.3 of the paper).

   Run with:  dune exec examples/adversarial_attack.exe *)

open Fn_graph
open Fn_faults

let gamma g alive =
  let comps = Components.compute ~alive g in
  float_of_int (Components.largest_size comps) /. float_of_int (Graph.num_nodes g)

let () =
  let rng = Fn_prng.Rng.create 7 in

  (* The resilient network: a random 6-regular expander. *)
  let expander = Fn_topology.Expander.random_regular rng ~n:512 ~d:6 in
  let alpha =
    (Fn_expansion.Estimate.run ~rng expander Fn_expansion.Cut.Node).Fn_expansion.Estimate.value
  in
  Printf.printf "expander: n=512 d=6, node expansion ~ %.3f\n" alpha;

  (* The fragile network: same expander family, but every edge is
     stretched into a chain of k=8 nodes (Theorem 2.3's construction).
     Its expansion drops to ~2/k and so does its fault tolerance. *)
  let base = Fn_topology.Expander.random_regular rng ~n:64 ~d:4 in
  let chain = Fn_topology.Chain_graph.build base ~k:8 in
  let h = chain.Fn_topology.Chain_graph.graph in
  Printf.printf "chain graph H(G,8): n=%d, expansion ~ 2/8 = 0.25\n" (Graph.num_nodes h);

  let budget_frac = 0.12 in
  print_endline "";
  Printf.printf "%-28s %-10s %-10s\n" "attack (12% of nodes)" "expander" "chain graph";

  let attack name make_e make_h =
    let fe = make_e expander ~budget:(int_of_float (budget_frac *. 512.0)) in
    let fh = make_h h ~budget:(int_of_float (budget_frac *. float_of_int (Graph.num_nodes h))) in
    Printf.printf "%-28s %-10.3f %-10.3f\n" name
      (gamma expander fe.Fault_set.alive)
      (gamma h fh.Fault_set.alive)
  in
  attack "random faults"
    (fun g ~budget -> Adversary.random rng g ~budget)
    (fun g ~budget -> Adversary.random rng g ~budget);
  attack "degree-targeted"
    (fun g ~budget -> Adversary.degree_targeted g ~budget)
    (fun g ~budget -> Adversary.degree_targeted g ~budget);
  let centers = Fn_topology.Chain_graph.chain_centers chain in
  attack "chain centers / ball"
    (fun g ~budget -> Adversary.ball_isolation rng g ~budget)
    (fun g ~budget -> Adversary.targets g ~targets:centers ~budget);

  print_endline "";
  print_endline "(gamma = largest component / original size; the chain-center column";
  print_endline " realizes the Theorem 2.3 adversary: same budget, catastrophic damage)"
