(* Emulating a fault-free mesh on its faulty self (Section 1.2 of the
   paper): map every node to its nearest survivor and every edge to a
   surviving path; Leighton-Maggs-Rao turn the resulting (load,
   congestion, dilation) into an emulation slowdown bound.

   Run with:  dune exec examples/emulation.exe *)

open Fn_graph

let () =
  let rng = Fn_prng.Rng.create 31 in
  let side = 20 in
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side in
  Printf.printf "emulating a fault-free %dx%d mesh on its faulty survivor\n\n" side side;
  Printf.printf "%-6s %-6s %-6s %-12s %-10s %-10s\n" "p" "kept" "load" "congestion"
    "dilation" "slowdown";
  let alpha_e =
    (Fn_expansion.Estimate.run ~rng g Fn_expansion.Cut.Edge).Fn_expansion.Estimate.value
  in
  List.iter
    (fun p ->
      let faults = Fn_faults.Random_faults.nodes_iid rng g p in
      let res =
        Faultnet.Prune2.run ~rng g ~alive:faults.Fn_faults.Fault_set.alive ~alpha_e
          ~epsilon:0.125
      in
      let emb = Faultnet.Embedding.self_embed g ~kept:res.Faultnet.Prune2.kept in
      Printf.printf "%-6.2f %-6d %-6d %-12d %-10d O(%d)\n" p
        (Bitset.cardinal res.Faultnet.Prune2.kept)
        emb.Faultnet.Embedding.load emb.Faultnet.Embedding.congestion
        emb.Faultnet.Embedding.dilation
        (Faultnet.Embedding.slowdown_bound emb))
    [ 0.0; 0.02; 0.05; 0.10; 0.15 ];
  print_endline "";
  print_endline "every mesh step can be emulated on the survivor in O(slowdown) steps";
  print_endline "(Leighton-Maggs-Rao); the bound staying flat and small as p grows is the";
  print_endline "Cole-Maggs-Sitaraman constant-slowdown phenomenon the paper discusses."
