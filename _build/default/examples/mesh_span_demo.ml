(* Theorem 3.6, visually: the boundary of a compact set in a 2-D mesh
   is connected under king moves, and the virtual spanning tree costs
   at most 2(|B| - 1) mesh edges — span <= 2.

   Run with:  dune exec examples/mesh_span_demo.exe *)

open Fn_graph

let draw geo set boundary tree =
  let side = geo.Fn_topology.Mesh.dims.(0) in
  let cols = geo.Fn_topology.Mesh.dims.(1) in
  for row = 0 to side - 1 do
    for col = 0 to cols - 1 do
      let v = Fn_topology.Mesh.encode geo [| row; col |] in
      let c =
        if Bitset.mem boundary v then 'B'
        else if Bitset.mem tree v then '+'
        else if Bitset.mem set v then '#'
        else '.'
      in
      print_char c;
      print_char ' '
    done;
    print_newline ()
  done

let () =
  let rng = Fn_prng.Rng.create 5 in
  let g, geo = Fn_topology.Mesh.cube ~d:2 ~side:9 in
  print_endline "9x9 mesh. '#' = compact set S, 'B' = boundary nodes, '+' = extra tree nodes\n";
  let rec sample_sets count =
    if count = 0 then ()
    else
      match Faultnet.Compact.random_compact rng g ~target_size:(6 + Fn_prng.Rng.int rng 20) with
      | None -> sample_sets count
      | Some s -> (
        match Faultnet.Mesh_span.certify g geo s with
        | None -> sample_sets count
        | Some cert ->
          let b = Bitset.cardinal cert.Faultnet.Mesh_span.boundary in
          draw geo s cert.Faultnet.Mesh_span.boundary cert.Faultnet.Mesh_span.tree_nodes;
          Printf.printf
            "|S|=%d  |B|=%d  virtual graph connected: %b  tree edges: %d (bound 2(|B|-1)=%d)  \
             ratio |tree|/|B| = %.3f <= 2\n\n"
            (Bitset.cardinal s) b cert.Faultnet.Mesh_span.virtual_connected
            cert.Faultnet.Mesh_span.tree_edges
            (Faultnet.Mesh_span.spanning_tree_bound b)
            cert.Faultnet.Mesh_span.ratio;
          sample_sets (count - 1))
  in
  sample_sets 3;
  (* and the exact span of a small mesh, by brute force over every
     compact set *)
  let small, _ = Fn_topology.Mesh.cube ~d:2 ~side:4 in
  let est = Faultnet.Span.exact small in
  Printf.printf "exact span of the 4x4 mesh over %d compact sets: %.4f (theorem: <= 2)\n"
    est.Faultnet.Span.sets_examined est.Faultnet.Span.span
