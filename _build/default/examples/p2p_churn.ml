(* Peer-to-peer churn: the paper's motivating application.

   A CAN overlay (Ratnasamy et al.) in steady state behaves like a
   d-dimensional mesh, so by Theorems 3.4 + 3.6 it tolerates a fault
   probability inversely polynomial in d without losing expansion.
   This example grows CANs of increasing dimension, kills random
   peers, prunes, and shows the survivor keeps its bandwidth shape.

   Run with:  dune exec examples/p2p_churn.exe *)

open Fn_graph

let () =
  let rng = Fn_prng.Rng.create 99 in
  let n = 256 in
  let p_churn = 0.05 in
  Printf.printf "CAN overlays with %d peers, churn p = %.2f\n\n" n p_churn;
  Printf.printf "%-3s %-7s %-8s %-9s %-7s %-9s %-10s\n" "d" "maxdeg" "balance" "alpha_e"
    "kept" "exp(H)" "thy budget";
  List.iter
    (fun d ->
      let can = Fn_topology.Can.build rng ~d ~n in
      let g = Fn_topology.Can.graph can in
      let alpha_e =
        (Fn_expansion.Estimate.run ~rng g Fn_expansion.Cut.Edge).Fn_expansion.Estimate.value
      in
      let faults = Fn_faults.Random_faults.nodes_iid rng g p_churn in
      let delta = Graph.max_degree g in
      let epsilon = min 0.45 (Faultnet.Theorem.thm34_max_epsilon ~delta) in
      let res =
        Faultnet.Prune2.run ~rng g ~alive:faults.Fn_faults.Fault_set.alive ~alpha_e ~epsilon
      in
      let kept = Bitset.cardinal res.Faultnet.Prune2.kept in
      let exp_h =
        match Faultnet.Report.survivor_expansion g res.Faultnet.Prune2.kept Fn_expansion.Cut.Edge with
        | Some v -> v
        | None -> 0.0
      in
      Printf.printf "%-3d %-7d %-8.1f %-9.4f %-7d %-9.4f %-10.1e\n" d delta
        (Fn_topology.Can.balance can) alpha_e kept exp_h
        (Faultnet.Theorem.mesh_fault_budget ~d))
    [ 2; 3; 4; 5 ];
  print_endline "";
  print_endline "balance  = max/min zone volume (1 = perfectly mesh-like)";
  print_endline "kept     = peers surviving churn + pruning (out of 256)";
  print_endline "thy budget = worst-case tolerable p from Theorems 3.4+3.6 (conservative)"
