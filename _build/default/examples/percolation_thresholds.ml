(* The classical percolation thresholds quoted in Section 1.1 of the
   paper, reproduced by Monte-Carlo (Newman-Ziff sweeps).

   Run with:  dune exec examples/percolation_thresholds.exe *)

open Fn_percolation

let () =
  let rng = Fn_prng.Rng.create 2718 in
  let runs = 24 in
  Printf.printf "bond percolation thresholds (gamma crossing level 0.4, %d runs each)\n\n" runs;
  Printf.printf "%-22s %-8s %-11s %-10s %s\n" "family" "nodes" "p measured" "p theory" "source";
  let families =
    [
      ("complete K_128", Fn_topology.Basic.complete 128, 1.0 /. 127.0, "Erdos-Renyi 1960");
      ( "G(n, 2n edges)",
        Fn_topology.Random_graphs.gnm rng 1024 2048,
        0.25,
        "1/d, d = 4" );
      ("2-D mesh 48x48", fst (Fn_topology.Mesh.cube ~d:2 ~side:48), 0.5, "Kesten 1980");
      ("hypercube d=10", Fn_topology.Hypercube.graph 10, 0.1, "Ajtai-Komlos-Szemeredi");
    ]
  in
  List.iter
    (fun (name, g, p_theory, source) ->
      let r = Threshold.estimate ~runs ~rng Threshold.Bond g in
      Printf.printf "%-22s %-8d %-11.4f %-10.4f %s\n" name (Fn_graph.Graph.num_nodes g)
        r.Threshold.p_star p_theory source)
    families;
  print_endline "";
  print_endline "(finite sizes and the crossing-level constant shift the measured values;";
  print_endline " the orders of magnitude and the ranking match the theory column)"
