(* Quickstart: build a torus, knock out 8% of its nodes at random, and
   use Prune2 to extract a large well-expanding survivor.

   Run with:  dune exec examples/quickstart.exe *)

open Fn_graph

let () =
  let rng = Fn_prng.Rng.create 2024 in

  (* 1. Build a 16x16 torus: 256 nodes, degree 4 everywhere. *)
  let g, _geometry = Fn_topology.Torus.cube ~d:2 ~side:16 in
  Printf.printf "network: %d nodes, %d edges, degree %d\n" (Graph.num_nodes g)
    (Graph.num_edges g) (Graph.max_degree g);

  (* 2. Measure its edge expansion (heuristic upper bound + spectral
        lower bound). *)
  let baseline = Fn_expansion.Estimate.run ~rng g Fn_expansion.Cut.Edge in
  Printf.printf "fault-free edge expansion: %.4f\n" baseline.Fn_expansion.Estimate.value;

  (* 3. Fail each node independently with probability 0.08. *)
  let faults = Fn_faults.Random_faults.nodes_iid rng g 0.08 in
  let alive = faults.Fn_faults.Fault_set.alive in
  Printf.printf "faults injected: %d nodes down\n" (Fn_faults.Fault_set.count faults);
  let gamma_before =
    let comps = Components.compute ~alive g in
    float_of_int (Components.largest_size comps) /. float_of_int (Graph.num_nodes g)
  in
  Printf.printf "largest surviving component: %.1f%% of the network\n" (100.0 *. gamma_before);

  (* 4. Prune away the poorly-expanding fringes (Algorithm Prune2 of
        the paper, with epsilon = 1/(2*degree)). *)
  let epsilon = Faultnet.Theorem.thm34_max_epsilon ~delta:(Graph.max_degree g) in
  let result =
    Faultnet.Prune2.run ~rng g ~alive ~alpha_e:baseline.Fn_expansion.Estimate.value ~epsilon
  in
  print_endline (Faultnet.Report.prune2_summary g result);

  (* 5. The certificates are checkable: every culled region really had
        a low-expansion boundary at the moment it was removed. *)
  let ok = Faultnet.Prune2.verify_certificates g ~alive result in
  Printf.printf "certificates independently re-verified: %b\n" ok
