lib/expansion/analytic.ml:
