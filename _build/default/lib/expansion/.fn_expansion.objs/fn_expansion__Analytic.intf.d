lib/expansion/analytic.mli:
