lib/expansion/cut.ml: Bitset Boundary Fn_graph Format
