lib/expansion/cut.mli: Bitset Fn_graph Format Graph
