lib/expansion/estimate.ml: Array Bfs Bitset Components Cut Exact Fn_graph Fn_prng Fun Graph List Local_search Rng Spectral Sweep
