lib/expansion/estimate.mli: Bitset Cut Fn_graph Fn_prng Graph Rng
