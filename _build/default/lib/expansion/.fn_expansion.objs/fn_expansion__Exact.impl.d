lib/expansion/exact.ml: Array Bitset Cut Fn_graph Graph
