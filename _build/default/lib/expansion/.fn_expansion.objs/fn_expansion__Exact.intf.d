lib/expansion/exact.mli: Cut Fn_graph Graph
