lib/expansion/local_search.ml: Bitset Cut Fn_graph Graph Hashtbl List
