lib/expansion/local_search.mli: Bitset Cut Fn_graph Graph
