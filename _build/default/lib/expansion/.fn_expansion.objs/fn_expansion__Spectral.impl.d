lib/expansion/spectral.ml: Array Bitset Fn_graph Graph List
