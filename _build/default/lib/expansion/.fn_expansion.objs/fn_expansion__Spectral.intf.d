lib/expansion/spectral.mli: Bitset Fn_graph Graph
