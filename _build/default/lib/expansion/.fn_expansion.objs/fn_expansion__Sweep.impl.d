lib/expansion/sweep.ml: Array Bitset Cut Fn_graph Graph Spectral
