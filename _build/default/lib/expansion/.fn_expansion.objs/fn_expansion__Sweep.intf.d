lib/expansion/sweep.mli: Bitset Cut Fn_graph Graph
