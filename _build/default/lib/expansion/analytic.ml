let complete_node_exact n =
  if n < 2 then invalid_arg "Analytic.complete_node_exact: need n >= 2";
  let k = n / 2 in
  float_of_int (n - k) /. float_of_int k

let cycle_node_exact n =
  if n < 3 then invalid_arg "Analytic.cycle_node_exact: need n >= 3";
  2.0 /. float_of_int (n / 2)

let path_node_exact n =
  if n < 2 then invalid_arg "Analytic.path_node_exact: need n >= 2";
  1.0 /. float_of_int (n / 2)

let hypercube_edge_exact d =
  if d < 1 then invalid_arg "Analytic.hypercube_edge_exact: need d >= 1";
  1.0

let mesh_node_order ~side ~d =
  if side < 1 || d < 1 then invalid_arg "Analytic.mesh_node_order: bad parameters";
  1.0 /. float_of_int side

let chain_graph_node_order ~k =
  if k < 2 then invalid_arg "Analytic.chain_graph_node_order: need k >= 2";
  2.0 /. float_of_int k
