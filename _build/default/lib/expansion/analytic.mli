(** Closed-form expansion values and order-of-magnitude references for
    the standard families, used to cross-check the estimators.

    "Exact" functions are provable equalities; "order" functions are
    Θ-references with unspecified constants (tests check ratios stay
    in a fixed window, not equality). *)

val complete_node_exact : int -> float
(** K_n: minimized at |U| = floor(n/2), value (n - floor(n/2)) / floor(n/2). *)

val cycle_node_exact : int -> float
(** C_n: a contiguous arc of floor(n/2) nodes is optimal: 2/floor(n/2). *)

val path_node_exact : int -> float
(** P_n: a prefix of floor(n/2) nodes: 1/floor(n/2). *)

val hypercube_edge_exact : int -> float
(** Q_d: the edge isoperimetric inequality (Harper) gives αe = 1,
    witnessed by a subcube of half the nodes. *)

val mesh_node_order : side:int -> d:int -> float
(** d-dimensional mesh with equal sides: Θ(1/side). *)

val chain_graph_node_order : k:int -> float
(** Claim 2.4: Θ(1/k), reported as 2/k. *)
