open Fn_graph

let max_nodes = 22

let popcount =
  let rec count x acc = if x = 0 then acc else count (x land (x - 1)) (acc + 1) in
  fun x -> count x 0

let check g =
  let n = Graph.num_nodes g in
  if n < 2 then invalid_arg "Exact: need at least 2 nodes";
  if n > max_nodes then invalid_arg "Exact: graph too large for exhaustive search";
  n

let neighbor_masks g =
  let n = Graph.num_nodes g in
  Array.init n (fun v -> Graph.fold_neighbors g v (fun acc w -> acc lor (1 lsl w)) 0)

let set_of_mask n mask =
  let out = Bitset.create n in
  for v = 0 to n - 1 do
    if mask lsr v land 1 = 1 then Bitset.add out v
  done;
  out

let node_expansion g =
  let n = check g in
  let nbr = neighbor_masks g in
  let total = 1 lsl n in
  (* hood.(u) = union of neighbourhoods of members of u, built from the
     lowest set bit in O(1) per subset *)
  let hood = Array.make total 0 in
  let best_num = ref max_int and best_den = ref 1 and best_mask = ref 1 in
  for mask = 1 to total - 1 do
    let low = mask land -mask in
    let low_idx = popcount (low - 1) in
    let rest = mask lxor low in
    hood.(mask) <- hood.(rest) lor nbr.(low_idx);
    let size = popcount mask in
    if 2 * size <= n then begin
      let boundary = popcount (hood.(mask) land lnot mask) in
      (* compare boundary/size < best_num/best_den without floats *)
      if boundary * !best_den < !best_num * size then begin
        best_num := boundary;
        best_den := size;
        best_mask := mask
      end
    end
  done;
  let set = set_of_mask n !best_mask in
  {
    Cut.set;
    value = float_of_int !best_num /. float_of_int !best_den;
    objective = Cut.Node;
  }

let node_isoperimetric_profile g =
  let n = check g in
  let nbr = neighbor_masks g in
  let total = 1 lsl n in
  let hood = Array.make total 0 in
  let sizes = n / 2 in
  let best = Array.make sizes max_int in
  for mask = 1 to total - 1 do
    let low = mask land -mask in
    let low_idx = popcount (low - 1) in
    let rest = mask lxor low in
    hood.(mask) <- hood.(rest) lor nbr.(low_idx);
    let size = popcount mask in
    if size <= sizes then begin
      let boundary = popcount (hood.(mask) land lnot mask) in
      if boundary < best.(size - 1) then best.(size - 1) <- boundary
    end
  done;
  best

let edge_isoperimetric_profile g =
  let n = check g in
  let nbr = neighbor_masks g in
  let total = 1 lsl n in
  let sizes = n / 2 in
  let best = Array.make sizes max_int in
  for mask = 1 to total - 1 do
    let size = popcount mask in
    if size <= sizes then begin
      let crossing = ref 0 in
      let rem = ref mask in
      while !rem <> 0 do
        let low = !rem land - !rem in
        let v = popcount (low - 1) in
        crossing := !crossing + popcount (nbr.(v) land lnot mask);
        rem := !rem lxor low
      done;
      if !crossing < best.(size - 1) then best.(size - 1) <- !crossing
    end
  done;
  best

let edge_expansion g =
  let n = check g in
  let nbr = neighbor_masks g in
  let total = 1 lsl n in
  let best_num = ref max_int and best_den = ref 1 and best_mask = ref 1 in
  for mask = 1 to total - 2 do
    let size = popcount mask in
    let small = min size (n - size) in
    (* by symmetry only score masks whose described side is the small
       one; when n is even both sides tie, either works *)
    if 2 * size <= n then begin
      let crossing = ref 0 in
      let rem = ref mask in
      while !rem <> 0 do
        let low = !rem land - !rem in
        let v = popcount (low - 1) in
        crossing := !crossing + popcount (nbr.(v) land lnot mask);
        rem := !rem lxor low
      done;
      if !crossing * !best_den < !best_num * small then begin
        best_num := !crossing;
        best_den := small;
        best_mask := mask
      end
    end
  done;
  let set = set_of_mask n !best_mask in
  {
    Cut.set;
    value = float_of_int !best_num /. float_of_int !best_den;
    objective = Cut.Edge;
  }
