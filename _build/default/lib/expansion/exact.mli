open Fn_graph

(** Exact expansion by exhaustive subset enumeration.

    Feasible up to ~22 nodes (the node-expansion variant uses an
    O(2^n)-word table of neighbourhood masks).  This is the ground
    truth that validates every heuristic in {!Estimate}. *)

val max_nodes : int
(** Hard limit (22). *)

val node_expansion : Graph.t -> Cut.t
(** Minimum |Γ(U)|/|U| over nonempty U with |U| <= n/2.  Requires
    [2 <= n <= max_nodes].  Returns 0 with a component witness for
    disconnected graphs. *)

val edge_expansion : Graph.t -> Cut.t
(** Minimum |(U,V\U)|/min(|U|,|V\U|) over proper nonempty U.  Same
    size limits. *)

val edge_isoperimetric_profile : Graph.t -> int array
(** [profile.(s)] = min |(U, V\U)| over all U with |U| = s+1, for
    s+1 <= n/2 — the edge-isoperimetric profile. *)

val node_isoperimetric_profile : Graph.t -> int array
(** [profile.(s)] = min |Γ(U)| over all U with |U| = s+1, for
    s+1 <= n/2 — the full vertex-isoperimetric profile.  Same size
    limits as {!node_expansion}. *)
