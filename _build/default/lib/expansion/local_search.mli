open Fn_graph

(** Local improvement of a cut by single-node moves.

    Classic Fiduccia–Mattheyses-style hill climbing restricted to
    moves that keep U the small side: repeatedly apply the best
    expansion-reducing move (inserting a boundary node into U or
    evicting a member) until a pass yields no improvement or the pass
    budget runs out.  This is an upper-bound refiner: the result is
    never worse than the input cut. *)

val improve :
  ?alive:Bitset.t -> ?max_passes:int -> Graph.t -> Cut.t -> Cut.t
(** Defaults: [max_passes] 20. *)
