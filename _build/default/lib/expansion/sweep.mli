open Fn_graph

(** Sweep cuts: order nodes by a score (typically the Fiedler vector)
    and take the best prefix.

    Both boundary sizes are maintained incrementally, so a full sweep
    costs O(m + n log n) and simultaneously finds the best prefix for
    the node- and edge-expansion objectives. *)

val best_prefix : ?alive:Bitset.t -> Graph.t -> score:float array -> Cut.objective -> Cut.t
(** Best expansion over all prefixes [1 <= k <= alive/2] of the
    ascending-score order, restricted to alive nodes.  Raises
    [Invalid_argument] if fewer than 2 alive nodes. *)

val spectral_cut : ?alive:Bitset.t -> Graph.t -> Cut.objective -> Cut.t
(** Convenience: Fiedler vector + {!best_prefix}. *)
