lib/experiments/e01_prune_adversarial.ml: Adversary Bitset Fault_set Faultnet Fn_faults Fn_graph Fn_prng Fn_stats List Outcome Printf Rng Workload
