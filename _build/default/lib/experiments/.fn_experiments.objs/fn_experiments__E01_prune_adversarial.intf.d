lib/experiments/e01_prune_adversarial.mli: Outcome
