lib/experiments/e02_chain_expansion.ml: Fn_graph Fn_prng Fn_stats Fn_topology Graph List Outcome Printf Rng Workload
