lib/experiments/e02_chain_expansion.mli: Outcome
