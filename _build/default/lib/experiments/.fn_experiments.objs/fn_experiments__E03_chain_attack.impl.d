lib/experiments/e03_chain_attack.ml: Adversary Array Components Fault_set Faultnet Float Fn_faults Fn_graph Fn_prng Fn_stats Fn_topology Graph List Outcome Printf Rng Workload
