lib/experiments/e03_chain_attack.mli: Outcome
