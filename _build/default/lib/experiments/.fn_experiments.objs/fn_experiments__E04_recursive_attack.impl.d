lib/experiments/e04_recursive_attack.ml: Adversary Fault_set Fn_faults Fn_prng Fn_stats Fn_topology List Outcome Printf Rng
