lib/experiments/e04_recursive_attack.mli: Outcome
