lib/experiments/e05_random_chain.ml: Fault_set Faultnet Fn_faults Fn_prng Fn_stats Fn_topology List Outcome Printf Random_faults Rng Workload
