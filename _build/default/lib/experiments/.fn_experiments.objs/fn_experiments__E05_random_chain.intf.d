lib/experiments/e05_random_chain.mli: Outcome
