lib/experiments/e06_prune2_random.ml: Bitset Fault_set Faultnet Fn_faults Fn_graph Fn_prng Fn_stats Fn_topology Graph List Outcome Printf Random_faults Rng Workload
