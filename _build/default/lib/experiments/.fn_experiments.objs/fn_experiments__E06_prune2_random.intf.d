lib/experiments/e06_prune2_random.mli: Outcome
