lib/experiments/e07_mesh_span.ml: Array Faultnet Fn_graph Fn_prng Fn_stats Fn_topology List Outcome Printf Rng String Workload
