lib/experiments/e07_mesh_span.mli: Outcome
