lib/experiments/e08_percolation.ml: Fn_graph Fn_percolation Fn_prng Fn_stats Fn_topology List Outcome Printf Rng Threshold
