lib/experiments/e08_percolation.mli: Outcome
