lib/experiments/e09_can_churn.ml: Bitset Fault_set Faultnet Float Fn_faults Fn_graph Fn_prng Fn_stats Fn_topology Graph List Outcome Printf Random_faults Rng Workload
