lib/experiments/e09_can_churn.mli: Outcome
