lib/experiments/e10_span_conjecture.ml: Faultnet Fn_graph Fn_prng Fn_stats Fn_topology Hashtbl List Outcome Printf Rng
