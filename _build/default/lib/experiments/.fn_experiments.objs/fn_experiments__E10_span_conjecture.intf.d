lib/experiments/e10_span_conjecture.mli: Outcome
