lib/experiments/e11_routing.ml: Components Demand Fault_set Float Fn_faults Fn_graph Fn_prng Fn_routing Fn_stats Fn_topology Graph Hashtbl Outcome Printf Random_faults Rng Route Sim Workload
