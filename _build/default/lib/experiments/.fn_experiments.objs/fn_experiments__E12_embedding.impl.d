lib/experiments/e12_embedding.ml: Bitset Fault_set Faultnet Fn_faults Fn_graph Fn_prng Fn_stats Fn_topology Graph List Outcome Printf Random_faults Rng Workload
