lib/experiments/e12_embedding.mli: Outcome
