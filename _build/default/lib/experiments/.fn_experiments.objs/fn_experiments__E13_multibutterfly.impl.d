lib/experiments/e13_multibutterfly.ml: Array Bitset Fault_set Fn_faults Fn_graph Fn_prng Fn_stats Fn_topology Graph List Outcome Printf Queue Random_faults Rng Workload
