lib/experiments/e13_multibutterfly.mli: Outcome
