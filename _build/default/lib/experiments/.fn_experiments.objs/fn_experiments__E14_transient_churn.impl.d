lib/experiments/e14_transient_churn.ml: Bitset Churn Fault_set Faultnet Fn_faults Fn_graph Fn_prng Fn_stats Fn_topology Graph List Outcome Printf Rng Workload
