lib/experiments/e14_transient_churn.mli: Outcome
