lib/experiments/outcome.ml: Buffer Fn_stats List Printf
