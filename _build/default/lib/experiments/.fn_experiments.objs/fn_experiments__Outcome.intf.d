lib/experiments/outcome.mli: Fn_stats
