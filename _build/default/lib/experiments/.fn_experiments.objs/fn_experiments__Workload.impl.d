lib/experiments/workload.ml: Components Fn_expansion Fn_graph Fn_topology Graph List
