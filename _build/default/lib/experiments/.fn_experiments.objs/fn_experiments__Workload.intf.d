lib/experiments/workload.mli: Bitset Fn_graph Fn_prng Graph Rng
