(** Result envelope shared by all experiments. *)

type t = {
  id : string;  (** "E1" ... "E10" *)
  title : string;
  table : Fn_stats.Table.t;
  checks : (string * bool) list;  (** named pass/fail assertions *)
  notes : string list;
}

val all_passed : t -> bool

val render : t -> string
(** Title, table, check list, notes — ready to print. *)
