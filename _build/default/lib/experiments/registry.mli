(** Name → experiment dispatch used by bin/experiments and the bench
    harness. *)

type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> ?seed:int -> unit -> Outcome.t;
}

val all : entry list
(** E1 through E10, in order. *)

val find : string -> entry option
(** Case-insensitive lookup by id ("e3" finds E3). *)
