open Fn_graph
open Fn_prng

(** Shared workload builders and measurement helpers for E1-E10. *)

val expander : Rng.t -> n:int -> d:int -> Graph.t
(** Connected random d-regular graph — the stand-in for the paper's
    expander family G(n). *)

val gamma_of_alive : Graph.t -> Bitset.t -> float
(** Largest alive component size / original node count. *)

val node_expansion_estimate : Rng.t -> ?alive:Bitset.t -> Graph.t -> float
(** Portfolio upper-bound estimate (see {!Fn_expansion.Estimate}). *)

val edge_expansion_estimate : Rng.t -> ?alive:Bitset.t -> Graph.t -> float

val mean_of : float list -> float

val bool_cell : bool -> string
(** "yes" / "NO" for table cells. *)
