lib/faultnet/compact.ml: Array Bitset Boundary Components Dfs Fn_graph Fn_prng Graph List Rng
