lib/faultnet/compact.mli: Bitset Fn_graph Fn_prng Graph Rng
