lib/faultnet/embedding.ml: Array Bfs Bitset Fn_graph Graph Hashtbl List Queue
