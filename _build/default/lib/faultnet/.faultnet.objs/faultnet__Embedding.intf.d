lib/faultnet/embedding.mli: Bitset Fn_graph Graph
