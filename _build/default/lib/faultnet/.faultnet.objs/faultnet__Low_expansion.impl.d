lib/faultnet/low_expansion.ml: Array Bitset Components Cut Estimate Exact Fn_expansion Fn_graph Fn_prng Graph Rng Subgraph
