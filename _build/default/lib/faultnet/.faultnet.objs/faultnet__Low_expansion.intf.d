lib/faultnet/low_expansion.mli: Bitset Fn_expansion Fn_graph Fn_prng Graph Rng
