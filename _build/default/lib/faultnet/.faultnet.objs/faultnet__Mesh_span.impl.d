lib/faultnet/mesh_span.ml: Array Bitset Boundary Compact Fn_graph Fn_topology Hashtbl List Mesh Queue
