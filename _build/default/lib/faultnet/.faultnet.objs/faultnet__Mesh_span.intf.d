lib/faultnet/mesh_span.mli: Bitset Fn_graph Fn_topology Graph Mesh
