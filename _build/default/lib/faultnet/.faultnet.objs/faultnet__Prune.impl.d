lib/faultnet/prune.ml: Bitset Boundary Fn_expansion Fn_graph List Low_expansion
