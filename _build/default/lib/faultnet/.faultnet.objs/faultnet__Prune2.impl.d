lib/faultnet/prune2.ml: Bitset Boundary Compact Components Dfs Fn_expansion Fn_graph List Low_expansion
