lib/faultnet/prune2.mli: Bitset Fn_graph Fn_prng Graph Low_expansion Rng
