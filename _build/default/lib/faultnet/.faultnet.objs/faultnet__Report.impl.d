lib/faultnet/report.ml: Bitset Fn_expansion Fn_graph Printf Prune Prune2
