lib/faultnet/report.mli: Bitset Fn_expansion Fn_graph Graph Prune Prune2
