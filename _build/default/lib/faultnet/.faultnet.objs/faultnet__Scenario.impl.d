lib/faultnet/scenario.ml: Array Bitset Components Embedding Fn_expansion Fn_faults Fn_graph Fn_prng Fn_routing Graph Printf Prune2 Report Rng String Theorem
