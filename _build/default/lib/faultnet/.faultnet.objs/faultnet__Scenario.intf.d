lib/faultnet/scenario.mli: Fn_faults Fn_graph Fn_prng Graph Rng
