lib/faultnet/span.ml: Bitset Boundary Compact Fn_graph Fn_prng Graph List Rng Steiner
