lib/faultnet/span.mli: Bitset Fn_graph Fn_prng Graph Rng Steiner
