lib/faultnet/theorem.ml: Float
