lib/faultnet/theorem.mli:
