open Fn_graph

type t = {
  node_map : int array;
  load : int;
  dilation : int;
  congestion : int;
  unmapped : int;
  unrouted : int;
}

let self_embed g ~kept =
  let n = Graph.num_nodes g in
  if Bitset.is_empty kept then invalid_arg "Embedding.self_embed: empty survivor";
  (* nearest-survivor map: BFS from all survivors at once, tracking the
     owning source *)
  let owner = Array.make n (-1) in
  let queue = Queue.create () in
  Bitset.iter
    (fun v ->
      owner.(v) <- v;
      Queue.add v queue)
    kept;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun w ->
        if owner.(w) < 0 then begin
          owner.(w) <- owner.(u);
          Queue.add w queue
        end)
  done;
  let unmapped = Array.fold_left (fun acc o -> if o < 0 then acc + 1 else acc) 0 owner in
  let load_tbl = Hashtbl.create 256 in
  Array.iter
    (fun o ->
      if o >= 0 then
        Hashtbl.replace load_tbl o (1 + try Hashtbl.find load_tbl o with Not_found -> 0))
    owner;
  let load = Hashtbl.fold (fun _ c acc -> max acc c) load_tbl 0 in
  (* edge images: shortest path inside kept between the two images,
     one BFS per distinct image source *)
  let parents_cache = Hashtbl.create 64 in
  let parents_of src =
    match Hashtbl.find_opt parents_cache src with
    | Some p -> p
    | None ->
      let p = Bfs.tree ~alive:kept g src in
      Hashtbl.add parents_cache src p;
      p
  in
  let edge_use = Hashtbl.create 1024 in
  let bump_edge a b =
    let key = if a < b then (a, b) else (b, a) in
    Hashtbl.replace edge_use key (1 + try Hashtbl.find edge_use key with Not_found -> 0)
  in
  let dilation = ref 0 in
  let unrouted = ref 0 in
  Graph.iter_edges g (fun u v ->
      let iu = owner.(u) and iv = owner.(v) in
      if iu < 0 || iv < 0 then incr unrouted
      else if iu <> iv then begin
        let parents = parents_of iu in
        match Bfs.path_to ~parents iv with
        | path ->
          let len = List.length path - 1 in
          if len > !dilation then dilation := len;
          let rec walk = function
            | a :: (b :: _ as rest) ->
              bump_edge a b;
              walk rest
            | _ -> ()
          in
          walk path
        | exception Not_found -> incr unrouted
      end);
  let congestion = Hashtbl.fold (fun _ c acc -> max acc c) edge_use 0 in
  { node_map = owner; load; dilation = !dilation; congestion; unmapped; unrouted = !unrouted }

let slowdown_bound t = t.load + t.congestion + t.dilation
