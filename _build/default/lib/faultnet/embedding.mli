open Fn_graph

(** Static self-embedding of a fault-free network into its faulty
    survivor (Section 1.2 of the paper).

    Every node of G is mapped to its nearest surviving node of the
    kept set H; every edge (u, v) of G becomes a shortest path in the
    surviving subgraph between the images of u and v.  The quality
    triple (load, congestion, dilation) bounds the emulation slowdown:
    Leighton, Maggs & Rao show G can be emulated on H with slowdown
    O(load + congestion + dilation). *)

type t = {
  node_map : int array;  (** image of every G-node; [-1] if unreachable from H *)
  load : int;  (** max G-nodes mapped to one survivor *)
  dilation : int;  (** longest edge-image path *)
  congestion : int;  (** max edge-image paths over one surviving edge *)
  unmapped : int;  (** G-nodes with no surviving image *)
  unrouted : int;  (** G-edges whose images are disconnected in H *)
}

val self_embed : Graph.t -> kept:Bitset.t -> t
(** [self_embed g ~kept] embeds g into its induced subgraph on [kept].
    Requires [kept] non-empty.  Node maps follow multi-source BFS in
    the full graph (dead nodes route to the closest survivor);
    edge paths stay inside [kept]. *)

val slowdown_bound : t -> int
(** load + congestion + dilation — the LMR emulation bound (up to its
    hidden constant). *)
