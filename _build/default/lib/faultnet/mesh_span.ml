open Fn_graph
open Fn_topology

type certificate = {
  boundary : Bitset.t;
  virtual_connected : bool;
  tree_nodes : Bitset.t;
  tree_edges : int;
  ratio : float;
}

let spanning_tree_bound b = 2 * (b - 1)

(* Simulate a virtual edge by at most two mesh edges: nodes differing
   in one coordinate are mesh-adjacent; nodes differing diagonally in
   two coordinates route through the intermediate node that shares one
   changed coordinate with each endpoint. *)
let simulate_virtual_edge geo u v =
  let cu = Mesh.decode geo u and cv = Mesh.decode geo v in
  let diff_dims = ref [] in
  Array.iteri (fun i c -> if c <> cv.(i) then diff_dims := i :: !diff_dims) cu;
  match !diff_dims with
  | [ _ ] -> [ (u, v) ]
  | [ i; _ ] ->
    let mid_coords = Array.copy cu in
    mid_coords.(i) <- cv.(i);
    let mid = Mesh.encode geo mid_coords in
    [ (u, mid); (mid, v) ]
  | _ -> invalid_arg "Mesh_span.simulate_virtual_edge: not a virtual edge"

let certify mesh geo s =
  if not (Compact.is_compact mesh s) then
    invalid_arg "Mesh_span.certify: set is not compact";
  let boundary = Boundary.node_boundary mesh s in
  let b = Bitset.cardinal boundary in
  if b = 0 then None
  else begin
    (* BFS over the virtual graph (B, E_v) *)
    let visited = Bitset.create geo.Mesh.size in
    let start =
      match Bitset.choose boundary with Some v -> v | None -> assert false
    in
    let queue = Queue.create () in
    let parent = Hashtbl.create (2 * b) in
    Bitset.add visited start;
    Queue.add start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun w ->
          if Bitset.mem boundary w && not (Bitset.mem visited w) then begin
            Bitset.add visited w;
            Hashtbl.add parent w u;
            Queue.add w queue
          end)
        (Mesh.virtual_neighbors geo u)
    done;
    let virtual_connected = Bitset.cardinal visited = b in
    (* expand the virtual spanning tree into mesh edges *)
    let tree_nodes = Bitset.copy boundary in
    let mesh_edges = Hashtbl.create (4 * b) in
    Hashtbl.iter
      (fun child par ->
        List.iter
          (fun (x, y) ->
            Bitset.add tree_nodes x;
            Bitset.add tree_nodes y;
            let key = if x < y then (x, y) else (y, x) in
            Hashtbl.replace mesh_edges key ())
          (simulate_virtual_edge geo child par))
      parent;
    let tree_edges = Hashtbl.length mesh_edges in
    let ratio = float_of_int (Bitset.cardinal tree_nodes) /. float_of_int b in
    Some { boundary; virtual_connected; tree_nodes; tree_edges; ratio }
  end
