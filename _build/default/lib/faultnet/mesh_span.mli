open Fn_graph
open Fn_topology

(** The Theorem 3.6 construction: d-dimensional meshes have span <= 2.

    For any compact set S in the mesh, the boundary B = Γ(S) is
    connected in the "virtual" graph (B, E_v) whose edges join
    boundary nodes differing by at most 1 in at most two coordinates
    (Lemma 3.7).  A spanning tree of (B, E_v) has |B| - 1 virtual
    edges, and every virtual edge is simulated by at most 2 mesh
    edges, so B is spanned by a mesh tree with at most 2(|B| - 1)
    edges — hence span <= 2.

    This module executes the construction and returns the explicit
    tree, so the bound is *checked*, not assumed, on every compact
    set we throw at it. *)

type certificate = {
  boundary : Bitset.t;  (** Γ(S) *)
  virtual_connected : bool;  (** Lemma 3.7 check *)
  tree_nodes : Bitset.t;  (** nodes of the simulated mesh tree *)
  tree_edges : int;  (** mesh edges used, <= 2(|B|-1) *)
  ratio : float;  (** |tree_nodes| / |B| — a span witness <= 2 *)
}

val certify : Graph.t -> Mesh.geometry -> Bitset.t -> certificate option
(** [certify mesh geo s] runs the construction on a compact set [s].
    Returns [None] for empty boundaries.  Raises [Invalid_argument]
    if [s] is not compact in the mesh. *)

val spanning_tree_bound : int -> int
(** [spanning_tree_bound b] = 2(b - 1), the Theorem 3.6 edge bound. *)
