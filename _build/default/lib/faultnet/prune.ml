open Fn_graph

type culled = { set : Bitset.t; size : int; boundary : int }

type result = {
  kept : Bitset.t;
  culled : culled list;
  iterations : int;
  threshold : float;
}

let run ?finder ?rng g ~alive ~alpha ~epsilon =
  if alpha <= 0.0 then invalid_arg "Prune.run: alpha must be positive";
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Prune.run: need 0 < epsilon < 1";
  let finder =
    match finder with
    | Some f -> f
    | None -> Low_expansion.default ?rng Fn_expansion.Cut.Node
  in
  let threshold = alpha *. epsilon in
  let current = Bitset.copy alive in
  let culled = ref [] in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    if Bitset.cardinal current < 2 then continue := false
    else
      match finder ~alive:current g ~threshold with
      | None -> continue := false
      | Some s ->
        incr iterations;
        let size = Bitset.cardinal s in
        let boundary = Boundary.node_boundary_size ~alive:current g s in
        assert (size >= 1);
        assert (Bitset.subset s current);
        culled := { set = s; size; boundary } :: !culled;
        Bitset.diff_into current s
  done;
  { kept = current; culled = List.rev !culled; iterations = !iterations; threshold }

let total_culled r = List.fold_left (fun acc c -> acc + c.size) 0 r.culled

let verify_certificates g ~alive r =
  let current = Bitset.copy alive in
  let ok = ref true in
  List.iter
    (fun c ->
      let total = Bitset.cardinal current in
      if not (Bitset.subset c.set current) then ok := false;
      let size = Bitset.cardinal c.set in
      if size <> c.size || 2 * size > total then ok := false;
      let boundary = Boundary.node_boundary_size ~alive:current g c.set in
      if boundary <> c.boundary then ok := false;
      if float_of_int boundary > (r.threshold *. float_of_int size) +. 1e-9 then ok := false;
      Bitset.diff_into current c.set)
    r.culled;
  if not (Bitset.equal current r.kept) then ok := false;
  !ok
