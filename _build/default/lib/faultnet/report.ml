open Fn_graph

let survivor_expansion g kept objective =
  if Bitset.cardinal kept < 2 then None
  else
    let est = Fn_expansion.Estimate.run ~alive:kept g objective in
    Some est.Fn_expansion.Estimate.value

let prune_summary g (r : Prune.result) =
  let kept = Bitset.cardinal r.Prune.kept in
  let culled = Prune.total_culled r in
  let expansion =
    match survivor_expansion g r.Prune.kept Fn_expansion.Cut.Node with
    | Some v -> Printf.sprintf "%.4f" v
    | None -> "n/a"
  in
  Printf.sprintf
    "Prune: kept %d nodes, culled %d in %d iterations (threshold %.4f); survivor node expansion ~ %s"
    kept culled r.Prune.iterations r.Prune.threshold expansion

let prune2_summary g (r : Prune2.result) =
  let kept = Bitset.cardinal r.Prune2.kept in
  let culled = Prune2.total_culled r in
  let expansion =
    match survivor_expansion g r.Prune2.kept Fn_expansion.Cut.Edge with
    | Some v -> Printf.sprintf "%.4f" v
    | None -> "n/a"
  in
  Printf.sprintf
    "Prune2: kept %d nodes, culled %d in %d iterations (threshold %.4f); survivor edge expansion ~ %s"
    kept culled r.Prune2.iterations r.Prune2.threshold expansion
