open Fn_graph

(** Human-readable summaries of pruning runs. *)

val prune_summary : Graph.t -> Prune.result -> string
(** One paragraph: nodes kept/culled, iterations, threshold, and the
    measured (heuristic) node expansion of the kept part. *)

val prune2_summary : Graph.t -> Prune2.result -> string

val survivor_expansion :
  Graph.t -> Bitset.t -> Fn_expansion.Cut.objective -> float option
(** Heuristic expansion of the kept set; [None] when it has fewer
    than 2 nodes. *)
