open Fn_graph
open Fn_prng

type t = {
  nodes : int;
  edges : int;
  faults : int;
  gamma : float;
  alpha_e_before : float;
  kept : int;
  alpha_e_after : float;
  expansion_ratio : float;
  certificates_ok : bool;
  slowdown : int;
  routable : float;
  stretch : float;
}

let analyze ?rng ?epsilon g ~faults =
  let rng = match rng with Some r -> r | None -> Rng.create 0x5CE0 in
  let alive = faults.Fn_faults.Fault_set.alive in
  if Bitset.cardinal alive < 2 then invalid_arg "Scenario.analyze: need >= 2 alive nodes";
  let n = Graph.num_nodes g in
  let before = Fn_expansion.Estimate.run ~rng g Fn_expansion.Cut.Edge in
  let alpha_e_before = before.Fn_expansion.Estimate.value in
  let comps = Components.compute ~alive g in
  let gamma = float_of_int (Components.largest_size comps) /. float_of_int n in
  let delta = Graph.max_degree g in
  let epsilon =
    match epsilon with
    | Some e -> e
    | None -> min 0.45 (Theorem.thm34_max_epsilon ~delta)
  in
  let pruned = Prune2.run ~rng g ~alive ~alpha_e:alpha_e_before ~epsilon in
  let kept_set = pruned.Prune2.kept in
  let kept = Bitset.cardinal kept_set in
  let certificates_ok = Prune2.verify_certificates g ~alive pruned in
  let alpha_e_after =
    match Report.survivor_expansion g kept_set Fn_expansion.Cut.Edge with
    | Some v -> v
    | None -> 0.0
  in
  let slowdown =
    if kept = 0 then 0
    else Embedding.slowdown_bound (Embedding.self_embed g ~kept:kept_set)
  in
  let demand = Fn_routing.Demand.permutation rng ~alive g in
  let routable, stretch =
    if Array.length demand = 0 then (1.0, nan)
    else begin
      let survivor = Components.largest_members ~alive g in
      let reference = Fn_routing.Route.shortest g demand in
      let faulty = Fn_routing.Route.shortest ~alive:survivor g demand in
      (Fn_routing.Route.routable_fraction faulty, Fn_routing.Route.stretch ~reference faulty)
    end
  in
  {
    nodes = n;
    edges = Graph.num_edges g;
    faults = Fn_faults.Fault_set.count faults;
    gamma;
    alpha_e_before;
    kept;
    alpha_e_after;
    expansion_ratio =
      (if alpha_e_before > 0.0 then alpha_e_after /. alpha_e_before else nan);
    certificates_ok;
    slowdown;
    routable;
    stretch;
  }

let to_string t =
  String.concat "\n"
    [
      Printf.sprintf "network: %d nodes, %d edges; faults: %d (%.1f%%)" t.nodes t.edges
        t.faults
        (100.0 *. float_of_int t.faults /. float_of_int (max 1 t.nodes));
      Printf.sprintf "connectivity: largest component holds %.1f%% of the network"
        (100.0 *. t.gamma);
      Printf.sprintf
        "expansion: %.4f fault-free -> %.4f on the pruned survivor (%d nodes, ratio %.2f)"
        t.alpha_e_before t.alpha_e_after t.kept t.expansion_ratio;
      Printf.sprintf "certificates: %s"
        (if t.certificates_ok then "verified" else "FAILED TO VERIFY");
      Printf.sprintf "emulation: LMR slowdown bound O(%d)" t.slowdown;
      Printf.sprintf "routing: %.1f%% of a surviving permutation routable, stretch %.3f"
        (100.0 *. t.routable) t.stretch;
    ]
