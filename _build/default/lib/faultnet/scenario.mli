open Fn_graph
open Fn_prng

(** One-call resilience analysis: everything the paper says matters
    about a faulty network, in a single report.

    Given a network and a fault pattern, [analyze] measures the
    largest-component fraction, prunes to the well-expanding core
    (Prune2), compares the survivor's edge expansion to the fault-free
    value, self-embeds the fault-free network into the survivor
    (emulation slowdown), and routes a permutation across it
    (bandwidth).  This is the downstream-facing API the paper's §1.3
    motivates: connectivity, expansion, emulation and routing in one
    verdict. *)

type t = {
  nodes : int;
  edges : int;
  faults : int;
  gamma : float;  (** largest-component fraction before pruning *)
  alpha_e_before : float;  (** fault-free edge expansion (heuristic) *)
  kept : int;  (** survivor size after Prune2 *)
  alpha_e_after : float;  (** survivor edge expansion (heuristic) *)
  expansion_ratio : float;  (** after / before *)
  certificates_ok : bool;  (** the Prune2 run re-verified *)
  slowdown : int;  (** LMR load+congestion+dilation of the self-embedding *)
  routable : float;  (** fraction of a surviving-node permutation routed *)
  stretch : float;  (** mean stretch vs fault-free paths (NaN if none) *)
}

val analyze :
  ?rng:Rng.t -> ?epsilon:float -> Graph.t -> faults:Fn_faults.Fault_set.t -> t
(** [epsilon] defaults to min(1/(2δ), 0.45).  Requires >= 2 alive
    nodes.  Deterministic given [rng] (default seed 0x5CE0). *)

val to_string : t -> string
(** Multi-line human-readable report. *)
