open Fn_graph
open Fn_prng

type witness = {
  compact_set : Bitset.t;
  boundary : Bitset.t;
  tree : Steiner.result;
  ratio : float;
  tree_exact : bool;
}

type estimate = {
  span : float;
  best : witness option;
  sets_examined : int;
  all_exact : bool;
}

let of_compact_set ?(exact_terminals = 9) g u =
  let boundary = Boundary.node_boundary g u in
  let b = Bitset.cardinal boundary in
  if b = 0 then None
  else begin
    let terminals = Bitset.to_array boundary in
    let tree, tree_exact =
      if b = 1 then
        ({ Steiner.nodes = Bitset.copy boundary; edge_count = 0 }, true)
      else if b <= exact_terminals then (Steiner.exact g terminals, true)
      else (Steiner.approx g terminals, false)
    in
    let ratio = float_of_int (Steiner.node_count tree) /. float_of_int b in
    Some { compact_set = Bitset.copy u; boundary; tree; ratio; tree_exact }
  end

let fold_estimate ?exact_terminals g sets =
  let best = ref None in
  let examined = ref 0 in
  let all_exact = ref true in
  List.iter
    (fun u ->
      match of_compact_set ?exact_terminals g u with
      | None -> ()
      | Some w ->
        incr examined;
        if not w.tree_exact then all_exact := false;
        (match !best with
        | Some b when b.ratio >= w.ratio -> ()
        | _ -> best := Some w))
    sets;
  {
    span = (match !best with Some w -> w.ratio | None -> 0.0);
    best = !best;
    sets_examined = !examined;
    all_exact = !all_exact;
  }

let exact ?exact_terminals g = fold_estimate ?exact_terminals g (Compact.enumerate g)

let sample rng ?exact_terminals ?(samples = 200) g =
  let total = Graph.num_nodes g in
  let sets = ref [] in
  if total >= 4 then begin
    for _ = 1 to samples do
      (* geometric size ladder: 1, 2, 4, ... up to total/2 *)
      let levels =
        let rec count size acc = if size > total / 2 then acc else count (2 * size) (acc + 1) in
        count 1 0
      in
      if levels > 0 then begin
        let level = Rng.int rng levels in
        let target_size = 1 lsl level in
        match Compact.random_compact rng g ~target_size with
        | Some u -> sets := u :: !sets
        | None -> ()
      end
    done
  end;
  fold_estimate ?exact_terminals g !sets
