open Fn_graph
open Fn_prng

(** The span of a graph (Equation 1 of the paper):

      σ = max over compact U of |P(U)| / |Γ(U)|

    where P(U) is a smallest tree in G connecting every node of the
    boundary Γ(U).  The span governs resilience to random faults
    (Theorem 3.4): fault probability up to ~ 1/(2e·δ^{4σ}) is
    tolerable. *)

type witness = {
  compact_set : Bitset.t;
  boundary : Bitset.t;  (** Γ(U) *)
  tree : Steiner.result;  (** P(U), exact or 2-approximate *)
  ratio : float;  (** |P(U)| / |Γ(U)| *)
  tree_exact : bool;
}

val of_compact_set : ?exact_terminals:int -> Graph.t -> Bitset.t -> witness option
(** Evaluate one compact set.  Returns [None] when the boundary is
    empty (disconnected graph).  Steiner trees are exact (Dreyfus-
    Wagner) when the boundary has at most [exact_terminals] nodes
    (default 9), else 2-approximate — making the reported ratio an
    upper bound within a factor 2. *)

type estimate = {
  span : float;  (** largest ratio seen *)
  best : witness option;
  sets_examined : int;
  all_exact : bool;  (** every Steiner tree was exact *)
}

val exact : ?exact_terminals:int -> Graph.t -> estimate
(** Exhaustive over all compact sets; graphs of <= 20 nodes.  With
    [all_exact] true this is the true span; otherwise it is within a
    factor 2 above. *)

val sample : Rng.t -> ?exact_terminals:int -> ?samples:int -> Graph.t -> estimate
(** Monte-Carlo lower estimate: random compact sets of geometrically
    spaced target sizes (default 200 samples).  The true span is at
    least [span] / 2 (approximation slack) and can be larger (sampling
    may miss the maximizer). *)
