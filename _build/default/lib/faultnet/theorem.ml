let thm21_max_faults ~alpha ~n ~k =
  if alpha <= 0.0 || k < 2.0 then invalid_arg "thm21_max_faults: need alpha > 0, k >= 2";
  int_of_float (floor (alpha *. float_of_int n /. (4.0 *. k)))

let thm21_min_kept ~alpha ~n ~k ~f =
  float_of_int n -. (k *. float_of_int f /. alpha)

let thm21_expansion ~alpha ~k = (1.0 -. (1.0 /. k)) *. alpha

let thm21_epsilon ~k =
  if k < 2.0 then invalid_arg "thm21_epsilon: need k >= 2";
  1.0 -. (1.0 /. k)

let thm23_budget ~base_edges = base_edges

let thm23_component_bound ~delta ~k = (delta * k / 2) + 1

let thm31_fault_probability ~delta ~k =
  if delta < 2 || k < 1 then invalid_arg "thm31_fault_probability: bad parameters";
  4.0 *. log (float_of_int delta) /. float_of_int k

let thm34_max_fault_probability ~delta ~sigma =
  if delta < 1 || sigma < 1.0 then invalid_arg "thm34_max_fault_probability: bad parameters";
  1.0 /. (2.0 *. Float.exp 1.0 *. Float.pow (float_of_int delta) (4.0 *. sigma))

let thm34_max_epsilon ~delta =
  if delta < 1 then invalid_arg "thm34_max_epsilon: bad delta";
  1.0 /. (2.0 *. float_of_int delta)

let thm34_min_alpha_e ~delta ~n =
  if delta < 2 || n < 2 then invalid_arg "thm34_min_alpha_e: bad parameters";
  let log_d_n = log (float_of_int n) /. log (float_of_int delta) in
  6.0 *. float_of_int (delta * delta) *. Float.pow log_d_n 3.0 /. float_of_int n

let thm34_guaranteed_size ~n = float_of_int n /. 2.0

let thm36_mesh_span = 2.0

let mesh_fault_budget ~d =
  if d < 1 then invalid_arg "mesh_fault_budget: need d >= 1";
  thm34_max_fault_probability ~delta:(2 * d) ~sigma:2.0
