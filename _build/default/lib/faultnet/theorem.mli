(** The paper's quantitative bounds, as executable formulas.

    Experiments and tests compare measured values against these; they
    are kept in one module so every constant in the paper appears in
    exactly one place. *)

(** {2 Theorem 2.1 — Prune under adversarial faults} *)

val thm21_max_faults : alpha:float -> n:int -> k:float -> int
(** Largest f satisfying the hypothesis k·f/α <= n/4, i.e.
    floor(α·n / (4k)). *)

val thm21_min_kept : alpha:float -> n:int -> k:float -> f:int -> float
(** Guaranteed surviving size n - k·f/α. *)

val thm21_expansion : alpha:float -> k:float -> float
(** Guaranteed expansion (1 - 1/k)·α. *)

val thm21_epsilon : k:float -> float
(** The ε = 1 - 1/k passed to Prune. *)

(** {2 Theorem 2.3 — tightness via the chain graph} *)

val thm23_budget : base_edges:int -> int
(** One fault per base edge: the chain-center attack budget. *)

val thm23_component_bound : delta:int -> k:int -> int
(** Post-attack component size bound δ·k/2 + 1 (each fragment is a
    node with its half-chains). *)

(** {2 Theorem 3.1 — random faults on the chain graph} *)

val thm31_fault_probability : delta:int -> k:int -> float
(** p = 4·ln δ / k used in the proof. *)

(** {2 Theorem 3.4 — Prune2 under random faults} *)

val thm34_max_fault_probability : delta:int -> sigma:float -> float
(** p <= 1 / (2e·δ^{4σ}). *)

val thm34_max_epsilon : delta:int -> float
(** ε <= 1/(2δ). *)

val thm34_min_alpha_e : delta:int -> n:int -> float
(** α_e >= 6δ²·(log_δ n)³ / n. *)

val thm34_guaranteed_size : n:int -> float
(** n/2. *)

(** {2 Theorem 3.6 — span of the mesh} *)

val thm36_mesh_span : float
(** 2. *)

val mesh_fault_budget : d:int -> float
(** The fault probability a d-dimensional mesh tolerates by Theorems
    3.4 + 3.6: 1/(2e·(2d)^8) — "inversely polynomial in d". *)
