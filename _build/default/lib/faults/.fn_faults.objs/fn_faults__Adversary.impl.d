lib/faults/adversary.ml: Array Bfs Bitset Boundary Components Cut Estimate Fault_set Fn_expansion Fn_graph Fn_prng Fun Graph List Rng
