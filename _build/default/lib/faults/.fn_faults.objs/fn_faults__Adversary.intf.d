lib/faults/adversary.mli: Fault_set Fn_graph Fn_prng Graph Rng
