lib/faults/churn.ml: Array Bitset Dist Fault_set Fn_graph Fn_prng Graph
