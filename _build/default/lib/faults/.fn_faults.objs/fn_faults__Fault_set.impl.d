lib/faults/fault_set.ml: Bitset Fn_graph Format
