lib/faults/fault_set.mli: Bitset Fn_graph Format
