lib/faults/random_faults.ml: Bitset Builder Fault_set Fn_graph Fn_prng Graph Rng
