lib/faults/random_faults.mli: Fault_set Fn_graph Fn_prng Graph Rng
