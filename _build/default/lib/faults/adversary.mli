open Fn_graph
open Fn_prng

(** Adversarial fault strategies.

    Each strategy spends a node budget [f]; the constructive
    adversaries realize the attacks used in the paper's lower-bound
    proofs (Theorems 2.3 and 2.5), the others provide comparison
    baselines for experiment E1/E3. *)

val random : Rng.t -> Graph.t -> budget:int -> Fault_set.t
(** Uniformly random faulty nodes — the weakest adversary. *)

val degree_targeted : Graph.t -> budget:int -> Fault_set.t
(** Fail the highest-degree nodes first (ties by id). *)

val targets : Graph.t -> targets:int array -> budget:int -> Fault_set.t
(** Fail the listed nodes in order, up to the budget.  Used with
    {!Fn_topology.Chain_graph.chain_centers} to realize the Theorem
    2.3 adversary. *)

val ball_isolation : ?samples:int -> Rng.t -> Graph.t -> budget:int -> Fault_set.t
(** Find the largest BFS ball whose node boundary fits in the budget
    and fail that boundary, disconnecting the ball from the rest.
    [samples] sources are tried (default 16). *)

type cut_step = {
  fragment_size : int;
  cut_side : int;  (** |U| of the low-expansion set found *)
  removed : int;  (** |Γ(U)| paid from the budget *)
}

type recursive_result = {
  faults : Fault_set.t;
  steps : cut_step list;  (** in execution order *)
  final_fragments : int list;  (** alive component sizes at the end *)
}

val recursive_cut :
  ?rng:Rng.t -> ?max_budget:int -> Graph.t -> epsilon:float -> recursive_result
(** The Theorem 2.5 adversary: repeatedly pick the largest surviving
    fragment of size >= epsilon*n, find a low-node-expansion subset U
    (|U| <= fragment/2) with the {!Fn_expansion.Estimate} portfolio,
    and fail its boundary Γ(U).  Stops when all fragments are smaller
    than epsilon*n or the budget would be exceeded.  Default budget:
    unlimited. *)
