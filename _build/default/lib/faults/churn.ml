open Fn_graph
open Fn_prng

type snapshot = { time : float; faults : Fault_set.t }

let stationary_dead_fraction ~rate_fail ~rate_repair =
  if rate_fail < 0.0 || rate_repair <= 0.0 then
    invalid_arg "Churn.stationary_dead_fraction: need rate_fail >= 0, rate_repair > 0";
  rate_fail /. (rate_fail +. rate_repair)

(* Per-node independent on/off processes.  Instead of a global event
   queue we exploit independence: for each node, walk its alternating
   exponential holding times; record its state at each snapshot
   instant.  This is exact and O(expected flips per node + snapshots)
   per node. *)
let simulate rng g ~rate_fail ~rate_repair ~horizon ~snapshots =
  if rate_fail <= 0.0 || rate_repair <= 0.0 then
    invalid_arg "Churn.simulate: rates must be positive";
  if horizon <= 0.0 then invalid_arg "Churn.simulate: horizon must be positive";
  if snapshots < 1 then invalid_arg "Churn.simulate: need at least one snapshot";
  let n = Graph.num_nodes g in
  let times =
    Array.init snapshots (fun i ->
        horizon *. float_of_int (i + 1) /. float_of_int snapshots)
  in
  let dead_at = Array.map (fun _ -> Bitset.create n) times in
  for v = 0 to n - 1 do
    let t = ref 0.0 in
    let alive = ref true in
    let next_snapshot = ref 0 in
    while !next_snapshot < snapshots do
      let rate = if !alive then rate_fail else rate_repair in
      let hold = Dist.exponential rng rate in
      let until = !t +. hold in
      (* record the current state for every snapshot inside [t, until) *)
      while !next_snapshot < snapshots && times.(!next_snapshot) < until do
        if not !alive then Bitset.add dead_at.(!next_snapshot) v;
        incr next_snapshot
      done;
      t := until;
      alive := not !alive
    done
  done;
  Array.to_list
    (Array.mapi
       (fun i dead -> { time = times.(i); faults = Fault_set.of_faulty n dead })
       dead_at)
