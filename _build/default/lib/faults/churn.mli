open Fn_graph
open Fn_prng

(** Transient faults: continuous-time churn.

    The paper's fault taxonomy (§1.3) distinguishes permanent from
    transient faults; P2P networks live in the transient regime.  Each
    node runs an independent on/off Markov process: alive nodes fail
    at rate [rate_fail], dead nodes come back at rate [rate_repair].
    The stationary dead fraction is
    rate_fail / (rate_fail + rate_repair), so experiments can dial in
    any target fault level and watch expansion as a *trajectory*
    instead of a one-shot sample. *)

type snapshot = {
  time : float;
  faults : Fault_set.t;
}

val stationary_dead_fraction : rate_fail:float -> rate_repair:float -> float

val simulate :
  Rng.t ->
  Graph.t ->
  rate_fail:float ->
  rate_repair:float ->
  horizon:float ->
  snapshots:int ->
  snapshot list
(** Exact event-driven simulation from the all-alive state; returns
    [snapshots] evenly spaced fault patterns over (0, horizon].
    Requires positive rates, horizon and snapshot count.  O(events +
    snapshots·n) expected. *)
