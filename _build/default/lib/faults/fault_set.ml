open Fn_graph

type t = { faulty : Bitset.t; alive : Bitset.t }

let of_faulty n faulty =
  if Bitset.universe faulty <> n then invalid_arg "Fault_set.of_faulty: universe mismatch";
  { faulty = Bitset.copy faulty; alive = Bitset.complement faulty }

let of_faulty_list n xs = of_faulty n (Bitset.of_list n xs)

let of_faulty_array n xs = of_faulty n (Bitset.of_array n xs)

let none n = of_faulty n (Bitset.create n)

let count t = Bitset.cardinal t.faulty

let alive_count t = Bitset.cardinal t.alive

let union a b =
  let faulty = Bitset.copy a.faulty in
  Bitset.union_into faulty b.faulty;
  of_faulty (Bitset.universe faulty) faulty

let restrict_alive t set =
  let out = Bitset.copy set in
  Bitset.inter_into out t.alive;
  out

let pp fmt t =
  Format.fprintf fmt "faults(%d/%d)" (count t) (Bitset.universe t.faulty)
