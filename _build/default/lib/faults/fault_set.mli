open Fn_graph

(** A static node-fault pattern over a graph.

    The faulty graph G_f of the paper is represented as the original
    graph plus an [alive] mask; nothing is ever rebuilt. *)

type t = {
  faulty : Bitset.t;
  alive : Bitset.t;  (** complement of [faulty] *)
}

val of_faulty : int -> Bitset.t -> t
(** [of_faulty n faulty] for a graph with [n] nodes. *)

val of_faulty_list : int -> int list -> t
val of_faulty_array : int -> int array -> t
val none : int -> t
(** No faults. *)

val count : t -> int
(** Number of faulty nodes. *)

val alive_count : t -> int

val union : t -> t -> t
(** Faults of either pattern. *)

val restrict_alive : t -> Bitset.t -> Bitset.t
(** Intersect an arbitrary node set with the alive mask. *)

val pp : Format.formatter -> t -> unit
