open Fn_graph
open Fn_prng

let nodes_iid rng g p =
  if p < 0.0 || p > 1.0 then invalid_arg "Random_faults.nodes_iid: p out of [0,1]";
  let n = Graph.num_nodes g in
  let faulty = Bitset.create n in
  for v = 0 to n - 1 do
    if Rng.bernoulli rng p then Bitset.add faulty v
  done;
  Fault_set.of_faulty n faulty

let nodes_exact rng g f =
  let n = Graph.num_nodes g in
  if f < 0 || f > n then invalid_arg "Random_faults.nodes_exact: f out of range";
  Fault_set.of_faulty_array n (Rng.sample rng n f)

let edges_keep rng g p =
  if p < 0.0 || p > 1.0 then invalid_arg "Random_faults.edges_keep: p out of [0,1]";
  let b = Builder.create (Graph.num_nodes g) in
  Graph.iter_edges g (fun u v -> if Rng.bernoulli rng p then Builder.add_edge b u v);
  Builder.to_graph b

let edges_iid rng g p = edges_keep rng g (1.0 -. p)
