open Fn_graph
open Fn_prng

(** Random fault models (Section 3 of the paper). *)

val nodes_iid : Rng.t -> Graph.t -> float -> Fault_set.t
(** Each node fails independently with probability [p]. *)

val nodes_exact : Rng.t -> Graph.t -> int -> Fault_set.t
(** Exactly [f] faulty nodes, uniform among all f-subsets. *)

val edges_iid : Rng.t -> Graph.t -> float -> Graph.t
(** Each edge *survives* independently with probability [1 - p];
    returns the surviving graph (bond percolation uses the
    complementary convention: pass [p = 1 - survival]). *)

val edges_keep : Rng.t -> Graph.t -> float -> Graph.t
(** Each edge survives with probability [p] — the G^(p) of the paper's
    Section 1.1. *)
