lib/graph_core/bfs.ml: Array Bitset Graph Queue
