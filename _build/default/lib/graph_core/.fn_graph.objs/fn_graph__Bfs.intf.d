lib/graph_core/bfs.mli: Bitset Graph
