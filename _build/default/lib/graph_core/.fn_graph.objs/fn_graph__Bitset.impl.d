lib/graph_core/bitset.ml: Array Format List
