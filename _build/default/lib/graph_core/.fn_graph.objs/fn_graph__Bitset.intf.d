lib/graph_core/bitset.mli: Format
