lib/graph_core/boundary.ml: Bitset Graph List
