lib/graph_core/boundary.mli: Bitset Graph
