lib/graph_core/builder.ml: Array Graph List
