lib/graph_core/builder.mli: Graph
