lib/graph_core/check.ml: Array Graph Printf
