lib/graph_core/check.mli: Graph
