lib/graph_core/components.ml: Array Bitset Graph Hashtbl List Stack
