lib/graph_core/components.mli: Bitset Graph
