lib/graph_core/dfs.ml: Array Bitset Graph List Stack
