lib/graph_core/dfs.mli: Bitset Graph
