lib/graph_core/gio.ml: Bitset Buffer Fun Graph List Printf Scanf String
