lib/graph_core/gio.mli: Bitset Graph
