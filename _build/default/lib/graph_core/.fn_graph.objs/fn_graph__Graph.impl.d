lib/graph_core/graph.ml: Array Bitset Format
