lib/graph_core/graph.mli: Bitset Format
