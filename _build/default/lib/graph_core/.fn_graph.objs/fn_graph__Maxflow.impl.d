lib/graph_core/maxflow.ml: Array Bitset Graph List Queue
