lib/graph_core/maxflow.mli: Bitset Graph
