lib/graph_core/metrics.ml: Array Bfs Bitset Fn_prng Fun Graph Hashtbl List Rng
