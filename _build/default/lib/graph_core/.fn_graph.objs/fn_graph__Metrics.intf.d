lib/graph_core/metrics.mli: Bitset Fn_prng Graph Rng
