lib/graph_core/spanning_tree.ml: Array Bfs Bitset Graph List
