lib/graph_core/spanning_tree.mli: Bitset Graph
