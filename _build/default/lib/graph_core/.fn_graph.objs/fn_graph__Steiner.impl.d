lib/graph_core/steiner.ml: Array Bfs Bitset Dfs Graph List Queue Subgraph
