lib/graph_core/steiner.mli: Bitset Graph
