lib/graph_core/subgraph.ml: Array Bitset Graph
