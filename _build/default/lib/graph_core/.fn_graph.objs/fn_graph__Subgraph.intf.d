lib/graph_core/subgraph.mli: Bitset Graph
