let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

let check_src g alive src =
  if src < 0 || src >= Graph.num_nodes g then invalid_arg "Bfs: source out of range";
  if not (is_alive alive src) then invalid_arg "Bfs: source not alive"

let multi_source_distances ?alive g srcs =
  let n = Graph.num_nodes g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iter
    (fun s ->
      check_src g alive s;
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    srcs;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 && is_alive alive v then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let distances ?alive g src = multi_source_distances ?alive g [| src |]

let reachable ?alive g src =
  let dist = distances ?alive g src in
  let out = Bitset.create (Graph.num_nodes g) in
  Array.iteri (fun v d -> if d >= 0 then Bitset.add out v) dist;
  out

let tree ?alive g src =
  check_src g alive src;
  let n = Graph.num_nodes g in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  parent.(src) <- src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if parent.(v) < 0 && is_alive alive v then begin
          parent.(v) <- u;
          Queue.add v queue
        end)
  done;
  parent

let ball ?alive g src r =
  check_src g alive src;
  let n = Graph.num_nodes g in
  let dist = Array.make n (-1) in
  let out = Bitset.create n in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Bitset.add out src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if dist.(u) < r then
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) < 0 && is_alive alive v then begin
            dist.(v) <- dist.(u) + 1;
            Bitset.add out v;
            Queue.add v queue
          end)
  done;
  out

let ball_of_size ?alive g src k =
  check_src g alive src;
  let n = Graph.num_nodes g in
  let seen = Array.make n false in
  let out = Bitset.create n in
  let queue = Queue.create () in
  seen.(src) <- true;
  Queue.add src queue;
  let count = ref 0 in
  while !count < k && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Bitset.add out u;
    incr count;
    Graph.iter_neighbors g u (fun v ->
        if (not seen.(v)) && is_alive alive v then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
  done;
  out

let eccentricity ?alive g src =
  let dist = distances ?alive g src in
  Array.fold_left max 0 dist

let path_to ~parents target =
  if target < 0 || target >= Array.length parents || parents.(target) < 0 then raise Not_found;
  let rec walk v acc = if parents.(v) = v then v :: acc else walk parents.(v) (v :: acc) in
  walk target []
