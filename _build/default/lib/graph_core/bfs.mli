(** Breadth-first search, optionally restricted to an alive mask.

    All functions treat nodes outside [alive] as absent; omitting
    [alive] means the whole graph is alive.  Distances use [-1] for
    unreachable (or dead) nodes. *)

val distances : ?alive:Bitset.t -> Graph.t -> int -> int array
(** [distances g src] is the array of hop distances from [src];
    [-1] marks unreachable nodes.  [src] must be alive. *)

val multi_source_distances : ?alive:Bitset.t -> Graph.t -> int array -> int array
(** Distances from the nearest of several sources. *)

val reachable : ?alive:Bitset.t -> Graph.t -> int -> Bitset.t
(** Set of alive nodes reachable from [src] (including [src]). *)

val tree : ?alive:Bitset.t -> Graph.t -> int -> int array
(** BFS parent array: [parent.(src) = src], [-1] for unreachable. *)

val ball : ?alive:Bitset.t -> Graph.t -> int -> int -> Bitset.t
(** [ball g src r] is the set of alive nodes within distance [r]. *)

val ball_of_size : ?alive:Bitset.t -> Graph.t -> int -> int -> Bitset.t
(** [ball_of_size g src k] grows a BFS region from [src] and stops as
    soon as at least [k] nodes are collected (or the component is
    exhausted).  BFS order makes the result connected. *)

val eccentricity : ?alive:Bitset.t -> Graph.t -> int -> int
(** Largest finite distance from the source. *)

val path_to : parents:int array -> int -> int list
(** Reconstruct the path from the BFS source to a target out of a
    {!tree} parent array; raises [Not_found] if unreachable. *)
