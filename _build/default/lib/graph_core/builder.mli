(** Mutable graph builder.

    Generators accumulate edges here (amortised O(1) per edge) and
    call {!to_graph} once.  Duplicate edges and both orientations are
    tolerated and merged at build time. *)

type t

val create : int -> t
(** [create n] starts an edge accumulator for a graph on [n] nodes. *)

val num_nodes : t -> int

val add_edge : t -> int -> int -> unit
(** Record an undirected edge.  Rejects self-loops and out-of-range
    endpoints immediately. *)

val add_edges : t -> (int * int) list -> unit

val edge_count : t -> int
(** Edges recorded so far, duplicates included. *)

val to_graph : t -> Graph.t
(** Freeze into a CSR graph (sorts and dedupes). *)
