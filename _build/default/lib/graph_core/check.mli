(** Structural invariant checkers, used by tests and by generators in
    debug builds. *)

val csr : Graph.t -> (unit, string) result
(** Verify the CSR invariants: monotone [xadj], in-range sorted
    adjacency rows without duplicates or self-loops, and symmetry
    (every arc has its reverse). *)

val csr_exn : Graph.t -> unit
(** Same, raising [Failure] with the first violation. *)

val regular : Graph.t -> int -> bool
(** All degrees equal the given value. *)
