let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

let preorder ?alive g src =
  if src < 0 || src >= Graph.num_nodes g then invalid_arg "Dfs.preorder: source out of range";
  if not (is_alive alive src) then invalid_arg "Dfs.preorder: source not alive";
  let n = Graph.num_nodes g in
  let seen = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  let stack = Stack.create () in
  Stack.push src stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    if not seen.(u) then begin
      seen.(u) <- true;
      order := u :: !order;
      incr count;
      (* push in reverse so lower-numbered neighbours pop first *)
      let row = Graph.neighbors g u in
      for k = Array.length row - 1 downto 0 do
        let v = row.(k) in
        if (not seen.(v)) && is_alive alive v then Stack.push v stack
      done
    end
  done;
  let out = Array.make !count 0 in
  List.iteri (fun i v -> out.(!count - 1 - i) <- v) !order;
  out

let reachable ?alive g src =
  let order = preorder ?alive g src in
  let out = Bitset.create (Graph.num_nodes g) in
  Array.iter (Bitset.add out) order;
  out

let is_connected_subset g s =
  match Bitset.choose s with
  | None -> true
  | Some src ->
    let r = reachable ~alive:s g src in
    Bitset.cardinal r = Bitset.cardinal s

let forest ?alive g =
  let n = Graph.num_nodes g in
  let parent = Array.make n (-1) in
  let stack = Stack.create () in
  for root = 0 to n - 1 do
    if parent.(root) < 0 && is_alive alive root then begin
      parent.(root) <- root;
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        Graph.iter_neighbors g u (fun v ->
            if parent.(v) < 0 && is_alive alive v then begin
              parent.(v) <- u;
              Stack.push v stack
            end)
      done
    end
  done;
  parent
