let to_edge_list_string g =
  let buf = Buffer.create (16 * Graph.num_edges g) in
  Buffer.add_string buf
    (Printf.sprintf "# nodes %d edges %d\n" (Graph.num_nodes g) (Graph.num_edges g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_edge_list_string s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let edges = ref [] in
  let parse_header line =
    try Scanf.sscanf line "# nodes %d edges %d" (fun nodes _ -> n := nodes)
    with Scanf.Scan_failure _ | End_of_file -> ()
  in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line = "" then ()
      else if String.length line > 0 && line.[0] = '#' then parse_header line
      else
        match String.split_on_char ' ' line |> List.filter (fun x -> x <> "") with
        | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some u, Some v -> edges := (u, v) :: !edges
          | _ -> failwith (Printf.sprintf "Gio: bad edge on line %d: %S" (lineno + 1) line))
        | _ -> failwith (Printf.sprintf "Gio: bad line %d: %S" (lineno + 1) line))
    lines;
  let nodes =
    if !n >= 0 then !n
    else 1 + List.fold_left (fun acc (u, v) -> max acc (max u v)) (-1) !edges
  in
  Graph.of_edges nodes !edges

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_edge_list_string s)

let to_dot ?(name = "g") ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  (match highlight with
  | None -> ()
  | Some h ->
    Bitset.iter
      (fun v ->
        Buffer.add_string buf (Printf.sprintf "  %d [style=filled fillcolor=gray];\n" v))
      h);
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
