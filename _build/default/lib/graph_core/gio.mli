(** Graph serialization.

    The native format is a plain edge list: a header line
    ["# nodes <n> edges <m>"], then one ["u v"] pair per line.
    Comment lines start with ['#'].  A DOT exporter is provided for
    visual inspection of small graphs. *)

val to_edge_list_string : Graph.t -> string
val of_edge_list_string : string -> Graph.t
(** Raises [Failure] with a line-numbered message on malformed input. *)

val save : string -> Graph.t -> unit
(** Write to a file in edge-list format. *)

val load : string -> Graph.t

val to_dot : ?name:string -> ?highlight:Bitset.t -> Graph.t -> string
(** Graphviz output; nodes in [highlight] are filled. *)
