(* A small mutable residual network: directed arcs in pairs (arc k and
   its reverse k lxor 1), unit or larger capacities. *)

type residual = {
  n : int;
  head : int array;  (* arc -> target node *)
  cap : int array;  (* arc -> remaining capacity *)
  first : int list array;  (* node -> outgoing arc ids *)
}

(* arcs are accumulated then frozen *)
type builder = {
  bn : int;
  mutable heads : int list;
  mutable caps : int list;
  mutable count : int;
  out : int list array;
}

let new_builder n = { bn = n; heads = []; caps = []; count = 0; out = Array.make n [] }

let add_arc b u v c =
  (* forward arc *)
  b.heads <- v :: b.heads;
  b.caps <- c :: b.caps;
  b.out.(u) <- b.count :: b.out.(u);
  b.count <- b.count + 1;
  (* reverse arc *)
  b.heads <- u :: b.heads;
  b.caps <- 0 :: b.caps;
  b.out.(v) <- b.count :: b.out.(v);
  b.count <- b.count + 1

let add_undirected b u v =
  (* one arc pair per direction so each undirected edge carries at
     most one unit in either direction *)
  add_arc b u v 1;
  add_arc b v u 1

let freeze b =
  let head = Array.make b.count 0 and cap = Array.make b.count 0 in
  List.iteri (fun i h -> head.(b.count - 1 - i) <- h) b.heads;
  List.iteri (fun i c -> cap.(b.count - 1 - i) <- c) b.caps;
  { n = b.bn; head; cap; first = b.out }

(* BFS augmentation; returns the flow pushed (0 or 1 per round on unit
   networks, but written generally). *)
let augment r src dst =
  let parent_arc = Array.make r.n (-1) in
  let visited = Array.make r.n false in
  let queue = Queue.create () in
  visited.(src) <- true;
  Queue.add src queue;
  (try
     while not (Queue.is_empty queue) do
       let u = Queue.pop queue in
       List.iter
         (fun a ->
           let v = r.head.(a) in
           if (not visited.(v)) && r.cap.(a) > 0 then begin
             visited.(v) <- true;
             parent_arc.(v) <- a;
             if v = dst then raise Exit;
             Queue.add v queue
           end)
         r.first.(u)
     done
   with Exit -> ());
  if not visited.(dst) then 0
  else begin
    (* find bottleneck (always >= 1) and update the path *)
    let rec bottleneck v acc =
      if v = src then acc
      else begin
        let a = parent_arc.(v) in
        let u = r.head.(a lxor 1) in
        bottleneck u (min acc r.cap.(a))
      end
    in
    let delta = bottleneck dst max_int in
    let rec update v =
      if v <> src then begin
        let a = parent_arc.(v) in
        r.cap.(a) <- r.cap.(a) - delta;
        r.cap.(a lxor 1) <- r.cap.(a lxor 1) + delta;
        update r.head.(a lxor 1)
      end
    in
    update dst;
    delta
  end

let is_alive alive v = match alive with None -> true | Some m -> Bitset.mem m v

let check_endpoints ?alive g src dst =
  let n = Graph.num_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then invalid_arg "Maxflow: endpoint out of range";
  if src = dst then invalid_arg "Maxflow: endpoints must differ";
  if not (is_alive alive src && is_alive alive dst) then
    invalid_arg "Maxflow: endpoints must be alive"

let edge_residual ?alive g =
  let n = Graph.num_nodes g in
  let b = new_builder n in
  Graph.iter_edges g (fun u v ->
      if is_alive alive u && is_alive alive v then add_undirected b u v);
  freeze b

let run_flow r src dst =
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let pushed = augment r src dst in
    if pushed = 0 then continue := false else total := !total + pushed
  done;
  !total

let max_flow ?alive g ~src ~dst =
  check_endpoints ?alive g src dst;
  let r = edge_residual ?alive g in
  run_flow r src dst

let min_cut_side ?alive g ~src ~dst =
  check_endpoints ?alive g src dst;
  let r = edge_residual ?alive g in
  ignore (run_flow r src dst);
  (* residual reachability from src *)
  let side = Bitset.create r.n in
  let queue = Queue.create () in
  Bitset.add side src;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun a ->
        let v = r.head.(a) in
        if r.cap.(a) > 0 && not (Bitset.mem side v) then begin
          Bitset.add side v;
          Queue.add v queue
        end)
      r.first.(u)
  done;
  side

let vertex_disjoint_paths ?alive g ~src ~dst =
  check_endpoints ?alive g src dst;
  let n = Graph.num_nodes g in
  (* node splitting: v_in = 2v, v_out = 2v+1; interior nodes have a
     unit arc v_in -> v_out, endpoints unbounded *)
  let b = new_builder (2 * n) in
  for v = 0 to n - 1 do
    if is_alive alive v then begin
      let c = if v = src || v = dst then max_int / 4 else 1 in
      add_arc b (2 * v) ((2 * v) + 1) c
    end
  done;
  Graph.iter_edges g (fun u v ->
      if is_alive alive u && is_alive alive v then begin
        add_arc b ((2 * u) + 1) (2 * v) 1;
        add_arc b ((2 * v) + 1) (2 * u) 1
      end);
  let r = freeze b in
  run_flow r ((2 * src) + 1) (2 * dst)

let edge_connectivity ?alive g =
  let n = Graph.num_nodes g in
  let alive_list = ref [] in
  for v = n - 1 downto 0 do
    if is_alive alive v then alive_list := v :: !alive_list
  done;
  match !alive_list with
  | [] | [ _ ] -> 0
  | s0 :: rest ->
    List.fold_left (fun acc t -> min acc (max_flow ?alive g ~src:s0 ~dst:t)) max_int rest
