(** Unit-capacity maximum flow and connectivity (Menger).

    Exact min-cut machinery complementing the heuristic expansion
    estimates: max s-t flow equals the number of edge-disjoint s-t
    paths, and with node splitting, of internally vertex-disjoint
    paths.  Edmonds–Karp on the residual graph; on unit capacities
    the flow value is bounded by the degree, so queries are cheap. *)

val max_flow : ?alive:Bitset.t -> Graph.t -> src:int -> dst:int -> int
(** Edge-disjoint s-t paths (undirected, each edge usable once).
    Requires distinct alive endpoints. *)

val min_cut_side : ?alive:Bitset.t -> Graph.t -> src:int -> dst:int -> Bitset.t
(** The source side of a minimum s-t edge cut: alive nodes reachable
    from [src] in the final residual graph.  Its alive edge boundary
    equals {!max_flow}. *)

val vertex_disjoint_paths : ?alive:Bitset.t -> Graph.t -> src:int -> dst:int -> int
(** Internally vertex-disjoint s-t paths (Menger), computed by node
    splitting.  For adjacent nodes the direct edge counts as one
    path.  Requires distinct alive endpoints. *)

val edge_connectivity : ?alive:Bitset.t -> Graph.t -> int
(** Global edge connectivity of the alive subgraph: min over t of
    max_flow(s0, t) with s0 the first alive node (correct for
    undirected graphs).  0 if fewer than 2 alive nodes or
    disconnected. *)
