open Fn_prng

(** Global graph metrics used by reports and experiments.

    Exact distance-based metrics cost O(n·m); the [~samples] variants
    trade exactness for speed on large graphs and are marked as
    estimates. *)

val diameter : ?alive:Bitset.t -> Graph.t -> int
(** Largest finite pairwise distance among alive nodes, by BFS from
    every alive node; 0 for fewer than 2 alive nodes.  Disconnected
    pairs are ignored. *)

val diameter_estimate : ?alive:Bitset.t -> Rng.t -> ?sweeps:int -> Graph.t -> int
(** Double-sweep lower bound: BFS from a random node, then from the
    farthest node found, repeated [sweeps] times (default 4).  Exact
    on trees; never overestimates. *)

val mean_distance : ?alive:Bitset.t -> ?samples:int -> Rng.t -> Graph.t -> float
(** Average finite pairwise distance from [samples] BFS sources
    (default 32, capped by alive count).  NaN if no finite pair. *)

val degree_histogram : ?alive:Bitset.t -> Graph.t -> (int * int) list
(** Sorted [(degree, count)] pairs over alive nodes, with degrees
    counted inside the alive mask. *)

val clustering_coefficient : ?alive:Bitset.t -> Graph.t -> float
(** Mean local clustering coefficient over alive nodes of alive-degree
    >= 2 (0 if there are none). *)
