(** Spanning trees and tree utilities. *)

type tree = {
  root : int;
  parent : int array;  (** [parent.(root) = root]; [-1] for nodes outside the tree *)
  nodes : int array;  (** tree nodes in BFS order from the root *)
}

val bfs_tree : ?alive:Bitset.t -> Graph.t -> int -> tree
(** BFS spanning tree of the component containing the source. *)

val num_edges : tree -> int
(** Edges of the tree, i.e. [|nodes| - 1]. *)

val tree_edges : tree -> (int * int) list
(** Parent-child pairs. *)

val is_spanning : Graph.t -> Bitset.t -> tree -> bool
(** Does the tree cover exactly the given node set (and use only
    graph edges)? *)

val total_weighted_length : dist:int array array -> int array -> int
(** Weight of the minimum spanning tree of a complete metric graph on
    the given terminal indices, with pairwise distances given by
    [dist] (Prim's algorithm).  Exposed for the Steiner 2-approx. *)
