type result = { nodes : Bitset.t; edge_count : int }

let node_count r = Bitset.cardinal r.nodes

(* Both algorithms work on a materialised induced subgraph when an
   alive mask is given; ids are translated back at the end. *)

let prepare ?alive g terminals =
  if Array.length terminals = 0 then invalid_arg "Steiner: no terminals";
  match alive with
  | None -> (g, terminals, None)
  | Some mask ->
    Array.iter
      (fun t ->
        if not (Bitset.mem mask t) then invalid_arg "Steiner: terminal not alive")
      terminals;
    let sub = Subgraph.induce g mask in
    let mapped = Array.map (fun t -> sub.Subgraph.of_parent.(t)) terminals in
    (sub.Subgraph.graph, mapped, Some sub)

let lift sub_opt n_parent nodes edge_count =
  match sub_opt with
  | None -> { nodes; edge_count }
  | Some sub ->
    let lifted = Bitset.create n_parent in
    Bitset.iter (fun v -> Bitset.add lifted sub.Subgraph.to_parent.(v)) nodes;
    { nodes = lifted; edge_count }

(* ---- 2-approximation ---- *)

let approx ?alive g terminals =
  let g', ts, sub_opt = prepare ?alive g terminals in
  let n = Graph.num_nodes g' in
  let t = Array.length ts in
  (* distances and BFS parents from every terminal *)
  let dist = Array.map (fun s -> Bfs.distances g' s) ts in
  Array.iteri
    (fun i d ->
      Array.iteri
        (fun j tj ->
          if d.(tj) < 0 then begin
            ignore (i, j);
            invalid_arg "Steiner.approx: terminals not connected"
          end)
        ts)
    dist;
  let parents = Array.map (fun s -> Bfs.tree g' s) ts in
  (* Prim MST over the terminal metric closure *)
  let in_tree = Array.make t false in
  let best = Array.make t max_int in
  let best_from = Array.make t 0 in
  in_tree.(0) <- true;
  for j = 1 to t - 1 do
    best.(j) <- dist.(0).(ts.(j));
    best_from.(j) <- 0
  done;
  let nodes = Bitset.create n in
  Bitset.add nodes ts.(0);
  for _ = 1 to t - 1 do
    let pick = ref (-1) in
    for j = 0 to t - 1 do
      if (not in_tree.(j)) && (!pick < 0 || best.(j) < best.(!pick)) then pick := j
    done;
    let j = !pick in
    in_tree.(j) <- true;
    (* walk the BFS tree of terminal best_from.(j) from ts.(j) back to it *)
    let path = Bfs.path_to ~parents:parents.(best_from.(j)) ts.(j) in
    List.iter (Bitset.add nodes) path;
    for l = 0 to t - 1 do
      if (not in_tree.(l)) && dist.(j).(ts.(l)) < best.(l) then begin
        best.(l) <- dist.(j).(ts.(l));
        best_from.(l) <- j
      end
    done
  done;
  (* prune: spanning tree of the union, then drop non-terminal leaves *)
  let root = ts.(0) in
  let tree_parent = Bfs.tree ~alive:nodes g' root in
  let is_terminal = Array.make n false in
  Array.iter (fun s -> is_terminal.(s) <- true) ts;
  let child_count = Array.make n 0 in
  Bitset.iter
    (fun v -> if v <> root then child_count.(tree_parent.(v)) <- child_count.(tree_parent.(v)) + 1)
    nodes;
  let queue = Queue.create () in
  Bitset.iter
    (fun v -> if child_count.(v) = 0 && (not is_terminal.(v)) && v <> root then Queue.add v queue)
    nodes;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Bitset.remove nodes v;
    let p = tree_parent.(v) in
    child_count.(p) <- child_count.(p) - 1;
    if child_count.(p) = 0 && (not is_terminal.(p)) && p <> root then Queue.add p queue
  done;
  let edge_count = Bitset.cardinal nodes - 1 in
  lift sub_opt (Graph.num_nodes g) nodes edge_count

(* ---- Dreyfus-Wagner exact DP ---- *)

let infinity_cost = max_int / 4

let exact ?alive g terminals =
  let g', ts, sub_opt = prepare ?alive g terminals in
  let n = Graph.num_nodes g' in
  let t = Array.length ts in
  if t > 12 then invalid_arg "Steiner.exact: too many terminals (max 12)";
  let dist = Array.init n (fun v -> Bfs.distances g' v) in
  Array.iter
    (fun ti ->
      Array.iter
        (fun tj -> if dist.(ti).(tj) < 0 then invalid_arg "Steiner.exact: terminals not connected")
        ts)
    ts;
  let full = (1 lsl t) - 1 in
  (* dp.(mask).(v) = min edges of a tree spanning terminals(mask) ∪ {v} *)
  let dp = Array.make_matrix (full + 1) n infinity_cost in
  for i = 0 to t - 1 do
    for v = 0 to n - 1 do
      let d = dist.(ts.(i)).(v) in
      dp.(1 lsl i).(v) <- (if d < 0 then infinity_cost else d)
    done
  done;
  let d2 u v =
    let d = dist.(u).(v) in
    if d < 0 then infinity_cost else d
  in
  for mask = 1 to full do
    if mask land (mask - 1) <> 0 then begin
      (* merge step: partitions mask = s ⊎ other with the lowest
         terminal in s; enumerate sub over proper submasks of rest
         (including the empty one), s = sub ∪ {low} *)
      let low = mask land -mask in
      let rest = mask lxor low in
      let sub = ref ((rest - 1) land rest) in
      let continue = ref true in
      while !continue do
        let s = !sub lor low in
        let other = mask lxor s in
        for v = 0 to n - 1 do
          let c = dp.(s).(v) + dp.(other).(v) in
          if c < dp.(mask).(v) then dp.(mask).(v) <- c
        done;
        if !sub = 0 then continue := false else sub := (!sub - 1) land rest
      done;
      (* relax through shortest paths *)
      for v = 0 to n - 1 do
        for u = 0 to n - 1 do
          let c = dp.(mask).(u) + d2 u v in
          if c < dp.(mask).(v) then dp.(mask).(v) <- c
        done
      done
    end
  done;
  (* pick the best root and reconstruct the node set *)
  let root = ref 0 in
  for v = 1 to n - 1 do
    if dp.(full).(v) < dp.(full).(!root) then root := v
  done;
  let nodes = Bitset.create n in
  let add_path u v =
    (* walk from v to u following decreasing dist.(u) *)
    let cur = ref v in
    Bitset.add nodes v;
    while !cur <> u do
      let next = ref (-1) in
      Graph.iter_neighbors g' !cur (fun w ->
          if !next < 0 && dist.(u).(w) = dist.(u).(!cur) - 1 then next := w);
      assert (!next >= 0);
      Bitset.add nodes !next;
      cur := !next
    done
  in
  let rec expand mask v =
    Bitset.add nodes v;
    if mask land (mask - 1) = 0 then begin
      (* singleton: path from the terminal to v *)
      let i =
        let rec idx k = if mask lsr k land 1 = 1 then k else idx (k + 1) in
        idx 0
      in
      add_path ts.(i) v
    end
    else begin
      (* try relaxation transitions first *)
      let via = ref (-1) in
      for u = 0 to n - 1 do
        if !via < 0 && u <> v && dp.(mask).(u) + d2 u v = dp.(mask).(v) then via := u
      done;
      match !via with
      | u when u >= 0 ->
        add_path u v;
        expand mask u
      | _ ->
        (* must be a merge at v *)
        let low = mask land -mask in
        let rest = mask lxor low in
        let found = ref false in
        let sub = ref ((rest - 1) land rest) in
        let continue = ref true in
        while (not !found) && !continue do
          let s = !sub lor low in
          let other = mask lxor s in
          if dp.(s).(v) + dp.(other).(v) = dp.(mask).(v) then begin
            found := true;
            expand s v;
            expand other v
          end;
          if !sub = 0 then continue := false else sub := (!sub - 1) land rest
        done;
        assert !found
    end
  in
  expand full !root;
  let edge_count = dp.(full).(!root) in
  lift sub_opt (Graph.num_nodes g) nodes edge_count

let verify ?alive g terminals r =
  let n = Graph.num_nodes g in
  let ok_universe = Bitset.universe r.nodes = n in
  let all_terminals = Array.for_all (fun t -> Bitset.mem r.nodes t) terminals in
  let alive_ok =
    match alive with None -> true | Some mask -> Bitset.subset r.nodes mask
  in
  let connected = Dfs.is_connected_subset g r.nodes in
  let tree_edges_ok = r.edge_count = Bitset.cardinal r.nodes - 1 in
  ok_universe && all_terminals && alive_ok && connected && tree_edges_ok
