(** Steiner trees on unweighted graphs.

    The paper's span parameter needs |P(U)|, the node count of a
    smallest tree connecting the boundary Γ(U).  Minimum Steiner tree
    is NP-hard, so we provide the classic pair:

    - {!exact}: the Dreyfus-Wagner dynamic program, exponential in the
      number of terminals (use for |terminals| <= ~10) but exact;
    - {!approx}: the metric-closure MST heuristic with shortest-path
      expansion and leaf pruning, a 2(1 - 1/t)-approximation.

    Both return the tree as a node set together with its edge count
    (always [|nodes| - 1]); tests verify approx/exact agreement ratios
    on random graphs. *)

type result = {
  nodes : Bitset.t;  (** nodes of the tree, terminals included *)
  edge_count : int;
}

val node_count : result -> int

val approx : ?alive:Bitset.t -> Graph.t -> int array -> result
(** [approx g terminals] requires all terminals alive and in one alive
    component; raises [Invalid_argument] otherwise.  O(t (n + m)) plus
    an O(t^2) MST. *)

val exact : ?alive:Bitset.t -> Graph.t -> int array -> result
(** Dreyfus-Wagner.  Requires [1 <= t <= 12]; memory O(2^t * n),
    time O(3^t n + 2^t n^2). *)

val verify : ?alive:Bitset.t -> Graph.t -> int array -> result -> bool
(** Check that the claimed node set induces a connected alive subgraph
    containing every terminal, with at least a spanning tree's worth
    of edges consistent with [edge_count]. *)
