type t = { graph : Graph.t; to_parent : int array; of_parent : int array }

let induce g keep =
  let n = Graph.num_nodes g in
  if Bitset.universe keep <> n then invalid_arg "Subgraph.induce: universe mismatch";
  let to_parent = Bitset.to_array keep in
  let of_parent = Array.make n (-1) in
  Array.iteri (fun new_id old_id -> of_parent.(old_id) <- new_id) to_parent;
  let m = Array.length to_parent in
  (* count alive-alive degrees to size the CSR arrays exactly *)
  let deg = Array.make m 0 in
  for new_id = 0 to m - 1 do
    Graph.iter_neighbors g to_parent.(new_id) (fun w ->
        if of_parent.(w) >= 0 then deg.(new_id) <- deg.(new_id) + 1)
  done;
  let xadj = Array.make (m + 1) 0 in
  for v = 0 to m - 1 do
    xadj.(v + 1) <- xadj.(v) + deg.(v)
  done;
  let adj = Array.make xadj.(m) 0 in
  let cursor = Array.copy xadj in
  for new_id = 0 to m - 1 do
    (* parent rows are sorted and of_parent is monotone, so rows stay
       sorted without re-sorting *)
    Graph.iter_neighbors g to_parent.(new_id) (fun w ->
        let nw = of_parent.(w) in
        if nw >= 0 then begin
          adj.(cursor.(new_id)) <- nw;
          cursor.(new_id) <- cursor.(new_id) + 1
        end)
  done;
  { graph = Graph.unsafe_of_csr ~n:m ~xadj ~adj; to_parent; of_parent }

let lift_set t s =
  let out = Bitset.create (Array.length t.of_parent) in
  Bitset.iter (fun v -> Bitset.add out t.to_parent.(v)) s;
  out

let restrict_set t s =
  let out = Bitset.create (Graph.num_nodes t.graph) in
  Bitset.iter
    (fun v ->
      let nv = t.of_parent.(v) in
      if nv >= 0 then Bitset.add out nv)
    s;
  out
