(** Induced subgraphs with node-id mappings.

    Pruning iterations materialise the surviving subgraph when masked
    traversals become the bottleneck; the mapping lets certificates be
    translated back to original node ids. *)

type t = {
  graph : Graph.t;  (** the induced subgraph, nodes renumbered 0.. *)
  to_parent : int array;  (** new id -> original id *)
  of_parent : int array;  (** original id -> new id, or [-1] *)
}

val induce : Graph.t -> Bitset.t -> t
(** Subgraph induced by the given node set. *)

val lift_set : t -> Bitset.t -> Bitset.t
(** Translate a node set of the subgraph into original ids. *)

val restrict_set : t -> Bitset.t -> Bitset.t
(** Translate a node set of the parent into subgraph ids, dropping
    nodes that were not kept. *)
