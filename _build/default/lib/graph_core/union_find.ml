type t = {
  parent : int array;
  sz : int array;
  mutable max_size : int;
  mutable components : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  {
    parent = Array.init n Fun.id;
    sz = Array.make n 1;
    max_size = (if n = 0 then 0 else 1);
    components = n;
  }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb = if t.sz.(ra) >= t.sz.(rb) then (ra, rb) else (rb, ra) in
    t.parent.(rb) <- ra;
    t.sz.(ra) <- t.sz.(ra) + t.sz.(rb);
    if t.sz.(ra) > t.max_size then t.max_size <- t.sz.(ra);
    t.components <- t.components - 1;
    true
  end

let connected t a b = find t a = find t b

let size t x = t.sz.(find t x)

let max_component_size t = t.max_size

let num_components t = t.components
