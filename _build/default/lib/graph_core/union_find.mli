(** Disjoint-set forest with union by size and path compression.

    Tracks component sizes and the current maximum component size,
    which is what percolation sweeps (Newman-Ziff) query after every
    union, so both queries are O(1). *)

type t

val create : int -> t
(** [create n] makes [n] singleton components. *)

val find : t -> int -> int
(** Canonical representative; amortised near-O(1). *)

val union : t -> int -> int -> bool
(** Merge the two components; returns [false] if already merged. *)

val connected : t -> int -> int -> bool

val size : t -> int -> int
(** Size of the component containing the given node. *)

val max_component_size : t -> int
(** Size of the largest component, maintained incrementally. *)

val num_components : t -> int
