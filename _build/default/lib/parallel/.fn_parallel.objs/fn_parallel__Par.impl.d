lib/parallel/par.ml: Array Domain Fn_prng Fun
