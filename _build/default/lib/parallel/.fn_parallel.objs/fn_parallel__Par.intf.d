lib/parallel/par.mli: Fn_prng
