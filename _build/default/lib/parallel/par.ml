let default_domains () =
  let n = Domain.recommended_domain_count () in
  max 1 (min 8 n)

let map ?domains f a =
  let n = Array.length a in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let workers = min domains n in
  if workers <= 1 || n < 2 then Array.map f a
  else begin
    let out = Array.make n None in
    let chunk = (n + workers - 1) / workers in
    let run_chunk w () =
      let lo = w * chunk in
      let hi = min n (lo + chunk) - 1 in
      for i = lo to hi do
        out.(i) <- Some (f a.(i))
      done
    in
    let handles = Array.init workers (fun w -> Domain.spawn (run_chunk w)) in
    Array.iter Domain.join handles;
    Array.map
      (function Some v -> v | None -> assert false)
      out
  end

let init ?domains n f = map ?domains f (Array.init n Fun.id)

let trials ?domains ~rng n job =
  let rngs = Fn_prng.Rng.split_n rng n in
  map ?domains job rngs
