lib/percolation/newman_ziff.ml: Array Float Fn_graph Fn_parallel Fn_prng Graph Rng Union_find
