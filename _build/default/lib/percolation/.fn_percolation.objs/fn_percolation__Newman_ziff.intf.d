lib/percolation/newman_ziff.mli: Fn_graph Fn_prng Graph Rng
