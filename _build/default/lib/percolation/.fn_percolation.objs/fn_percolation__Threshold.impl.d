lib/percolation/threshold.ml: Array Fn_parallel List Newman_ziff
