lib/percolation/threshold.mli: Fn_graph Fn_prng Graph Rng
