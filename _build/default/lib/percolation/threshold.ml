
type mode = Site | Bond

type result = { p_star : float; level : float; runs : int }

let curves ?domains ~rng ~runs mode g =
  let make = match mode with Site -> Newman_ziff.site_run | Bond -> Newman_ziff.bond_run in
  Fn_parallel.Par.trials ?domains ~rng runs (fun r -> make r g)

let mean_gamma cs p =
  let total = Array.fold_left (fun acc c -> acc +. Newman_ziff.gamma_at c p) 0.0 cs in
  total /. float_of_int (Array.length cs)

let estimate ?domains ?(runs = 32) ?(level = 0.4) ?(tolerance = 1e-3) ~rng mode g =
  if runs < 1 then invalid_arg "Threshold.estimate: need runs >= 1";
  let cs = curves ?domains ~rng ~runs mode g in
  let lo = ref 0.0 and hi = ref 1.0 in
  (* γ is monotone in p on a fixed curve set, so bisection is sound *)
  while !hi -. !lo > tolerance do
    let mid = (!lo +. !hi) /. 2.0 in
    if mean_gamma cs mid >= level then hi := mid else lo := mid
  done;
  { p_star = (!lo +. !hi) /. 2.0; level; runs }

let gamma_curve ?domains ?(runs = 32) ~rng mode g ps =
  let cs = curves ?domains ~rng ~runs mode g in
  List.map
    (fun p ->
      let values = Array.map (fun c -> Newman_ziff.gamma_at c p) cs in
      let n = float_of_int runs in
      let mean = Array.fold_left ( +. ) 0.0 values /. n in
      let var =
        if runs < 2 then 0.0
        else
          Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
          /. (n -. 1.0)
      in
      (p, mean, sqrt var))
    ps
