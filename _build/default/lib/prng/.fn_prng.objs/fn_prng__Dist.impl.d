lib/prng/dist.ml: Array Float Rng
