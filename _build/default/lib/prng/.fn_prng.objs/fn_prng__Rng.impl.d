lib/prng/rng.ml: Array Fun Hashtbl Int64 Splitmix64 Xoshiro256
