lib/prng/rng.mli:
