lib/prng/xoshiro256.mli: Splitmix64
