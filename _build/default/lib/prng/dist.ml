let geometric rng p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: need 0 < p <= 1";
  if p = 1.0 then 0
  else
    let u = Rng.unit_float rng in
    (* inversion: floor(log(1-u) / log(1-p)) *)
    int_of_float (Float.log1p (-.u) /. Float.log1p (-.p))

let exponential rng lambda =
  if lambda <= 0.0 then invalid_arg "Dist.exponential: need lambda > 0";
  -.Float.log1p (-.Rng.unit_float rng) /. lambda

let normal rng mu sigma =
  let rec polar () =
    let u = (2.0 *. Rng.unit_float rng) -. 1.0 in
    let v = (2.0 *. Rng.unit_float rng) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then polar ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  mu +. (sigma *. polar ())

let binomial_direct rng n p =
  (* geometric skipping: expected O(np + 1) draws *)
  let count = ref 0 in
  let pos = ref (-1) in
  let continue = ref true in
  while !continue do
    let skip = geometric rng p in
    pos := !pos + skip + 1;
    if !pos < n then incr count else continue := false
  done;
  !count

let rec binomial rng n p =
  if n < 0 then invalid_arg "Dist.binomial: need n >= 0";
  if p <= 0.0 || n = 0 then 0
  else if p >= 1.0 then n
  else if p > 0.5 then n - binomial rng n (1.0 -. p)
  else if float_of_int n *. p <= 64.0 then binomial_direct rng n p
  else begin
    (* normal approximation with clamping; accurate enough for the
       large-np regime used by percolation sweeps *)
    let np = float_of_int n *. p in
    let sd = sqrt (np *. (1.0 -. p)) in
    let v = int_of_float (Float.round (normal rng np sd)) in
    max 0 (min n v)
  end

let categorical rng w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if not (total > 0.0) then invalid_arg "Dist.categorical: weights must have positive sum";
  let x = Rng.float rng total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
