(** Random variates beyond the uniform primitives of {!Rng}. *)

val geometric : Rng.t -> float -> int
(** [geometric rng p] is the number of failures before the first
    success in Bernoulli(p) trials, i.e. supported on 0, 1, 2, ...
    Requires [0 < p <= 1].  Sampled by inversion, O(1). *)

val binomial : Rng.t -> int -> float -> int
(** [binomial rng n p] draws from Binomial(n, p).  Uses geometric
    skipping when [n*p] is small (O(np) expected) and a
    normal-approximation rejection otherwise; exact in the first
    regime, and the second regime is only used by percolation sweeps
    where a relative error of ~1e-3 in tail probabilities is
    irrelevant next to Monte-Carlo noise. *)

val exponential : Rng.t -> float -> float
(** [exponential rng lambda] draws from Exp(lambda), [lambda > 0]. *)

val normal : Rng.t -> float -> float -> float
(** [normal rng mu sigma] draws a Gaussian by Marsaglia's polar
    method. *)

val categorical : Rng.t -> float array -> int
(** [categorical rng w] returns index [i] with probability
    proportional to [w.(i)].  Weights must be non-negative with a
    positive sum.  O(n) per draw. *)
