(** SplitMix64 pseudo-random number generator.

    A small, fast, statistically solid 64-bit generator (Steele, Lea &
    Flood, OOPSLA 2014).  Its main role here is seeding and splitting:
    a single [int64] state yields an arbitrary stream of well-mixed
    64-bit values, which we use to initialise {!Xoshiro256} states and
    to derive independent child generators. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator.  Distinct seeds give
    streams that are, for all practical purposes, independent. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit value. *)

val mix : int64 -> int64
(** [mix z] applies the SplitMix64 finalizer to [z] without any state.
    Useful for hashing small integers into seeds. *)
