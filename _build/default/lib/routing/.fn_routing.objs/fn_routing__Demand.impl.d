lib/routing/demand.ml: Array Bitset Fn_graph Fn_prng Fun Graph List Rng
