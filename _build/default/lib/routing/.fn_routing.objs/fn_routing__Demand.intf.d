lib/routing/demand.mli: Bitset Fn_graph Fn_prng Graph Rng
