lib/routing/route.ml: Array Bfs Bitset Fn_graph Hashtbl List
