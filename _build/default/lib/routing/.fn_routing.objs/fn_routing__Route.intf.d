lib/routing/route.mli: Bitset Fn_graph Graph
