lib/routing/sim.ml: Array Fn_graph Graph List Queue Route
