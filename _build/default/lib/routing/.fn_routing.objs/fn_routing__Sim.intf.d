lib/routing/sim.mli: Fn_graph Graph Route
