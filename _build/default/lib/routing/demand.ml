open Fn_graph
open Fn_prng

let alive_nodes ?alive g =
  match alive with
  | Some m -> Bitset.to_array m
  | None -> Array.init (Graph.num_nodes g) Fun.id

let permutation rng ?alive g =
  let nodes = alive_nodes ?alive g in
  let n = Array.length nodes in
  if n < 2 then [||]
  else begin
    let perm = Rng.permutation rng n in
    (* rotate fixed points away: a derangement is not required, but
       self-pairs carry no traffic, so swap them with a neighbour *)
    for i = 0 to n - 1 do
      if perm.(i) = i then begin
        let j = (i + 1) mod n in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      end
    done;
    Array.init n (fun i -> (nodes.(i), nodes.(perm.(i))))
    |> Array.to_list
    |> List.filter (fun (s, d) -> s <> d)
    |> Array.of_list
  end

let random_pairs rng ?alive g k =
  let nodes = alive_nodes ?alive g in
  let n = Array.length nodes in
  if n < 2 then invalid_arg "Demand.random_pairs: need >= 2 alive nodes";
  Array.init k (fun _ ->
      let s = Rng.int rng n in
      let rec pick () =
        let d = Rng.int rng n in
        if d = s then pick () else d
      in
      (nodes.(s), nodes.(pick ())))

let all_to_one ?alive g sink =
  let nodes = alive_nodes ?alive g in
  Array.of_list
    (Array.to_list nodes |> List.filter (fun v -> v <> sink) |> List.map (fun v -> (v, sink)))
