open Fn_graph
open Fn_prng

(** Traffic workloads for the routing experiments: which (source,
    destination) pairs want to communicate.  The paper's motivation is
    that expansion measures a network's remaining bandwidth — these
    demands are what we push through faulty networks to check it. *)

val permutation : Rng.t -> ?alive:Bitset.t -> Graph.t -> (int * int) array
(** A random permutation workload on the alive nodes: every alive node
    sends one packet, every alive node receives one, no fixed
    points unless forced (an alive count of 1 yields the empty
    demand). *)

val random_pairs : Rng.t -> ?alive:Bitset.t -> Graph.t -> int -> (int * int) array
(** [random_pairs rng g k]: [k] independent (src, dst) pairs with
    src <> dst, uniform over alive nodes.  Requires >= 2 alive. *)

val all_to_one : ?alive:Bitset.t -> Graph.t -> int -> (int * int) array
(** Every other alive node sends to the given sink — the worst-case
    single-commodity concentration. *)
