open Fn_graph

type t = {
  pairs : (int * int) array;
  routes : int list array;
  unroutable : int;
}

let shortest ?alive g pairs =
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  (* group pairs by source so each source costs one BFS *)
  let by_src = Hashtbl.create 64 in
  Array.iteri
    (fun i (s, _) ->
      let cur = try Hashtbl.find by_src s with Not_found -> [] in
      Hashtbl.replace by_src s (i :: cur))
    pairs;
  let routes = Array.make (Array.length pairs) [] in
  let unroutable = ref 0 in
  Hashtbl.iter
    (fun src indices ->
      if is_alive src then begin
        let parents = Bfs.tree ?alive g src in
        List.iter
          (fun i ->
            let _, dst = pairs.(i) in
            match Bfs.path_to ~parents dst with
            | path -> routes.(i) <- path
            | exception Not_found -> incr unroutable)
          indices
      end
      else unroutable := !unroutable + List.length indices)
    by_src;
  { pairs; routes; unroutable = !unroutable }

let routable_fraction t =
  let total = Array.length t.pairs in
  if total = 0 then 1.0 else float_of_int (total - t.unroutable) /. float_of_int total

let route_length route = max 0 (List.length route - 1)

let dilation t = Array.fold_left (fun acc r -> max acc (route_length r)) 0 t.routes

let mean_length t =
  let total = ref 0 and count = ref 0 in
  Array.iter
    (fun r ->
      if r <> [] then begin
        total := !total + route_length r;
        incr count
      end)
    t.routes;
  if !count = 0 then nan else float_of_int !total /. float_of_int !count

let edge_congestion t =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun route ->
      let rec walk = function
        | a :: (b :: _ as rest) ->
          let key = if a < b then (a, b) else (b, a) in
          Hashtbl.replace tbl key (1 + try Hashtbl.find tbl key with Not_found -> 0);
          walk rest
        | _ -> ()
      in
      walk route)
    t.routes;
  Hashtbl.fold (fun _ c acc -> max acc c) tbl 0

let node_congestion t =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun route ->
      List.iter
        (fun v -> Hashtbl.replace tbl v (1 + try Hashtbl.find tbl v with Not_found -> 0))
        route)
    t.routes;
  Hashtbl.fold (fun _ c acc -> max acc c) tbl 0

let stretch ~reference t =
  if Array.length reference.pairs <> Array.length t.pairs then
    invalid_arg "Route.stretch: pair lists must match";
  let total = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun i r ->
      let r0 = reference.routes.(i) in
      if r <> [] && r0 <> [] && route_length r0 > 0 then begin
        total := !total +. (float_of_int (route_length r) /. float_of_int (route_length r0));
        incr count
      end)
    t.routes;
  if !count = 0 then nan else !total /. float_of_int !count
