open Fn_graph

(** Static shortest-path routing and its load metrics.

    Given a demand, compute one shortest path per routable pair
    (restricted to an alive mask) and measure the classic triple the
    Leighton–Maggs–Rao theorem turns into a slowdown bound: dilation
    (longest path), edge congestion (most paths over one edge), and
    node congestion. *)

type t = {
  pairs : (int * int) array;  (** the demand, as given *)
  routes : int list array;  (** node sequence per pair; [] if unroutable *)
  unroutable : int;
}

val shortest : ?alive:Bitset.t -> Graph.t -> (int * int) array -> t
(** BFS per distinct source; pairs whose endpoints are dead or
    disconnected get an empty route and count as unroutable. *)

val routable_fraction : t -> float
(** 1.0 for an empty demand. *)

val dilation : t -> int
(** Longest route in edges; 0 if nothing is routable. *)

val mean_length : t -> float
(** Mean route length over routable pairs; NaN if none. *)

val edge_congestion : t -> int
(** Maximum number of routes using a single undirected edge. *)

val node_congestion : t -> int
(** Maximum number of routes visiting a single node (endpoints
    included). *)

val stretch : reference:t -> t -> float
(** Mean ratio of route lengths between a faulty routing and a
    fault-free [reference] over pairs routable in both (pair lists
    must match).  NaN if no common routable pair. *)
