open Fn_graph

type stats = {
  makespan : int;
  delivered : int;
  total : int;
  max_queue : int;
  total_hops : int;
}

(* Directed arc id: position of w in the CSR row of v. *)
let arc_index g v w =
  let xadj = Graph.xadj g and adj = Graph.adj g in
  let lo = ref xadj.(v) and hi = ref (xadj.(v + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if adj.(mid) = w then found := mid
    else if adj.(mid) < w then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then invalid_arg "Sim: route uses a non-edge";
  !found

let run g route =
  let num_arcs = Array.length (Graph.adj g) in
  let queues = Array.make num_arcs ([] : int list) in
  let queue_rev = Array.make num_arcs ([] : int list) in
  let queue_len = Array.make num_arcs 0 in
  (* remaining.(p): list of arcs still to traverse *)
  let packets =
    Array.map
      (fun nodes ->
        let rec arcs = function
          | a :: (b :: _ as rest) -> arc_index g a b :: arcs rest
          | _ -> []
        in
        arcs nodes)
      route.Route.routes
  in
  let total = ref 0 in
  let active_arcs = Queue.create () in
  let arc_active = Array.make num_arcs false in
  let activate a =
    if not arc_active.(a) then begin
      arc_active.(a) <- true;
      Queue.add a active_arcs
    end
  in
  let push a p =
    queue_rev.(a) <- p :: queue_rev.(a);
    queue_len.(a) <- queue_len.(a) + 1;
    activate a
  in
  let pop a =
    match queues.(a) with
    | p :: rest ->
      queues.(a) <- rest;
      queue_len.(a) <- queue_len.(a) - 1;
      Some p
    | [] -> (
      match List.rev queue_rev.(a) with
      | p :: rest ->
        queues.(a) <- rest;
        queue_rev.(a) <- [];
        queue_len.(a) <- queue_len.(a) - 1;
        Some p
      | [] -> None)
  in
  Array.iteri
    (fun p arcs ->
      match arcs with
      | first :: rest ->
        incr total;
        packets.(p) <- rest;
        push first p
      | [] -> ())
    packets;
  let max_queue = ref 0 in
  let check_queues () =
    Array.iter (fun l -> if l > !max_queue then max_queue := l) queue_len
  in
  check_queues ();
  let delivered = ref 0 in
  let total_hops = ref 0 in
  let time = ref 0 in
  let makespan = ref 0 in
  while not (Queue.is_empty active_arcs) do
    incr time;
    (* one forwarding phase: each currently-active arc sends one
       packet; arrivals are buffered and enqueued after the phase so a
       packet moves at most one hop per step *)
    let arrivals = ref [] in
    let round = Queue.length active_arcs in
    for _ = 1 to round do
      let a = Queue.pop active_arcs in
      arc_active.(a) <- false;
      match pop a with
      | None -> ()
      | Some p ->
        incr total_hops;
        (match packets.(p) with
        | [] ->
          incr delivered;
          makespan := !time
        | next :: rest ->
          packets.(p) <- rest;
          arrivals := (next, p) :: !arrivals);
        if queue_len.(a) > 0 then activate a
    done;
    List.iter (fun (a, p) -> push a p) (List.rev !arrivals);
    check_queues ()
  done;
  { makespan = !makespan; delivered = !delivered; total = !total; max_queue = !max_queue;
    total_hops = !total_hops }
