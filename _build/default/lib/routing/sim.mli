open Fn_graph

(** Synchronous store-and-forward packet simulation.

    Packets follow the fixed routes of a {!Route.t}; every directed
    link forwards one packet per step (FIFO per link).  All packets
    are injected at time 0.  With congestion c and dilation d the
    makespan is between max(c, d) and c·d, and for FIFO on shortest
    paths it lands near the O(c + d) of Leighton–Maggs–Rao — the
    experiments use the measured makespan as the "time to deliver a
    permutation" figure of merit for faulty networks. *)

type stats = {
  makespan : int;  (** steps until the last delivery; 0 if no packets *)
  delivered : int;
  total : int;  (** routable packets injected *)
  max_queue : int;  (** largest link queue observed *)
  total_hops : int;
}

val run : Graph.t -> Route.t -> stats
(** Simulate to completion.  Routes must only use edges of the graph
    (as produced by {!Route.shortest}); raises [Invalid_argument] on a
    route using a non-edge. *)
