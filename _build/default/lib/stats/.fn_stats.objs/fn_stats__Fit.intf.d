lib/stats/fit.mli:
