lib/stats/series.ml: Array Float List Printf Summary Table
