lib/stats/series.mli: Table
