lib/stats/table.mli:
