type line = { slope : float; intercept : float; r2 : float }

let linear pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Fit.linear: need at least 2 points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pts in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pts in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Fit.linear: degenerate x values";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let mean_y = sy /. fn in
  let ss_tot = List.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) ** 2.0)) 0.0 pts in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        acc +. (e *. e))
      0.0 pts
  in
  let r2 = if ss_tot <= 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let log_log pts =
  List.iter
    (fun (x, y) ->
      if x <= 0.0 || y <= 0.0 then invalid_arg "Fit.log_log: coordinates must be positive")
    pts;
  linear (List.map (fun (x, y) -> (log x, log y)) pts)
