(** Least-squares fits, used to extract scaling exponents from
    experiment sweeps (e.g. "does measured expansion scale like 1/k?"
    becomes "is the log-log slope ≈ -1?"). *)

type line = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination *)
}

val linear : (float * float) list -> line
(** Ordinary least squares on (x, y) pairs; needs >= 2 distinct x. *)

val log_log : (float * float) list -> line
(** OLS on (log x, log y); all coordinates must be positive.  The
    slope is the power-law exponent. *)
