type point = { x : float; trials : float list list }

type t = { x_label : string; y_labels : string list; mutable points : point list }

let create ~x_label ~y_labels =
  if y_labels = [] then invalid_arg "Series.create: no metrics";
  { x_label; y_labels; points = [] }

let add t ~x trials =
  let arity = List.length t.y_labels in
  List.iter
    (fun trial ->
      if List.length trial <> arity then invalid_arg "Series.add: metric arity mismatch")
    trials;
  t.points <- { x; trials } :: t.points

let add_point t ~x trial = add t ~x [ trial ]

let metric_column trials i = List.map (fun trial -> List.nth trial i) trials

let has_multi t = List.exists (fun p -> List.length p.trials >= 2) t.points

let to_table ?(precision = 4) t =
  let multi = has_multi t in
  let headers =
    t.x_label
    :: List.concat_map
         (fun label -> if multi then [ label; label ^ "±std" ] else [ label ])
         t.y_labels
  in
  let table = Table.create headers in
  List.iter
    (fun p ->
      let cells =
        List.concat
          (List.mapi
             (fun i _ ->
               let xs = Array.of_list (metric_column p.trials i) in
               let s = Summary.of_array xs in
               if multi then [ s.Summary.mean; s.Summary.std ] else [ s.Summary.mean ])
             t.y_labels)
      in
      let label =
        if Float.is_integer p.x && abs_float p.x < 1e15 then Printf.sprintf "%.0f" p.x
        else Printf.sprintf "%.4g" p.x
      in
      Table.add_float_row ~precision table label cells)
    (List.rev t.points);
  table

let means t ~metric =
  List.rev_map
    (fun p ->
      let xs = Array.of_list (metric_column p.trials metric) in
      (p.x, Summary.mean xs))
    t.points
