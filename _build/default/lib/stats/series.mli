(** Parameter-sweep bookkeeping: one named x-axis, many named y
    metrics, multiple trials per point.  Experiments accumulate into a
    series and render it as a {!Table} in one call. *)

type t

val create : x_label:string -> y_labels:string list -> t

val add : t -> x:float -> float list list -> unit
(** [add t ~x trials] records the trials at sweep point [x]; each
    trial is one float per y label. *)

val add_point : t -> x:float -> float list -> unit
(** Single-trial convenience. *)

val to_table : ?precision:int -> t -> Table.t
(** One row per x, columns: x, then mean (and std when any point has
    >= 2 trials) per metric, in sweep order. *)

val means : t -> metric:int -> (float * float) list
(** [(x, mean of metric)] pairs in sweep order, for fitting. *)
