(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  std : float;  (** sample standard deviation (n-1 denominator) *)
  sem : float;  (** standard error of the mean *)
  min : float;
  max : float;
}

val of_array : float array -> t
(** Raises [Invalid_argument] on an empty array. *)

val of_list : float list -> t

val mean : float array -> float
val std : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for q in [0,1], linear interpolation between order
    statistics.  Does not mutate the input. *)

val ci95 : t -> float * float
(** mean ± 1.96·sem. *)

val pp : Format.formatter -> t -> unit
