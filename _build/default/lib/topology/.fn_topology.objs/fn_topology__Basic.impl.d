lib/topology/basic.ml: Builder Fn_graph
