lib/topology/basic.mli: Fn_graph Graph
