lib/topology/butterfly.ml: Builder Fn_graph
