lib/topology/butterfly.mli: Fn_graph Graph
