lib/topology/can.ml: Array Builder Fn_graph Fn_prng Rng
