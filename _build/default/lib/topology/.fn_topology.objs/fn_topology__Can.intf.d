lib/topology/can.mli: Fn_graph Fn_prng Graph Rng
