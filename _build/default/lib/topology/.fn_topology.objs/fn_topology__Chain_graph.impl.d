lib/topology/chain_graph.ml: Array Bitset Builder Fn_graph Graph
