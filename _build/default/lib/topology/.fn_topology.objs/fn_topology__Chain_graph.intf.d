lib/topology/chain_graph.mli: Bitset Fn_graph Graph
