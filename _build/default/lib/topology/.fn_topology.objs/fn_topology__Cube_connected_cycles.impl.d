lib/topology/cube_connected_cycles.ml: Builder Fn_graph
