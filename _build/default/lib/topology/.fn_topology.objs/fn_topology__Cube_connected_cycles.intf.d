lib/topology/cube_connected_cycles.mli: Fn_graph Graph
