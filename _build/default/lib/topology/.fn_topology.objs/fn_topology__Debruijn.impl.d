lib/topology/debruijn.ml: Builder Fn_graph
