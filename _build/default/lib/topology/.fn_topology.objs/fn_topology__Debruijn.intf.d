lib/topology/debruijn.mli: Fn_graph Graph
