lib/topology/expander.ml: Builder Fn_graph List Random_graphs
