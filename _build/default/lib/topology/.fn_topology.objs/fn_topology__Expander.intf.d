lib/topology/expander.mli: Fn_graph Fn_prng Graph Rng
