lib/topology/hypercube.ml: Builder Fn_graph Graph
