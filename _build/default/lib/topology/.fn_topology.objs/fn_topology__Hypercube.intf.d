lib/topology/hypercube.mli: Fn_graph Graph
