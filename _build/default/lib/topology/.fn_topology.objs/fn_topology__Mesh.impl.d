lib/topology/mesh.ml: Array Builder Fn_graph
