lib/topology/mesh.mli: Fn_graph Graph
