lib/topology/multibutterfly.ml: Array Builder Fn_graph Fn_prng Graph List Rng
