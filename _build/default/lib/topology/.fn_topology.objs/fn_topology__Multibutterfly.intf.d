lib/topology/multibutterfly.mli: Fn_graph Fn_prng Graph Rng
