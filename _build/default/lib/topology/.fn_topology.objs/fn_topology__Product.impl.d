lib/topology/product.ml: Builder Fn_graph Graph
