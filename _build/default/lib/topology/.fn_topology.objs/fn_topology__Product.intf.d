lib/topology/product.mli: Fn_graph Graph
