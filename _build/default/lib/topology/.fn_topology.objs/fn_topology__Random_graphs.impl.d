lib/topology/random_graphs.ml: Array Builder Components Dist Fn_graph Fn_prng Hashtbl Rng
