lib/topology/random_graphs.mli: Fn_graph Fn_prng Graph Rng
