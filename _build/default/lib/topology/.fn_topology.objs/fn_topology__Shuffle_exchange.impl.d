lib/topology/shuffle_exchange.ml: Builder Fn_graph
