lib/topology/shuffle_exchange.mli: Fn_graph Graph
