lib/topology/torus.ml: Array Builder Fn_graph Mesh
