lib/topology/torus.mli: Fn_graph Graph Mesh
