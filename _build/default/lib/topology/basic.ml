open Fn_graph

let complete n =
  let b = Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Builder.add_edge b u v
    done
  done;
  Builder.to_graph b

let cycle n =
  if n < 3 then invalid_arg "Basic.cycle: need n >= 3";
  let b = Builder.create n in
  for v = 0 to n - 1 do
    Builder.add_edge b v ((v + 1) mod n)
  done;
  Builder.to_graph b

let path n =
  let b = Builder.create n in
  for v = 0 to n - 2 do
    Builder.add_edge b v (v + 1)
  done;
  Builder.to_graph b

let star n =
  if n < 1 then invalid_arg "Basic.star: need n >= 1";
  let b = Builder.create n in
  for v = 1 to n - 1 do
    Builder.add_edge b 0 v
  done;
  Builder.to_graph b

let complete_bipartite a bn =
  let b = Builder.create (a + bn) in
  for u = 0 to a - 1 do
    for v = a to a + bn - 1 do
      Builder.add_edge b u v
    done
  done;
  Builder.to_graph b

let barbell n =
  if n < 1 then invalid_arg "Basic.barbell: need n >= 1";
  let b = Builder.create (2 * n) in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Builder.add_edge b u v;
      Builder.add_edge b (n + u) (n + v)
    done
  done;
  Builder.add_edge b (n - 1) n;
  Builder.to_graph b

let binary_tree n =
  let b = Builder.create n in
  for v = 1 to n - 1 do
    Builder.add_edge b v ((v - 1) / 2)
  done;
  Builder.to_graph b
