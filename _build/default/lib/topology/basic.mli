open Fn_graph

(** Elementary graph families: calibration baselines and degenerate
    cases for tests. *)

val complete : int -> Graph.t
(** K_n. *)

val cycle : int -> Graph.t
(** C_n; requires n >= 3. *)

val path : int -> Graph.t
(** P_n (n nodes, n-1 edges). *)

val star : int -> Graph.t
(** One hub (node 0) connected to n-1 leaves. *)

val complete_bipartite : int -> int -> Graph.t
(** K_{a,b}: nodes [0..a-1] on the left, [a..a+b-1] on the right. *)

val barbell : int -> Graph.t
(** Two K_n cliques joined by a single edge — the canonical
    low-expansion bottleneck graph (2n nodes). *)

val binary_tree : int -> Graph.t
(** Complete binary tree with the given number of nodes (heap
    numbering: children of i are 2i+1, 2i+2). *)
