open Fn_graph

let node ~k ~level ~row = (level * (1 lsl k)) + row

let level_and_row ~k v =
  let rows = 1 lsl k in
  (v / rows, v mod rows)

let unwrapped k =
  if k < 1 || k > 20 then invalid_arg "Butterfly.unwrapped: need 1 <= k <= 20";
  let rows = 1 lsl k in
  let n = (k + 1) * rows in
  let b = Builder.create n in
  for level = 0 to k - 1 do
    for row = 0 to rows - 1 do
      let v = node ~k ~level ~row in
      Builder.add_edge b v (node ~k ~level:(level + 1) ~row);
      Builder.add_edge b v (node ~k ~level:(level + 1) ~row:(row lxor (1 lsl level)))
    done
  done;
  Builder.to_graph b

let wrapped k =
  if k < 2 || k > 20 then invalid_arg "Butterfly.wrapped: need 2 <= k <= 20";
  let rows = 1 lsl k in
  let n = k * rows in
  let b = Builder.create n in
  for level = 0 to k - 1 do
    let next = (level + 1) mod k in
    for row = 0 to rows - 1 do
      let v = node ~k ~level ~row in
      Builder.add_edge b v (node ~k ~level:next ~row);
      Builder.add_edge b v (node ~k ~level:next ~row:(row lxor (1 lsl level)))
    done
  done;
  Builder.to_graph b
