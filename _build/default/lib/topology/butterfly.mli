open Fn_graph

(** The k-dimensional (wrapped or unwrapped) butterfly network.

    Nodes are pairs (level, row) with 0 <= level <= k (unwrapped) or
    level in Z_k (wrapped), row in {0,1}^k.  Node (l, r) connects to
    (l+1, r) ("straight") and (l+1, r xor 2^l) ("cross").  The paper
    conjectures the butterfly has O(1) span (experiment E10). *)

val unwrapped : int -> Graph.t
(** [(k+1) * 2^k] nodes; requires [1 <= k <= 20]. *)

val wrapped : int -> Graph.t
(** [k * 2^k] nodes; level k is identified with level 0.
    Requires [2 <= k <= 20]. *)

val node : k:int -> level:int -> row:int -> int
(** Linearisation used by both variants: [level * 2^k + row]. *)

val level_and_row : k:int -> int -> int * int
(** Inverse of {!node}. *)
