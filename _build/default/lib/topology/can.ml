open Fn_graph
open Fn_prng

type zone = { lo : float array; hi : float array }

type t = { d : int; mutable zones : zone array; mutable count : int }

let create d =
  if d < 1 || d > 10 then invalid_arg "Can.create: need 1 <= d <= 10";
  let whole = { lo = Array.make d 0.0; hi = Array.make d 1.0 } in
  { d; zones = Array.make 4 whole; count = 1 }

let dimension t = t.d

let num_nodes t = t.count

let zone t i =
  if i < 0 || i >= t.count then invalid_arg "Can.zone: bad node id";
  t.zones.(i)

let owner t point =
  let inside z =
    let ok = ref true in
    for i = 0 to t.d - 1 do
      if not (point.(i) >= z.lo.(i) && point.(i) < z.hi.(i)) then ok := false
    done;
    !ok
  in
  let rec scan i = if inside t.zones.(i) then i else scan (i + 1) in
  scan 0

let widest_dim z =
  let d = Array.length z.lo in
  let best = ref 0 in
  for i = 1 to d - 1 do
    if z.hi.(i) -. z.lo.(i) > z.hi.(!best) -. z.lo.(!best) then best := i
  done;
  !best

let join rng t =
  let point = Array.init t.d (fun _ -> Rng.unit_float rng) in
  let owner_id = owner t point in
  let z = t.zones.(owner_id) in
  let dim = widest_dim z in
  let mid = (z.lo.(dim) +. z.hi.(dim)) /. 2.0 in
  let lower = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  let upper = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  lower.hi.(dim) <- mid;
  upper.lo.(dim) <- mid;
  (* the owner keeps the half containing its notional position; we
     give it the lower half deterministically, which is equivalent up
     to relabeling *)
  if t.count = Array.length t.zones then begin
    let bigger = Array.make (2 * t.count) t.zones.(0) in
    Array.blit t.zones 0 bigger 0 t.count;
    t.zones <- bigger
  end;
  t.zones.(owner_id) <- lower;
  t.zones.(t.count) <- upper;
  t.count <- t.count + 1;
  t.count - 1

let build rng ~d ~n =
  if n < 1 then invalid_arg "Can.build: need n >= 1";
  let t = create d in
  for _ = 2 to n do
    ignore (join rng t)
  done;
  t

(* intervals [alo,ahi) and [blo,bhi) overlap with positive length *)
let overlaps alo ahi blo bhi = alo < bhi && blo < ahi

(* abut on the torus: one's end is the other's start, possibly wrapping *)
let abuts alo ahi blo bhi =
  ahi = blo || bhi = alo || (ahi = 1.0 && blo = 0.0) || (bhi = 1.0 && alo = 0.0)

let are_neighbors t a b =
  if a = b then false
  else begin
    let za = zone t a and zb = zone t b in
    let abut_dims = ref 0 and overlap_dims = ref 0 in
    for i = 0 to t.d - 1 do
      if overlaps za.lo.(i) za.hi.(i) zb.lo.(i) zb.hi.(i) then incr overlap_dims
      else if abuts za.lo.(i) za.hi.(i) zb.lo.(i) zb.hi.(i) then incr abut_dims
    done;
    (* exactly one abutting dimension, overlap in all others.  In
       dimension 1 a full-width zone wraps onto itself; the a=b guard
       already excludes that. *)
    !abut_dims >= 1 && !abut_dims + !overlap_dims = t.d
  end

let graph t =
  let b = Builder.create t.count in
  for u = 0 to t.count - 1 do
    for v = u + 1 to t.count - 1 do
      if are_neighbors t u v then Builder.add_edge b u v
    done
  done;
  Builder.to_graph b

let zone_volume t i =
  let z = zone t i in
  let vol = ref 1.0 in
  for k = 0 to t.d - 1 do
    vol := !vol *. (z.hi.(k) -. z.lo.(k))
  done;
  !vol

let balance t =
  let vmin = ref infinity and vmax = ref 0.0 in
  for i = 0 to t.count - 1 do
    let v = zone_volume t i in
    if v < !vmin then vmin := v;
    if v > !vmax then vmax := v
  done;
  if t.count = 0 then 1.0 else !vmax /. !vmin
