open Fn_graph
open Fn_prng

(** A Content-Addressable Network (CAN) overlay.

    The paper's conclusion argues that CAN behaves like a
    d-dimensional mesh in its steady state, so its fault tolerance
    follows from the span results.  This module implements the actual
    CAN construction (Ratnasamy et al., SIGCOMM 2001): the
    d-dimensional unit torus is partitioned into zones; a joining node
    picks a random point and splits the owning zone in half along its
    widest dimension; two nodes are overlay neighbours iff their zones
    abut in one dimension and overlap in all others (with
    wraparound).

    Splits are by exact halving, so all zone bounds are dyadic
    rationals and the abutment tests below are exact float
    comparisons. *)

type zone = {
  lo : float array;
  hi : float array;  (** half-open box [lo, hi) per dimension *)
}

type t

val create : int -> t
(** [create d] starts a CAN over the d-dimensional torus with a single
    node owning everything; requires [1 <= d <= 10]. *)

val dimension : t -> int
val num_nodes : t -> int
val zone : t -> int -> zone

val join : Rng.t -> t -> int
(** Add one node at a uniformly random point; returns its id.  The
    previous owner's zone is halved along its widest dimension. *)

val build : Rng.t -> d:int -> n:int -> t
(** A CAN grown by [n-1] random joins. *)

val graph : t -> Graph.t
(** The overlay graph on the current node set. *)

val are_neighbors : t -> int -> int -> bool
(** The zone-abutment predicate used by {!graph}. *)

val zone_volume : t -> int -> float

val balance : t -> float
(** Max zone volume / min zone volume — a measure of how far from the
    ideal mesh the overlay currently is (1.0 is perfectly balanced). *)
