open Fn_graph

type t = { graph : Graph.t; base : Graph.t; k : int; base_edges : (int * int) array }

let build base ~k =
  if k < 2 || k mod 2 = 1 then invalid_arg "Chain_graph.build: k must be even and >= 2";
  let n_base = Graph.num_nodes base in
  let base_edges = Graph.edges base in
  let m = Array.length base_edges in
  let n = n_base + (m * k) in
  let b = Builder.create n in
  Array.iteri
    (fun j (u, v) ->
      let base_id = n_base + (j * k) in
      Builder.add_edge b u base_id;
      for i = 0 to k - 2 do
        Builder.add_edge b (base_id + i) (base_id + i + 1)
      done;
      Builder.add_edge b (base_id + k - 1) v)
    base_edges;
  { graph = Builder.to_graph b; base; k; base_edges }

let original_nodes t =
  let out = Bitset.create (Graph.num_nodes t.graph) in
  for v = 0 to Graph.num_nodes t.base - 1 do
    Bitset.add out v
  done;
  out

let chain_centers t =
  let n_base = Graph.num_nodes t.base in
  Array.mapi (fun j _ -> n_base + (j * t.k) + (t.k / 2)) t.base_edges

let chain_of_edge t j =
  if j < 0 || j >= Array.length t.base_edges then
    invalid_arg "Chain_graph.chain_of_edge: bad edge index";
  let n_base = Graph.num_nodes t.base in
  Array.init t.k (fun i -> n_base + (j * t.k) + i)

let expansion_prediction t = 2.0 /. float_of_int t.k

let claim24_witness t ~base_set =
  let n_base = Graph.num_nodes t.base in
  if Bitset.universe base_set <> n_base then
    invalid_arg "Chain_graph.claim24_witness: base universe mismatch";
  let out = Bitset.create (Graph.num_nodes t.graph) in
  Bitset.iter (Bitset.add out) base_set;
  Array.iteri
    (fun j (u, v) ->
      let chain = Array.init t.k (fun i -> n_base + (j * t.k) + i) in
      let u_in = Bitset.mem base_set u and v_in = Bitset.mem base_set v in
      if u_in && v_in then Array.iter (Bitset.add out) chain
      else if u_in then
        (* the chain runs from u's side (index 0) towards v *)
        for i = 0 to (t.k / 2) - 1 do
          Bitset.add out chain.(i)
        done
      else if v_in then
        for i = t.k - (t.k / 2) to t.k - 1 do
          Bitset.add out chain.(i)
        done)
    t.base_edges;
  out
