open Fn_graph

(** The chain-replacement construction of Theorem 2.3.

    Given a base graph G (intended: a constant-degree expander) and an
    even chain length k, every edge of G is replaced by a path of k
    new "chain" nodes.  Claim 2.4 shows the result has node expansion
    Θ(1/k); removing the [m] chain-center nodes (one per original
    edge) shatters it into components of size <= δk/2 + 1 each —
    the adversary of Theorems 2.3 and 3.1.

    Node layout: ids [0 .. n_G-1] are the original nodes; chain nodes
    of the j-th base edge occupy the contiguous block
    [n_G + j*k .. n_G + (j+1)*k - 1], ordered from the smaller
    endpoint towards the larger. *)

type t = {
  graph : Graph.t;
  base : Graph.t;
  k : int;
  base_edges : (int * int) array;  (** j-th base edge, u < v *)
}

val build : Graph.t -> k:int -> t
(** Requires [k >= 2] and [k] even (as in the paper's proof). *)

val original_nodes : t -> Bitset.t
(** The embedded copies of the base graph's nodes. *)

val chain_centers : t -> int array
(** One node per base edge: the (k/2)-th node of its chain — exactly
    the fault set used in the proof of Theorem 2.3. *)

val chain_of_edge : t -> int -> int array
(** [chain_of_edge t j] lists the chain-node ids of base edge [j],
    from the [u]-side to the [v]-side. *)

val expansion_prediction : t -> float
(** Claim 2.4's order-of-magnitude prediction 2/k for the node
    expansion of the chain graph. *)

val claim24_witness : t -> base_set:Bitset.t -> Bitset.t
(** The set U' from the proof of Claim 2.4: a base-node set U together
    with, for every chain leaving U, the k/2 chain nodes nearest the
    U endpoint (whole chains for internal edges).  Its boundary in H
    is exactly one chain node per base edge leaving U, so
    α(U') = |Γ_base(U)-ish| / |U'| <= 2/k.  [base_set] is a set over
    the base graph's nodes. *)
