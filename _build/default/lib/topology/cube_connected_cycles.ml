open Fn_graph

let node ~d ~cube ~pos = (cube * d) + pos

let graph d =
  if d < 1 || d > 18 then invalid_arg "Cube_connected_cycles.graph: need 1 <= d <= 18";
  let cubes = 1 lsl d in
  let b = Builder.create (cubes * d) in
  for cube = 0 to cubes - 1 do
    for pos = 0 to d - 1 do
      let v = node ~d ~cube ~pos in
      (* cycle edge *)
      if d > 1 then Builder.add_edge b v (node ~d ~cube ~pos:((pos + 1) mod d));
      (* hypercube edge along dimension pos *)
      let other = cube lxor (1 lsl pos) in
      if cube < other then Builder.add_edge b v (node ~d ~cube:other ~pos)
    done
  done;
  Builder.to_graph b
