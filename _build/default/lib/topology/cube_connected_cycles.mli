open Fn_graph

(** The cube-connected-cycles network CCC(d): each hypercube node is
    replaced by a d-cycle whose i-th member owns the dimension-i
    hypercube edge.  Degree 3 everywhere (for d >= 3) — the classic
    bounded-degree stand-in for the hypercube in the fault-tolerance
    literature the paper surveys. *)

val graph : int -> Graph.t
(** [graph d] has d·2^d nodes; requires [1 <= d <= 18].  Node
    (cube, pos) is numbered cube*d + pos. *)

val node : d:int -> cube:int -> pos:int -> int
