open Fn_graph

let graph k =
  if k < 1 || k > 22 then invalid_arg "Debruijn.graph: need 1 <= k <= 22";
  let n = 1 lsl k in
  let mask = n - 1 in
  let b = Builder.create n in
  for v = 0 to n - 1 do
    let s0 = (v lsl 1) land mask in
    let s1 = s0 lor 1 in
    if s0 <> v then Builder.add_edge b v s0;
    if s1 <> v then Builder.add_edge b v s1
  done;
  Builder.to_graph b
