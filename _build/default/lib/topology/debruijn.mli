open Fn_graph

(** The binary de Bruijn graph of dimension k, as an undirected graph:
    node x in {0,1}^k is adjacent to its shifts (2x mod 2^k) and
    (2x+1 mod 2^k).  Self-loops (at 0...0 and 1...1) are dropped.
    One of the paper's O(1)-span conjecture targets (E10). *)

val graph : int -> Graph.t
(** [graph k] has 2^k nodes; requires [1 <= k <= 22]. *)
