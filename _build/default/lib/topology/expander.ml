open Fn_graph

let random_regular rng ~n ~d = Random_graphs.connected_random_regular rng n d

let margulis m =
  if m < 2 then invalid_arg "Expander.margulis: need m >= 2";
  let n = m * m in
  let id x y = (((x mod m) + m) mod m * m) + (((y mod m) + m) mod m) in
  let b = Builder.create n in
  for x = 0 to m - 1 do
    for y = 0 to m - 1 do
      let v = id x y in
      let targets =
        [
          id (x + y) y;
          id (x - y) y;
          id (x + y + 1) y;
          id (x - y - 1) y;
          id x (y + x);
          id x (y - x);
          id x (y + x + 1);
          id x (y - x - 1);
        ]
      in
      List.iter (fun w -> if w <> v then Builder.add_edge b v w) targets
    done
  done;
  Builder.to_graph b
