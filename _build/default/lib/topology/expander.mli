open Fn_graph
open Fn_prng

(** Expander families.

    The paper's constructions (Theorems 2.3 and 3.1) start from "an
    infinite family of constant-degree expander graphs with constant
    expansion β and degree δ".  We provide two realisations:

    - {!random_regular}: random d-regular graphs, expanders w.h.p.
      (Bollobás); the default base family in the experiments.
    - {!margulis}: the explicit degree-8 Margulis-Gabber-Galil
      construction on Z_m x Z_m, which has a guaranteed spectral gap —
      deterministic, used when reproducibility must not even depend on
      a seed. *)

val random_regular : Rng.t -> n:int -> d:int -> Graph.t
(** Connected random d-regular graph (see {!Random_graphs}). *)

val margulis : int -> Graph.t
(** [margulis m] is the Margulis-Gabber-Galil expander on n = m^2
    nodes: (x,y) is adjacent to (x+y, y), (x-y, y), (x+y+1, y),
    (x-y-1, y), (x, y+x), (x, y-x), (x, y+x+1), (x, y-x-1), all mod m.
    Degree <= 8 (self-loops and duplicate targets merged).  Requires
    [m >= 2]. *)
