open Fn_graph

let graph d =
  if d < 0 || d > 25 then invalid_arg "Hypercube.graph: need 0 <= d <= 25";
  let n = 1 lsl d in
  let b = Builder.create n in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if v < w then Builder.add_edge b v w
    done
  done;
  Builder.to_graph b

let dimension g =
  let n = Graph.num_nodes g in
  if n <= 0 then None
  else begin
    let rec log2 x acc = if x = 1 then Some acc else if x land 1 = 1 then None else log2 (x / 2) (acc + 1) in
    log2 n 0
  end
