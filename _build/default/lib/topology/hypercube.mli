open Fn_graph

(** The d-dimensional Boolean hypercube: 2^d nodes, neighbours differ
    in one bit.  Its percolation threshold p* = 1/d (Ajtai, Komlós &
    Szemerédi) is one of the calibration targets of experiment E8. *)

val graph : int -> Graph.t
(** [graph d] is the hypercube of dimension [d]; requires
    [0 <= d <= 25]. *)

val dimension : Graph.t -> int option
(** Recover [d] if the node count is a power of two. *)
