open Fn_graph

type geometry = { dims : int array; strides : int array; size : int }

let geometry dims =
  if Array.length dims = 0 then invalid_arg "Mesh.geometry: zero dimensions";
  Array.iter (fun s -> if s < 1 then invalid_arg "Mesh.geometry: side < 1") dims;
  let d = Array.length dims in
  let strides = Array.make d 1 in
  for i = d - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dims.(i + 1)
  done;
  let size = Array.fold_left ( * ) 1 dims in
  { dims; strides; size }

let encode geo coords =
  if Array.length coords <> Array.length geo.dims then
    invalid_arg "Mesh.encode: dimension mismatch";
  let id = ref 0 in
  Array.iteri
    (fun i c ->
      if c < 0 || c >= geo.dims.(i) then invalid_arg "Mesh.encode: coordinate out of range";
      id := !id + (c * geo.strides.(i)))
    coords;
  !id

let decode geo id =
  if id < 0 || id >= geo.size then invalid_arg "Mesh.decode: id out of range";
  Array.mapi (fun i _ -> id / geo.strides.(i) mod geo.dims.(i)) geo.dims

let graph dims =
  let geo = geometry dims in
  let d = Array.length dims in
  let b = Builder.create geo.size in
  for v = 0 to geo.size - 1 do
    let coords = decode geo v in
    for i = 0 to d - 1 do
      if coords.(i) + 1 < dims.(i) then Builder.add_edge b v (v + geo.strides.(i))
    done
  done;
  (Builder.to_graph b, geo)

let cube ~d ~side = graph (Array.make d side)

let virtual_neighbors geo v =
  let d = Array.length geo.dims in
  let coords = decode geo v in
  let out = ref [] in
  (* single-dimension steps *)
  for i = 0 to d - 1 do
    for s = -1 to 1 do
      if s <> 0 then begin
        let c = coords.(i) + s in
        if c >= 0 && c < geo.dims.(i) then out := (v + (s * geo.strides.(i))) :: !out
      end
    done
  done;
  (* two-dimension diagonal steps *)
  for i = 0 to d - 1 do
    for j = i + 1 to d - 1 do
      for si = -1 to 1 do
        for sj = -1 to 1 do
          if si <> 0 && sj <> 0 then begin
            let ci = coords.(i) + si and cj = coords.(j) + sj in
            if ci >= 0 && ci < geo.dims.(i) && cj >= 0 && cj < geo.dims.(j) then
              out := (v + (si * geo.strides.(i)) + (sj * geo.strides.(j))) :: !out
          end
        done
      done
    done
  done;
  !out

let is_virtual_edge geo u v =
  if u = v then false
  else begin
    let cu = decode geo u and cv = decode geo v in
    let diffs = ref 0 and ok = ref true in
    Array.iteri
      (fun i c ->
        let delta = abs (c - cv.(i)) in
        if delta > 1 then ok := false else if delta = 1 then incr diffs)
      cu;
    !ok && !diffs >= 1 && !diffs <= 2
  end

let central_hyperplane ?dim geo =
  let d = Array.length geo.dims in
  let dim =
    match dim with
    | Some i ->
      if i < 0 || i >= d then invalid_arg "Mesh.central_hyperplane: bad dimension";
      i
    | None ->
      let best = ref 0 in
      for i = 1 to d - 1 do
        if geo.dims.(i) > geo.dims.(!best) then best := i
      done;
      !best
  in
  let mid = geo.dims.(dim) / 2 in
  let out = ref [] in
  for v = geo.size - 1 downto 0 do
    if v / geo.strides.(dim) mod geo.dims.(dim) = mid then out := v :: !out
  done;
  Array.of_list !out

let expansion_estimate geo =
  let max_side = Array.fold_left max 1 geo.dims in
  1.0 /. float_of_int max_side
