open Fn_graph

(** d-dimensional meshes (grid graphs) with coordinate arithmetic.

    The mesh is the paper's central example: Theorem 3.6 proves its
    span is at most 2.  Nodes are lattice points of the box
    [0..dims.(0)-1] x ... x [0..dims.(d-1)-1], linearised in row-major
    order; two nodes are adjacent iff their coordinates differ by one
    in exactly one dimension. *)

type geometry = {
  dims : int array;  (** side length per dimension, each >= 1 *)
  strides : int array;  (** row-major strides *)
  size : int;
}

val geometry : int array -> geometry
(** Validates side lengths and precomputes strides. *)

val encode : geometry -> int array -> int
(** Coordinates to node id; bounds-checked. *)

val decode : geometry -> int -> int array
(** Node id to coordinates. *)

val graph : int array -> Graph.t * geometry
(** [graph dims] builds the mesh. *)

val cube : d:int -> side:int -> Graph.t * geometry
(** The d-dimensional mesh with equal sides — [graph (Array.make d side)]. *)

val virtual_neighbors : geometry -> int -> int list
(** King-move adjacency used by the Theorem 3.6 construction: nodes
    whose coordinates differ by at most 1 in at most two dimensions
    and agree elsewhere (excluding the node itself).  These are the
    "virtual edges" E_v of the paper. *)

val is_virtual_edge : geometry -> int -> int -> bool

val central_hyperplane : ?dim:int -> geometry -> int array
(** The nodes whose [dim]-th coordinate (default: a widest dimension)
    equals the middle value — removing them bisects the mesh, the
    hyperplane attack of the Theorem 2.5 discussion.  Size
    n / dims.(dim). *)

val expansion_estimate : geometry -> float
(** The analytic order-of-magnitude node expansion of the mesh,
    1 / max side.  Used for cross-checks, not as ground truth. *)
