open Fn_graph
open Fn_prng

type t = { graph : Graph.t; k : int; multiplicity : int }

let node ~k ~level ~row = (level * (1 lsl k)) + row

let build rng ~k ~multiplicity =
  if k < 1 || k > 16 then invalid_arg "Multibutterfly.build: need 1 <= k <= 16";
  if multiplicity < 1 then invalid_arg "Multibutterfly.build: multiplicity >= 1";
  let rows = 1 lsl k in
  let n = (k + 1) * rows in
  let b = Builder.create n in
  for level = 0 to k - 1 do
    (* at level l the rows split into blocks of size 2^(k-l); within a
       block, the nodes whose routing bit is 0 target the lower
       half-block at the next level, bit 1 the upper half-block *)
    let block = 1 lsl (k - level) in
    let half = block / 2 in
    let num_blocks = rows / block in
    for blk = 0 to num_blocks - 1 do
      let base = blk * block in
      (* two splitters per block: sources (all block rows) to each
         half; each splitter is `multiplicity` random surjections
         built from shuffled source lists so in-degrees stay within
         one of each other *)
      List.iter
        (fun target_offset ->
          for _ = 1 to multiplicity do
            let sources = Array.init block (fun i -> base + i) in
            Rng.shuffle rng sources;
            Array.iteri
              (fun i src ->
                let dst = base + target_offset + (i mod half) in
                Builder.add_edge b
                  (node ~k ~level ~row:src)
                  (node ~k ~level:(level + 1) ~row:dst))
              sources
          done)
        [ 0; half ]
    done
  done;
  { graph = Builder.to_graph b; k; multiplicity }

let inputs t = Array.init (1 lsl t.k) (fun row -> node ~k:t.k ~level:0 ~row)

let outputs t = Array.init (1 lsl t.k) (fun row -> node ~k:t.k ~level:t.k ~row)
