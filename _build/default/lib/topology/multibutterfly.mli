open Fn_graph
open Fn_prng

(** The multibutterfly network (Upfal; Leighton–Maggs).

    Like the butterfly, nodes are (level, row) pairs and packets
    descend one level per hop, but each "splitter" — the bipartite
    graph between a row-block at level l and each of its two target
    half-blocks at level l+1 — is a d-fold random matching instead of
    a single fixed edge.  The resulting splitter expansion is what
    makes the network tolerate Θ(n) worst-case faults with only O(f)
    lost inputs (the §1.1 results this paper builds on).

    [multiplicity] is the number of matchings per splitter direction
    (d = 1 collapses to a butterfly-like single random matching;
    d = 2 is the classic construction). *)

type t = {
  graph : Graph.t;
  k : int;  (** levels = k+1, rows = 2^k *)
  multiplicity : int;
}

val build : Rng.t -> k:int -> multiplicity:int -> t
(** Requires [1 <= k <= 16] and [multiplicity >= 1].  Nodes are
    numbered level-major like {!Butterfly.node}. *)

val inputs : t -> int array
(** Level-0 nodes. *)

val outputs : t -> int array
(** Level-k nodes. *)
