open Fn_graph

let node ~h_size u1 u2 = (u1 * h_size) + u2

let cartesian g h =
  let ng = Graph.num_nodes g and nh = Graph.num_nodes h in
  let b = Builder.create (ng * nh) in
  (* copy H inside every G-fiber *)
  for u1 = 0 to ng - 1 do
    Graph.iter_edges h (fun u2 v2 -> Builder.add_edge b (node ~h_size:nh u1 u2) (node ~h_size:nh u1 v2))
  done;
  (* copy G across fibers, one per H-node *)
  Graph.iter_edges g (fun u1 v1 ->
      for u2 = 0 to nh - 1 do
        Builder.add_edge b (node ~h_size:nh u1 u2) (node ~h_size:nh v1 u2)
      done);
  Builder.to_graph b

let power g k =
  if k < 1 then invalid_arg "Product.power: need k >= 1";
  let rec go acc i = if i = k then acc else go (cartesian acc g) (i + 1) in
  go g 1
