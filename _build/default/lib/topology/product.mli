open Fn_graph

(** Cartesian graph products.

    G □ H has node set V(G) × V(H); (u1,u2) ~ (v1,v2) iff u1 = v1 and
    u2 ~ v2, or u2 = v2 and u1 ~ v1.  The classical grid families are
    products — mesh = path □ path, torus = cycle □ cycle, hypercube =
    K2 □ ... □ K2 — which the test suite uses to cross-validate the
    dedicated generators against this one, node numbering included
    ((u1, u2) ↦ u1·|H| + u2, matching the row-major mesh layout). *)

val cartesian : Graph.t -> Graph.t -> Graph.t

val power : Graph.t -> int -> Graph.t
(** [power g k] is the k-fold Cartesian product of [g] with itself;
    requires [k >= 1]. *)

val node : h_size:int -> int -> int -> int
(** [(u1, u2)] of G □ H as an integer, [h_size] = |V(H)|. *)
