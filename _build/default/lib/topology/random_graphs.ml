open Fn_graph
open Fn_prng

let gnp rng n p =
  if n < 0 then invalid_arg "Random_graphs.gnp: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Random_graphs.gnp: p out of [0,1]";
  let b = Builder.create n in
  if p > 0.0 then begin
    if p >= 1.0 then
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          Builder.add_edge b u v
        done
      done
    else begin
      (* iterate over the (u,v), u<v pairs in lexicographic order,
         skipping geometrically between present edges *)
      let u = ref 0 and v = ref 0 in
      let advance skip =
        let s = ref (skip + 1) in
        while !s > 0 && !u < n do
          let room = n - 1 - !v in
          if room >= !s then begin
            v := !v + !s;
            s := 0
          end
          else begin
            s := !s - room;
            incr u;
            v := !u
          end
        done
      in
      v := 0;
      u := 0;
      advance (Dist.geometric rng p);
      while !u < n - 1 do
        Builder.add_edge b !u !v;
        advance (Dist.geometric rng p)
      done
    end
  end;
  Builder.to_graph b

let gnm rng n m =
  let max_m = n * (n - 1) / 2 in
  if m < 0 || m > max_m then invalid_arg "Random_graphs.gnm: m out of range";
  let seen = Hashtbl.create (2 * m) in
  let b = Builder.create n in
  let count = ref 0 in
  while !count < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let key = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Builder.add_edge b u v;
        incr count
      end
    end
  done;
  Builder.to_graph b

(* Configuration model with edge-swap repair.  A raw stub pairing is
   simple only with probability ~ exp(-(d^2-1)/4), which is hopeless
   for d >= 6, so instead of rejecting the whole pairing we repair it:
   every conflicting pair (self-loop or duplicate) is double-edge
   swapped with a random partner pair when the swap removes the
   conflict without creating a new one.  This is the standard
   practical sampler; the distribution is asymptotically uniform. *)
let random_regular rng n d =
  if d < 0 || d >= n then invalid_arg "Random_graphs.random_regular: need 0 <= d < n";
  if n * d mod 2 = 1 then invalid_arg "Random_graphs.random_regular: n*d must be even";
  let half = n * d / 2 in
  let stubs = Array.make (n * d) 0 in
  for i = 0 to (n * d) - 1 do
    stubs.(i) <- i / d
  done;
  let us = Array.make (max half 1) 0 and vs = Array.make (max half 1) 0 in
  let counts = Hashtbl.create (2 * max half 1) in
  let key u v = if u < v then (u, v) else (v, u) in
  let count u v = try Hashtbl.find counts (key u v) with Not_found -> 0 in
  let incr_edge u v = Hashtbl.replace counts (key u v) (count u v + 1) in
  let decr_edge u v =
    let c = count u v in
    if c <= 1 then Hashtbl.remove counts (key u v) else Hashtbl.replace counts (key u v) (c - 1)
  in
  let is_bad i = us.(i) = vs.(i) || count us.(i) vs.(i) > 1 in
  let attempt () =
    Rng.shuffle rng stubs;
    Hashtbl.reset counts;
    for i = 0 to half - 1 do
      us.(i) <- stubs.(2 * i);
      vs.(i) <- stubs.((2 * i) + 1);
      incr_edge us.(i) vs.(i)
    done;
    let budget = ref (200 * (half + 1)) in
    let rec repair i =
      if i >= half then true
      else if not (is_bad i) then repair (i + 1)
      else if !budget <= 0 then false
      else begin
        budget := !budget - 1;
        let j = Rng.int rng half in
        if j = i then repair i
        else begin
          (* propose the double swap (u_i,v_i),(u_j,v_j) ->
             (u_i,v_j),(u_j,v_i) *)
          let a, b, c, d' = (us.(i), vs.(i), us.(j), vs.(j)) in
          let ok =
            a <> d' && c <> b
            && count a d' = 0
            && count c b = 0
            && (a <> c || b <> d')
          in
          if ok then begin
            decr_edge a b;
            decr_edge c d';
            vs.(i) <- d';
            vs.(j) <- b;
            incr_edge a d';
            incr_edge c b;
            repair i
          end
          else repair i
        end
      end
    in
    if repair 0 then begin
      let bld = Builder.create n in
      for i = 0 to half - 1 do
        Builder.add_edge bld us.(i) vs.(i)
      done;
      Some (Builder.to_graph bld)
    end
    else None
  in
  let rec go tries =
    if tries > 100 then failwith "Random_graphs.random_regular: repair failed"
    else match attempt () with Some g -> g | None -> go (tries + 1)
  in
  go 0

let connected_random_regular rng n d =
  let rec go tries =
    if tries > 1_000 then failwith "Random_graphs.connected_random_regular: cannot connect"
    else begin
      let g = random_regular rng n d in
      if Components.is_connected g then g else go (tries + 1)
    end
  in
  go 0
