open Fn_graph
open Fn_prng

(** Random graph models. *)

val gnp : Rng.t -> int -> float -> Graph.t
(** Erdős–Rényi G(n, p).  Uses geometric skipping, so the cost is
    O(n + expected edges) rather than O(n^2). *)

val gnm : Rng.t -> int -> int -> Graph.t
(** Uniform graph with exactly [m] distinct edges (no loops). *)

val random_regular : Rng.t -> int -> int -> Graph.t
(** [random_regular rng n d] samples a simple d-regular graph by the
    configuration model with restarts (rejecting pairings that create
    loops or multi-edges).  Requires [n*d] even, [d < n].  Expected
    number of restarts is constant for fixed [d], so this is practical
    for the [d <= 8] used in our experiments.  Such graphs are
    expanders with high probability — they stand in for the paper's
    abstract expander family G(n). *)

val connected_random_regular : Rng.t -> int -> int -> Graph.t
(** Resample until connected (a.s. immediate for [d >= 3]). *)
