open Fn_graph

let graph k =
  if k < 1 || k > 22 then invalid_arg "Shuffle_exchange.graph: need 1 <= k <= 22";
  let n = 1 lsl k in
  let mask = n - 1 in
  let b = Builder.create n in
  for v = 0 to n - 1 do
    Builder.add_edge b v (v lxor 1);
    let shuffled = ((v lsl 1) land mask) lor (v lsr (k - 1)) in
    if shuffled <> v then Builder.add_edge b v shuffled
  done;
  Builder.to_graph b
