open Fn_graph

(** The binary shuffle-exchange graph of dimension k: node x is
    adjacent to x xor 1 (exchange) and to its cyclic shifts
    (shuffle / unshuffle).  Fixed points of the shuffle are dropped.
    One of the paper's O(1)-span conjecture targets (E10). *)

val graph : int -> Graph.t
(** [graph k] has 2^k nodes; requires [1 <= k <= 22]. *)
