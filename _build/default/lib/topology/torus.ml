open Fn_graph

let graph dims =
  let geo = Mesh.geometry dims in
  let d = Array.length dims in
  let b = Builder.create geo.Mesh.size in
  for v = 0 to geo.Mesh.size - 1 do
    let coords = Mesh.decode geo v in
    for i = 0 to d - 1 do
      if dims.(i) > 1 then begin
        let next = Array.copy coords in
        next.(i) <- (coords.(i) + 1) mod dims.(i);
        let w = Mesh.encode geo next in
        (* sides of length 2 produce the same edge from both endpoints;
           Builder/Graph dedupe handles it *)
        if w <> v then Builder.add_edge b v w
      end
    done
  done;
  (Builder.to_graph b, geo)

let cube ~d ~side = graph (Array.make d side)
