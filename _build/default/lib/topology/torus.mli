open Fn_graph

(** d-dimensional tori (meshes with wraparound).

    The torus is the regular sibling of the mesh: degree 2d
    everywhere (for sides >= 3), which simplifies the degree bounds
    in Theorem 3.4 experiments, and it is the steady-state topology
    of the CAN overlay discussed in the paper's conclusion. *)

val graph : int array -> Graph.t * Mesh.geometry
(** [graph dims] builds the torus with the given side lengths.  Sides
    of length 1 or 2 are handled (wrap edges that would duplicate a
    mesh edge are merged). *)

val cube : d:int -> side:int -> Graph.t * Mesh.geometry
