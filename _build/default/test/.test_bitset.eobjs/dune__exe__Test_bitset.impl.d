test/test_bitset.ml: Alcotest Bitset Fn_graph List Printf QCheck2 Testutil
