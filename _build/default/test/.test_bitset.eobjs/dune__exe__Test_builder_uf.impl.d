test/test_builder_uf.ml: Alcotest Components Fn_graph Graph Testutil Union_find
