test/test_builder_uf.mli:
