test/test_can.ml: Alcotest Array Components Fn_graph Fn_prng Fn_topology Graph List Printf Testutil
