test/test_compact.ml: Alcotest Bfs Bitset Boundary Compact Faultnet Fn_graph Fn_prng Fn_topology Format Graph List Printf QCheck2 Testutil
