test/test_components_boundary.ml: Alcotest Array Bitset Boundary Components Fn_graph Fn_topology Graph List Testutil
