test/test_components_boundary.mli:
