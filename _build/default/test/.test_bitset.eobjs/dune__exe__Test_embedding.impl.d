test/test_embedding.ml: Alcotest Array Bitset Components Embedding Faultnet Fn_faults Fn_graph Fn_prng Fn_topology Graph Hashtbl Testutil
