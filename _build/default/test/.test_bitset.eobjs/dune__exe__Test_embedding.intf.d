test/test_embedding.mli:
