test/test_expansion.ml: Alcotest Analytic Array Bitset Cut Estimate Exact Fn_expansion Fn_graph Fn_prng Fn_topology Graph Local_search QCheck2 Sweep Testutil
