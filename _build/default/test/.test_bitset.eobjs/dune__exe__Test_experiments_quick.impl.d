test/test_experiments_quick.ml: Alcotest Fn_experiments List Printf String Testutil
