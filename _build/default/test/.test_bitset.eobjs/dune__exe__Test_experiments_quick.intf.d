test/test_experiments_quick.mli:
