test/test_faults.ml: Adversary Alcotest Bitset Churn Components Fault_set Fn_faults Fn_graph Fn_prng Fn_topology Graph List Random_faults Testutil
