test/test_gio.ml: Alcotest Bitset Filename Fn_graph Fn_topology Fun Gio Graph List String Sys Testutil
