test/test_graph.ml: Alcotest Bitset Builder Check Fn_graph Graph List Testutil
