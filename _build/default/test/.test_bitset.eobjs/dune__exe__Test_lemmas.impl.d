test/test_lemmas.ml: Alcotest Array Bitset Boundary Faultnet Float Fn_faults Fn_graph Fn_prng Fn_topology Graph List Testutil
