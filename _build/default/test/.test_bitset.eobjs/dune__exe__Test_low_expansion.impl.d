test/test_low_expansion.ml: Alcotest Bitset Boundary Faultnet Fn_expansion Fn_graph Fn_prng Fn_topology Graph Low_expansion Testutil
