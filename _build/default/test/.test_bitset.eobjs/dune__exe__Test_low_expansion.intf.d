test/test_low_expansion.mli:
