test/test_maxflow.ml: Alcotest Bitset Boundary Fn_graph Fn_topology Graph List Maxflow Testutil
