test/test_maxflow.mli:
