test/test_mesh_span.ml: Alcotest Bitset Compact Dfs Faultnet Fn_graph Fn_prng Fn_topology Format List Mesh_span Testutil
