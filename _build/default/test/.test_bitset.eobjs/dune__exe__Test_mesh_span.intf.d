test/test_mesh_span.mli:
