test/test_metrics.ml: Alcotest Bitset Fn_graph Fn_prng Fn_topology Graph Metrics Testutil
