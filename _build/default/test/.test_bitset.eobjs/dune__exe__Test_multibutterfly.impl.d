test/test_multibutterfly.ml: Alcotest Array Check Components Fn_graph Fn_prng Fn_topology Graph Testutil
