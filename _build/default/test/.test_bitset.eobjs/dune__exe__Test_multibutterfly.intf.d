test/test_multibutterfly.mli:
