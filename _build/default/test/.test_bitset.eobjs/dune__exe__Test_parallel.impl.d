test/test_parallel.ml: Alcotest Array Fn_parallel Fn_prng Fun List Par Printf Testutil
