test/test_percolation.ml: Alcotest Array Fn_percolation Fn_prng Fn_topology List Newman_ziff Testutil Threshold
