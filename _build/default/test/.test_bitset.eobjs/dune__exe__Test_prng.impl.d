test/test_prng.ml: Alcotest Array Dist Fn_prng Fun List Rng Testutil
