test/test_prng_battery.ml: Alcotest Array Fn_prng Hashtbl Int64 Printf Rng Testutil
