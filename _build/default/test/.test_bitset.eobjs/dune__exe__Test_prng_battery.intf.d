test/test_prng_battery.mli:
