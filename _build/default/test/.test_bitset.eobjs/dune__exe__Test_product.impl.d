test/test_product.ml: Alcotest Array Basic Check Components Fn_expansion Fn_graph Fn_topology Graph Hypercube Mesh Product QCheck2 Testutil Torus
