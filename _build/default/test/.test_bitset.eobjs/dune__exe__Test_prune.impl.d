test/test_prune.ml: Alcotest Bitset Builder Faultnet Fn_expansion Fn_faults Fn_graph Fn_prng Fn_topology Graph List Prune Testutil Theorem
