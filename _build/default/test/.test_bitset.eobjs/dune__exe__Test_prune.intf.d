test/test_prune.mli:
