test/test_prune2.ml: Alcotest Bitset Dfs Faultnet Fn_faults Fn_graph Fn_prng Fn_topology Graph List Printf Prune2 Testutil Theorem
