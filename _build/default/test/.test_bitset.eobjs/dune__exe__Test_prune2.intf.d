test/test_prune2.mli:
