test/test_routing.ml: Alcotest Array Bitset Demand Fn_graph Fn_prng Fn_routing Fn_topology List Route Sim Testutil
