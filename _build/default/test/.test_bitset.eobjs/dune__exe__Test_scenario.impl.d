test/test_scenario.ml: Alcotest Faultnet Fn_faults Fn_graph Fn_prng Fn_topology Graph List Scenario String Testutil
