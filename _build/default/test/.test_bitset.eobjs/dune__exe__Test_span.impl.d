test/test_span.ml: Alcotest Bitset Compact Faultnet Fn_graph Fn_prng Fn_topology Graph List Span Steiner Testutil
