test/test_span.mli:
