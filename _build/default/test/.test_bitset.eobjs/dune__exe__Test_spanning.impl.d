test/test_spanning.ml: Alcotest Array Bitset Fn_graph Fn_topology Graph List Spanning_tree Testutil
