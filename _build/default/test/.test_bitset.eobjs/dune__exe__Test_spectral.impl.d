test/test_spectral.ml: Alcotest Array Bitset Cut Exact Float Fn_expansion Fn_graph Fn_topology Graph List Printf Spectral Testutil
