test/test_stats.ml: Alcotest Array Fit Fn_stats List QCheck2 Series String Summary Table Testutil
