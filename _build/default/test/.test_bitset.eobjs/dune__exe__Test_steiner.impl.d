test/test_steiner.ml: Alcotest Array Bitset Fn_graph Fn_topology Fun Graph QCheck2 Steiner Testutil
