test/test_subgraph.ml: Alcotest Array Bitset Check Fn_graph Fn_topology Graph Subgraph Testutil
