test/test_subgraph.mli:
