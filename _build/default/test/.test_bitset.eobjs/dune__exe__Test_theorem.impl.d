test/test_theorem.ml: Alcotest Faultnet Float Testutil Theorem
