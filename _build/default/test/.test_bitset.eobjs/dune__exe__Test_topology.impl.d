test/test_topology.ml: Alcotest Array Bitset Boundary Check Components Fn_graph Fn_prng Fn_topology Fun Graph List Printf Testutil
