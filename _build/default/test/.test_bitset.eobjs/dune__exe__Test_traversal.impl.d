test/test_traversal.ml: Alcotest Array Bfs Bitset Dfs Fn_graph Fn_topology Graph List Testutil
