test/testutil.ml: Alcotest Array Bitset Fn_graph Format Graph List Printf QCheck2 QCheck_alcotest String
