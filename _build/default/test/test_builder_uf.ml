open Fn_graph
open Testutil

let test_singletons () =
  let uf = Union_find.create 5 in
  check_int "components" 5 (Union_find.num_components uf);
  check_int "max size" 1 (Union_find.max_component_size uf);
  check_int "size" 1 (Union_find.size uf 3);
  check_bool "not connected" false (Union_find.connected uf 0 1)

let test_union_merges () =
  let uf = Union_find.create 6 in
  check_bool "first union" true (Union_find.union uf 0 1);
  check_bool "redundant union" false (Union_find.union uf 1 0);
  check_bool "connected" true (Union_find.connected uf 0 1);
  check_int "size" 2 (Union_find.size uf 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 2);
  check_int "merged size" 4 (Union_find.size uf 3);
  check_int "max size" 4 (Union_find.max_component_size uf);
  check_int "components" 3 (Union_find.num_components uf)

let test_chain_unions () =
  let n = 1000 in
  let uf = Union_find.create n in
  for i = 0 to n - 2 do
    ignore (Union_find.union uf i (i + 1))
  done;
  check_int "one component" 1 (Union_find.num_components uf);
  check_int "max = n" n (Union_find.max_component_size uf);
  check_bool "ends connected" true (Union_find.connected uf 0 (n - 1))

let test_empty_uf () =
  let uf = Union_find.create 0 in
  check_int "components" 0 (Union_find.num_components uf);
  check_int "max size" 0 (Union_find.max_component_size uf)

let prop_union_find_vs_components =
  prop "union-find agrees with BFS components" ~count:100
    (Testutil.gen_any_graph ~max_n:20 ())
    (fun g ->
      let n = Graph.num_nodes g in
      let uf = Union_find.create n in
      Graph.iter_edges g (fun u v -> ignore (Union_find.union uf u v));
      let comps = Components.compute g in
      Union_find.num_components uf = comps.Components.count
      && Union_find.max_component_size uf = Components.largest_size comps)

let () =
  Alcotest.run "union_find"
    [
      ( "unit",
        [
          case "singletons" test_singletons;
          case "union merges" test_union_merges;
          case "chain" test_chain_unions;
          case "empty" test_empty_uf;
        ] );
      ("properties", [ prop_union_find_vs_components ]);
    ]
