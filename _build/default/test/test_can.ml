open Fn_graph
open Testutil

let rng () = Fn_prng.Rng.create 4242

let test_single_node () =
  let can = Fn_topology.Can.create 2 in
  check_int "one node" 1 (Fn_topology.Can.num_nodes can);
  check_float "owns everything" 1.0 (Fn_topology.Can.zone_volume can 0);
  let g = Fn_topology.Can.graph can in
  check_int "no self edges" 0 (Graph.num_edges g)

let test_volumes_sum_to_one () =
  let can = Fn_topology.Can.build (rng ()) ~d:3 ~n:64 in
  let total = ref 0.0 in
  for i = 0 to 63 do
    total := !total +. Fn_topology.Can.zone_volume can i
  done;
  check_float_eps 1e-9 "volumes partition the torus" 1.0 !total

let test_zones_disjoint () =
  (* sample points; each must lie in exactly one zone *)
  let r = rng () in
  let can = Fn_topology.Can.build r ~d:2 ~n:32 in
  for _ = 1 to 200 do
    let p = Array.init 2 (fun _ -> Fn_prng.Rng.unit_float r) in
    let owners = ref 0 in
    for i = 0 to 31 do
      let z = Fn_topology.Can.zone can i in
      let inside = ref true in
      Array.iteri
        (fun k x ->
          if not (x >= z.Fn_topology.Can.lo.(k) && x < z.Fn_topology.Can.hi.(k)) then
            inside := false)
        p;
      if !inside then incr owners
    done;
    check_int "exactly one owner" 1 !owners
  done

let test_overlay_connected () =
  List.iter
    (fun (d, n) ->
      let can = Fn_topology.Can.build (rng ()) ~d ~n in
      let g = Fn_topology.Can.graph can in
      check_int "node count" n (Graph.num_nodes g);
      check_bool (Printf.sprintf "overlay connected d=%d n=%d" d n) true
        (Components.is_connected g))
    [ (1, 16); (2, 64); (3, 64); (4, 32) ]

let test_neighbor_predicate () =
  let can = Fn_topology.Can.build (rng ()) ~d:2 ~n:16 in
  for u = 0 to 15 do
    check_bool "irreflexive" false (Fn_topology.Can.are_neighbors can u u);
    for v = 0 to 15 do
      if Fn_topology.Can.are_neighbors can u v <> Fn_topology.Can.are_neighbors can v u then
        Alcotest.failf "asymmetric at %d %d" u v
    done
  done

let test_balance () =
  let can = Fn_topology.Can.create 2 in
  check_float "singleton balanced" 1.0 (Fn_topology.Can.balance can);
  let grown = Fn_topology.Can.build (rng ()) ~d:2 ~n:64 in
  check_bool "balance >= 1" true (Fn_topology.Can.balance grown >= 1.0)

let test_dimension_bounds () =
  Alcotest.check_raises "d too big" (Invalid_argument "Can.create: need 1 <= d <= 10")
    (fun () -> ignore (Fn_topology.Can.create 11))

let test_two_nodes_after_join () =
  let r = rng () in
  let can = Fn_topology.Can.create 2 in
  let id = Fn_topology.Can.join r can in
  check_int "new id" 1 id;
  check_int "two nodes" 2 (Fn_topology.Can.num_nodes can);
  check_float_eps 1e-9 "halved" 0.5 (Fn_topology.Can.zone_volume can 0);
  check_float_eps 1e-9 "halved" 0.5 (Fn_topology.Can.zone_volume can 1);
  let g = Fn_topology.Can.graph can in
  check_int "joined zones are neighbours" 1 (Graph.num_edges g)

let () =
  Alcotest.run "can"
    [
      ( "zones",
        [
          case "single node" test_single_node;
          case "volumes sum to 1" test_volumes_sum_to_one;
          case "zones disjoint" test_zones_disjoint;
          case "two nodes" test_two_nodes_after_join;
          case "balance" test_balance;
          case "dimension bounds" test_dimension_bounds;
        ] );
      ( "overlay",
        [
          case "connected" test_overlay_connected;
          case "neighbor predicate" test_neighbor_predicate;
        ] );
    ]
