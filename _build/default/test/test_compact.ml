open Fn_graph
open Faultnet
open Testutil

let path5 = Fn_topology.Basic.path 5
let cycle6 = Fn_topology.Basic.cycle 6

let test_is_compact_path () =
  check_bool "prefix compact" true (Compact.is_compact path5 (Bitset.of_list 5 [ 0; 1 ]));
  check_bool "middle not compact" false (Compact.is_compact path5 (Bitset.of_list 5 [ 2 ]));
  check_bool "empty not compact" false (Compact.is_compact path5 (Bitset.create 5));
  check_bool "everything not compact" false (Compact.is_compact path5 (Bitset.create_full 5))

let test_is_compact_masked () =
  let alive = Bitset.of_list 5 [ 0; 1; 2 ] in
  check_bool "prefix of fragment" true (Compact.is_compact ~alive path5 (Bitset.of_list 5 [ 0 ]));
  check_bool "disconnecting middle" false
    (Compact.is_compact ~alive path5 (Bitset.of_list 5 [ 1 ]))

let test_enumerate_path () =
  (* compact sets of P_n are prefixes and suffixes: 2(n-1) *)
  List.iter
    (fun n ->
      let sets = Compact.enumerate (Fn_topology.Basic.path n) in
      check_int (Printf.sprintf "P%d compact sets" n) (2 * (n - 1)) (List.length sets))
    [ 3; 4; 5; 6 ]

let test_enumerate_cycle () =
  (* compact sets of C_n are proper arcs: n(n-1)? no — arcs of each
     length 1..n-1 starting anywhere: n*(n-1) total, but each set is
     counted once: n choices of start * (n-1) lengths = n(n-1) sets *)
  let sets = Compact.enumerate cycle6 in
  check_int "C6 compact sets" 30 (List.length sets)

let test_enumerate_complete () =
  (* every proper nonempty subset of K_n is compact *)
  let sets = Compact.enumerate (Fn_topology.Basic.complete 4) in
  check_int "K4 compact sets" 14 (List.length sets)

let test_enumerate_all_are_compact () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:3 in
  let sets = Compact.enumerate g in
  List.iter
    (fun s ->
      if not (Compact.is_compact g s) then
        Alcotest.failf "enumerated non-compact set %s" (Format.asprintf "%a" Bitset.pp s))
    sets

let test_enumerate_limit () =
  Alcotest.check_raises "limit" (Invalid_argument "Compact.enumerate: graph too large")
    (fun () -> ignore (Compact.enumerate (Fn_topology.Basic.cycle 21)))

let test_compactify_already_compact () =
  let s = Bitset.of_list 5 [ 0; 1 ] in
  let k = Compact.compactify path5 s in
  check_bool "unchanged" true (Bitset.equal k s)

let test_compactify_middle_of_path () =
  (* S = {2} in P5 splits the complement; K must be compact with edge
     ratio <= S's (S has ratio 2/1 = 2) *)
  let s = Bitset.of_list 5 [ 2 ] in
  let k = Compact.compactify path5 s in
  check_bool "result compact" true (Compact.is_compact path5 k);
  let ratio set =
    float_of_int (Boundary.edge_boundary_size path5 set)
    /. float_of_int (Bitset.cardinal set)
  in
  check_bool "ratio no worse" true (ratio k <= ratio s +. 1e-9)

let test_compactify_rejects () =
  Alcotest.check_raises "disconnected S" (Invalid_argument "Compact.compactify: S not connected")
    (fun () -> ignore (Compact.compactify path5 (Bitset.of_list 5 [ 0; 2 ])));
  Alcotest.check_raises "everything" (Invalid_argument "Compact.compactify: S is everything")
    (fun () -> ignore (Compact.compactify path5 (Bitset.create_full 5)))

let test_random_compact () =
  let rng = Fn_prng.Rng.create 66 in
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:6 in
  for _ = 1 to 30 do
    match Compact.random_compact rng g ~target_size:(1 + Fn_prng.Rng.int rng 17) with
    | None -> ()
    | Some u ->
      if not (Compact.is_compact g u) then Alcotest.fail "random_compact returned non-compact"
  done

let test_random_compact_degenerate () =
  let rng = Fn_prng.Rng.create 66 in
  check_bool "too small" true (Compact.random_compact rng path5 ~target_size:3 = None);
  let disconnected = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check_bool "disconnected" true (Compact.random_compact rng disconnected ~target_size:1 = None)

(* Lemma 3.3 as a property: compactify never increases the edge ratio *)
let gen_graph_with_connected_set =
  QCheck2.Gen.(
    Testutil.gen_connected_graph ~max_n:10 () >>= fun g ->
    let n = Graph.num_nodes g in
    int_range 0 (n - 1) >>= fun src ->
    int_range 1 (max 1 (n / 2)) >>= fun size ->
    let s = Bfs.ball_of_size g src size in
    return (g, s))

let prop_compactify_lemma33 =
  prop "Lemma 3.3: K_G(S) compact with edge ratio <= S's" ~count:150
    gen_graph_with_connected_set (fun (g, s) ->
      let n = Graph.num_nodes g in
      if Bitset.cardinal s = 0 || Bitset.cardinal s >= n then true
      else begin
        let k = Compact.compactify g s in
        let ratio set =
          float_of_int (Boundary.edge_boundary_size g set)
          /. float_of_int (Bitset.cardinal set)
        in
        Compact.is_compact g k && ratio k <= ratio s +. 1e-9
      end)

let prop_enumerate_symmetric =
  prop "enumerate is closed under complement" ~count:40
    (Testutil.gen_connected_graph ~max_n:8 ())
    (fun g ->
      let sets = Compact.enumerate g in
      List.for_all
        (fun s -> List.exists (fun t -> Bitset.equal t (Bitset.complement s)) sets)
        sets)

let () =
  Alcotest.run "compact"
    [
      ( "predicate",
        [ case "path cases" test_is_compact_path; case "masked" test_is_compact_masked ] );
      ( "enumerate",
        [
          case "path count" test_enumerate_path;
          case "cycle count" test_enumerate_cycle;
          case "complete count" test_enumerate_complete;
          case "all compact" test_enumerate_all_are_compact;
          case "size limit" test_enumerate_limit;
        ] );
      ( "compactify",
        [
          case "already compact" test_compactify_already_compact;
          case "splitting set" test_compactify_middle_of_path;
          case "rejects" test_compactify_rejects;
        ] );
      ( "random",
        [ case "samples compact" test_random_compact; case "degenerate" test_random_compact_degenerate ]
      );
      ("properties", [ prop_compactify_lemma33; prop_enumerate_symmetric ]);
    ]
