open Fn_graph
open Faultnet
open Testutil

let mesh6, _ = Fn_topology.Mesh.cube ~d:2 ~side:6

let test_identity_embedding () =
  let kept = Bitset.create_full 36 in
  let emb = Embedding.self_embed mesh6 ~kept in
  check_int "load 1" 1 emb.Embedding.load;
  (* each edge maps to itself: a path of one edge, used once *)
  check_int "dilation 1" 1 emb.Embedding.dilation;
  check_int "congestion 1" 1 emb.Embedding.congestion;
  check_int "all mapped" 0 emb.Embedding.unmapped;
  check_int "slowdown 3" 3 (Embedding.slowdown_bound emb);
  Array.iteri (fun v img -> if img <> v then Alcotest.fail "identity map broken")
    emb.Embedding.node_map

let test_single_dead_node () =
  let kept = Bitset.complement (Bitset.of_list 36 [ 14 ]) in
  let emb = Embedding.self_embed mesh6 ~kept in
  check_int "no unmapped" 0 emb.Embedding.unmapped;
  check_int "no unrouted" 0 emb.Embedding.unrouted;
  (* the dead node maps to one of its alive neighbours *)
  let img = emb.Embedding.node_map.(14) in
  check_bool "neighbour image" true (Graph.has_edge mesh6 14 img);
  check_int "that image carries 2" 2 emb.Embedding.load;
  (* the dead node's edges re-route around it: short detours only *)
  check_bool "small dilation" true (emb.Embedding.dilation <= 4)

let test_path_survivor_end () =
  (* path of 6, only node 0 survives: everything maps there *)
  let p6 = Fn_topology.Basic.path 6 in
  let kept = Bitset.of_list 6 [ 0 ] in
  let emb = Embedding.self_embed p6 ~kept in
  check_int "load all" 6 emb.Embedding.load;
  check_int "dilation 0 (single survivor)" 0 emb.Embedding.dilation;
  check_int "unmapped" 0 emb.Embedding.unmapped

let test_disconnected_survivor_routes () =
  (* two survivors at the ends of a path: the middle edges must embed
     into kept-only paths, which do not exist -> unrouted *)
  let p6 = Fn_topology.Basic.path 6 in
  let kept = Bitset.of_list 6 [ 0; 5 ] in
  let emb = Embedding.self_embed p6 ~kept in
  check_bool "some edges unrouted" true (emb.Embedding.unrouted > 0)

let test_empty_survivor_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Embedding.self_embed: empty survivor")
    (fun () -> ignore (Embedding.self_embed mesh6 ~kept:(Bitset.create 36)))

let test_images_are_kept () =
  let rng = Fn_prng.Rng.create 4 in
  let faults = Fn_faults.Random_faults.nodes_iid rng mesh6 0.2 in
  let kept = Components.largest_members ~alive:faults.Fn_faults.Fault_set.alive mesh6 in
  if Bitset.cardinal kept > 0 then begin
    let emb = Embedding.self_embed mesh6 ~kept in
    Array.iter
      (fun img -> if img >= 0 && not (Bitset.mem kept img) then Alcotest.fail "image not kept")
      emb.Embedding.node_map
  end

let prop_embedding_sound =
  prop "embedding invariants on random graphs + survivors" ~count:50
    (Testutil.gen_graph_and_subset ~max_n:10 ())
    (fun (g, kept) ->
      if Bitset.is_empty kept then true
      else begin
        let emb = Embedding.self_embed g ~kept in
        let n = Graph.num_nodes g in
        (* images alive, load consistent, unmapped counted *)
        let load_check = Hashtbl.create 16 in
        let unmapped = ref 0 in
        Array.iter
          (fun img ->
            if img < 0 then incr unmapped
            else begin
              if not (Bitset.mem kept img) then raise Exit;
              Hashtbl.replace load_check img
                (1 + try Hashtbl.find load_check img with Not_found -> 0)
            end)
          emb.Embedding.node_map;
        let max_load = Hashtbl.fold (fun _ c acc -> max acc c) load_check 0 in
        !unmapped = emb.Embedding.unmapped
        && max_load = emb.Embedding.load
        && emb.Embedding.dilation >= 0
        && Array.length emb.Embedding.node_map = n
      end)

let () =
  Alcotest.run "embedding"
    [
      ( "unit",
        [
          case "identity" test_identity_embedding;
          case "single dead node" test_single_dead_node;
          case "single survivor" test_path_survivor_end;
          case "disconnected survivor" test_disconnected_survivor_routes;
          case "empty rejected" test_empty_survivor_rejected;
          case "images kept" test_images_are_kept;
        ] );
      ("properties", [ prop_embedding_sound ]);
    ]
