open Fn_graph
open Testutil

let mesh3, _ = Fn_topology.Mesh.cube ~d:2 ~side:3

let test_string_roundtrip () =
  let s = Gio.to_edge_list_string mesh3 in
  let g = Gio.of_edge_list_string s in
  check_bool "roundtrip equal" true (Graph.equal mesh3 g)

let test_header_isolated_nodes () =
  (* header preserves isolated nodes that no edge mentions *)
  let g = Graph.of_edges 5 [ (0, 1) ] in
  let g' = Gio.of_edge_list_string (Gio.to_edge_list_string g) in
  check_int "isolated preserved" 5 (Graph.num_nodes g')

let test_headerless () =
  let g = Gio.of_edge_list_string "0 1\n1 2\n" in
  check_int "inferred nodes" 3 (Graph.num_nodes g);
  check_int "edges" 2 (Graph.num_edges g)

let test_comments_and_blanks () =
  let g = Gio.of_edge_list_string "# a comment\n\n0 1\n# another\n1 2\n\n" in
  check_int "edges" 2 (Graph.num_edges g)

let test_malformed () =
  Alcotest.check_raises "bad token" (Failure "Gio: bad edge on line 1: \"0 x\"") (fun () ->
      ignore (Gio.of_edge_list_string "0 x"));
  Alcotest.check_raises "bad arity" (Failure "Gio: bad line 1: \"0 1 2\"") (fun () ->
      ignore (Gio.of_edge_list_string "0 1 2"))

let test_file_roundtrip () =
  let path = Filename.temp_file "faultnet" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gio.save path mesh3;
      let g = Gio.load path in
      check_bool "file roundtrip" true (Graph.equal mesh3 g))

let test_dot () =
  let dot = Gio.to_dot ~name:"m" ~highlight:(Bitset.of_list 9 [ 0 ]) mesh3 in
  check_bool "has graph header" true (String.length dot > 0 && String.sub dot 0 7 = "graph m");
  check_bool "mentions an edge" true
    (String.split_on_char '\n' dot |> List.exists (fun l -> l = "  0 -- 1;"));
  check_bool "highlights node" true
    (String.split_on_char '\n' dot
    |> List.exists (fun l -> l = "  0 [style=filled fillcolor=gray];"))

let prop_roundtrip =
  prop "string roundtrip for arbitrary graphs" (Testutil.gen_any_graph ~max_n:15 ())
    (fun g -> Graph.equal g (Gio.of_edge_list_string (Gio.to_edge_list_string g)))

let () =
  Alcotest.run "gio"
    [
      ( "unit",
        [
          case "string roundtrip" test_string_roundtrip;
          case "isolated nodes" test_header_isolated_nodes;
          case "headerless" test_headerless;
          case "comments/blanks" test_comments_and_blanks;
          case "malformed" test_malformed;
          case "file roundtrip" test_file_roundtrip;
          case "dot export" test_dot;
        ] );
      ("properties", [ prop_roundtrip ]);
    ]
