(* Executable versions of the paper's auxiliary lemmas — the counting
   and accounting facts the main theorems lean on. *)

open Fn_graph
open Testutil

(* ---- Claim 3.2: the Eulerian-walk counting bound — a graph of
   degree delta has at most n * delta^(2r) connected r-vertex
   subgraphs.  Verified exhaustively on small instances. *)

let count_connected_subsets g =
  (* counts.(r) = number of connected node subsets of size r *)
  let n = Graph.num_nodes g in
  let nbr = Array.init n (fun v -> Graph.fold_neighbors g v (fun acc w -> acc lor (1 lsl w)) 0) in
  let connected_mask mask =
    if mask = 0 then false
    else begin
      let start = mask land -mask in
      let visited = ref start in
      let frontier = ref start in
      while !frontier <> 0 do
        let next = ref 0 in
        let rem = ref !frontier in
        while !rem <> 0 do
          let low = !rem land - !rem in
          let v =
            let rec idx b k = if b land 1 = 1 then k else idx (b lsr 1) (k + 1) in
            idx low 0
          in
          next := !next lor (nbr.(v) land mask land lnot !visited);
          rem := !rem lxor low
        done;
        visited := !visited lor !next;
        frontier := !next
      done;
      !visited = mask
    end
  in
  let counts = Array.make (n + 1) 0 in
  for mask = 1 to (1 lsl n) - 1 do
    if connected_mask mask then begin
      let r =
        let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (acc + 1) in
        pop mask 0
      in
      counts.(r) <- counts.(r) + 1
    end
  done;
  counts

let test_claim32_counting () =
  (* Claim 3.2 counts, via Eulerian walks, the connected r-vertex
     subgraphs of the base expander G: at most n * delta^(2r).
     Connected node subsets are a subfamily of connected subgraphs, so
     the bound must hold for them; check it exhaustively. *)
  List.iter
    (fun (name, g, delta) ->
      let n = Graph.num_nodes g in
      let counts = count_connected_subsets g in
      for r = 1 to n do
        let bound = float_of_int n *. Float.pow (float_of_int delta) (2.0 *. float_of_int r) in
        if float_of_int counts.(r) > bound then
          Alcotest.failf "%s r=%d: %d connected subsets > bound %.0f" name r counts.(r) bound
      done)
    [
      ("mesh 3x3", fst (Fn_topology.Mesh.graph [| 3; 3 |]), 4);
      ("cycle 10", Fn_topology.Basic.cycle 10, 2);
      ("K5", Fn_topology.Basic.complete 5, 4);
    ]

(* ---- Lemma 2.2: boundary subadditivity of Prune's culled sets:
   |Γ(∪ S_i)| <= Σ |Γ(S_i)| <= α ε |∪ S_i|, all measured in G_f. *)

let check_lemma22 g alive (res : Faultnet.Prune.result) =
  match res.Faultnet.Prune.culled with
  | [] -> true
  | culled ->
    let union = Bitset.create (Graph.num_nodes g) in
    List.iter (fun c -> Bitset.union_into union c.Faultnet.Prune.set) culled;
    let union_boundary = Boundary.node_boundary_size ~alive g union in
    (* per-set boundaries in G_f (the lemma's statement): each culled
       certificate stores the boundary in G_i, which only shrinks as
       nodes are removed, so the G_f boundary is bounded by the sum of
       per-G_f boundaries; measure them directly *)
    let sum_boundaries =
      List.fold_left
        (fun acc c -> acc + Boundary.node_boundary_size ~alive g c.Faultnet.Prune.set)
        0 culled
    in
    let threshold_mass =
      res.Faultnet.Prune.threshold *. float_of_int (Bitset.cardinal union)
    in
    union_boundary <= sum_boundaries
    && (* the second inequality of the lemma holds for the G_i
          boundaries recorded in the certificates *)
    float_of_int
      (List.fold_left (fun acc c -> acc + c.Faultnet.Prune.boundary) 0 culled)
    <= threshold_mass +. 1e-9

let test_lemma22_path () =
  let g = Fn_topology.Basic.path 16 in
  let alive = Bitset.create_full 16 in
  let res = Faultnet.Prune.run ~rng:(Fn_prng.Rng.create 1) g ~alive ~alpha:4.0 ~epsilon:0.5 in
  check_bool "culled something" true (res.Faultnet.Prune.culled <> []);
  check_bool "lemma 2.2 accounting" true (check_lemma22 g alive res)

let prop_lemma22_random =
  prop "Lemma 2.2 on random graphs with faults" ~count:50
    (Testutil.gen_connected_graph ~max_n:14 ())
    (fun g ->
      let r = Fn_prng.Rng.create 31 in
      let faults = Fn_faults.Random_faults.nodes_iid r g 0.25 in
      let alive = faults.Fn_faults.Fault_set.alive in
      if Bitset.cardinal alive < 2 then true
      else begin
        let res = Faultnet.Prune.run ~rng:r g ~alive ~alpha:1.0 ~epsilon:0.5 in
        check_lemma22 g alive res
      end)

(* ---- Theorem 2.1's size accounting, replayed directly from the
   certificates: n - |H| = Σ|S_i| and every S_i was below threshold. *)

let prop_thm21_size_accounting =
  prop "culled mass equals alive minus kept" ~count:50
    (Testutil.gen_connected_graph ~max_n:14 ())
    (fun g ->
      let r = Fn_prng.Rng.create 77 in
      let faults = Fn_faults.Random_faults.nodes_iid r g 0.2 in
      let alive = faults.Fn_faults.Fault_set.alive in
      if Bitset.cardinal alive < 2 then true
      else begin
        let res = Faultnet.Prune.run ~rng:r g ~alive ~alpha:0.8 ~epsilon:0.5 in
        Faultnet.Prune.total_culled res
        = Bitset.cardinal alive - Bitset.cardinal res.Faultnet.Prune.kept
      end)

let () =
  Alcotest.run "lemmas"
    [
      ("claim 3.2", [ case "connected-subset counting" test_claim32_counting ]);
      ( "lemma 2.2",
        [ case "path culls" test_lemma22_path ] );
      ("properties", [ prop_lemma22_random; prop_thm21_size_accounting ]);
    ]
