open Fn_graph
open Faultnet
open Testutil

let full n = Bitset.create_full n

let test_exact_finder_finds_witness () =
  (* barbell has node expansion 0.2; threshold 0.3 must find a set *)
  let g = Fn_topology.Basic.barbell 5 in
  let finder = Low_expansion.exact Fn_expansion.Cut.Node in
  match finder ~alive:(full 10) g ~threshold:0.3 with
  | None -> Alcotest.fail "expected a witness"
  | Some s ->
    let value = Fn_expansion.Cut.value_of g Fn_expansion.Cut.Node s in
    check_bool "below threshold" true (value <= 0.3)

let test_exact_finder_none_above () =
  (* K6 has expansion 1.0; threshold 0.5 finds nothing *)
  let g = Fn_topology.Basic.complete 6 in
  let finder = Low_expansion.exact Fn_expansion.Cut.Node in
  check_bool "no witness" true (finder ~alive:(full 6) g ~threshold:0.5 = None)

let test_exact_finder_size_limit () =
  let g = Fn_topology.Basic.cycle 25 in
  let finder = Low_expansion.exact Fn_expansion.Cut.Node in
  Alcotest.check_raises "limit" (Invalid_argument "Low_expansion.exact: fragment too large")
    (fun () -> ignore (finder ~alive:(full 25) g ~threshold:0.5))

let test_default_returns_component () =
  let g = Graph.of_edges 6 [ (0, 1); (2, 3); (3, 4); (4, 5) ] in
  let finder = Low_expansion.default Fn_expansion.Cut.Node in
  match finder ~alive:(full 6) g ~threshold:0.0001 with
  | None -> Alcotest.fail "disconnected graph must yield a component"
  | Some s ->
    check_int "small component" 2 (Bitset.cardinal s);
    check_bool "zero boundary" true (Boundary.node_boundary_size g s = 0)

let test_default_heuristic_on_large () =
  (* 10x10 mesh: node expansion ~ 0.1; generous threshold finds a set *)
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:10 in
  let finder = Low_expansion.default ~rng:(Fn_prng.Rng.create 1) Fn_expansion.Cut.Node in
  match finder ~alive:(full 100) g ~threshold:0.3 with
  | None -> Alcotest.fail "mesh has low-expansion sets"
  | Some s ->
    let value = Fn_expansion.Cut.value_of g Fn_expansion.Cut.Node s in
    check_bool "below threshold" true (value <= 0.3);
    check_bool "at most half" true (2 * Bitset.cardinal s <= 100)

let test_default_none_on_expander_with_low_threshold () =
  let g = Fn_topology.Expander.random_regular (Fn_prng.Rng.create 2) ~n:64 ~d:6 in
  let finder = Low_expansion.default ~rng:(Fn_prng.Rng.create 3) Fn_expansion.Cut.Node in
  (* no set of expansion below 0.01 exists in a good expander *)
  check_bool "no witness" true (finder ~alive:(full 64) g ~threshold:0.01 = None)

let test_default_tiny_fragment () =
  let g = Fn_topology.Basic.path 2 in
  let finder = Low_expansion.default Fn_expansion.Cut.Node in
  (* single-node side has expansion 1; threshold 2 accepts *)
  match finder ~alive:(full 2) g ~threshold:2.0 with
  | Some s -> check_int "half" 1 (Bitset.cardinal s)
  | None -> Alcotest.fail "expected the trivial witness"

let prop_witness_always_below_threshold =
  prop "any witness returned satisfies the threshold" ~count:60
    (Testutil.gen_connected_graph ~max_n:12 ())
    (fun g ->
      let n = Graph.num_nodes g in
      let finder = Low_expansion.default ~rng:(Fn_prng.Rng.create 7) Fn_expansion.Cut.Node in
      match finder ~alive:(full n) g ~threshold:0.5 with
      | None -> true
      | Some s ->
        Fn_expansion.Cut.value_of g Fn_expansion.Cut.Node s <= 0.5 +. 1e-9
        && 2 * Bitset.cardinal s <= n)

let () =
  Alcotest.run "low_expansion"
    [
      ( "exact",
        [
          case "finds witness" test_exact_finder_finds_witness;
          case "none above" test_exact_finder_none_above;
          case "size limit" test_exact_finder_size_limit;
        ] );
      ( "default",
        [
          case "disconnected -> component" test_default_returns_component;
          case "heuristic on mesh" test_default_heuristic_on_large;
          case "expander has none" test_default_none_on_expander_with_low_threshold;
          case "tiny fragment" test_default_tiny_fragment;
        ] );
      ("properties", [ prop_witness_always_below_threshold ]);
    ]
