open Fn_graph
open Testutil

let path5 = Fn_topology.Basic.path 5
let cycle8 = Fn_topology.Basic.cycle 8
let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4
let k5 = Fn_topology.Basic.complete 5
let q3 = Fn_topology.Hypercube.graph 3

let test_path_flow () =
  check_int "single path" 1 (Maxflow.max_flow path5 ~src:0 ~dst:4)

let test_cycle_flow () =
  check_int "two ways around" 2 (Maxflow.max_flow cycle8 ~src:0 ~dst:4);
  check_int "adjacent" 2 (Maxflow.max_flow cycle8 ~src:0 ~dst:1)

let test_complete_flow () =
  check_int "K5 flow" 4 (Maxflow.max_flow k5 ~src:0 ~dst:3)

let test_mesh_corner_flow () =
  (* opposite corners of the mesh: limited by corner degree 2 *)
  check_int "corner to corner" 2 (Maxflow.max_flow mesh4 ~src:0 ~dst:15)

let test_disconnected_flow () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check_int "no path" 0 (Maxflow.max_flow g ~src:0 ~dst:3)

let test_alive_mask_flow () =
  (* cutting one side of the cycle halves the flow *)
  let alive = Bitset.complement (Bitset.of_list 8 [ 6 ]) in
  check_int "masked cycle" 1 (Maxflow.max_flow ~alive cycle8 ~src:0 ~dst:4)

let test_endpoint_validation () =
  Alcotest.check_raises "same" (Invalid_argument "Maxflow: endpoints must differ") (fun () ->
      ignore (Maxflow.max_flow path5 ~src:2 ~dst:2));
  Alcotest.check_raises "range" (Invalid_argument "Maxflow: endpoint out of range") (fun () ->
      ignore (Maxflow.max_flow path5 ~src:0 ~dst:7));
  let alive = Bitset.of_list 5 [ 0; 1 ] in
  Alcotest.check_raises "dead" (Invalid_argument "Maxflow: endpoints must be alive")
    (fun () -> ignore (Maxflow.max_flow ~alive path5 ~src:0 ~dst:4))

let test_min_cut_side () =
  let side = Maxflow.min_cut_side path5 ~src:0 ~dst:4 in
  check_bool "contains src" true (Bitset.mem side 0);
  check_bool "excludes dst" false (Bitset.mem side 4);
  check_int "boundary equals flow" 1 (Boundary.edge_boundary_size path5 side);
  let side = Maxflow.min_cut_side mesh4 ~src:0 ~dst:15 in
  check_int "mesh cut boundary" 2 (Boundary.edge_boundary_size mesh4 side)

let test_vertex_disjoint () =
  check_int "path" 1 (Maxflow.vertex_disjoint_paths path5 ~src:0 ~dst:4);
  check_int "cycle" 2 (Maxflow.vertex_disjoint_paths cycle8 ~src:0 ~dst:4);
  check_int "hypercube Menger" 3 (Maxflow.vertex_disjoint_paths q3 ~src:0 ~dst:7);
  check_int "complete" 4 (Maxflow.vertex_disjoint_paths k5 ~src:0 ~dst:1);
  (* a theta graph: two nodes joined by 3 internally disjoint paths *)
  let theta =
    Graph.of_edges 8 [ (0, 2); (2, 1); (0, 3); (3, 4); (4, 1); (0, 5); (5, 6); (6, 7); (7, 1) ]
  in
  check_int "theta" 3 (Maxflow.vertex_disjoint_paths theta ~src:0 ~dst:1)

let test_vertex_le_edge () =
  (* Menger: vertex-disjoint <= edge-disjoint *)
  List.iter
    (fun (g, s, t) ->
      check_bool "vertex <= edge" true
        (Maxflow.vertex_disjoint_paths g ~src:s ~dst:t <= Maxflow.max_flow g ~src:s ~dst:t))
    [ (mesh4, 0, 15); (q3, 0, 7); (k5, 0, 2); (cycle8, 1, 5) ]

let test_edge_connectivity () =
  check_int "path" 1 (Maxflow.edge_connectivity path5);
  check_int "cycle" 2 (Maxflow.edge_connectivity cycle8);
  check_int "K5" 4 (Maxflow.edge_connectivity k5);
  check_int "Q3" 3 (Maxflow.edge_connectivity q3);
  let torus, _ = Fn_topology.Torus.cube ~d:2 ~side:4 in
  check_int "torus" 4 (Maxflow.edge_connectivity torus);
  check_int "disconnected" 0 (Maxflow.edge_connectivity (Graph.of_edges 4 [ (0, 1); (2, 3) ]));
  check_int "single node" 0 (Maxflow.edge_connectivity (Graph.empty 1))

let prop_flow_equals_cut =
  prop "max flow = min cut boundary (duality)" ~count:60
    (Testutil.gen_connected_graph ~max_n:10 ())
    (fun g ->
      let n = Graph.num_nodes g in
      let flow = Maxflow.max_flow g ~src:0 ~dst:(n - 1) in
      let side = Maxflow.min_cut_side g ~src:0 ~dst:(n - 1) in
      flow = Boundary.edge_boundary_size g side)

let prop_flow_bounded_by_degrees =
  prop "flow <= min(deg src, deg dst)" ~count:60
    (Testutil.gen_connected_graph ~max_n:10 ())
    (fun g ->
      let n = Graph.num_nodes g in
      Maxflow.max_flow g ~src:0 ~dst:(n - 1)
      <= min (Graph.degree g 0) (Graph.degree g (n - 1)))

let prop_connectivity_le_min_degree =
  prop "edge connectivity <= min degree" ~count:40
    (Testutil.gen_connected_graph ~max_n:10 ())
    (fun g -> Maxflow.edge_connectivity g <= Graph.min_degree g)

let () =
  Alcotest.run "maxflow"
    [
      ( "flow",
        [
          case "path" test_path_flow;
          case "cycle" test_cycle_flow;
          case "complete" test_complete_flow;
          case "mesh corners" test_mesh_corner_flow;
          case "disconnected" test_disconnected_flow;
          case "alive mask" test_alive_mask_flow;
          case "validation" test_endpoint_validation;
        ] );
      ( "cuts and Menger",
        [
          case "min cut side" test_min_cut_side;
          case "vertex disjoint" test_vertex_disjoint;
          case "vertex <= edge" test_vertex_le_edge;
          case "edge connectivity" test_edge_connectivity;
        ] );
      ( "properties",
        [ prop_flow_equals_cut; prop_flow_bounded_by_degrees; prop_connectivity_le_min_degree ]
      );
    ]
