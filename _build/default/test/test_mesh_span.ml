open Fn_graph
open Faultnet
open Testutil

let mesh6, geo6 = Fn_topology.Mesh.cube ~d:2 ~side:6
let mesh3d, geo3d = Fn_topology.Mesh.cube ~d:3 ~side:3

let rect_set geo rows cols =
  let s = Bitset.create geo.Fn_topology.Mesh.size in
  List.iter
    (fun r -> List.iter (fun c -> Bitset.add s (Fn_topology.Mesh.encode geo [| r; c |])) cols)
    rows;
  s

let test_rectangle_certificate () =
  (* 2x2 interior block of the 6x6 mesh *)
  let s = rect_set geo6 [ 2; 3 ] [ 2; 3 ] in
  check_bool "block compact" true (Compact.is_compact mesh6 s);
  match Mesh_span.certify mesh6 geo6 s with
  | None -> Alcotest.fail "expected certificate"
  | Some c ->
    check_bool "virtual connected" true c.Mesh_span.virtual_connected;
    check_int "boundary of 2x2 block" 8 (Bitset.cardinal c.Mesh_span.boundary);
    check_bool "edge bound" true (c.Mesh_span.tree_edges <= Mesh_span.spanning_tree_bound 8);
    check_bool "ratio <= 2" true (c.Mesh_span.ratio <= 2.0 +. 1e-9)

let test_edge_strip_certificate () =
  (* full-width strip: boundary is a straight line, ratio exactly 1 *)
  let s = rect_set geo6 [ 0; 1 ] [ 0; 1; 2; 3; 4; 5 ] in
  match Mesh_span.certify mesh6 geo6 s with
  | None -> Alcotest.fail "expected certificate"
  | Some c ->
    check_int "line boundary" 6 (Bitset.cardinal c.Mesh_span.boundary);
    check_float "straight line ratio 1" 1.0 c.Mesh_span.ratio

let test_non_compact_rejected () =
  let s = Bitset.of_list 36 [ 0; 35 ] in
  Alcotest.check_raises "not compact" (Invalid_argument "Mesh_span.certify: set is not compact")
    (fun () -> ignore (Mesh_span.certify mesh6 geo6 s))

let test_spanning_tree_bound_formula () =
  check_int "b=1" 0 (Mesh_span.spanning_tree_bound 1);
  check_int "b=10" 18 (Mesh_span.spanning_tree_bound 10)

let test_all_compact_sets_of_small_meshes () =
  (* exhaustive Lemma 3.7 check on every compact set of small meshes *)
  List.iter
    (fun dims ->
      let g, geo = Fn_topology.Mesh.graph dims in
      let sets = Compact.enumerate g in
      List.iter
        (fun s ->
          match Mesh_span.certify g geo s with
          | None -> ()
          | Some c ->
            if not c.Mesh_span.virtual_connected then
              Alcotest.failf "Lemma 3.7 violated on %s" (Format.asprintf "%a" Bitset.pp s);
            let b = Bitset.cardinal c.Mesh_span.boundary in
            if c.Mesh_span.tree_edges > Mesh_span.spanning_tree_bound b then
              Alcotest.fail "tree bound violated";
            if c.Mesh_span.ratio > 2.0 +. 1e-9 then Alcotest.fail "span witness above 2")
        sets)
    [ [| 4; 4 |]; [| 3; 5 |]; [| 2; 2; 2 |]; [| 2; 2; 4 |] ]

let test_3d_random_compact_sets () =
  let rng = Fn_prng.Rng.create 3 in
  let tried = ref 0 in
  for _ = 1 to 60 do
    match Compact.random_compact rng mesh3d ~target_size:(1 + Fn_prng.Rng.int rng 13) with
    | None -> ()
    | Some s -> (
      match Mesh_span.certify mesh3d geo3d s with
      | None -> ()
      | Some c ->
        incr tried;
        if (not c.Mesh_span.virtual_connected) || c.Mesh_span.ratio > 2.0 +. 1e-9 then
          Alcotest.fail "3-D mesh certificate violated")
  done;
  check_bool "certified some sets" true (!tried > 10)

let test_tree_nodes_form_connected_subgraph () =
  let s = rect_set geo6 [ 1; 2 ] [ 1; 2; 3 ] in
  match Mesh_span.certify mesh6 geo6 s with
  | None -> Alcotest.fail "expected certificate"
  | Some c ->
    check_bool "tree nodes connected in mesh" true
      (Dfs.is_connected_subset mesh6 c.Mesh_span.tree_nodes)

let () =
  Alcotest.run "mesh_span"
    [
      ( "certificates",
        [
          case "rectangle" test_rectangle_certificate;
          case "edge strip" test_edge_strip_certificate;
          case "non-compact rejected" test_non_compact_rejected;
          case "bound formula" test_spanning_tree_bound_formula;
          case "tree connected" test_tree_nodes_form_connected_subgraph;
        ] );
      ( "exhaustive",
        [
          case "all compact sets, small meshes" test_all_compact_sets_of_small_meshes;
          case "3-D random sets" test_3d_random_compact_sets;
        ] );
    ]
