open Fn_graph
open Testutil

let rng () = Fn_prng.Rng.create 2468
let path6 = Fn_topology.Basic.path 6
let cycle8 = Fn_topology.Basic.cycle 8
let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4

let test_diameter_known () =
  check_int "path" 5 (Metrics.diameter path6);
  check_int "cycle" 4 (Metrics.diameter cycle8);
  check_int "mesh" 6 (Metrics.diameter mesh4);
  check_int "complete" 1 (Metrics.diameter (Fn_topology.Basic.complete 7));
  check_int "single node" 0 (Metrics.diameter (Graph.empty 1))

let test_diameter_masked () =
  let alive = Bitset.of_list 6 [ 0; 1; 2 ] in
  check_int "masked path" 2 (Metrics.diameter ~alive path6)

let test_diameter_disconnected () =
  let g = Graph.of_edges 5 [ (0, 1); (2, 3); (3, 4) ] in
  check_int "ignores cross-component pairs" 2 (Metrics.diameter g)

let test_diameter_estimate () =
  let est = Metrics.diameter_estimate (rng ()) path6 in
  check_int "exact on trees" 5 est;
  let est = Metrics.diameter_estimate (rng ()) mesh4 in
  check_bool "never overestimates" true (est <= 6);
  check_bool "double sweep is decent" true (est >= 4)

let test_mean_distance () =
  let m = Metrics.mean_distance ~samples:7 (rng ()) (Fn_topology.Basic.complete 7) in
  check_float "complete graph" 1.0 m;
  let m = Metrics.mean_distance ~samples:6 (rng ()) path6 in
  (* exact mean pairwise distance of P6 is 35/15 *)
  check_float_eps 1e-9 "path exact (all sources sampled)" (35.0 /. 15.0) m

let test_degree_histogram () =
  check_bool "path histogram" true (Metrics.degree_histogram path6 = [ (1, 2); (2, 4) ]);
  check_bool "mesh histogram" true
    (Metrics.degree_histogram mesh4 = [ (2, 4); (3, 8); (4, 4) ]);
  let alive = Bitset.of_list 6 [ 0; 1; 2 ] in
  check_bool "masked degrees" true (Metrics.degree_histogram ~alive path6 = [ (1, 2); (2, 1) ])

let test_clustering () =
  check_float "triangle" 1.0 (Metrics.clustering_coefficient (Fn_topology.Basic.complete 3));
  check_float "tree has none" 0.0 (Metrics.clustering_coefficient path6);
  let barbell = Fn_topology.Basic.barbell 4 in
  check_bool "barbell in (0,1)" true
    (let c = Metrics.clustering_coefficient barbell in
     c > 0.0 && c < 1.0)

let prop_estimate_le_diameter =
  prop "double sweep <= true diameter" ~count:60 (Testutil.gen_connected_graph ~max_n:12 ())
    (fun g ->
      Metrics.diameter_estimate (Fn_prng.Rng.create 5) g <= Metrics.diameter g)

let () =
  Alcotest.run "metrics"
    [
      ( "diameter",
        [
          case "known values" test_diameter_known;
          case "masked" test_diameter_masked;
          case "disconnected" test_diameter_disconnected;
          case "estimate" test_diameter_estimate;
        ] );
      ( "others",
        [
          case "mean distance" test_mean_distance;
          case "degree histogram" test_degree_histogram;
          case "clustering" test_clustering;
        ] );
      ("properties", [ prop_estimate_le_diameter ]);
    ]
