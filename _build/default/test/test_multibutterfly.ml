open Fn_graph
open Testutil

let rng () = Fn_prng.Rng.create 97531

let test_structure () =
  let t = Fn_topology.Multibutterfly.build (rng ()) ~k:4 ~multiplicity:2 in
  let g = t.Fn_topology.Multibutterfly.graph in
  check_int "nodes" 80 (Graph.num_nodes g);
  check_bool "connected" true (Components.is_connected g);
  Check.csr_exn g;
  check_int "inputs" 16 (Array.length (Fn_topology.Multibutterfly.inputs t));
  check_int "outputs" 16 (Array.length (Fn_topology.Multibutterfly.outputs t))

let test_levels_respected () =
  let k = 4 in
  let t = Fn_topology.Multibutterfly.build (rng ()) ~k ~multiplicity:2 in
  let g = t.Fn_topology.Multibutterfly.graph in
  let rows = 1 lsl k in
  Graph.iter_edges g (fun u v ->
      let lu = u / rows and lv = v / rows in
      if abs (lu - lv) <> 1 then Alcotest.failf "edge %d-%d skips levels" u v)

let test_splitter_targets_correct_half () =
  (* from level 0 every node must reach, at level 1, both the lower
     and the upper half-block of its (single, full-width) block *)
  let k = 3 in
  let t = Fn_topology.Multibutterfly.build (rng ()) ~k ~multiplicity:2 in
  let g = t.Fn_topology.Multibutterfly.graph in
  let rows = 1 lsl k in
  Array.iter
    (fun input ->
      let low = ref false and high = ref false in
      Graph.iter_neighbors g input (fun w ->
          if w / rows = 1 then begin
            let row = w mod rows in
            if row < rows / 2 then low := true else high := true
          end);
      if not (!low && !high) then Alcotest.fail "input misses a half-block")
    (Fn_topology.Multibutterfly.inputs t)

let test_multiplicity_increases_edges () =
  let e mult =
    Graph.num_edges
      (Fn_topology.Multibutterfly.build (rng ()) ~k:4 ~multiplicity:mult)
        .Fn_topology.Multibutterfly.graph
  in
  check_bool "more matchings, more edges" true (e 3 > e 1)

let test_parameter_validation () =
  Alcotest.check_raises "k" (Invalid_argument "Multibutterfly.build: need 1 <= k <= 16")
    (fun () -> ignore (Fn_topology.Multibutterfly.build (rng ()) ~k:0 ~multiplicity:2));
  Alcotest.check_raises "mult" (Invalid_argument "Multibutterfly.build: multiplicity >= 1")
    (fun () -> ignore (Fn_topology.Multibutterfly.build (rng ()) ~k:3 ~multiplicity:0))

let test_ccc () =
  let g = Fn_topology.Cube_connected_cycles.graph 3 in
  check_int "nodes" 24 (Graph.num_nodes g);
  check_bool "3-regular" true (Check.regular g 3);
  check_bool "connected" true (Components.is_connected g);
  Check.csr_exn g;
  check_int "node numbering" 7 (Fn_topology.Cube_connected_cycles.node ~d:3 ~cube:2 ~pos:1)

let test_ccc_degenerate () =
  let g = Fn_topology.Cube_connected_cycles.graph 1 in
  check_int "d=1 nodes" 2 (Graph.num_nodes g);
  check_int "d=1 edge" 1 (Graph.num_edges g)

let () =
  Alcotest.run "multibutterfly"
    [
      ( "multibutterfly",
        [
          case "structure" test_structure;
          case "levels" test_levels_respected;
          case "splitter halves" test_splitter_targets_correct_half;
          case "multiplicity" test_multiplicity_increases_edges;
          case "validation" test_parameter_validation;
        ] );
      ( "cube-connected cycles",
        [ case "ccc(3)" test_ccc; case "degenerate" test_ccc_degenerate ] );
    ]
