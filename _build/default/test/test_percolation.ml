open Fn_percolation
open Testutil

let rng () = Fn_prng.Rng.create 161803

let test_site_curve_monotone () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:10 in
  let c = Newman_ziff.site_run (rng ()) g in
  check_int "total = nodes" 100 c.Newman_ziff.total;
  let prev = ref 0 in
  Array.iter
    (fun v ->
      if v < !prev then Alcotest.fail "largest cluster shrank";
      prev := v)
    c.Newman_ziff.occupied_largest;
  check_int "all occupied -> giant" 100 c.Newman_ziff.occupied_largest.(99)

let test_bond_curve_monotone () =
  let g = Fn_topology.Basic.complete 20 in
  let c = Newman_ziff.bond_run (rng ()) g in
  check_int "total = edges" 190 c.Newman_ziff.total;
  check_int "full graph connected" 20 c.Newman_ziff.occupied_largest.(189)

let test_gamma_at_bounds () =
  let g = Fn_topology.Basic.cycle 10 in
  let c = Newman_ziff.bond_run (rng ()) g in
  check_float "p=1" 1.0 (Newman_ziff.gamma_at c 1.0);
  check_float "p=0 single node" 0.1 (Newman_ziff.gamma_at c 0.0);
  Alcotest.check_raises "bad p" (Invalid_argument "Newman_ziff.gamma_at: p out of [0,1]")
    (fun () -> ignore (Newman_ziff.gamma_at c 2.0))

let test_gamma_monotone_in_p () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:12 in
  let c = Newman_ziff.bond_run (rng ()) g in
  let prev = ref 0.0 in
  List.iter
    (fun p ->
      let v = Newman_ziff.gamma_at c p in
      if v < !prev -. 1e-12 then Alcotest.fail "gamma not monotone";
      prev := v)
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let test_average_gamma_deterministic () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:8 in
  let run seed domains =
    let r = Fn_prng.Rng.create seed in
    Newman_ziff.average_gamma ~domains ~rng:r ~runs:8 (fun rr -> Newman_ziff.bond_run rr g) 0.5
  in
  let m1, s1 = run 5 1 in
  let m2, s2 = run 5 4 in
  check_float "mean independent of domains" m1 m2;
  check_float "std independent of domains" s1 s2;
  check_bool "std nonneg" true (s1 >= 0.0)

let test_threshold_mesh_bond () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:24 in
  let r = Threshold.estimate ~runs:16 ~rng:(rng ()) Threshold.Bond g in
  (* Kesten: p* = 1/2; generous finite-size window *)
  check_bool "near 0.5" true (r.Threshold.p_star > 0.35 && r.Threshold.p_star < 0.65)

let test_threshold_complete_site () =
  (* K_n bond threshold ~ c/n: tiny *)
  let g = Fn_topology.Basic.complete 100 in
  let r = Threshold.estimate ~runs:16 ~rng:(rng ()) Threshold.Bond g in
  check_bool "tiny threshold" true (r.Threshold.p_star < 0.05)

let test_threshold_path_is_high () =
  (* a path shatters immediately: threshold near 1 *)
  let g = Fn_topology.Basic.path 200 in
  let r = Threshold.estimate ~runs:16 ~rng:(rng ()) Threshold.Bond g in
  check_bool "1-D threshold near 1" true (r.Threshold.p_star > 0.8)

let test_threshold_ordering () =
  (* denser graphs percolate earlier *)
  let mesh, _ = Fn_topology.Mesh.cube ~d:2 ~side:16 in
  let hyper = Fn_topology.Hypercube.graph 8 in
  let r1 = Threshold.estimate ~runs:8 ~rng:(rng ()) Threshold.Bond mesh in
  let r2 = Threshold.estimate ~runs:8 ~rng:(rng ()) Threshold.Bond hyper in
  check_bool "hypercube before mesh" true (r2.Threshold.p_star < r1.Threshold.p_star)

let test_gamma_curve_shape () =
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:16 in
  let pts = Threshold.gamma_curve ~runs:8 ~rng:(rng ()) Threshold.Bond g [ 0.2; 0.5; 0.8 ] in
  match pts with
  | [ (_, low, _); (_, mid, _); (_, high, _) ] ->
    check_bool "increasing" true (low < mid && mid < high);
    check_bool "subcritical small" true (low < 0.2);
    check_bool "supercritical large" true (high > 0.8)
  | _ -> Alcotest.fail "expected 3 points"

let () =
  Alcotest.run "percolation"
    [
      ( "newman-ziff",
        [
          case "site curve monotone" test_site_curve_monotone;
          case "bond curve monotone" test_bond_curve_monotone;
          case "gamma bounds" test_gamma_at_bounds;
          case "gamma monotone" test_gamma_monotone_in_p;
          case "parallel determinism" test_average_gamma_deterministic;
        ] );
      ( "thresholds",
        [
          case "mesh bond ~ 1/2" test_threshold_mesh_bond;
          case "complete tiny" test_threshold_complete_site;
          case "path near 1" test_threshold_path_is_high;
          case "ordering" test_threshold_ordering;
          case "curve shape" test_gamma_curve_shape;
        ] );
    ]
