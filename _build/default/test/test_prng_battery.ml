(* Statistical battery for the xoshiro256** generator: lightweight
   versions of standard PRNG tests with conservative thresholds, so
   they are deterministic-by-seed and far from flaky while still
   catching gross regressions (bad seeding, state aliasing, broken
   rotations). *)

open Fn_prng
open Testutil

let chi_square observed expected =
  Array.fold_left ( +. ) 0.0
    (Array.mapi
       (fun i o ->
         let e = expected.(i) in
         (o -. e) *. (o -. e) /. e)
       observed)

let test_monobit () =
  (* fraction of set bits over many words ~ 1/2 *)
  let r = Rng.create 101 in
  let ones = ref 0 in
  let words = 10_000 in
  for _ = 1 to words do
    let v = ref (Rng.bits64 r) in
    while !v <> 0L do
      if Int64.logand !v 1L = 1L then incr ones;
      v := Int64.shift_right_logical !v 1
    done
  done;
  let frac = float_of_int !ones /. float_of_int (words * 64) in
  check_float_eps 0.003 "bit balance" 0.5 frac

let test_byte_chi_square () =
  (* low byte of each word uniform over 256 values *)
  let r = Rng.create 202 in
  let buckets = Array.make 256 0.0 in
  let samples = 256_000 in
  for _ = 1 to samples do
    let b = Int64.to_int (Int64.logand (Rng.bits64 r) 0xFFL) in
    buckets.(b) <- buckets.(b) +. 1.0
  done;
  let expected = Array.make 256 (float_of_int samples /. 256.0) in
  let x2 = chi_square buckets expected in
  (* df = 255; mean 255, sd ~ 22.6; allow 5 sigma *)
  check_bool (Printf.sprintf "chi2 = %.1f within [142, 368]" x2) true
    (x2 > 142.0 && x2 < 368.0)

let test_serial_correlation () =
  (* lag-1 correlation of unit floats ~ 0 *)
  let r = Rng.create 303 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Rng.unit_float r) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 2 do
    num := !num +. ((xs.(i) -. mean) *. (xs.(i + 1) -. mean))
  done;
  Array.iter (fun x -> den := !den +. ((x -. mean) *. (x -. mean))) xs;
  let rho = !num /. !den in
  (* sd ~ 1/sqrt(n) ~ 0.0032; allow 5 sigma *)
  check_bool (Printf.sprintf "lag-1 rho = %.4f" rho) true (abs_float rho < 0.016)

let test_gap_lengths () =
  (* runs of heads in coin flips follow geometric(1/2): mean run 2 *)
  let r = Rng.create 404 in
  let flips = 200_000 in
  let runs = ref 0 and current = ref 0 and total = ref 0 in
  for _ = 1 to flips do
    if Rng.bool r then incr current
    else if !current > 0 then begin
      incr runs;
      total := !total + !current;
      current := 0
    end
  done;
  let mean_run = float_of_int !total /. float_of_int !runs in
  check_float_eps 0.05 "mean run of heads" 2.0 mean_run

let test_split_streams_uncorrelated () =
  (* parent and child streams should not track each other *)
  let parent = Rng.create 505 in
  let child = Rng.split parent in
  let n = 50_000 in
  let matches = ref 0 in
  for _ = 1 to n do
    let a = Rng.int parent 2 and b = Rng.int child 2 in
    if a = b then incr matches
  done;
  let frac = float_of_int !matches /. float_of_int n in
  check_float_eps 0.02 "agreement rate ~ 1/2" 0.5 frac

let test_jump_disjointness () =
  (* two generators separated by a jump must not collide over a short
     window (overlap would show as equal values at equal offsets) *)
  let base = Fn_prng.Xoshiro256.of_seed 42L in
  let jumped = Fn_prng.Xoshiro256.copy base in
  Fn_prng.Xoshiro256.jump jumped;
  let collisions = ref 0 in
  for _ = 1 to 10_000 do
    if Fn_prng.Xoshiro256.next base = Fn_prng.Xoshiro256.next jumped then incr collisions
  done;
  check_int "no positional collisions" 0 !collisions

let test_permutation_uniformity () =
  (* all 6 permutations of 3 elements roughly equally likely *)
  let r = Rng.create 606 in
  let counts = Hashtbl.create 6 in
  let samples = 60_000 in
  for _ = 1 to samples do
    let p = Rng.permutation r 3 in
    let key = (p.(0) * 100) + (p.(1) * 10) + p.(2) in
    Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0)
  done;
  check_int "all 6 permutations occur" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      let e = float_of_int samples /. 6.0 in
      if abs_float (float_of_int c -. e) > 5.0 *. sqrt e then
        Alcotest.failf "permutation bucket off: %d vs %.0f" c e)
    counts

let () =
  Alcotest.run "prng_battery"
    [
      ( "battery",
        [
          case "monobit" test_monobit;
          case "byte chi-square" test_byte_chi_square;
          case "serial correlation" test_serial_correlation;
          case "run lengths" test_gap_lengths;
          case "split independence" test_split_streams_uncorrelated;
          case "jump disjointness" test_jump_disjointness;
          case "permutation uniformity" test_permutation_uniformity;
        ] );
    ]
