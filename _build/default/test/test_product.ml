open Fn_graph
open Fn_topology
open Testutil

(* The product generator cross-validates every dedicated grid
   generator: equal graphs, identical node numbering. *)

let test_mesh_is_product_of_paths () =
  let p3 = Basic.path 3 and p4 = Basic.path 4 in
  let product = Product.cartesian p3 p4 in
  let mesh, _ = Mesh.graph [| 3; 4 |] in
  check_bool "path3 x path4 = mesh 3x4" true (Graph.equal product mesh)

let test_torus_is_product_of_cycles () =
  let c4 = Basic.cycle 4 and c5 = Basic.cycle 5 in
  let product = Product.cartesian c4 c5 in
  let torus, _ = Torus.graph [| 4; 5 |] in
  check_bool "cycle4 x cycle5 = torus 4x5" true (Graph.equal product torus)

let test_hypercube_is_power_of_k2 () =
  let k2 = Basic.complete 2 in
  let product = Product.power k2 4 in
  let q4 = Hypercube.graph 4 in
  (* numbering: product appends new dimensions as the low-order digit,
     hypercube uses bit i for dimension i — same up to bit order, and
     both give isomorphic graphs.  With K2 factors, the digit and the
     bit coincide; check structural equality via sorted degree-preserving
     relabeling: in fact the numbering matches bit-reversal; compare
     invariants plus a direct isomorphism by bit reversal. *)
  check_int "nodes" 16 (Graph.num_nodes product);
  check_int "edges" (Graph.num_edges q4) (Graph.num_edges product);
  check_bool "4-regular" true (Check.regular product 4);
  let reverse_bits v =
    (v land 1) lsl 3 lor ((v lsr 1) land 1) lsl 2 lor ((v lsr 2) land 1) lsl 1
    lor ((v lsr 3) land 1)
  in
  let remapped =
    Graph.of_edge_array 16
      (Array.map (fun (u, v) -> (reverse_bits u, reverse_bits v)) (Graph.edges product))
  in
  check_bool "isomorphic to hypercube via bit reversal" true (Graph.equal remapped q4)

let test_3d_mesh_product () =
  let p2 = Basic.path 2 and p3 = Basic.path 3 in
  let product = Product.cartesian (Product.cartesian p2 p3) p3 in
  let mesh, _ = Mesh.graph [| 2; 3; 3 |] in
  check_bool "2x3x3 mesh" true (Graph.equal product mesh)

let test_product_degrees_add () =
  let g = Basic.cycle 5 and h = Basic.star 4 in
  let p = Product.cartesian g h in
  (* degree of (u1,u2) = deg_G(u1) + deg_H(u2) *)
  for u1 = 0 to 4 do
    for u2 = 0 to 3 do
      check_int "degree sum"
        (Graph.degree g u1 + Graph.degree h u2)
        (Graph.degree p (Product.node ~h_size:4 u1 u2))
    done
  done

let test_power_validation () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Product.power: need k >= 1") (fun () ->
      ignore (Product.power (Basic.path 2) 0))

let test_isoperimetric_profile_cycle () =
  let profile = Fn_expansion.Exact.node_isoperimetric_profile (Basic.cycle 10) in
  (* any arc of s nodes has boundary 2 *)
  check_int "profile length" 5 (Array.length profile);
  Array.iter (fun b -> check_int "cycle boundary" 2 b) profile

let test_isoperimetric_profile_mesh () =
  let g, _ = Mesh.graph [| 4; 4 |] in
  let profile = Fn_expansion.Exact.node_isoperimetric_profile g in
  (* known vertex-isoperimetric values for the 4x4 grid: a corner cell
     has boundary 2; an L-shaped corner triple has boundary 3; a 2x2
     corner block has boundary 4; a full 2-row half has boundary 4 *)
  check_int "|U|=1" 2 profile.(0);
  check_int "|U|=3" 3 profile.(2);
  check_int "|U|=4" 4 profile.(3);
  check_int "|U|=8" 4 profile.(7);
  (* profile minima are consistent with the expansion minimum *)
  let c = Fn_expansion.Exact.node_expansion g in
  let best = ref infinity in
  Array.iteri
    (fun i b ->
      let v = float_of_int b /. float_of_int (i + 1) in
      if v < !best then best := v)
    profile;
  check_float "profile recovers expansion" c.Fn_expansion.Cut.value !best

let prop_product_node_count =
  prop "product multiplies nodes and mixes edges" ~count:40
    QCheck2.Gen.(pair (Testutil.gen_connected_graph ~max_n:5 ()) (Testutil.gen_connected_graph ~max_n:5 ()))
    (fun (g, h) ->
      let p = Fn_topology.Product.cartesian g h in
      Graph.num_nodes p = Graph.num_nodes g * Graph.num_nodes h
      && Graph.num_edges p
         = (Graph.num_edges g * Graph.num_nodes h) + (Graph.num_edges h * Graph.num_nodes g))

let prop_product_connected =
  prop "product of connected graphs is connected" ~count:30
    QCheck2.Gen.(pair (Testutil.gen_connected_graph ~max_n:5 ()) (Testutil.gen_connected_graph ~max_n:5 ()))
    (fun (g, h) -> Components.is_connected (Fn_topology.Product.cartesian g h))

let () =
  Alcotest.run "product"
    [
      ( "cross-validation",
        [
          case "mesh = path x path" test_mesh_is_product_of_paths;
          case "torus = cycle x cycle" test_torus_is_product_of_cycles;
          case "hypercube = K2^d" test_hypercube_is_power_of_k2;
          case "3-D mesh" test_3d_mesh_product;
          case "degrees add" test_product_degrees_add;
          case "power validation" test_power_validation;
        ] );
      ( "isoperimetric profile",
        [
          case "cycle" test_isoperimetric_profile_cycle;
          case "4x4 mesh" test_isoperimetric_profile_mesh;
        ] );
      ("properties", [ prop_product_node_count; prop_product_connected ]);
    ]
