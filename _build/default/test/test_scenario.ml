open Fn_graph
open Faultnet
open Testutil

let rng () = Fn_prng.Rng.create 11235

let test_no_faults_is_clean () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:8 in
  let faults = Fn_faults.Fault_set.none 64 in
  let r = Scenario.analyze ~rng:(rng ()) g ~faults in
  check_int "nodes" 64 r.Scenario.nodes;
  check_int "faults" 0 r.Scenario.faults;
  check_float "gamma 1" 1.0 r.Scenario.gamma;
  check_int "all kept" 64 r.Scenario.kept;
  check_bool "certified" true r.Scenario.certificates_ok;
  check_float "fully routable" 1.0 r.Scenario.routable;
  check_float_eps 1e-9 "stretch 1" 1.0 r.Scenario.stretch;
  check_int "identity slowdown" 3 r.Scenario.slowdown

let test_moderate_faults () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:8 in
  let faults = Fn_faults.Random_faults.nodes_iid (rng ()) g 0.08 in
  let r = Scenario.analyze ~rng:(rng ()) g ~faults in
  check_bool "gamma high" true (r.Scenario.gamma > 0.7);
  check_bool "kept at least half" true (2 * r.Scenario.kept >= 64);
  check_bool "certified" true r.Scenario.certificates_ok;
  check_bool "expansion ratio sane" true
    (r.Scenario.expansion_ratio > 0.0 && r.Scenario.expansion_ratio < 3.0);
  check_bool "routable mostly" true (r.Scenario.routable > 0.8)

let test_catastrophic_faults () =
  (* chain graph with all centers dead: report reflects the collapse *)
  let base = Fn_topology.Basic.complete 6 in
  let cg = Fn_topology.Chain_graph.build base ~k:4 in
  let h = cg.Fn_topology.Chain_graph.graph in
  let centers = Fn_topology.Chain_graph.chain_centers cg in
  let faults = Fn_faults.Fault_set.of_faulty_array (Graph.num_nodes h) centers in
  let r = Scenario.analyze ~rng:(rng ()) h ~faults in
  check_bool "gamma collapsed" true (r.Scenario.gamma < 0.3);
  check_bool "routability collapsed" true (r.Scenario.routable < 0.5)

let test_requires_alive () =
  let g = Fn_topology.Basic.path 3 in
  let faults = Fn_faults.Fault_set.of_faulty_list 3 [ 0; 1 ] in
  Alcotest.check_raises "too few alive"
    (Invalid_argument "Scenario.analyze: need >= 2 alive nodes") (fun () ->
      ignore (Scenario.analyze g ~faults))

let test_to_string_mentions_fields () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:6 in
  let faults = Fn_faults.Random_faults.nodes_iid (rng ()) g 0.05 in
  let r = Scenario.analyze ~rng:(rng ()) g ~faults in
  let s = Scenario.to_string r in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and sl = String.length s in
        let rec scan i = i + nl <= sl && (String.sub s i nl = needle || scan (i + 1)) in
        scan 0
      in
      if not found then Alcotest.failf "report missing %S" needle)
    [ "network:"; "connectivity:"; "expansion:"; "certificates:"; "emulation:"; "routing:" ]

let test_determinism () =
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side:6 in
  let faults = Fn_faults.Random_faults.nodes_iid (Fn_prng.Rng.create 9) g 0.1 in
  let r1 = Scenario.analyze ~rng:(Fn_prng.Rng.create 1) g ~faults in
  let r2 = Scenario.analyze ~rng:(Fn_prng.Rng.create 1) g ~faults in
  check_bool "identical reports" true (r1 = r2)

let () =
  Alcotest.run "scenario"
    [
      ( "analyze",
        [
          case "no faults" test_no_faults_is_clean;
          case "moderate faults" test_moderate_faults;
          case "catastrophic faults" test_catastrophic_faults;
          case "requires alive" test_requires_alive;
          case "report text" test_to_string_mentions_fields;
          case "determinism" test_determinism;
        ] );
    ]
