open Fn_graph
open Faultnet
open Testutil

let test_witness_path_prefix () =
  (* prefix of a path: boundary is one node, tree is that node, ratio 1 *)
  let g = Fn_topology.Basic.path 6 in
  match Span.of_compact_set g (Bitset.of_list 6 [ 0; 1 ]) with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
    check_int "boundary" 1 (Bitset.cardinal w.Span.boundary);
    check_float "ratio" 1.0 w.Span.ratio;
    check_bool "exact tree" true w.Span.tree_exact

let test_witness_cycle_arc () =
  (* single node of C4: boundary = 2 opposite-adjacent nodes, smallest
     connecting tree = 3 nodes -> ratio 1.5 *)
  let g = Fn_topology.Basic.cycle 4 in
  match Span.of_compact_set g (Bitset.of_list 4 [ 0 ]) with
  | None -> Alcotest.fail "expected witness"
  | Some w ->
    check_int "boundary 2" 2 (Bitset.cardinal w.Span.boundary);
    check_float "ratio" 1.5 w.Span.ratio

let test_witness_disconnected_none () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check_bool "no boundary -> none" true
    (Span.of_compact_set g (Bitset.of_list 4 [ 0; 1 ]) = None)

let test_exact_span_cycle4 () =
  let est = Span.exact (Fn_topology.Basic.cycle 4) in
  check_float "span of C4" 1.5 est.Span.span;
  check_bool "all trees exact" true est.Span.all_exact;
  check_int "12 compact sets" 12 est.Span.sets_examined

let test_exact_span_complete () =
  (* K_n: boundary of any compact U is all of V\U... for |U| <= n-1 the
     boundary is the full complement, which is connected in K_n, so the
     tree is the boundary itself: span 1 *)
  let est = Span.exact (Fn_topology.Basic.complete 5) in
  check_float "span of K5" 1.0 est.Span.span

let test_exact_span_meshes_at_most_2 () =
  List.iter
    (fun dims ->
      let g, _ = Fn_topology.Mesh.graph dims in
      let est = Span.exact g in
      if est.Span.span > 2.0 +. 1e-9 then
        Alcotest.failf "mesh span %.3f > 2" est.Span.span)
    [ [| 3; 3 |]; [| 4; 4 |]; [| 2; 2; 2 |]; [| 2; 3; 2 |] ]

let test_exact_span_path_is_one () =
  (* all compact sets of a path have 1-node boundaries... except
     interior prefixes have boundary 1; span = 1 *)
  let est = Span.exact (Fn_topology.Basic.path 7) in
  check_float "span of P7" 1.0 est.Span.span

let test_sample_below_exact () =
  let rng = Fn_prng.Rng.create 13 in
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side:4 in
  let ex = Span.exact g in
  let sm = Span.sample rng ~samples:100 g in
  check_bool "sample is a lower estimate" true (sm.Span.span <= ex.Span.span +. 1e-9);
  check_bool "sample found something" true (sm.Span.sets_examined > 0)

let test_best_witness_consistency () =
  let est = Span.exact (Fn_topology.Basic.cycle 6) in
  match est.Span.best with
  | None -> Alcotest.fail "expected a best witness"
  | Some w ->
    check_float "best ratio = span" est.Span.span w.Span.ratio;
    (* the tree contains the whole boundary *)
    check_bool "tree covers boundary" true (Bitset.subset w.Span.boundary w.Span.tree.Steiner.nodes)

let prop_span_witness_ratio_sound =
  prop "witness ratio = |tree|/|boundary| and tree covers boundary" ~count:50
    (Testutil.gen_connected_graph ~max_n:9 ())
    (fun g ->
      let sets = Compact.enumerate g in
      List.for_all
        (fun u ->
          match Span.of_compact_set g u with
          | None -> true
          | Some w ->
            let b = Bitset.cardinal w.Span.boundary in
            Bitset.subset w.Span.boundary w.Span.tree.Steiner.nodes
            && abs_float
                 (w.Span.ratio
                 -. (float_of_int (Steiner.node_count w.Span.tree) /. float_of_int b))
               < 1e-9)
        sets)

let prop_span_at_least_one =
  prop "span >= 1 for connected graphs" ~count:50
    (Testutil.gen_connected_graph ~max_n:9 ())
    (fun g ->
      let est = Span.exact g in
      est.Span.sets_examined = 0 || est.Span.span >= 1.0 -. 1e-9)

let () =
  Alcotest.run "span"
    [
      ( "witnesses",
        [
          case "path prefix" test_witness_path_prefix;
          case "cycle arc" test_witness_cycle_arc;
          case "disconnected" test_witness_disconnected_none;
        ] );
      ( "exact",
        [
          case "C4" test_exact_span_cycle4;
          case "K5" test_exact_span_complete;
          case "meshes <= 2" test_exact_span_meshes_at_most_2;
          case "P7" test_exact_span_path_is_one;
          case "best witness" test_best_witness_consistency;
        ] );
      ("sampling", [ case "below exact" test_sample_below_exact ]);
      ("properties", [ prop_span_witness_ratio_sound; prop_span_at_least_one ]);
    ]
