open Fn_graph
open Testutil

let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4
let path5 = Fn_topology.Basic.path 5

let test_bfs_tree_spans () =
  let t = Spanning_tree.bfs_tree mesh4 0 in
  check_int "covers all" 16 (Array.length t.Spanning_tree.nodes);
  check_int "edges" 15 (Spanning_tree.num_edges t);
  check_bool "is spanning" true (Spanning_tree.is_spanning mesh4 (Bitset.create_full 16) t)

let test_bfs_tree_masked () =
  let alive = Bitset.of_list 5 [ 0; 1; 3; 4 ] in
  let t = Spanning_tree.bfs_tree ~alive path5 0 in
  check_int "only component" 2 (Array.length t.Spanning_tree.nodes);
  check_int "edges" 1 (Spanning_tree.num_edges t)

let test_tree_edges_are_edges () =
  let t = Spanning_tree.bfs_tree mesh4 5 in
  List.iter
    (fun (u, v) -> check_bool "tree edge in graph" true (Graph.has_edge mesh4 u v))
    (Spanning_tree.tree_edges t)

let test_singleton_tree () =
  let g = Graph.empty 3 in
  let t = Spanning_tree.bfs_tree g 1 in
  check_int "one node" 1 (Array.length t.Spanning_tree.nodes);
  check_int "no edges" 0 (Spanning_tree.num_edges t)

let test_metric_mst () =
  (* complete metric on 4 points on a line: 0,1,2,3 with |i-j| dist *)
  let dist = Array.init 4 (fun i -> Array.init 4 (fun j -> abs (i - j))) in
  check_int "line mst" 3 (Spanning_tree.total_weighted_length ~dist [| 0; 1; 2; 3 |]);
  check_int "two terminals" 3 (Spanning_tree.total_weighted_length ~dist [| 0; 3 |]);
  check_int "single terminal" 0 (Spanning_tree.total_weighted_length ~dist [| 2 |])

let prop_bfs_tree_parent_edges =
  prop "every parent link is a graph edge" (Testutil.gen_connected_graph ~max_n:12 ())
    (fun g ->
      let t = Spanning_tree.bfs_tree g 0 in
      List.for_all (fun (u, v) -> Graph.has_edge g u v) (Spanning_tree.tree_edges t))

let () =
  Alcotest.run "spanning_tree"
    [
      ( "unit",
        [
          case "bfs tree spans" test_bfs_tree_spans;
          case "masked" test_bfs_tree_masked;
          case "edges valid" test_tree_edges_are_edges;
          case "singleton" test_singleton_tree;
          case "metric mst" test_metric_mst;
        ] );
      ("properties", [ prop_bfs_tree_parent_edges ]);
    ]
