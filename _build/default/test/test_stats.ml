open Fn_stats
open Testutil

let test_summary_known () =
  let s = Summary.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_int "n" 8 s.Summary.n;
  check_float "mean" 5.0 s.Summary.mean;
  check_float_eps 1e-9 "std" (sqrt (32.0 /. 7.0)) s.Summary.std;
  check_float "min" 2.0 s.Summary.min;
  check_float "max" 9.0 s.Summary.max

let test_summary_singleton () =
  let s = Summary.of_array [| 3.5 |] in
  check_float "mean" 3.5 s.Summary.mean;
  check_float "std" 0.0 s.Summary.std

let test_summary_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty sample") (fun () ->
      ignore (Summary.of_array [||]))

let test_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Summary.quantile xs 0.5);
  check_float "min" 1.0 (Summary.quantile xs 0.0);
  check_float "max" 5.0 (Summary.quantile xs 1.0);
  check_float "q25" 2.0 (Summary.quantile xs 0.25);
  (* does not mutate the input *)
  let xs2 = [| 3.0; 1.0; 2.0 |] in
  ignore (Summary.quantile xs2 0.5);
  check_bool "input untouched" true (xs2 = [| 3.0; 1.0; 2.0 |])

let test_ci95 () =
  let s = Summary.of_array (Array.make 100 5.0) in
  let lo, hi = Summary.ci95 s in
  check_float "degenerate ci" 5.0 lo;
  check_float "degenerate ci" 5.0 hi

let test_fit_linear_exact () =
  let pts = [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ] in
  let l = Fit.linear pts in
  check_float_eps 1e-9 "slope" 2.0 l.Fit.slope;
  check_float_eps 1e-9 "intercept" 1.0 l.Fit.intercept;
  check_float_eps 1e-9 "r2" 1.0 l.Fit.r2

let test_fit_linear_rejects () =
  Alcotest.check_raises "one point" (Invalid_argument "Fit.linear: need at least 2 points")
    (fun () -> ignore (Fit.linear [ (0.0, 0.0) ]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Fit.linear: degenerate x values")
    (fun () -> ignore (Fit.linear [ (1.0, 0.0); (1.0, 5.0) ]))

let test_fit_log_log () =
  (* y = 4 / x: slope -1, intercept log 4 *)
  let pts = [ (1.0, 4.0); (2.0, 2.0); (4.0, 1.0); (8.0, 0.5) ] in
  let l = Fit.log_log pts in
  check_float_eps 1e-9 "exponent" (-1.0) l.Fit.slope;
  check_float_eps 1e-9 "log intercept" (log 4.0) l.Fit.intercept;
  Alcotest.check_raises "nonpositive" (Invalid_argument "Fit.log_log: coordinates must be positive")
    (fun () -> ignore (Fit.log_log [ (1.0, -2.0); (2.0, 1.0) ]))

let test_table_render () =
  let t = Table.create [ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "2" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s in
  check_int "header + rule + 2 rows" 4 (List.length lines);
  (* all lines align to the same width *)
  check_bool "header mentions columns" true (List.hd lines = "a       b");
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let test_table_float_rows () =
  let t = Table.create [ "x"; "v" ] in
  Table.add_float_row ~precision:2 t "row" [ 1.234 ];
  let s = Table.to_string t in
  check_bool "rounded" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "row  1.23"))

let test_table_csv () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "with,comma"; "with\"quote" ];
  let csv = Table.to_csv t in
  check_bool "escaped comma" true
    (csv = "name,value\n\"with,comma\",\"with\"\"quote\"")

let test_series () =
  let s = Series.create ~x_label:"k" ~y_labels:[ "alpha" ] in
  Series.add s ~x:2.0 [ [ 0.5 ]; [ 0.7 ] ];
  Series.add s ~x:4.0 [ [ 0.25 ]; [ 0.35 ] ];
  let means = Series.means s ~metric:0 in
  check_bool "means in order" true (means = [ (2.0, 0.6); (4.0, 0.3) ]);
  let t = Series.to_table s in
  let rendered = Table.to_string t in
  check_bool "table mentions std column" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered
       |> List.hd
       |> String.split_on_char ' '
       |> List.exists (fun w -> w = "alpha±std"));
  Alcotest.check_raises "arity" (Invalid_argument "Series.add: metric arity mismatch")
    (fun () -> Series.add s ~x:1.0 [ [ 1.0; 2.0 ] ])

let prop_summary_mean_bounds =
  prop "min <= mean <= max"
    QCheck2.Gen.(list_size (int_range 1 30) (float_range (-100.0) 100.0))
    (fun xs ->
      let s = Summary.of_list xs in
      s.Summary.min <= s.Summary.mean +. 1e-9 && s.Summary.mean <= s.Summary.max +. 1e-9)

let prop_quantile_monotone =
  prop "quantiles monotone in q"
    QCheck2.Gen.(list_size (int_range 2 30) (float_range (-10.0) 10.0))
    (fun xs ->
      let a = Array.of_list xs in
      Summary.quantile a 0.25 <= Summary.quantile a 0.75 +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          case "known sample" test_summary_known;
          case "singleton" test_summary_singleton;
          case "empty rejected" test_summary_empty_rejected;
          case "quantiles" test_quantile;
          case "ci95" test_ci95;
        ] );
      ( "fit",
        [
          case "linear exact" test_fit_linear_exact;
          case "linear rejects" test_fit_linear_rejects;
          case "log-log" test_fit_log_log;
        ] );
      ( "table",
        [
          case "render" test_table_render;
          case "float rows" test_table_float_rows;
          case "csv" test_table_csv;
          case "series" test_series;
        ] );
      ("properties", [ prop_summary_mean_bounds; prop_quantile_monotone ]);
    ]
