open Fn_graph
open Testutil

let mesh5, _ = Fn_topology.Mesh.cube ~d:2 ~side:5
let path6 = Fn_topology.Basic.path 6

let test_two_terminals_is_shortest_path () =
  let r = Steiner.exact path6 [| 0; 5 |] in
  check_int "path cost" 5 r.Steiner.edge_count;
  check_int "path nodes" 6 (Steiner.node_count r);
  check_bool "verify" true (Steiner.verify path6 [| 0; 5 |] r)

let test_single_terminal () =
  let r = Steiner.exact path6 [| 3 |] in
  check_int "single terminal cost" 0 r.Steiner.edge_count;
  check_int "single node" 1 (Steiner.node_count r)

let test_mesh_corners_exact () =
  let terminals = [| 0; 4; 20; 24 |] in
  let r = Steiner.exact mesh5 terminals in
  (* spanning the 4 corners of a 5x5 grid costs exactly 12 edges *)
  check_int "corners cost" 12 r.Steiner.edge_count;
  check_bool "verify" true (Steiner.verify mesh5 terminals r)

let test_star_steiner_point () =
  (* spider: three legs of length 2 from a hub; terminals at the tips.
     The optimal tree must include the hub (a true Steiner point). *)
  let g = Graph.of_edges 7 [ (0, 1); (1, 2); (0, 3); (3, 4); (0, 5); (5, 6) ] in
  let r = Steiner.exact g [| 2; 4; 6 |] in
  check_int "spider cost" 6 r.Steiner.edge_count;
  check_bool "hub included" true (Bitset.mem r.Steiner.nodes 0)

let test_approx_verifies () =
  let terminals = [| 0; 4; 20; 24; 12 |] in
  let r = Steiner.approx mesh5 terminals in
  check_bool "verify" true (Steiner.verify mesh5 terminals r)

let test_alive_mask () =
  (* cycle of 6 with the direct arc broken: tree must go the long way *)
  let cycle6 = Fn_topology.Basic.cycle 6 in
  let alive = Bitset.of_list 6 [ 0; 1; 2; 3; 4 ] in
  let r = Steiner.exact ~alive cycle6 [| 0; 4 |] in
  check_int "forced long way" 4 r.Steiner.edge_count;
  check_bool "verify with mask" true (Steiner.verify ~alive cycle6 [| 0; 4 |] r);
  Alcotest.check_raises "dead terminal" (Invalid_argument "Steiner: terminal not alive")
    (fun () -> ignore (Steiner.exact ~alive cycle6 [| 5 |]))

let test_disconnected_terminals () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.check_raises "exact" (Invalid_argument "Steiner.exact: terminals not connected")
    (fun () -> ignore (Steiner.exact g [| 0; 3 |]));
  Alcotest.check_raises "approx" (Invalid_argument "Steiner.approx: terminals not connected")
    (fun () -> ignore (Steiner.approx g [| 0; 3 |]))

let test_too_many_terminals () =
  Alcotest.check_raises "limit"
    (Invalid_argument "Steiner.exact: too many terminals (max 12)") (fun () ->
      ignore (Steiner.exact mesh5 (Array.init 13 Fun.id)))

let gen_graph_with_terminals =
  QCheck2.Gen.(
    Testutil.gen_connected_graph ~max_n:10 () >>= fun g ->
    let n = Graph.num_nodes g in
    int_range 1 (min 5 n) >>= fun t ->
    (* distinct terminals via a shuffled prefix *)
    shuffle_a (Array.init n Fun.id) >>= fun perm ->
    return (g, Array.sub perm 0 t))

let prop_exact_le_approx_le_2exact =
  prop "exact <= approx <= 2 * exact" ~count:150 gen_graph_with_terminals
    (fun (g, terminals) ->
      let e = Steiner.exact g terminals in
      let a = Steiner.approx g terminals in
      e.Steiner.edge_count <= a.Steiner.edge_count
      && a.Steiner.edge_count <= max 1 (2 * e.Steiner.edge_count))

let prop_both_verify =
  prop "exact and approx trees verify" ~count:150 gen_graph_with_terminals
    (fun (g, terminals) ->
      Steiner.verify g terminals (Steiner.exact g terminals)
      && Steiner.verify g terminals (Steiner.approx g terminals))

let () =
  Alcotest.run "steiner"
    [
      ( "unit",
        [
          case "two terminals" test_two_terminals_is_shortest_path;
          case "single terminal" test_single_terminal;
          case "mesh corners" test_mesh_corners_exact;
          case "steiner point" test_star_steiner_point;
          case "approx verifies" test_approx_verifies;
          case "alive mask" test_alive_mask;
          case "disconnected" test_disconnected_terminals;
          case "terminal limit" test_too_many_terminals;
        ] );
      ("properties", [ prop_exact_le_approx_le_2exact; prop_both_verify ]);
    ]
