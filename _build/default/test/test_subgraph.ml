open Fn_graph
open Testutil

let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4

let test_induce_block () =
  (* top-left 2x2 block of the 4x4 mesh *)
  let keep = Bitset.of_list 16 [ 0; 1; 4; 5 ] in
  let sub = Subgraph.induce mesh4 keep in
  check_int "nodes" 4 (Graph.num_nodes sub.Subgraph.graph);
  check_int "edges" 4 (Graph.num_edges sub.Subgraph.graph);
  Check.csr_exn sub.Subgraph.graph

let test_mapping_roundtrip () =
  let keep = Bitset.of_list 16 [ 3; 7; 11; 15 ] in
  let sub = Subgraph.induce mesh4 keep in
  Array.iteri
    (fun new_id old_id ->
      check_int "of_parent inverse" new_id sub.Subgraph.of_parent.(old_id))
    sub.Subgraph.to_parent;
  check_int "unkept maps to -1" (-1) sub.Subgraph.of_parent.(0)

let test_lift_restrict () =
  let keep = Bitset.of_list 16 [ 0; 1; 4; 5 ] in
  let sub = Subgraph.induce mesh4 keep in
  let inner = Bitset.of_list 4 [ 0; 3 ] in
  let lifted = Subgraph.lift_set sub inner in
  check_bool "lift members" true (Bitset.to_list lifted = [ 0; 5 ]);
  let restricted = Subgraph.restrict_set sub (Bitset.of_list 16 [ 0; 5; 9 ]) in
  check_bool "restrict drops unkept" true (Bitset.to_list restricted = [ 0; 3 ])

let test_empty_induce () =
  let sub = Subgraph.induce mesh4 (Bitset.create 16) in
  check_int "empty subgraph" 0 (Graph.num_nodes sub.Subgraph.graph)

let test_universe_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Subgraph.induce: universe mismatch")
    (fun () -> ignore (Subgraph.induce mesh4 (Bitset.create 5)))

let prop_induced_degrees_match_alive =
  prop "induced degree equals alive degree"
    (Testutil.gen_graph_and_subset ~max_n:10 ())
    (fun (g, keep) ->
      let sub = Subgraph.induce g keep in
      let ok = ref true in
      Array.iteri
        (fun new_id old_id ->
          if Graph.degree sub.Subgraph.graph new_id <> Graph.alive_degree g keep old_id then
            ok := false)
        sub.Subgraph.to_parent;
      !ok)

let prop_induced_csr_valid =
  prop "induced subgraph CSR invariants"
    (Testutil.gen_graph_and_subset ~max_n:10 ())
    (fun (g, keep) ->
      match Check.csr (Subgraph.induce g keep).Subgraph.graph with
      | Ok () -> true
      | Error _ -> false)

let prop_induce_full_is_identity =
  prop "inducing on everything is the identity" (Testutil.gen_any_graph ~max_n:10 ())
    (fun g ->
      let sub = Subgraph.induce g (Bitset.create_full (Graph.num_nodes g)) in
      Graph.equal g sub.Subgraph.graph)

let () =
  Alcotest.run "subgraph"
    [
      ( "unit",
        [
          case "induce block" test_induce_block;
          case "mapping roundtrip" test_mapping_roundtrip;
          case "lift/restrict" test_lift_restrict;
          case "empty" test_empty_induce;
          case "universe mismatch" test_universe_mismatch;
        ] );
      ( "properties",
        [ prop_induced_degrees_match_alive; prop_induced_csr_valid; prop_induce_full_is_identity ]
      );
    ]
