open Faultnet
open Testutil

let test_thm21 () =
  check_int "max faults" 32 (Theorem.thm21_max_faults ~alpha:1.0 ~n:256 ~k:2.0);
  check_float "min kept" 192.0 (Theorem.thm21_min_kept ~alpha:1.0 ~n:256 ~k:2.0 ~f:32);
  check_float "expansion" 0.5 (Theorem.thm21_expansion ~alpha:1.0 ~k:2.0);
  check_float "epsilon" 0.75 (Theorem.thm21_epsilon ~k:4.0);
  (* monotonicity: larger k tolerates fewer faults *)
  check_bool "k monotone" true
    (Theorem.thm21_max_faults ~alpha:0.5 ~n:1000 ~k:8.0
    < Theorem.thm21_max_faults ~alpha:0.5 ~n:1000 ~k:2.0);
  Alcotest.check_raises "k < 2" (Invalid_argument "thm21_max_faults: need alpha > 0, k >= 2")
    (fun () -> ignore (Theorem.thm21_max_faults ~alpha:1.0 ~n:10 ~k:1.0));
  Alcotest.check_raises "eps k < 2" (Invalid_argument "thm21_epsilon: need k >= 2") (fun () ->
      ignore (Theorem.thm21_epsilon ~k:1.5))

let test_thm23 () =
  check_int "budget is one per edge" 128 (Theorem.thm23_budget ~base_edges:128);
  check_int "component bound" 17 (Theorem.thm23_component_bound ~delta:4 ~k:8)

let test_thm31 () =
  check_float_eps 1e-9 "formula" (4.0 *. log 4.0 /. 8.0)
    (Theorem.thm31_fault_probability ~delta:4 ~k:8);
  check_bool "decreasing in k" true
    (Theorem.thm31_fault_probability ~delta:4 ~k:16
    < Theorem.thm31_fault_probability ~delta:4 ~k:8);
  Alcotest.check_raises "bad delta" (Invalid_argument "thm31_fault_probability: bad parameters")
    (fun () -> ignore (Theorem.thm31_fault_probability ~delta:1 ~k:8))

let test_thm34 () =
  let p = Theorem.thm34_max_fault_probability ~delta:4 ~sigma:2.0 in
  check_float_eps 1e-12 "p formula" (1.0 /. (2.0 *. Float.exp 1.0 *. (4.0 ** 8.0))) p;
  check_float "epsilon" 0.125 (Theorem.thm34_max_epsilon ~delta:4);
  check_float "size" 128.0 (Theorem.thm34_guaranteed_size ~n:256);
  let a = Theorem.thm34_min_alpha_e ~delta:4 ~n:1024 in
  check_bool "alpha_e positive" true (a > 0.0);
  check_bool "alpha_e shrinks with n" true (Theorem.thm34_min_alpha_e ~delta:4 ~n:100_000 < a)

let test_thm36_and_budget () =
  check_float "mesh span" 2.0 Theorem.thm36_mesh_span;
  let b2 = Theorem.mesh_fault_budget ~d:2 and b3 = Theorem.mesh_fault_budget ~d:3 in
  check_bool "positive" true (b2 > 0.0);
  check_bool "decreasing in d" true (b3 < b2);
  (* "inversely polynomial in d": budget * (2d)^8 is constant *)
  check_float_eps 1e-12 "poly structure" (b2 *. (4.0 ** 8.0)) (b3 *. (6.0 ** 8.0))

let () =
  Alcotest.run "theorem"
    [
      ( "formulas",
        [
          case "thm 2.1" test_thm21;
          case "thm 2.3" test_thm23;
          case "thm 3.1" test_thm31;
          case "thm 3.4" test_thm34;
          case "thm 3.6 / budget" test_thm36_and_budget;
        ] );
    ]
