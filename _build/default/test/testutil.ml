(* Shared helpers and QCheck generators for the faultnet test suite. *)

open Fn_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

let check_float_eps eps name expected actual =
  Alcotest.(check (float eps)) name expected actual

let case name f = Alcotest.test_case name `Quick f

let prop ?(count = 100) name arb f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name arb f)

(* ---- graph generators ---- *)

(* A random connected graph: a random spanning tree (random attachment)
   plus a few extra random edges.  Node count in [2, max_n]. *)
let gen_connected_graph ?(max_n = 12) () =
  let open QCheck2.Gen in
  int_range 2 max_n >>= fun n ->
  int_range 0 (n * 2) >>= fun extra ->
  (* attachment choices for the tree: node i >= 1 attaches to [0, i-1] *)
  let attach_gen = List.init (n - 1) (fun i -> int_range 0 i) in
  flatten_l attach_gen >>= fun attachments ->
  list_repeat extra (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) >>= fun extras ->
  let edges =
    List.mapi (fun i a -> (i + 1, a)) attachments
    @ List.filter (fun (u, v) -> u <> v) extras
  in
  return (Graph.of_edges n edges)

let arb_connected_graph ?max_n () =
  QCheck2.Gen.map (fun g -> g) (gen_connected_graph ?max_n ())

(* A random graph (possibly disconnected): random edge list. *)
let gen_any_graph ?(max_n = 12) () =
  let open QCheck2.Gen in
  int_range 1 max_n >>= fun n ->
  int_range 0 (2 * n) >>= fun m ->
  list_repeat m (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) >>= fun pairs ->
  return (Graph.of_edges n (List.filter (fun (u, v) -> u <> v) pairs))

(* A graph together with a random non-trivial node subset. *)
let gen_graph_and_subset ?(max_n = 10) () =
  let open QCheck2.Gen in
  gen_connected_graph ~max_n () >>= fun g ->
  let n = Graph.num_nodes g in
  int_range 0 ((1 lsl n) - 2) >>= fun mask ->
  let mask = if mask = 0 then 1 else mask in
  let set = Bitset.create n in
  for v = 0 to n - 1 do
    if (mask lsr v) land 1 = 1 then Bitset.add set v
  done;
  return (g, set)

let graph_print g =
  Format.asprintf "%a: %s" Graph.pp g
    (String.concat ";"
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (Array.to_list (Graph.edges g))))

let graph_and_set_print (g, s) = Format.asprintf "%s with %a" (graph_print g) Bitset.pp s
