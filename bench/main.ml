(* fn_bench driver: micro-benchmarks for every experiment kernel
   (E1..E14) and the substrate/ablation kernels, with robust
   statistics and JSON baselines.  No external benchmarking
   dependency — see lib/bench.

     dune exec bench/main.exe                     # run + table
     dune exec bench/main.exe -- --json           # + BENCH_<suite>.json
     dune exec bench/main.exe -- --baseline BENCH_experiments.json --check
     dune build @bench-smoke                      # 1-iteration correctness pass

   Exit codes: 0 ok; 1 smoke failure or failed --check gate; 2 usage. *)

let usage = "bench/main.exe [--list|--smoke] [--quick] [--json] [--out-dir DIR]\n\
            \  [--baseline FILE [--check]] [--threshold PCT] [--filter REGEX] [--seed N]"

let list_only = ref false
let smoke = ref false
let quick = ref false
let json = ref false
let out_dir = ref "."
let baseline_file = ref ""
let check = ref false
let threshold_pct = ref 25.0
let filter_re = ref ""
let seed = ref 42

let spec =
  [
    ("--list", Arg.Set list_only, " list kernel names (suite/name) and exit");
    ("--smoke", Arg.Set smoke, " run every kernel once, verifying it completes");
    ("--quick", Arg.Set quick, " reduced sampling (~0.2s per kernel)");
    ("--json", Arg.Set json, " write BENCH_<suite>.json per suite");
    ("--out-dir", Arg.Set_string out_dir, "DIR directory for BENCH_*.json (default .)");
    ("--baseline", Arg.Set_string baseline_file, "FILE compare this run against a recorded baseline");
    ("--check", Arg.Set check, " exit non-zero when the comparison finds a significant change");
    ("--threshold", Arg.Set_float threshold_pct, "PCT relative gate threshold in percent (default 25)");
    ("--filter", Arg.Set_string filter_re, "REGEX only kernels whose name matches (Str syntax, partial)");
    ("--seed", Arg.Set_int seed, "N bootstrap seed (default 42)");
  ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let () =
  Arg.parse (Arg.align spec) (fun a -> die "unexpected argument %S" a) usage;
  let name_filter =
    if !filter_re = "" then fun _ -> true
    else begin
      let re = try Str.regexp !filter_re with Failure e -> die "bad --filter regexp: %s" e in
      fun name -> try ignore (Str.search_forward re name 0); true with Not_found -> false
    end
  in
  let kernels = Fn_bench.Kernels.all in
  if !list_only then begin
    List.iter
      (fun (k : Fn_bench.Suite.kernel) ->
        if name_filter k.Fn_bench.Suite.name then
          Printf.printf "%s/%s\n" k.Fn_bench.Suite.suite k.Fn_bench.Suite.name)
      kernels;
    exit 0
  end;
  if !smoke then begin
    let failures = ref 0 in
    List.iter
      (fun (k : Fn_bench.Suite.kernel) ->
        if name_filter k.Fn_bench.Suite.name then begin
          match
            k.Fn_bench.Suite.prepare ();
            k.Fn_bench.Suite.run ()
          with
          | () -> Printf.printf "ok   %s/%s\n%!" k.Fn_bench.Suite.suite k.Fn_bench.Suite.name
          | exception e ->
            incr failures;
            Printf.printf "FAIL %s/%s: %s\n%!" k.Fn_bench.Suite.suite k.Fn_bench.Suite.name
              (Printexc.to_string e)
        end)
      kernels;
    if !failures > 0 then begin
      Printf.eprintf "bench smoke: %d kernel(s) failed\n" !failures;
      exit 1
    end;
    exit 0
  end;
  let threshold = !threshold_pct /. 100.0 in
  if threshold < 0.0 then die "--threshold must be non-negative";
  if !check && !baseline_file = "" then die "--check requires --baseline FILE";
  let baseline =
    if !baseline_file = "" then None
    else
      match Fn_bench.Baseline.load !baseline_file with
      | Ok b -> Some b
      | Error e -> die "cannot load baseline: %s" e
  in
  (* With a baseline and no --json request, only that baseline's suite
     needs to run. *)
  let suite_wanted =
    match baseline with
    | Some b when not !json -> fun s -> s = b.Fn_bench.Baseline.meta.Fn_bench.Baseline.suite
    | _ -> fun _ -> true
  in
  let opts = if !quick then Fn_bench.Measure.quick else Fn_bench.Measure.default in
  let progress (k : Fn_bench.Suite.kernel) =
    Printf.eprintf "benchmarking %s/%s ...\n%!" k.Fn_bench.Suite.suite k.Fn_bench.Suite.name
  in
  let grouped =
    Fn_bench.Suite.run ~progress
      ~filter:name_filter ~seed:!seed opts
      (List.filter (fun (k : Fn_bench.Suite.kernel) -> suite_wanted k.Fn_bench.Suite.suite) kernels)
  in
  let recordings =
    List.map
      (fun (suite, results) -> Fn_bench.Baseline.of_run ~suite ~quick:!quick results)
      grouped
  in
  if !json then
    List.iter
      (fun b ->
        let path = Fn_bench.Baseline.save ~dir:!out_dir b in
        Printf.printf "wrote %s\n" path)
      recordings
  else List.iter (fun g -> print_string (Fn_bench.Report.suite_table g)) grouped;
  match baseline with
  | None -> ()
  | Some base ->
    let suite = base.Fn_bench.Baseline.meta.Fn_bench.Baseline.suite in
    let current =
      match
        List.find_opt
          (fun (b : Fn_bench.Baseline.t) ->
            b.Fn_bench.Baseline.meta.Fn_bench.Baseline.suite = suite)
          recordings
      with
      | Some c -> c
      | None -> die "baseline suite %S has no registered kernels in this build" suite
    in
    (* A --filter narrows the gate on both sides, so unselected
       baseline kernels are not reported as missing. *)
    let base =
      {
        base with
        Fn_bench.Baseline.kernels =
          List.filter
            (fun (r : Fn_bench.Suite.result) -> name_filter r.Fn_bench.Suite.name)
            base.Fn_bench.Baseline.kernels;
      }
    in
    let cmp = Fn_bench.Compare.run ~threshold ~baseline:base ~current in
    print_string (Fn_bench.Report.compare_table cmp);
    print_endline (Fn_bench.Report.gate_summary ~threshold cmp);
    if !check && not (Fn_bench.Compare.gate_passes cmp) then exit 1
