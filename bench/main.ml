(* Bechamel micro-benchmarks: one Test.make per experiment kernel
   (E1..E10) plus ablation kernels for the substrate algorithms the
   experiments lean on.  Inputs are built once, outside the timed
   closures; sizes are the experiments' quick-mode sizes so the whole
   suite finishes in about a minute.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

let rng0 = Fn_prng.Rng.create 0xBEC4

(* ---- prebuilt inputs ---- *)

let expander256 = Fn_topology.Expander.random_regular (Fn_prng.Rng.copy rng0) ~n:256 ~d:6

let alpha256 =
  (Fn_expansion.Estimate.run ~rng:(Fn_prng.Rng.copy rng0) expander256 Fn_expansion.Cut.Node)
    .Fn_expansion.Estimate.value

let chain8 =
  Fn_topology.Chain_graph.build
    (Fn_topology.Expander.random_regular (Fn_prng.Rng.copy rng0) ~n:32 ~d:4)
    ~k:8

let chain_graph = chain8.Fn_topology.Chain_graph.graph
let chain_centers = Fn_topology.Chain_graph.chain_centers chain8
let mesh16, _ = Fn_topology.Mesh.cube ~d:2 ~side:16
let mesh8, geo8 = Fn_topology.Mesh.cube ~d:2 ~side:8
let mesh32, _ = Fn_topology.Mesh.cube ~d:2 ~side:32
let mesh64, _ = Fn_topology.Mesh.cube ~d:2 ~side:64
let torus16, _ = Fn_topology.Torus.cube ~d:2 ~side:16

let alpha_e_torus16 =
  (Fn_expansion.Estimate.run ~rng:(Fn_prng.Rng.copy rng0) torus16 Fn_expansion.Cut.Edge)
    .Fn_expansion.Estimate.value

let debruijn6 = Fn_topology.Debruijn.graph 6
let mesh4, _ = Fn_topology.Mesh.cube ~d:2 ~side:4
let mesh5, _ = Fn_topology.Mesh.cube ~d:2 ~side:5
let corner_terminals = [| 0; 4; 20; 24 |]

(* ---- one kernel per experiment ---- *)

let e1_prune_adversarial () =
  let rng = Fn_prng.Rng.copy rng0 in
  let faults = Fn_faults.Adversary.ball_isolation rng expander256 ~budget:24 in
  Faultnet.Prune.run ~rng expander256 ~alive:faults.Fn_faults.Fault_set.alive ~alpha:alpha256
    ~epsilon:0.5

let e2_chain_expansion () =
  Fn_expansion.Estimate.run ~rng:(Fn_prng.Rng.copy rng0) chain_graph Fn_expansion.Cut.Node

let e3_chain_attack () =
  let faults =
    Fn_faults.Adversary.targets chain_graph ~targets:chain_centers
      ~budget:(Array.length chain_centers)
  in
  Fn_graph.Components.compute ~alive:faults.Fn_faults.Fault_set.alive chain_graph

let e4_recursive_attack () =
  Fn_faults.Adversary.recursive_cut ~rng:(Fn_prng.Rng.copy rng0) mesh16 ~epsilon:0.125

let e5_random_chain () =
  let rng = Fn_prng.Rng.copy rng0 in
  let faults = Fn_faults.Random_faults.nodes_iid rng chain_graph 0.05 in
  Fn_graph.Components.compute ~alive:faults.Fn_faults.Fault_set.alive chain_graph

let e6_prune2_random () =
  let rng = Fn_prng.Rng.copy rng0 in
  let faults = Fn_faults.Random_faults.nodes_iid rng torus16 0.05 in
  Faultnet.Prune2.run ~rng torus16 ~alive:faults.Fn_faults.Fault_set.alive
    ~alpha_e:alpha_e_torus16 ~epsilon:0.125

let e7_mesh_span () =
  let rng = Fn_prng.Rng.copy rng0 in
  match Faultnet.Compact.random_compact rng mesh8 ~target_size:12 with
  | Some s -> Faultnet.Mesh_span.certify mesh8 geo8 s
  | None -> None

let e8_percolation () =
  Fn_percolation.Newman_ziff.bond_run (Fn_prng.Rng.copy rng0) mesh32

let e9_can_churn () =
  let rng = Fn_prng.Rng.copy rng0 in
  Fn_topology.Can.graph (Fn_topology.Can.build rng ~d:2 ~n:128)

let e10_span_conjecture () =
  Faultnet.Span.sample (Fn_prng.Rng.copy rng0) ~samples:10 debruijn6

let e14_transient_churn () =
  Fn_faults.Churn.simulate (Fn_prng.Rng.copy rng0) torus16 ~rate_fail:0.1 ~rate_repair:0.9
    ~horizon:10.0 ~snapshots:5

(* ---- substrate ablations ---- *)

let kernel_bfs_mesh64 () = Fn_graph.Bfs.distances mesh64 0

let kernel_components_mesh64 () = Fn_graph.Components.compute mesh64

let kernel_spectral_torus16 () = Fn_expansion.Spectral.lambda2 torus16

let kernel_exact_expansion_16 () = Fn_expansion.Exact.node_expansion mesh4

let kernel_steiner_exact () = Fn_graph.Steiner.exact mesh5 corner_terminals

let kernel_steiner_approx () = Fn_graph.Steiner.approx mesh5 corner_terminals

(* ablation: the degenerate-eigenspace fix — a single Fiedler sweep vs
   the rotated-pair portfolio (see Spectral.fiedler_pair) *)
let ablation_sweep_single () =
  let r = Fn_expansion.Spectral.lambda2 mesh16 in
  Fn_expansion.Sweep.best_prefix mesh16 ~score:r.Fn_expansion.Spectral.fiedler
    Fn_expansion.Cut.Edge

let ablation_sweep_pair () =
  let f1, f2 = Fn_expansion.Spectral.fiedler_pair mesh16 in
  let rot op = Array.init (Array.length f1) (fun i -> op f1.(i) f2.(i)) in
  List.fold_left Fn_expansion.Cut.better
    (Fn_expansion.Sweep.best_prefix mesh16 ~score:f1 Fn_expansion.Cut.Edge)
    (List.map
       (fun score -> Fn_expansion.Sweep.best_prefix mesh16 ~score Fn_expansion.Cut.Edge)
       [ f2; rot ( +. ); rot ( -. ) ])

(* ablation: exact vs heuristic low-expansion finder on a fragment *)
let small_fragment = Fn_graph.Bitset.create_full 16

let ablation_finder_exact () =
  Faultnet.Low_expansion.exact Fn_expansion.Cut.Node ~alive:small_fragment mesh4
    ~threshold:0.4

let ablation_finder_default () =
  Faultnet.Low_expansion.default Fn_expansion.Cut.Node ~alive:small_fragment mesh4
    ~threshold:0.4

let kernel_random_regular () =
  Fn_topology.Random_graphs.random_regular (Fn_prng.Rng.copy rng0) 256 6

let perm_route =
  let rng = Fn_prng.Rng.copy rng0 in
  Fn_routing.Route.shortest mesh16 (Fn_routing.Demand.permutation rng mesh16)

let e11_routing () = Fn_routing.Sim.run mesh16 perm_route

let survivor16 =
  let rng = Fn_prng.Rng.copy rng0 in
  let faults = Fn_faults.Random_faults.nodes_iid rng mesh16 0.1 in
  Fn_graph.Components.largest_members ~alive:faults.Fn_faults.Fault_set.alive mesh16

let e12_embedding () = Faultnet.Embedding.self_embed mesh16 ~kept:survivor16

let e13_multibutterfly () =
  Fn_topology.Multibutterfly.build (Fn_prng.Rng.copy rng0) ~k:5 ~multiplicity:2

let test name f = Test.make ~name (Staged.stage f)

let tests =
  Test.make_grouped ~name:"faultnet"
    [
      Test.make_grouped ~name:"experiments"
        [
          test "e1_prune_adversarial" e1_prune_adversarial;
          test "e2_chain_expansion" e2_chain_expansion;
          test "e3_chain_attack" e3_chain_attack;
          test "e4_recursive_attack" e4_recursive_attack;
          test "e5_random_chain" e5_random_chain;
          test "e6_prune2_random" e6_prune2_random;
          test "e7_mesh_span" e7_mesh_span;
          test "e8_percolation" e8_percolation;
          test "e9_can_churn" e9_can_churn;
          test "e10_span_conjecture" e10_span_conjecture;
          test "e11_routing_sim" e11_routing;
          test "e12_embedding" e12_embedding;
          test "e13_multibutterfly" e13_multibutterfly;
          test "e14_transient_churn" e14_transient_churn;
        ];
      Test.make_grouped ~name:"kernels"
        [
          test "bfs_mesh64" kernel_bfs_mesh64;
          test "components_mesh64" kernel_components_mesh64;
          test "spectral_torus16" kernel_spectral_torus16;
          test "exact_expansion_4x4" kernel_exact_expansion_16;
          test "steiner_exact_5x5" kernel_steiner_exact;
          test "steiner_approx_5x5" kernel_steiner_approx;
          test "random_regular_256_6" kernel_random_regular;
        ];
      Test.make_grouped ~name:"ablations"
        [
          test "sweep_single_fiedler" ablation_sweep_single;
          test "sweep_rotated_pair" ablation_sweep_pair;
          test "finder_exact_16" ablation_finder_exact;
          test "finder_portfolio_16" ablation_finder_default;
        ];
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  (Analyze.merge ols instances results, raw_results)

let () =
  let results, _ = benchmark () in
  let table = Fn_stats.Table.create [ "benchmark"; "time/run"; "r^2" ] in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let time_ns =
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      rows := (name, time_ns, r2) :: !rows)
    clock;
  List.iter
    (fun (name, t, r2) ->
      let pretty =
        if t >= 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
        else if t >= 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
        else if t >= 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
        else Printf.sprintf "%.0f ns" t
      in
      Fn_stats.Table.add_row table [ name; pretty; Printf.sprintf "%.4f" r2 ])
    (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) !rows);
  Fn_stats.Table.print table
