(* Run the E1-E14 validation experiments and print their tables.

   Usage: experiments [--quick] [--seed N] [--domains N] [--json]
                      [--online] [--trace FILE] [--metrics]
                      [--deadline S] [--retries N] [--chaos P]
                      [--chaos-seed N] [--resume FILE] [ids...]
   With no ids, runs everything in order.  --trace streams JSONL spans
   (per-experiment, per-Prune-round, per-sweep...) to FILE; --metrics
   prints the metrics registry to stderr at exit; --json replaces the
   rendered tables with one JSON object per experiment on stdout.

   The resilience flags feed Fn_resilience: --deadline/--retries bound
   each supervised unit of work, --chaos injects deterministic faults
   (exceptions and delays) into those units, and --resume journals
   completed experiments to FILE so an interrupted sweep restarts
   where it stopped — with identical output, since outcomes replay
   from the journal byte-for-byte. *)

let usage () =
  prerr_endline
    "usage: experiments [--quick] [--seed N] [--domains N] [--json] [--online] \
     [--trace FILE] [--metrics] [--deadline S] [--retries N] [--chaos P] \
     [--chaos-seed N] [--resume FILE] [E1 E2 ...]";
  exit 2

let () =
  let quick = ref false in
  let seed = ref 1234 in
  let domains = ref None in
  let json = ref false in
  let online = ref false in
  let trace = ref None in
  let metrics = ref false in
  let deadline = ref None in
  let retries = ref Fn_resilience.Policy.default.Fn_resilience.Policy.retries in
  let chaos = ref 0.0 in
  let chaos_seed = ref 0 in
  let resume = ref None in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some s ->
        seed := s;
        parse rest
      | None -> usage ())
    | "--domains" :: v :: rest -> (
      match int_of_string_opt v with
      | Some d ->
        domains := Some d;
        parse rest
      | None -> usage ())
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--online" :: rest ->
      online := true;
      parse rest
    | "--trace" :: path :: rest ->
      trace := Some path;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--deadline" :: v :: rest -> (
      match float_of_string_opt v with
      | Some d when d > 0.0 ->
        deadline := Some d;
        parse rest
      | _ -> usage ())
    | "--retries" :: v :: rest -> (
      match int_of_string_opt v with
      | Some r when r >= 0 ->
        retries := r;
        parse rest
      | _ -> usage ())
    | "--chaos" :: v :: rest -> (
      match float_of_string_opt v with
      | Some p when p >= 0.0 && p <= 1.0 ->
        chaos := p;
        parse rest
      | _ -> usage ())
    | "--chaos-seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some s ->
        chaos_seed := s;
        parse rest
      | None -> usage ())
    | "--resume" :: path :: rest ->
      resume := Some path;
      parse rest
    | "--help" :: _ -> usage ()
    | id :: rest ->
      ids := id :: !ids;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sink =
    match !trace with
    | Some path -> Fn_obs.Sink.jsonl_file path
    | None -> if !metrics then Fn_obs.Sink.discard () else Fn_obs.Sink.null
  in
  let policy =
    Fn_resilience.Policy.make ?deadline_s:!deadline ~retries:!retries ~chaos:!chaos
      ~chaos_seed:!chaos_seed ()
  in
  let journal =
    match !resume with
    | None -> None
    | Some path -> (
      (* seed and quick bind the journal to a run; the policy does not
         (retries/chaos do not change what a successful experiment
         computes), so a sweep may be resumed with different
         resilience flags *)
      let meta =
        [
          ("seed", Fn_obs.Jsonx.Int !seed);
          ("quick", Fn_obs.Jsonx.Bool !quick);
          ("online", Fn_obs.Jsonx.Bool !online);
        ]
      in
      match Fn_resilience.Journal.open_ ~path ~meta with
      | Ok j ->
        if Fn_resilience.Journal.recovered j > 0 then
          Printf.eprintf "resuming from %s: %d journaled record(s)%s\n%!" path
            (Fn_resilience.Journal.recovered j)
            (if Fn_resilience.Journal.torn j > 0 then
               Printf.sprintf " (%d torn line(s) skipped)" (Fn_resilience.Journal.torn j)
             else "");
        Some j
      | Error m ->
        Printf.eprintf "cannot resume from %s: %s\n" path m;
        exit 2)
  in
  let cfg =
    Fn_experiments.Workload.config ~quick:!quick ~seed:!seed ?domains:!domains ~obs:sink
      ~resilience:policy ?journal ~online:!online ()
  in
  let entries =
    match List.rev !ids with
    | [] -> Fn_experiments.Registry.all
    | names ->
      List.map
        (fun name ->
          match Fn_experiments.Registry.find name with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S\n" name;
            exit 2)
        names
  in
  let failures = ref 0 in
  List.iter
    (fun (e : Fn_experiments.Registry.entry) ->
      let started = Fn_obs.Clock.now_ns () in
      let sp =
        if Fn_obs.Sink.enabled sink then
          Fn_obs.Span.enter sink "experiment"
            ~fields:
              [
                ("id", Fn_obs.Sink.Str e.Fn_experiments.Registry.id);
                ("quick", Fn_obs.Sink.Bool !quick);
                ("seed", Fn_obs.Sink.Int !seed);
              ]
        else Fn_obs.Span.null
      in
      match Fn_experiments.Registry.run_entry e cfg with
      | outcome ->
        let passed = Fn_experiments.Outcome.all_passed outcome in
        if Fn_obs.Sink.enabled sink then
          Fn_obs.Span.exit sp ~fields:[ ("passed", Fn_obs.Sink.Bool passed) ];
        let elapsed = Fn_obs.Clock.elapsed_s ~since_ns:started in
        if !json then print_endline (Fn_experiments.Outcome.to_json outcome)
        else begin
          print_string (Fn_experiments.Outcome.render outcome);
          Printf.printf "  (%.1fs)\n\n" elapsed
        end;
        if not passed then incr failures
      | exception Fn_resilience.Failure.Supervision_failed { scope; failure; causes } ->
        (* the retry budget is spent: report the whole attempt history
           and move on, so one doomed experiment cannot take down the
           rest of the sweep (its journal entries survive for a later
           --resume with a longer deadline or more retries) *)
        if Fn_obs.Sink.enabled sink then
          Fn_obs.Span.exit sp ~fields:[ ("passed", Fn_obs.Sink.Bool false) ];
        Printf.eprintf "%s: %s in %S%s\n" e.Fn_experiments.Registry.id
          (Fn_resilience.Failure.to_string failure)
          scope
          (match causes with
          | [] -> ""
          | causes ->
            "\n  attempts: "
            ^ String.concat "; " (List.map Fn_resilience.Failure.to_string causes));
        incr failures)
    entries;
  Option.iter Fn_resilience.Journal.close journal;
  Fn_obs.Sink.close sink;
  if !metrics then prerr_string (Fn_obs.Metrics.report_text ());
  if !failures > 0 then begin
    if not !json then Printf.printf "%d experiment(s) had failing checks\n" !failures;
    exit 1
  end
  else if not !json then print_endline "All experiment checks passed."
