(* Run the E1-E14 validation experiments and print their tables.

   Usage: experiments [--quick] [--seed N] [--domains N] [--json]
                      [--trace FILE] [--metrics] [ids...]
   With no ids, runs everything in order.  --trace streams JSONL spans
   (per-experiment, per-Prune-round, per-sweep...) to FILE; --metrics
   prints the metrics registry to stderr at exit; --json replaces the
   rendered tables with one JSON object per experiment on stdout. *)

let usage () =
  prerr_endline
    "usage: experiments [--quick] [--seed N] [--domains N] [--json] [--trace FILE] \
     [--metrics] [E1 E2 ...]";
  exit 2

let () =
  let quick = ref false in
  let seed = ref 1234 in
  let domains = ref None in
  let json = ref false in
  let trace = ref None in
  let metrics = ref false in
  let ids = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some s ->
        seed := s;
        parse rest
      | None -> usage ())
    | "--domains" :: v :: rest -> (
      match int_of_string_opt v with
      | Some d ->
        domains := Some d;
        parse rest
      | None -> usage ())
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--trace" :: path :: rest ->
      trace := Some path;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--help" :: _ -> usage ()
    | id :: rest ->
      ids := id :: !ids;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sink =
    match !trace with
    | Some path -> Fn_obs.Sink.jsonl_file path
    | None -> if !metrics then Fn_obs.Sink.discard () else Fn_obs.Sink.null
  in
  let cfg =
    Fn_experiments.Workload.config ~quick:!quick ~seed:!seed ?domains:!domains ~obs:sink ()
  in
  let entries =
    match List.rev !ids with
    | [] -> Fn_experiments.Registry.all
    | names ->
      List.map
        (fun name ->
          match Fn_experiments.Registry.find name with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S\n" name;
            exit 2)
        names
  in
  let failures = ref 0 in
  List.iter
    (fun (e : Fn_experiments.Registry.entry) ->
      let started = Fn_obs.Clock.now_ns () in
      let sp =
        if Fn_obs.Sink.enabled sink then
          Fn_obs.Span.enter sink "experiment"
            ~fields:
              [
                ("id", Fn_obs.Sink.Str e.Fn_experiments.Registry.id);
                ("quick", Fn_obs.Sink.Bool !quick);
                ("seed", Fn_obs.Sink.Int !seed);
              ]
        else Fn_obs.Span.null
      in
      let outcome = e.Fn_experiments.Registry.run cfg in
      let passed = Fn_experiments.Outcome.all_passed outcome in
      if Fn_obs.Sink.enabled sink then
        Fn_obs.Span.exit sp ~fields:[ ("passed", Fn_obs.Sink.Bool passed) ];
      let elapsed = Fn_obs.Clock.elapsed_s ~since_ns:started in
      if !json then print_endline (Fn_experiments.Outcome.to_json outcome)
      else begin
        print_string (Fn_experiments.Outcome.render outcome);
        Printf.printf "  (%.1fs)\n\n" elapsed
      end;
      if not passed then incr failures)
    entries;
  Fn_obs.Sink.close sink;
  if !metrics then prerr_string (Fn_obs.Metrics.report_text ());
  if !failures > 0 then begin
    if not !json then Printf.printf "%d experiment(s) had failing checks\n" !failures;
    exit 1
  end
  else if not !json then print_endline "All experiment checks passed."
