(* faultnet — command-line front end.

   Subcommands:
     gen         generate a topology and write it as an edge list
     expansion   estimate node/edge expansion of a graph file
     prune       run Prune/Prune2 on a graph with injected faults
     span        estimate the span of a graph file
     percolate   estimate a percolation threshold
     attack      apply an adversary and report component structure
     experiment  run one of the E1-E14 validation experiments
     bench       micro-benchmark the experiment/substrate kernels

   Subcommands touching the instrumented kernels (expansion, prune,
   percolate, experiment) accept --trace FILE (JSONL span stream) and
   --metrics (registry dump on stderr at exit). *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed; every run is deterministic given the seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let rng_of_seed seed = Fn_prng.Rng.create seed

(* ---- observability flags shared by the instrumented subcommands ---- *)

let trace_arg =
  let doc = "Stream observability spans and events as JSONL to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Print the metrics registry to stderr when the command finishes." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Build the sink from the flags, run the command body with it, and
   always flush/report at the end.  No flags -> null sink: the
   instrumented kernels skip every clock read and allocation. *)
let with_obs ~trace ~metrics f =
  let sink =
    match trace with
    | Some path -> Fn_obs.Sink.jsonl_file path
    | None -> if metrics then Fn_obs.Sink.discard () else Fn_obs.Sink.null
  in
  let finish () =
    Fn_obs.Sink.close sink;
    if metrics then prerr_string (Fn_obs.Metrics.report_text ())
  in
  Fun.protect ~finally:finish (fun () -> f sink)

(* ---- topology construction shared by gen/prune/span/... ---- *)

let parse_dims s =
  try Some (Array.of_list (List.map int_of_string (String.split_on_char 'x' s)))
  with Failure _ -> None

let build_topology rng spec =
  match String.split_on_char ':' spec with
  | [ "mesh"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (fst (Fn_topology.Mesh.graph d))
    | None -> Error (`Msg "mesh dims must look like 8x8 or 4x4x4"))
  | [ "torus"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (fst (Fn_topology.Torus.graph d))
    | None -> Error (`Msg "torus dims must look like 8x8"))
  | [ "hypercube"; d ] -> Ok (Fn_topology.Hypercube.graph (int_of_string d))
  | [ "butterfly"; k ] -> Ok (Fn_topology.Butterfly.unwrapped (int_of_string k))
  | [ "debruijn"; k ] -> Ok (Fn_topology.Debruijn.graph (int_of_string k))
  | [ "shuffle"; k ] -> Ok (Fn_topology.Shuffle_exchange.graph (int_of_string k))
  | [ "complete"; n ] -> Ok (Fn_topology.Basic.complete (int_of_string n))
  | [ "cycle"; n ] -> Ok (Fn_topology.Basic.cycle (int_of_string n))
  | [ "expander"; n; d ] ->
    Ok (Fn_topology.Expander.random_regular rng ~n:(int_of_string n) ~d:(int_of_string d))
  | [ "margulis"; m ] -> Ok (Fn_topology.Expander.margulis (int_of_string m))
  | [ "chain"; n; d; k ] ->
    let base =
      Fn_topology.Expander.random_regular rng ~n:(int_of_string n) ~d:(int_of_string d)
    in
    Ok (Fn_topology.Chain_graph.build base ~k:(int_of_string k)).Fn_topology.Chain_graph.graph
  | [ "can"; d; n ] ->
    Ok (Fn_topology.Can.graph (Fn_topology.Can.build rng ~d:(int_of_string d) ~n:(int_of_string n)))
  | _ ->
    Error
      (`Msg
        "unknown topology; try mesh:8x8 torus:4x4x4 hypercube:10 butterfly:4 debruijn:8 \
         shuffle:8 complete:64 cycle:100 expander:256:6 margulis:16 chain:64:4:8 can:2:256")

let topology_arg =
  let doc =
    "Topology spec, e.g. mesh:8x8, torus:16x16, hypercube:10, expander:256:6, chain:64:4:8, \
     can:2:256."
  in
  Arg.(required & opt (some string) None & info [ "topology"; "t" ] ~docv:"SPEC" ~doc)

let load_graph rng ~topology ~input =
  match (topology, input) with
  | Some spec, None -> build_topology rng spec
  | None, Some path -> (
    try Ok (Fn_graph.Gio.load path) with
    | Sys_error m | Failure m -> Error (`Msg m))
  | _ -> Error (`Msg "provide exactly one of --topology or --input")

let input_arg =
  let doc = "Read the graph from an edge-list file instead of generating it." in
  Arg.(value & opt (some file) None & info [ "input"; "i" ] ~docv:"FILE" ~doc)

let topology_opt_arg =
  let doc = "Topology spec (see gen --help)." in
  Arg.(value & opt (some string) None & info [ "topology"; "t" ] ~docv:"SPEC" ~doc)

(* ---- gen ---- *)

let gen_cmd =
  let output =
    let doc = "Output file (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run seed spec output =
    let rng = rng_of_seed seed in
    match build_topology rng spec with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      (match output with
      | Some path -> Fn_graph.Gio.save path g
      | None -> print_string (Fn_graph.Gio.to_edge_list_string g));
      `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ topology_arg $ output)) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a topology as an edge list") term

(* ---- expansion ---- *)

let objective_arg =
  let doc = "Objective: node or edge." in
  let obj_conv =
    Arg.enum [ ("node", Fn_expansion.Cut.Node); ("edge", Fn_expansion.Cut.Edge) ]
  in
  Arg.(value & opt obj_conv Fn_expansion.Cut.Node & info [ "objective" ] ~docv:"OBJ" ~doc)

let expansion_cmd =
  let run seed topology input objective trace metrics =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      with_obs ~trace ~metrics @@ fun obs ->
      let est = Fn_expansion.Estimate.run ~obs ~rng g objective in
      Printf.printf "graph: %d nodes, %d edges\n" (Fn_graph.Graph.num_nodes g)
        (Fn_graph.Graph.num_edges g);
      Printf.printf "%s expansion %s: %.6f (witness side %d)\n"
        (match objective with Fn_expansion.Cut.Node -> "node" | Fn_expansion.Cut.Edge -> "edge")
        (if est.Fn_expansion.Estimate.exact then "(exact)" else "(heuristic upper bound)")
        est.Fn_expansion.Estimate.value
        (Fn_graph.Bitset.cardinal est.Fn_expansion.Estimate.witness);
      (match est.Fn_expansion.Estimate.lower with
      | Some lb -> Printf.printf "certified lower bound: %.6f\n" lb
      | None -> ());
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ topology_opt_arg $ input_arg $ objective_arg $ trace_arg
       $ metrics_arg))
  in
  Cmd.v (Cmd.info "expansion" ~doc:"Estimate the expansion of a graph") term

(* ---- prune ---- *)

let prune_cmd =
  let fault_p =
    let doc = "Random node-fault probability." in
    Arg.(value & opt float 0.05 & info [ "fault-p" ] ~docv:"P" ~doc)
  in
  let epsilon =
    let doc = "Pruning threshold fraction epsilon in (0,1)." in
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~docv:"EPS" ~doc)
  in
  let edge_mode =
    let doc = "Use Prune2 (edge expansion, compactified culls) instead of Prune." in
    Arg.(value & flag & info [ "edge" ] ~doc)
  in
  let run seed topology input fault_p epsilon edge_mode trace metrics =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      with_obs ~trace ~metrics @@ fun obs ->
      let faults = Fn_faults.Random_faults.nodes_iid rng g fault_p in
      let alive = faults.Fn_faults.Fault_set.alive in
      Printf.printf "graph: %d nodes; faults: %d\n" (Fn_graph.Graph.num_nodes g)
        (Fn_faults.Fault_set.count faults);
      if edge_mode then begin
        let alpha_e =
          (Fn_expansion.Estimate.run ~obs ~rng g Fn_expansion.Cut.Edge)
            .Fn_expansion.Estimate.value
        in
        let res = Faultnet.Prune2.run ~obs ~rng g ~alive ~alpha_e ~epsilon in
        print_endline (Faultnet.Report.prune2_summary g res)
      end
      else begin
        let alpha =
          (Fn_expansion.Estimate.run ~obs ~rng g Fn_expansion.Cut.Node)
            .Fn_expansion.Estimate.value
        in
        let res = Faultnet.Prune.run ~obs ~rng g ~alive ~alpha ~epsilon in
        print_endline (Faultnet.Report.prune_summary g res)
      end;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ topology_opt_arg $ input_arg $ fault_p $ epsilon $ edge_mode
       $ trace_arg $ metrics_arg))
  in
  Cmd.v (Cmd.info "prune" ~doc:"Inject random faults and run Prune/Prune2") term

(* ---- span ---- *)

let span_cmd =
  let samples =
    let doc = "Number of sampled compact sets (large graphs)." in
    Arg.(value & opt int 200 & info [ "samples" ] ~docv:"N" ~doc)
  in
  let run seed topology input samples =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      let n = Fn_graph.Graph.num_nodes g in
      let est =
        if n <= 16 then Faultnet.Span.exact g else Faultnet.Span.sample rng ~samples g
      in
      Printf.printf "graph: %d nodes; %s span estimate: %.4f over %d compact sets%s\n" n
        (if n <= 16 then "exhaustive" else "sampled")
        est.Faultnet.Span.span est.Faultnet.Span.sets_examined
        (if est.Faultnet.Span.all_exact then "" else " (some trees 2-approximate)");
      `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ topology_opt_arg $ input_arg $ samples)) in
  Cmd.v (Cmd.info "span" ~doc:"Estimate the span (Equation 1 of the paper)") term

(* ---- percolate ---- *)

let percolate_cmd =
  let runs =
    let doc = "Newman-Ziff curves to average." in
    Arg.(value & opt int 32 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let mode =
    let doc = "Percolation mode: site or bond." in
    let mode_conv =
      Arg.enum
        [ ("site", Fn_percolation.Threshold.Site); ("bond", Fn_percolation.Threshold.Bond) ]
    in
    Arg.(value & opt mode_conv Fn_percolation.Threshold.Bond & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let run seed topology input runs mode trace metrics =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      with_obs ~trace ~metrics @@ fun obs ->
      let r = Fn_percolation.Threshold.estimate ~obs ~runs ~rng mode g in
      Printf.printf "threshold estimate: p* = %.4f (gamma level %.2f, %d runs)\n"
        r.Fn_percolation.Threshold.p_star r.Fn_percolation.Threshold.level
        r.Fn_percolation.Threshold.runs;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ topology_opt_arg $ input_arg $ runs $ mode $ trace_arg
       $ metrics_arg))
  in
  Cmd.v (Cmd.info "percolate" ~doc:"Estimate a percolation threshold") term

(* ---- attack ---- *)

let attack_cmd =
  let budget =
    let doc = "Fault budget (number of nodes the adversary removes)." in
    Arg.(required & opt (some int) None & info [ "budget"; "f" ] ~docv:"F" ~doc)
  in
  let strategy =
    let doc = "Adversary: random, degree, ball, recursive." in
    Arg.(value & opt string "degree" & info [ "strategy" ] ~docv:"NAME" ~doc)
  in
  let run seed topology input budget strategy =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g -> (
      let report faults =
        let alive = faults.Fn_faults.Fault_set.alive in
        let comps = Fn_graph.Components.compute ~alive g in
        Printf.printf "faults: %d; components: %d; largest: %d of %d\n"
          (Fn_faults.Fault_set.count faults)
          comps.Fn_graph.Components.count
          (Fn_graph.Components.largest_size comps)
          (Fn_graph.Graph.num_nodes g);
        `Ok ()
      in
      match strategy with
      | "random" -> report (Fn_faults.Adversary.random rng g ~budget)
      | "degree" -> report (Fn_faults.Adversary.degree_targeted g ~budget)
      | "ball" -> report (Fn_faults.Adversary.ball_isolation rng g ~budget)
      | "recursive" ->
        let res = Fn_faults.Adversary.recursive_cut ~rng ~max_budget:budget g ~epsilon:0.125 in
        Printf.printf "recursive-cut attack: %d steps\n"
          (List.length res.Fn_faults.Adversary.steps);
        report res.Fn_faults.Adversary.faults
      | other -> `Error (false, Printf.sprintf "unknown strategy %S" other))
  in
  let term =
    Term.(ret (const run $ seed_arg $ topology_opt_arg $ input_arg $ budget $ strategy))
  in
  Cmd.v (Cmd.info "attack" ~doc:"Apply an adversary and report the damage") term

(* ---- route ---- *)

let route_cmd =
  let fault_p =
    let doc = "Random node-fault probability applied before routing." in
    Arg.(value & opt float 0.0 & info [ "fault-p" ] ~docv:"P" ~doc)
  in
  let run seed topology input fault_p =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      let faults = Fn_faults.Random_faults.nodes_iid rng g fault_p in
      let alive = faults.Fn_faults.Fault_set.alive in
      let demand = Fn_routing.Demand.permutation rng ~alive g in
      let survivor = Fn_graph.Components.largest_members ~alive g in
      let reference = Fn_routing.Route.shortest g demand in
      let faulty = Fn_routing.Route.shortest ~alive:survivor g demand in
      let sim = Fn_routing.Sim.run g faulty in
      Printf.printf
        "packets %d  routable %.3f  stretch %.3f  dilation %d  congestion %d  makespan %d\n"
        (Array.length demand)
        (Fn_routing.Route.routable_fraction faulty)
        (Fn_routing.Route.stretch ~reference faulty)
        (Fn_routing.Route.dilation faulty)
        (Fn_routing.Route.edge_congestion faulty)
        sim.Fn_routing.Sim.makespan;
      `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ topology_opt_arg $ input_arg $ fault_p)) in
  Cmd.v
    (Cmd.info "route" ~doc:"Route a random permutation, optionally through faults")
    term

(* ---- metrics ---- *)

let metrics_cmd =
  let run seed topology input =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      let open Fn_graph in
      Printf.printf "nodes %d  edges %d  degrees [%d, %d]\n" (Graph.num_nodes g)
        (Graph.num_edges g) (Graph.min_degree g) (Graph.max_degree g);
      Printf.printf "connected: %b  diameter (double-sweep >=): %d  mean distance ~ %.2f\n"
        (Components.is_connected g)
        (Metrics.diameter_estimate rng g)
        (Metrics.mean_distance rng g);
      Printf.printf "clustering: %.4f\n" (Metrics.clustering_coefficient g);
      `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ topology_opt_arg $ input_arg)) in
  Cmd.v (Cmd.info "metrics" ~doc:"Print structural metrics of a graph") term

(* ---- connectivity ---- *)

let connectivity_cmd =
  let run seed topology input =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      let open Fn_graph in
      let n = Graph.num_nodes g in
      if n > 2048 then `Error (false, "connectivity is O(n * flow * m); use <= 2048 nodes")
      else begin
        Printf.printf "edge connectivity: %d (min degree %d)\n"
          (Maxflow.edge_connectivity g) (Graph.min_degree g);
        if n >= 2 then begin
          let s = 0 and t = n - 1 in
          Printf.printf "node %d <-> node %d: %d edge-disjoint, %d vertex-disjoint paths\n" s
            t (Maxflow.max_flow g ~src:s ~dst:t)
            (Maxflow.vertex_disjoint_paths g ~src:s ~dst:t)
        end;
        `Ok ()
      end
  in
  let term = Term.(ret (const run $ seed_arg $ topology_opt_arg $ input_arg)) in
  Cmd.v (Cmd.info "connectivity" ~doc:"Exact edge connectivity and Menger path counts") term

(* ---- report ---- *)

let report_cmd =
  let fault_p =
    let doc = "Random node-fault probability." in
    Arg.(value & opt float 0.1 & info [ "fault-p" ] ~docv:"P" ~doc)
  in
  let run seed topology input fault_p =
    let rng = rng_of_seed seed in
    match load_graph rng ~topology ~input with
    | Error (`Msg m) -> `Error (false, m)
    | Ok g ->
      let faults = Fn_faults.Random_faults.nodes_iid rng g fault_p in
      let report = Faultnet.Scenario.analyze ~rng g ~faults in
      print_endline (Faultnet.Scenario.to_string report);
      `Ok ()
  in
  let term = Term.(ret (const run $ seed_arg $ topology_opt_arg $ input_arg $ fault_p)) in
  Cmd.v
    (Cmd.info "report" ~doc:"Full resilience report: connectivity, expansion, emulation, routing")
    term

(* ---- experiment ---- *)

let experiment_cmd =
  let id =
    let doc = "Experiment id (E1..E14)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let quick =
    let doc = "Reduced sizes/trials." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let json =
    let doc = "Emit the outcome as one JSON object instead of a rendered table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let deadline =
    let doc = "Per-attempt deadline in seconds for each supervised unit of work." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let retries =
    let doc = "Retries after a failed supervised unit (deterministic backoff)." in
    Arg.(
      value
      & opt int Fn_resilience.Policy.default.Fn_resilience.Policy.retries
      & info [ "retries" ] ~docv:"N" ~doc)
  in
  let chaos =
    let doc =
      "Probability in [0,1] of injecting a deterministic fault (exception or delay) \
       into each supervised unit; results are unchanged as long as the policy lets \
       the unit eventually succeed."
    in
    Arg.(value & opt float 0.0 & info [ "chaos" ] ~docv:"P" ~doc)
  in
  let chaos_seed =
    let doc = "Seed of the chaos-injection stream (independent of --seed)." in
    Arg.(value & opt int 0 & info [ "chaos-seed" ] ~docv:"N" ~doc)
  in
  let resume =
    let doc =
      "Journal completed work to $(docv) (JSONL) and replay anything already journaled \
       there, resuming an interrupted run."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let run seed id quick json deadline retries chaos chaos_seed resume trace metrics =
    match Fn_experiments.Registry.find id with
    | None -> `Error (false, Printf.sprintf "unknown experiment %S (E1..E14)" id)
    | Some e -> (
      let policy =
        try Ok (Fn_resilience.Policy.make ?deadline_s:deadline ~retries ~chaos ~chaos_seed ())
        with Invalid_argument m -> Error m
      in
      match policy with
      | Error m -> `Error (false, m)
      | Ok policy -> (
        let journal =
          match resume with
          | None -> Ok None
          | Some path ->
            Result.map Option.some
              (Fn_resilience.Journal.open_ ~path
                 ~meta:
                   [
                     ("seed", Fn_obs.Jsonx.Int seed); ("quick", Fn_obs.Jsonx.Bool quick);
                   ])
        in
        match journal with
        | Error m -> `Error (false, m)
        | Ok journal ->
          let finish_journal () = Option.iter Fn_resilience.Journal.close journal in
          Fun.protect ~finally:finish_journal @@ fun () ->
          with_obs ~trace ~metrics @@ fun obs ->
          let cfg =
            Fn_experiments.Workload.config ~quick ~seed ~obs ~resilience:policy ?journal ()
          in
          let outcome = Fn_experiments.Registry.run_entry e cfg in
          if json then print_endline (Fn_experiments.Outcome.to_json outcome)
          else print_string (Fn_experiments.Outcome.render outcome);
          if Fn_experiments.Outcome.all_passed outcome then `Ok ()
          else `Error (false, "checks failed")))
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ id $ quick $ json $ deadline $ retries $ chaos $ chaos_seed
       $ resume $ trace_arg $ metrics_arg))
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run a paper-validation experiment") term

(* ---- bench ---- *)

let bench_cmd =
  let quick =
    let doc = "Reduced sampling (about 0.2s per kernel)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let json =
    let doc = "Write BENCH_<suite>.json files into the current directory." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let filter =
    let doc = "Only kernels whose name contains $(docv) (full regex filtering and the baseline gate live in bench/main.exe)." in
    Arg.(value & opt (some string) None & info [ "filter" ] ~docv:"SUBSTR" ~doc)
  in
  let contains ~sub name =
    let n = String.length sub and m = String.length name in
    let rec scan i = i + n <= m && (String.sub name i n = sub || scan (i + 1)) in
    n = 0 || scan 0
  in
  let run seed quick json filter =
    let name_filter name = match filter with None -> true | Some sub -> contains ~sub name in
    let opts = if quick then Fn_bench.Measure.quick else Fn_bench.Measure.default in
    let progress (k : Fn_bench.Suite.kernel) =
      Printf.eprintf "benchmarking %s/%s ...\n%!" k.Fn_bench.Suite.suite k.Fn_bench.Suite.name
    in
    let grouped =
      Fn_bench.Suite.run ~progress ~filter:name_filter ~seed opts Fn_bench.Kernels.all
    in
    if grouped = [] then `Error (false, "no kernel matches the filter")
    else begin
      if json then
        List.iter
          (fun (suite, results) ->
            let b = Fn_bench.Baseline.of_run ~suite ~quick results in
            print_endline ("wrote " ^ Fn_bench.Baseline.save ~dir:"." b))
          grouped
      else List.iter (fun g -> print_string (Fn_bench.Report.suite_table g)) grouped;
      `Ok ()
    end
  in
  let term = Term.(ret (const run $ seed_arg $ quick $ json $ filter)) in
  Cmd.v
    (Cmd.info "bench" ~doc:"Micro-benchmark the experiment and substrate kernels (fn_bench)")
    term

(* ---- serve ---- *)

let serve_cmd =
  let alpha_arg =
    let doc = "Design expansion alpha; the certificate threshold is alpha*epsilon." in
    Arg.(value & opt float 0.5 & info [ "alpha" ] ~docv:"F" ~doc)
  in
  let epsilon_arg =
    let doc = "Prune slack epsilon in (0,1)." in
    Arg.(value & opt float 0.5 & info [ "epsilon" ] ~docv:"F" ~doc)
  in
  let radius_arg =
    let doc = "Certificate ball radius." in
    Arg.(value & opt int 2 & info [ "radius" ] ~docv:"R" ~doc)
  in
  let mode_arg =
    let doc = "Alpha estimation mode: exact (history-free, byte-reproducible) or warm \
               (spectral warm starts, audited)." in
    let mode_conv =
      Arg.enum [ ("exact", Fn_online.Warm.Exact); ("warm", Fn_online.Warm.Warm) ]
    in
    Arg.(value & opt mode_conv Fn_online.Warm.Exact & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let audit_arg =
    let doc = "Run a full-recompute audit every $(docv) accepted batches (0 = never)." in
    Arg.(value & opt int 0 & info [ "audit-every" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains for the expansion estimator." in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let journal_arg =
    let doc = "Record accepted batches to $(docv) (JSONL) for kill-and-resume." in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc = "Replay an existing journal before serving." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let compact_arg =
    let doc =
      "Compact the journal (snapshot + suffix) every $(docv) accepted batches (0 = \
       never); bounds recovery cost."
    in
    Arg.(value & opt int 0 & info [ "compact-every" ] ~docv:"N" ~doc)
  in
  let dirty_arg =
    let doc =
      "Overload-shedding threshold: shed batches dirtying more than this fraction of \
       the graph and serve stale-but-stamped answers until the deferred recompute (1.0 \
       = never shed)."
    in
    Arg.(value & opt float 1.0 & info [ "max-dirty-frac" ] ~docv:"F" ~doc)
  in
  let postmortem_arg =
    let doc = "Directory for audit-quarantine post-mortem snapshots." in
    Arg.(value & opt (some string) None & info [ "postmortem" ] ~docv:"DIR" ~doc)
  in
  let deadline_arg =
    let doc = "Per-query deadline in seconds (post-hoc; replies err deadline)." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS" ~doc)
  in
  let run seed topology alpha epsilon radius mode audit_every domains journal resume
      compact_every max_dirty_frac postmortem deadline trace metrics =
    with_obs ~trace ~metrics (fun obs ->
        let rng = rng_of_seed seed in
        match Fn_online.Server.view_of_spec rng topology with
        | Error m -> `Error (false, m)
        | Ok view ->
          let cfg =
            {
              Fn_online.Engine.seed;
              radius;
              alpha;
              epsilon;
              mode;
              audit_every;
              max_dirty_frac;
              postmortem;
              domains;
              obs;
            }
          in
          let engine = Fn_online.Engine.create ~cfg view in
          let meta = [ ("topology", Fn_obs.Jsonx.Str topology) ] in
          let policy =
            Option.map (fun d -> Fn_resilience.Policy.make ~deadline_s:d ()) deadline
          in
          (match
             Fn_online.Server.serve ?journal ~resume ~meta ?policy ~compact_every engine
               stdin stdout
           with
          | Ok () -> `Ok ()
          | Error m -> `Error (false, m)))
  in
  let term =
    Term.(
      ret
        (const run $ seed_arg $ topology_arg $ alpha_arg $ epsilon_arg $ radius_arg
       $ mode_arg $ audit_arg $ domains_arg $ journal_arg $ resume_arg $ compact_arg
       $ dirty_arg $ postmortem_arg $ deadline_arg $ trace_arg $ metrics_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve online expansion certificates under streaming churn on stdin/stdout \
          (the faultnetd protocol; supports implicit itorus:/imesh:/ihypercube: specs)")
    term

let () =
  let doc = "Fault-tolerant network expansion toolkit (SPAA 2004 reproduction)" in
  let info = Cmd.info "faultnet" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        gen_cmd; expansion_cmd; prune_cmd; span_cmd; percolate_cmd; attack_cmd; route_cmd; report_cmd; connectivity_cmd;
        metrics_cmd; experiment_cmd; bench_cmd; serve_cmd;
      ]
  in
  exit (Cmd.eval group)
