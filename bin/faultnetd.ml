(* faultnetd — long-lived online expansion daemon.

   Speaks the Fn_online.Protocol line protocol on stdin/stdout: apply
   churn batches, query aliveness / survivor certificates / alpha,
   audit, dump a state digest.  Deterministic given --seed: with
   --journal every accepted batch is recorded, and restarting with
   --journal PATH --resume replays the session into a byte-identical
   state (see Fn_online.Server). *)

let usage () =
  prerr_endline
    "usage: faultnetd --topology SPEC [--seed N] [--alpha F] [--epsilon F] [--radius N]\n\
    \       [--mode exact|warm] [--audit-every N] [--domains N]\n\
    \       [--journal PATH] [--resume] [--compact-every N]\n\
    \       [--max-dirty-frac F] [--postmortem DIR] [--deadline SECS]\n\
    \       [--trace FILE] [--metrics]\n\
     topologies: itorus:1000x1000 imesh:100x100 ihypercube:20 mesh:8x8 torus:16x16\n\
    \       hypercube:10 debruijn:8 complete:64 cycle:100 expander:256:6";
  exit 2

let () =
  let topology = ref None in
  let seed = ref 1 in
  let alpha = ref 0.5 in
  let epsilon = ref 0.5 in
  let radius = ref 2 in
  let mode = ref Fn_online.Warm.Exact in
  let audit_every = ref 0 in
  let domains = ref None in
  let journal = ref None in
  let resume = ref false in
  let compact_every = ref 0 in
  let max_dirty_frac = ref 1.0 in
  let postmortem = ref None in
  let deadline = ref None in
  let trace = ref None in
  let metrics = ref false in
  let int_of s = match int_of_string_opt s with Some v -> v | None -> usage () in
  let float_of s = match float_of_string_opt s with Some v -> v | None -> usage () in
  let rec parse = function
    | [] -> ()
    | "--topology" :: v :: rest | "-t" :: v :: rest ->
      topology := Some v;
      parse rest
    | "--seed" :: v :: rest ->
      seed := int_of v;
      parse rest
    | "--alpha" :: v :: rest ->
      alpha := float_of v;
      parse rest
    | "--epsilon" :: v :: rest ->
      epsilon := float_of v;
      parse rest
    | "--radius" :: v :: rest ->
      radius := int_of v;
      parse rest
    | "--mode" :: v :: rest -> (
      match Fn_online.Warm.mode_of_string v with
      | Some m ->
        mode := m;
        parse rest
      | None -> usage ())
    | "--audit-every" :: v :: rest ->
      audit_every := int_of v;
      parse rest
    | "--domains" :: v :: rest ->
      domains := Some (int_of v);
      parse rest
    | "--journal" :: v :: rest ->
      journal := Some v;
      parse rest
    | "--resume" :: rest ->
      resume := true;
      parse rest
    | "--compact-every" :: v :: rest ->
      compact_every := int_of v;
      parse rest
    | "--max-dirty-frac" :: v :: rest ->
      max_dirty_frac := float_of v;
      parse rest
    | "--postmortem" :: v :: rest ->
      postmortem := Some v;
      parse rest
    | "--deadline" :: v :: rest ->
      deadline := Some (float_of v);
      parse rest
    | "--trace" :: v :: rest ->
      trace := Some v;
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !topology with
  | None -> usage ()
  | Some spec ->
    let sink =
      match !trace with
      | Some path -> Fn_obs.Sink.jsonl_file path
      | None -> if !metrics then Fn_obs.Sink.discard () else Fn_obs.Sink.null
    in
    let finish () =
      Fn_obs.Sink.close sink;
      if !metrics then prerr_string (Fn_obs.Metrics.report_text ())
    in
    Fun.protect ~finally:finish (fun () ->
        let rng = Fn_prng.Rng.create !seed in
        match Fn_online.Server.view_of_spec rng spec with
        | Error m ->
          prerr_endline ("faultnetd: " ^ m);
          exit 2
        | Ok view ->
          let cfg =
            {
              Fn_online.Engine.seed = !seed;
              radius = !radius;
              alpha = !alpha;
              epsilon = !epsilon;
              mode = !mode;
              audit_every = !audit_every;
              max_dirty_frac = !max_dirty_frac;
              postmortem = !postmortem;
              domains = !domains;
              obs = sink;
            }
          in
          let engine = Fn_online.Engine.create ~cfg view in
          let meta = [ ("topology", Fn_obs.Jsonx.Str spec) ] in
          let policy =
            match !deadline with
            | Some d -> Some (Fn_resilience.Policy.make ~deadline_s:d ())
            | None -> None
          in
          (match
             Fn_online.Server.serve ?journal:!journal ~resume:!resume ~meta ?policy
               ~compact_every:!compact_every engine stdin stdout
           with
          | Ok () -> ()
          | Error m ->
            prerr_endline ("faultnetd: " ^ m);
            exit 1))
