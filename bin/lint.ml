(* faultnet-lint driver.

   Usage: lint [--json] [--strict] [--list-rules] [--only RULE]
               [--explain RULE] [--root DIR] [PATH ...]

   PATHs (default: lib bin test examples bench) are files or directories
   scanned recursively for .ml/.mli, relative to the repo root.  Exit
   codes: 0 clean, 1 findings (errors; warnings too under --strict),
   2 usage or I/O error. *)

let default_paths = [ "lib"; "bin"; "test"; "examples"; "bench" ]

let usage () =
  prerr_endline
    "usage: lint [--json] [--strict] [--list-rules] [--only RULE] [--explain RULE]\n\
     \            [--root DIR] [PATH ...]\n\
     \  --json          emit findings as a JSON array\n\
     \  --strict        exit 1 on warnings too, not just errors\n\
     \  --list-rules    print the rule set and exit\n\
     \  --only RULE     run a single rule (repeatable); for local iteration\n\
     \  --explain RULE  describe one rule (severity, doc, allowlisted paths) and exit\n\
     \  --root DIR      chdir to DIR before scanning (paths are repo-relative)";
  exit 2

let find_rule name =
  match Fn_lint.Rules.find name with
  | Some r -> r
  | None ->
    prerr_endline ("lint: unknown rule: " ^ name ^ " (see --list-rules)");
    exit 2

let list_rules () =
  List.iter
    (fun (r : Fn_lint.Rule.t) ->
      Printf.printf "%-24s %-8s %s\n" r.name
        (Fn_lint.Rule.severity_to_string r.severity)
        r.doc)
    Fn_lint.Rules.all;
  exit 0

let explain name =
  let r = find_rule name in
  Printf.printf "%s (%s)\n  %s\n" r.name
    (Fn_lint.Rule.severity_to_string r.severity)
    r.doc;
  (match List.assoc_opt r.name Fn_lint.Rules.allowlist with
  | None | Some [] -> ()
  | Some entries ->
    let show = function
      | Fn_lint.Rules.Prefix p -> p ^ "*"
      | Fn_lint.Rules.Basename b -> "**/" ^ b
    in
    print_string "  allowlisted:\n";
    List.iter
      (fun (a : Fn_lint.Rules.allow) ->
        Printf.printf "    %-28s %s\n" (show a.Fn_lint.Rules.pattern) a.Fn_lint.Rules.why)
      entries);
  Printf.printf
    "  suppress one site with:  (* lint: allow %s <justification> *)\n" r.name;
  exit 0

let () =
  let json = ref false and strict = ref false and paths = ref [] in
  let only = ref [] in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--list-rules" :: _ -> list_rules ()
    | "--explain" :: name :: _ -> explain name
    | "--only" :: name :: rest ->
        only := find_rule name :: !only;
        parse rest
    | "--root" :: dir :: rest ->
        (try Sys.chdir dir
         with Sys_error msg ->
           prerr_endline ("lint: " ^ msg);
           exit 2);
        parse rest
    | ("--help" | "-h" | "--root" | "--only" | "--explain") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl args);
  let rules = match !only with [] -> None | rs -> Some (List.rev rs) in
  let roots = if !paths = [] then default_paths else List.rev !paths in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        prerr_endline ("lint: no such file or directory: " ^ p);
        exit 2
      end)
    roots;
  let files = Fn_lint.Engine.collect roots in
  let findings =
    List.concat_map
      (fun f ->
        try Fn_lint.Engine.lint_file ?rules f
        with Sys_error msg ->
          prerr_endline ("lint: " ^ msg);
          exit 2)
      files
  in
  if !json then print_string (Fn_lint.Reporter.to_json findings)
  else print_string (Fn_lint.Reporter.to_text findings);
  let fatal =
    if !strict then findings else Fn_lint.Engine.errors findings
  in
  exit (if fatal = [] then 0 else 1)
