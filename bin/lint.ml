(* faultnet-lint driver.

   Usage: lint [--json] [--strict] [--list-rules] [--root DIR] [PATH ...]

   PATHs (default: lib bin test examples bench) are files or directories
   scanned recursively for .ml/.mli, relative to the repo root.  Exit
   codes: 0 clean, 1 findings (errors; warnings too under --strict),
   2 usage or I/O error. *)

let default_paths = [ "lib"; "bin"; "test"; "examples"; "bench" ]

let usage () =
  prerr_endline
    "usage: lint [--json] [--strict] [--list-rules] [--root DIR] [PATH ...]\n\
     \  --json        emit findings as a JSON array\n\
     \  --strict      exit 1 on warnings too, not just errors\n\
     \  --list-rules  print the rule set and exit\n\
     \  --root DIR    chdir to DIR before scanning (paths are repo-relative)";
  exit 2

let is_source f =
  Fn_lint.Rules.ends_with ~suffix:".ml" f || Fn_lint.Rules.ends_with ~suffix:".mli" f

(* Skip build/VCS directories wherever the scan starts. *)
let skip_dir name = name = "" || name.[0] = '_' || name.[0] = '.'

let rec collect path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc else collect (Filename.concat path entry) acc)
      acc (Sys.readdir path)
  else if is_source path then path :: acc
  else acc

let list_rules () =
  List.iter
    (fun (r : Fn_lint.Rule.t) ->
      Printf.printf "%-18s %-8s %s\n" r.name
        (Fn_lint.Rule.severity_to_string r.severity)
        r.doc)
    Fn_lint.Rules.all;
  exit 0

let () =
  let json = ref false and strict = ref false and paths = ref [] in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--strict" :: rest ->
        strict := true;
        parse rest
    | "--list-rules" :: _ -> list_rules ()
    | "--root" :: dir :: rest ->
        (try Sys.chdir dir
         with Sys_error msg ->
           prerr_endline ("lint: " ^ msg);
           exit 2);
        parse rest
    | ("--help" | "-h" | "--root") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl args);
  let roots = if !paths = [] then default_paths else List.rev !paths in
  let files =
    List.concat_map
      (fun p ->
        if Sys.file_exists p then collect p []
        else begin
          prerr_endline ("lint: no such file or directory: " ^ p);
          exit 2
        end)
      roots
    |> List.sort_uniq String.compare
  in
  let findings =
    List.concat_map
      (fun f ->
        try Fn_lint.Engine.lint_file f
        with Sys_error msg ->
          prerr_endline ("lint: " ^ msg);
          exit 2)
      files
  in
  if !json then print_string (Fn_lint.Reporter.to_json findings)
  else print_string (Fn_lint.Reporter.to_text findings);
  let fatal =
    if !strict then findings else Fn_lint.Engine.errors findings
  in
  exit (if fatal = [] then 0 else 1)
