module J = Fn_obs.Jsonx

type meta = {
  suite : string;
  git_rev : string;
  host : string;
  quick : bool;
  created_ns : int;
}

type t = { meta : meta; kernels : Suite.result list }

let schema_version = 1

(* ---- environment stamps ---- *)

let read_first_line path =
  if Sys.file_exists path then (
    let ic = open_in path in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    close_in ic;
    line)
  else None

(* Best-effort: resolve .git/HEAD without shelling out.  Covers the
   direct-hash (detached) and ref-file cases; packed refs degrade to
   the ref name, which still identifies the baseline. *)
let git_rev () =
  match read_first_line ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
    let prefix = "ref: " in
    if String.length head > String.length prefix
       && String.sub head 0 (String.length prefix) = prefix
    then
      let ref_name = String.sub head 5 (String.length head - 5) in
      match read_first_line (Filename.concat ".git" ref_name) with
      | Some hash -> hash
      | None -> ref_name
    else head

let host () = try Unix.gethostname () with Unix.Unix_error _ -> "unknown"

let of_run ~suite ~quick kernels =
  {
    meta =
      { suite; git_rev = git_rev (); host = host (); quick; created_ns = Fn_obs.Clock.now_ns () };
    kernels;
  }

let filename ~suite = "BENCH_" ^ suite ^ ".json"

(* ---- encoding ---- *)

let kernel_to_json (r : Suite.result) =
  let s = r.Suite.stats in
  J.Obj
    [
      ("name", J.Str r.Suite.name);
      ("items", J.Int r.Suite.items);
      ("runs", J.Int s.Suite.runs);
      ("batch", J.Int s.Suite.batch);
      ("median_ns", J.Float s.Suite.median_ns);
      ("mad_ns", J.Float s.Suite.mad_ns);
      ("trimmed_mean_ns", J.Float s.Suite.trimmed_mean_ns);
      ("ci_low_ns", J.Float s.Suite.ci_low_ns);
      ("ci_high_ns", J.Float s.Suite.ci_high_ns);
      ("bytes_per_run", J.Float s.Suite.bytes_per_run);
      ("items_per_sec", J.Float s.Suite.items_per_sec);
    ]

let to_json t =
  J.Obj
    [
      ("schema_version", J.Int schema_version);
      ("suite", J.Str t.meta.suite);
      ("git_rev", J.Str t.meta.git_rev);
      ("host", J.Str t.meta.host);
      ("quick", J.Bool t.meta.quick);
      ("created_ns", J.Int t.meta.created_ns);
      ("kernels", J.List (List.map kernel_to_json t.kernels));
    ]

(* ---- decoding ---- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name j = match J.member name j with Some v -> Ok v | None -> Error ("missing field " ^ name)

let as_str name = function J.Str s -> Ok s | _ -> Error (name ^ " is not a string")
let as_int name = function J.Int i -> Ok i | _ -> Error (name ^ " is not an integer")
let as_bool name = function J.Bool b -> Ok b | _ -> Error (name ^ " is not a bool")

let as_float name = function
  | J.Float f -> Ok f
  | J.Int i -> Ok (float_of_int i)
  | J.Null -> Ok Float.nan (* Jsonx writes non-finite floats as null *)
  | _ -> Error (name ^ " is not a number")

let str_field name j = let* v = field name j in as_str name v
let int_field name j = let* v = field name j in as_int name v
let bool_field name j = let* v = field name j in as_bool name v
let float_field name j = let* v = field name j in as_float name v

let kernel_of_json j =
  let* name = str_field "name" j in
  let* items = int_field "items" j in
  let* runs = int_field "runs" j in
  let* batch = int_field "batch" j in
  let* median_ns = float_field "median_ns" j in
  let* mad_ns = float_field "mad_ns" j in
  let* trimmed_mean_ns = float_field "trimmed_mean_ns" j in
  let* ci_low_ns = float_field "ci_low_ns" j in
  let* ci_high_ns = float_field "ci_high_ns" j in
  let* bytes_per_run = float_field "bytes_per_run" j in
  let* items_per_sec = float_field "items_per_sec" j in
  Ok
    {
      Suite.name;
      items;
      stats =
        {
          Suite.runs;
          batch;
          median_ns;
          mad_ns;
          trimmed_mean_ns;
          ci_low_ns;
          ci_high_ns;
          bytes_per_run;
          items_per_sec;
        };
    }

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let of_json j =
  let* version = int_field "schema_version" j in
  if version <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d (expected %d)" version schema_version)
  else
    let* suite = str_field "suite" j in
    let* git_rev = str_field "git_rev" j in
    let* host = str_field "host" j in
    let* quick = bool_field "quick" j in
    let* created_ns = int_field "created_ns" j in
    let* kernels_json = field "kernels" j in
    let* kernel_list =
      match kernels_json with
      | J.List l -> Ok l
      | _ -> Error "kernels is not a list"
    in
    let* kernels = map_result kernel_of_json kernel_list in
    Ok { meta = { suite; git_rev; host; quick; created_ns }; kernels }

(* ---- file I/O ---- *)

(* Write-then-rename: a crash mid-save leaves the old baseline intact
   instead of a truncated JSON file that the gate would then reject. *)
let save ~dir t =
  let path = Filename.concat dir (filename ~suite:t.meta.suite) in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (* one kernel per line: diffable under git, still plain JSON *)
  (match to_json t with
  | J.Obj fields ->
    output_string oc "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then output_string oc ",";
        output_string oc "\n  ";
        match v with
        | J.List items ->
          output_string oc (Printf.sprintf "%S: [" k);
          List.iteri
            (fun i item ->
              if i > 0 then output_string oc ",";
              output_string oc ("\n    " ^ J.to_string item))
            items;
          output_string oc "\n  ]"
        | v -> output_string oc (Printf.sprintf "%S: %s" k (J.to_string v)))
      fields;
    output_string oc "\n}\n"
  | j -> output_string oc (J.to_string j));
  flush oc;
  close_out oc;
  Sys.rename tmp path;
  path

let load path =
  if not (Sys.file_exists path) then Error ("no such file: " ^ path)
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match J.parse contents with
    | None -> Error ("invalid JSON in " ^ path)
    | Some j -> ( match of_json j with Ok t -> Ok t | Error e -> Error (path ^ ": " ^ e))
  end
