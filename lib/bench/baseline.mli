(** The [BENCH_<suite>.json] schema: serialization of one suite run,
    plus file I/O for recording and loading baselines.

    Schema (version 1), all through {!Fn_obs.Jsonx} — no third-party
    JSON dependency:

    {v
    { "schema_version": 1,
      "suite": "experiments",
      "git_rev": "<commit or \"unknown\">",
      "host": "<hostname>",
      "quick": false,
      "created_ns": 1754e15,
      "kernels": [
        { "name": "e1_prune_adversarial", "items": 1,
          "runs": 12, "batch": 4,
          "median_ns": ..., "mad_ns": ..., "trimmed_mean_ns": ...,
          "ci_low_ns": ..., "ci_high_ns": ...,
          "bytes_per_run": ..., "items_per_sec": ... }, ... ] }
    v}

    Scratch recordings land in the working directory and are
    git-ignored; reference baselines are committed under
    [bench/baselines/]. *)

type meta = {
  suite : string;
  git_rev : string;
  host : string;
  quick : bool;
  created_ns : int;
}

type t = { meta : meta; kernels : Suite.result list }

val of_run : suite:string -> quick:bool -> Suite.result list -> t
(** Stamp a run with the current git revision (best-effort read of
    [.git/HEAD], "unknown" outside a checkout), hostname and clock. *)

val filename : suite:string -> string
(** ["BENCH_" ^ suite ^ ".json"]. *)

val to_json : t -> Fn_obs.Jsonx.t

val of_json : Fn_obs.Jsonx.t -> (t, string) result
(** Strict on structure, lenient on numbers (ints accepted for float
    fields); unknown fields are ignored so the schema can grow. *)

val save : dir:string -> t -> string
(** Write [dir/BENCH_<suite>.json] (one pretty-enough line per
    kernel) and return the path. *)

val load : string -> (t, string) result
(** Read and decode one baseline file. *)

val git_rev : unit -> string
val host : unit -> string
