type verdict = Improved | Regressed | Unchanged

type entry = {
  name : string;
  verdict : verdict;
  base_median_ns : float;
  cur_median_ns : float;
  delta_pct : float;
  ci_separated : bool;
}

type t = {
  entries : entry list;
  missing : string list;
  added : string list;
}

let verdict_name = function
  | Improved -> "improved"
  | Regressed -> "regressed"
  | Unchanged -> "unchanged"

let classify ~threshold ~(base : Suite.result) ~(cur : Suite.result) =
  let b = base.Suite.stats and c = cur.Suite.stats in
  let rel =
    if b.Suite.median_ns > 0.0 then
      (c.Suite.median_ns -. b.Suite.median_ns) /. b.Suite.median_ns
    else 0.0
  in
  let overlap =
    b.Suite.ci_low_ns <= c.Suite.ci_high_ns && c.Suite.ci_low_ns <= b.Suite.ci_high_ns
  in
  let verdict =
    if Float.abs rel <= threshold || overlap then Unchanged
    else if rel > 0.0 then Regressed
    else Improved
  in
  {
    name = base.Suite.name;
    verdict;
    base_median_ns = b.Suite.median_ns;
    cur_median_ns = c.Suite.median_ns;
    delta_pct = 100.0 *. rel;
    ci_separated = not overlap;
  }

let run ~threshold ~(baseline : Baseline.t) ~(current : Baseline.t) =
  let find name kernels = List.find_opt (fun (r : Suite.result) -> r.Suite.name = name) kernels in
  let entries, missing =
    List.fold_left
      (fun (entries, missing) (base : Suite.result) ->
        match find base.Suite.name current.Baseline.kernels with
        | Some cur -> (classify ~threshold ~base ~cur :: entries, missing)
        | None -> (entries, base.Suite.name :: missing))
      ([], []) baseline.Baseline.kernels
  in
  let added =
    List.filter_map
      (fun (cur : Suite.result) ->
        match find cur.Suite.name baseline.Baseline.kernels with
        | Some _ -> None
        | None -> Some cur.Suite.name)
      current.Baseline.kernels
  in
  { entries = List.rev entries; missing = List.rev missing; added }

let regressions t = List.filter (fun e -> e.verdict = Regressed) t.entries
let significant t = List.filter (fun e -> e.verdict <> Unchanged) t.entries
let gate_passes t = significant t = [] && t.missing = []
