(** Baseline comparison — the machine-checkable regression gate.

    A kernel is [Unchanged] when its median moved by at most the
    relative threshold {e or} its bootstrap CI overlaps the
    baseline's (both guards must fire for a verdict to flip, so
    within-noise jitter on an identical re-run classifies as
    unchanged).  Otherwise the sign of the move decides
    [Regressed] / [Improved].

    The gate ([--check]) is a {e pinned-baseline} discipline: any
    significant move fails it, in both directions.  A regression
    fails because the code got slower; a significant improvement
    fails because the committed baseline no longer describes the
    code — re-record it (run with [--json]) and commit the refreshed
    file.  An unexplained "improvement" is also how a kernel that
    silently stopped doing its work shows up. *)

type verdict = Improved | Regressed | Unchanged

type entry = {
  name : string;
  verdict : verdict;
  base_median_ns : float;
  cur_median_ns : float;
  delta_pct : float;  (** 100 * (cur - base) / base *)
  ci_separated : bool;  (** the two confidence intervals do not overlap *)
}

type t = {
  entries : entry list;  (** kernels present on both sides, baseline order *)
  missing : string list;  (** in the baseline but not in the current run *)
  added : string list;  (** in the current run but not in the baseline *)
}

val classify : threshold:float -> base:Suite.result -> cur:Suite.result -> entry
(** [threshold] is relative (0.25 = 25%). *)

val run : threshold:float -> baseline:Baseline.t -> current:Baseline.t -> t

val regressions : t -> entry list

val significant : t -> entry list
(** Entries whose verdict is not [Unchanged]. *)

val gate_passes : t -> bool
(** True when every compared kernel is [Unchanged] and no baseline
    kernel is missing from the current run. *)

val verdict_name : verdict -> string
