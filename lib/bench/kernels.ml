(* One kernel per experiment (E1..E14) plus substrate ablations.
   Inputs are built once, lazily, outside the timed closures; sizes
   are the experiments' quick-mode sizes so the whole suite finishes
   in about a minute. *)

let experiments = "experiments"
let substrate = "kernels"
let ablations = "ablations"
let scale = "scale"
let online = "online"
let spectral = "spectral"

let rng0 = Fn_prng.Rng.create 0xBEC4
let fresh () = Fn_prng.Rng.copy rng0

(* ---- prebuilt inputs (lazy: --list / --filter force nothing) ---- *)

let expander256 = lazy (Fn_topology.Expander.random_regular (fresh ()) ~n:256 ~d:6)

let alpha256 =
  lazy
    (Fn_expansion.Estimate.run ~rng:(fresh ()) (Lazy.force expander256) Fn_expansion.Cut.Node)

let chain8 =
  lazy
    (Fn_topology.Chain_graph.build
       (Fn_topology.Expander.random_regular (fresh ()) ~n:32 ~d:4)
       ~k:8)

let chain_graph = lazy (Lazy.force chain8).Fn_topology.Chain_graph.graph
let chain_centers = lazy (Fn_topology.Chain_graph.chain_centers (Lazy.force chain8))
let mesh16 = lazy (fst (Fn_topology.Mesh.cube ~d:2 ~side:16))
let mesh8_geo = lazy (Fn_topology.Mesh.cube ~d:2 ~side:8)
let mesh32 = lazy (fst (Fn_topology.Mesh.cube ~d:2 ~side:32))
let mesh64 = lazy (fst (Fn_topology.Mesh.cube ~d:2 ~side:64))
let torus16 = lazy (fst (Fn_topology.Torus.cube ~d:2 ~side:16))

let alpha_e_torus16 =
  lazy (Fn_expansion.Estimate.run ~rng:(fresh ()) (Lazy.force torus16) Fn_expansion.Cut.Edge)

let debruijn6 = lazy (Fn_topology.Debruijn.graph 6)
let mesh4 = lazy (fst (Fn_topology.Mesh.cube ~d:2 ~side:4))
let mesh5 = lazy (fst (Fn_topology.Mesh.cube ~d:2 ~side:5))
let corner_terminals = [| 0; 4; 20; 24 |]

let perm_route =
  lazy
    (let rng = fresh () in
     let g = Lazy.force mesh16 in
     Fn_routing.Route.shortest g (Fn_routing.Demand.permutation rng g))

let survivor16 =
  lazy
    (let rng = fresh () in
     let g = Lazy.force mesh16 in
     let faults = Fn_faults.Random_faults.nodes_iid rng g 0.1 in
     Fn_graph.Components.largest_members ~alive:faults.Fn_faults.Fault_set.alive g)

let small_fragment = lazy (Fn_graph.Bitset.create_full 16)

(* ---- registration ---- *)

let dep x () = ignore (Lazy.force x)
let deps ds () = List.iter (fun d -> d ()) ds

let kernels_rev = ref []

let reg ?items ~suite name prepare f =
  kernels_rev := Suite.kernel ?items ~prepare ~suite name f :: !kernels_rev

(* ---- one kernel per experiment ---- *)

let () =
  reg ~suite:experiments ~items:256 "e1_prune_adversarial"
    (deps [ dep expander256; dep alpha256 ])
    (fun () ->
      let rng = fresh () in
      let g = Lazy.force expander256 in
      let alpha = (Lazy.force alpha256).Fn_expansion.Estimate.value in
      let faults = Fn_faults.Adversary.ball_isolation rng g ~budget:24 in
      Faultnet.Prune.run ~rng g ~alive:faults.Fn_faults.Fault_set.alive ~alpha ~epsilon:0.5)

let () =
  reg ~suite:experiments ~items:256 "e2_chain_expansion" (dep chain_graph) (fun () ->
      Fn_expansion.Estimate.run ~rng:(fresh ()) (Lazy.force chain_graph) Fn_expansion.Cut.Node)

let () =
  reg ~suite:experiments "e3_chain_attack"
    (deps [ dep chain_graph; dep chain_centers ])
    (fun () ->
      let g = Lazy.force chain_graph in
      let centers = Lazy.force chain_centers in
      let faults = Fn_faults.Adversary.targets g ~targets:centers ~budget:(Array.length centers) in
      Fn_graph.Components.compute ~alive:faults.Fn_faults.Fault_set.alive g)

let () =
  reg ~suite:experiments ~items:256 "e4_recursive_attack" (dep mesh16) (fun () ->
      Fn_faults.Adversary.recursive_cut ~rng:(fresh ()) (Lazy.force mesh16) ~epsilon:0.125)

let () =
  reg ~suite:experiments "e5_random_chain" (dep chain_graph) (fun () ->
      let rng = fresh () in
      let g = Lazy.force chain_graph in
      let faults = Fn_faults.Random_faults.nodes_iid rng g 0.05 in
      Fn_graph.Components.compute ~alive:faults.Fn_faults.Fault_set.alive g)

let () =
  reg ~suite:experiments ~items:256 "e6_prune2_random"
    (deps [ dep torus16; dep alpha_e_torus16 ])
    (fun () ->
      let rng = fresh () in
      let g = Lazy.force torus16 in
      let alpha_e = (Lazy.force alpha_e_torus16).Fn_expansion.Estimate.value in
      let faults = Fn_faults.Random_faults.nodes_iid rng g 0.05 in
      Faultnet.Prune2.run ~rng g ~alive:faults.Fn_faults.Fault_set.alive ~alpha_e ~epsilon:0.125)

let () =
  reg ~suite:experiments "e7_mesh_span" (dep mesh8_geo) (fun () ->
      let rng = fresh () in
      let mesh8, geo8 = Lazy.force mesh8_geo in
      match Faultnet.Compact.random_compact rng mesh8 ~target_size:12 with
      | Some s -> Faultnet.Mesh_span.certify mesh8 geo8 s
      | None -> None)

let () =
  reg ~suite:experiments ~items:1024 "e8_percolation" (dep mesh32) (fun () ->
      Fn_percolation.Newman_ziff.bond_run (fresh ()) (Lazy.force mesh32))

let () =
  reg ~suite:experiments ~items:128 "e9_can_churn"
    (fun () -> ())
    (fun () ->
      let rng = fresh () in
      Fn_topology.Can.graph (Fn_topology.Can.build rng ~d:2 ~n:128))

let () =
  reg ~suite:experiments ~items:10 "e10_span_conjecture" (dep debruijn6) (fun () ->
      Faultnet.Span.sample (fresh ()) ~samples:10 (Lazy.force debruijn6))

let () =
  reg ~suite:experiments ~items:256 "e11_routing_sim"
    (deps [ dep mesh16; dep perm_route ])
    (fun () -> Fn_routing.Sim.run (Lazy.force mesh16) (Lazy.force perm_route))

let () =
  reg ~suite:experiments ~items:256 "e12_embedding"
    (deps [ dep mesh16; dep survivor16 ])
    (fun () -> Faultnet.Embedding.self_embed (Lazy.force mesh16) ~kept:(Lazy.force survivor16))

let () =
  reg ~suite:experiments "e13_multibutterfly"
    (fun () -> ())
    (fun () -> Fn_topology.Multibutterfly.build (fresh ()) ~k:5 ~multiplicity:2)

let () =
  reg ~suite:experiments ~items:256 "e14_transient_churn" (dep torus16) (fun () ->
      Fn_faults.Churn.simulate (fresh ()) (Lazy.force torus16) ~rate_fail:0.1 ~rate_repair:0.9
        ~horizon:10.0 ~snapshots:5)

(* ---- substrate kernels ---- *)

let () =
  reg ~suite:substrate ~items:4096 "bfs_mesh64" (dep mesh64) (fun () ->
      Fn_graph.Bfs.distances (Lazy.force mesh64) 0)

let () =
  reg ~suite:substrate ~items:4096 "components_mesh64" (dep mesh64) (fun () ->
      Fn_graph.Components.compute (Lazy.force mesh64))

let () =
  reg ~suite:substrate ~items:256 "spectral_torus16" (dep torus16) (fun () ->
      Fn_expansion.Spectral.lambda2 (Lazy.force torus16))

let () =
  reg ~suite:substrate ~items:16 "exact_expansion_4x4" (dep mesh4) (fun () ->
      Fn_expansion.Exact.node_expansion (Lazy.force mesh4))

let () =
  reg ~suite:substrate ~items:25 "steiner_exact_5x5" (dep mesh5) (fun () ->
      Fn_graph.Steiner.exact (Lazy.force mesh5) corner_terminals)

let () =
  reg ~suite:substrate ~items:25 "steiner_approx_5x5" (dep mesh5) (fun () ->
      Fn_graph.Steiner.approx (Lazy.force mesh5) corner_terminals)

let () =
  reg ~suite:substrate ~items:256 "random_regular_256_6"
    (fun () -> ())
    (fun () -> Fn_topology.Random_graphs.random_regular (fresh ()) 256 6)

(* the Estimate candidate access pattern: one resumable traversal
   grown through doubling sizes (each node visited once overall) *)
let () =
  reg ~suite:substrate ~items:4096 "ball_growth_mesh64" (dep mesh64) (fun () ->
      let g = Lazy.force mesh64 in
      let t = Fn_graph.Bfs.ball_grower g 0 in
      let k = ref 2 in
      let last = ref (Fn_graph.Bitset.create 1) in
      while !k <= 4096 do
        last := Fn_graph.Bfs.grow_ball t !k;
        k := !k * 2
      done;
      !last)

(* prefix sweep over a fixed deterministic score: isolates the sort +
   incremental boundary scan from the spectral solve *)
let sweep_score32 =
  lazy
    (let n = Fn_graph.Graph.num_nodes (Lazy.force mesh32) in
     Array.init n (fun i -> float_of_int ((i * 2654435761) land 0xFFFF)))

let () =
  reg ~suite:substrate ~items:1024 "sweep_score_mesh32"
    (deps [ dep mesh32; dep sweep_score32 ])
    (fun () ->
      Fn_expansion.Sweep.best_prefix (Lazy.force mesh32)
        ~score:(Lazy.force sweep_score32) Fn_expansion.Cut.Edge)

(* the heuristic estimator end to end (sampling + sweeps + refinement) *)
let () =
  reg ~suite:substrate ~items:256 "estimate_heuristic_torus16" (dep torus16) (fun () ->
      Fn_expansion.Estimate.run ~force_heuristic:true ~rng:(fresh ()) (Lazy.force torus16)
        Fn_expansion.Cut.Edge)

(* the Prune round loop (finder + scratch boundary accounting) on a
   faulty mesh with a fixed threshold *)
let mesh16_faults =
  lazy
    (let g = Lazy.force mesh16 in
     Fn_faults.Random_faults.nodes_iid (fresh ()) g 0.1)

let () =
  reg ~suite:substrate ~items:256 "prune_round_mesh16"
    (deps [ dep mesh16; dep mesh16_faults ])
    (fun () ->
      let faults = Lazy.force mesh16_faults in
      Faultnet.Prune.run ~rng:(fresh ()) (Lazy.force mesh16)
        ~alive:faults.Fn_faults.Fault_set.alive ~alpha:0.5 ~epsilon:0.5)

(* the full static-analysis pass over the repo's own sources: tokenise,
   build scope trees and run all rules on every .ml/.mli; tracks the
   analyzer's cost as the rule set and the tree grow.  Sources are read
   once in prepare so the timed region is pure analysis. *)
let lint_sources =
  lazy
    (match Fn_lint.Engine.collect [ "lib"; "bin"; "test"; "examples"; "bench" ] with
    | [] -> failwith "lint_repo: no sources found (run from the repo root)"
    | files ->
      List.map
        (fun p ->
          let mli_exists =
            if Filename.check_suffix p ".ml" then Some (Sys.file_exists (p ^ "i"))
            else None
          in
          (p, mli_exists, Fn_lint.Engine.read_file p))
        files)

let () =
  reg ~suite:substrate "lint_repo" (dep lint_sources) (fun () ->
      List.fold_left
        (fun acc (path, mli_exists, src) ->
          acc + List.length (Fn_lint.Engine.lint_string ?mli_exists ~path src))
        0 (Lazy.force lint_sources))

(* ---- scale: the implicit 10^7-node path ---- *)

(* a 2000 x 5000 implicit torus: exactly 10^7 nodes, max degree 4, no
   edge ever materialized — forcing the lazy costs a closure, nothing
   else.  These kernels pin the large-n path the materializing
   constructors cannot reach (their CSR alone would be ~320 MB). *)
let torus1e7 = lazy (Fn_topology.Implicit.torus [| 2000; 5000 |])

(* resumable ball growth doubling up to 2^20 nodes: the Estimate
   sampling pattern at n = 10^7.  Timed work includes the grower's
   O(n) state allocation — that is the real per-query cost. *)
let () =
  reg ~suite:scale ~items:(1 lsl 20) "bfs_ball_growth_torus1e7" (dep torus1e7) (fun () ->
      let view = Lazy.force torus1e7 in
      let t = Fn_graph.Bfs.ball_grower_v view ((1000 * 5000) + 2500) in
      let k = ref 2 in
      let last = ref (Fn_graph.Bitset.create 1) in
      while !k <= 1 lsl 20 do
        last := Fn_graph.Bfs.grow_ball t !k;
        k := !k * 2
      done;
      !last)

(* one Prune round end to end on the implicit torus: finder ball,
   scratch node-boundary certificate, cull accounting.  The degree
   bound feeding epsilon is O(1) view metadata, not a 10^7-offset
   scan. *)
let () =
  reg ~suite:scale ~items:4096 "prune_round_torus1e7" (dep torus1e7) (fun () ->
      let view = Lazy.force torus1e7 in
      let n = Fn_graph.Gview.num_nodes view in
      let alive = Fn_graph.Bitset.create_full n in
      let delta = Fn_graph.Gview.max_degree view in
      let epsilon = 1.0 /. (2.0 *. float_of_int delta) in
      let rounds = ref 0 in
      let finder ~alive view ~threshold =
        ignore threshold;
        if !rounds > 0 then None
        else begin
          incr rounds;
          Some (Fn_graph.Bfs.ball_of_size_v ~alive view 0 4096)
        end
      in
      Faultnet.Prune.run_v ~finder view ~alive ~alpha:2.0 ~epsilon)

(* ---- online: incremental certificates under streaming churn ---- *)

(* A 1000 x 1000 implicit torus and one long-lived engine over it.
   The event schedule is reversible (every faulted node is repaired
   within the run), so the engine returns to the all-alive steady
   state between runs and every run times identical work. *)
let torus1e6 = lazy (Fn_topology.Implicit.torus [| 1000; 1000 |])

let online_engine =
  lazy
    (Fn_online.Engine.create
       ~cfg:{ Fn_online.Engine.default_config with alpha = 1.0; epsilon = 0.5 }
       (Lazy.force torus1e6))

(* 64 pairwise-distant churn targets: spacing 7919 keeps their dirty
   regions disjoint, so per-event cost is the honest locality bound *)
let churn_targets = Array.init 64 (fun i -> 7919 * (i + 1))

let apply_or_die eng evs =
  match Fn_online.Engine.apply eng evs with
  | Ok _ -> ()
  | Error e -> failwith ("online kernel: " ^ Fn_faults.Churn.error_to_string e)

(* Streamed events through the maintained certificate: 4 fault/repair
   batch pairs of 64 events each (512 events), the cascade forced
   after every batch as a serving loop would.  The acceptance bar is
   items/sec here vs the from-scratch comparator below. *)
let () =
  reg ~suite:online ~items:512 "online_events_torus1e6" (dep online_engine) (fun () ->
      let eng = Lazy.force online_engine in
      for _ = 1 to 4 do
        let faults = Array.to_list (Array.map (fun v -> Fn_online.Event.Fault v) churn_targets) in
        apply_or_die eng faults;
        ignore (Fn_online.Engine.result eng);
        let repairs =
          Array.to_list (Array.map (fun v -> Fn_online.Event.Repair v) churn_targets)
        in
        apply_or_die eng repairs;
        ignore (Fn_online.Engine.result eng)
      done)

(* The from-scratch comparator: the same 64-fault batch answered by a
   full Cert.scratch cascade over all 10^6 nodes.  items = batch size,
   so items/sec is directly comparable with the kernel above. *)
let faulted_1e6 =
  lazy
    (let n = Fn_graph.Gview.num_nodes (Lazy.force torus1e6) in
     let alive = Fn_graph.Bitset.create_full n in
     Array.iter (fun v -> Fn_graph.Bitset.remove alive v) churn_targets;
     alive)

let () =
  reg ~suite:online ~items:64 "online_scratch_torus1e6"
    (deps [ dep torus1e6; dep faulted_1e6 ])
    (fun () ->
      Fn_online.Cert.scratch (Lazy.force torus1e6) ~alive:(Lazy.force faulted_1e6)
        ~alpha:1.0 ~epsilon:0.5)

(* Steady-state query latency: 256 mixed alive/certificate/alpha
   probes against the maintained state.  Prepare warms the alpha memo,
   so the timed region is the serving path, not the first spectral
   estimate. *)
let () =
  reg ~suite:online ~items:256 "online_query_latency"
    (fun () ->
      ignore (Lazy.force online_engine);
      ignore (Fn_online.Engine.alpha (Lazy.force online_engine)))
    (fun () ->
      let eng = Lazy.force online_engine in
      let acc = ref 0 in
      for i = 0 to 255 do
        let v = 1234 + (3137 * i) in
        if Fn_online.Engine.is_alive eng v then incr acc;
        if Fn_online.Engine.in_certificate eng v then incr acc;
        if i land 15 = 0 then ignore (Fn_online.Engine.alpha eng : float)
      done;
      !acc)

(* ---- online: crash-only recovery and degraded serving ---- *)

(* Recovery replay vs snapshot restore on the 10^6 implicit torus.
   One recorded session — [recovery_pairs] fault/repair batch pairs
   over the 64 spaced churn targets plus a final unrepaired fault
   batch — journaled twice: verbatim (every trial replayed on
   recovery) and compacted (meta + one snapshot line, recovery is a
   single restore).  The two kernels then time the full cold path a
   restarting faultnetd pays: open journal, build engine, recover.
   The acceptance bar is the ratio: compaction must cut recovery by
   at least 5x (see BENCH_online.json).  Engine construction alone is
   ~1.2s on 10^6 nodes and both paths pay it, so the session is sized
   (~410k events) to make the replayed prefix, not the shared
   constant, the thing compaction deletes. *)
let recovery_pairs = 3200

let recovery_cfg =
  { Fn_online.Engine.default_config with Fn_online.Engine.alpha = 1.0; epsilon = 0.5 }

let recovery_meta = [ ("bench", Fn_obs.Jsonx.Str "recovery") ]

let recovery_batch b =
  let mk v = if b land 1 = 0 then Fn_online.Event.Fault v else Fn_online.Event.Repair v in
  Array.to_list (Array.map mk churn_targets)

let recovery_journal_or_die ~path =
  match Fn_resilience.Journal.open_ ~path ~meta:recovery_meta with
  | Ok j -> j
  | Error e -> failwith ("recovery kernel: " ^ e)

(* (uncompacted path, compacted path); built once, recovered per run *)
let recovery_journals =
  lazy
    (let batches = (2 * recovery_pairs) + 1 in
     let eng = Fn_online.Engine.create ~cfg:recovery_cfg (Lazy.force torus1e6) in
     let plain = Filename.temp_file "fn_bench_recovery" ".jsonl" in
     let compacted = Filename.temp_file "fn_bench_recovery_compact" ".jsonl" in
     let jp = recovery_journal_or_die ~path:plain in
     let jc = recovery_journal_or_die ~path:compacted in
     for b = 0 to batches - 1 do
       let evs = recovery_batch b in
       apply_or_die eng evs;
       let json = Fn_online.Event.batch_to_json evs in
       Fn_resilience.Journal.record_trial jp ~scope:Fn_online.Server.scope ~index:b json;
       Fn_resilience.Journal.record_trial jc ~scope:Fn_online.Server.scope ~index:b json
     done;
     (match
        Fn_resilience.Journal.compact jc ~scope:Fn_online.Server.scope ~upto:batches
          ~snapshot:(Fn_online.Engine.encode_state eng)
      with
     | Ok () -> ()
     | Error e -> failwith ("recovery kernel: compact: " ^ e));
     Fn_resilience.Journal.close jp;
     Fn_resilience.Journal.close jc;
     (plain, compacted))

let recover_or_die ~path =
  let j = recovery_journal_or_die ~path in
  Fun.protect
    ~finally:(fun () -> Fn_resilience.Journal.close j)
    (fun () ->
      let eng = Fn_online.Engine.create ~cfg:recovery_cfg (Lazy.force torus1e6) in
      match Fn_online.Server.recover j eng with
      | Ok next -> (next, Fn_online.Engine.state_digest eng)
      | Error e -> failwith ("recovery kernel: recover: " ^ e))

let () =
  reg ~suite:online
    ~items:(((2 * recovery_pairs) + 1) * Array.length churn_targets)
    "recovery_replay_torus1e6"
    (deps [ dep torus1e6; dep recovery_journals ])
    (fun () -> recover_or_die ~path:(fst (Lazy.force recovery_journals)))

let () =
  reg ~suite:online ~items:(Array.length churn_targets) "recovery_restore_torus1e6"
    (deps [ dep torus1e6; dep recovery_journals ])
    (fun () -> recover_or_die ~path:(snd (Lazy.force recovery_journals)))

(* Query latency in degraded mode: a max_dirty_frac low enough that
   the 64-target fault batch sheds, so the engine serves stale
   stamped answers from the pinned pre-batch cascade.  Same probe mix
   as online_query_latency — the pair quantifies what shedding buys
   on the serving path.  Queries never trigger the catch-up rebuild
   (only batches, recompute and audits do), so the engine stays
   degraded across runs. *)
let degraded_engine =
  lazy
    (let eng =
       Fn_online.Engine.create
         ~cfg:{ recovery_cfg with Fn_online.Engine.max_dirty_frac = 1e-4 }
         (Lazy.force torus1e6)
     in
     apply_or_die eng
       (Array.to_list (Array.map (fun v -> Fn_online.Event.Fault v) churn_targets));
     if not (Fn_online.Engine.degraded eng) then
       failwith "degraded kernel: batch did not shed";
     ignore (Fn_online.Engine.alpha eng : float);
     eng)

let () =
  reg ~suite:online ~items:256 "degraded_query_latency" (dep degraded_engine) (fun () ->
      let eng = Lazy.force degraded_engine in
      let acc = ref 0 in
      for i = 0 to 255 do
        let v = 1234 + (3137 * i) in
        if Fn_online.Engine.is_alive eng v then incr acc;
        if Fn_online.Engine.in_certificate eng v then incr acc;
        if i land 15 = 0 then ignore (Fn_online.Engine.alpha eng : float)
      done;
      !acc)

(* ---- ablations ---- *)

(* the degenerate-eigenspace fix: a single Fiedler sweep vs the
   rotated-pair portfolio (see Spectral.fiedler_pair) *)
let () =
  reg ~suite:ablations ~items:256 "sweep_single_fiedler" (dep mesh16) (fun () ->
      let g = Lazy.force mesh16 in
      let r = Fn_expansion.Spectral.lambda2 g in
      Fn_expansion.Sweep.best_prefix g ~score:r.Fn_expansion.Spectral.fiedler
        Fn_expansion.Cut.Edge)

let () =
  reg ~suite:ablations ~items:256 "sweep_rotated_pair" (dep mesh16) (fun () ->
      let g = Lazy.force mesh16 in
      (* the production portfolio path: one fused solve, not
         lambda2 + fiedler_pair re-running the first iteration *)
      let spectral, f2 = Fn_expansion.Spectral.solve g in
      let f1 = spectral.Fn_expansion.Spectral.fiedler in
      let rot op = Array.init (Array.length f1) (fun i -> op f1.(i) f2.(i)) in
      List.fold_left Fn_expansion.Cut.better
        (Fn_expansion.Sweep.best_prefix g ~score:f1 Fn_expansion.Cut.Edge)
        (List.map
           (fun score -> Fn_expansion.Sweep.best_prefix g ~score Fn_expansion.Cut.Edge)
           [ f2; rot ( +. ); rot ( -. ) ]))

(* exact vs heuristic low-expansion finder on a fragment *)
let () =
  reg ~suite:ablations ~items:16 "finder_exact_16"
    (deps [ dep mesh4; dep small_fragment ])
    (fun () ->
      Faultnet.Low_expansion.exact Fn_expansion.Cut.Node ~alive:(Lazy.force small_fragment)
        (Lazy.force mesh4) ~threshold:0.4)

let () =
  reg ~suite:ablations ~items:16 "finder_portfolio_16"
    (deps [ dep mesh4; dep small_fragment ])
    (fun () ->
      Faultnet.Low_expansion.default Fn_expansion.Cut.Node ~alive:(Lazy.force small_fragment)
        (Lazy.force mesh4) ~threshold:0.4)

(* ---- spectral backends ---- *)

(* Near-disconnected survivor instance at n >= 1e5: two random
   6-regular expander halves joined by a handful of bridge edges,
   with an iid fault mask on top.  lambda2 collapses toward 0 while
   lambda3 stays at the expander gap, which is exactly the regime
   where Power's per-vector iteration count balloons and the Krylov
   backends win. *)
let barbell1e5 =
  lazy
    (let rng = fresh () in
     let half = 51_200 in
     let a = Fn_topology.Expander.random_regular rng ~n:half ~d:6 in
     let b = Fn_topology.Expander.random_regular rng ~n:half ~d:6 in
     let edges = ref [] in
     Fn_graph.Graph.iter_edges a (fun u v -> edges := (u, v) :: !edges);
     Fn_graph.Graph.iter_edges b (fun u v -> edges := (u + half, v + half) :: !edges);
     for i = 0 to 7 do
       edges := ((i * 97), half + (i * 131)) :: !edges
     done;
     let g = Fn_graph.Graph.of_edges (2 * half) !edges in
     let faults = Fn_faults.Random_faults.nodes_iid rng g 0.02 in
     (g, faults.Fn_faults.Fault_set.alive))

(* The Power answer on the same masked instance, computed once
   un-timed: the Krylov kernels assert 1e-6 agreement against it, so
   every bench-smoke pass doubles as a large-n differential test. *)
let barbell1e5_power_ref =
  lazy
    (let g, alive = Lazy.force barbell1e5 in
     (Fn_expansion.Spectral.lambda2 ~alive ~method_:Fn_expansion.Spectral.Method.Power g)
       .Fn_expansion.Spectral.lambda2)

let check_agreement name reference r =
  let got = r.Fn_expansion.Spectral.lambda2 in
  if abs_float (got -. reference) > 1e-6 then
    failwith
      (Printf.sprintf "%s: lambda2 %.9g disagrees with Power reference %.9g" name got
         reference);
  r

let () =
  reg ~suite:spectral ~items:102_400 "power_postfault_1e5" (dep barbell1e5) (fun () ->
      let g, alive = Lazy.force barbell1e5 in
      Fn_expansion.Spectral.lambda2 ~alive ~method_:Fn_expansion.Spectral.Method.Power g)

let () =
  reg ~suite:spectral ~items:102_400 "lanczos_postfault_1e5"
    (deps [ dep barbell1e5; dep barbell1e5_power_ref ])
    (fun () ->
      let g, alive = Lazy.force barbell1e5 in
      check_agreement "lanczos_postfault_1e5"
        (Lazy.force barbell1e5_power_ref)
        (Fn_expansion.Spectral.lambda2 ~alive ~method_:Fn_expansion.Spectral.Method.Lanczos g))

let () =
  reg ~suite:spectral ~items:102_400 "shift_invert_postfault_1e5"
    (deps [ dep barbell1e5; dep barbell1e5_power_ref ])
    (fun () ->
      let g, alive = Lazy.force barbell1e5 in
      check_agreement "shift_invert_postfault_1e5"
        (Lazy.force barbell1e5_power_ref)
        (Fn_expansion.Spectral.lambda2 ~alive
           ~method_:Fn_expansion.Spectral.Method.Shift_invert g))

(* Clean 100x100 torus (n = 1e4): the gap is ~2e-3, so Power burns its
   whole iteration budget while Lanczos converges inside one restart
   cycle — the comparative data point for locally flat topologies. *)
let torus100 = lazy (fst (Fn_topology.Torus.cube ~d:2 ~side:100))

let () =
  reg ~suite:spectral ~items:10_000 "lanczos_torus100" (dep torus100) (fun () ->
      Fn_expansion.Spectral.lambda2
        ~method_:Fn_expansion.Spectral.Method.Lanczos (Lazy.force torus100))

let all = List.rev !kernels_rev
