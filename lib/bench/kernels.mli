(** The registered benchmark kernels: one per experiment (E1..E14,
    mirroring {!Fn_experiments.Registry.all}), plus substrate kernels
    for the algorithms the experiments lean on and the ablation pairs
    from DESIGN.md.  Inputs are built lazily and forced by each
    kernel's [prepare], so listing or filtering kernels costs
    nothing. *)

val experiments : string
(** Suite name for the per-experiment kernels ("experiments"). *)

val substrate : string
(** Suite name for the substrate kernels ("kernels"). *)

val ablations : string
(** Suite name for the ablation pairs ("ablations"). *)

val all : Suite.kernel list
(** Every kernel, in suite order: experiments, substrate, ablations.
    Names are unique; the per-experiment kernels are named
    [e<N>_...], one for each [lib/experiments/e*.ml] (enforced by the
    bench-completeness test in [test/test_bench.ml]). *)
