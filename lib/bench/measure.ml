type options = {
  warmup_ns : int;
  target_batch_ns : int;
  min_runs : int;
  max_runs : int;
  budget_ns : int;
}

let default =
  {
    warmup_ns = 50_000_000;
    target_batch_ns = 10_000_000;
    min_runs = 5;
    max_runs = 40;
    budget_ns = 1_000_000_000;
  }

let quick =
  {
    warmup_ns = 10_000_000;
    target_batch_ns = 2_000_000;
    min_runs = 3;
    max_runs = 15;
    budget_ns = 200_000_000;
  }

let smoke = { warmup_ns = 0; target_batch_ns = 0; min_runs = 1; max_runs = 1; budget_ns = 0 }

type samples = {
  runs : int;
  batch : int;
  times_ns : float array;
  bytes_per_run : float;
}

let time_batch f batch =
  let t0 = Fn_obs.Clock.now_ns () in
  for _ = 1 to batch do
    f ()
  done;
  Fn_obs.Clock.now_ns () - t0

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let run opts f =
  (* First call doubles as calibration: even in smoke mode the kernel
     executes exactly once and any exception propagates to the caller. *)
  let est0 = max 1 (time_batch f 1) in
  let est = ref est0 in
  (* Warmup: repeat until the warmup budget is consumed, re-estimating
     the per-run cost as caches and the JIT-less runtime settle. *)
  let warmed = ref est0 in
  while !warmed < opts.warmup_ns do
    let t = max 1 (time_batch f 1) in
    warmed := !warmed + t;
    est := (!est + t) / 2
  done;
  let batch =
    if opts.target_batch_ns <= 0 then 1 else clamp 1 1_000_000 (opts.target_batch_ns / !est)
  in
  let batch_est = max 1 (batch * !est) in
  let runs = clamp opts.min_runs opts.max_runs (opts.budget_ns / batch_est) in
  if opts.max_runs <= 1 then
    (* smoke: the calibration run was the run *)
    { runs = 1; batch = 1; times_ns = [| float_of_int est0 |]; bytes_per_run = 0.0 }
  else begin
    let times = Array.make runs 0.0 in
    let bytes0 = Gc.allocated_bytes () in
    for i = 0 to runs - 1 do
      times.(i) <- float_of_int (time_batch f batch) /. float_of_int batch
    done;
    let bytes1 = Gc.allocated_bytes () in
    {
      runs;
      batch;
      times_ns = times;
      bytes_per_run = (bytes1 -. bytes0) /. float_of_int (runs * batch);
    }
  end
