(** The timing loop: warmup, adaptive batch sizing, sample collection.

    All clock reads go through {!Fn_obs.Clock} (monotone, integer
    nanoseconds) — the [no-raw-timing] lint rule holds in [lib/bench]
    exactly as everywhere else, so benchmark numbers and observability
    spans share one clock.  Allocation is tracked with
    [Gc.allocated_bytes] around the whole sampling phase. *)

type options = {
  warmup_ns : int;  (** time spent running the kernel before sampling *)
  target_batch_ns : int;
      (** aimed duration of one timed batch; fast kernels are looped
          so that a batch is long enough for the clock to resolve *)
  min_runs : int;  (** lower bound on collected samples *)
  max_runs : int;  (** upper bound on collected samples *)
  budget_ns : int;  (** total sampling budget for one kernel *)
}

val default : options
(** ~1 s of sampling per kernel, 10 ms batches, 5..40 samples. *)

val quick : options
(** ~0.2 s of sampling per kernel — for CI and iteration. *)

val smoke : options
(** One single un-warmed run: a correctness pass, not a measurement.
    This is what the [@bench-smoke] alias uses. *)

type samples = {
  runs : int;  (** number of timed batches *)
  batch : int;  (** kernel iterations per batch *)
  times_ns : float array;  (** per-iteration time of each batch, ns *)
  bytes_per_run : float;  (** allocated bytes per kernel iteration *)
}

val run : options -> (unit -> unit) -> samples
(** [run opts f] warms [f] up, calibrates a batch size so one batch
    lasts about [target_batch_ns], then times batches until the
    budget or [max_runs] is reached.  Each recorded sample is
    batch-normalised (total batch time / batch). *)
