let pretty_ns t =
  if Float.is_nan t then "-"
  else if t >= 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
  else if t >= 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
  else if t >= 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
  else Printf.sprintf "%.0f ns" t

let pretty_bytes b =
  if Float.is_nan b then "-"
  else if b >= 1048576.0 then Printf.sprintf "%.1f MiB" (b /. 1048576.0)
  else if b >= 1024.0 then Printf.sprintf "%.1f KiB" (b /. 1024.0)
  else Printf.sprintf "%.0f B" b

let pretty_rate r =
  if r >= 1e6 then Printf.sprintf "%.2fM/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk/s" (r /. 1e3)
  else Printf.sprintf "%.1f/s" r

let suite_table (suite, results) =
  let table =
    Fn_stats.Table.create
      [ suite; "median"; "mad"; "trim-mean"; "95% ci"; "alloc/run"; "items/s"; "samples" ]
  in
  List.iter
    (fun (r : Suite.result) ->
      let s = r.Suite.stats in
      Fn_stats.Table.add_row table
        [
          r.Suite.name;
          pretty_ns s.Suite.median_ns;
          pretty_ns s.Suite.mad_ns;
          pretty_ns s.Suite.trimmed_mean_ns;
          Printf.sprintf "[%s, %s]" (pretty_ns s.Suite.ci_low_ns) (pretty_ns s.Suite.ci_high_ns);
          pretty_bytes s.Suite.bytes_per_run;
          pretty_rate s.Suite.items_per_sec;
          Printf.sprintf "%dx%d" s.Suite.runs s.Suite.batch;
        ])
    results;
  Fn_stats.Table.to_string table ^ "\n\n"

let compare_table (c : Compare.t) =
  let table =
    Fn_stats.Table.create [ "kernel"; "baseline"; "current"; "delta"; "ci"; "verdict" ]
  in
  List.iter
    (fun (e : Compare.entry) ->
      Fn_stats.Table.add_row table
        [
          e.Compare.name;
          pretty_ns e.Compare.base_median_ns;
          pretty_ns e.Compare.cur_median_ns;
          Printf.sprintf "%+.1f%%" e.Compare.delta_pct;
          (if e.Compare.ci_separated then "separated" else "overlap");
          Compare.verdict_name e.Compare.verdict;
        ])
    c.Compare.entries;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fn_stats.Table.to_string table);
  Buffer.add_char buf '\n';
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "missing from current run: %s\n" name))
    c.Compare.missing;
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "not in baseline (new): %s\n" name))
    c.Compare.added;
  Buffer.contents buf

let gate_summary ~threshold (c : Compare.t) =
  let n = List.length c.Compare.entries in
  let reg = List.length (Compare.regressions c) in
  let sig_ = List.length (Compare.significant c) in
  let imp = sig_ - reg in
  if Compare.gate_passes c then
    Printf.sprintf "bench gate OK: %d kernels within %.0f%% of baseline" n (100.0 *. threshold)
  else
    Printf.sprintf
      "bench gate FAILED: %d regressed, %d improved (refresh baseline), %d missing of %d \
       (threshold %.0f%%)"
      reg imp
      (List.length c.Compare.missing)
      n (100.0 *. threshold)
