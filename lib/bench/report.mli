(** Human-readable rendering of suite results and comparisons.

    Pure string builders (on {!Fn_stats.Table}) — printing happens in
    [bench/main.ml] and the CLI, never inside the library. *)

val pretty_ns : float -> string
(** "892 ns" / "1.24 us" / "17.3 ms" / "2.1 s". *)

val pretty_bytes : float -> string

val suite_table : string * Suite.result list -> string
(** One aligned table per suite: kernel, median, MAD, trimmed mean,
    95% CI, bytes/run, items/sec, runs x batch. *)

val compare_table : Compare.t -> string
(** Verdict table: kernel, baseline median, current median, delta %,
    CI separation, verdict; followed by missing/added kernel notes. *)

val gate_summary : threshold:float -> Compare.t -> string
(** One-line verdict for the [--check] gate. *)
