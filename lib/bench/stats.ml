let sorted xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let median_sorted ys =
  let n = Array.length ys in
  if n = 0 then invalid_arg "Stats.median: empty array";
  if n land 1 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let median xs = median_sorted (sorted xs)

let mad xs =
  let m = median xs in
  median (Array.map (fun x -> Float.abs (x -. m)) xs)

let trimmed_mean ?(trim = 0.2) xs =
  if trim < 0.0 || trim >= 0.5 then invalid_arg "Stats.trimmed_mean: trim must be in [0, 0.5)";
  let ys = sorted xs in
  let n = Array.length ys in
  if n = 0 then invalid_arg "Stats.trimmed_mean: empty array";
  let k = int_of_float (trim *. float_of_int n) in
  let lo = k and hi = n - k in
  let sum = ref 0.0 in
  for i = lo to hi - 1 do
    sum := !sum +. ys.(i)
  done;
  !sum /. float_of_int (hi - lo)

let quantile_sorted ys q =
  let n = Array.length ys in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  let frac = pos -. float_of_int i in
  if i >= n - 1 then ys.(n - 1) else ((1.0 -. frac) *. ys.(i)) +. (frac *. ys.(i + 1))

let quantile xs q = quantile_sorted (sorted xs) q

let bootstrap_ci ~rng ?(reps = 200) ?(confidence = 0.95) xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.bootstrap_ci: empty array";
  if n = 1 then (xs.(0), xs.(0))
  else begin
    let resample = Array.make n 0.0 in
    let medians =
      Array.init reps (fun _ ->
          for i = 0 to n - 1 do
            resample.(i) <- xs.(Fn_prng.Rng.int rng n)
          done;
          Array.sort Float.compare resample;
          median_sorted resample)
    in
    Array.sort Float.compare medians;
    let tail = (1.0 -. confidence) /. 2.0 in
    (quantile_sorted medians tail, quantile_sorted medians (1.0 -. tail))
  end
