(** Robust statistics for timing samples.

    Micro-benchmark samples are heavy-tailed (GC pauses, scheduler
    preemption), so everything here is order-statistic based: the
    median locates the typical run, the MAD and a trimmed mean
    describe spread and central tendency without letting a single
    outlier dominate, and a deterministic bootstrap puts a confidence
    interval on the median.  All functions copy their input before
    sorting; none mutates the caller's array. *)

val median : float array -> float
(** Middle order statistic, averaging the two central elements for
    even lengths.  Raises [Invalid_argument] on an empty array. *)

val mad : float array -> float
(** Median absolute deviation from the median — a robust analogue of
    the standard deviation (consistent up to the usual 1.4826 factor,
    which we deliberately do not apply: raw MAD is what gets stored
    and compared).  Raises [Invalid_argument] on an empty array. *)

val trimmed_mean : ?trim:float -> float array -> float
(** Mean after discarding a [trim] fraction (default 0.2) of the
    sorted samples from each tail.  [trim] must be in [0, 0.5); with
    too few samples to trim anything it degrades to the plain mean.
    Raises [Invalid_argument] on an empty array. *)

val quantile : float array -> float -> float
(** [quantile xs q] for q in [0,1], linear interpolation between
    order statistics. *)

val bootstrap_ci :
  rng:Fn_prng.Rng.t ->
  ?reps:int ->
  ?confidence:float ->
  float array ->
  float * float
(** Percentile-bootstrap confidence interval for the median:
    resample with replacement [reps] times (default 200), take the
    median of each resample, return the ([1-confidence])/2 and
    1-([1-confidence])/2 quantiles of those medians (default
    [confidence] = 0.95).  Deterministic given the [rng] state, which
    is how BENCH baselines stay byte-reproducible for fixed inputs.
    A single-element array yields the degenerate interval [x, x]. *)
