type kernel = {
  name : string;
  suite : string;
  items : int;
  prepare : unit -> unit;
  run : unit -> unit;
}

let kernel ?(items = 1) ?(prepare = fun () -> ()) ~suite name f =
  if items < 1 then invalid_arg "Suite.kernel: items must be >= 1";
  { name; suite; items; prepare; run = (fun () -> ignore (Sys.opaque_identity (f ()))) }

let find name kernels =
  let target = String.lowercase_ascii name in
  List.find_opt (fun k -> String.lowercase_ascii k.name = target) kernels

let suites kernels =
  List.fold_left
    (fun acc k -> if List.mem k.suite acc then acc else k.suite :: acc)
    [] kernels
  |> List.rev

type stats = {
  runs : int;
  batch : int;
  median_ns : float;
  mad_ns : float;
  trimmed_mean_ns : float;
  ci_low_ns : float;
  ci_high_ns : float;
  bytes_per_run : float;
  items_per_sec : float;
}

type result = { name : string; items : int; stats : stats }

(* Stable 64-bit name hash (FNV-1a) so the bootstrap stream of one
   kernel never depends on how many kernels ran before it. *)
let name_seed seed name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    name;
  Int64.logxor !h (Int64.of_int seed)

let run_kernel ?(seed = 42) opts k =
  k.prepare ();
  let s = Measure.run opts k.run in
  let rng = Fn_prng.Rng.of_int64 (name_seed seed k.name) in
  let ci_low, ci_high = Stats.bootstrap_ci ~rng s.Measure.times_ns in
  let median = Stats.median s.Measure.times_ns in
  {
    name = k.name;
    items = k.items;
    stats =
      {
        runs = s.Measure.runs;
        batch = s.Measure.batch;
        median_ns = median;
        mad_ns = Stats.mad s.Measure.times_ns;
        trimmed_mean_ns = Stats.trimmed_mean s.Measure.times_ns;
        ci_low_ns = ci_low;
        ci_high_ns = ci_high;
        bytes_per_run = s.Measure.bytes_per_run;
        items_per_sec = (if median > 0.0 then float_of_int k.items *. 1e9 /. median else 0.0);
      };
  }

let run ?progress ?(filter = fun _ -> true) ?seed opts kernels =
  let selected = List.filter (fun (k : kernel) -> filter k.name) kernels in
  let results =
    List.map
      (fun (k : kernel) ->
        (match progress with Some p -> p k | None -> ());
        (k.suite, run_kernel ?seed opts k))
      selected
  in
  List.filter_map
    (fun suite ->
      match List.filter_map (fun (s, r) -> if s = suite then Some r else None) results with
      | [] -> None
      | rs -> Some (suite, rs))
    (suites selected)
