(** Kernel registration and the suite runner.

    Mirrors {!Fn_experiments.Registry}: a kernel is a named thunk in a
    named suite (group), the full list lives in {!Kernels.all}, and
    [find] does case-insensitive lookup.  Running a kernel produces
    the robust-statistics record that gets serialized into
    [BENCH_<suite>.json] and compared against baselines. *)

type kernel = {
  name : string;  (** unique across all suites, e.g. "e6_prune2_random" *)
  suite : string;  (** group, e.g. "experiments" / "kernels" / "ablations" *)
  items : int;
      (** work items one run processes (nodes, trials, ...); feeds the
          items/sec throughput figure.  At least 1. *)
  prepare : unit -> unit;
      (** forces the kernel's prebuilt inputs; runs un-timed before
          calibration so construction cost never pollutes samples *)
  run : unit -> unit;
}

val kernel :
  ?items:int -> ?prepare:(unit -> unit) -> suite:string -> string -> (unit -> 'a) -> kernel
(** Wrap a thunk as a kernel.  The result goes through
    [Sys.opaque_identity] so the compiler cannot delete the work. *)

val find : string -> kernel list -> kernel option
(** Case-insensitive lookup by kernel name. *)

val suites : kernel list -> string list
(** Distinct suite names in first-registration order. *)

type stats = {
  runs : int;
  batch : int;
  median_ns : float;
  mad_ns : float;
  trimmed_mean_ns : float;
  ci_low_ns : float;  (** bootstrap 95% CI on the median *)
  ci_high_ns : float;
  bytes_per_run : float;
  items_per_sec : float;
}

type result = { name : string; items : int; stats : stats }

val run_kernel : ?seed:int -> Measure.options -> kernel -> result
(** Measure one kernel.  The bootstrap RNG is seeded from [seed]
    (default 42) and the kernel name, so CI bounds are deterministic
    given the collected samples. *)

val run :
  ?progress:(kernel -> unit) ->
  ?filter:(string -> bool) ->
  ?seed:int ->
  Measure.options ->
  kernel list ->
  (string * result list) list
(** Run every kernel whose name passes [filter] (default: all),
    calling [progress] before each one, and group the results by
    suite in registration order.  Suites with no surviving kernel are
    dropped. *)
