open Fn_graph

type objective = Node | Edge

type t = { set : Bitset.t; value : float; objective : objective }

let value_of_v ?alive view objective u =
  match objective with
  | Node -> Boundary.node_expansion_v ?alive view u
  | Edge -> Boundary.edge_expansion_v ?alive view u

let value_of ?alive g objective u = value_of_v ?alive (Gview.Csr g) objective u

let make_v ?alive view objective u =
  { set = Bitset.copy u; value = value_of_v ?alive view objective u; objective }

let make ?alive g objective u = make_v ?alive (Gview.Csr g) objective u

let better a b = if b.value < a.value then b else a

let pp fmt t =
  let kind = match t.objective with Node -> "node" | Edge -> "edge" in
  Format.fprintf fmt "cut(|U|=%d, %s-expansion=%.4f)" (Bitset.cardinal t.set) kind t.value
