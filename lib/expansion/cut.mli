open Fn_graph

(** Cuts and their expansion values.

    A cut is a node subset [u]; its quality depends on the objective:
    node expansion |Γ(U)|/|U| (adversarial-fault sections of the
    paper) or edge expansion |(U,V\U)|/min(|U|,|V\U|) (random-fault
    sections). *)

type objective = Node | Edge

type t = {
  set : Bitset.t;  (** the cut side U *)
  value : float;  (** expansion under [objective] *)
  objective : objective;
}

val make : ?alive:Bitset.t -> Graph.t -> objective -> Bitset.t -> t
(** Evaluate a set; raises [Invalid_argument] on empty sides (see
    {!Boundary}). *)

val better : t -> t -> t
(** The cut with the smaller value (ties: first). *)

val value_of : ?alive:Bitset.t -> Graph.t -> objective -> Bitset.t -> float

val make_v : ?alive:Bitset.t -> Gview.t -> objective -> Bitset.t -> t
(** {!make} on either {!Gview.t} representation. *)

val value_of_v : ?alive:Bitset.t -> Gview.t -> objective -> Bitset.t -> float

val pp : Format.formatter -> t -> unit
