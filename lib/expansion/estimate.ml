open Fn_graph
open Fn_prng

type t = {
  value : float;
  witness : Bitset.t;
  objective : Cut.objective;
  exact : bool;
  lower : float option;
}

let alive_nodes ?alive g =
  match alive with
  | Some m -> Bitset.to_array m
  | None -> Array.init (Graph.num_nodes g) Fun.id

let disconnected_witness ?alive g =
  let comps = Components.compute ?alive g in
  if comps.Components.count <= 1 then None
  else begin
    (* smallest component is a zero-boundary witness *)
    let smallest = ref 0 in
    for id = 1 to comps.Components.count - 1 do
      if comps.Components.sizes.(id) < comps.Components.sizes.(!smallest) then smallest := id
    done;
    Some (Components.members comps !smallest)
  end

let ball_candidates ?alive g rng samples =
  let nodes = alive_nodes ?alive g in
  let total = Array.length nodes in
  let out = ref [] in
  if total >= 2 then begin
    let half = total / 2 in
    for _ = 1 to samples do
      let src = nodes.(Rng.int rng total) in
      let size = ref 2 in
      while !size <= half do
        let ball = Bfs.ball_of_size ?alive g src !size in
        let c = Bitset.cardinal ball in
        if c >= 1 && 2 * c <= total then out := ball :: !out;
        size := !size * 2
      done
    done
  end;
  !out

let run ?(obs = Fn_obs.Sink.null) ?alive ?rng ?(samples = 8) ?(local_search_passes = 4)
    ?(force_heuristic = false) g objective =
  let rng = match rng with Some r -> r | None -> Rng.create 0xFA17 in
  let nodes = alive_nodes ?alive g in
  let total = Array.length nodes in
  if total < 2 then invalid_arg "Estimate.run: need at least 2 alive nodes";
  let on = Fn_obs.Sink.enabled obs in
  let sp =
    if on then
      Fn_obs.Span.enter obs "expansion.estimate"
        ~fields:
          [
            ( "objective",
              Fn_obs.Sink.Str (match objective with Cut.Node -> "node" | Cut.Edge -> "edge") );
            ("alive", Fn_obs.Sink.Int total);
          ]
    else Fn_obs.Span.null
  in
  let result =
    match disconnected_witness ?alive g with
    | Some w -> { value = 0.0; witness = w; objective; exact = true; lower = Some 0.0 }
    | None ->
    let use_exact =
      (not force_heuristic) && alive = None && Graph.num_nodes g <= Exact.max_nodes
    in
    if use_exact then begin
      let cut =
        match objective with
        | Cut.Node -> Exact.node_expansion g
        | Cut.Edge -> Exact.edge_expansion g
      in
      { value = cut.Cut.value; witness = cut.Cut.set; objective; exact = true; lower = Some cut.Cut.value }
    end
    else begin
      let spectral = Spectral.lambda2 ~obs ?alive g in
      (* sweep the Fiedler pair and two 45-degree rotations: when the
         lambda2 eigenspace is degenerate (square meshes, tori) the
         single power-iteration vector is an arbitrary rotation of the
         axis modes, and one of these four recovers a near-axis cut *)
      let f1, f2 = Spectral.fiedler_pair ~obs ?alive g in
      let rotate a b op = Array.init (Array.length a) (fun i -> op a.(i) b.(i)) in
      let scores =
        [ f1; f2; rotate f1 f2 ( +. ); rotate f1 f2 ( -. ) ]
      in
      let sweep =
        match List.map (fun score -> Sweep.best_prefix ?alive g ~score objective) scores with
        | first :: rest -> List.fold_left Cut.better first rest
        | [] -> assert false
      in
      let candidates =
        List.filter_map
          (fun set ->
            match Cut.value_of ?alive g objective set with
            | v -> Some { Cut.set; value = v; objective }
            | exception Invalid_argument _ -> None)
          (ball_candidates ?alive g rng samples)
      in
      let best = List.fold_left Cut.better sweep candidates in
      let refined =
        if local_search_passes > 0 then
          Local_search.improve ?alive ~max_passes:local_search_passes g best
        else best
      in
      let lower =
        match objective with
        | Cut.Edge ->
          let phi_lb = Spectral.cheeger_lower spectral in
          Some (Spectral.conductance_to_edge_expansion_lb g phi_lb)
        | Cut.Node -> None
      in
      { value = refined.Cut.value; witness = refined.Cut.set; objective; exact = false; lower }
    end
  in
  if on then
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("value", Fn_obs.Sink.Float result.value);
          ("exact", Fn_obs.Sink.Bool result.exact);
        ];
  result

let node ?obs ?alive ?rng g = run ?obs ?alive ?rng g Cut.Node

let edge ?obs ?alive ?rng g = run ?obs ?alive ?rng g Cut.Edge
