open Fn_graph
open Fn_prng

type t = {
  value : float;
  witness : Bitset.t;
  objective : Cut.objective;
  exact : bool;
  lower : float option;
  fiedler_pair : (float array * float array) option;
  lambda2 : float option;
}

(* Cap on parallel local-search starts.  A constant (rather than the
   domain count) keeps heuristic results identical for every
   [domains > 1], so the contract is two-valued: the sequential
   algorithm at [domains = 1], one fixed parallel algorithm above. *)
let max_refine_starts = 4

(* Sampling metadata comes from the view, not from an O(n) pass: with
   no alive mask the pool is all of [0, n) and a source is drawn as
   [Rng.int rng total] directly — same rng stream as indexing the old
   identity array, without allocating or scanning n cells (on a
   10^7-node implicit torus that pass would dwarf the sampling). *)
let sample_pool ?alive view =
  match alive with
  | Some m ->
    let nodes = Bitset.to_array m in
    (Array.length nodes, Some nodes)
  | None -> (Gview.num_nodes view, None)

let pick_source pool rng total =
  match pool with
  | Some nodes -> nodes.(Rng.int rng total)
  | None -> Rng.int rng total

let disconnected_witness ?alive g =
  let comps = Components.compute ?alive g in
  if comps.Components.count <= 1 then None
  else begin
    (* smallest component is a zero-boundary witness *)
    let smallest = ref 0 in
    for id = 1 to comps.Components.count - 1 do
      if comps.Components.sizes.(id) < comps.Components.sizes.(!smallest) then smallest := id
    done;
    Some (Components.members comps !smallest)
  end

(* Candidate balls around one source for geometrically doubled size
   targets, largest first.  One resumable traversal serves the whole
   schedule (Bfs.grow_ball) instead of a fresh BFS per size. *)
let balls_from ?alive view ~total ~half src =
  let grower = Bfs.ball_grower_v ?alive view src in
  let out = ref [] in
  let size = ref 2 in
  while !size <= half do
    let ball = Bfs.grow_ball grower !size in
    let c = Bfs.ball_size grower in
    if c >= 1 && 2 * c <= total then out := ball :: !out;
    size := !size * 2
  done;
  !out

let ball_candidates ?alive view rng samples =
  let total, pool = sample_pool ?alive view in
  let out = ref [] in
  if total >= 2 then begin
    let half = total / 2 in
    for _ = 1 to samples do
      let src = pick_source pool rng total in
      out := balls_from ?alive view ~total ~half src @ !out
    done
  end;
  !out

(* Parallel sampling: every sample gets its own pre-split generator
   (sequential split, Par.trials) and grows its balls on a worker
   domain; the merge folds per-sample lists in index order, so the
   result is deterministic and independent of the domain count. *)
let ball_candidates_par ?obs ?alive view rng samples ~domains =
  let total, pool = sample_pool ?alive view in
  if total < 2 then []
  else begin
    let half = total / 2 in
    let per =
      Fn_parallel.Par.trials ?obs ~domains ~rng samples (fun r ->
          balls_from ?alive view ~total ~half (pick_source pool r total))
    in
    Array.fold_left (fun acc balls -> balls @ acc) [] per
  end

(* View-facing slice of the portfolio: BFS-ball candidates evaluated
   through one generation-stamped scratch.  The spectral sweep and
   local search stay CSR-only, so this is what large implicit
   topologies (and their Prune finders) use; the node count and degree
   bound both come from O(1) view metadata. *)
let ball_witness_v ?alive ?rng ?(samples = 8) view objective =
  let rng = match rng with Some r -> r | None -> Rng.create 0xFA17 in
  let total, pool = sample_pool ?alive view in
  if total < 2 then None
  else begin
    let scratch = Boundary.Scratch.create (Gview.num_nodes view) in
    let half = total / 2 in
    let best = ref None in
    for _ = 1 to samples do
      let src = pick_source pool rng total in
      List.iter
        (fun set ->
          (* balls_from guarantees 1 <= |set| <= total/2 within alive *)
          let size = Bitset.cardinal set in
          let value =
            match objective with
            | Cut.Node ->
              float_of_int (Boundary.Scratch.node_boundary_size_v scratch ?alive view set)
              /. float_of_int size
            | Cut.Edge ->
              float_of_int (Boundary.Scratch.edge_boundary_size_v scratch ?alive view set)
              /. float_of_int (min size (total - size))
          in
          let cut = { Cut.set; value; objective } in
          best := Some (match !best with Some b -> Cut.better b cut | None -> cut))
        (balls_from ?alive view ~total ~half src)
    done;
    !best
  end

(* The spectral slice of the portfolio on either {!Gview.t} arm: one
   method-dispatched solve plus the four rotated sweeps.  This is what
   gives implicit topologies a spectral path — before the registry the
   sweep was CSR-only and large implicit views fell back to ball
   witnesses alone. *)
let spectral_witness_v ?obs ?alive ?(domains = 1) ?method_ ?gap_hint view objective =
  let total =
    match alive with Some m -> Bitset.cardinal m | None -> Gview.num_nodes view
  in
  if total < 2 then None
  else begin
    let spectral, f2 = Spectral.solve_v ?obs ?alive ~domains ?method_ ?gap_hint view in
    let f1 = spectral.Spectral.fiedler in
    let rotate a b op = Array.init (Array.length a) (fun i -> op a.(i) b.(i)) in
    let scores = [| f1; f2; rotate f1 f2 ( +. ); rotate f1 f2 ( -. ) |] in
    let best =
      Array.fold_left
        (fun acc score ->
          let cut = Sweep.best_prefix_v ?alive view ~score objective in
          match acc with Some b -> Some (Cut.better b cut) | None -> Some cut)
        None scores
    in
    Option.map (fun cut -> (cut, spectral.Spectral.lambda2, (f1, f2))) best
  end

let run ?(obs = Fn_obs.Sink.null) ?alive ?rng ?(domains = 1) ?(samples = 8)
    ?(local_search_passes = 4) ?(force_heuristic = false) ?warm ?method_ ?gap_hint g
    objective =
  let rng = match rng with Some r -> r | None -> Rng.create 0xFA17 in
  let total =
    match alive with Some m -> Bitset.cardinal m | None -> Graph.num_nodes g
  in
  if total < 2 then invalid_arg "Estimate.run: need at least 2 alive nodes";
  let on = Fn_obs.Sink.enabled obs in
  let sp =
    if on then
      Fn_obs.Span.enter obs "expansion.estimate"
        ~fields:
          [
            ( "objective",
              Fn_obs.Sink.Str (match objective with Cut.Node -> "node" | Cut.Edge -> "edge") );
            ("alive", Fn_obs.Sink.Int total);
          ]
    else Fn_obs.Span.null
  in
  let result =
    match disconnected_witness ?alive g with
    | Some w ->
      { value = 0.0; witness = w; objective; exact = true; lower = Some 0.0;
        fiedler_pair = None; lambda2 = None }
    | None ->
    let use_exact =
      (not force_heuristic) && Option.is_none alive && Graph.num_nodes g <= Exact.max_nodes
    in
    if use_exact then begin
      let cut =
        match objective with
        | Cut.Node -> Exact.node_expansion g
        | Cut.Edge -> Exact.edge_expansion g
      in
      { value = cut.Cut.value; witness = cut.Cut.set; objective; exact = true;
        lower = Some cut.Cut.value; fiedler_pair = None; lambda2 = None }
    end
    else begin
      (* one fused spectral solve: the lambda2 Fiedler vector IS the
         first vector of the pair, so Spectral.solve shares the power
         iteration instead of running it twice *)
      let spectral, f2 = Spectral.solve ~obs ?alive ~domains ?warm ?method_ ?gap_hint g in
      (* sweep the Fiedler pair and two 45-degree rotations: when the
         lambda2 eigenspace is degenerate (square meshes, tori) the
         single power-iteration vector is an arbitrary rotation of the
         axis modes, and one of these four recovers a near-axis cut *)
      let f1 = spectral.Spectral.fiedler in
      let rotate a b op = Array.init (Array.length a) (fun i -> op a.(i) b.(i)) in
      let scores = [| f1; f2; rotate f1 f2 ( +. ); rotate f1 f2 ( -. ) |] in
      (* the sweeps are pure and merged lowest-index-first, so the
         parallel fan-out returns exactly the sequential fold *)
      let sweeps =
        Fn_parallel.Par.map ~obs ~domains
          (fun score -> Sweep.best_prefix ?alive g ~score objective)
          scores
      in
      let sweep = Array.fold_left Cut.better sweeps.(0) sweeps in
      let balls =
        let view = Gview.Csr g in
        if domains <= 1 then ball_candidates ?alive view rng samples
        else ball_candidates_par ~obs ?alive view rng samples ~domains
      in
      let candidates =
        (* pure evaluation: the parallel map matches the sequential
           filter_map element for element *)
        Fn_parallel.Par.map ~obs ~domains
          (fun set ->
            match Cut.value_of ?alive g objective set with
            | v -> Some { Cut.set; value = v; objective }
            | exception Invalid_argument _ -> None)
          (Array.of_list balls)
        |> Array.to_list
        |> List.filter_map Fun.id
      in
      let best = List.fold_left Cut.better sweep candidates in
      let refined =
        if local_search_passes <= 0 then best
        else if domains <= 1 then
          Local_search.improve ?alive ~max_passes:local_search_passes g best
        else begin
          (* multi-start refinement: hill-climb the few best distinct
             starts in parallel; includes the overall best, so the
             refined value is never worse than the sequential start *)
          let pool = Array.of_list (Array.to_list sweeps @ candidates) in
          let idx = Array.init (Array.length pool) Fun.id in
          Array.sort
            (fun a b ->
              let c = Float.compare pool.(a).Cut.value pool.(b).Cut.value in
              if c <> 0 then c else Int.compare a b)
            idx;
          let starts =
            Array.init (min max_refine_starts (Array.length pool)) (fun i -> pool.(idx.(i)))
          in
          Local_search.improve_many ~obs ?alive ~max_passes:local_search_passes ~domains g
            starts
        end
      in
      let lower =
        match objective with
        | Cut.Edge ->
          let phi_lb = Spectral.cheeger_lower spectral in
          Some (Spectral.conductance_to_edge_expansion_lb g phi_lb)
        | Cut.Node -> None
      in
      { value = refined.Cut.value; witness = refined.Cut.set; objective; exact = false;
        lower; fiedler_pair = Some (f1, f2); lambda2 = Some spectral.Spectral.lambda2 }
    end
  in
  if on then
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("value", Fn_obs.Sink.Float result.value);
          ("exact", Fn_obs.Sink.Bool result.exact);
        ];
  result

let node ?obs ?alive ?rng ?domains g = run ?obs ?alive ?rng ?domains g Cut.Node

let edge ?obs ?alive ?rng ?domains g = run ?obs ?alive ?rng ?domains g Cut.Edge
