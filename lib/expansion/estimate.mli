open Fn_graph
open Fn_prng

(** Combined expansion estimator.

    Expansion is NP-hard to compute and even hard to approximate, so
    on graphs beyond {!Exact.max_nodes} we report the best *witness*
    found by a portfolio of heuristics — an upper bound on the true
    expansion, the direction that matters when checking the paper's
    lower-bound guarantees:

    - the spectral sweep cut (with Cheeger certificates in [lower]);
    - BFS balls of geometrically spaced sizes around sampled nodes
      (optimal for meshes and other locally flat graphs);
    - FM-style local search refinement of the best candidate.

    On graphs small enough, {!Exact} is used and [exact] is set. *)

type t = {
  value : float;  (** best (smallest) expansion witnessed *)
  witness : Bitset.t;
  objective : Cut.objective;
  exact : bool;
  lower : float option;  (** certified lower bound, when available *)
  fiedler_pair : (float array * float array) option;
      (** the spectral embeddings behind the sweep cuts, when the
          heuristic branch ran — reusable as [?warm] for the next
          estimate on a nearby alive mask *)
  lambda2 : float option;
      (** algebraic connectivity from the spectral solve, when the
          heuristic branch ran — reusable as [?gap_hint] so the next
          estimate on a nearby mask lets {!Spectral.Method.select}
          pick shift-invert when the gap has collapsed *)
}

val run :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?rng:Rng.t ->
  ?domains:int ->
  ?samples:int ->
  ?local_search_passes:int ->
  ?force_heuristic:bool ->
  ?warm:float array * float array ->
  ?method_:Spectral.Method.t ->
  ?gap_hint:float ->
  Graph.t ->
  Cut.objective ->
  t
(** Defaults: [samples] 8, [local_search_passes] 4, [rng] seeded with
    0xFA17, [domains] 1, [force_heuristic] false (use {!Exact} when
    feasible).  Requires >= 2 alive nodes.  [warm] is forwarded to
    {!Spectral.solve} on the heuristic branch: warm-started runs are
    faster on nearby masks but not bit-identical to cold ones, so the
    default stays cold.  [method_] (default [Auto]) and [gap_hint]
    pick the spectral backend via {!Spectral.Method.select}; the
    default resolution is [Power] below
    {!Spectral.Method.power_max_nodes} alive nodes, keeping this
    path byte-identical to the pre-registry code.  A disconnected
    alive set
    yields value 0 with a component witness.  An enabled [obs] sink
    wraps the whole estimate in an ["expansion.estimate"] span (with
    nested spectral spans from {!Spectral}); the default null sink
    costs nothing.

    Determinism contract: [domains = 1] (the default) runs the
    sequential portfolio and is byte-identical run to run.  With
    [domains > 1] the spectral matvec, the four sweeps and the
    candidate evaluation parallelize without changing results, while
    ball sampling switches to per-sample {!Rng.split} streams and
    refinement hill-climbs several starts — a deterministic variant
    whose output depends only on [domains > 1], not on the count. *)

val ball_witness_v :
  ?alive:Bitset.t ->
  ?rng:Rng.t ->
  ?samples:int ->
  Gview.t ->
  Cut.objective ->
  Cut.t option
(** The BFS-ball slice of the portfolio on either {!Gview.t} arm: grow
    geometrically doubled balls around sampled sources and return the
    best cut witnessed, or [None] when no candidate exists (fewer than
    2 alive nodes, or every ball overshoots half the pool).  This is
    the finder large implicit topologies use — the node count and the
    degree bound come from O(1) view metadata, no O(n) pass, no edge
    materialization; local search remains CSR-only.  Sequential and
    byte-reproducible for a fixed [rng] (default seed 0xFA17,
    [samples] 8). *)

val spectral_witness_v :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?method_:Spectral.Method.t ->
  ?gap_hint:float ->
  Gview.t ->
  Cut.objective ->
  (Cut.t * float * (float array * float array)) option
(** The spectral slice of the portfolio on either {!Gview.t} arm: one
    {!Spectral.solve_v} (backend chosen by {!Spectral.Method.select})
    plus the four rotated Fiedler sweeps; returns the best sweep cut,
    lambda2, and the embedding pair, or [None] with fewer than 2 alive
    nodes.  This is what gives implicit topologies a spectral path —
    a matvec here costs one neighbor-closure call per alive node.
    Deterministic and bit-stable across [domains] like everything
    spectral. *)

val node :
  ?obs:Fn_obs.Sink.t -> ?alive:Bitset.t -> ?rng:Rng.t -> ?domains:int -> Graph.t -> t

val edge :
  ?obs:Fn_obs.Sink.t -> ?alive:Bitset.t -> ?rng:Rng.t -> ?domains:int -> Graph.t -> t
