open Fn_graph

let improve ?alive ?(max_passes = 20) g cut =
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  let n = Graph.num_nodes g in
  let total =
    match alive with None -> n | Some m -> Bitset.cardinal m
  in
  let u = Bitset.copy cut.Cut.set in
  let evaluate set =
    try Some (Cut.value_of ?alive g cut.Cut.objective set) with Invalid_argument _ -> None
  in
  let current = ref cut.Cut.value in
  let improved_once = ref true in
  let passes = ref 0 in
  while !improved_once && !passes < max_passes do
    improved_once := false;
    incr passes;
    (* candidate moves: alive nodes adjacent to the cut frontier *)
    let candidates = ref [] in
    Bitset.iter
      (fun v ->
        candidates := v :: !candidates;
        Graph.iter_neighbors g v (fun w ->
            if is_alive w && not (Bitset.mem u w) then candidates := w :: !candidates))
      u;
    let seen = Hashtbl.create 64 in
    List.iter
      (fun v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          if is_alive v then begin
            let inside = Bitset.mem u v in
            let size = Bitset.cardinal u in
            let new_size = if inside then size - 1 else size + 1 in
            if new_size >= 1 && 2 * new_size <= total then begin
              Bitset.set u v (not inside);
              match evaluate u with
              | Some value when value < !current -. 1e-12 ->
                current := value;
                improved_once := true
              | _ -> Bitset.set u v inside
            end
          end
        end)
      !candidates
  done;
  { Cut.set = u; value = !current; objective = cut.Cut.objective }

let improve_many ?obs ?alive ?max_passes ?domains g cuts =
  if Array.length cuts = 0 then invalid_arg "Local_search.improve_many: no cuts";
  let improved = Fn_parallel.Par.map ?obs ?domains (improve ?alive ?max_passes g) cuts in
  (* deterministic lowest-index merge: Cut.better keeps the earlier
     cut on ties, so the result is independent of the domain count *)
  Array.fold_left Cut.better improved.(0) improved
