open Fn_graph

(** Local improvement of a cut by single-node moves.

    Classic Fiduccia–Mattheyses-style hill climbing restricted to
    moves that keep U the small side: repeatedly apply the best
    expansion-reducing move (inserting a boundary node into U or
    evicting a member) until a pass yields no improvement or the pass
    budget runs out.  This is an upper-bound refiner: the result is
    never worse than the input cut. *)

val improve :
  ?alive:Bitset.t -> ?max_passes:int -> Graph.t -> Cut.t -> Cut.t
(** Defaults: [max_passes] 20. *)

val improve_many :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?max_passes:int ->
  ?domains:int ->
  Graph.t ->
  Cut.t array ->
  Cut.t
(** Hill-climb every start in parallel over [domains] (via
    {!Fn_parallel.Par.map}) and return the best refined cut.  The
    merge is a deterministic lowest-index fold, so the result depends
    only on the starts, never on the domain count.  Raises
    [Invalid_argument] on an empty array. *)
