open Fn_graph

type result = { lambda2 : float; fiedler : float array; iterations : int }

module Method = struct
  type t = Auto | Power | Lanczos | Shift_invert

  let to_string = function
    | Auto -> "auto"
    | Power -> "power"
    | Lanczos -> "lanczos"
    | Shift_invert -> "shift-invert"

  let of_string = function
    | "auto" -> Some Auto
    | "power" -> Some Power
    | "lanczos" -> Some Lanczos
    | "shift-invert" | "shift_invert" -> Some Shift_invert
    | _ -> None

  let all = [ Auto; Power; Lanczos; Shift_invert ]

  (* Auto policy: below this node count the fused power iteration is
     the reference and the matvec is cheap enough that Krylov
     bookkeeping does not pay; above it Lanczos converges in an order
     of magnitude fewer operator applications on the collapsed-gap
     graphs Prune produces.  A [gap_hint] (a previous lambda2, e.g.
     from the online warm cache) below [shift_invert_gap] signals a
     near-disconnected mask, where the inverted operator separates the
     near-null cluster from the bulk. *)
  let power_max_nodes = 50_000

  let shift_invert_gap = 1e-6

  let select ~n_alive ?gap_hint = function
    | Auto ->
      if n_alive < power_max_nodes then Power
      else begin
        match gap_hint with
        | Some h when h < shift_invert_gap -> Shift_invert
        | _ -> Lanczos
      end
    | m -> m
end

(* ---- Power: the historical fused iteration, kept bit-exact ---- *)

let power_iteration op ~apply ?(max_iter = 1000) ?(tol = 1e-9) ?start ~deflate_against () =
  let n = op.Spectral_op.n in
  let basis = deflate_against in
  (* deterministic pseudo-random start; offset by the deflation depth
     so the second vector starts elsewhere *)
  let phase = 1 + List.length deflate_against in
  let cold_start () = Spectral_op.cold_start op ~phase in
  (* A warm start is a previous *embedding* x = D^{-1/2} y: lift it
     back to y-space under the current degrees/mask.  If deflation
     collapses it (mask change killed its support), fall back to the
     cold start rather than iterating on a zero vector. *)
  let y =
    match start with
    | Some x when Array.length x = n ->
      let y = Spectral_op.lift op x in
      Spectral_op.deflate op basis y;
      if sqrt (Spectral_op.dot op y y) > 1e-12 then y else cold_start ()
    | _ -> cold_start ()
  in
  Spectral_op.deflate op basis y;
  ignore (Spectral_op.normalize op y);
  let z = Array.make n 0.0 in
  let iterations = ref 0 in
  (try
     for it = 1 to max_iter do
       iterations := it;
       apply y z;
       Spectral_op.deflate op basis z;
       ignore (Spectral_op.normalize op z);
       let diff = ref 0.0 in
       for i = 0 to n - 1 do
         diff := !diff +. abs_float (z.(i) -. y.(i))
       done;
       Array.blit z 0 y 0 n;
       if !diff < tol then raise Exit
     done
   with Exit -> ());
  apply y z;
  let mu_final = Spectral_op.dot op y z in
  let lambda = 2.0 -. mu_final in
  let embedding = Spectral_op.embed op y in
  (max 0.0 lambda, y, embedding, !iterations)

(* ---- dense symmetric Jacobi eigensolver for the projected matrix ---- *)

(* Cyclic Jacobi on the (at most max_basis-dimensional) Rayleigh-Ritz
   matrix: a few hundred flops per sweep, quadratically convergent,
   and deterministic (fixed sweep order, no pivot search).  [a] is
   destroyed; eigenvector k lives in column k of the returned
   matrix. *)
let jacobi_eig a m =
  let v = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    v.(i).(i) <- 1.0
  done;
  let frob2 = ref 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      frob2 := !frob2 +. (a.(i).(j) *. a.(i).(j))
    done
  done;
  let off () =
    let s = ref 0.0 in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        s := !s +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    !s
  in
  let stop = 1e-28 *. max 1.0 !frob2 in
  let sweeps = ref 0 in
  while !sweeps < 50 && off () > stop do
    incr sweeps;
    for p = 0 to m - 2 do
      for q = p + 1 to m - 1 do
        let apq = a.(p).(q) in
        if abs_float apq > 0.0 then begin
          let tau = (a.(q).(q) -. a.(p).(p)) /. (2.0 *. apq) in
          let t =
            (if tau >= 0.0 then 1.0 else -1.0)
            /. (abs_float tau +. sqrt (1.0 +. (tau *. tau)))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          for k = 0 to m - 1 do
            if k <> p && k <> q then begin
              let akp = a.(k).(p) and akq = a.(k).(q) in
              a.(k).(p) <- (c *. akp) -. (s *. akq);
              a.(p).(k) <- a.(k).(p);
              a.(k).(q) <- (s *. akp) +. (c *. akq);
              a.(q).(k) <- a.(k).(q)
            end
          done;
          let app = a.(p).(p) and aqq = a.(q).(q) in
          a.(p).(p) <- app -. (t *. apq);
          a.(q).(q) <- aqq +. (t *. apq);
          a.(p).(q) <- 0.0;
          a.(q).(p) <- 0.0;
          for k = 0 to m - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (c *. vkp) -. (s *. vkq);
            v.(k).(q) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  done;
  (Array.init m (fun i -> a.(i).(i)), v)

(* indices of the two largest eigenvalues, deterministic tiebreak *)
let top2_indices vals m =
  let idx = Array.init m Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare vals.(b) vals.(a) in
      if c <> 0 then c else Int.compare a b)
    idx;
  (idx.(0), if m >= 2 then Some idx.(1) else None)

(* ---- Lanczos with thick restarts and selective reorthogonalization ---- *)

type pair_solution = {
  theta1 : float;  (** top operator eigenvalue in the deflated space *)
  py1 : float array;  (** y-space Ritz vectors, normalized *)
  py2 : float array;
  applies : int;  (** operator applications (matvecs) consumed *)
}

let lanczos_max_basis = 16

let lanczos_keep = 6

let breakdown_tol = 1e-12

(* Plateau detection for the second Ritz pair.  theta1 always has the
   expander gap above theta2 and converges geometrically, but theta2
   often sits inside a near-degenerate bulk cluster (random-regular
   spectra pack Theta(n) eigenvalues into an O(1) interval), where no
   iterative method separates an individual eigenvector — the
   residual decays like 1/k instead of geometrically.  The power
   backend's L1-stagnation stop quietly accepts a cluster mix there;
   we do the same explicitly: once pair 1 is converged, pair 2 is
   accepted as soon as its residual fails to halve over a detection
   window.  Genuinely converging residuals halve every step or two,
   so the rule only fires in the cluster regime. *)
let lanczos_stall_window = 12

let lanczos_stall_factor = 0.5

(* Top-2 eigenpairs of the operator given by [apply_op] restricted to
   the complement of the trivial vector.  Bounded memory: the Krylov
   basis is capped at [lanczos_max_basis] vectors and thick-restarted
   keeping the best [lanczos_keep] Ritz vectors plus the residual
   direction.  Orthogonality is maintained selectively (see the pass
   in the loop): each step projects only against the trivial vector,
   the locked Ritz block and the two recurrence partners, with a
   DGKS-gated second pass — full-basis work happens only on the
   arrowhead column right after a restart, where the exact-arithmetic
   couplings are genuinely dense.  [applies] is bumped by [apply_op]
   itself, so inner solves (shift-invert CG) charge the same
   budget. *)
let lanczos_top2 op ~apply_op ~applies ~max_applies ~tol ?start () =
  let n = op.Spectral_op.n in
  let dim = max 1 (Spectral_op.alive_count op) in
  let max_basis = max 3 (min lanczos_max_basis dim) in
  let keep = max 2 (min lanczos_keep (max_basis - 2)) in
  let q = Array.make max_basis [||] in
  let tm = Array.make_matrix max_basis max_basis 0.0 in
  let phase = ref 1 in
  let zeros () = Array.make n 0.0 in
  let cold () =
    let y = Spectral_op.cold_start op ~phase:!phase in
    incr phase;
    Spectral_op.deflate op [] y;
    y
  in
  let y0 =
    match start with
    | Some x when Array.length x = n ->
      let y = Spectral_op.lift op x in
      Spectral_op.deflate op [] y;
      if sqrt (Spectral_op.dot op y y) > 1e-12 then y else cold ()
    | _ -> cold ()
  in
  if Spectral_op.normalize op y0 <= breakdown_tol then
    (* no alive mass at all: mirror the power iteration's degenerate
       output (lambda2 = 2, zero embeddings) *)
    { theta1 = 0.0; py1 = zeros (); py2 = zeros (); applies = 0 }
  else begin
    q.(0) <- y0;
    let m = ref 1 in
    (* a deterministic direction orthogonal to the current basis, for
       breakdown recovery; None when the space is exhausted *)
    let fresh_direction () =
      let rec try_phase attempts =
        if attempts = 0 then None
        else begin
          let y = cold () in
          for i = 0 to !m - 1 do
            let c = Spectral_op.dot op y q.(i) in
            for k = 0 to n - 1 do
              y.(k) <- y.(k) -. (c *. q.(i).(k))
            done
          done;
          if Spectral_op.normalize op y > 1e-8 then Some y else try_phase (attempts - 1)
        end
      in
      try_phase 8
    in
    (* latest Rayleigh-Ritz decomposition: (vals, vecs, basis size) *)
    let ritz = ref ([| 0.0 |], [| [| 1.0 |] |], 1) in
    let solve_ritz () =
      let mm = !m in
      let a = Array.make_matrix mm mm 0.0 in
      for i = 0 to mm - 1 do
        for j = 0 to mm - 1 do
          a.(i).(j) <- tm.(i).(j)
        done
      done;
      let vals, vecs = jacobi_eig a mm in
      ritz := (vals, vecs, mm)
    in
    (* Thick restart: compress the basis to the [keep] best Ritz
       vectors (plus the residual direction when there is one).  The
       projected matrix becomes diag(theta) for the kept block; the
       arrowhead couplings to the residual column need not be stored —
       the next expansion's Gram-Schmidt projections recompute them
       (they equal beta * s_last in exact arithmetic) when it
       assembles that column. *)
    (* locked Ritz block size: 0 until the first restart, [keep]
       after — the compressed survivors every subsequent step must be
       kept explicitly orthogonal to *)
    let keep_live = ref 0 in
    let restart vals vecs next =
      let mm = !m in
      let order = Array.init mm Fun.id in
      Array.sort
        (fun a b ->
          let c = Float.compare vals.(b) vals.(a) in
          if c <> 0 then c else Int.compare a b)
        order;
      let u = Array.init keep (fun k ->
          let s = Array.init mm (fun i -> vecs.(i).(order.(k))) in
          let y = zeros () in
          for i = 0 to mm - 1 do
            let si = s.(i) in
            let qi = q.(i) in
            for kk = 0 to n - 1 do
              y.(kk) <- y.(kk) +. (si *. qi.(kk))
            done
          done;
          y)
      in
      for i = 0 to max_basis - 1 do
        for j = 0 to max_basis - 1 do
          tm.(i).(j) <- 0.0
        done
      done;
      Array.iteri (fun k y -> q.(k) <- y) u;
      (match next with Some qnext -> q.(keep) <- qnext | None -> ());
      for k = 0 to keep - 1 do
        tm.(k).(k) <- vals.(order.(k))
      done;
      keep_live := keep;
      m := keep + (match next with Some _ -> 1 | None -> 0)
    in
    let converged = ref false in
    let exhausted = ref false in
    (* pair-2 plateau state: armed once pair 1 converges *)
    let pair1_done = ref false in
    let stall_mark = ref infinity in
    let stall_best = ref infinity in
    let stall_count = ref 0 in
    while (not !converged) && (not !exhausted) && !applies < max_applies do
      let j = !m - 1 in
      let w = zeros () in
      apply_op q.(j) w;
      (* Selective reorthogonalization.  In exact arithmetic w = M q_j
         is already orthogonal to all basis vectors except the two
         recurrence partners q_j, q_{j-1} — plus the locked Ritz block
         on the first column after a restart (the arrowhead).  So each
         Gram-Schmidt pass projects only against the trivial vector,
         the locked block (drift against converged Ritz directions is
         the classic ghost-eigenvalue source, so it is policed every
         step), and the recurrence partners; intermediate basis
         vectors are skipped — their coupling is O(eps) drift that a
         32-step cycle keeps below semi-orthogonality.  The DGKS
         cancellation test gates a second pass over the same set.
         Skipped couplings enter T as their exact-arithmetic zeros. *)
      let h = Array.make !m 0.0 in
      let pass () =
        let c1 = Spectral_op.dot op w op.Spectral_op.v1 in
        let v1 = op.Spectral_op.v1 in
        for k = 0 to n - 1 do
          w.(k) <- w.(k) -. (c1 *. v1.(k))
        done;
        for i = 0 to !m - 1 do
          if i < !keep_live || i >= j - 1 then begin
            let c = Spectral_op.dot op w q.(i) in
            let qi = q.(i) in
            for k = 0 to n - 1 do
              w.(k) <- w.(k) -. (c *. qi.(k))
            done;
            h.(i) <- h.(i) +. c
          end
        done
      in
      let before = sqrt (Spectral_op.dot op w w) in
      pass ();
      let after = sqrt (Spectral_op.dot op w w) in
      if after < 0.707 *. before then pass ();
      for i = 0 to j do
        tm.(i).(j) <- h.(i);
        if i <> j then tm.(j).(i) <- h.(i)
      done;
      let beta = sqrt (Spectral_op.dot op w w) in
      solve_ritz ();
      let vals, vecs, mm = !ritz in
      let i1, i2 = top2_indices vals mm in
      let scale = max 1.0 (abs_float vals.(i1)) in
      let res1 = beta *. abs_float vecs.(mm - 1).(i1) in
      let res2 =
        match i2 with Some i -> beta *. abs_float vecs.(mm - 1).(i) | None -> infinity
      in
      if mm >= 2 && res1 <= tol *. scale then begin
        if res2 <= tol *. scale then converged := true
        else if not !pair1_done then begin
          pair1_done := true;
          stall_mark := res2;
          stall_best := res2;
          stall_count := 0
        end
        else begin
          if res2 < !stall_best then stall_best := res2;
          incr stall_count;
          if !stall_count >= lanczos_stall_window then begin
            if !stall_best > lanczos_stall_factor *. !stall_mark then converged := true
            else begin
              stall_mark := !stall_best;
              stall_count := 0
            end
          end
        end
      end;
      if !converged then ()
      else if beta > breakdown_tol then begin
        let qnext = Array.map (fun x -> x /. beta) w in
        if !m = max_basis then restart vals vecs (Some qnext)
        else begin
          q.(!m) <- qnext;
          incr m
        end
      end
      else begin
        (* invariant subspace: recover with a fresh deterministic
           direction, or accept what the subspace holds *)
        match fresh_direction () with
        | Some d ->
          if !m = max_basis then restart vals vecs None;
          q.(!m) <- d;
          incr m
        | None -> exhausted := true
      end
    done;
    let vals, vecs, mm = !ritz in
    let i1, i2 = top2_indices vals mm in
    let form k =
      let y = zeros () in
      for i = 0 to mm - 1 do
        let si = vecs.(i).(k) in
        let qi = q.(i) in
        for kk = 0 to n - 1 do
          y.(kk) <- y.(kk) +. (si *. qi.(kk))
        done
      done;
      ignore (Spectral_op.normalize op y);
      y
    in
    let py1 = form i1 in
    let py2 = match i2 with Some i -> form i | None -> zeros () in
    { theta1 = vals.(i1); py1; py2; applies = !applies }
  end

(* ---- shift-invert: Lanczos on (sigma I - M)^{-1} via matrix-free CG ---- *)

let shift_delta = 0.01

let cg_rtol = 1e-10

let cg_max_iter = 1000

(* Solve (sigma I - M) x = b with conjugate gradients.  sigma > 2
   makes the system positive definite on the whole space; Krylov
   vectors live in the trivial-vector complement, which the operator
   preserves, so no per-iteration deflation is needed beyond guarding
   the right-hand side.  Deterministic: fixed iteration order, no
   randomness, and the matvec itself is bit-stable across domains. *)
let cg_solve op ~apply ~sigma ~applies b x =
  let n = op.Spectral_op.n in
  Array.fill x 0 n 0.0;
  let r = Array.copy b in
  Spectral_op.deflate op [] r;
  let p = Array.copy r in
  let mp = Array.make n 0.0 in
  let rs = ref (Spectral_op.dot op r r) in
  let b_norm = sqrt !rs in
  if b_norm > 0.0 then begin
    let it = ref 0 in
    let continue_ = ref true in
    while !continue_ && !it < cg_max_iter do
      incr it;
      apply p mp;
      incr applies;
      for i = 0 to n - 1 do
        mp.(i) <- (sigma *. p.(i)) -. mp.(i)
      done;
      let denom = Spectral_op.dot op p mp in
      if denom <= 0.0 then continue_ := false
      else begin
        let alpha = !rs /. denom in
        for i = 0 to n - 1 do
          x.(i) <- x.(i) +. (alpha *. p.(i));
          r.(i) <- r.(i) -. (alpha *. mp.(i))
        done;
        let rs' = Spectral_op.dot op r r in
        if sqrt rs' <= cg_rtol *. b_norm then continue_ := false
        else begin
          let beta = rs' /. !rs in
          for i = 0 to n - 1 do
            p.(i) <- r.(i) +. (beta *. p.(i))
          done
        end;
        rs := rs'
      end
    done
  end

(* ---- the backend registry ---- *)

(* Uniform backend contract: the full solve (lambda2, both y-space
   vectors, operator applications).  Power remains the bit-exact
   reference; Lanczos extracts the pair from one Krylov basis;
   shift-invert runs the same Lanczos on the inverted operator, whose
   spectrum maps lambda -> 1/(delta + lambda) and so separates a
   collapsed bottom cluster.  All are deterministic (no Fn_prng state
   is drawn) and bit-stable across ?domains. *)
type solved = {
  s_lambda2 : float;
  s_f1 : float array;
  s_f2 : float array;
  s_it_first : int;  (** iterations attributed to the first vector *)
  s_it_total : int;  (** total operator applications *)
}

let solve_power op ~max_iter ~tol ~warm =
  let start1, start2 =
    match warm with None -> (None, None) | Some (x1, x2) -> (Some x1, Some x2)
  in
  Spectral_op.with_apply op (fun apply ->
      let lambda2, y1, f1, it1 =
        power_iteration op ~apply ~max_iter ~tol ?start:start1 ~deflate_against:[] ()
      in
      let _, _, f2, it2 =
        power_iteration op ~apply ~max_iter ~tol ?start:start2 ~deflate_against:[ y1 ] ()
      in
      {
        s_lambda2 = lambda2;
        s_f1 = f1;
        s_f2 = f2;
        s_it_first = it1;
        s_it_total = it1 + it2;
      })

let solve_lanczos op ~max_iter ~tol ~warm =
  let start = match warm with Some (x1, _) -> Some x1 | None -> None in
  Spectral_op.with_apply_fast op (fun apply ->
      let applies = ref 0 in
      let apply_op src dst =
        apply src dst;
        incr applies
      in
      let p =
        lanczos_top2 op ~apply_op ~applies ~max_applies:(2 * max_iter) ~tol ?start ()
      in
      {
        s_lambda2 = max 0.0 (2.0 -. p.theta1);
        s_f1 = Spectral_op.embed op p.py1;
        s_f2 = Spectral_op.embed op p.py2;
        s_it_first = p.applies;
        s_it_total = p.applies;
      })

let solve_shift_invert op ~max_iter ~tol ~warm =
  let start = match warm with Some (x1, _) -> Some x1 | None -> None in
  let sigma = 2.0 +. shift_delta in
  Spectral_op.with_apply_fast op (fun apply ->
      let applies = ref 0 in
      let apply_op src dst = cg_solve op ~apply ~sigma ~applies src dst in
      let p =
        lanczos_top2 op ~apply_op ~applies ~max_applies:(2 * max_iter) ~tol ?start ()
      in
      let lam theta = if theta > 0.0 then max 0.0 ((1.0 /. theta) -. shift_delta) else 2.0 in
      {
        s_lambda2 = lam p.theta1;
        s_f1 = Spectral_op.embed op p.py1;
        s_f2 = Spectral_op.embed op p.py2;
        s_it_first = p.applies;
        s_it_total = p.applies;
      })

let run_method method_ op ~max_iter ~tol ~warm =
  match method_ with
  | Method.Power | Method.Auto -> solve_power op ~max_iter ~tol ~warm
  | Method.Lanczos -> solve_lanczos op ~max_iter ~tol ~warm
  | Method.Shift_invert -> solve_shift_invert op ~max_iter ~tol ~warm

let iterations_histogram () =
  Fn_obs.Metrics.histogram
    ~buckets:[| 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]
    "spectral.iterations"

(* ---- public entry points ---- *)

let lambda2_v ?(obs = Fn_obs.Sink.null) ?alive ?(domains = 1) ?(max_iter = 1000)
    ?(tol = 1e-9) ?(method_ = Method.Auto) ?gap_hint view =
  let on = Fn_obs.Sink.enabled obs in
  let sp = if on then Fn_obs.Span.enter obs "spectral.lambda2" else Fn_obs.Span.null in
  let op = Spectral_op.create ?alive ~domains view in
  let m = Method.select ~n_alive:(Spectral_op.alive_count op) ?gap_hint method_ in
  let lambda2, fiedler, iterations =
    match m with
    | Method.Power | Method.Auto ->
      Spectral_op.with_apply op (fun apply ->
          let lambda2, _, fiedler, iterations =
            power_iteration op ~apply ~max_iter ~tol ~deflate_against:[] ()
          in
          (lambda2, fiedler, iterations))
    | Method.Lanczos | Method.Shift_invert ->
      let s = run_method m op ~max_iter ~tol ~warm:None in
      (s.s_lambda2, s.s_f1, s.s_it_total)
  in
  if on then begin
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("lambda2", Fn_obs.Sink.Float lambda2);
          ("iterations", Fn_obs.Sink.Int iterations);
          ("method", Fn_obs.Sink.Str (Method.to_string m));
        ];
    Fn_obs.Metrics.observe (iterations_histogram ()) (float_of_int iterations)
  end;
  { lambda2; fiedler; iterations }

let lambda2 ?obs ?alive ?domains ?max_iter ?tol ?method_ ?gap_hint g =
  lambda2_v ?obs ?alive ?domains ?max_iter ?tol ?method_ ?gap_hint (Gview.Csr g)

let fiedler_pair_v ?(obs = Fn_obs.Sink.null) ?alive ?(domains = 1) ?(max_iter = 1000)
    ?(tol = 1e-9) ?(method_ = Method.Auto) ?gap_hint view =
  let on = Fn_obs.Sink.enabled obs in
  let sp = if on then Fn_obs.Span.enter obs "spectral.fiedler_pair" else Fn_obs.Span.null in
  let op = Spectral_op.create ?alive ~domains view in
  let m = Method.select ~n_alive:(Spectral_op.alive_count op) ?gap_hint method_ in
  let f1, f2, total =
    match m with
    | Method.Power | Method.Auto ->
      Spectral_op.with_apply op (fun apply ->
          let _, y1, f1, it1 = power_iteration op ~apply ~max_iter ~tol ~deflate_against:[] () in
          let _, _, f2, it2 =
            power_iteration op ~apply ~max_iter ~tol ~deflate_against:[ y1 ] ()
          in
          (f1, f2, it1 + it2))
    | Method.Lanczos | Method.Shift_invert ->
      let s = run_method m op ~max_iter ~tol ~warm:None in
      (s.s_f1, s.s_f2, s.s_it_total)
  in
  if on then Fn_obs.Span.exit sp ~fields:[ ("iterations", Fn_obs.Sink.Int total) ];
  (f1, f2)

let fiedler_pair ?obs ?alive ?domains ?max_iter ?tol ?method_ ?gap_hint g =
  fiedler_pair_v ?obs ?alive ?domains ?max_iter ?tol ?method_ ?gap_hint (Gview.Csr g)

(* How far an embedding is from being an eigenvector of 2I - L on the
   current (alive-restricted) operator: lift x to y-space, deflate the
   trivial direction, normalize, apply once and measure
   ||My - (y·My)y||.  Warm-start policies use this to decide whether a
   previous Fiedler pair is still worth iterating from after the mask
   changed; [infinity] when the lifted vector has no support left. *)
let residual_v ?alive view x =
  let n = Gview.num_nodes view in
  if Array.length x <> n then invalid_arg "Spectral.residual: vector size mismatch";
  let op = Spectral_op.create ?alive view in
  let y = Spectral_op.lift op x in
  Spectral_op.deflate op [] y;
  let nrm = sqrt (Spectral_op.dot op y y) in
  if nrm <= 1e-12 then infinity
  else begin
    for i = 0 to n - 1 do
      y.(i) <- y.(i) /. nrm
    done;
    let z = Array.make n 0.0 in
    Spectral_op.apply_rows op y z 0 n;
    let mu = Spectral_op.dot op y z in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = z.(i) -. (mu *. y.(i)) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc
  end

let residual ?alive g x = residual_v ?alive (Gview.Csr g) x

let solve_v ?(obs = Fn_obs.Sink.null) ?alive ?(domains = 1) ?(max_iter = 1000)
    ?(tol = 1e-9) ?warm ?(method_ = Method.Auto) ?gap_hint view =
  let on = Fn_obs.Sink.enabled obs in
  let sp = if on then Fn_obs.Span.enter obs "spectral.solve" else Fn_obs.Span.null in
  let op = Spectral_op.create ?alive ~domains view in
  let m = Method.select ~n_alive:(Spectral_op.alive_count op) ?gap_hint method_ in
  let s = run_method m op ~max_iter ~tol ~warm in
  if on then begin
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("lambda2", Fn_obs.Sink.Float s.s_lambda2);
          ("iterations", Fn_obs.Sink.Int s.s_it_total);
          ("method", Fn_obs.Sink.Str (Method.to_string m));
        ];
    Fn_obs.Metrics.observe (iterations_histogram ()) (float_of_int s.s_it_total)
  end;
  ({ lambda2 = s.s_lambda2; fiedler = s.s_f1; iterations = s.s_it_first }, s.s_f2)

let solve ?obs ?alive ?domains ?max_iter ?tol ?warm ?method_ ?gap_hint g =
  solve_v ?obs ?alive ?domains ?max_iter ?tol ?warm ?method_ ?gap_hint (Gview.Csr g)

let cheeger_lower r = r.lambda2 /. 2.0

let cheeger_upper r = sqrt (2.0 *. r.lambda2)

let conductance_to_edge_expansion_lb g phi =
  let dmin = Graph.min_degree g in
  phi *. float_of_int dmin /. 2.0
