open Fn_graph

type result = { lambda2 : float; fiedler : float array; iterations : int }

(* Row ranges below this node count are not worth a pool barrier per
   matvec: the synchronization would cost more than the arithmetic. *)
let par_node_threshold = 1024

let power_iteration ?alive ?(domains = 1) ?(max_iter = 1000) ?(tol = 1e-9) ?start g
    ~deflate_against =
  let n = Graph.num_nodes g in
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  let deg = Array.make n 0 in
  for v = 0 to n - 1 do
    if is_alive v then
      deg.(v) <- (match alive with None -> Graph.degree g v | Some m -> Graph.alive_degree g m v)
  done;
  let sqrt_deg = Array.map (fun d -> sqrt (float_of_int d)) deg in
  (* trivial eigenvector of 2I - L: D^{1/2} 1, normalized *)
  let v1 = Array.make n 0.0 in
  let norm1 = sqrt (Array.fold_left (fun acc d -> acc +. float_of_int d) 0.0 deg) in
  if norm1 > 0.0 then
    for v = 0 to n - 1 do
      if is_alive v then v1.(v) <- sqrt_deg.(v) /. norm1
    done;
  (* Each row of the operator touches only row-local state, so the
     parallel matvec computes bit-identical results for every domain
     count: parallelism changes which domain evaluates a row, never
     the order of floating-point operations within it. *)
  let apply_rows src dst lo hi =
    for v = lo to hi - 1 do
      if is_alive v then begin
        if deg.(v) = 0 then dst.(v) <- src.(v)
        else begin
          let acc = ref 0.0 in
          Graph.iter_neighbors g v (fun w ->
              if is_alive w && deg.(w) > 0 then acc := !acc +. (src.(w) /. sqrt_deg.(w)));
          dst.(v) <- src.(v) +. (!acc /. sqrt_deg.(v))
        end
      end
      else dst.(v) <- 0.0
    done
  in
  let dot a b =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (a.(i) *. b.(i))
    done;
    !acc
  in
  let basis = v1 :: deflate_against in
  let deflate y =
    List.iter
      (fun u ->
        let c = dot y u in
        for i = 0 to n - 1 do
          y.(i) <- y.(i) -. (c *. u.(i))
        done)
      basis
  in
  let normalize y =
    let nrm = sqrt (dot y y) in
    if nrm > 0.0 then
      for i = 0 to n - 1 do
        y.(i) <- y.(i) /. nrm
      done;
    nrm
  in
  (* deterministic pseudo-random start; offset by the deflation depth
     so the second vector starts elsewhere *)
  let phase = 1 + List.length deflate_against in
  let cold_start () =
    Array.init n (fun i ->
        if is_alive i then cos (float_of_int (((i + phase) * 7919) + phase)) else 0.0)
  in
  (* A warm start is a previous *embedding* x = D^{-1/2} y: lift it
     back to y-space under the current degrees/mask.  If deflation
     collapses it (mask change killed its support), fall back to the
     cold start rather than iterating on a zero vector. *)
  let y =
    match start with
    | Some x when Array.length x = n ->
      let y = Array.init n (fun i -> if is_alive i then x.(i) *. sqrt_deg.(i) else 0.0) in
      deflate y;
      if sqrt (dot y y) > 1e-12 then y else cold_start ()
    | _ -> cold_start ()
  in
  deflate y;
  ignore (normalize y);
  let z = Array.make n 0.0 in
  let iterations = ref 0 in
  let iterate apply =
    (try
       for it = 1 to max_iter do
         iterations := it;
         apply y z;
         deflate z;
         ignore (normalize z);
         let diff = ref 0.0 in
         for i = 0 to n - 1 do
           diff := !diff +. abs_float (z.(i) -. y.(i))
         done;
         Array.blit z 0 y 0 n;
         if !diff < tol then raise Exit
       done
     with Exit -> ());
    apply y z
  in
  if domains > 1 && n >= par_node_threshold then
    Fn_parallel.Par.Pool.with_pool ~domains (fun pool ->
        let workers = Fn_parallel.Par.Pool.size pool in
        let chunk = (n + workers - 1) / workers in
        iterate (fun src dst ->
            Fn_parallel.Par.Pool.run pool (fun w ->
                let lo = w * chunk in
                let hi = min n (lo + chunk) in
                if lo < hi then apply_rows src dst lo hi)))
  else iterate (fun src dst -> apply_rows src dst 0 n);
  let mu_final = dot y z in
  let lambda = 2.0 -. mu_final in
  let embedding =
    Array.init n (fun v -> if is_alive v && deg.(v) > 0 then y.(v) /. sqrt_deg.(v) else 0.0)
  in
  (max 0.0 lambda, y, embedding, !iterations)

let lambda2 ?(obs = Fn_obs.Sink.null) ?alive ?domains ?max_iter ?tol g =
  let on = Fn_obs.Sink.enabled obs in
  let sp = if on then Fn_obs.Span.enter obs "spectral.lambda2" else Fn_obs.Span.null in
  let lambda2, _, fiedler, iterations =
    power_iteration ?alive ?domains ?max_iter ?tol g ~deflate_against:[]
  in
  if on then begin
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("lambda2", Fn_obs.Sink.Float lambda2);
          ("iterations", Fn_obs.Sink.Int iterations);
        ];
    Fn_obs.Metrics.observe
      (Fn_obs.Metrics.histogram
         ~buckets:[| 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]
         "spectral.iterations")
      (float_of_int iterations)
  end;
  { lambda2; fiedler; iterations }

let fiedler_pair ?(obs = Fn_obs.Sink.null) ?alive ?domains ?max_iter ?tol g =
  let on = Fn_obs.Sink.enabled obs in
  let sp = if on then Fn_obs.Span.enter obs "spectral.fiedler_pair" else Fn_obs.Span.null in
  let _, y1, f1, it1 = power_iteration ?alive ?domains ?max_iter ?tol g ~deflate_against:[] in
  let _, _, f2, it2 =
    power_iteration ?alive ?domains ?max_iter ?tol g ~deflate_against:[ y1 ]
  in
  if on then
    Fn_obs.Span.exit sp ~fields:[ ("iterations", Fn_obs.Sink.Int (it1 + it2)) ];
  (f1, f2)

(* How far an embedding is from being an eigenvector of 2I - L on the
   current (alive-restricted) operator: lift x to y-space, deflate the
   trivial direction, normalize, apply once and measure
   ||My - (y·My)y||.  Warm-start policies use this to decide whether a
   previous Fiedler pair is still worth iterating from after the mask
   changed; [infinity] when the lifted vector has no support left. *)
let residual ?alive g x =
  let n = Graph.num_nodes g in
  if Array.length x <> n then invalid_arg "Spectral.residual: vector size mismatch";
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  let deg = Array.make n 0 in
  for v = 0 to n - 1 do
    if is_alive v then
      deg.(v) <- (match alive with None -> Graph.degree g v | Some m -> Graph.alive_degree g m v)
  done;
  let sqrt_deg = Array.map (fun d -> sqrt (float_of_int d)) deg in
  let dot a b =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (a.(i) *. b.(i))
    done;
    !acc
  in
  let v1 = Array.make n 0.0 in
  let norm1 = sqrt (Array.fold_left (fun acc d -> acc +. float_of_int d) 0.0 deg) in
  if norm1 > 0.0 then
    for v = 0 to n - 1 do
      if is_alive v then v1.(v) <- sqrt_deg.(v) /. norm1
    done;
  let y = Array.init n (fun v -> if is_alive v then x.(v) *. sqrt_deg.(v) else 0.0) in
  let c = dot y v1 in
  for i = 0 to n - 1 do
    y.(i) <- y.(i) -. (c *. v1.(i))
  done;
  let nrm = sqrt (dot y y) in
  if nrm <= 1e-12 then infinity
  else begin
    for i = 0 to n - 1 do
      y.(i) <- y.(i) /. nrm
    done;
    let z = Array.make n 0.0 in
    for v = 0 to n - 1 do
      if is_alive v then begin
        if deg.(v) = 0 then z.(v) <- y.(v)
        else begin
          let acc = ref 0.0 in
          Graph.iter_neighbors g v (fun w ->
              if is_alive w && deg.(w) > 0 then acc := !acc +. (y.(w) /. sqrt_deg.(w)));
          z.(v) <- y.(v) +. (!acc /. sqrt_deg.(v))
        end
      end
    done;
    let mu = dot y z in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let d = z.(i) -. (mu *. y.(i)) in
      acc := !acc +. (d *. d)
    done;
    sqrt !acc
  end

let solve ?(obs = Fn_obs.Sink.null) ?alive ?domains ?max_iter ?tol ?warm g =
  let on = Fn_obs.Sink.enabled obs in
  let sp = if on then Fn_obs.Span.enter obs "spectral.solve" else Fn_obs.Span.null in
  let start1, start2 =
    match warm with None -> (None, None) | Some (x1, x2) -> (Some x1, Some x2)
  in
  let lambda2, y1, f1, it1 =
    power_iteration ?alive ?domains ?max_iter ?tol ?start:start1 g ~deflate_against:[]
  in
  let _, _, f2, it2 =
    power_iteration ?alive ?domains ?max_iter ?tol ?start:start2 g ~deflate_against:[ y1 ]
  in
  if on then begin
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("lambda2", Fn_obs.Sink.Float lambda2);
          ("iterations", Fn_obs.Sink.Int (it1 + it2));
        ];
    Fn_obs.Metrics.observe
      (Fn_obs.Metrics.histogram
         ~buckets:[| 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 |]
         "spectral.iterations")
      (float_of_int it1)
  end;
  ({ lambda2; fiedler = f1; iterations = it1 }, f2)

let cheeger_lower r = r.lambda2 /. 2.0

let cheeger_upper r = sqrt (2.0 *. r.lambda2)

let conductance_to_edge_expansion_lb g phi =
  let dmin = Graph.min_degree g in
  phi *. float_of_int dmin /. 2.0
