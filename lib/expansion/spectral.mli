open Fn_graph

(** Spectral machinery: the algebraic connectivity of the normalized
    Laplacian and the Fiedler embedding that drives sweep cuts.

    For a connected graph, the normalized Laplacian
    L = I - D^{-1/2} A D^{-1/2} has eigenvalues
    0 = λ₁ < λ₂ <= ... <= 2, and the Cheeger inequality sandwiches
    the conductance φ:  λ₂/2 <= φ <= sqrt(2 λ₂).  For a d-regular
    graph, edge expansion = φ·d on balanced cuts, giving cheap
    two-sided bounds that our tests check against {!Exact}. *)

type result = {
  lambda2 : float;  (** algebraic connectivity of the normalized Laplacian *)
  fiedler : float array;  (** the embedding x = D^{-1/2} y₂, zero for dead nodes *)
  iterations : int;
}

val lambda2 :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  Graph.t ->
  result
(** Power iteration on 2I - L with deflation of the trivial
    eigenvector; O(max_iter * m).  The alive mask restricts the
    operator to the induced subgraph.  Isolated alive nodes are
    permitted (they contribute λ = 1 rows); the graph restricted to
    [alive] should be connected for λ₂ to have its usual meaning.
    Defaults: [max_iter] 1000, [tol] 1e-9, [domains] 1.

    With [domains > 1] the matvec is chunked over a
    {!Fn_parallel.Par.Pool} of worker domains (on graphs large enough
    for the barrier to pay for itself).  Each matrix row touches only
    row-local state, so the result is bit-identical for every domain
    count — parallelism here is an implementation detail, not an
    algorithm change. *)

val fiedler_pair :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  Graph.t ->
  float array * float array
(** Two orthogonal embeddings spanning the bottom of the spectrum:
    the Fiedler vector and a second vector deflated against it.  When
    λ₂ is (near-)degenerate — e.g. the row and column modes of a
    square mesh — a single power-iteration vector is an arbitrary mix
    of the eigenspace; sweeping several rotations of the pair recovers
    the axis-aligned cuts (see {!Estimate}). *)

val solve :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  Graph.t ->
  result * float array
(** [lambda2] and [fiedler_pair] fused: the Fiedler vector of the
    result doubles as the first vector of the pair (both are the same
    deterministic power iteration), so one call does the work of two —
    two power iterations instead of three.  Returns the {!result} and
    the second, deflated embedding.  Bit-identical to calling
    {!lambda2} and {!fiedler_pair} separately. *)

val cheeger_lower : result -> float
(** λ₂ / 2 — a certified lower bound on conductance. *)

val cheeger_upper : result -> float
(** sqrt(2 λ₂) — the Cheeger upper bound on conductance. *)

val conductance_to_edge_expansion_lb : Graph.t -> float -> float
(** [conductance_to_edge_expansion_lb g phi] turns a conductance lower
    bound into an edge-expansion lower bound via the minimum degree:
    αe >= φ · d_min / 2 on balanced cuts (vol(U) >= d_min·|U| and
    min side has volume <= vol(G)/2). *)
