open Fn_graph

(** Spectral machinery: the algebraic connectivity of the normalized
    Laplacian and the Fiedler embedding that drives sweep cuts.

    For a connected graph, the normalized Laplacian
    L = I - D^{-1/2} A D^{-1/2} has eigenvalues
    0 = λ₁ < λ₂ <= ... <= 2, and the Cheeger inequality sandwiches
    the conductance φ:  λ₂/2 <= φ <= sqrt(2 λ₂).  For a d-regular
    graph, edge expansion = φ·d on balanced cuts, giving cheap
    two-sided bounds that our tests check against {!Exact}.

    Since this layer grew a method registry, every entry point is a
    front for one of three backends over the same shared operator
    ({!Spectral_op}):

    - {!Method.Power} — the historical fused power iteration, kept
      bit-exact; the reference every other method is differential-
      tested against, and the default at small sizes.
    - {!Method.Lanczos} — thick-restart Lanczos with selective
      (DGKS-gated) reorthogonalization: both bottom eigenpairs from
      one Krylov basis, converging in O(1/sqrt(gap)) operator
      applications where power iteration needs O(1/gap).  This is the
      method that survives the near-disconnected masks {!Prune}
      manufactures.
    - {!Method.Shift_invert} — the same Lanczos on (σI - M)^{-1} with
      σ just above the trivial eigenvalue, each application a
      matrix-free conjugate-gradient solve.  The inversion maps a
      collapsed bottom cluster to the well-separated top of the
      inverted spectrum; worth it only when a gap hint says the mask
      is nearly disconnected.

    All methods are deterministic (the only "randomness" is a fixed
    cosine start — no {!Fn_prng} state is drawn) and bit-stable
    across [?domains]. *)

(** Backend registry for the spectral solvers. *)
module Method : sig
  type t = Auto | Power | Lanczos | Shift_invert

  val to_string : t -> string

  val of_string : string -> t option
  (** Inverse of {!to_string}; also accepts ["shift_invert"]. *)

  val all : t list

  val power_max_nodes : int
  (** [Auto] resolves to [Power] strictly below this alive-node count
      (50_000), which keeps every default experiment byte-identical
      to the pre-registry code. *)

  val shift_invert_gap : float
  (** [Auto] with a [gap_hint] below this (1e-6) resolves to
      [Shift_invert]: the mask is near-disconnected enough that
      inverting the operator pays for the inner solves. *)

  val select : n_alive:int -> ?gap_hint:float -> t -> t
  (** Resolve [Auto] per graph size and optional spectral-gap hint (a
      previous lambda2 for a nearby mask, e.g. from the online warm
      cache); concrete methods pass through unchanged.  Never returns
      [Auto]. *)
end

type result = {
  lambda2 : float;  (** algebraic connectivity of the normalized Laplacian *)
  fiedler : float array;  (** the embedding x = D^{-1/2} y₂, zero for dead nodes *)
  iterations : int;
      (** operator applications consumed: power-iteration steps for
          [Power], total matvecs (including inner CG) for the Krylov
          methods *)
}

val lambda2 :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?method_:Method.t ->
  ?gap_hint:float ->
  Graph.t ->
  result
(** λ₂ and the Fiedler embedding of the alive-restricted operator.
    The alive mask restricts the operator to the induced subgraph.
    Isolated alive nodes are permitted (they contribute λ = 1 rows);
    the graph restricted to [alive] should be connected for λ₂ to
    have its usual meaning.  Defaults: [max_iter] 1000, [tol] 1e-9,
    [domains] 1, [method_] [Auto] (resolved by {!Method.select}; the
    [Power] resolution is bit-identical to the historical code).

    With [domains > 1] the matvec is chunked over a
    {!Fn_parallel.Par.Pool} of worker domains (on graphs large enough
    for the barrier to pay for itself).  Each matrix row touches only
    row-local state, so the result is bit-identical for every domain
    count — parallelism here is an implementation detail, not an
    algorithm change.  This holds for every method. *)

val lambda2_v :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?method_:Method.t ->
  ?gap_hint:float ->
  Gview.t ->
  result
(** {!lambda2} over any {!Gview.t}: implicit topologies get the same
    spectral path, paying one neighbor-closure call per row per
    matvec instead of a CSR scan. *)

val fiedler_pair :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?method_:Method.t ->
  ?gap_hint:float ->
  Graph.t ->
  float array * float array
(** Two orthogonal embeddings spanning the bottom of the spectrum:
    the Fiedler vector and a second vector deflated against it.  When
    λ₂ is (near-)degenerate — e.g. the row and column modes of a
    square mesh — a single power-iteration vector is an arbitrary mix
    of the eigenspace; sweeping several rotations of the pair recovers
    the axis-aligned cuts (see {!Estimate}).  The Krylov backends get
    both vectors from one basis; [Power] runs its two deflated
    iterations exactly as before. *)

val fiedler_pair_v :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?method_:Method.t ->
  ?gap_hint:float ->
  Gview.t ->
  float array * float array

val solve :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?warm:float array * float array ->
  ?method_:Method.t ->
  ?gap_hint:float ->
  Graph.t ->
  result * float array
(** [lambda2] and [fiedler_pair] fused: the Fiedler vector of the
    result doubles as the first vector of the pair, so one call does
    the work of two.  Returns the {!result} and the second, deflated
    embedding.  Without [warm] and under the [Power] resolution,
    bit-identical to calling {!lambda2} and {!fiedler_pair}
    separately.

    [warm] seeds the solve with a previous embedding pair (e.g. the
    output of an earlier [solve] on a nearby alive mask) instead of
    the deterministic cosine start; when the mask barely moved this
    converges in a handful of iterations.  Warm starts are
    method-aware: [Power] seeds its two iterations with the pair,
    the Krylov methods seed the first basis vector with the lifted
    first embedding.  A warm vector that deflates to (near) zero
    under the new mask falls back to the cold start.  Warm results
    are {e not} bit-identical to cold ones — callers needing exact
    reproducibility must stay cold (see {!residual} for the check
    online callers gate warm starts on). *)

val solve_v :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?warm:float array * float array ->
  ?method_:Method.t ->
  ?gap_hint:float ->
  Gview.t ->
  result * float array

val residual :
  ?alive:Bitset.t -> Graph.t -> float array -> float
(** [residual g x] measures how far the embedding [x] (an earlier
    Fiedler vector) is from an eigenvector of the current
    alive-restricted operator: the L2 norm of [My - (y·My)y] for the
    lifted, deflated, normalized [y].  Small (≲ 0.1) means [x] is
    still a good warm start after a mask change; [infinity] when [x]
    has no alive support left. *)

val residual_v : ?alive:Bitset.t -> Gview.t -> float array -> float

val cheeger_lower : result -> float
(** λ₂ / 2 — a certified lower bound on conductance. *)

val cheeger_upper : result -> float
(** sqrt(2 λ₂) — the Cheeger upper bound on conductance. *)

val conductance_to_edge_expansion_lb : Graph.t -> float -> float
(** [conductance_to_edge_expansion_lb g phi] turns a conductance lower
    bound into an edge-expansion lower bound via the minimum degree:
    αe >= φ · d_min / 2 on balanced cuts (vol(U) >= d_min·|U| and
    min side has volume <= vol(G)/2). *)
