open Fn_graph

(** Spectral machinery: the algebraic connectivity of the normalized
    Laplacian and the Fiedler embedding that drives sweep cuts.

    For a connected graph, the normalized Laplacian
    L = I - D^{-1/2} A D^{-1/2} has eigenvalues
    0 = λ₁ < λ₂ <= ... <= 2, and the Cheeger inequality sandwiches
    the conductance φ:  λ₂/2 <= φ <= sqrt(2 λ₂).  For a d-regular
    graph, edge expansion = φ·d on balanced cuts, giving cheap
    two-sided bounds that our tests check against {!Exact}. *)

type result = {
  lambda2 : float;  (** algebraic connectivity of the normalized Laplacian *)
  fiedler : float array;  (** the embedding x = D^{-1/2} y₂, zero for dead nodes *)
  iterations : int;
}

val lambda2 :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  Graph.t ->
  result
(** Power iteration on 2I - L with deflation of the trivial
    eigenvector; O(max_iter * m).  The alive mask restricts the
    operator to the induced subgraph.  Isolated alive nodes are
    permitted (they contribute λ = 1 rows); the graph restricted to
    [alive] should be connected for λ₂ to have its usual meaning.
    Defaults: [max_iter] 1000, [tol] 1e-9, [domains] 1.

    With [domains > 1] the matvec is chunked over a
    {!Fn_parallel.Par.Pool} of worker domains (on graphs large enough
    for the barrier to pay for itself).  Each matrix row touches only
    row-local state, so the result is bit-identical for every domain
    count — parallelism here is an implementation detail, not an
    algorithm change. *)

val fiedler_pair :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  Graph.t ->
  float array * float array
(** Two orthogonal embeddings spanning the bottom of the spectrum:
    the Fiedler vector and a second vector deflated against it.  When
    λ₂ is (near-)degenerate — e.g. the row and column modes of a
    square mesh — a single power-iteration vector is an arbitrary mix
    of the eigenspace; sweeping several rotations of the pair recovers
    the axis-aligned cuts (see {!Estimate}). *)

val solve :
  ?obs:Fn_obs.Sink.t ->
  ?alive:Bitset.t ->
  ?domains:int ->
  ?max_iter:int ->
  ?tol:float ->
  ?warm:float array * float array ->
  Graph.t ->
  result * float array
(** [lambda2] and [fiedler_pair] fused: the Fiedler vector of the
    result doubles as the first vector of the pair (both are the same
    deterministic power iteration), so one call does the work of two —
    two power iterations instead of three.  Returns the {!result} and
    the second, deflated embedding.  Without [warm], bit-identical to
    calling {!lambda2} and {!fiedler_pair} separately.

    [warm] seeds the two power iterations with a previous embedding
    pair (e.g. the output of an earlier [solve] on a nearby alive
    mask) instead of the deterministic cosine start; when the mask
    barely moved this converges in a handful of iterations.  A warm
    vector that deflates to (near) zero under the new mask falls back
    to the cold start.  Warm results are {e not} bit-identical to cold
    ones — callers needing exact reproducibility must stay cold (see
    {!residual} for the check online callers gate warm starts on). *)

val residual :
  ?alive:Bitset.t -> Graph.t -> float array -> float
(** [residual g x] measures how far the embedding [x] (an earlier
    Fiedler vector) is from an eigenvector of the current
    alive-restricted operator: the L2 norm of [My - (y·My)y] for the
    lifted, deflated, normalized [y].  Small (≲ 0.1) means [x] is
    still a good power-iteration start after a mask change;
    [infinity] when [x] has no alive support left. *)

val cheeger_lower : result -> float
(** λ₂ / 2 — a certified lower bound on conductance. *)

val cheeger_upper : result -> float
(** sqrt(2 λ₂) — the Cheeger upper bound on conductance. *)

val conductance_to_edge_expansion_lb : Graph.t -> float -> float
(** [conductance_to_edge_expansion_lb g phi] turns a conductance lower
    bound into an edge-expansion lower bound via the minimum degree:
    αe >= φ · d_min / 2 on balanced cuts (vol(U) >= d_min·|U| and
    min side has volume <= vol(G)/2). *)
