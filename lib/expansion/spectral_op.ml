open Fn_graph

type t = {
  view : Gview.t;
  n : int;
  alive : Bitset.t option;
  deg : int array;
  sqrt_deg : float array;
  v1 : float array;
  domains : int;
}

(* Row ranges below this node count are not worth a pool barrier per
   matvec: the synchronization would cost more than the arithmetic. *)
let par_node_threshold = 1024

let create ?alive ?(domains = 1) view =
  let n = Gview.num_nodes view in
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  let deg = Array.make n 0 in
  (match view with
  | Gview.Csr g ->
    for v = 0 to n - 1 do
      if is_alive v then
        deg.(v) <-
          (match alive with None -> Graph.degree g v | Some m -> Graph.alive_degree g m v)
    done
  | Gview.Implicit r ->
    for v = 0 to n - 1 do
      if is_alive v then
        deg.(v) <-
          (match alive with
          | None -> r.Gview.degree v
          | Some m ->
            let c = ref 0 in
            r.Gview.iter_neighbors v (fun w -> if Bitset.mem m w then incr c);
            !c)
    done);
  let sqrt_deg = Array.map (fun d -> sqrt (float_of_int d)) deg in
  (* trivial eigenvector of 2I - L: D^{1/2} 1, normalized *)
  let v1 = Array.make n 0.0 in
  let norm1 = sqrt (Array.fold_left (fun acc d -> acc +. float_of_int d) 0.0 deg) in
  if norm1 > 0.0 then
    for v = 0 to n - 1 do
      if is_alive v then v1.(v) <- sqrt_deg.(v) /. norm1
    done;
  { view; n; alive; deg; sqrt_deg; v1; domains }

let is_alive t v = match t.alive with None -> true | Some m -> Bitset.mem m v

let alive_count t = match t.alive with None -> t.n | Some m -> Bitset.cardinal m

(* Each row of the operator touches only row-local state, so the
   parallel matvec computes bit-identical results for every domain
   count: parallelism changes which domain evaluates a row, never
   the order of floating-point operations within it. *)
let apply_rows t src dst lo hi =
  let alive = t.alive in
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  let deg = t.deg and sqrt_deg = t.sqrt_deg in
  match t.view with
  | Gview.Csr g ->
    for v = lo to hi - 1 do
      if is_alive v then begin
        if deg.(v) = 0 then dst.(v) <- src.(v)
        else begin
          let acc = ref 0.0 in
          Graph.iter_neighbors g v (fun w ->
              if is_alive w && deg.(w) > 0 then acc := !acc +. (src.(w) /. sqrt_deg.(w)));
          dst.(v) <- src.(v) +. (!acc /. sqrt_deg.(v))
        end
      end
      else dst.(v) <- 0.0
    done
  | Gview.Implicit r ->
    for v = lo to hi - 1 do
      if is_alive v then begin
        if deg.(v) = 0 then dst.(v) <- src.(v)
        else begin
          let acc = ref 0.0 in
          r.Gview.iter_neighbors v (fun w ->
              if is_alive w && deg.(w) > 0 then acc := !acc +. (src.(w) /. sqrt_deg.(w)));
          dst.(v) <- src.(v) +. (!acc /. sqrt_deg.(v))
        end
      end
      else dst.(v) <- 0.0
    done

let with_apply t f =
  if t.domains > 1 && t.n >= par_node_threshold then
    Fn_parallel.Par.Pool.with_pool ~domains:t.domains (fun pool ->
        let workers = Fn_parallel.Par.Pool.size pool in
        let chunk = (t.n + workers - 1) / workers in
        f (fun src dst ->
            Fn_parallel.Par.Pool.run pool (fun w ->
                let lo = w * chunk in
                let hi = min t.n (lo + chunk) in
                if lo < hi then apply_rows t src dst lo hi)))
  else f (fun src dst -> apply_rows t src dst 0 t.n)

(* gather-reduced row loop over a pre-scaled masked source: per edge a
   single u gather, no mask probe (dead/isolated entries of u are 0,
   an exact [+. 0.] in the row sum) *)
let apply_rows_fast t u src dst lo hi =
  let deg = t.deg and sqrt_deg = t.sqrt_deg in
  let sum_rows iter =
    for v = lo to hi - 1 do
      if is_alive t v then begin
        if deg.(v) = 0 then dst.(v) <- src.(v)
        else begin
          let acc = ref 0.0 in
          iter v (fun w -> acc := !acc +. u.(w));
          dst.(v) <- src.(v) +. (!acc /. sqrt_deg.(v))
        end
      end
      else dst.(v) <- 0.0
    done
  in
  match t.view with
  | Gview.Csr g -> sum_rows (Graph.iter_neighbors g)
  | Gview.Implicit r -> sum_rows r.Gview.iter_neighbors

let scale_source t u src lo hi =
  let deg = t.deg and sqrt_deg = t.sqrt_deg in
  for i = lo to hi - 1 do
    u.(i) <-
      (if is_alive t i && deg.(i) > 0 then src.(i) /. sqrt_deg.(i) else 0.0)
  done

(* flat adjacency copy for the CSR arm's fast path: one O(m) pass per
   [with_apply_fast] (amortized over the solve's many matvecs) buys a
   closure-free row loop in neighbor order identical to
   [Graph.iter_neighbors] *)
let flat_adjacency g n =
  let xa = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    let c = ref 0 in
    Graph.iter_neighbors g v (fun _ -> incr c);
    xa.(v + 1) <- xa.(v) + !c
  done;
  let ad = Array.make xa.(n) 0 in
  for v = 0 to n - 1 do
    let k = ref xa.(v) in
    Graph.iter_neighbors g v (fun w ->
        ad.(!k) <- w;
        incr k)
  done;
  (xa, ad)

let flat_rows t xa ad u src dst lo hi =
  let deg = t.deg and sqrt_deg = t.sqrt_deg in
  for v = lo to hi - 1 do
    if is_alive t v then begin
      if deg.(v) = 0 then dst.(v) <- src.(v)
      else begin
        let acc = ref 0.0 in
        for k = xa.(v) to xa.(v + 1) - 1 do
          acc := !acc +. u.(Array.unsafe_get ad k)
        done;
        dst.(v) <- src.(v) +. (!acc /. sqrt_deg.(v))
      end
    end
    else dst.(v) <- 0.0
  done

let with_apply_fast t f =
  let u = Array.make t.n 0.0 in
  let rows =
    match t.view with
    | Gview.Csr g ->
      let xa, ad = flat_adjacency g t.n in
      flat_rows t xa ad
    | Gview.Implicit _ -> apply_rows_fast t
  in
  if t.domains > 1 && t.n >= par_node_threshold then
    Fn_parallel.Par.Pool.with_pool ~domains:t.domains (fun pool ->
        let workers = Fn_parallel.Par.Pool.size pool in
        let chunk = (t.n + workers - 1) / workers in
        f (fun src dst ->
            Fn_parallel.Par.Pool.run pool (fun w ->
                let lo = w * chunk in
                let hi = min t.n (lo + chunk) in
                if lo < hi then scale_source t u src lo hi);
            Fn_parallel.Par.Pool.run pool (fun w ->
                let lo = w * chunk in
                let hi = min t.n (lo + chunk) in
                if lo < hi then rows u src dst lo hi)))
  else
    f (fun src dst ->
        scale_source t u src 0 t.n;
        rows u src dst 0 t.n)

let dot t a b =
  let acc = ref 0.0 in
  for i = 0 to t.n - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let deflate t extra y =
  List.iter
    (fun u ->
      let c = dot t y u in
      for i = 0 to t.n - 1 do
        y.(i) <- y.(i) -. (c *. u.(i))
      done)
    (t.v1 :: extra)

let normalize t y =
  let nrm = sqrt (dot t y y) in
  if nrm > 0.0 then
    for i = 0 to t.n - 1 do
      y.(i) <- y.(i) /. nrm
    done;
  nrm

(* deterministic pseudo-random start; the phase offset lets deflated
   or restarted iterations begin elsewhere *)
let cold_start t ~phase =
  Array.init t.n (fun i ->
      if is_alive t i then cos (float_of_int (((i + phase) * 7919) + phase)) else 0.0)

let lift t x =
  Array.init t.n (fun i -> if is_alive t i then x.(i) *. t.sqrt_deg.(i) else 0.0)

let embed t y =
  Array.init t.n (fun v ->
      if is_alive t v && t.deg.(v) > 0 then y.(v) /. t.sqrt_deg.(v) else 0.0)
