open Fn_graph

(** The shared spectral operator: one D^{-1/2}-normalized walk matrix
    behind every {!Spectral} backend.

    All methods iterate the same operator M = 2I - L where
    L = I - D^{-1/2} A D^{-1/2} is the normalized Laplacian of the
    alive-restricted graph: eigenvalues of M lie in [0, 2], the top
    eigenpair is the trivial (2, D^{1/2} 1), and lambda2 = 2 - mu2.
    This module owns the degree/mask setup, the trivial-vector
    deflation, the (optionally pool-chunked) matvec and the small
    vector kit (dot/axpy-free deflate, normalize, deterministic cold
    start, x-space lift/embed) so that Power, Lanczos, shift-invert
    and {!Spectral.residual} all agree on the operator bit for bit —
    previously each of them re-derived this setup by hand.

    The operator is {!Gview.t}-capable: the CSR arm keeps the original
    flat-array row loop (byte-identical to the historical code), the
    implicit arm drives the generator's neighbor closure, which is
    what gives implicit topologies a spectral path at all.

    Determinism: nothing here draws randomness (the cold start is a
    fixed cosine sequence), and each matrix row touches only row-local
    state, so the chunked parallel matvec is bit-identical for every
    [domains] count — parallelism changes which domain evaluates a
    row, never the order of floating-point operations within it. *)

type t = private {
  view : Gview.t;
  n : int;  (** node count of the underlying view *)
  alive : Bitset.t option;
  deg : int array;  (** alive-restricted degrees; 0 for dead nodes *)
  sqrt_deg : float array;
  v1 : float array;
      (** trivial eigenvector of M in y-space: D^{1/2} 1 normalized,
          zero when the alive fragment has no edges *)
  domains : int;
}

val create : ?alive:Bitset.t -> ?domains:int -> Gview.t -> t
(** Degree and trivial-vector setup for the alive-restricted operator.
    [domains] (default 1) is recorded for {!with_apply}. *)

val is_alive : t -> int -> bool

val alive_count : t -> int
(** Number of alive nodes (= [n] without a mask); O(mask words). *)

val apply_rows : t -> float array -> float array -> int -> int -> unit
(** [apply_rows t src dst lo hi] writes rows [lo, hi) of [M src] into
    [dst].  Isolated alive nodes are identity rows; dead rows are
    zeroed.  Row-local: disjoint ranges may run concurrently. *)

val with_apply : t -> ((float array -> float array -> unit) -> 'a) -> 'a
(** Hand the body a full matvec.  With [domains > 1] on a graph big
    enough for the barrier to pay (>= 1024 nodes) the rows are chunked
    over a {!Fn_parallel.Par.Pool} created once for the body's whole
    lifetime; otherwise the matvec is the sequential loop.  Either way
    the bits are identical. *)

val with_apply_fast : t -> ((float array -> float array -> unit) -> 'a) -> 'a
(** {!with_apply} with a gather-reduced row loop: each matvec first
    materializes the masked pre-scaled source [u = src / sqrt_deg]
    (zero on dead and isolated nodes) in one sequential-access pass,
    so the per-edge work drops from three random gathers plus a mask
    probe to a single [u] gather.  The row accumulation performs the
    same floating-point operations in the same order as {!with_apply}
    except that dead neighbors contribute an explicit [+. 0.] instead
    of being branched over — identical results everywhere except the
    sign of a zero in pathological cancellation cases, which is why
    the bit-exact Power reference stays on {!with_apply} and only the
    Krylov backends (with no historical byte contract) use this.
    Same chunked-parallel determinism guarantee: bit-identical for
    every [domains] count. *)

val dot : t -> float array -> float array -> float

val deflate : t -> float array list -> float array -> unit
(** [deflate t extra y] removes the [v1] component and then each
    vector of [extra] from [y], in order (classical Gram-Schmidt,
    matching the historical power-iteration deflation exactly). *)

val normalize : t -> float array -> float
(** L2-normalize in place (no-op on the zero vector); returns the
    pre-normalization norm. *)

val cold_start : t -> phase:int -> float array
(** The deterministic pseudo-random start vector: [cos] of a fixed
    integer sequence offset by [phase] so deflated restarts begin
    elsewhere; zero on dead nodes.  No {!Fn_prng} state is drawn, so
    every backend is trivially deterministic under seeds. *)

val lift : t -> float array -> float array
(** x-space embedding -> y-space: multiply by D^{1/2} under the
    current mask (warm starts are embeddings of a previous solve). *)

val embed : t -> float array -> float array
(** y-space -> x-space Fiedler embedding: divide by D^{1/2}; zero on
    dead and isolated nodes. *)
