open Fn_graph

let best_prefix_v ?alive view ~score objective =
  let n = Gview.num_nodes view in
  if Array.length score <> n then invalid_arg "Sweep.best_prefix: score length mismatch";
  (* match the view once: the sweep's inner loop only needs a neighbor
     iterator *)
  let iter =
    match view with
    | Gview.Csr g -> Graph.iter_neighbors g
    | Gview.Implicit r -> r.Gview.iter_neighbors
  in
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  let order =
    let arr =
      match alive with None -> Array.init n Fun.id | Some m -> Bitset.to_array m
    in
    (* monomorphic score-then-index order: bare polymorphic compare on
       (float, int) tuples costs a C call and two tuple allocations
       per comparison in this sort hot path *)
    Array.sort
      (fun a b ->
        let c = Float.compare score.(a) score.(b) in
        if c <> 0 then c else Int.compare a b)
      arr;
    arr
  in
  let total = Array.length order in
  if total < 2 then invalid_arg "Sweep.best_prefix: need at least 2 alive nodes";
  let in_u = Array.make n false in
  (* count.(w): neighbours of w currently inside U *)
  let count = Array.make n 0 in
  let node_boundary = ref 0 in
  let edge_boundary = ref 0 in
  let best_val = ref infinity and best_k = ref 1 in
  for k = 0 to total - 1 do
    let v = order.(k) in
    (* v enters U *)
    if count.(v) > 0 then decr node_boundary;
    in_u.(v) <- true;
    iter v (fun w ->
        if is_alive w then begin
          if in_u.(w) then edge_boundary := !edge_boundary - 1
          else begin
            edge_boundary := !edge_boundary + 1;
            if count.(w) = 0 then incr node_boundary
          end;
          count.(w) <- count.(w) + 1
        end);
    let size = k + 1 in
    if 2 * size <= total then begin
      let value =
        match objective with
        | Cut.Node -> float_of_int !node_boundary /. float_of_int size
        | Cut.Edge -> float_of_int !edge_boundary /. float_of_int (min size (total - size))
      in
      if value < !best_val then begin
        best_val := value;
        best_k := size
      end
    end
  done;
  let set = Bitset.create n in
  for k = 0 to !best_k - 1 do
    Bitset.add set order.(k)
  done;
  { Cut.set; value = !best_val; objective }

let best_prefix ?alive g ~score objective =
  best_prefix_v ?alive (Gview.Csr g) ~score objective

let spectral_cut_v ?alive ?domains ?method_ view objective =
  let r = Spectral.lambda2_v ?alive ?domains ?method_ view in
  best_prefix_v ?alive view ~score:r.Spectral.fiedler objective

let spectral_cut ?alive ?domains ?method_ g objective =
  spectral_cut_v ?alive ?domains ?method_ (Gview.Csr g) objective
