open Fn_graph

(** Sweep cuts: order nodes by a score (typically the Fiedler vector)
    and take the best prefix.

    Both boundary sizes are maintained incrementally, so a full sweep
    costs O(m + n log n) and simultaneously finds the best prefix for
    the node- and edge-expansion objectives. *)

val best_prefix : ?alive:Bitset.t -> Graph.t -> score:float array -> Cut.objective -> Cut.t
(** Best expansion over all prefixes [1 <= k <= alive/2] of the
    ascending-score order, restricted to alive nodes.  Raises
    [Invalid_argument] if fewer than 2 alive nodes. *)

val best_prefix_v :
  ?alive:Bitset.t -> Gview.t -> score:float array -> Cut.objective -> Cut.t
(** {!best_prefix} over any {!Gview.t}; the view is matched once and
    the sweep drives its neighbor iterator. *)

val spectral_cut :
  ?alive:Bitset.t ->
  ?domains:int ->
  ?method_:Spectral.Method.t ->
  Graph.t ->
  Cut.objective ->
  Cut.t
(** Convenience: Fiedler vector + {!best_prefix}.  [domains] and
    [method_] are forwarded to {!Spectral.lambda2} — the matvec
    dominates this path, and before [domains] was threaded through
    here the spectral solve silently serialized inside
    otherwise-parallel callers. *)

val spectral_cut_v :
  ?alive:Bitset.t ->
  ?domains:int ->
  ?method_:Spectral.Method.t ->
  Gview.t ->
  Cut.objective ->
  Cut.t
