open Fn_graph
open Fn_prng
open Fn_faults

let adversaries rng =
  [
    ("random", fun g ~budget -> Adversary.random rng g ~budget);
    ("degree", fun g ~budget -> Adversary.degree_targeted g ~budget);
    ("ball", fun g ~budget -> Adversary.ball_isolation rng g ~budget);
  ]

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let domains = cfg.Workload.domains in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let sizes = if quick then [ 256 ] else [ 256; 512; 1024 ] in
  let ks = if quick then [ 2.0 ] else [ 2.0; 4.0 ] in
  let table =
    Fn_stats.Table.create
      [ "n"; "adversary"; "k"; "f"; "kept"; "size bound"; "exp(H)"; "exp bound"; "ok" ]
  in
  let all_ok = ref true in
  let certs_ok = ref true in
  List.iter
    (fun n ->
      let g, alpha =
        sup (Printf.sprintf "E1.n%d.setup" n) (fun () ->
            let g = Workload.expander rng ~n ~d:6 in
            (g, Workload.node_expansion_estimate ~obs ?domains rng g))
      in
      List.iter
        (fun k ->
          let f = Faultnet.Theorem.thm21_max_faults ~alpha ~n ~k in
          List.iter
            (fun (name, attack) ->
              (* the supervised unit returns row data; table and check
                 mutations stay outside so a retried attempt cannot
                 double-count *)
              let cert_ok, kept, size_bound, exp_measured, exp_bound, ok =
                sup (Printf.sprintf "E1.n%d.k%.0f.%s" n k name) (fun () ->
                    let faults = attack g ~budget:f in
                    let alive = faults.Fault_set.alive in
                    let epsilon = Faultnet.Theorem.thm21_epsilon ~k in
                    let res = Faultnet.Prune.run ~obs ~rng ?domains g ~alive ~alpha ~epsilon in
                    let cert_ok = Faultnet.Prune.verify_certificates g ~alive res in
                    let kept = Bitset.cardinal res.Faultnet.Prune.kept in
                    let size_bound = Faultnet.Theorem.thm21_min_kept ~alpha ~n ~k ~f in
                    let exp_bound = Faultnet.Theorem.thm21_expansion ~alpha ~k in
                    let exp_measured =
                      if kept >= 2 then
                        Workload.node_expansion_estimate ~obs ?domains rng
                          ~alive:res.Faultnet.Prune.kept g
                      else 0.0
                    in
                    let ok =
                      float_of_int kept >= size_bound -. 1e-9
                      && exp_measured >= exp_bound -. 1e-9
                    in
                    (cert_ok, kept, size_bound, exp_measured, exp_bound, ok))
              in
              if not cert_ok then certs_ok := false;
              if not ok then all_ok := false;
              Fn_stats.Table.add_row table
                [
                  string_of_int n;
                  name;
                  Printf.sprintf "%.0f" k;
                  string_of_int f;
                  string_of_int kept;
                  Printf.sprintf "%.1f" size_bound;
                  Printf.sprintf "%.4f" exp_measured;
                  Printf.sprintf "%.4f" exp_bound;
                  Workload.bool_cell ok;
                ])
            (adversaries rng))
        ks)
    sizes;
  {
    Outcome.id = "E1";
    title = "Theorem 2.1: Prune keeps a large, expanding component under adversarial faults";
    table;
    checks =
      [
        ("size and expansion guarantees hold on every row", !all_ok);
        ("all Prune certificates re-verify", !certs_ok);
      ];
    notes =
      [
        "alpha is the heuristic estimate on the pristine graph; expansion(H) is the \
         same estimator on the survivor, so both sides of the comparison share bias";
      ];
  }
