(** E1 — Theorem 2.1: Prune under adversarial faults.

    On random 6-regular expanders, for each adversary (random,
    degree-targeted, ball-isolation) and k in {2, 4}, spend the
    maximum budget f = α·n/(4k) allowed by the theorem, run Prune(1 -
    1/k), and check the two guarantees: |H| >= n - k·f/α and
    node-expansion(H) >= (1 - 1/k)·α (measured by the heuristic
    estimator, with α the estimator's value on the pristine graph). *)

val run : Workload.config -> Outcome.t
