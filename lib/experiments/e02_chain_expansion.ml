open Fn_graph
open Fn_prng

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let domains = cfg.Workload.domains in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let base_n = if quick then 32 else 64 in
  let ks = [ 2; 4; 8; 16 ] in
  let base = sup "E2.base" (fun () -> Workload.expander rng ~n:base_n ~d:4) in
  let table =
    Fn_stats.Table.create [ "k"; "nodes(H)"; "alpha(H)"; "alpha*k"; "prediction 2/k" ]
  in
  let points = ref [] in
  List.iter
    (fun k ->
      let cg, h, alpha =
        sup (Printf.sprintf "E2.k%d" k) (fun () ->
            let cg = Fn_topology.Chain_graph.build base ~k in
            let h = cg.Fn_topology.Chain_graph.graph in
            (cg, h, Workload.node_expansion_estimate ~obs ?domains rng h))
      in
      points := (float_of_int k, alpha) :: !points;
      Fn_stats.Table.add_row table
        [
          string_of_int k;
          string_of_int (Graph.num_nodes h);
          Printf.sprintf "%.4f" alpha;
          Printf.sprintf "%.3f" (alpha *. float_of_int k);
          Printf.sprintf "%.4f" (Fn_topology.Chain_graph.expansion_prediction cg);
        ])
    ks;
  let fit = Fn_stats.Fit.log_log (List.rev !points) in
  let slope_ok = fit.Fn_stats.Fit.slope < -0.55 && fit.Fn_stats.Fit.slope > -1.35 in
  let window_ok =
    List.for_all (fun (k, a) -> a *. k >= 0.2 && a *. k <= 6.0) !points
  in
  {
    Outcome.id = "E2";
    title = "Claim 2.4: chain-replacement graph has expansion Theta(1/k)";
    table;
    checks =
      [
        (Printf.sprintf "log-log slope %.2f is within [-1.35, -0.55]" fit.Fn_stats.Fit.slope,
         slope_ok);
        ("alpha*k stays in a constant window [0.2, 6.0]", window_ok);
      ];
    notes = [ Printf.sprintf "base: random 4-regular expander on %d nodes" base_n ];
  }
