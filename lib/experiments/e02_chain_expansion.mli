(** E2 — Claim 2.4: the chain-replacement graph H(G, k) has node
    expansion Θ(1/k).

    Builds H(G, k) over a random 4-regular base for a ladder of chain
    lengths and checks that (measured expansion)·k stays within a
    constant window, i.e. the log-log slope of expansion vs k is ≈ -1. *)

val run : Workload.config -> Outcome.t
