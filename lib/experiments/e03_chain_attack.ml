open Fn_graph
open Fn_prng
open Fn_faults

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let base_n = if quick then 32 else 64 in
  let d = 4 in
  let k = 8 in
  let base = sup "E3.base" (fun () -> Workload.expander rng ~n:base_n ~d) in
  let cg = Fn_topology.Chain_graph.build base ~k in
  let h = cg.Fn_topology.Chain_graph.graph in
  let n = Graph.num_nodes h in
  let centers = Fn_topology.Chain_graph.chain_centers cg in
  let m = Array.length centers in
  let fractions = [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
  let table =
    Fn_stats.Table.create
      [ "budget f"; "f/n"; "gamma chain-attack"; "gamma random"; "largest comp" ]
  in
  let final_gamma = ref 1.0 in
  List.iter
    (fun frac ->
      let budget = int_of_float (Float.round (frac *. float_of_int m)) in
      let gamma_attack, gamma_random, largest =
        sup (Printf.sprintf "E3.f%.2f" frac) (fun () ->
            let attack = Adversary.targets h ~targets:centers ~budget in
            let gamma_attack = Workload.gamma_of_alive h attack.Fault_set.alive in
            let random = Adversary.random rng h ~budget in
            let gamma_random = Workload.gamma_of_alive h random.Fault_set.alive in
            let comps = Components.compute ~alive:attack.Fault_set.alive h in
            (gamma_attack, gamma_random, Components.largest_size comps))
      in
      if frac = 1.0 then final_gamma := gamma_attack;
      Fn_stats.Table.add_row table
        [
          string_of_int budget;
          Printf.sprintf "%.4f" (float_of_int budget /. float_of_int n);
          Printf.sprintf "%.4f" gamma_attack;
          Printf.sprintf "%.4f" gamma_random;
          string_of_int largest;
        ])
    fractions;
  let bound = Faultnet.Theorem.thm23_component_bound ~delta:d ~k in
  let largest, shattered, random_resilient =
    sup "E3.verdict" (fun () ->
        let full_attack = Adversary.targets h ~targets:centers ~budget:m in
        let comps = Components.compute ~alive:full_attack.Fault_set.alive h in
        let largest = Components.largest_size comps in
        let random = Adversary.random rng h ~budget:m in
        let random_resilient =
          Workload.gamma_of_alive h random.Fault_set.alive > 2.0 *. !final_gamma
        in
        (largest, largest <= bound, random_resilient))
  in
  {
    Outcome.id = "E3";
    title = "Theorem 2.3: chain-center attack shatters H(G,k) with ~alpha*n faults";
    table;
    checks =
      [
        (Printf.sprintf "full attack leaves components <= delta*k/2+1 = %d (got %d)" bound
           largest,
         shattered);
        ("random faults with the same budget leave a much larger component", random_resilient);
      ];
    notes =
      [
        Printf.sprintf "H(G,%d) on %d nodes, %d chain centers; f/n = %.4f ~ alpha" k n m
          (float_of_int m /. float_of_int n);
      ];
  }
