(** E3 — Theorem 2.3: Θ(α·n) adversarial faults shatter the chain
    graph, while the same budget of random faults barely dents the
    base expander.

    Sweeps the chain-center attack budget from 0 to one-per-edge and
    reports the largest-component fraction, against (a) the theorem's
    post-attack component bound δk/2 + 1 at full budget and (b) the
    same number of random faults on the chain graph. *)

val run : Workload.config -> Outcome.t
