open Fn_prng
open Fn_faults

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let sides = if quick then [ 16 ] else [ 16; 24; 32 ] in
  let epsilon = 0.125 in
  let constant_cap = 4.0 in
  let table =
    Fn_stats.Table.create
      [ "side"; "n"; "faults"; "alpha*n"; "budget shape"; "ratio"; "max frag"; "eps*n" ]
  in
  let frags_ok = ref true in
  let budget_ok = ref true in
  List.iter
    (fun side ->
      let n = side * side in
      let faults, max_frag =
        sup (Printf.sprintf "E4.side%d" side) (fun () ->
            let g, _geo = Fn_topology.Mesh.cube ~d:2 ~side in
            let res = Adversary.recursive_cut ~rng g ~epsilon in
            let max_frag =
              match res.Adversary.final_fragments with [] -> 0 | x :: _ -> x
            in
            (Fault_set.count res.Adversary.faults, max_frag))
      in
      let alpha_n = float_of_int n /. float_of_int side in
      let shape = log (1.0 /. epsilon) /. epsilon *. alpha_n in
      let eps_n = epsilon *. float_of_int n in
      if float_of_int max_frag >= eps_n then frags_ok := false;
      if float_of_int faults > constant_cap *. shape then budget_ok := false;
      Fn_stats.Table.add_row table
        [
          string_of_int side;
          string_of_int n;
          string_of_int faults;
          Printf.sprintf "%.0f" alpha_n;
          Printf.sprintf "%.0f" shape;
          Printf.sprintf "%.2f" (float_of_int faults /. alpha_n);
          string_of_int max_frag;
          Printf.sprintf "%.0f" eps_n;
        ])
    sides;
  {
    Outcome.id = "E4";
    title = "Theorem 2.5: recursive min-cut attack shatters uniform-expansion graphs";
    table;
    checks =
      [
        ("every final fragment is below eps*n", !frags_ok);
        ( Printf.sprintf "faults spent <= %.0f x log(1/eps)/eps * alpha(n)*n" constant_cap,
          !budget_ok );
      ];
    notes =
      [
        "alpha(n)*n for the side x side mesh is n/side = side; the 'ratio' column shows \
         faults spent in units of alpha*n";
      ];
  }
