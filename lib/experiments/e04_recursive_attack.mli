(** E4 — Theorem 2.5: graphs of uniform expansion α(·) shatter under
    O(log(1/ε)/ε · α(n) · n) recursive-cut faults.

    Runs the constructive adversary on 2-D meshes (uniform expansion
    Θ(1/side)) and checks (a) every final fragment is below ε·n and
    (b) the number of faults spent stays below the theorem's budget
    shape C·log(1/ε)/ε·α(n)·n for a modest constant C. *)

val run : Workload.config -> Outcome.t
