open Fn_prng
open Fn_faults

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let base_n = if quick then 32 else 64 in
  let d = 4 in
  let k = 32 in
  let trials = if quick then 5 else 10 in
  let base, h =
    sup "E5.build" (fun () ->
        let base = Workload.expander rng ~n:base_n ~d in
        let cg = Fn_topology.Chain_graph.build base ~k in
        (base, cg.Fn_topology.Chain_graph.graph))
  in
  let p_star = Faultnet.Theorem.thm31_fault_probability ~delta:d ~k in
  let multiples = [ 0.05; 0.1; 0.25; 0.5; 1.0 ] in
  let table =
    Fn_stats.Table.create [ "p/p*"; "p"; "gamma chain (mean)"; "gamma expander (mean)" ]
  in
  let low_p_gamma = ref 0.0 in
  let collapse = ref 1.0 in
  let control = ref 0.0 in
  List.iter
    (fun mult ->
      let p = min 1.0 (mult *. p_star) in
      let mc, mb =
        sup (Printf.sprintf "E5.p%.2f" mult) (fun () ->
            let gammas_chain =
              List.init trials (fun _ ->
                  let f = Random_faults.nodes_iid rng h p in
                  Workload.gamma_of_alive h f.Fault_set.alive)
            in
            let gammas_base =
              List.init trials (fun _ ->
                  let f = Random_faults.nodes_iid rng base p in
                  Workload.gamma_of_alive base f.Fault_set.alive)
            in
            (Workload.mean_of gammas_chain, Workload.mean_of gammas_base))
      in
      if mult = 0.05 then low_p_gamma := mc;
      if mult = 0.5 then collapse := mc;
      if mult = 1.0 then control := mb;
      Fn_stats.Table.add_row table
        [
          Printf.sprintf "%.2f" mult;
          Printf.sprintf "%.4f" p;
          Printf.sprintf "%.4f" mc;
          Printf.sprintf "%.4f" mb;
        ])
    multiples;
  {
    Outcome.id = "E5";
    title = "Theorem 3.1: p = Theta(alpha) random faults disintegrate the chain graph";
    table;
    checks =
      [
        (Printf.sprintf "chain graph survives far below p* (gamma = %.3f > 0.4 at p*/20)"
           !low_p_gamma,
         !low_p_gamma > 0.4);
        (Printf.sprintf "chain graph collapses by p*/2 (gamma = %.3f < 0.2)" !collapse,
         !collapse < 0.2);
        (Printf.sprintf "base expander survives the full p* (gamma = %.3f > 0.6)" !control,
         !control > 0.6);
      ];
    notes =
      [
        Printf.sprintf
          "p* = 4 ln(delta)/k = %.4f; chain expansion ~ 2/k = %.4f — the same order, so \
           Theta(alpha) random faults suffice, matching Theorem 3.1"
          p_star (2.0 /. float_of_int k);
      ];
  }
