(** E5 — Theorem 3.1: random faults with p = Θ(α) disintegrate the
    chain-replacement graph, so expansion alone cannot predict
    random-fault resilience.

    Sweeps the fault probability in multiples of the proof's
    p* = 4·ln δ / k on H(G, k) and, as a control, applies the same p
    to the base expander: the chain graph's largest component
    collapses while the expander's stays near 1 - p. *)

val run : Workload.config -> Outcome.t
