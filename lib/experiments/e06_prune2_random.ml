open Fn_graph
open Fn_prng
open Fn_faults

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let domains = cfg.Workload.domains in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let configs = if quick then [ (2, 16) ] else [ (2, 16); (3, 7) ] in
  let table =
    Fn_stats.Table.create
      [ "d"; "n"; "p"; "p/p_thy"; "kept"; "n/2"; "exp(H)"; "eps*alpha_e"; "holds" ]
  in
  let theory_ok = ref true in
  let certs_ok = ref true in
  List.iter
    (fun (d, side) ->
      let g, _geo = Fn_topology.Torus.cube ~d ~side in
      let n = Graph.num_nodes g in
      let delta = Graph.max_degree g in
      let sigma = Faultnet.Theorem.thm36_mesh_span in
      let p_thy = Faultnet.Theorem.thm34_max_fault_probability ~delta ~sigma in
      let epsilon = Faultnet.Theorem.thm34_max_epsilon ~delta in
      let alpha_e =
        sup (Printf.sprintf "E6.d%d.alpha" d) (fun () ->
            Workload.edge_expansion_estimate ~obs ?domains rng g)
      in
      let ps = [ p_thy; 0.01; 0.05; 0.10; 0.20 ] in
      List.iter
        (fun p ->
          let cert_ok, kept, target, exp_measured, exp_target, holds =
            sup (Printf.sprintf "E6.d%d.p%.2e" d p) (fun () ->
                let faults = Random_faults.nodes_iid rng g p in
                let res =
                  Faultnet.Prune2.run ~obs ~rng ?domains g ~alive:faults.Fault_set.alive ~alpha_e
                    ~epsilon
                in
                let cert_ok =
                  Faultnet.Prune2.verify_certificates g ~alive:faults.Fault_set.alive res
                in
                let kept = Bitset.cardinal res.Faultnet.Prune2.kept in
                let target = Faultnet.Theorem.thm34_guaranteed_size ~n in
                let exp_target = epsilon *. alpha_e in
                let exp_measured =
                  if kept >= 2 then
                    Workload.edge_expansion_estimate ~obs ?domains rng
                      ~alive:res.Faultnet.Prune2.kept g
                  else 0.0
                in
                let holds =
                  float_of_int kept >= target && exp_measured >= exp_target -. 1e-9
                in
                (cert_ok, kept, target, exp_measured, exp_target, holds))
          in
          if not cert_ok then certs_ok := false;
          if p <= p_thy +. 1e-12 && not holds then theory_ok := false;
          Fn_stats.Table.add_row table
            [
              string_of_int d;
              string_of_int n;
              Printf.sprintf "%.2e" p;
              Printf.sprintf "%.1f" (p /. p_thy);
              string_of_int kept;
              Printf.sprintf "%.0f" target;
              Printf.sprintf "%.4f" exp_measured;
              Printf.sprintf "%.4f" exp_target;
              Workload.bool_cell holds;
            ])
        ps)
    configs;
  {
    Outcome.id = "E6";
    title = "Theorem 3.4: Prune2 keeps n/2 nodes with edge expansion eps*alpha_e";
    table;
    checks =
      [
        ("guarantee holds at the theoretical fault probability", !theory_ok);
        ("all Prune2 certificates re-verify", !certs_ok);
      ];
    notes =
      [
        "p_thy = 1/(2e*delta^(4*sigma)) with sigma = 2 (Theorem 3.6); rows with p >> p_thy \
         probe how conservative the bound is";
      ];
  }
