(** E6 — Theorem 3.4: Prune2 under random faults.

    On 2-D and 3-D tori (degree δ = 2d, span σ = 2 by Theorem 3.6),
    sweeps the fault probability from the theorem's admissible bound
    p <= 1/(2e·δ^{4σ}) up through realistic values and checks the
    guarantee |H| >= n/2 with edge expansion >= ε·α_e (ε = 1/(2δ)).
    The theoretical p is microscopically conservative, so the
    interesting measurement is how far beyond it the guarantee keeps
    holding — the experiment reports that crossover. *)

val run : Workload.config -> Outcome.t
