open Fn_prng

let dims_label dims = String.concat "x" (Array.to_list (Array.map string_of_int dims))

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let exact_meshes =
    if quick then [ [| 3; 3 |]; [| 2; 2; 2 |] ]
    else [ [| 3; 3 |]; [| 4; 4 |]; [| 3; 4 |]; [| 2; 2; 2 |]; [| 2; 3; 3 |] ]
  in
  let sampled_meshes =
    if quick then [ ([| 8; 8 |], 50) ] else [ ([| 8; 8 |], 150); ([| 16; 16 |], 100); ([| 4; 4; 4 |], 100) ]
  in
  let table =
    Fn_stats.Table.create [ "mesh"; "mode"; "sets"; "span/max ratio"; "bound"; "ok" ]
  in
  let exact_ok = ref true in
  let construction_ok = ref true in
  List.iter
    (fun dims ->
      let est =
        sup (Printf.sprintf "E7.exact.%s" (dims_label dims)) (fun () ->
            let g, _geo = Fn_topology.Mesh.graph dims in
            Faultnet.Span.exact g)
      in
      let ok = est.Faultnet.Span.span <= 2.0 +. 1e-9 in
      if not ok then exact_ok := false;
      Fn_stats.Table.add_row table
        [
          dims_label dims;
          (if est.Faultnet.Span.all_exact then "exact" else "exact(2-approx trees)");
          string_of_int est.Faultnet.Span.sets_examined;
          Printf.sprintf "%.4f" est.Faultnet.Span.span;
          "2";
          Workload.bool_cell ok;
        ])
    exact_meshes;
  List.iter
    (fun (dims, samples) ->
      (* local accumulators live inside the supervised closure: a
         retried attempt starts them fresh *)
      let worst, checked, certs_ok =
        sup (Printf.sprintf "E7.sampled.%s" (dims_label dims)) (fun () ->
            let g, geo = Fn_topology.Mesh.graph dims in
            let worst = ref 0.0 in
            let checked = ref 0 in
            let certs_ok = ref true in
            let n = Fn_graph.Graph.num_nodes g in
            for _ = 1 to samples do
              let target_size = 1 + Rng.int rng (n / 2) in
              match Faultnet.Compact.random_compact rng g ~target_size with
              | None -> ()
              | Some u -> (
                match Faultnet.Mesh_span.certify g geo u with
                | None -> ()
                | Some c ->
                  incr checked;
                  if not c.Faultnet.Mesh_span.virtual_connected then certs_ok := false;
                  if
                    c.Faultnet.Mesh_span.tree_edges
                    > Faultnet.Mesh_span.spanning_tree_bound
                        (Fn_graph.Bitset.cardinal c.Faultnet.Mesh_span.boundary)
                  then certs_ok := false;
                  if c.Faultnet.Mesh_span.ratio > !worst then
                    worst := c.Faultnet.Mesh_span.ratio)
            done;
            (!worst, !checked, !certs_ok))
      in
      if not certs_ok then construction_ok := false;
      let ok = worst <= 2.0 +. 1e-9 in
      if not ok then construction_ok := false;
      Fn_stats.Table.add_row table
        [
          dims_label dims;
          "sampled+certified";
          string_of_int checked;
          Printf.sprintf "%.4f" worst;
          "2";
          Workload.bool_cell ok;
        ])
    sampled_meshes;
  (* tori: Theorem 3.6 is proven for meshes, but E6/E9 apply sigma = 2
     to tori; sample the torus span generically (Steiner-based) as
     supporting evidence *)
  let torus_ok = ref true in
  List.iter
    (fun dims ->
      let est =
        sup (Printf.sprintf "E7.torus.%s" (dims_label dims)) (fun () ->
            let g, _ = Fn_topology.Torus.graph dims in
            Faultnet.Span.sample rng ~samples:(if quick then 40 else 120) g)
      in
      if est.Faultnet.Span.span > 2.5 then torus_ok := false;
      Fn_stats.Table.add_row table
        [
          dims_label dims ^ " torus";
          "sampled (generic)";
          string_of_int est.Faultnet.Span.sets_examined;
          Printf.sprintf "%.4f" est.Faultnet.Span.span;
          "~2";
          Workload.bool_cell (est.Faultnet.Span.span <= 2.5);
        ])
    (if quick then [ [| 6; 6 |] ] else [ [| 8; 8 |]; [| 4; 4; 4 |] ]);
  {
    Outcome.id = "E7";
    title = "Theorem 3.6: d-dimensional meshes have span <= 2";
    table;
    checks =
      [
        ("exhaustive span <= 2 on all small meshes", !exact_ok);
        ( "virtual boundary graph connected (Lemma 3.7) and tree <= 2(|B|-1) on every sample",
          !construction_ok );
        ("sampled torus span stays near 2 (supports using sigma = 2 for tori)", !torus_ok);
      ];
    notes =
      [
        "torus rows use the generic Steiner-based span sampler: Theorem 3.6's virtual-edge \
         argument is stated for meshes, so the torus value is evidence, not a theorem";
      ];
  }
