(** E7 — Theorem 3.6: the d-dimensional mesh has span <= 2.

    Two regimes: exhaustive enumeration of every compact set on small
    meshes (exact span, exact Steiner trees where the boundary is
    small), and Monte-Carlo compact sets on larger meshes pushed
    through the explicit virtual-edge construction of the proof —
    which must produce a connected (B, E_v) (Lemma 3.7) and a tree of
    at most 2(|B| - 1) mesh edges, every single time. *)

val run : Workload.config -> Outcome.t
