open Fn_prng
open Fn_percolation

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let runs = if quick then 8 else 32 in
  let n_complete = if quick then 128 else 256 in
  let side = if quick then 32 else 64 in
  let cube_dim = if quick then 8 else 10 in
  let d_sparse = 4 in
  let n_sparse = if quick then 512 else 2048 in
  let mesh, _ = Fn_topology.Mesh.cube ~d:2 ~side in
  let families =
    [
      ( "complete K_n",
        Fn_topology.Basic.complete n_complete,
        1.0 /. float_of_int (n_complete - 1),
        "1/(n-1)" );
      ( "G(n, dn/2 edges)",
        Fn_topology.Random_graphs.gnm rng n_sparse (d_sparse * n_sparse / 2),
        1.0 /. float_of_int d_sparse,
        "1/d" );
      ("2-D mesh", mesh, 0.5, "1/2 (Kesten)");
      ( "hypercube",
        Fn_topology.Hypercube.graph cube_dim,
        1.0 /. float_of_int cube_dim,
        "1/dim" );
    ]
  in
  let table =
    Fn_stats.Table.create [ "family"; "nodes"; "p measured"; "p theory"; "ratio"; "theory" ]
  in
  let all_ok = ref true in
  List.iter
    (fun (name, g, p_theory, formula) ->
      let r =
        sup (Printf.sprintf "E8.%s" name) (fun () ->
            Threshold.estimate ~obs ?domains:cfg.Workload.domains ~runs ~rng
              Threshold.Bond g)
      in
      let ratio = r.Threshold.p_star /. p_theory in
      (* the gamma-level constant and finite size shift the crossing;
         a factor-2.5 window separates the families cleanly (their
         thresholds differ by orders of magnitude) *)
      let ok = ratio > 0.4 && ratio < 2.5 in
      if not ok then all_ok := false;
      Fn_stats.Table.add_row table
        [
          name;
          string_of_int (Fn_graph.Graph.num_nodes g);
          Printf.sprintf "%.4f" r.Threshold.p_star;
          Printf.sprintf "%.4f" p_theory;
          Printf.sprintf "%.2f" ratio;
          formula;
        ])
    families;
  {
    Outcome.id = "E8";
    title = "Section 1.1: classical bond-percolation thresholds (calibration)";
    table;
    checks = [ ("every measured threshold within [0.4, 2.5] x theory", !all_ok) ];
    notes =
      [
        Printf.sprintf "%d Newman-Ziff curves per family; crossing level gamma = 0.4" runs;
      ];
  }
