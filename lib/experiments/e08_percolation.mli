(** E8 — Section 1.1 calibration: classical percolation thresholds.

    Reproduces the table of critical probabilities the paper quotes:
    complete graph 1/(n-1) (Erdős–Rényi, up to the γ-level constant),
    sparse random graph with d·n/2 edges → 1/d, 2-D mesh bond → 1/2
    (Kesten), hypercube bond → 1/dim (Ajtai–Komlós–Szemerédi).  The
    check is that measured crossings land within a factor window of
    the theory values — finite-size effects and the γ-level constant
    preclude equality. *)

val run : Workload.config -> Outcome.t
