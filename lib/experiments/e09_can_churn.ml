open Fn_graph
open Fn_prng
open Fn_faults

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let domains = cfg.Workload.domains in
  let online = cfg.Workload.online in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let n = if quick then 128 else 256 in
  let dims = if quick then [ 2 ] else [ 2; 3; 4 ] in
  let p = 0.05 in
  let table =
    Fn_stats.Table.create
      [
        "d"; "overlay"; "nodes"; "max deg"; "alpha_e"; "p"; "kept"; "exp(H)"; "exp ratio"; "p_thy";
      ]
  in
  let all_kept = ref true in
  let ratio_ok = ref true in
  let audits_ok = ref true in
  let eval name g d =
    let nn = Graph.num_nodes g in
    let delta = Graph.max_degree g in
    let alpha_e, kept, exp_h, ratio =
      sup (Printf.sprintf "E9.d%d.%s" d name) (fun () ->
          let alpha_e = Workload.edge_expansion_estimate ~obs ?domains rng g in
          let epsilon = min (Faultnet.Theorem.thm34_max_epsilon ~delta) 0.45 in
          let faults = Random_faults.nodes_iid rng g p in
          let kept_mask =
            if online then begin
              (* the whole fault set arrives as one online batch; the
                 survivor is the engine's incremental cascade, checked
                 against the from-scratch audit *)
              let eng =
                Fn_online.Engine.create
                  ~cfg:
                    {
                      Fn_online.Engine.seed;
                      radius = 2;
                      alpha = alpha_e;
                      epsilon;
                      mode = Fn_online.Warm.Exact;
                      audit_every = 0;
                      max_dirty_frac = 1.0;
                      postmortem = None;
                      domains;
                      obs;
                    }
                  (Gview.Csr g)
              in
              let batch =
                List.rev
                  (Bitset.fold
                     (fun v acc -> Fn_online.Event.Fault v :: acc)
                     faults.Fault_set.faulty [])
              in
              (match Fn_online.Engine.apply eng batch with
              | Ok _ -> ()
              | Error e ->
                failwith ("E9 online: batch rejected: " ^ Churn.error_to_string e));
              let kept_mask = (Fn_online.Engine.result eng).Faultnet.Prune.kept in
              let rep = Fn_online.Engine.audit eng in
              if rep.Fn_online.Engine.faults <> 0 then audits_ok := false;
              kept_mask
            end
            else
              (Faultnet.Prune2.run ~obs ~rng ?domains g ~alive:faults.Fault_set.alive
                 ~alpha_e ~epsilon)
                .Faultnet.Prune2.kept
          in
          let kept = Bitset.cardinal kept_mask in
          let exp_h =
            if kept >= 2 then
              Workload.edge_expansion_estimate ~obs ?domains rng ~alive:kept_mask g
            else 0.0
          in
          (alpha_e, kept, exp_h, exp_h /. alpha_e))
    in
    if 2 * kept < nn then all_kept := false;
    if ratio < 0.3 then ratio_ok := false;
    Fn_stats.Table.add_row table
      [
        string_of_int d;
        name;
        string_of_int nn;
        string_of_int delta;
        Printf.sprintf "%.4f" alpha_e;
        Printf.sprintf "%.2f" p;
        string_of_int kept;
        Printf.sprintf "%.4f" exp_h;
        Printf.sprintf "%.2f" ratio;
        Printf.sprintf "%.1e" (Faultnet.Theorem.mesh_fault_budget ~d);
      ]
  in
  List.iter
    (fun d ->
      let can = Fn_topology.Can.build rng ~d ~n in
      eval "CAN" (Fn_topology.Can.graph can) d;
      let side = int_of_float (Float.round (Float.pow (float_of_int n) (1.0 /. float_of_int d))) in
      let torus, _ = Fn_topology.Torus.cube ~d ~side:(max 3 side) in
      eval "torus" torus d)
    dims;
  let checks =
    [
      ("every survivor keeps >= half the overlay", !all_kept);
      ("survivor edge expansion stays >= 0.3 x fault-free expansion", !ratio_ok);
    ]
  in
  let checks =
    if online then
      checks
      @ [ ("(online) incremental certificates equal from-scratch audits", !audits_ok) ]
    else checks
  in
  let notes =
    [
      "p = 0.05 is orders of magnitude above the worst-case Theorem 3.4 budget (p_thy \
       column); the theorem is conservative, the phenomenon is robust";
    ]
  in
  let notes =
    if online then
      notes
      @ [
          "online mode: survivors come from the incremental Fn_online.Engine cascade \
           (radius-2 ball certificates), the fault set applied as one streamed batch";
        ]
    else notes
  in
  {
    Outcome.id = "E9";
    title = "Conclusion: CAN overlays keep size and expansion under churn (like meshes)";
    table;
    checks;
    notes;
  }
