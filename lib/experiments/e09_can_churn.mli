(** E9 — Conclusion: CAN overlays tolerate a fault probability
    "inversely polynomial in d" without losing their expansion.

    Grows CAN overlays of several dimensions, applies node faults at
    probabilities far above the worst-case Theorem 3.4 budget, runs
    Prune2 on the survivors, and reports survivor size and edge
    expansion relative to the fault-free overlay.  The d-dimensional
    torus of matching size is reported alongside, confirming the
    "CAN ≈ mesh in steady state" premise. *)

val run : Workload.config -> Outcome.t
