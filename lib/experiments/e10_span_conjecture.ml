open Fn_prng

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let samples = if quick then 60 else 200 in
  let families =
    if quick then
      [
        ("butterfly", [ ("k=3", Fn_topology.Butterfly.unwrapped 3) ]);
        ("de Bruijn", [ ("k=6", Fn_topology.Debruijn.graph 6) ]);
        ("shuffle-exchange", [ ("k=6", Fn_topology.Shuffle_exchange.graph 6) ]);
      ]
    else
      [
        ( "butterfly",
          [
            ("k=3", Fn_topology.Butterfly.unwrapped 3);
            ("k=4", Fn_topology.Butterfly.unwrapped 4);
            ("k=5", Fn_topology.Butterfly.unwrapped 5);
          ] );
        ( "de Bruijn",
          [
            ("k=6", Fn_topology.Debruijn.graph 6);
            ("k=8", Fn_topology.Debruijn.graph 8);
            ("k=10", Fn_topology.Debruijn.graph 10);
          ] );
        ( "shuffle-exchange",
          [
            ("k=6", Fn_topology.Shuffle_exchange.graph 6);
            ("k=8", Fn_topology.Shuffle_exchange.graph 8);
            ("k=10", Fn_topology.Shuffle_exchange.graph 10);
          ] );
      ]
  in
  let table =
    Fn_stats.Table.create [ "family"; "size"; "nodes"; "sets"; "max ratio"; "mesh ref (<=2)" ]
  in
  let bounded = ref true in
  let family_max = Hashtbl.create 8 in
  List.iter
    (fun (family, instances) ->
      List.iter
        (fun (label, g) ->
          let est =
            sup (Printf.sprintf "E10.%s.%s" family label) (fun () ->
                Faultnet.Span.sample rng ~samples g)
          in
          let prev = try Hashtbl.find family_max family with Not_found -> 0.0 in
          Hashtbl.replace family_max family (max prev est.Faultnet.Span.span);
          if est.Faultnet.Span.span > 8.0 then bounded := false;
          Fn_stats.Table.add_row table
            [
              family;
              label;
              string_of_int (Fn_graph.Graph.num_nodes g);
              string_of_int est.Faultnet.Span.sets_examined;
              Printf.sprintf "%.3f" est.Faultnet.Span.span;
              "2.000";
            ])
        instances)
    families;
  {
    Outcome.id = "E10";
    title = "Open problem: sampled span of butterfly / de Bruijn / shuffle-exchange";
    table;
    checks =
      [
        ("sampled span stays bounded (< 8) across sizes in every family", !bounded);
      ];
    notes =
      [
        "sampled ratios are lower estimates of the true span (random compact sets, \
         2-approximate Steiner trees above 9 terminals); flat-in-size maxima support \
         the O(1)-span conjecture";
      ];
  }
