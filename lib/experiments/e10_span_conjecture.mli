(** E10 — Open problem: the paper conjectures the butterfly,
    shuffle-exchange and de Bruijn networks have span O(1).

    Monte-Carlo evidence: sample compact sets across sizes in each
    family and track the largest |P(U)|/|Γ(U)| ratio seen.  A bounded,
    non-growing maximum across sizes supports the conjecture (this is
    a lower estimate of the true span — supporting, not proving). *)

val run : Workload.config -> Outcome.t
