open Fn_graph
open Fn_prng
open Fn_faults
open Fn_routing

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let rng = Rng.create seed in
  let n_exp = if quick then 256 else 512 in
  let base_n = if quick then 32 else 64 in
  let side = if quick then 12 else 16 in
  let fault_frac = 0.10 in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let expander = sup "E11.expander" (fun () -> Workload.expander rng ~n:n_exp ~d:6) in
  let chain =
    sup "E11.chain" (fun () ->
        (Fn_topology.Chain_graph.build (Workload.expander rng ~n:base_n ~d:4) ~k:8)
          .Fn_topology.Chain_graph.graph)
  in
  let mesh, _ = Fn_topology.Mesh.cube ~d:2 ~side in
  let table =
    Fn_stats.Table.create
      [ "network"; "n"; "faults"; "routable"; "stretch"; "congestion"; "makespan"; "ideal" ]
  in
  let results = Hashtbl.create 8 in
  let eval name g =
    let n = Graph.num_nodes g in
    let budget = int_of_float (fault_frac *. float_of_int n) in
    let routable, stretch, faulty_congestion, makespan, ideal_makespan =
      sup (Printf.sprintf "E11.%s" name) (fun () ->
          let faults = Random_faults.nodes_iid rng g fault_frac in
          let alive = faults.Fault_set.alive in
          (* the demand lives on the surviving nodes, so routability
             measures fragmentation rather than the obvious loss of
             dead endpoints *)
          let demand = Demand.permutation rng ~alive g in
          let reference = Route.shortest g demand in
          let ideal = Sim.run g reference in
          (* route on the largest surviving component *)
          let survivor = Components.largest_members ~alive g in
          let faulty = Route.shortest ~alive:survivor g demand in
          let sim = Sim.run g faulty in
          ( Route.routable_fraction faulty,
            Route.stretch ~reference faulty,
            Route.edge_congestion faulty,
            sim.Sim.makespan,
            ideal.Sim.makespan ))
    in
    Hashtbl.replace results name routable;
    Fn_stats.Table.add_row table
      [
        name;
        string_of_int n;
        string_of_int budget;
        Printf.sprintf "%.3f" routable;
        (if Float.is_nan stretch then "n/a" else Printf.sprintf "%.3f" stretch);
        string_of_int faulty_congestion;
        string_of_int makespan;
        string_of_int ideal_makespan;
      ]
  in
  eval "expander d=6" expander;
  eval "mesh 2-D" mesh;
  eval "chain H(G,8)" chain;
  let get name = try Hashtbl.find results name with Not_found -> 0.0 in
  let expander_ok = get "expander d=6" > 0.95 in
  let ordering_ok = get "expander d=6" > get "chain H(G,8)" in
  {
    Outcome.id = "E11";
    title = "Motivation: surviving bandwidth — routing a permutation through faulty networks";
    table;
    checks =
      [
        ("expander routes > 95% of the surviving permutation after 10% faults", expander_ok);
        ("expander beats the chain graph on routability", ordering_ok);
      ];
    notes =
      [
        "demand is a permutation of the surviving nodes; routable counts pairs connected \
         inside the largest surviving component; stretch compares against fault-free paths";
      ];
  }
