(** E11 — the paper's motivation, §1.3: expansion predicts surviving
    *bandwidth*, not just connectivity.

    Routes a random-permutation workload on the pruned survivor of
    three networks under the same relative fault budget: an expander
    (Theorem 2.1 regime: everything keeps working), the
    chain-replacement graph (Theorem 2.3 regime: routability
    collapses), and a mesh (in between).  Reported: routable fraction,
    mean stretch vs the fault-free routing, static congestion, and the
    store-and-forward makespan. *)

val run : Workload.config -> Outcome.t
