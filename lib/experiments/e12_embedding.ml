open Fn_graph
open Fn_prng
open Fn_faults

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let domains = cfg.Workload.domains in
  let rng = Rng.create seed in
  let side = if quick then 16 else 24 in
  let g, _ = Fn_topology.Mesh.cube ~d:2 ~side in
  let n = Graph.num_nodes g in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let alpha_e = sup "E12.alpha" (fun () -> Workload.edge_expansion_estimate ~obs ?domains rng g) in
  let epsilon = 0.125 in
  let ps = [ 0.01; 0.05; 0.10; 0.15 ] in
  let table =
    Fn_stats.Table.create
      [ "p"; "kept"; "load"; "congestion"; "dilation"; "LMR bound"; "unmapped"; "unrouted" ]
  in
  let flat_ok = ref true in
  List.iter
    (fun p ->
      let kept, emb, bound =
        sup (Printf.sprintf "E12.p%.2f" p) (fun () ->
            let faults = Random_faults.nodes_iid rng g p in
            let res =
              Faultnet.Prune2.run ~obs ~rng ?domains g ~alive:faults.Fault_set.alive ~alpha_e
                ~epsilon
            in
            let kept = res.Faultnet.Prune2.kept in
            let emb = Faultnet.Embedding.self_embed g ~kept in
            (kept, emb, Faultnet.Embedding.slowdown_bound emb))
      in
      (* "constant slowdown" shape: the LMR bound stays below a fixed
         cap across the whole sweep (cap chosen with slack over the
         p=0.15 value we observe, ~side/2) *)
      if p <= 0.10 && bound > side * 2 then flat_ok := false;
      Fn_stats.Table.add_row table
        [
          Printf.sprintf "%.2f" p;
          string_of_int (Bitset.cardinal kept);
          string_of_int emb.Faultnet.Embedding.load;
          string_of_int emb.Faultnet.Embedding.congestion;
          string_of_int emb.Faultnet.Embedding.dilation;
          string_of_int bound;
          string_of_int emb.Faultnet.Embedding.unmapped;
          string_of_int emb.Faultnet.Embedding.unrouted;
        ])
    ps;
  {
    Outcome.id = "E12";
    title = "Sec 1.2: self-embedding the mesh into its pruned survivor (LMR slowdown)";
    table;
    checks =
      [
        (Printf.sprintf
           "slowdown bound stays below 2*side = %d for p <= 0.10 (Cole-Maggs-Sitaraman shape)"
           (2 * side),
         !flat_ok);
      ];
    notes =
      [
        Printf.sprintf "mesh %dx%d, n = %d; LMR: slowdown = O(load + congestion + dilation)"
          side side n;
      ];
  }
