(** E12 — Section 1.2: emulating the fault-free network on the faulty
    one.

    Self-embeds a 2-D mesh into its pruned survivor across a sweep of
    fault probabilities and reports the Leighton–Maggs–Rao triple
    (load, congestion, dilation) whose sum bounds the emulation
    slowdown.  Cole–Maggs–Sitaraman claim the mesh supports constant
    slowdown for constant p; the check here is the empirical shape:
    the bound stays flat and small for p well past the paper's
    worst-case budget. *)

val run : Workload.config -> Outcome.t
