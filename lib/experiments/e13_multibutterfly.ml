open Fn_graph
open Fn_prng
open Fn_faults

(* Forward (level-monotone) reachability: butterfly-style networks
   route packets strictly down the levels, so only paths whose level
   increases by one per hop count — this is exactly where the plain
   butterfly is fragile (one node per input-output path) and the
   multibutterfly's splitter expansion pays off. *)
let forward_reachable g alive ~rows input =
  let n = Graph.num_nodes g in
  let seen = Bitset.create n in
  let queue = Queue.create () in
  Bitset.add seen input;
  Queue.add input queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let next_level = (u / rows) + 1 in
    Graph.iter_neighbors g u (fun w ->
        if w / rows = next_level && Bitset.mem alive w && not (Bitset.mem seen w) then begin
          Bitset.add seen w;
          Queue.add w queue
        end)
  done;
  seen

(* Fraction of alive inputs that can still reach at least half of the
   alive outputs along level-monotone paths. *)
let serving_fraction g alive ~rows inputs outputs =
  let alive_outputs =
    Array.to_list outputs |> List.filter (fun v -> Bitset.mem alive v)
  in
  let total_outputs = List.length alive_outputs in
  if total_outputs = 0 then 0.0
  else begin
    let good = ref 0 and alive_inputs = ref 0 in
    Array.iter
      (fun input ->
        if Bitset.mem alive input then begin
          incr alive_inputs;
          let reach = forward_reachable g alive ~rows input in
          let count =
            List.fold_left
              (fun acc o -> if Bitset.mem reach o then acc + 1 else acc)
              0 alive_outputs
          in
          if 2 * count >= total_outputs then incr good
        end)
      inputs;
    if !alive_inputs = 0 then 0.0 else float_of_int !good /. float_of_int !alive_inputs
  end

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let rng = Rng.create seed in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let k = if quick then 5 else 6 in
  let trials = if quick then 3 else 5 in
  let bf = Fn_topology.Butterfly.unwrapped k in
  let mbf = sup "E13.build" (fun () -> Fn_topology.Multibutterfly.build rng ~k ~multiplicity:2) in
  let n = Graph.num_nodes bf in
  let rows = 1 lsl k in
  let inputs = Array.init rows (fun r -> Fn_topology.Butterfly.node ~k ~level:0 ~row:r) in
  let outputs = Array.init rows (fun r -> Fn_topology.Butterfly.node ~k ~level:k ~row:r) in
  let fault_fracs = [ 0.05; 0.10; 0.20 ] in
  let table =
    Fn_stats.Table.create [ "faults"; "f/n"; "butterfly serves"; "multibutterfly serves" ]
  in
  let separation_ok = ref true in
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int n) in
      let measure g =
        let vals =
          List.init trials (fun _ ->
              let faults = Random_faults.nodes_exact rng g budget in
              serving_fraction g faults.Fault_set.alive ~rows inputs outputs)
        in
        Workload.mean_of vals
      in
      let b, m =
        sup (Printf.sprintf "E13.f%.2f" frac) (fun () ->
            let b = measure bf in
            (b, measure mbf.Fn_topology.Multibutterfly.graph))
      in
      if frac >= 0.10 && m < b +. 0.02 then separation_ok := false;
      Fn_stats.Table.add_row table
        [
          string_of_int budget;
          Printf.sprintf "%.2f" frac;
          Printf.sprintf "%.3f" b;
          Printf.sprintf "%.3f" m;
        ])
    fault_fracs;
  {
    Outcome.id = "E13";
    title = "Sec 1.1: butterfly vs multibutterfly input-output service under faults";
    table;
    checks =
      [
        ( "multibutterfly clearly beats the butterfly at 10%+ faults",
          !separation_ok );
      ];
    notes =
      [
        Printf.sprintf
          "k = %d (%d nodes); 'serves' = fraction of alive inputs reaching >= half the \
           alive outputs; multiplicity-2 splitters give the multibutterfly its expansion"
          k n;
      ];
  }
