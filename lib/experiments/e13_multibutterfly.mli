(** E13 — Section 1.1 background: butterflies vs multibutterflies
    under faults (Leighton–Maggs; Upfal).

    The classical results the paper builds on: a multibutterfly with f
    worst-case faults keeps n - O(f) inputs connected to n - O(f)
    outputs, while the plain butterfly is far more fragile because
    every input-output pair is served by a single path.  We measure,
    for matched sizes and fault counts (random and degree-targeted),
    the fraction of inputs that can still reach at least half the
    surviving outputs. *)

val run : Workload.config -> Outcome.t
