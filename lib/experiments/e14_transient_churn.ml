open Fn_graph
open Fn_prng
open Fn_faults

(* Snapshot-to-snapshot churn delta as an online event batch: nodes
   faulty now but not before fail, nodes faulty before but not now
   repair.  Disjoint by construction, so normalization accepts it
   verbatim. *)
let batch_between ~prev ~now =
  let faults = ref [] and repairs = ref [] in
  Bitset.iter
    (fun v -> if not (Bitset.mem prev v) then faults := Fn_online.Event.Fault v :: !faults)
    now;
  Bitset.iter
    (fun v -> if not (Bitset.mem now v) then repairs := Fn_online.Event.Repair v :: !repairs)
    prev;
  List.rev_append !faults (List.rev !repairs)

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let domains = cfg.Workload.domains in
  let online = cfg.Workload.online in
  let rng = Rng.create seed in
  let side = if quick then 12 else 16 in
  let snapshots = if quick then 6 else 10 in
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side in
  let n = Graph.num_nodes g in
  let rate_fail = 0.1 and rate_repair = 0.9 in
  let stationary = Churn.stationary_dead_fraction ~rate_fail ~rate_repair in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let alpha_e = sup "E14.alpha" (fun () -> Workload.edge_expansion_estimate ~obs ?domains rng g) in
  let epsilon = Faultnet.Theorem.thm34_max_epsilon ~delta:(Graph.max_degree g) in
  let table =
    Fn_stats.Table.create [ "time"; "dead"; "gamma"; "kept"; "survivor exp"; "exp ratio" ]
  in
  let min_kept = ref n and min_ratio = ref infinity in
  let snaps =
    sup "E14.simulate" (fun () ->
        Churn.simulate rng g ~rate_fail ~rate_repair ~horizon:20.0 ~snapshots)
  in
  (* Online mode: one engine carries the survivor certificate across
     the whole trajectory, fed the snapshot deltas as batches; the
     per-snapshot Prune re-run disappears.  A final audit checks the
     incremental state against the from-scratch cascade. *)
  let engine =
    if online then
      Some
        (Fn_online.Engine.create
           ~cfg:
             {
               Fn_online.Engine.seed;
               radius = 2;
               alpha = alpha_e;
               epsilon;
               mode = Fn_online.Warm.Exact;
               audit_every = 0;
               max_dirty_frac = 1.0;
               postmortem = None;
               domains;
               obs;
             }
           (Gview.Csr g))
    else None
  in
  let prev_faulty = ref (Bitset.create n) in
  List.iter
    (fun snap ->
      let alive = snap.Churn.faults.Fault_set.alive in
      (match engine with
      | Some eng ->
        (* apply the delta even when the snapshot is skipped below:
           the engine must track the full trajectory *)
        let now = snap.Churn.faults.Fault_set.faulty in
        (match Fn_online.Engine.apply eng (batch_between ~prev:!prev_faulty ~now) with
        | Ok _ -> ()
        | Error e ->
          failwith ("E14 online: batch rejected: " ^ Fn_faults.Churn.error_to_string e));
        prev_faulty := Bitset.copy now
      | None -> ());
      if Bitset.cardinal alive >= 2 then begin
        let gamma, kept, exp_h, ratio =
          sup (Printf.sprintf "E14.t%.1f" snap.Churn.time) (fun () ->
              let gamma = Workload.gamma_of_alive g alive in
              let kept_mask =
                match engine with
                | Some eng -> (Fn_online.Engine.result eng).Faultnet.Prune.kept
                | None ->
                  (Faultnet.Prune2.run ~obs ~rng ?domains g ~alive ~alpha_e ~epsilon)
                    .Faultnet.Prune2.kept
              in
              let kept = Bitset.cardinal kept_mask in
              let exp_h =
                if kept >= 2 then
                  Workload.edge_expansion_estimate ~obs ?domains rng ~alive:kept_mask g
                else 0.0
              in
              (gamma, kept, exp_h, exp_h /. alpha_e))
        in
        if kept < !min_kept then min_kept := kept;
        if ratio < !min_ratio then min_ratio := ratio;
        Fn_stats.Table.add_row table
          [
            Printf.sprintf "%.1f" snap.Churn.time;
            string_of_int (Fault_set.count snap.Churn.faults);
            Printf.sprintf "%.3f" gamma;
            string_of_int kept;
            Printf.sprintf "%.4f" exp_h;
            Printf.sprintf "%.2f" ratio;
          ]
      end)
    snaps;
  let checks =
    [
      (Printf.sprintf "survivor never drops below n/2 (min %d of %d)" !min_kept n,
       2 * !min_kept >= n);
      (Printf.sprintf "survivor expansion never drops below 0.3x fault-free (min %.2f)"
         !min_ratio,
       !min_ratio >= 0.3);
    ]
  in
  let checks =
    match engine with
    | None -> checks
    | Some eng ->
      let rep = Fn_online.Engine.audit eng in
      checks
      @ [
          ("(online) incremental certificate equals from-scratch audit",
           rep.Fn_online.Engine.faults = 0);
        ]
  in
  let notes =
    [
      Printf.sprintf
        "on/off rates %.1f/%.1f give a stationary dead fraction of %.0f%%; snapshots \
         every 2 time units over horizon 20" rate_fail rate_repair (100.0 *. stationary);
    ]
  in
  let notes =
    if online then
      notes
      @ [
          "online mode: survivors come from the incremental Fn_online.Engine cascade \
           (radius-2 ball certificates) fed snapshot deltas, not a per-snapshot Prune2 \
           re-run";
        ]
    else notes
  in
  {
    Outcome.id = "E14";
    title = "Transient churn: sustained expansion of the pruned survivor over time";
    table;
    checks;
    notes;
  }
