open Fn_graph
open Fn_prng
open Fn_faults

let run (cfg : Workload.config) =
  let quick = cfg.Workload.quick and seed = cfg.Workload.seed in
  let obs = cfg.Workload.obs in
  let domains = cfg.Workload.domains in
  let rng = Rng.create seed in
  let side = if quick then 12 else 16 in
  let snapshots = if quick then 6 else 10 in
  let g, _ = Fn_topology.Torus.cube ~d:2 ~side in
  let n = Graph.num_nodes g in
  let rate_fail = 0.1 and rate_repair = 0.9 in
  let stationary = Churn.stationary_dead_fraction ~rate_fail ~rate_repair in
  let sup scope f = Workload.supervised cfg ~scope ~rng f in
  let alpha_e = sup "E14.alpha" (fun () -> Workload.edge_expansion_estimate ~obs ?domains rng g) in
  let epsilon = Faultnet.Theorem.thm34_max_epsilon ~delta:(Graph.max_degree g) in
  let table =
    Fn_stats.Table.create [ "time"; "dead"; "gamma"; "kept"; "survivor exp"; "exp ratio" ]
  in
  let min_kept = ref n and min_ratio = ref infinity in
  let snaps =
    sup "E14.simulate" (fun () ->
        Churn.simulate rng g ~rate_fail ~rate_repair ~horizon:20.0 ~snapshots)
  in
  List.iter
    (fun snap ->
      let alive = snap.Churn.faults.Fault_set.alive in
      if Bitset.cardinal alive >= 2 then begin
        let gamma, kept, exp_h, ratio =
          sup (Printf.sprintf "E14.t%.1f" snap.Churn.time) (fun () ->
              let gamma = Workload.gamma_of_alive g alive in
              let res = Faultnet.Prune2.run ~obs ~rng ?domains g ~alive ~alpha_e ~epsilon in
              let kept = Bitset.cardinal res.Faultnet.Prune2.kept in
              let exp_h =
                if kept >= 2 then
                  Workload.edge_expansion_estimate ~obs ?domains rng
                    ~alive:res.Faultnet.Prune2.kept g
                else 0.0
              in
              (gamma, kept, exp_h, exp_h /. alpha_e))
        in
        if kept < !min_kept then min_kept := kept;
        if ratio < !min_ratio then min_ratio := ratio;
        Fn_stats.Table.add_row table
          [
            Printf.sprintf "%.1f" snap.Churn.time;
            string_of_int (Fault_set.count snap.Churn.faults);
            Printf.sprintf "%.3f" gamma;
            string_of_int kept;
            Printf.sprintf "%.4f" exp_h;
            Printf.sprintf "%.2f" ratio;
          ]
      end)
    snaps;
  {
    Outcome.id = "E14";
    title = "Transient churn: sustained expansion of the pruned survivor over time";
    table;
    checks =
      [
        (Printf.sprintf "survivor never drops below n/2 (min %d of %d)" !min_kept n,
         2 * !min_kept >= n);
        (Printf.sprintf "survivor expansion never drops below 0.3x fault-free (min %.2f)"
           !min_ratio,
         !min_ratio >= 0.3);
      ];
    notes =
      [
        Printf.sprintf
          "on/off rates %.1f/%.1f give a stationary dead fraction of %.0f%%; snapshots \
           every 2 time units over horizon 20" rate_fail rate_repair (100.0 *. stationary);
      ];
  }
