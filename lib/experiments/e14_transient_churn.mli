(** E14 — §1.3's transient-fault regime: expansion as a trajectory
    under continuous churn.

    Runs the on/off churn process on a torus at a stationary dead
    fraction of ~10%, snapshots the network over time, and at each
    snapshot prunes and measures the survivor.  The paper's static
    theorems say each snapshot individually keeps a large,
    well-expanding core; the trajectory view checks that this holds
    *sustained* — the minimum over time, not just the mean. *)

val run : Workload.config -> Outcome.t
