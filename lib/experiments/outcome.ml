type t = {
  id : string;
  title : string;
  table : Fn_stats.Table.t;
  checks : (string * bool) list;
  notes : string list;
}

let all_passed t = List.for_all snd t.checks

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" t.id t.title);
  Buffer.add_string buf (Fn_stats.Table.to_string t.table);
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, ok) ->
      Buffer.add_string buf (Printf.sprintf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name))
    t.checks;
  List.iter (fun note -> Buffer.add_string buf (Printf.sprintf "  note: %s\n" note)) t.notes;
  Buffer.contents buf

let to_jsonx t =
  let open Fn_obs.Jsonx in
  let str s = Str s in
  Obj
    [
      ("id", Str t.id);
      ("title", Str t.title);
      ("passed", Bool (all_passed t));
      ( "table",
        Obj
          [
            ("headers", List (List.map str (Fn_stats.Table.headers t.table)));
            ( "rows",
              List
                (List.map
                   (fun row -> List (List.map str row))
                   (Fn_stats.Table.rows t.table)) );
          ] );
      ( "checks",
        List
          (List.map
             (fun (name, ok) -> Obj [ ("name", Str name); ("ok", Bool ok) ])
             t.checks) );
      ("notes", List (List.map str t.notes));
    ]

let to_json t = Fn_obs.Jsonx.to_string (to_jsonx t)

(* Outcomes hold only strings and booleans, so parsing [to_jsonx]
   output back reconstructs the value exactly — which is what lets a
   resumed sweep replay journaled outcomes byte-for-byte. *)
let of_jsonx json =
  let module J = Fn_obs.Jsonx in
  let ( let* ) = Option.bind in
  let str = function J.Str s -> Some s | _ -> None in
  let str_list = function
    | J.List items ->
      let decoded = List.map str items in
      if List.for_all Option.is_some decoded then Some (List.map Option.get decoded)
      else None
    | _ -> None
  in
  let* id = Option.bind (J.member "id" json) str in
  let* title = Option.bind (J.member "title" json) str in
  let* table_json = J.member "table" json in
  let* headers = Option.bind (J.member "headers" table_json) str_list in
  let* row_items =
    match J.member "rows" table_json with Some (J.List rows) -> Some rows | _ -> None
  in
  let* rows =
    let decoded = List.map str_list row_items in
    if List.for_all Option.is_some decoded then Some (List.map Option.get decoded)
    else None
  in
  let* check_items =
    match J.member "checks" json with Some (J.List cs) -> Some cs | _ -> None
  in
  let* checks =
    let decode c =
      match (Option.bind (J.member "name" c) str, J.member "ok" c) with
      | Some name, Some (J.Bool ok) -> Some (name, ok)
      | _ -> None
    in
    let decoded = List.map decode check_items in
    if List.for_all Option.is_some decoded then Some (List.map Option.get decoded)
    else None
  in
  let* notes = Option.bind (J.member "notes" json) str_list in
  let table = Fn_stats.Table.create headers in
  match List.iter (Fn_stats.Table.add_row table) rows with
  | () -> Some { id; title; table; checks; notes }
  | exception Invalid_argument _ -> None

let of_json s = Option.bind (Fn_obs.Jsonx.parse s) of_jsonx

let to_csv t = Fn_stats.Table.to_csv t.table
