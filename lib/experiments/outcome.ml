type t = {
  id : string;
  title : string;
  table : Fn_stats.Table.t;
  checks : (string * bool) list;
  notes : string list;
}

let all_passed t = List.for_all snd t.checks

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" t.id t.title);
  Buffer.add_string buf (Fn_stats.Table.to_string t.table);
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, ok) ->
      Buffer.add_string buf (Printf.sprintf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name))
    t.checks;
  List.iter (fun note -> Buffer.add_string buf (Printf.sprintf "  note: %s\n" note)) t.notes;
  Buffer.contents buf

let to_json t =
  let open Fn_obs.Jsonx in
  let str s = Str s in
  to_string
    (Obj
       [
         ("id", Str t.id);
         ("title", Str t.title);
         ("passed", Bool (all_passed t));
         ( "table",
           Obj
             [
               ("headers", List (List.map str (Fn_stats.Table.headers t.table)));
               ( "rows",
                 List
                   (List.map
                      (fun row -> List (List.map str row))
                      (Fn_stats.Table.rows t.table)) );
             ] );
         ( "checks",
           List
             (List.map
                (fun (name, ok) -> Obj [ ("name", Str name); ("ok", Bool ok) ])
                t.checks) );
         ("notes", List (List.map str t.notes));
       ])

let to_csv t = Fn_stats.Table.to_csv t.table
