(** Result envelope shared by all experiments. *)

type t = {
  id : string;  (** "E1" ... "E10" *)
  title : string;
  table : Fn_stats.Table.t;
  checks : (string * bool) list;  (** named pass/fail assertions *)
  notes : string list;
}

val all_passed : t -> bool

val render : t -> string
(** Title, table, check list, notes — ready to print. *)

val to_json : t -> string
(** One compact JSON object:
    [{"id":...,"title":...,"passed":...,
      "table":{"headers":[...],"rows":[[...],...]},
      "checks":[{"name":...,"ok":...},...],"notes":[...]}]
    — the payload behind [bin/experiments.exe --json]. *)

val to_jsonx : t -> Fn_obs.Jsonx.t
(** {!to_json} before rendering — the form stored in resume journals. *)

val of_jsonx : Fn_obs.Jsonx.t -> t option
(** Inverse of {!to_jsonx}.  Outcomes contain only strings and
    booleans, so the round-trip is exact; [None] on any malformed or
    foreign JSON. *)

val of_json : string -> t option
(** [of_jsonx] after {!Fn_obs.Jsonx.parse}. *)

val to_csv : t -> string
(** The result table as CSV (headers then data rows); checks and
    notes are not part of the CSV. *)
