type entry = {
  id : string;
  title : string;
  run : Workload.config -> Outcome.t;
}

let all =
  [
    {
      id = "E1";
      title = "Thm 2.1: Prune under adversarial faults";
      run = E01_prune_adversarial.run;
    };
    {
      id = "E2";
      title = "Claim 2.4: chain graph expansion Theta(1/k)";
      run = E02_chain_expansion.run;
    };
    {
      id = "E3";
      title = "Thm 2.3: chain-center attack shatters H(G,k)";
      run = E03_chain_attack.run;
    };
    {
      id = "E4";
      title = "Thm 2.5: recursive-cut attack on uniform expansion";
      run = E04_recursive_attack.run;
    };
    {
      id = "E5";
      title = "Thm 3.1: random faults disintegrate the chain graph";
      run = E05_random_chain.run;
    };
    { id = "E6"; title = "Thm 3.4: Prune2 under random faults"; run = E06_prune2_random.run };
    { id = "E7"; title = "Thm 3.6: mesh span <= 2"; run = E07_mesh_span.run };
    { id = "E8"; title = "Sec 1.1: percolation thresholds"; run = E08_percolation.run };
    { id = "E9"; title = "Conclusion: CAN under churn"; run = E09_can_churn.run };
    {
      id = "E10";
      title = "Open problem: span of butterfly/deBruijn/shuffle-exchange";
      run = E10_span_conjecture.run;
    };
    {
      id = "E11";
      title = "Motivation: routing a permutation through faulty networks";
      run = E11_routing.run;
    };
    {
      id = "E12";
      title = "Sec 1.2: mesh self-embedding slowdown (LMR)";
      run = E12_embedding.run;
    };
    {
      id = "E13";
      title = "Sec 1.1: butterfly vs multibutterfly under faults";
      run = E13_multibutterfly.run;
    };
    {
      id = "E14";
      title = "Transient churn: sustained expansion over time";
      run = E14_transient_churn.run;
    };
  ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.id = target) all

(* Journal-aware execution: an experiment already completed in
   [cfg.journal] is replayed from its stored outcome (the round-trip
   is exact — see [Outcome.of_jsonx]); anything else runs and is
   recorded the moment it finishes, so an interrupted sweep resumes
   where it stopped. *)
let run_entry entry (cfg : Workload.config) =
  match cfg.Workload.journal with
  | None -> entry.run cfg
  | Some journal -> (
    let replayed =
      Option.bind
        (Fn_resilience.Journal.find_outcome journal ~id:entry.id)
        Outcome.of_jsonx
    in
    match replayed with
    | Some outcome ->
      if Fn_obs.Sink.enabled cfg.Workload.obs then
        Fn_obs.Span.instant cfg.Workload.obs "resilience.outcome_replayed"
          ~fields:[ ("id", Fn_obs.Sink.Str entry.id) ];
      outcome
    | None ->
      let outcome = entry.run cfg in
      Fn_resilience.Journal.record_outcome journal ~id:entry.id
        (Outcome.to_jsonx outcome);
      outcome)
