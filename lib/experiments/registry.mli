(** Name → experiment dispatch used by bin/experiments and the bench
    harness. *)

type entry = {
  id : string;
  title : string;
  run : Workload.config -> Outcome.t;
      (** Every experiment takes the one {!Workload.config} record
          (quick mode, seed, parallelism, observability sink). *)
}

val all : entry list
(** E1 through E14, in order. *)

val find : string -> entry option
(** Case-insensitive lookup by id ("e3" finds E3). *)

val run_entry : entry -> Workload.config -> Outcome.t
(** Run one experiment under the config's journal, if any: a completed
    outcome already in [cfg.journal] is replayed without re-running
    (emitting a ["resilience.outcome_replayed"] instant when a sink is
    on); otherwise the experiment runs and its outcome is journaled on
    completion.  With [cfg.journal = None] this is exactly
    [entry.run cfg].  Both binaries go through this entry point. *)
