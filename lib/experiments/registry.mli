(** Name → experiment dispatch used by bin/experiments and the bench
    harness. *)

type entry = {
  id : string;
  title : string;
  run : Workload.config -> Outcome.t;
      (** Every experiment takes the one {!Workload.config} record
          (quick mode, seed, parallelism, observability sink). *)
}

val all : entry list
(** E1 through E14, in order. *)

val find : string -> entry option
(** Case-insensitive lookup by id ("e3" finds E3). *)
