open Fn_graph

type config = {
  quick : bool;
  seed : int;
  domains : int option;
  obs : Fn_obs.Sink.t;
  resilience : Fn_resilience.Policy.t;
  journal : Fn_resilience.Journal.t option;
  online : bool;
}

let default =
  {
    quick = false;
    seed = 0;
    domains = None;
    obs = Fn_obs.Sink.null;
    resilience = Fn_resilience.Policy.default;
    journal = None;
    online = false;
  }

let config ?(quick = false) ?(seed = 0) ?domains ?(obs = Fn_obs.Sink.null)
    ?(resilience = Fn_resilience.Policy.default) ?journal ?(online = false) () =
  { quick; seed; domains; obs; resilience; journal; online }

let supervised cfg ~scope ~rng f =
  Fn_resilience.Supervisor.protect ~obs:cfg.obs ~rng ~policy:cfg.resilience ~scope f

let trials ?codec cfg ~scope ~rng n job =
  let checkpoint =
    match (cfg.journal, codec) with
    | Some journal, Some codec -> Some (journal, codec)
    | _ -> None
  in
  Fn_resilience.Supervisor.trials ~obs:cfg.obs ?domains:cfg.domains ?checkpoint
    ~policy:cfg.resilience ~scope ~rng n job

let expander rng ~n ~d = Fn_topology.Expander.random_regular rng ~n ~d

let gamma_of_alive g alive =
  let n = Graph.num_nodes g in
  if n = 0 then 0.0
  else begin
    let comps = Components.compute ~alive g in
    float_of_int (Components.largest_size comps) /. float_of_int n
  end

let node_expansion_estimate ?obs ?domains rng ?alive g =
  (Fn_expansion.Estimate.run ?obs ?domains ?alive ~rng g Fn_expansion.Cut.Node)
    .Fn_expansion.Estimate.value

let edge_expansion_estimate ?obs ?domains rng ?alive g =
  (Fn_expansion.Estimate.run ?obs ?domains ?alive ~rng g Fn_expansion.Cut.Edge)
    .Fn_expansion.Estimate.value

let mean_of xs =
  match xs with
  | [] -> invalid_arg "Workload.mean_of: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let bool_cell b = if b then "yes" else "NO"
