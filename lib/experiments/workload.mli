open Fn_graph
open Fn_prng

(** Shared run configuration, workload builders and measurement
    helpers for E1-E14. *)

type config = {
  quick : bool;  (** shrink sizes / trial counts for CI *)
  seed : int;  (** root seed; every experiment derives its RNG from it *)
  domains : int option;  (** parallelism cap for {!Fn_parallel.Par} call sites *)
  obs : Fn_obs.Sink.t;  (** observability sink; {!Fn_obs.Sink.null} = off *)
}
(** The single argument every experiment's [run] takes (the old
    [?quick ?seed] optional pair, made explicit and extensible). *)

val default : config
(** [{quick = false; seed = 0; domains = None; obs = Sink.null}] *)

val config :
  ?quick:bool -> ?seed:int -> ?domains:int -> ?obs:Fn_obs.Sink.t -> unit -> config
(** Keyword constructor over {!default}. *)

val expander : Rng.t -> n:int -> d:int -> Graph.t
(** Connected random d-regular graph — the stand-in for the paper's
    expander family G(n). *)

val gamma_of_alive : Graph.t -> Bitset.t -> float
(** Largest alive component size / original node count. *)

val node_expansion_estimate :
  ?obs:Fn_obs.Sink.t -> Rng.t -> ?alive:Bitset.t -> Graph.t -> float
(** Portfolio upper-bound estimate (see {!Fn_expansion.Estimate}). *)

val edge_expansion_estimate :
  ?obs:Fn_obs.Sink.t -> Rng.t -> ?alive:Bitset.t -> Graph.t -> float

val mean_of : float list -> float

val bool_cell : bool -> string
(** "yes" / "NO" for table cells. *)
