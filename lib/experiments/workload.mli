open Fn_graph
open Fn_prng

(** Shared run configuration, workload builders and measurement
    helpers for E1-E14. *)

type config = {
  quick : bool;  (** shrink sizes / trial counts for CI *)
  seed : int;  (** root seed; every experiment derives its RNG from it *)
  domains : int option;  (** parallelism cap for {!Fn_parallel.Par} call sites *)
  obs : Fn_obs.Sink.t;  (** observability sink; {!Fn_obs.Sink.null} = off *)
  resilience : Fn_resilience.Policy.t;
      (** supervision policy for {!supervised} / {!trials} call sites;
          the default is inert (no deadline, no chaos) *)
  journal : Fn_resilience.Journal.t option;
      (** checkpoint journal; [Some _] makes {!trials} (with a codec)
          and [Registry.run_entry] record and replay completed work *)
  online : bool;
      (** churn experiments (E9, E14) maintain their survivor
          certificates incrementally via {!Fn_online.Engine} instead
          of re-running Prune per snapshot; off by default — the
          default path stays byte-identical *)
}
(** The single argument every experiment's [run] takes (the old
    [?quick ?seed] optional pair, made explicit and extensible). *)

val default : config
(** [{quick = false; seed = 0; domains = None; obs = Sink.null;
    resilience = Fn_resilience.Policy.default; journal = None;
    online = false}] *)

val config :
  ?quick:bool ->
  ?seed:int ->
  ?domains:int ->
  ?obs:Fn_obs.Sink.t ->
  ?resilience:Fn_resilience.Policy.t ->
  ?journal:Fn_resilience.Journal.t ->
  ?online:bool ->
  unit ->
  config
(** Keyword constructor over {!default}. *)

val supervised : config -> scope:string -> rng:Rng.t -> (unit -> 'a) -> 'a
(** Run one unit of experiment work under the config's resilience
    policy: chaos injection, per-attempt deadline, bounded
    deterministic retry.  [rng] is the stream the closure reads; it is
    snapshotted and rolled back around failed attempts, so a retried
    unit reproduces exactly what an undisturbed run computes.

    @raise Fn_resilience.Failure.Supervision_failed when the policy is
    exhausted. *)

val trials :
  ?codec:'a Fn_resilience.Journal.codec ->
  config ->
  scope:string ->
  rng:Rng.t ->
  int ->
  (Rng.t -> 'a) ->
  'a array
(** Supervised, crash-isolated parallel trials over pre-split
    generators (see {!Fn_resilience.Supervisor.trials}); results are
    independent of [cfg.domains].  When both [cfg.journal] and [codec]
    are present, completed trials are checkpointed and replayed on
    resume. *)

val expander : Rng.t -> n:int -> d:int -> Graph.t
(** Connected random d-regular graph — the stand-in for the paper's
    expander family G(n). *)

val gamma_of_alive : Graph.t -> Bitset.t -> float
(** Largest alive component size / original node count. *)

val node_expansion_estimate :
  ?obs:Fn_obs.Sink.t -> ?domains:int -> Rng.t -> ?alive:Bitset.t -> Graph.t -> float
(** Portfolio upper-bound estimate (see {!Fn_expansion.Estimate}).
    [domains] follows the {!Fn_expansion.Estimate.run} contract:
    default/1 is sequential and byte-reproducible. *)

val edge_expansion_estimate :
  ?obs:Fn_obs.Sink.t -> ?domains:int -> Rng.t -> ?alive:Bitset.t -> Graph.t -> float

val mean_of : float list -> float

val bool_cell : bool -> string
(** "yes" / "NO" for table cells. *)
