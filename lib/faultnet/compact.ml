open Fn_graph
open Fn_prng

(* The compactification core runs on [Gview.t]; the [Graph.t] entry
   points below wrap the CSR arm.  Everything it needs — reachability,
   components, edge-boundary counts — already has a view form, so
   Prune2's round loop can cull compact sets on implicit topologies
   without materializing them. *)

let restrict_v ?alive view u =
  ignore view;
  match alive with
  | None -> Bitset.copy u
  | Some m ->
    let out = Bitset.copy u in
    Bitset.inter_into out m;
    out

let complement_within_v ?alive view u =
  let n = Gview.num_nodes view in
  let out = match alive with None -> Bitset.create_full n | Some m -> Bitset.copy m in
  Bitset.diff_into out u;
  out

let complement_within ?alive g u = complement_within_v ?alive (Gview.Csr g) u

let is_compact_v ?alive view u =
  let inside = restrict_v ?alive view u in
  let outside = complement_within_v ?alive view u in
  (not (Bitset.is_empty inside))
  && (not (Bitset.is_empty outside))
  && Dfs.is_connected_subset_v view inside
  && Dfs.is_connected_subset_v view outside

let is_compact ?alive g u = is_compact_v ?alive (Gview.Csr g) u

let edge_ratio_v ?alive view x =
  float_of_int (Boundary.edge_boundary_size_v ?alive view x) /. float_of_int (Bitset.cardinal x)

let compactify_v ?alive view s =
  let s = restrict_v ?alive view s in
  if Bitset.is_empty s then invalid_arg "Compact.compactify: empty set";
  if not (Dfs.is_connected_subset_v view s) then
    invalid_arg "Compact.compactify: S not connected";
  let outside = complement_within_v ?alive view s in
  if Bitset.is_empty outside then invalid_arg "Compact.compactify: S is everything";
  if Dfs.is_connected_subset_v view outside then s
  else begin
    let total =
      match alive with None -> Gview.num_nodes view | Some m -> Bitset.cardinal m
    in
    let comps = Components.compute_v ~alive:outside view in
    (* Case 1: a complement component holds at least half the nodes *)
    let big = ref (-1) in
    for id = 0 to comps.Components.count - 1 do
      if 2 * comps.Components.sizes.(id) >= total then big := id
    done;
    if !big >= 0 then begin
      let k = complement_within_v ?alive view (Components.members comps !big) in
      k
    end
    else begin
      (* Case 2: some component has edge expansion <= S's *)
      let s_ratio = edge_ratio_v ?alive view s in
      let best = ref None in
      for id = 0 to comps.Components.count - 1 do
        let c = Components.members comps id in
        let r = edge_ratio_v ?alive view c in
        match !best with
        | Some (_, br) when br <= r -> ()
        | _ -> best := Some (c, r)
      done;
      match !best with
      | Some (c, r) when r <= s_ratio +. 1e-9 -> c
      | _ ->
        (* Lemma 3.3 proves this cannot happen; keep S as a safe
           fallback rather than crashing on float pathology *)
        s
    end
  end

let compactify ?alive g s = compactify_v ?alive (Gview.Csr g) s

let enumerate g =
  let n = Graph.num_nodes g in
  if n > 20 then invalid_arg "Compact.enumerate: graph too large";
  if n < 2 then []
  else begin
    let nbr = Array.init n (fun v -> Graph.fold_neighbors g v (fun acc w -> acc lor (1 lsl w)) 0) in
    let full = (1 lsl n) - 1 in
    let connected_mask mask =
      if mask = 0 then false
      else begin
        let start = mask land -mask in
        let visited = ref start in
        let frontier = ref start in
        while !frontier <> 0 do
          let next = ref 0 in
          let rem = ref !frontier in
          while !rem <> 0 do
            let low = !rem land - !rem in
            let v =
              let rec idx b k = if b land 1 = 1 then k else idx (b lsr 1) (k + 1) in
              idx low 0
            in
            next := !next lor (nbr.(v) land mask land lnot !visited);
            rem := !rem lxor low
          done;
          visited := !visited lor !next;
          frontier := !next
        done;
        !visited = mask
      end
    in
    let out = ref [] in
    for mask = 1 to full - 1 do
      if connected_mask mask && connected_mask (full lxor mask) then begin
        let set = Bitset.create n in
        for v = 0 to n - 1 do
          if mask lsr v land 1 = 1 then Bitset.add set v
        done;
        out := set :: !out
      end
    done;
    List.rev !out
  end

let random_compact rng ?alive g ~target_size =
  let n = Graph.num_nodes g in
  let alive_set = match alive with None -> Bitset.create_full n | Some m -> m in
  let total = Bitset.cardinal alive_set in
  if total < 2 || target_size < 1 || 2 * target_size > total then None
  else if not (Dfs.is_connected_subset g alive_set) then None
  else begin
    let nodes = Bitset.to_array alive_set in
    let src = nodes.(Rng.int rng (Array.length nodes)) in
    (* randomized region growing: keep a frontier list, absorb a random
       frontier node each step *)
    let in_u = Bitset.create n in
    Bitset.add in_u src;
    let frontier = ref [] in
    let push v =
      Graph.iter_neighbors g v (fun w ->
          if Bitset.mem alive_set w && not (Bitset.mem in_u w) then frontier := w :: !frontier)
    in
    push src;
    let size = ref 1 in
    while !size < target_size && !frontier <> [] do
      let arr = Array.of_list !frontier in
      let v = arr.(Rng.int rng (Array.length arr)) in
      frontier := List.filter (fun w -> w <> v) !frontier;
      if not (Bitset.mem in_u v) then begin
        Bitset.add in_u v;
        incr size;
        push v
      end
    done;
    (* absorb all complement components but the largest *)
    let outside = complement_within ?alive g in_u in
    if Bitset.is_empty outside then None
    else begin
      let comps = Components.compute ~alive:outside g in
      let biggest = ref 0 in
      for id = 1 to comps.Components.count - 1 do
        if comps.Components.sizes.(id) > comps.Components.sizes.(!biggest) then biggest := id
      done;
      for id = 0 to comps.Components.count - 1 do
        if id <> !biggest then Bitset.union_into in_u (Components.members comps id)
      done;
      if is_compact ?alive g in_u then Some in_u else None
    end
  end
