open Fn_graph
open Fn_prng

(** Compact sets (Section 3 of the paper).

    A set U is compact in G when both U and its complement induce
    connected subgraphs.  The span is a maximum over compact sets, and
    Prune2 culls the compactification K_G(S) of the low-expansion
    sets it finds (Lemma 3.3). *)

val is_compact : ?alive:Bitset.t -> Graph.t -> Bitset.t -> bool
(** Both [u ∩ alive] and [alive \ u] must be non-empty and
    connected. *)

val compactify : ?alive:Bitset.t -> Graph.t -> Bitset.t -> Bitset.t
(** Lemma 3.3: for a connected S with |S| < |alive|/2, returns a
    compact set K_G(S) whose edge expansion is at most S's.  Raises
    [Invalid_argument] if S is not connected or not a proper
    subset. *)

val is_compact_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> bool
(** {!is_compact} on either {!Gview.t} representation. *)

val compactify_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> Bitset.t
(** {!compactify} on either representation — Prune2's round loop uses
    this to cull compact sets from implicit topologies. *)

val enumerate : Graph.t -> Bitset.t list
(** All compact sets of a connected graph with at most 20 nodes,
    by exhaustive subset enumeration.  Each compact pair {U, V\U}
    appears twice (once per side), matching the paper's definition
    where U ranges over all compact sets. *)

val random_compact : Rng.t -> ?alive:Bitset.t -> Graph.t -> target_size:int -> Bitset.t option
(** Sample a compact set of roughly the requested size: grow a random
    connected region, then absorb all complement components except
    the largest (which restores compactness while keeping the region
    connected).  Returns [None] when the alive part is disconnected
    or too small. *)
