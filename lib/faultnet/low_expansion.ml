open Fn_graph
open Fn_prng
open Fn_expansion

type t = alive:Bitset.t -> Graph.t -> threshold:float -> Bitset.t option

type t_v = alive:Bitset.t -> Gview.t -> threshold:float -> Bitset.t option

let exact_limit = 18

let small_component_v ~alive view =
  let comps = Components.compute_v ~alive view in
  if comps.Components.count <= 1 then None
  else begin
    let smallest = ref 0 in
    for id = 1 to comps.Components.count - 1 do
      if comps.Components.sizes.(id) < comps.Components.sizes.(!smallest) then smallest := id
    done;
    let total = Bitset.cardinal alive in
    if 2 * comps.Components.sizes.(!smallest) <= total then
      Some (Components.members comps !smallest)
    else None
  end

let small_component ~alive g = small_component_v ~alive (Gview.Csr g)

let exact_on_fragment objective ~alive g ~threshold =
  let sub = Subgraph.induce g alive in
  let n = Graph.num_nodes sub.Subgraph.graph in
  if n < 2 then None
  else begin
    let cut =
      match objective with
      | Cut.Node -> Exact.node_expansion sub.Subgraph.graph
      | Cut.Edge -> Exact.edge_expansion sub.Subgraph.graph
    in
    if cut.Cut.value <= threshold then Some (Subgraph.lift_set sub cut.Cut.set) else None
  end

let exact objective ~alive g ~threshold =
  if Bitset.cardinal alive > exact_limit then
    invalid_arg "Low_expansion.exact: fragment too large";
  exact_on_fragment objective ~alive g ~threshold

(* Exact solving on an implicit-view fragment: the fragment has at
   most [exact_limit] alive nodes, so inducing a throwaway CSR for
   {!Exact} touches O(|alive|·Δ) cells of the generator — never the
   whole topology. *)
let exact_on_fragment_implicit objective ~alive view ~threshold =
  let nodes = Bitset.to_array alive in
  let k = Array.length nodes in
  if k < 2 then None
  else begin
    let idx = Hashtbl.create (2 * k) in
    Array.iteri (fun i v -> Hashtbl.replace idx v i) nodes;
    let edges = ref [] in
    Array.iteri
      (fun i v ->
        Gview.iter_neighbors view v (fun w ->
            match Hashtbl.find_opt idx w with
            | Some j when i < j -> edges := (i, j) :: !edges
            | _ -> ()))
      nodes;
    let sub = Graph.of_edges k !edges in
    let cut =
      match objective with
      | Cut.Node -> Exact.node_expansion sub
      | Cut.Edge -> Exact.edge_expansion sub
    in
    if cut.Cut.value <= threshold then begin
      let lifted = Bitset.create (Gview.num_nodes view) in
      Bitset.iter (fun i -> Bitset.add lifted nodes.(i)) cut.Cut.set;
      Some lifted
    end
    else None
  end

let default ?rng ?domains ?method_ objective ~alive g ~threshold =
  let size = Bitset.cardinal alive in
  if size < 2 then None
  else
    match small_component ~alive g with
    | Some s -> Some s
    | None ->
      if size <= exact_limit then exact_on_fragment objective ~alive g ~threshold
      else begin
        let rng = match rng with Some r -> r | None -> Rng.create 0x10E5 in
        let est = Estimate.run ~alive ~rng ?domains ?method_ g objective in
        if est.Estimate.value <= threshold then Some est.Estimate.witness else None
      end

(* Memory guard for the implicit-arm spectral path: the Krylov basis
   holds up to 16 vectors of n floats, so beyond this alive count the
   spectral witness would cost hundreds of MB and the ball slice runs
   alone. *)
let spectral_node_cap = 500_000

let default_v ?rng ?domains ?method_ objective ~alive view ~threshold =
  match view with
  | Gview.Csr g -> default ?rng ?domains ?method_ objective ~alive g ~threshold
  | Gview.Implicit _ -> (
    let size = Bitset.cardinal alive in
    if size < 2 then None
    else
      match small_component_v ~alive view with
      | Some s -> Some s
      | None ->
        if size <= exact_limit then
          exact_on_fragment_implicit objective ~alive view ~threshold
        else begin
          let rng = match rng with Some r -> r | None -> Rng.create 0x10E5 in
          let ball = Estimate.ball_witness_v ~alive ~rng view objective in
          (* the registry's Gview-capable operator lets implicit
             topologies run a spectral sweep too; best of both slices *)
          let spectral =
            if size <= spectral_node_cap then
              Option.map
                (fun (cut, _, _) -> cut)
                (Estimate.spectral_witness_v ~alive ?domains ?method_ view objective)
            else None
          in
          let best =
            match (ball, spectral) with
            | Some a, Some b -> Some (Cut.better a b)
            | (Some _ as s), None | None, (Some _ as s) -> s
            | None, None -> None
          in
          match best with
          | Some cut when cut.Cut.value <= threshold -> Some cut.Cut.set
          | Some _ | None -> None
        end)
