open Fn_graph
open Fn_prng
open Fn_expansion

type t = alive:Bitset.t -> Graph.t -> threshold:float -> Bitset.t option

let exact_limit = 18

let small_component ~alive g =
  let comps = Components.compute ~alive g in
  if comps.Components.count <= 1 then None
  else begin
    let smallest = ref 0 in
    for id = 1 to comps.Components.count - 1 do
      if comps.Components.sizes.(id) < comps.Components.sizes.(!smallest) then smallest := id
    done;
    let total = Bitset.cardinal alive in
    if 2 * comps.Components.sizes.(!smallest) <= total then
      Some (Components.members comps !smallest)
    else None
  end

let exact_on_fragment objective ~alive g ~threshold =
  let sub = Subgraph.induce g alive in
  let n = Graph.num_nodes sub.Subgraph.graph in
  if n < 2 then None
  else begin
    let cut =
      match objective with
      | Cut.Node -> Exact.node_expansion sub.Subgraph.graph
      | Cut.Edge -> Exact.edge_expansion sub.Subgraph.graph
    in
    if cut.Cut.value <= threshold then Some (Subgraph.lift_set sub cut.Cut.set) else None
  end

let exact objective ~alive g ~threshold =
  if Bitset.cardinal alive > exact_limit then
    invalid_arg "Low_expansion.exact: fragment too large";
  exact_on_fragment objective ~alive g ~threshold

let default ?rng ?domains objective ~alive g ~threshold =
  let size = Bitset.cardinal alive in
  if size < 2 then None
  else
    match small_component ~alive g with
    | Some s -> Some s
    | None ->
      if size <= exact_limit then exact_on_fragment objective ~alive g ~threshold
      else begin
        let rng = match rng with Some r -> r | None -> Rng.create 0x10E5 in
        let est = Estimate.run ~alive ~rng ?domains g objective in
        if est.Estimate.value <= threshold then Some est.Estimate.witness else None
      end
