open Fn_graph
open Fn_prng

(** Finders for low-expansion sets — the "∃ S_i ⊆ G_i" oracle inside
    the paper's pruning algorithms.

    The paper's algorithms are existential (they assume the oracle);
    this module realizes it: exactly on small fragments, by the
    {!Fn_expansion.Estimate} portfolio on larger ones.  A finder
    returns a witness set [S] with expansion at most the threshold
    and [|S| <= |alive|/2], or [None] when it cannot find one.  A
    [None] from the heuristic finder does not prove absence — the
    pruning loop documents the resulting one-sidedness. *)

type t = alive:Bitset.t -> Graph.t -> threshold:float -> Bitset.t option

val exact_limit : int
(** Fragment size up to which the exact finder is used (18). *)

val default : ?rng:Rng.t -> ?domains:int -> Fn_expansion.Cut.objective -> t
(** Portfolio finder: disconnected fragments yield a small component
    immediately; fragments of at most {!exact_limit} alive nodes are
    solved exactly; larger ones use the heuristic estimator.
    [domains] is forwarded to {!Fn_expansion.Estimate.run} (default
    1: sequential, byte-reproducible). *)

val exact : Fn_expansion.Cut.objective -> t
(** Exact only; raises [Invalid_argument] beyond {!exact_limit}. *)
