open Fn_graph
open Fn_prng

(** Finders for low-expansion sets — the "∃ S_i ⊆ G_i" oracle inside
    the paper's pruning algorithms.

    The paper's algorithms are existential (they assume the oracle);
    this module realizes it: exactly on small fragments, by the
    {!Fn_expansion.Estimate} portfolio on larger ones.  A finder
    returns a witness set [S] with expansion at most the threshold
    and [|S| <= |alive|/2], or [None] when it cannot find one.  A
    [None] from the heuristic finder does not prove absence — the
    pruning loop documents the resulting one-sidedness. *)

type t = alive:Bitset.t -> Graph.t -> threshold:float -> Bitset.t option

type t_v = alive:Bitset.t -> Gview.t -> threshold:float -> Bitset.t option
(** A finder over either {!Gview.t} arm — what the Prune / Prune2
    round loops actually drive. *)

val exact_limit : int
(** Fragment size up to which the exact finder is used (18). *)

val default :
  ?rng:Rng.t ->
  ?domains:int ->
  ?method_:Fn_expansion.Spectral.Method.t ->
  Fn_expansion.Cut.objective ->
  t
(** Portfolio finder: disconnected fragments yield a small component
    immediately; fragments of at most {!exact_limit} alive nodes are
    solved exactly; larger ones use the heuristic estimator.
    [domains] and [method_] (the spectral backend; default [Auto])
    are forwarded to {!Fn_expansion.Estimate.run} (defaults:
    sequential, byte-reproducible). *)

val default_v :
  ?rng:Rng.t ->
  ?domains:int ->
  ?method_:Fn_expansion.Spectral.Method.t ->
  Fn_expansion.Cut.objective ->
  t_v
(** {!default} over views.  The CSR arm delegates to {!default}
    unchanged (byte-identical results).  On the implicit arm large
    fragments run the BFS-ball slice plus — now that the spectral
    operator is {!Gview.t}-capable — the spectral sweep
    ({!Fn_expansion.Estimate.spectral_witness_v}), keeping the better
    witness.  The spectral slice is skipped above 500k alive nodes
    (the Krylov basis would cost hundreds of MB); a [None] is
    correspondingly weaker evidence of high expansion there. *)

val exact : Fn_expansion.Cut.objective -> t
(** Exact only; raises [Invalid_argument] beyond {!exact_limit}. *)
