open Fn_graph

type culled = { set : Bitset.t; size : int; boundary : int }

type result = {
  kept : Bitset.t;
  culled : culled list;
  iterations : int;
  threshold : float;
}

let run_v ?(obs = Fn_obs.Sink.null) ?finder ?rng ?domains view ~alive ~alpha ~epsilon =
  if alpha <= 0.0 then invalid_arg "Prune.run: alpha must be positive";
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Prune.run: need 0 < epsilon < 1";
  let finder =
    match finder with
    | Some f -> f
    | None -> Low_expansion.default_v ?rng ?domains Fn_expansion.Cut.Node
  in
  (* per-round boundary counts reuse one generation-stamped scratch
     instead of allocating a boundary Bitset every round; equal to
     Boundary.node_boundary_size by construction (differential test) *)
  let scratch = Boundary.Scratch.create (Gview.num_nodes view) in
  let threshold = alpha *. epsilon in
  let on = Fn_obs.Sink.enabled obs in
  let sp =
    if on then
      Fn_obs.Span.enter obs "prune.run"
        ~fields:
          [
            ("alive", Fn_obs.Sink.Int (Bitset.cardinal alive));
            ("alpha", Fn_obs.Sink.Float alpha);
            ("epsilon", Fn_obs.Sink.Float epsilon);
            ("threshold", Fn_obs.Sink.Float threshold);
          ]
    else Fn_obs.Span.null
  in
  let current = Bitset.copy alive in
  let culled = ref [] in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    if Bitset.cardinal current < 2 then continue := false
    else
      match finder ~alive:current view ~threshold with
      | None -> continue := false
      | Some s ->
        incr iterations;
        let size = Bitset.cardinal s in
        let boundary = Boundary.Scratch.node_boundary_size_v scratch ~alive:current view s in
        assert (size >= 1);
        assert (Bitset.subset s current);
        culled := { set = s; size; boundary } :: !culled;
        Bitset.diff_into current s;
        if on then begin
          Fn_obs.Span.instant obs "prune.round"
            ~fields:
              [
                ("round", Fn_obs.Sink.Int !iterations);
                ("culled", Fn_obs.Sink.Int size);
                ("boundary", Fn_obs.Sink.Int boundary);
                ("ratio", Fn_obs.Sink.Float (float_of_int boundary /. float_of_int size));
                ("survivors", Fn_obs.Sink.Int (Bitset.cardinal current));
              ];
          Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "prune.rounds");
          Fn_obs.Metrics.add (Fn_obs.Metrics.counter "prune.culled_nodes") size
        end
  done;
  if on then
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("iterations", Fn_obs.Sink.Int !iterations);
          ("kept", Fn_obs.Sink.Int (Bitset.cardinal current));
        ];
  { kept = current; culled = List.rev !culled; iterations = !iterations; threshold }

let run ?obs ?finder ?rng ?domains g ~alive ~alpha ~epsilon =
  (* a custom Graph finder closes over [g]; the default lifts to
     Low_expansion.default_v, whose CSR arm is Low_expansion.default *)
  let finder =
    Option.map
      (fun f ~alive view ~threshold ->
        ignore view;
        f ~alive g ~threshold)
      finder
  in
  run_v ?obs ?finder ?rng ?domains (Gview.Csr g) ~alive ~alpha ~epsilon

let total_culled r = List.fold_left (fun acc c -> acc + c.size) 0 r.culled

let verify_certificates g ~alive r =
  let current = Bitset.copy alive in
  let ok = ref true in
  List.iter
    (fun c ->
      let total = Bitset.cardinal current in
      if not (Bitset.subset c.set current) then ok := false;
      let size = Bitset.cardinal c.set in
      if size <> c.size || 2 * size > total then ok := false;
      let boundary = Boundary.node_boundary_size ~alive:current g c.set in
      if boundary <> c.boundary then ok := false;
      if float_of_int boundary > (r.threshold *. float_of_int size) +. 1e-9 then ok := false;
      Bitset.diff_into current c.set)
    r.culled;
  if not (Bitset.equal current r.kept) then ok := false;
  !ok
