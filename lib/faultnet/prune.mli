open Fn_graph
open Fn_prng

(** Algorithm [Prune(ε)] — Figure 1 of the paper.

    Starting from the faulty graph G_f (an alive mask over G), while
    there is a set S_i in the current graph G_i with
    |Γ(S_i)| <= α·ε·|S_i| and |S_i| <= |G_i|/2, remove S_i.  Theorem
    2.1: with ε = 1 - 1/k and at most f <= α·n/(4k) adversarial
    faults, the surviving H has at least n - k·f/α nodes and node
    expansion at least (1 - 1/k)·α.

    The set-finding oracle is {!Low_expansion}; with the heuristic
    finder the loop stops when the portfolio can no longer exhibit a
    low-expansion set, so the size guarantee is exact (culling only
    ever removes certified-low-expansion sets, Lemma 2.2 accounting
    holds) while the final expansion claim is "no witness below the
    threshold was found". *)

type culled = {
  set : Bitset.t;  (** S_i, in original node ids *)
  size : int;
  boundary : int;  (** |Γ(S_i)| measured inside G_i at cull time *)
}

type result = {
  kept : Bitset.t;  (** H: alive nodes that survived pruning *)
  culled : culled list;  (** in cull order *)
  iterations : int;
  threshold : float;  (** α·ε *)
}

val run :
  ?obs:Fn_obs.Sink.t ->
  ?finder:Low_expansion.t ->
  ?rng:Rng.t ->
  ?domains:int ->
  Graph.t ->
  alive:Bitset.t ->
  alpha:float ->
  epsilon:float ->
  result
(** [run g ~alive ~alpha ~epsilon] executes Prune(ε) with threshold
    α·ε.  Requires [alpha > 0] and [0 < epsilon < 1].  [domains] is
    forwarded to the default {!Low_expansion.default} finder (default
    1: sequential, byte-reproducible); it is ignored when [finder] is
    given.  Per-round boundary counts reuse a
    {!Boundary.Scratch} rather than allocating per round, with
    results equal to a fresh {!Boundary.node_boundary_size}.

    With an enabled [obs] sink the run is wrapped in a ["prune.run"]
    span and every cull emits a ["prune.round"] instant (culled size,
    measured boundary ratio, survivor count); with the default null
    sink no clock is read and nothing is allocated. *)

val run_v :
  ?obs:Fn_obs.Sink.t ->
  ?finder:Low_expansion.t_v ->
  ?rng:Rng.t ->
  ?domains:int ->
  Gview.t ->
  alive:Bitset.t ->
  alpha:float ->
  epsilon:float ->
  result
(** {!run} on either {!Gview.t} arm.  The round loop (finder call,
    scratch boundary count, cull accounting) never materializes
    edges, so Prune runs on implicit 10^7-node topologies; the
    default finder is {!Low_expansion.default_v}, whose implicit arm
    is the narrower ball-only portfolio.  [run g] equals
    [run_v (Gview.Csr g)] exactly. *)

val total_culled : result -> int

val verify_certificates : Graph.t -> alive:Bitset.t -> result -> bool
(** Re-check every culled set against the graph state it was removed
    from: recomputes |Γ(S_i)| and |S_i| <= |G_i|/2 independently.
    [alive] is the original post-fault mask the run started from. *)
