open Fn_graph

type culled = {
  found : Bitset.t;
  compacted : Bitset.t;
  size : int;
  edge_boundary : int;
}

type result = {
  kept : Bitset.t;
  culled : culled list;
  iterations : int;
  threshold : float;
}

(* The finder may return a disconnected witness; at least one of its
   connected components meets the same edge-boundary-to-size ratio
   (the ratio of a disjoint union is a weighted mediant of the
   components' ratios).  Pick the best component. *)
let best_connected_piece ~scratch ~alive view s threshold =
  let comps = Components.compute_v ~alive:s view in
  if comps.Components.count = 0 then None
  else begin
    let best = ref None in
    for id = 0 to comps.Components.count - 1 do
      let c = Components.members comps id in
      let ratio =
        float_of_int (Boundary.Scratch.edge_boundary_size_v scratch ~alive view c)
        /. float_of_int (Bitset.cardinal c)
      in
      match !best with
      | Some (_, br) when br <= ratio -> ()
      | _ -> best := Some (c, ratio)
    done;
    match !best with
    | Some (c, r) when r <= threshold +. 1e-9 -> Some c
    | _ -> None
  end

let run_v ?(obs = Fn_obs.Sink.null) ?finder ?rng ?domains view ~alive ~alpha_e ~epsilon =
  if alpha_e <= 0.0 then invalid_arg "Prune2.run: alpha_e must be positive";
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Prune2.run: need 0 < epsilon < 1";
  let finder =
    match finder with
    | Some f -> f
    | None -> Low_expansion.default_v ?rng ?domains Fn_expansion.Cut.Edge
  in
  (* one generation-stamped scratch serves every boundary count of the
     run (round certificates and the witness component split) *)
  let scratch = Boundary.Scratch.create (Gview.num_nodes view) in
  let threshold = alpha_e *. epsilon in
  let on = Fn_obs.Sink.enabled obs in
  let sp =
    if on then
      Fn_obs.Span.enter obs "prune2.run"
        ~fields:
          [
            ("alive", Fn_obs.Sink.Int (Bitset.cardinal alive));
            ("alpha_e", Fn_obs.Sink.Float alpha_e);
            ("epsilon", Fn_obs.Sink.Float epsilon);
            ("threshold", Fn_obs.Sink.Float threshold);
          ]
    else Fn_obs.Span.null
  in
  let current = Bitset.copy alive in
  let culled = ref [] in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    if Bitset.cardinal current < 2 then continue := false
    else
      match finder ~alive:current view ~threshold with
      | None -> continue := false
      | Some witness -> (
        match best_connected_piece ~scratch ~alive:current view witness threshold with
        | None -> continue := false
        | Some s ->
          incr iterations;
          let k = Compact.compactify_v ~alive:current view s in
          let size = Bitset.cardinal k in
          let edge_boundary =
            Boundary.Scratch.edge_boundary_size_v scratch ~alive:current view k
          in
          culled := { found = s; compacted = k; size; edge_boundary } :: !culled;
          Bitset.diff_into current k;
          if on then begin
            Fn_obs.Span.instant obs "prune2.round"
              ~fields:
                [
                  ("round", Fn_obs.Sink.Int !iterations);
                  ("culled", Fn_obs.Sink.Int size);
                  ("edge_boundary", Fn_obs.Sink.Int edge_boundary);
                  ( "ratio",
                    Fn_obs.Sink.Float (float_of_int edge_boundary /. float_of_int size) );
                  ("survivors", Fn_obs.Sink.Int (Bitset.cardinal current));
                ];
            Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "prune2.rounds");
            Fn_obs.Metrics.add (Fn_obs.Metrics.counter "prune2.culled_nodes") size
          end)
  done;
  if on then
    Fn_obs.Span.exit sp
      ~fields:
        [
          ("iterations", Fn_obs.Sink.Int !iterations);
          ("kept", Fn_obs.Sink.Int (Bitset.cardinal current));
        ];
  { kept = current; culled = List.rev !culled; iterations = !iterations; threshold }

let run ?obs ?finder ?rng ?domains g ~alive ~alpha_e ~epsilon =
  (* a custom Graph finder closes over [g]; the default lifts to
     Low_expansion.default_v, whose CSR arm is Low_expansion.default *)
  let finder =
    Option.map
      (fun f ~alive view ~threshold ->
        ignore view;
        f ~alive g ~threshold)
      finder
  in
  run_v ?obs ?finder ?rng ?domains (Gview.Csr g) ~alive ~alpha_e ~epsilon

let total_culled r = List.fold_left (fun acc c -> acc + c.size) 0 r.culled

let verify_certificates g ~alive r =
  let current = Bitset.copy alive in
  let ok = ref true in
  List.iter
    (fun c ->
      let total = Bitset.cardinal current in
      if not (Bitset.subset c.found current) then ok := false;
      if not (Bitset.subset c.compacted current) then ok := false;
      if not (Dfs.is_connected_subset g c.found) then ok := false;
      let s_size = Bitset.cardinal c.found in
      if 2 * s_size > total then ok := false;
      let s_boundary = Boundary.edge_boundary_size ~alive:current g c.found in
      if float_of_int s_boundary > (r.threshold *. float_of_int s_size) +. 1e-9 then ok := false;
      (* Claim 3.5 / Lemma 3.3: the culled set must be compact in G_i --
         provided G_i is connected, which is the lemma's hypothesis (on
         a disconnected remnant whole components are culled and the
         complement may itself be disconnected) *)
      if
        Dfs.is_connected_subset g current
        && not (Compact.is_compact ~alive:current g c.compacted)
      then ok := false;
      let k_size = Bitset.cardinal c.compacted in
      let k_boundary = Boundary.edge_boundary_size ~alive:current g c.compacted in
      if k_size <> c.size || k_boundary <> c.edge_boundary then ok := false;
      let s_ratio = float_of_int s_boundary /. float_of_int s_size in
      let k_ratio = float_of_int k_boundary /. float_of_int k_size in
      if k_ratio > s_ratio +. 1e-9 then ok := false;
      Bitset.diff_into current c.compacted)
    r.culled;
  if not (Bitset.equal current r.kept) then ok := false;
  !ok
