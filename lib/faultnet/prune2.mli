open Fn_graph
open Fn_prng

(** Algorithm [Prune2(ε)] — Figure 2 of the paper.

    The random-fault variant: while the current graph G_i contains a
    connected set S_i with edge boundary |(S_i, G_i \ S_i)| <=
    α_e·ε·|S_i| and |S_i| <= |G_i|/2, cull the *compactification*
    K_{G_i}(S_i) (Lemma 3.3), which has edge expansion no larger than
    S_i's and leaves the remainder connected-enough for the Theorem
    3.4 accounting.  Theorem 3.4: under fault probability
    p <= 1/(2e·δ^{4σ}) and ε <= 1/(2δ), w.h.p. the surviving H has
    at least n/2 nodes and edge expansion >= ε·α_e. *)

type culled = {
  found : Bitset.t;  (** the low-expansion connected set S_i *)
  compacted : Bitset.t;  (** K_{G_i}(S_i), what was actually removed *)
  size : int;  (** |K| *)
  edge_boundary : int;  (** |(K, G_i \ K)| at cull time *)
}

type result = {
  kept : Bitset.t;
  culled : culled list;
  iterations : int;
  threshold : float;  (** α_e·ε *)
}

val run :
  ?obs:Fn_obs.Sink.t ->
  ?finder:Low_expansion.t ->
  ?rng:Rng.t ->
  ?domains:int ->
  Graph.t ->
  alive:Bitset.t ->
  alpha_e:float ->
  epsilon:float ->
  result
(** Requires [alpha_e > 0] and [0 < epsilon < 1].  The finder's
    witness is split into connected components if necessary (one of
    them always satisfies the threshold, by the mediant inequality)
    before compactification.  [domains] is forwarded to the default
    {!Low_expansion.default} finder (default 1: sequential,
    byte-reproducible); ignored when [finder] is given.  Per-round
    edge-boundary counts (including the per-component ratios of the
    witness split) reuse a {!Boundary.Scratch} rather than
    allocating per round.

    With an enabled [obs] sink the run is wrapped in a ["prune2.run"]
    span and every cull emits a ["prune2.round"] instant (culled size,
    measured edge-boundary ratio, survivor count); the default null
    sink costs nothing. *)

val run_v :
  ?obs:Fn_obs.Sink.t ->
  ?finder:Low_expansion.t_v ->
  ?rng:Rng.t ->
  ?domains:int ->
  Gview.t ->
  alive:Bitset.t ->
  alpha_e:float ->
  epsilon:float ->
  result
(** {!run} on either {!Gview.t} arm: witness split, compactification
    and edge-boundary certificates all run through the view layer, so
    whole rounds execute on implicit topologies without materializing
    edges.  [run g] equals [run_v (Gview.Csr g)] exactly. *)

val total_culled : result -> int

val verify_certificates : Graph.t -> alive:Bitset.t -> result -> bool
(** Independently re-check, against a replay of the loop: each S_i
    connected, within the live graph, below threshold; each K_i
    compact in G_i (Claim 3.5) with edge expansion <= S_i's
    (Lemma 3.3). *)
