open Fn_graph
open Fn_prng
open Fn_expansion

let random rng g ~budget =
  let n = Graph.num_nodes g in
  if budget < 0 || budget > n then invalid_arg "Adversary.random: bad budget";
  Fault_set.of_faulty_array n (Rng.sample rng n budget)

let degree_targeted g ~budget =
  let n = Graph.num_nodes g in
  if budget < 0 || budget > n then invalid_arg "Adversary.degree_targeted: bad budget";
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Int.compare (Graph.degree g b) (Graph.degree g a) in
      if c <> 0 then c else Int.compare a b)
    order;
  Fault_set.of_faulty_array n (Array.sub order 0 budget)

let targets g ~targets ~budget =
  let n = Graph.num_nodes g in
  if budget < 0 then invalid_arg "Adversary.targets: negative budget";
  let take = min budget (Array.length targets) in
  Fault_set.of_faulty_array n (Array.sub targets 0 take)

let ball_isolation ?(samples = 16) rng g ~budget =
  let n = Graph.num_nodes g in
  if budget < 0 || budget > n then invalid_arg "Adversary.ball_isolation: bad budget";
  let best_boundary = ref None in
  let best_ball_size = ref (-1) in
  for _ = 1 to samples do
    let src = Rng.int rng n in
    (* grow the ball radius by radius while its boundary fits *)
    let r = ref 1 in
    let continue = ref true in
    while !continue do
      let ball = Bfs.ball g src !r in
      let boundary = Boundary.node_boundary g ball in
      let bsize = Bitset.cardinal boundary in
      let ball_size = Bitset.cardinal ball in
      if bsize <= budget && bsize > 0 && 2 * ball_size <= n then begin
        if ball_size > !best_ball_size then begin
          best_ball_size := ball_size;
          best_boundary := Some boundary
        end;
        incr r;
        if !r > n then continue := false
      end
      else continue := false
    done
  done;
  match !best_boundary with
  | Some b -> Fault_set.of_faulty n b
  | None -> Fault_set.none n

type cut_step = { fragment_size : int; cut_side : int; removed : int }

type recursive_result = {
  faults : Fault_set.t;
  steps : cut_step list;
  final_fragments : int list;
}

let recursive_cut ?rng ?(max_budget = max_int) g ~epsilon =
  if epsilon <= 0.0 || epsilon > 1.0 then invalid_arg "Adversary.recursive_cut: bad epsilon";
  let rng = match rng with Some r -> r | None -> Rng.create 0x25D1 in
  let n = Graph.num_nodes g in
  let threshold = max 2 (int_of_float (ceil (epsilon *. float_of_int n))) in
  let faulty = Bitset.create n in
  let alive = Bitset.create_full n in
  let steps = ref [] in
  let spent = ref 0 in
  let rec loop () =
    let comps = Components.compute ~alive g in
    (* largest fragment at or above the threshold *)
    let target = ref (-1) in
    for id = 0 to comps.Components.count - 1 do
      if
        comps.Components.sizes.(id) >= threshold
        && (!target < 0 || comps.Components.sizes.(id) > comps.Components.sizes.(!target))
      then target := id
    done;
    if !target >= 0 then begin
      let fragment = Components.members comps !target in
      let fragment_size = Bitset.cardinal fragment in
      let est = Estimate.run ~alive:fragment ~rng g Cut.Node in
      let u = est.Estimate.witness in
      let boundary = Boundary.node_boundary ~alive:fragment g u in
      let removed = Bitset.cardinal boundary in
      if removed = 0 || !spent + removed > max_budget then ()
      else begin
        Bitset.union_into faulty boundary;
        Bitset.diff_into alive boundary;
        spent := !spent + removed;
        steps := { fragment_size; cut_side = Bitset.cardinal u; removed } :: !steps;
        loop ()
      end
    end
  in
  loop ();
  let comps = Components.compute ~alive g in
  let final_fragments =
    Array.to_list comps.Components.sizes |> List.sort (fun a b -> Int.compare b a)
  in
  { faults = Fault_set.of_faulty n faulty; steps = List.rev !steps; final_fragments }
