open Fn_graph
open Fn_prng

type snapshot = { time : float; faults : Fault_set.t }

type event = Fault of int | Repair of int

type batch_error =
  | Out_of_range of int
  | Fault_of_faulty of int
  | Repair_of_alive of int

let event_node = function Fault v | Repair v -> v

let error_to_string = function
  | Out_of_range v -> Printf.sprintf "node %d out of range" v
  | Fault_of_faulty v -> Printf.sprintf "fault of already-faulty node %d" v
  | Repair_of_alive v -> Printf.sprintf "repair of alive node %d" v

(* Last-write-wins coalescing keyed by node: the surviving event for a
   node is its last occurrence, emitted at that occurrence's position,
   so the normalized batch preserves the input's relative order of
   *final* intents.  Validation runs on the coalesced batch against
   the pre-batch mask — [Fault v; Repair v] on an alive [v] coalesces
   to [Repair v] and is rejected as [Repair_of_alive]. *)
let normalize_batch ~n ~faulty events =
  let arr = Array.of_list events in
  let last = Hashtbl.create (2 * max 1 (Array.length arr)) in
  let range_err = ref None in
  Array.iteri
    (fun i ev ->
      let v = event_node ev in
      if v < 0 || v >= n then begin
        if Option.is_none !range_err then range_err := Some (Out_of_range v)
      end
      else Hashtbl.replace last v i)
    arr;
  match !range_err with
  | Some e -> Error e
  | None ->
    let err = ref None in
    let out = ref [] in
    Array.iteri
      (fun i ev ->
        if Option.is_none !err then begin
          let v = event_node ev in
          if (match Hashtbl.find_opt last v with Some j -> j = i | None -> false) then
            match ev with
            | Fault v when Bitset.mem faulty v -> err := Some (Fault_of_faulty v)
            | Repair v when not (Bitset.mem faulty v) -> err := Some (Repair_of_alive v)
            | ev -> out := ev :: !out
        end)
      arr;
    (match !err with Some e -> Error e | None -> Ok (List.rev !out))

let apply_batch ~faulty events =
  List.iter
    (function
      | Fault v -> Bitset.add faulty v
      | Repair v -> Bitset.remove faulty v)
    events

let stationary_dead_fraction ~rate_fail ~rate_repair =
  if rate_fail < 0.0 || rate_repair <= 0.0 then
    invalid_arg "Churn.stationary_dead_fraction: need rate_fail >= 0, rate_repair > 0";
  rate_fail /. (rate_fail +. rate_repair)

(* Per-node independent on/off processes.  Instead of a global event
   queue we exploit independence: for each node, walk its alternating
   exponential holding times; record its state at each snapshot
   instant.  This is exact and O(expected flips per node + snapshots)
   per node. *)
let simulate rng g ~rate_fail ~rate_repair ~horizon ~snapshots =
  if rate_fail <= 0.0 || rate_repair <= 0.0 then
    invalid_arg "Churn.simulate: rates must be positive";
  if horizon <= 0.0 then invalid_arg "Churn.simulate: horizon must be positive";
  if snapshots < 1 then invalid_arg "Churn.simulate: need at least one snapshot";
  let n = Graph.num_nodes g in
  let times =
    Array.init snapshots (fun i ->
        horizon *. float_of_int (i + 1) /. float_of_int snapshots)
  in
  let dead_at = Array.map (fun _ -> Bitset.create n) times in
  for v = 0 to n - 1 do
    let t = ref 0.0 in
    let alive = ref true in
    let next_snapshot = ref 0 in
    while !next_snapshot < snapshots do
      let rate = if !alive then rate_fail else rate_repair in
      let hold = Dist.exponential rng rate in
      let until = !t +. hold in
      (* record the current state for every snapshot inside [t, until) *)
      while !next_snapshot < snapshots && times.(!next_snapshot) < until do
        if not !alive then Bitset.add dead_at.(!next_snapshot) v;
        incr next_snapshot
      done;
      t := until;
      alive := not !alive
    done
  done;
  Array.to_list
    (Array.mapi
       (fun i dead -> { time = times.(i); faults = Fault_set.of_faulty n dead })
       dead_at)
