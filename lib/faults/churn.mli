open Fn_graph
open Fn_prng

(** Transient faults: continuous-time churn.

    The paper's fault taxonomy (§1.3) distinguishes permanent from
    transient faults; P2P networks live in the transient regime.  Each
    node runs an independent on/off Markov process: alive nodes fail
    at rate [rate_fail], dead nodes come back at rate [rate_repair].
    The stationary dead fraction is
    rate_fail / (rate_fail + rate_repair), so experiments can dial in
    any target fault level and watch expansion as a *trajectory*
    instead of a one-shot sample. *)

type snapshot = {
  time : float;
  faults : Fault_set.t;
}

type event = Fault of int | Repair of int
(** One discrete churn step against a live fault mask: [Fault v] kills
    an alive node, [Repair v] revives a faulty one. *)

type batch_error =
  | Out_of_range of int  (** node id outside [0, n) *)
  | Fault_of_faulty of int  (** faulting a node that is already dead *)
  | Repair_of_alive of int  (** repairing a node that is not dead *)

val event_node : event -> int

val error_to_string : batch_error -> string

val normalize_batch :
  n:int -> faulty:Bitset.t -> event list -> (event list, batch_error) result
(** Coalesce and validate one batch against the pre-batch fault mask.
    Repeated events on the same node coalesce last-write-wins (the
    surviving event keeps the position of its last occurrence); the
    coalesced batch is then checked against [faulty], rejecting
    fault-of-already-faulty and repair-of-alive with a typed error
    instead of silently proceeding.  Out-of-range ids are rejected
    first, in input order.  Note the coalescing consequence:
    [Fault v; Repair v] on an alive [v] normalizes to [Repair v] and
    is therefore rejected as [Repair_of_alive]. *)

val apply_batch : faulty:Bitset.t -> event list -> unit
(** Flip a *normalized* batch into the fault mask in place.  Only
    legal on the output of {!normalize_batch} for the same mask. *)

val stationary_dead_fraction : rate_fail:float -> rate_repair:float -> float

val simulate :
  Rng.t ->
  Graph.t ->
  rate_fail:float ->
  rate_repair:float ->
  horizon:float ->
  snapshots:int ->
  snapshot list
(** Exact event-driven simulation from the all-alive state; returns
    [snapshots] evenly spaced fault patterns over (0, horizon].
    Requires positive rates, horizon and snapshot count.  O(events +
    snapshots·n) expected. *)
