let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

let check_src g alive src =
  if src < 0 || src >= Graph.num_nodes g then invalid_arg "Bfs: source out of range";
  if not (is_alive alive src) then invalid_arg "Bfs: source not alive"

(* Frontiers are flat int-array ring buffers with head/tail cursors:
   every node is enqueued at most once, so capacity n never wraps and
   a traversal costs one array allocation instead of a heap cell per
   push (Queue.t).  [head = tail] means empty. *)

let multi_source_distances ?alive g srcs =
  let n = Graph.num_nodes g in
  let dist = Array.make n (-1) in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  Array.iter
    (fun s ->
      check_src g alive s;
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    srcs;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 && is_alive alive v then begin
          dist.(v) <- dist.(u) + 1;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  dist

let distances ?alive g src = multi_source_distances ?alive g [| src |]

let reachable ?alive g src =
  let dist = distances ?alive g src in
  let out = Bitset.create (Graph.num_nodes g) in
  Array.iteri (fun v d -> if d >= 0 then Bitset.add out v) dist;
  out

let tree ?alive g src =
  check_src g alive src;
  let n = Graph.num_nodes g in
  let parent = Array.make n (-1) in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  parent.(src) <- src;
  queue.(0) <- src;
  tail := 1;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors g u (fun v ->
        if parent.(v) < 0 && is_alive alive v then begin
          parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  parent

let ball ?alive g src r =
  check_src g alive src;
  let n = Graph.num_nodes g in
  let dist = Array.make n (-1) in
  let out = Bitset.create n in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  Bitset.add out src;
  queue.(0) <- src;
  tail := 1;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    if dist.(u) < r then
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) < 0 && is_alive alive v then begin
            dist.(v) <- dist.(u) + 1;
            Bitset.add out v;
            queue.(!tail) <- v;
            incr tail
          end)
  done;
  out

(* Resumable ball growth: the frontier state persists between calls,
   so growing a ball through doubling size targets (Estimate's
   geometric candidate schedule) traverses each node once overall
   instead of restarting the BFS per target. *)
type ball_grower = {
  g : Graph.t;
  alive : Bitset.t option;
  seen : bool array;
  queue : int array;
  mutable head : int;
  mutable tail : int;
  ball : Bitset.t;
  mutable size : int;
}

let ball_grower ?alive g src =
  check_src g alive src;
  let n = Graph.num_nodes g in
  let t =
    {
      g;
      alive;
      seen = Array.make n false;
      queue = Array.make (max 1 n) 0;
      head = 0;
      tail = 1;
      ball = Bitset.create n;
      size = 0;
    }
  in
  t.seen.(src) <- true;
  t.queue.(0) <- src;
  t

let ball_size t = t.size

let ball_exhausted t = t.head >= t.tail

let grow_ball t k =
  while t.size < k && t.head < t.tail do
    let u = t.queue.(t.head) in
    t.head <- t.head + 1;
    Bitset.add t.ball u;
    t.size <- t.size + 1;
    Graph.iter_neighbors t.g u (fun v ->
        if (not t.seen.(v)) && is_alive t.alive v then begin
          t.seen.(v) <- true;
          t.queue.(t.tail) <- v;
          t.tail <- t.tail + 1
        end)
  done;
  Bitset.copy t.ball

let ball_of_size ?alive g src k = grow_ball (ball_grower ?alive g src) k

let eccentricity ?alive g src =
  let dist = distances ?alive g src in
  Array.fold_left max 0 dist

let path_to ~parents target =
  if target < 0 || target >= Array.length parents || parents.(target) < 0 then raise Not_found;
  let rec walk v acc = if parents.(v) = v then v :: acc else walk parents.(v) (v :: acc) in
  walk target []
