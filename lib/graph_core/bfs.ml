let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

let check_src view alive src =
  if src < 0 || src >= Gview.num_nodes view then invalid_arg "Bfs: source out of range";
  if not (is_alive alive src) then invalid_arg "Bfs: source not alive"

(* Frontiers are flat int-array ring buffers with head/tail cursors:
   every node is enqueued at most once, so capacity n never wraps and
   a traversal costs one array allocation instead of a heap cell per
   push (Queue.t).  [head = tail] means empty.

   Every traversal takes a [Gview.t] and matches it once at the top:
   the [Csr] arm loops over the flat adjacency arrays exactly as
   before, the [Implicit] arm drives the generator closure.  The
   [Graph.t] entry points below are thin [Csr] wrappers. *)

let multi_source_distances_v ?alive view srcs =
  let n = Gview.num_nodes view in
  let dist = Array.make n (-1) in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  Array.iter
    (fun s ->
      check_src view alive s;
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    srcs;
  let visit u v =
    if dist.(v) < 0 && is_alive alive v then begin
      dist.(v) <- dist.(u) + 1;
      queue.(!tail) <- v;
      incr tail
    end
  in
  (match view with
  | Gview.Csr g ->
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      Graph.iter_neighbors g u (fun v -> visit u v)
    done
  | Gview.Implicit i ->
    let iter = i.Gview.iter_neighbors in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      iter u (fun v -> visit u v)
    done);
  dist

let multi_source_distances ?alive g srcs = multi_source_distances_v ?alive (Gview.Csr g) srcs

let distances_v ?alive view src = multi_source_distances_v ?alive view [| src |]

let distances ?alive g src = multi_source_distances ?alive g [| src |]

let reachable_v ?alive view src =
  let dist = distances_v ?alive view src in
  let out = Bitset.create (Gview.num_nodes view) in
  Array.iteri (fun v d -> if d >= 0 then Bitset.add out v) dist;
  out

let reachable ?alive g src = reachable_v ?alive (Gview.Csr g) src

let tree ?alive g src =
  check_src (Gview.Csr g) alive src;
  let n = Graph.num_nodes g in
  let parent = Array.make n (-1) in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  parent.(src) <- src;
  queue.(0) <- src;
  tail := 1;
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    Graph.iter_neighbors g u (fun v ->
        if parent.(v) < 0 && is_alive alive v then begin
          parent.(v) <- u;
          queue.(!tail) <- v;
          incr tail
        end)
  done;
  parent

let ball_v ?alive view src r =
  check_src view alive src;
  let n = Gview.num_nodes view in
  let dist = Array.make n (-1) in
  let out = Bitset.create n in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  Bitset.add out src;
  queue.(0) <- src;
  tail := 1;
  let visit u v =
    if dist.(v) < 0 && is_alive alive v then begin
      dist.(v) <- dist.(u) + 1;
      Bitset.add out v;
      queue.(!tail) <- v;
      incr tail
    end
  in
  (match view with
  | Gview.Csr g ->
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      if dist.(u) < r then Graph.iter_neighbors g u (fun v -> visit u v)
    done
  | Gview.Implicit i ->
    let iter = i.Gview.iter_neighbors in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      if dist.(u) < r then iter u (fun v -> visit u v)
    done);
  out

let ball ?alive g src r = ball_v ?alive (Gview.Csr g) src r

(* Resumable ball growth: the frontier state persists between calls,
   so growing a ball through doubling size targets (Estimate's
   geometric candidate schedule) traverses each node once overall
   instead of restarting the BFS per target. *)
type ball_grower = {
  view : Gview.t;
  alive : Bitset.t option;
  seen : bool array;
  queue : int array;
  mutable head : int;
  mutable tail : int;
  ball : Bitset.t;
  mutable size : int;
}

let ball_grower_v ?alive view src =
  check_src view alive src;
  let n = Gview.num_nodes view in
  let t =
    {
      view;
      alive;
      seen = Array.make n false;
      queue = Array.make (max 1 n) 0;
      head = 0;
      tail = 1;
      ball = Bitset.create n;
      size = 0;
    }
  in
  t.seen.(src) <- true;
  t.queue.(0) <- src;
  t

let ball_grower ?alive g src = ball_grower_v ?alive (Gview.Csr g) src

let ball_size t = t.size

let ball_exhausted t = t.head >= t.tail

let grow_ball t k =
  let expand v =
    if (not t.seen.(v)) && is_alive t.alive v then begin
      t.seen.(v) <- true;
      t.queue.(t.tail) <- v;
      t.tail <- t.tail + 1
    end
  in
  (match t.view with
  | Gview.Csr g ->
    while t.size < k && t.head < t.tail do
      let u = t.queue.(t.head) in
      t.head <- t.head + 1;
      Bitset.add t.ball u;
      t.size <- t.size + 1;
      Graph.iter_neighbors g u expand
    done
  | Gview.Implicit i ->
    let iter = i.Gview.iter_neighbors in
    while t.size < k && t.head < t.tail do
      let u = t.queue.(t.head) in
      t.head <- t.head + 1;
      Bitset.add t.ball u;
      t.size <- t.size + 1;
      iter u expand
    done);
  Bitset.copy t.ball

let ball_of_size_v ?alive view src k = grow_ball (ball_grower_v ?alive view src) k

let ball_of_size ?alive g src k = grow_ball (ball_grower ?alive g src) k

let eccentricity ?alive g src =
  let dist = distances ?alive g src in
  Array.fold_left max 0 dist

let path_to ~parents target =
  if target < 0 || target >= Array.length parents || parents.(target) < 0 then raise Not_found;
  let rec walk v acc = if parents.(v) = v then v :: acc else walk parents.(v) (v :: acc) in
  walk target []
