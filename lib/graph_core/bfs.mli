(** Breadth-first search, optionally restricted to an alive mask.

    All functions treat nodes outside [alive] as absent; omitting
    [alive] means the whole graph is alive.  Distances use [-1] for
    unreachable (or dead) nodes.

    The traversal core runs on {!Gview.t} (the [_v] entry points) and
    matches the representation once at the top: CSR inputs keep the
    flat-array loops, implicit inputs drive the generator closure
    without ever materializing edges.  The [Graph.t] functions are
    thin [Gview.Csr] wrappers kept for the existing call sites. *)

val distances_v : ?alive:Bitset.t -> Gview.t -> int -> int array
(** Hop distances from [src] on either representation; [-1] marks
    unreachable nodes.  [src] must be alive. *)

val multi_source_distances_v : ?alive:Bitset.t -> Gview.t -> int array -> int array

val reachable_v : ?alive:Bitset.t -> Gview.t -> int -> Bitset.t

val ball_v : ?alive:Bitset.t -> Gview.t -> int -> int -> Bitset.t
(** [ball_v view src r] is the set of alive nodes within distance [r];
    order-insensitive, so both arms agree exactly. *)

val ball_of_size_v : ?alive:Bitset.t -> Gview.t -> int -> int -> Bitset.t

val distances : ?alive:Bitset.t -> Graph.t -> int -> int array
(** [distances g src] is the array of hop distances from [src];
    [-1] marks unreachable nodes.  [src] must be alive. *)

val multi_source_distances : ?alive:Bitset.t -> Graph.t -> int array -> int array
(** Distances from the nearest of several sources. *)

val reachable : ?alive:Bitset.t -> Graph.t -> int -> Bitset.t
(** Set of alive nodes reachable from [src] (including [src]). *)

val tree : ?alive:Bitset.t -> Graph.t -> int -> int array
(** BFS parent array: [parent.(src) = src], [-1] for unreachable. *)

val ball : ?alive:Bitset.t -> Graph.t -> int -> int -> Bitset.t
(** [ball g src r] is the set of alive nodes within distance [r]. *)

val ball_of_size : ?alive:Bitset.t -> Graph.t -> int -> int -> Bitset.t
(** [ball_of_size g src k] grows a BFS region from [src] and stops as
    soon as at least [k] nodes are collected (or the component is
    exhausted).  BFS order makes the result connected. *)

type ball_grower
(** Resumable BFS ball growth from one source.  The traversal state
    persists across {!grow_ball} calls, so growing through an
    increasing size schedule (e.g. doubling) visits each node once
    overall instead of restarting per size. *)

val ball_grower : ?alive:Bitset.t -> Graph.t -> int -> ball_grower
(** [ball_grower g src] starts a traversal at [src] with no node
    collected yet.  [src] must be alive. *)

val ball_grower_v : ?alive:Bitset.t -> Gview.t -> int -> ball_grower
(** Like {!ball_grower} on either representation.  On an implicit view
    the grower holds O(n) traversal state but touches only the ball it
    actually grows — the 10^7-node bench kernels go through here. *)

val grow_ball : ball_grower -> int -> Bitset.t
(** [grow_ball t k] extends the traversal until at least [k] nodes
    are collected (or the component is exhausted) and returns a fresh
    copy of the current ball.  [grow_ball t k] after [grow_ball t j]
    with [j <= k] equals [ball_of_size g src k]: BFS order is
    deterministic, so resuming and restarting agree.  Monotone: the
    ball only ever gains nodes. *)

val ball_size : ball_grower -> int
(** Number of nodes collected so far (the cardinal of the last
    {!grow_ball} result). *)

val ball_exhausted : ball_grower -> bool
(** True once the component of the source has been fully collected;
    further {!grow_ball} calls return the same set. *)

val eccentricity : ?alive:Bitset.t -> Graph.t -> int -> int
(** Largest finite distance from the source. *)

val path_to : parents:int array -> int -> int list
(** Reconstruct the path from the BFS source to a target out of a
    {!tree} parent array; raises [Not_found] if unreachable. *)
