type t = { n : int; words : int array }

let bits_per_word = 63 (* OCaml native ints *)

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative universe";
  { n; words = Array.make (max 1 (word_count n)) 0 }

let universe t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of universe"

(* Mask of valid bits in the last word, to keep complement/cardinal
   exact.  A full 63-bit word is [-1] (all bits set in a native int). *)
let last_mask t =
  let r = t.n mod bits_per_word in
  if r = 0 && t.n > 0 then -1 else (1 lsl r) - 1

let fill t =
  if t.n = 0 then Array.fill t.words 0 (Array.length t.words) 0
  else begin
    Array.fill t.words 0 (Array.length t.words) (-1);
    let wc = word_count t.n in
    t.words.(wc - 1) <- last_mask t;
    for w = wc to Array.length t.words - 1 do
      t.words.(w) <- 0
    done
  end

let create_full n =
  let t = create n in
  fill t;
  t

let copy t = { n = t.n; words = Array.copy t.words }

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let set t i b = if b then add t i else remove t i

let popcount =
  let rec count x acc = if x = 0 then acc else count (x land (x - 1)) (acc + 1) in
  fun x -> count x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let low = !word land - !word in
      let bit =
        (* index of the lowest set bit *)
        let rec idx b k = if b land 1 = 1 then k else idx (b lsr 1) (k + 1) in
        idx low 0
      in
      f ((w * bits_per_word) + bit);
      word := !word land (!word - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let to_array t =
  let out = Array.make (cardinal t) 0 in
  let k = ref 0 in
  iter
    (fun i ->
      out.(!k) <- i;
      incr k)
    t;
  out

let of_list n xs =
  let t = create n in
  List.iter (add t) xs;
  t

let of_array n xs =
  let t = create n in
  Array.iter (add t) xs;
  t

let same_universe a b =
  if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let union_into dst src =
  same_universe dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_into dst src =
  same_universe dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let diff_into dst src =
  same_universe dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land lnot src.words.(w)
  done

let complement t =
  let out = create_full t.n in
  diff_into out t;
  out

let equal a b =
  same_universe a b;
  Array.for_all2 ( = ) a.words b.words

let subset a b =
  same_universe a b;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land lnot b.words.(w) <> 0 then ok := false
  done;
  !ok

let disjoint a b =
  same_universe a b;
  let ok = ref true in
  for w = 0 to Array.length a.words - 1 do
    if a.words.(w) land b.words.(w) <> 0 then ok := false
  done;
  !ok

let lowest_bit_index =
  let rec idx b k = if b land 1 = 1 then k else idx (b lsr 1) (k + 1) in
  fun b -> idx b 0

let next_member t i =
  if i < 0 then invalid_arg "Bitset.next_member: negative start";
  if i >= t.n then None
  else begin
    let wc = word_count t.n in
    let w0 = i / bits_per_word in
    (* mask off the bits below [i] in the first word, then scan *)
    let rec scan w masked =
      if w >= wc then None
      else
        let word = if masked then t.words.(w) land lnot ((1 lsl (i mod bits_per_word)) - 1) else t.words.(w) in
        if word = 0 then scan (w + 1) false
        else Some ((w * bits_per_word) + lowest_bit_index (word land -word))
    in
    scan w0 true
  end

let choose t =
  let found = ref None in
  (try
     iter
       (fun i ->
         found := Some i;
         raise Exit)
       t
   with Exit -> ());
  !found

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf fmt ", ";
      Format.fprintf fmt "%d" i)
    t;
  Format.fprintf fmt "}"
