(** Packed bit sets over a fixed universe [0 .. n-1].

    Used throughout faultnet as node masks: alive/faulty markers, cut
    sides, visited sets.  All operations are bounds-checked against
    the universe size. *)

type t

val create : int -> t
(** [create n] is the empty set over universe size [n]. *)

val create_full : int -> t
(** [create_full n] contains all of [0 .. n-1]. *)

val universe : t -> int
(** Universe size [n]. *)

val copy : t -> t

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val set : t -> int -> bool -> unit

val cardinal : t -> int
(** Number of members; O(words). *)

val is_empty : t -> bool

val clear : t -> unit
(** Remove all members. *)

val fill : t -> unit
(** Add all of [0 .. n-1]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val to_array : t -> int array
val of_list : int -> int list -> t
val of_array : int -> int array -> t

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src].  Same universe. *)

val inter_into : t -> t -> unit
(** [dst := dst ∩ src]. *)

val diff_into : t -> t -> unit
(** [dst := dst \ src]. *)

val complement : t -> t
(** Fresh set equal to [0..n-1] \ t. *)

val equal : t -> t -> bool
val subset : t -> t -> bool
(** [subset a b] is true iff every member of [a] is in [b]. *)

val disjoint : t -> t -> bool

val choose : t -> int option
(** Smallest member, if any; O(words). *)

val next_member : t -> int -> int option
(** [next_member t i] is the smallest member >= [i], if any; O(words)
    from the word containing [i].  Lets callers scan members in
    ascending order while skipping some — resume with [i = v + 1] —
    without the closure-and-exception cost of {!iter}.  Requires
    [i >= 0]; any [i >= n] yields [None]. *)

val pp : Format.formatter -> t -> unit
