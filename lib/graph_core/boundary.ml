let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

let node_boundary ?alive g u =
  let out = Bitset.create (Graph.num_nodes g) in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        Graph.iter_neighbors g v (fun w ->
            if (not (Bitset.mem u w)) && is_alive alive w then Bitset.add out w))
    u;
  out

let node_boundary_size ?alive g u = Bitset.cardinal (node_boundary ?alive g u)

let edge_boundary_size ?alive g u =
  let count = ref 0 in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        Graph.iter_neighbors g v (fun w ->
            if (not (Bitset.mem u w)) && is_alive alive w then incr count))
    u;
  !count

let edge_boundary ?alive g u =
  let out = ref [] in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        Graph.iter_neighbors g v (fun w ->
            if (not (Bitset.mem u w)) && is_alive alive w then out := (v, w) :: !out))
    u;
  List.rev !out

let internal_edge_count ?alive g u =
  let twice = ref 0 in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        Graph.iter_neighbors g v (fun w ->
            if Bitset.mem u w && is_alive alive w then incr twice))
    u;
  !twice / 2

let alive_cardinal alive u =
  match alive with
  | None -> Bitset.cardinal u
  | Some mask ->
    let inter = Bitset.copy u in
    Bitset.inter_into inter mask;
    Bitset.cardinal inter

module Scratch = struct
  (* Generation-stamped scratch arrays: a counter bump invalidates
     both arrays in O(1), so repeated boundary counts (the Prune /
     Prune2 round loops) reuse one allocation for the whole run
     instead of building a fresh Bitset per round. *)
  type t = { mutable stamp : int; in_set : int array; seen : int array }

  let create n =
    if n < 0 then invalid_arg "Boundary.Scratch.create: negative universe";
    { stamp = 0; in_set = Array.make n 0; seen = Array.make n 0 }

  let check t g =
    if Array.length t.in_set <> Graph.num_nodes g then
      invalid_arg "Boundary.Scratch: universe size mismatch"

  let node_boundary_size t ?alive g u =
    check t g;
    t.stamp <- t.stamp + 1;
    let m = t.stamp in
    let in_set = t.in_set and seen = t.seen in
    Bitset.iter (fun v -> in_set.(v) <- m) u;
    let count = ref 0 in
    Bitset.iter
      (fun v ->
        if is_alive alive v then
          Graph.iter_neighbors g v (fun w ->
              if in_set.(w) <> m && seen.(w) <> m && is_alive alive w then begin
                seen.(w) <- m;
                incr count
              end))
      u;
    !count

  let edge_boundary_size t ?alive g u =
    check t g;
    t.stamp <- t.stamp + 1;
    let m = t.stamp in
    let in_set = t.in_set in
    Bitset.iter (fun v -> in_set.(v) <- m) u;
    let count = ref 0 in
    Bitset.iter
      (fun v ->
        if is_alive alive v then
          Graph.iter_neighbors g v (fun w ->
              if in_set.(w) <> m && is_alive alive w then incr count))
      u;
    !count
end

let node_expansion ?alive g u =
  let size = alive_cardinal alive u in
  if size = 0 then invalid_arg "Boundary.node_expansion: empty set";
  float_of_int (node_boundary_size ?alive g u) /. float_of_int size

let edge_expansion ?alive g u =
  let inside = alive_cardinal alive u in
  let total =
    match alive with None -> Graph.num_nodes g | Some mask -> Bitset.cardinal mask
  in
  let outside = total - inside in
  if inside = 0 || outside = 0 then invalid_arg "Boundary.edge_expansion: empty side";
  float_of_int (edge_boundary_size ?alive g u) /. float_of_int (min inside outside)
