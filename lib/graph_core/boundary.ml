let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

(* The counting kernels are written once over a neighbor iterator and
   bound per representation: the CSR arm passes [Graph.iter_neighbors g]
   (the flat-array row loop), the implicit arm passes the generator
   closure.  The dispatch happens once per boundary query — outside
   the per-member loop — so both arms stay monomorphic inside. *)

let neighbor_iter view =
  match view with
  | Gview.Csr g -> Graph.iter_neighbors g
  | Gview.Implicit i -> i.Gview.iter_neighbors

let node_boundary_v ?alive view u =
  let iter = neighbor_iter view in
  let out = Bitset.create (Gview.num_nodes view) in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        iter v (fun w -> if (not (Bitset.mem u w)) && is_alive alive w then Bitset.add out w))
    u;
  out

let node_boundary ?alive g u = node_boundary_v ?alive (Gview.Csr g) u

let node_boundary_size_v ?alive view u = Bitset.cardinal (node_boundary_v ?alive view u)

let node_boundary_size ?alive g u = node_boundary_size_v ?alive (Gview.Csr g) u

let edge_boundary_size_v ?alive view u =
  let iter = neighbor_iter view in
  let count = ref 0 in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        iter v (fun w -> if (not (Bitset.mem u w)) && is_alive alive w then incr count))
    u;
  !count

let edge_boundary_size ?alive g u = edge_boundary_size_v ?alive (Gview.Csr g) u

let edge_boundary ?alive g u =
  let out = ref [] in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        Graph.iter_neighbors g v (fun w ->
            if (not (Bitset.mem u w)) && is_alive alive w then out := (v, w) :: !out))
    u;
  List.rev !out

let internal_edge_count_v ?alive view u =
  let iter = neighbor_iter view in
  let twice = ref 0 in
  Bitset.iter
    (fun v ->
      if is_alive alive v then
        iter v (fun w -> if Bitset.mem u w && is_alive alive w then incr twice))
    u;
  !twice / 2

let internal_edge_count ?alive g u = internal_edge_count_v ?alive (Gview.Csr g) u

let alive_cardinal alive u =
  match alive with
  | None -> Bitset.cardinal u
  | Some mask ->
    let inter = Bitset.copy u in
    Bitset.inter_into inter mask;
    Bitset.cardinal inter

module Scratch = struct
  (* Generation-stamped scratch arrays: a counter bump invalidates
     both arrays in O(1), so repeated boundary counts (the Prune /
     Prune2 round loops) reuse one allocation for the whole run
     instead of building a fresh Bitset per round. *)
  type t = { mutable stamp : int; in_set : int array; seen : int array }

  let create n =
    if n < 0 then invalid_arg "Boundary.Scratch.create: negative universe";
    { stamp = 0; in_set = Array.make n 0; seen = Array.make n 0 }

  let check t view =
    if Array.length t.in_set <> Gview.num_nodes view then
      invalid_arg "Boundary.Scratch: universe size mismatch"

  let node_boundary_size_v t ?alive view u =
    check t view;
    let iter = neighbor_iter view in
    t.stamp <- t.stamp + 1;
    let m = t.stamp in
    let in_set = t.in_set and seen = t.seen in
    Bitset.iter (fun v -> in_set.(v) <- m) u;
    let count = ref 0 in
    Bitset.iter
      (fun v ->
        if is_alive alive v then
          iter v (fun w ->
              if in_set.(w) <> m && seen.(w) <> m && is_alive alive w then begin
                seen.(w) <- m;
                incr count
              end))
      u;
    !count

  let node_boundary_size t ?alive g u = node_boundary_size_v t ?alive (Gview.Csr g) u

  let edge_boundary_size_v t ?alive view u =
    check t view;
    let iter = neighbor_iter view in
    t.stamp <- t.stamp + 1;
    let m = t.stamp in
    let in_set = t.in_set in
    Bitset.iter (fun v -> in_set.(v) <- m) u;
    let count = ref 0 in
    Bitset.iter
      (fun v ->
        if is_alive alive v then
          iter v (fun w -> if in_set.(w) <> m && is_alive alive w then incr count))
      u;
    !count

  let edge_boundary_size t ?alive g u = edge_boundary_size_v t ?alive (Gview.Csr g) u
end

let node_expansion_v ?alive view u =
  let size = alive_cardinal alive u in
  if size = 0 then invalid_arg "Boundary.node_expansion: empty set";
  float_of_int (node_boundary_size_v ?alive view u) /. float_of_int size

let node_expansion ?alive g u = node_expansion_v ?alive (Gview.Csr g) u

let edge_expansion_v ?alive view u =
  let inside = alive_cardinal alive u in
  let total =
    match alive with None -> Gview.num_nodes view | Some mask -> Bitset.cardinal mask
  in
  let outside = total - inside in
  if inside = 0 || outside = 0 then invalid_arg "Boundary.edge_expansion: empty side";
  float_of_int (edge_boundary_size_v ?alive view u) /. float_of_int (min inside outside)

let edge_expansion ?alive g u = edge_expansion_v ?alive (Gview.Csr g) u
