(** Node and edge boundaries — the paper's Γ(U) and (U, V\U).

    All functions may be restricted to an [alive] mask: dead nodes
    belong to neither side and dead endpoints kill an edge.  [u]
    itself is excluded from its own boundary, as in the paper.

    The counting core runs on {!Gview.t} (the [_v] entry points):
    boundary sizes are order-insensitive, so the CSR and implicit arms
    agree exactly on the same topology.  The [Graph.t] functions are
    thin [Gview.Csr] wrappers. *)

val node_boundary_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> Bitset.t

val node_boundary_size_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> int

val edge_boundary_size_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> int

val internal_edge_count_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> int

val node_expansion_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> float

val edge_expansion_v : ?alive:Bitset.t -> Gview.t -> Bitset.t -> float

val node_boundary : ?alive:Bitset.t -> Graph.t -> Bitset.t -> Bitset.t
(** [node_boundary g u] is Γ(U): alive nodes outside [u] adjacent to a
    node of [u].  Members of [u] that are dead contribute nothing. *)

val node_boundary_size : ?alive:Bitset.t -> Graph.t -> Bitset.t -> int

val edge_boundary_size : ?alive:Bitset.t -> Graph.t -> Bitset.t -> int
(** |(U, V\U)|: alive-alive edges with exactly one endpoint in [u]. *)

val edge_boundary : ?alive:Bitset.t -> Graph.t -> Bitset.t -> (int * int) list
(** The boundary edges themselves, as [(inside, outside)] pairs. *)

val internal_edge_count : ?alive:Bitset.t -> Graph.t -> Bitset.t -> int
(** Alive edges with both endpoints in [u]. *)

module Scratch : sig
  (** Reusable scratch state for repeated boundary counts.

      The Prune / Prune2 round loops count a boundary per round;
      {!node_boundary_size} allocates a universe-sized Bitset every
      call.  A scratch carries two generation-stamped int arrays
      allocated once, so each count is O(vol(u)) with zero
      allocation and results are exactly equal to the plain
      functions (the differential tests assert this). *)

  type t

  val create : int -> t
  (** [create n] builds scratch for graphs with universe size [n]. *)

  val node_boundary_size : t -> ?alive:Bitset.t -> Graph.t -> Bitset.t -> int
  (** Equals {!Boundary.node_boundary_size} on the same arguments.
      Raises [Invalid_argument] if the scratch universe does not
      match the graph. *)

  val edge_boundary_size : t -> ?alive:Bitset.t -> Graph.t -> Bitset.t -> int
  (** Equals {!Boundary.edge_boundary_size} on the same arguments. *)

  val node_boundary_size_v : t -> ?alive:Bitset.t -> Gview.t -> Bitset.t -> int
  (** {!node_boundary_size} on either representation — the Prune round
      loop drives this on implicit tori without materializing edges. *)

  val edge_boundary_size_v : t -> ?alive:Bitset.t -> Gview.t -> Bitset.t -> int
end

val node_expansion : ?alive:Bitset.t -> Graph.t -> Bitset.t -> float
(** |Γ(U)| / |U∩alive|.  Raises [Invalid_argument] on an empty set. *)

val edge_expansion : ?alive:Bitset.t -> Graph.t -> Bitset.t -> float
(** |(U, V\U)| / min(|U|, |V\U|) over alive nodes.  Raises
    [Invalid_argument] if either side is empty. *)
