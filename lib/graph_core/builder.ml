type t = {
  n : int;
  mutable us : int array;
  mutable vs : int array;
  mutable len : int;
}

let create n =
  if n < 0 then invalid_arg "Builder.create: negative node count";
  { n; us = Array.make 16 0; vs = Array.make 16 0; len = 0 }

let num_nodes t = t.n

let grow t =
  let cap = Array.length t.us in
  let us = Array.make (2 * cap) 0 and vs = Array.make (2 * cap) 0 in
  Array.blit t.us 0 us 0 t.len;
  Array.blit t.vs 0 vs 0 t.len;
  t.us <- us;
  t.vs <- vs

let add_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Builder.add_edge: endpoint out of range";
  if u = v then invalid_arg "Builder.add_edge: self-loop";
  if t.len = Array.length t.us then grow t;
  t.us.(t.len) <- u;
  t.vs.(t.len) <- v;
  t.len <- t.len + 1

let add_edges t es = List.iter (fun (u, v) -> add_edge t u v) es

let edge_count t = t.len

(* The builder already holds flat endpoint arrays, so it feeds the
   canonical construction path directly — no intermediate tuple
   array. *)
let to_graph t = Graph.of_endpoint_arrays t.n ~us:t.us ~vs:t.vs ~len:t.len
