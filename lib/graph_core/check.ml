let csr g =
  let n = Graph.num_nodes g in
  let xadj = Graph.xadj g and adj = Graph.adj g in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length xadj <> n + 1 then fail "xadj length %d, expected %d" (Array.length xadj) (n + 1)
  else if n >= 0 && xadj.(0) <> 0 then fail "xadj.(0) = %d, expected 0" xadj.(0)
  else if xadj.(n) <> Array.length adj then
    fail "xadj.(n) = %d, adj length %d" xadj.(n) (Array.length adj)
  else begin
    let error = ref None in
    let report fmt = Printf.ksprintf (fun s -> if Option.is_none !error then error := Some s) fmt in
    for v = 0 to n - 1 do
      if xadj.(v + 1) < xadj.(v) then report "xadj not monotone at node %d" v;
      for k = xadj.(v) to xadj.(v + 1) - 1 do
        let w = adj.(k) in
        if w < 0 || w >= n then report "neighbour %d of node %d out of range" w v;
        if w = v then report "self-loop at node %d" v;
        if k > xadj.(v) && adj.(k - 1) >= w then report "row of node %d not strictly sorted" v
      done
    done;
    if Option.is_none !error then
      (* symmetry *)
      for v = 0 to n - 1 do
        for k = xadj.(v) to xadj.(v + 1) - 1 do
          let w = adj.(k) in
          if w >= 0 && w < n && not (Graph.has_edge g w v) then
            report "edge %d-%d has no reverse arc" v w
        done
      done;
    match !error with None -> Ok () | Some e -> Error e
  end

let csr_exn g = match csr g with Ok () -> () | Error e -> failwith ("Check.csr: " ^ e)

let regular g d =
  let ok = ref true in
  for v = 0 to Graph.num_nodes g - 1 do
    if Graph.degree g v <> d then ok := false
  done;
  !ok
