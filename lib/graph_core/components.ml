type t = { labels : int array; sizes : int array; count : int }

let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

let neighbor_iter view =
  match view with
  | Gview.Csr g -> Graph.iter_neighbors g
  | Gview.Implicit i -> i.Gview.iter_neighbors

(* Root scan order (ascending node id) fixes the component ids, and
   membership is order-insensitive, so both Gview arms label the same
   topology identically. *)
let compute_v ?alive view =
  let iter = neighbor_iter view in
  let n = Gview.num_nodes view in
  let labels = Array.make n (-1) in
  let sizes = ref [] in
  let count = ref 0 in
  let stack = Stack.create () in
  for root = 0 to n - 1 do
    if labels.(root) < 0 && is_alive alive root then begin
      let id = !count in
      incr count;
      let size = ref 0 in
      labels.(root) <- id;
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        incr size;
        iter u (fun v ->
            if labels.(v) < 0 && is_alive alive v then begin
              labels.(v) <- id;
              Stack.push v stack
            end)
      done;
      sizes := !size :: !sizes
    end
  done;
  let sizes_arr = Array.make !count 0 in
  List.iteri (fun i s -> sizes_arr.(!count - 1 - i) <- s) !sizes;
  { labels; sizes = sizes_arr; count = !count }

let compute ?alive g = compute_v ?alive (Gview.Csr g)

let largest t =
  if t.count = 0 then raise Not_found;
  let best = ref 0 in
  for id = 1 to t.count - 1 do
    if t.sizes.(id) > t.sizes.(!best) then best := id
  done;
  !best

let largest_size t = if t.count = 0 then 0 else t.sizes.(largest t)

let gamma ?alive g =
  let n = Graph.num_nodes g in
  if n = 0 then 0.0
  else
    let c = compute ?alive g in
    float_of_int (largest_size c) /. float_of_int n

let members t id =
  if id < 0 || id >= t.count then invalid_arg "Components.members: bad id";
  let out = Bitset.create (Array.length t.labels) in
  Array.iteri (fun v l -> if l = id then Bitset.add out v) t.labels;
  out

let largest_members ?alive g =
  let c = compute ?alive g in
  if c.count = 0 then Bitset.create (Graph.num_nodes g) else members c (largest c)

let size_histogram t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      let cur = try Hashtbl.find tbl s with Not_found -> 0 in
      Hashtbl.replace tbl s (cur + 1))
    t.sizes;
  Hashtbl.fold (fun size count acc -> (size, count) :: acc) tbl []
  |> List.sort Graph.compare_int_pair

let is_connected ?alive g =
  let c = compute ?alive g in
  c.count <= 1

let is_connected_v ?alive view =
  let c = compute_v ?alive view in
  c.count <= 1
