(** Connected components of the alive part of a graph. *)

type t = {
  labels : int array;  (** component id per node; [-1] for dead nodes *)
  sizes : int array;  (** size per component id, ids are [0 .. count-1] *)
  count : int;
}

val compute : ?alive:Bitset.t -> Graph.t -> t

val compute_v : ?alive:Bitset.t -> Gview.t -> t
(** {!compute} on either representation; the root scan order fixes
    component ids, so both arms agree exactly. *)

val largest : t -> int
(** Id of a largest component; raises [Not_found] when there are no
    components (everything dead or empty graph). *)

val largest_size : t -> int
(** Size of the largest component; 0 when there are none. *)

val gamma : ?alive:Bitset.t -> Graph.t -> float
(** Fraction of the {e original} node count in the largest alive
    component — the paper's gamma(G).  0 for the empty graph. *)

val members : t -> int -> Bitset.t
(** Nodes of the given component as a set over the original graph's
    universe. *)

val largest_members : ?alive:Bitset.t -> Graph.t -> Bitset.t
(** Convenience: node set of a largest alive component (empty set if
    none). *)

val size_histogram : t -> (int * int) list
(** Sorted [(size, how many components of that size)] pairs. *)

val is_connected : ?alive:Bitset.t -> Graph.t -> bool
(** True iff the alive nodes form exactly one component; the empty
    alive set and the empty graph count as connected. *)

val is_connected_v : ?alive:Bitset.t -> Gview.t -> bool
