let is_alive alive v =
  match alive with None -> true | Some mask -> Bitset.mem mask v

let preorder ?alive g src =
  if src < 0 || src >= Graph.num_nodes g then invalid_arg "Dfs.preorder: source out of range";
  if not (is_alive alive src) then invalid_arg "Dfs.preorder: source not alive";
  let n = Graph.num_nodes g in
  let seen = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  let stack = Stack.create () in
  Stack.push src stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    if not seen.(u) then begin
      seen.(u) <- true;
      order := u :: !order;
      incr count;
      (* push in reverse so lower-numbered neighbours pop first *)
      Graph.rev_iter_neighbors g u (fun v ->
          if (not seen.(v)) && is_alive alive v then Stack.push v stack)
    end
  done;
  let out = Array.make !count 0 in
  List.iteri (fun i v -> out.(!count - 1 - i) <- v) !order;
  out

(* Reachability is order-insensitive, so the view core needs no
   reverse iteration: either arm's neighbor order gives the same set. *)
let reachable_v ?alive view src =
  if src < 0 || src >= Gview.num_nodes view then
    invalid_arg "Dfs.reachable: source out of range";
  if not (is_alive alive src) then invalid_arg "Dfs.reachable: source not alive";
  let iter =
    match view with
    | Gview.Csr g -> Graph.iter_neighbors g
    | Gview.Implicit i -> i.Gview.iter_neighbors
  in
  let out = Bitset.create (Gview.num_nodes view) in
  let stack = Stack.create () in
  Bitset.add out src;
  Stack.push src stack;
  while not (Stack.is_empty stack) do
    let u = Stack.pop stack in
    iter u (fun v ->
        if (not (Bitset.mem out v)) && is_alive alive v then begin
          Bitset.add out v;
          Stack.push v stack
        end)
  done;
  out

let reachable ?alive g src = reachable_v ?alive (Gview.Csr g) src

let is_connected_subset_v view s =
  match Bitset.choose s with
  | None -> true
  | Some src ->
    let r = reachable_v ~alive:s view src in
    Bitset.cardinal r = Bitset.cardinal s

let is_connected_subset g s = is_connected_subset_v (Gview.Csr g) s

let forest ?alive g =
  let n = Graph.num_nodes g in
  let parent = Array.make n (-1) in
  let stack = Stack.create () in
  for root = 0 to n - 1 do
    if parent.(root) < 0 && is_alive alive root then begin
      parent.(root) <- root;
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        Graph.iter_neighbors g u (fun v ->
            if parent.(v) < 0 && is_alive alive v then begin
              parent.(v) <- u;
              Stack.push v stack
            end)
      done
    end
  done;
  parent
