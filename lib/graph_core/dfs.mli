(** Iterative depth-first search (no stack-overflow risk on large
    graphs), optionally restricted to an alive mask. *)

val preorder : ?alive:Bitset.t -> Graph.t -> int -> int array
(** Nodes in DFS preorder from the source. *)

val reachable : ?alive:Bitset.t -> Graph.t -> int -> Bitset.t

val reachable_v : ?alive:Bitset.t -> Gview.t -> int -> Bitset.t
(** Reachable set on either representation; order-insensitive, so both
    {!Gview.t} arms agree. *)

val is_connected_subset : Graph.t -> Bitset.t -> bool
(** [is_connected_subset g s] is true iff the subgraph induced by [s]
    is connected (the empty set counts as connected). *)

val is_connected_subset_v : Gview.t -> Bitset.t -> bool

val forest : ?alive:Bitset.t -> Graph.t -> int array
(** DFS forest over all alive nodes: parent array with roots mapped to
    themselves and dead nodes to [-1]. *)
