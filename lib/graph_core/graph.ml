type t = { n : int; xadj : int array; adj : int array }

(* Monomorphic lexicographic order on int pairs: keeps edge sorts off
   the polymorphic-compare C call (see faultnet-lint no-poly-compare). *)
let compare_int_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let num_nodes t = t.n

let num_edges t = Array.length t.adj / 2

let degree t v =
  if v < 0 || v >= t.n then invalid_arg "Graph.degree: node out of range";
  t.xadj.(v + 1) - t.xadj.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = t.xadj.(v + 1) - t.xadj.(v) in
    if d > !best then best := d
  done;
  !best

let min_degree t =
  if t.n = 0 then 0
  else begin
    let best = ref max_int in
    for v = 0 to t.n - 1 do
      let d = t.xadj.(v + 1) - t.xadj.(v) in
      if d < !best then best := d
    done;
    !best
  end

let neighbors t v =
  if v < 0 || v >= t.n then invalid_arg "Graph.neighbors: node out of range";
  Array.sub t.adj t.xadj.(v) (t.xadj.(v + 1) - t.xadj.(v))

let iter_neighbors t v f =
  for k = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    f t.adj.(k)
  done

let rev_iter_neighbors t v f =
  for k = t.xadj.(v + 1) - 1 downto t.xadj.(v) do
    f t.adj.(k)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  for k = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    acc := f !acc t.adj.(k)
  done;
  !acc

let has_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Graph.has_edge: node out of range";
  let lo = ref t.xadj.(u) and hi = ref (t.xadj.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.adj.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for k = t.xadj.(u) to t.xadj.(u + 1) - 1 do
      let v = t.adj.(k) in
      if u < v then f u v
    done
  done

let fold_edges f t init =
  let acc = ref init in
  iter_edges t (fun u v -> acc := f u v !acc);
  !acc

let edges t =
  let out = Array.make (num_edges t) (0, 0) in
  let k = ref 0 in
  iter_edges t (fun u v ->
      out.(!k) <- (u, v);
      incr k);
  out

(* The one CSR construction path.  Every public constructor
   ([of_edges], [of_edge_array], [Builder.to_graph]) funnels through
   here: endpoints are validated in input order, normalized to
   [u < v], packed into single-int keys ([u * n + v]) so the dedupe
   sort is a flat monomorphic int sort (no tuple boxing, no
   polymorphic compare), and the adjacency array is filled sorted by
   construction — backward arcs first, then forward arcs, each pass in
   ascending key order — so no per-row re-sort is needed. *)
let of_endpoint_arrays_impl ~who n ~us ~vs ~len =
  if n < 0 then invalid_arg (who ^ ": negative node count");
  if n > 1 lsl 30 then invalid_arg (who ^ ": too many nodes for a materialized graph");
  if len < 0 || len > Array.length us || len > Array.length vs then
    invalid_arg (who ^ ": bad endpoint array length");
  let keys = Array.make len 0 in
  for i = 0 to len - 1 do
    let u = us.(i) and v = vs.(i) in
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg (who ^ ": endpoint out of range");
    if u = v then invalid_arg (who ^ ": self-loop");
    let a = if u < v then u else v and b = if u < v then v else u in
    keys.(i) <- (a * n) + b
  done;
  Array.sort Int.compare keys;
  let m =
    let count = ref 0 in
    for i = 0 to len - 1 do
      if i = 0 || keys.(i - 1) <> keys.(i) then incr count
    done;
    !count
  in
  let deg = Array.make (max 1 n) 0 in
  for i = 0 to len - 1 do
    if i = 0 || keys.(i - 1) <> keys.(i) then begin
      let u = keys.(i) / n and v = keys.(i) mod n in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    end
  done;
  let xadj = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    xadj.(v + 1) <- xadj.(v) + deg.(v)
  done;
  let adj = Array.make (2 * m) 0 in
  let cursor = Array.copy xadj in
  (* backward arcs (v <- u): for fixed v, sources u arrive ascending *)
  for i = 0 to len - 1 do
    if i = 0 || keys.(i - 1) <> keys.(i) then begin
      let u = keys.(i) / n and v = keys.(i) mod n in
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    end
  done;
  (* forward arcs (u -> v): targets v > u arrive ascending and land
     after every backward source u' < u, so rows end up sorted *)
  for i = 0 to len - 1 do
    if i = 0 || keys.(i - 1) <> keys.(i) then begin
      let u = keys.(i) / n and v = keys.(i) mod n in
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1
    end
  done;
  { n; xadj; adj }

let of_endpoint_arrays n ~us ~vs ~len =
  of_endpoint_arrays_impl ~who:"Graph.of_endpoint_arrays" n ~us ~vs ~len

let of_edge_array n es =
  let len = Array.length es in
  let us = Array.make len 0 and vs = Array.make len 0 in
  for i = 0 to len - 1 do
    let u, v = es.(i) in
    us.(i) <- u;
    vs.(i) <- v
  done;
  of_endpoint_arrays_impl ~who:"Graph.of_edge_array" n ~us ~vs ~len

let of_edges n es = of_edge_array n (Array.of_list es)

let unsafe_of_csr ~n ~xadj ~adj = { n; xadj; adj }

let xadj t = t.xadj

let adj t = t.adj

let empty n = { n; xadj = Array.make (n + 1) 0; adj = [||] }

let equal a b = a.n = b.n && a.xadj = b.xadj && a.adj = b.adj

let alive_degree t alive v =
  let count = ref 0 in
  iter_neighbors t v (fun w -> if Bitset.mem alive w then incr count);
  !count

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d, deg=[%d,%d])" t.n (num_edges t) (min_degree t)
    (max_degree t)
