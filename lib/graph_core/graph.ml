type t = { n : int; xadj : int array; adj : int array }

(* Monomorphic lexicographic order on int pairs: keeps edge sorts off
   the polymorphic-compare C call (see faultnet-lint no-poly-compare). *)
let compare_int_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let num_nodes t = t.n

let num_edges t = Array.length t.adj / 2

let degree t v =
  if v < 0 || v >= t.n then invalid_arg "Graph.degree: node out of range";
  t.xadj.(v + 1) - t.xadj.(v)

let max_degree t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = t.xadj.(v + 1) - t.xadj.(v) in
    if d > !best then best := d
  done;
  !best

let min_degree t =
  if t.n = 0 then 0
  else begin
    let best = ref max_int in
    for v = 0 to t.n - 1 do
      let d = t.xadj.(v + 1) - t.xadj.(v) in
      if d < !best then best := d
    done;
    !best
  end

let neighbors t v =
  if v < 0 || v >= t.n then invalid_arg "Graph.neighbors: node out of range";
  Array.sub t.adj t.xadj.(v) (t.xadj.(v + 1) - t.xadj.(v))

let iter_neighbors t v f =
  for k = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    f t.adj.(k)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  for k = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    acc := f !acc t.adj.(k)
  done;
  !acc

let has_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Graph.has_edge: node out of range";
  let lo = ref t.xadj.(u) and hi = ref (t.xadj.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.adj.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_edges t f =
  for u = 0 to t.n - 1 do
    for k = t.xadj.(u) to t.xadj.(u + 1) - 1 do
      let v = t.adj.(k) in
      if u < v then f u v
    done
  done

let fold_edges f t init =
  let acc = ref init in
  iter_edges t (fun u v -> acc := f u v !acc);
  !acc

let edges t =
  let out = Array.make (num_edges t) (0, 0) in
  let k = ref 0 in
  iter_edges t (fun u v ->
      out.(!k) <- (u, v);
      incr k);
  out

let of_edge_array n es =
  if n < 0 then invalid_arg "Graph.of_edge_array: negative node count";
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edge_array: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edge_array: self-loop")
    es;
  (* normalize, sort, dedupe *)
  let norm = Array.map (fun (u, v) -> if u < v then (u, v) else (v, u)) es in
  Array.sort compare_int_pair norm;
  let m =
    let count = ref 0 in
    Array.iteri (fun i e -> if i = 0 || norm.(i - 1) <> e then incr count) norm;
    !count
  in
  let uniq = Array.make m (0, 0) in
  let k = ref 0 in
  Array.iteri
    (fun i e ->
      if i = 0 || norm.(i - 1) <> e then begin
        uniq.(!k) <- e;
        incr k
      end)
    norm;
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    uniq;
  let xadj = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    xadj.(v + 1) <- xadj.(v) + deg.(v)
  done;
  let adj = Array.make (2 * m) 0 in
  let cursor = Array.copy xadj in
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    uniq;
  (* rows are sorted because uniq is lexicographically sorted for the
     first endpoint, but second-endpoint entries interleave: sort rows *)
  for v = 0 to n - 1 do
    let lo = xadj.(v) and len = deg.(v) in
    let row = Array.sub adj lo len in
    Array.sort Int.compare row;
    Array.blit row 0 adj lo len
  done;
  { n; xadj; adj }

let of_edges n es = of_edge_array n (Array.of_list es)

let unsafe_of_csr ~n ~xadj ~adj = { n; xadj; adj }

let xadj t = t.xadj

let adj t = t.adj

let empty n = { n; xadj = Array.make (n + 1) 0; adj = [||] }

let equal a b = a.n = b.n && a.xadj = b.xadj && a.adj = b.adj

let alive_degree t alive v =
  let count = ref 0 in
  iter_neighbors t v (fun w -> if Bitset.mem alive w then incr count);
  !count

let pp fmt t =
  Format.fprintf fmt "graph(n=%d, m=%d, deg=[%d,%d])" t.n (num_edges t) (min_degree t)
    (max_degree t)
