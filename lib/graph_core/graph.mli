(** Immutable undirected graphs in compressed-sparse-row form.

    Nodes are integers [0 .. n-1].  Adjacency lists are stored in two
    flat arrays ([xadj]/[adj], the classic CSR layout), sorted per
    node, with no self-loops and no parallel edges.  This is the
    single graph representation used by every algorithm in faultnet;
    fault patterns are expressed as {!Bitset.t} masks over the nodes
    rather than by rebuilding the structure. *)

type t

val compare_int_pair : int * int -> int * int -> int
(** Monomorphic lexicographic order on int pairs (edges, (key, value)
    rows, ...): avoids polymorphic [compare]'s per-element C call in
    sort hot paths. *)

val num_nodes : t -> int
val num_edges : t -> int
(** Undirected edge count (each edge counted once). *)

val degree : t -> int -> int

val max_degree : t -> int
(** 0 for the empty graph. *)

val min_degree : t -> int

val neighbors : t -> int -> int array
(** Fresh array of the (sorted) neighbours of a node. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Allocation-free iteration over the neighbours of a node. *)

val rev_iter_neighbors : t -> int -> (int -> unit) -> unit
(** Like {!iter_neighbors}, highest neighbour first.  DFS pushes rows
    in reverse so lower-numbered neighbours pop first; this keeps that
    order without {!neighbors}'s fresh array per node. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val has_edge : t -> int -> int -> bool
(** Binary search in the sorted adjacency row; O(log degree). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate each undirected edge once, with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val edges : t -> (int * int) array
(** All undirected edges, each once, with [u < v], lexicographic. *)

val of_endpoint_arrays : int -> us:int array -> vs:int array -> len:int -> t
(** The canonical construction path: [of_endpoint_arrays n ~us ~vs
    ~len] builds a graph on [n] nodes from the first [len] endpoint
    pairs [(us.(i), vs.(i))].  Self-loops are rejected; duplicate
    edges (in either orientation) are merged; rows come out sorted.
    Every other constructor ({!of_edges}, {!of_edge_array},
    [Builder.to_graph]) delegates here, so validation, dedupe and CSR
    layout live in exactly one place.  Raises [Invalid_argument] on
    out-of-range endpoints. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n es] builds a graph on [n] nodes.  Same semantics as
    {!of_endpoint_arrays} (which it delegates to). *)

val of_edge_array : int -> (int * int) array -> t

val unsafe_of_csr : n:int -> xadj:int array -> adj:int array -> t
(** Wrap a prebuilt CSR structure.  The caller promises the invariants
    (see {!Check.csr}); generators use this to avoid re-sorting. *)

val xadj : t -> int array
val adj : t -> int array
(** Raw CSR arrays (do not mutate).  Exposed for kernels that need
    tight loops, e.g. spectral matrix-vector products. *)

val empty : int -> t
(** [empty n] has [n] nodes and no edges. *)

val equal : t -> t -> bool

val alive_degree : t -> Bitset.t -> int -> int
(** [alive_degree g alive v] counts neighbours of [v] inside [alive].
    The liveness of [v] itself is not consulted. *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary (node/edge counts, degree range). *)
