type implicit = {
  n : int;
  max_degree : int;
  degree : int -> int;
  iter_neighbors : int -> (int -> unit) -> unit;
  has_edge : int -> int -> bool;
}

type t = Csr of Graph.t | Implicit of implicit

let of_graph g = Csr g

let implicit ~n ~max_degree ?degree ?has_edge iter_neighbors =
  if n < 0 then invalid_arg "Gview.implicit: negative node count";
  if max_degree < 0 then invalid_arg "Gview.implicit: negative max degree";
  let degree =
    match degree with
    | Some d -> d
    | None ->
      fun v ->
        let count = ref 0 in
        iter_neighbors v (fun _ -> incr count);
        !count
  in
  let has_edge =
    match has_edge with
    | Some h -> h
    | None ->
      fun u v ->
        let found = ref false in
        iter_neighbors u (fun w -> if w = v then found := true);
        !found
  in
  Implicit { n; max_degree; degree; iter_neighbors; has_edge }

let num_nodes = function Csr g -> Graph.num_nodes g | Implicit i -> i.n

let max_degree = function Csr g -> Graph.max_degree g | Implicit i -> i.max_degree

let degree t v =
  match t with
  | Csr g -> Graph.degree g v
  | Implicit i ->
    if v < 0 || v >= i.n then invalid_arg "Gview.degree: node out of range";
    i.degree v

let iter_neighbors t v f =
  match t with Csr g -> Graph.iter_neighbors g v f | Implicit i -> i.iter_neighbors v f

let has_edge t u v =
  match t with
  | Csr g -> Graph.has_edge g u v
  | Implicit i ->
    if u < 0 || u >= i.n || v < 0 || v >= i.n then
      invalid_arg "Gview.has_edge: node out of range";
    i.has_edge u v

let iter_edges t f =
  match t with
  | Csr g -> Graph.iter_edges g f
  | Implicit i ->
    for v = 0 to i.n - 1 do
      i.iter_neighbors v (fun w -> if v < w then f v w)
    done

let num_edges t =
  match t with
  | Csr g -> Graph.num_edges g
  | Implicit _ ->
    let count = ref 0 in
    iter_edges t (fun _ _ -> incr count);
    !count

let materialize = function
  | Csr g -> g
  | Implicit i ->
    let n = i.n in
    let fail fmt = Printf.ksprintf invalid_arg ("Gview.materialize: " ^^ fmt) in
    let xadj = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      let d = i.degree v in
      if d < 0 then fail "negative degree %d at node %d" d v;
      if d > i.max_degree then
        fail "degree %d at node %d exceeds declared max_degree %d" d v i.max_degree;
      xadj.(v + 1) <- xadj.(v) + d
    done;
    let adj = Array.make xadj.(n) 0 in
    let cursor = Array.copy xadj in
    for v = 0 to n - 1 do
      i.iter_neighbors v (fun w ->
          if w < 0 || w >= n then fail "neighbor %d of node %d out of range" w v;
          if w = v then fail "self-loop at node %d" v;
          if cursor.(v) >= xadj.(v + 1) then
            fail "node %d emits more neighbors than its degree %d" v (i.degree v);
          adj.(cursor.(v)) <- w;
          cursor.(v) <- cursor.(v) + 1)
    done;
    for v = 0 to n - 1 do
      if cursor.(v) <> xadj.(v + 1) then
        fail "node %d emits %d neighbors, degree says %d" v
          (cursor.(v) - xadj.(v))
          (xadj.(v + 1) - xadj.(v));
      let lo = xadj.(v) and len = xadj.(v + 1) - xadj.(v) in
      let row = Array.sub adj lo len in
      Array.sort Int.compare row;
      for k = 1 to len - 1 do
        if row.(k - 1) = row.(k) then fail "duplicate neighbor %d at node %d" row.(k) v
      done;
      Array.blit row 0 adj lo len
    done;
    let g = Graph.unsafe_of_csr ~n ~xadj ~adj in
    (* symmetry: every emitted arc needs its reverse; the sorted rows
       make the check a binary search per arc *)
    for v = 0 to n - 1 do
      for k = xadj.(v) to xadj.(v + 1) - 1 do
        let w = adj.(k) in
        if not (Graph.has_edge g w v) then fail "edge %d-%d has no reverse arc" v w
      done
    done;
    g

let pp fmt = function
  | Csr g -> Format.fprintf fmt "csr:%a" Graph.pp g
  | Implicit i -> Format.fprintf fmt "implicit(n=%d, max_deg=%d)" i.n i.max_degree
