(** Pluggable graph access: one interface over two representations.

    Every traversal/boundary algorithm in faultnet accepts a [Gview.t]
    and matches it {e once} at the top:

    - [Csr g] wraps a materialized {!Graph.t}; the algorithm's CSR arm
      keeps its tight flat-array loops, so performance (and output) is
      exactly the classic path.
    - [Implicit r] defines the topology by a neighbor {e function}
      (coordinate / bit arithmetic); no edge set is ever stored, which
      is what lets structured topologies (meshes, tori, hypercubes,
      butterflies, de Bruijn, chain-replacement graphs) scale to
      n = 10^7 and beyond on O(n)-or-less memory.

    A variant — not a functor — keeps both arms monomorphic: the CSR
    loops see concrete int arrays, the implicit loops see one closure,
    and no algorithm is compiled per-representation (see DESIGN.md,
    "Pluggable graph access").

    Implicit views must describe simple undirected graphs over nodes
    [0 .. n-1]: [iter_neighbors v] emits each neighbor exactly once, no
    self-loops, and edges are symmetric ([w] emitted for [v] iff [v]
    emitted for [w]).  Neighbor order is the generator's choice; only
    order-insensitive results (distances, boundary sizes, component
    membership) are guaranteed identical across arms.  {!materialize}
    validates all of this, and the property tests compare every
    implicit generator edge-for-edge against its materialized twin. *)

type implicit = {
  n : int;  (** node count *)
  max_degree : int;  (** exact maximum degree, known a priori (O(1)) *)
  degree : int -> int;  (** exact degree of a node *)
  iter_neighbors : int -> (int -> unit) -> unit;
      (** emit each neighbor exactly once; allocation-free *)
  has_edge : int -> int -> bool;  (** adjacency test *)
}

type t = Csr of Graph.t | Implicit of implicit

val of_graph : Graph.t -> t
(** [of_graph g] is [Csr g]. *)

val implicit :
  n:int ->
  max_degree:int ->
  ?degree:(int -> int) ->
  ?has_edge:(int -> int -> bool) ->
  (int -> (int -> unit) -> unit) ->
  t
(** [implicit ~n ~max_degree iter] builds an implicit view.  [degree]
    defaults to counting [iter]'s emissions; [has_edge] defaults to a
    scan over [iter].  Generators with cheap closed forms should pass
    both. *)

val num_nodes : t -> int

val max_degree : t -> int
(** O(1) on the implicit arm (the stored bound); scans degrees on the
    CSR arm like {!Graph.max_degree}. *)

val degree : t -> int -> int

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** One-call dispatch.  Hot loops should instead match the view once
    and loop inside the arm. *)

val has_edge : t -> int -> int -> bool

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate each undirected edge once with [u < v].  CSR arm follows
    {!Graph.iter_edges} order; implicit arm visits nodes in increasing
    order and keeps the generator's neighbor order within a node. *)

val num_edges : t -> int
(** Undirected edge count.  O(1) + nothing on the CSR arm; counts via
    {!iter_edges} (O(n·d)) on the implicit arm. *)

val materialize : t -> Graph.t
(** Flatten a view into a CSR graph: identity on [Csr], and an exact
    edge-for-edge conversion on [Implicit] (rows sorted, the
    {!Graph.t} invariants re-established).  Raises [Invalid_argument]
    if the implicit view emits a self-loop, a duplicate neighbor, an
    out-of-range node, an asymmetric edge, or a degree inconsistent
    with its [degree]/[max_degree] metadata — this is the validation
    choke point the differential tests drive. *)

val pp : Format.formatter -> t -> unit
