open Fn_prng

let alive_nodes ?alive g =
  match alive with
  | Some m -> Bitset.to_array m
  | None -> Array.init (Graph.num_nodes g) Fun.id

let diameter ?alive g =
  let nodes = alive_nodes ?alive g in
  if Array.length nodes < 2 then 0
  else begin
    let best = ref 0 in
    Array.iter
      (fun src ->
        let d = Bfs.distances ?alive g src in
        Array.iter (fun x -> if x > !best then best := x) d)
      nodes;
    !best
  end

let farthest_from ?alive g src =
  let d = Bfs.distances ?alive g src in
  let best = ref src and best_d = ref 0 in
  Array.iteri
    (fun v x ->
      if x > !best_d then begin
        best := v;
        best_d := x
      end)
    d;
  (!best, !best_d)

let diameter_estimate ?alive rng ?(sweeps = 4) g =
  let nodes = alive_nodes ?alive g in
  if Array.length nodes < 2 then 0
  else begin
    let best = ref 0 in
    for _ = 1 to sweeps do
      let src = nodes.(Rng.int rng (Array.length nodes)) in
      let far, _ = farthest_from ?alive g src in
      let _, d = farthest_from ?alive g far in
      if d > !best then best := d
    done;
    !best
  end

let mean_distance ?alive ?(samples = 32) rng g =
  let nodes = alive_nodes ?alive g in
  let n = Array.length nodes in
  if n < 2 then nan
  else begin
    let k = min samples n in
    let picks = Rng.sample rng n k in
    let total = ref 0 and count = ref 0 in
    Array.iter
      (fun idx ->
        let d = Bfs.distances ?alive g nodes.(idx) in
        Array.iter
          (fun x ->
            if x > 0 then begin
              total := !total + x;
              incr count
            end)
          d)
      picks;
    if !count = 0 then nan else float_of_int !total /. float_of_int !count
  end

let degree_histogram ?alive g =
  let nodes = alive_nodes ?alive g in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      let d =
        match alive with None -> Graph.degree g v | Some m -> Graph.alive_degree g m v
      in
      Hashtbl.replace tbl d (1 + try Hashtbl.find tbl d with Not_found -> 0))
    nodes;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort Graph.compare_int_pair

let clustering_coefficient ?alive g =
  let is_alive v = match alive with None -> true | Some m -> Bitset.mem m v in
  let nodes = alive_nodes ?alive g in
  let total = ref 0.0 and counted = ref 0 in
  Array.iter
    (fun v ->
      let nbrs =
        Graph.fold_neighbors g v (fun acc w -> if is_alive w then w :: acc else acc) []
      in
      let d = List.length nbrs in
      if d >= 2 then begin
        let links = ref 0 in
        let arr = Array.of_list nbrs in
        for i = 0 to d - 1 do
          for j = i + 1 to d - 1 do
            if Graph.has_edge g arr.(i) arr.(j) then incr links
          done
        done;
        total := !total +. (2.0 *. float_of_int !links /. float_of_int (d * (d - 1)));
        incr counted
      end)
    nodes;
  if !counted = 0 then 0.0 else !total /. float_of_int !counted
