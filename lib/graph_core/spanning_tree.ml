type tree = { root : int; parent : int array; nodes : int array }

let bfs_tree ?alive g root =
  let parent = Bfs.tree ?alive g root in
  let order = ref [] in
  let count = ref 0 in
  (* Recover BFS order by re-running distances; cheap and simple. *)
  let dist = Bfs.distances ?alive g root in
  let nodes_with_dist = ref [] in
  Array.iteri (fun v d -> if d >= 0 then nodes_with_dist := (d, v) :: !nodes_with_dist) dist;
  let sorted = List.sort Graph.compare_int_pair !nodes_with_dist in
  List.iter
    (fun (_, v) ->
      order := v :: !order;
      incr count)
    sorted;
  let nodes = Array.make !count 0 in
  List.iteri (fun i v -> nodes.(!count - 1 - i) <- v) !order;
  { root; parent; nodes }

let num_edges t = max 0 (Array.length t.nodes - 1)

let tree_edges t =
  Array.fold_left
    (fun acc v -> if v = t.root then acc else (t.parent.(v), v) :: acc)
    [] t.nodes

let is_spanning g set t =
  let covered = Bitset.create (Graph.num_nodes g) in
  Array.iter (Bitset.add covered) t.nodes;
  Bitset.equal covered set
  && List.for_all (fun (u, v) -> Graph.has_edge g u v) (tree_edges t)

let total_weighted_length ~dist terminals =
  let k = Array.length terminals in
  if k <= 1 then 0
  else begin
    let in_tree = Array.make k false in
    let best = Array.make k max_int in
    in_tree.(0) <- true;
    for j = 1 to k - 1 do
      best.(j) <- dist.(terminals.(0)).(terminals.(j))
    done;
    let total = ref 0 in
    for _ = 1 to k - 1 do
      let pick = ref (-1) in
      for j = 0 to k - 1 do
        if (not in_tree.(j)) && (!pick < 0 || best.(j) < best.(!pick)) then pick := j
      done;
      let j = !pick in
      in_tree.(j) <- true;
      total := !total + best.(j);
      for l = 0 to k - 1 do
        if not in_tree.(l) then
          best.(l) <- min best.(l) dist.(terminals.(j)).(terminals.(l))
      done
    done;
    !total
  end
