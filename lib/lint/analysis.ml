type entry = { at : int; path : string; blessed_indexed : bool }

let tok (c : Token.t array) i = if i >= 0 && i < Array.length c then Some c.(i) else None

let is_dot c i =
  match tok c i with Some { Token.kind = Token.Punct; text = "."; _ } -> true | _ -> false

let is_op c i text =
  match tok c i with
  | Some { Token.kind = Token.Op; text = t; _ } -> t = text
  | _ -> false

let ident_at c i =
  match tok c i with
  | Some { Token.kind = Token.Ident; text; _ } -> Some text
  | _ -> None

let uident_at c i =
  match tok c i with
  | Some { Token.kind = Token.Uident; text; _ } -> Some text
  | _ -> None

(* (module, function) pairs recognised as parallel-region entry points.
   Matching is on the final path segment, so [Fn_parallel.Par.map] and
   [Par.map] both match ("Par", "map"). *)
let entry_table =
  [
    ("Par", "map", false);
    ("Par", "init", false);
    ("Par", "trials", false);
    ("Pool", "run", true);
    ("Domain", "spawn", false);
    ("Supervisor", "trials", false);
    ("Workload", "trials", false);
  ]

let entries (c : Token.t array) =
  let n = Array.length c in
  let out = ref [] in
  for i = 0 to n - 3 do
    match (uident_at c i, is_dot c (i + 1), ident_at c (i + 2)) with
    | Some m, true, Some f -> (
      match
        List.find_opt (fun (m', f', _) -> m' = m && f' = f) entry_table
      with
      | Some (_, _, blessed_indexed) ->
        out := { at = i + 2; path = m ^ "." ^ f; blessed_indexed } :: !out
      | None -> ())
    | _ -> ()
  done;
  List.rev !out

(* Operators that do not terminate an argument list at depth 0:
   labels, optional args, deref, and type-ascription colons. *)
let arg_continuation_op = function "~" | "?" | "!" | ":" -> true | _ -> false

let arg_closures (c : Token.t array) root at =
  let n = Array.length c in
  let rec go j depth acc =
    if j >= n then List.rev acc
    else
      let t = c.(j) in
      match (t.Token.kind, t.Token.text) with
      | Token.Punct, ("(" | "[" | "{") -> go (j + 1) (depth + 1) acc
      | Token.Punct, (")" | "]" | "}") ->
        if depth = 0 then List.rev acc else go (j + 1) (depth - 1) acc
      | Token.Punct, (";" | ",") when depth = 0 -> List.rev acc
      | Token.Ident, "begin" -> go (j + 1) (depth + 1) acc
      | Token.Ident, "end" ->
        if depth = 0 then List.rev acc else go (j + 1) (depth - 1) acc
      | Token.Ident, ("in" | "let" | "and" | "then" | "else" | "done" | "with" | "do")
        when depth = 0 ->
        List.rev acc
      | Token.Op, op when depth = 0 && not (arg_continuation_op op) -> List.rev acc
      | Token.Ident, ("fun" | "function") when depth = 1 ->
        let acc =
          match Scope.closure_at root j with
          | Some s -> s :: acc
          | None -> acc
        in
        go (j + 1) depth acc
      | _ -> go (j + 1) depth acc
  in
  go (at + 1) 0 []

type mutation = {
  target : string;
  at : int;
  desc : string;
  indexed : bool;
  float_acc : bool;
  cons_acc : bool;
  guarded : bool;
}

(* mutating functions by module; bool = element write (disjoint-indexable) *)
let module_mutators =
  [
    ("Array", "set", true);
    ("Array", "unsafe_set", true);
    ("Array", "fill", true);
    ("Array", "blit", true);
    ("Array", "sort", false);
    ("Array", "stable_sort", false);
    ("Array", "fast_sort", false);
    ("Bytes", "set", true);
    ("Bytes", "unsafe_set", true);
    ("Bytes", "fill", true);
    ("Bytes", "blit", true);
    ("Hashtbl", "add", false);
    ("Hashtbl", "replace", false);
    ("Hashtbl", "remove", false);
    ("Hashtbl", "reset", false);
    ("Hashtbl", "clear", false);
    ("Hashtbl", "filter_map_inplace", false);
    ("Buffer", "add_string", false);
    ("Buffer", "add_char", false);
    ("Buffer", "add_bytes", false);
    ("Buffer", "add_buffer", false);
    ("Buffer", "add_substring", false);
    ("Buffer", "clear", false);
    ("Buffer", "reset", false);
    ("Buffer", "truncate", false);
    ("Queue", "add", false);
    ("Queue", "push", false);
    ("Queue", "pop", false);
    ("Queue", "take", false);
    ("Queue", "clear", false);
    ("Queue", "transfer", false);
    ("Stack", "push", false);
    ("Stack", "pop", false);
    ("Stack", "clear", false);
    ("Bitset", "add", false);
    ("Bitset", "remove", false);
  ]

(* walk backwards from the token before [:=]/[<-] to the base ident of
   the lvalue, skipping [.field] chains and [.(index)] groups *)
let lvalue_base (c : Token.t array) op_idx =
  let matching_opener j =
    (* j sits on ")" or "]"; find its opener *)
    let rec back k depth =
      if k < 0 then None
      else
        match c.(k) with
        | { Token.kind = Token.Punct; text = ")" | "]"; _ } -> back (k - 1) (depth + 1)
        | { kind = Token.Punct; text = "(" | "["; _ } ->
          if depth = 0 then Some k else back (k - 1) (depth - 1)
        | _ -> back (k - 1) depth
    in
    back (j - 1) 0
  in
  let rec base j indexed =
    if j < 0 then ("", indexed)
    else
      match c.(j) with
      | { Token.kind = Token.Punct; text = ")" | "]"; _ } -> (
        match matching_opener j with
        | Some opener when is_dot c (opener - 1) -> base (opener - 2) true
        | _ -> ("", indexed))
      | { kind = Token.Ident | Token.Uident; text; _ } ->
        if is_dot c (j - 1) then base (j - 2) indexed else (text, indexed)
      | _ -> ("", indexed)
  in
  base (op_idx - 1) false

(* Float operators lex as [Op "+"] followed by [Punct "."] ('.' is not
   an operator char in {!Token}), so detect them as the pair. *)
let float_op (c : Token.t array) i =
  (match c.(i) with
  | { Token.kind = Token.Op; text = "+" | "-" | "*" | "/"; _ } -> true
  | _ -> false)
  && is_dot c (i + 1)

(* scan the right-hand side of an assignment for accumulation shapes *)
let rhs_flags (c : Token.t array) op_idx =
  let n = Array.length c in
  let float_acc = ref false and cons_acc = ref false in
  let rec go j depth steps =
    if j >= n || steps > 60 then ()
    else if float_op c j then begin
      float_acc := true;
      go (j + 1) depth (steps + 1)
    end
    else
      let t = c.(j) in
      match (t.Token.kind, t.Token.text) with
      | Token.Punct, ("(" | "[" | "{") -> go (j + 1) (depth + 1) steps
      | Token.Punct, (")" | "]" | "}") ->
        if depth > 0 then go (j + 1) (depth - 1) (steps + 1)
      | Token.Punct, ";" when depth = 0 -> ()
      | Token.Ident, ("in" | "done" | "end") when depth = 0 -> ()
      | Token.Op, ("::" | "@" | "^") ->
        cons_acc := true;
        go (j + 1) depth (steps + 1)
      | _ -> go (j + 1) depth (steps + 1)
  in
  go (op_idx + 1) 0 0;
  (!float_acc, !cons_acc)

let lock_index (c : Token.t array) ~first ~last =
  let found = ref None in
  let last = min last (Array.length c) in
  for i = first to last - 1 do
    if !found = None then begin
      match ident_at c i with
      | Some ("with_lock" | "protect") -> found := Some i
      | Some "lock" when is_dot c (i - 1) && uident_at c (i - 2) = Some "Mutex" ->
        found := Some i
      | _ -> ()
    end
  done;
  !found

let is_keyword_arg c i =
  (* [~label:] or [?label:] in argument position is not a target *)
  (is_op c (i - 1) "~" || is_op c (i - 1) "?") && is_op c (i + 1) ":"

let mutations (c : Token.t array) ~first ~last =
  let last = min last (Array.length c) in
  let lock = lock_index c ~first ~last in
  let guarded_at i = match lock with Some l -> i > l | None -> false in
  let out = ref [] in
  let add m = out := m :: !out in
  for i = first to last - 1 do
    let t = c.(i) in
    (match (t.Token.kind, t.Token.text) with
    | Token.Op, (":=" | "<-") ->
      let target, indexed = lvalue_base c i in
      let float_acc, cons_acc = rhs_flags c i in
      add
        {
          target;
          at = i;
          desc = t.Token.text;
          indexed = (indexed && t.Token.text = "<-");
          float_acc;
          cons_acc;
          guarded = guarded_at i;
        }
    | Token.Ident, ("incr" | "decr") when not (is_dot c (i - 1)) -> (
      match ident_at c (i + 1) with
      | Some target ->
        add
          {
            target;
            at = i;
            desc = t.Token.text;
            indexed = false;
            float_acc = false;
            cons_acc = false;
            guarded = guarded_at i;
          }
      | _ -> ())
    | Token.Ident, f when is_dot c (i - 1) -> (
      match uident_at c (i - 2) with
      | Some m -> (
        match
          List.find_opt (fun (m', f', _) -> m' = m && f' = f) module_mutators
        with
        | Some (_, _, elem_write) -> (
          (* target = first plain ident argument, if syntactically obvious *)
          match ident_at c (i + 1) with
          | Some target when not (is_keyword_arg c (i + 1)) ->
            add
              {
                target;
                at = i - 2;
                desc = m ^ "." ^ f;
                indexed = elem_write;
                float_acc = false;
                cons_acc = false;
                guarded = guarded_at i;
              }
          | _ ->
            add
              {
                target = "";
                at = i - 2;
                desc = m ^ "." ^ f;
                indexed = elem_write;
                float_acc = false;
                cons_acc = false;
                guarded = guarded_at i;
              })
        | None -> ())
      | None -> ())
    | _ -> ())
  done;
  List.rev !out

let order_sensitive_sink (c : Token.t array) ~first ~last =
  let last = min last (Array.length c) in
  let found = ref None in
  for i = first to last - 1 do
    if !found = None then begin
      match c.(i) with
      | { Token.kind = Token.Uident; text = "Buffer" | "Queue" | "Stack" | "Printf" | "Format"; _ }
        when is_dot c (i + 1) ->
        found := Some i
      | { kind = Token.Ident; text; _ }
        when (not (is_dot c (i - 1)))
             && List.mem text
                  [ "print_string"; "print_endline"; "print_int"; "print_float"; "print_newline" ]
        ->
        found := Some i
      | _ -> ()
    end
  done;
  !found
