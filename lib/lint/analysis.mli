(** Parallel-region and mutability analysis over the token stream.

    Pairs with {!Scope}: this module finds the parallel entry points the
    repo blesses ([Par.map]/[init]/[trials], [Par.Pool.run],
    [Domain.spawn], [Supervisor.trials], [Workload.trials]), resolves
    the closure literals passed to them, and classifies the mutations a
    token region performs — the raw material for the scope-aware rules
    in {!Rules_par} and {!Rules_order}. *)

type entry = {
  at : int;  (** token index of the function ident, e.g. [map] in [Par.map] *)
  path : string;  (** display path, e.g. ["Par.map"] *)
  blessed_indexed : bool;
      (** [Pool.run] jobs may write disjoint indexed slots by contract
          (see [Fn_parallel.Par.Pool]); fork-join closures may not *)
}

val entries : Token.t array -> entry list
(** All parallel entry points in the stream, in token order. *)

val arg_closures : Token.t array -> Scope.t -> int -> Scope.t list
(** [arg_closures code root at] is the list of closure scopes passed as
    literal [(fun ... -> ...)] arguments to the call at token [at].
    Closures reached through a named function or partial application
    are not resolved — the analysis is honest about only seeing
    literals. *)

type mutation = {
  target : string;  (** base ident of the mutated value; [""] if unresolved *)
  at : int;  (** token index of the mutating operator or module ident *)
  desc : string;  (** for messages: [":="], ["<-"], ["Hashtbl.replace"], ... *)
  indexed : bool;
      (** an element write ([x.(i) <- v], [Array.set], [Bytes.fill], ...)
          — the shape the Pool disjoint-write contract blesses *)
  float_acc : bool;  (** right-hand side uses [+.]/[-.]/[*.]/[/.] *)
  cons_acc : bool;  (** right-hand side uses [::]/[@]/[^] *)
  guarded : bool;  (** a [Mutex.lock]/[Mutex.protect]/[with_lock] appears
                       earlier in the scanned region *)
}

val float_op : Token.t array -> int -> bool
(** Is token [i] a float arithmetic operator?  [+.]/[-.]/[*.]/[/.] lex
    as an [Op] followed by a [Punct "."], so this checks the pair. *)

val mutations : Token.t array -> first:int -> last:int -> mutation list
(** Mutations performed in token range [\[first, last)].  [Atomic.*]
    operations are never reported — atomics are the blessed way to
    share mutable state across domains. *)

val order_sensitive_sink : Token.t array -> first:int -> last:int -> int option
(** Token index of the first output-ordering-sensitive operation in the
    range: an append to a [Buffer]/[Queue]/[Stack], or a direct
    [print]/[Printf]/[Format] call.  Used by hashtbl-order-dependence,
    where element order — not thread-safety — is the concern. *)
