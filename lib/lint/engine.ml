(* Runs the rule set over sources, applying the allowlist and
   [(* lint: allow <rule> *)] suppression comments. *)

(* A suppression comment names one or more rules and silences their
   findings on the comment's own line(s) and on the line immediately
   after the comment — so both trailing and preceding placement work:

     let x = foo () (* lint: allow some-rule *)

     (* lint: allow some-rule — justification here *)
     let x = foo ()
*)

type suppression = { rules : string list; first_line : int; last_line : int }

let split_words s =
  let out = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    s;
  flush ();
  List.rev !out

let is_rule_word w =
  String.length w > 0
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-') w

(* Parse a comment body into a suppression, if it is one.  Accepted
   form: "lint:" "allow" <rule>... with anything (a justification)
   after the rule names. *)
let parse_suppression (t : Token.t) =
  match split_words t.text with
  | "(*" :: "lint:" :: "allow" :: rest ->
      let rec rules acc = function
        | w :: ws when is_rule_word w -> rules (w :: acc) ws
        | _ -> List.rev acc
      in
      let names = rules [] rest in
      if names = [] then None
      else
        let last_line = t.line + (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 t.text) in
        Some { rules = names; first_line = t.line; last_line }
  | _ -> None

let suppressions tokens =
  Array.to_list tokens
  |> List.filter_map (fun (t : Token.t) ->
         match t.kind with Token.Comment -> parse_suppression t | _ -> None)

let suppressed sups (f : Rule.finding) =
  List.exists
    (fun s ->
      List.mem f.rule s.rules && f.line >= s.first_line && f.line <= s.last_line + 1)
    sups

let compare_findings (a : Rule.finding) (b : Rule.finding) =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with 0 -> String.compare a.rule b.rule | c -> c)
      | c -> c)
  | c -> c

let lint_string ?(rules = Rules.all) ~path ?mli_exists source =
  let tokens = Token.tokenize source in
  let code = Token.code tokens in
  let ctx =
    { Rule.path; source; tokens; code; mli_exists; scope = lazy (Scope.build code) }
  in
  let sups = suppressions tokens in
  List.concat_map
    (fun (r : Rule.t) ->
      if Rules.allowed ~rule:r.name ~path then [] else r.check ctx)
    rules
  |> List.filter (fun f -> not (suppressed sups f))
  |> List.sort compare_findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [path] is used both to read the file and as the repo-relative path
   rules match against, so the driver must run from (or chdir to) the
   repo root. *)
let lint_file ?rules path =
  let source = read_file path in
  let mli_exists =
    if
      Rules.starts_with ~prefix:"lib/" path
      && Rules.ends_with ~suffix:".ml" path
    then Some (Sys.file_exists (path ^ "i"))
    else None
  in
  lint_string ?rules ~path ?mli_exists source

let errors findings =
  List.filter (fun (f : Rule.finding) -> f.severity = Rule.Error) findings

(* Source discovery, shared by bin/lint and the lint_repo bench kernel:
   .ml/.mli files under the given roots, skipping _build-style and
   hidden directories, sorted for stable output. *)

let is_source path =
  Rules.ends_with ~suffix:".ml" path || Rules.ends_with ~suffix:".mli" path

let skip_dir name =
  String.length name > 0 && (name.[0] = '_' || name.[0] = '.')

let collect roots =
  let out = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if not (skip_dir entry) then walk (Filename.concat path entry))
        (Sys.readdir path)
    else if is_source path then out := path :: !out
  in
  List.iter (fun root -> if Sys.file_exists root then walk root) roots;
  List.sort String.compare !out
