(** Lint engine: runs rules over sources, applying the allowlist and
    [(* lint: allow <rule> *)] suppression comments.

    A suppression comment silences the named rules on the comment's own
    line(s) and on the line immediately following it, so both trailing
    and preceding placement work. *)

type suppression = { rules : string list; first_line : int; last_line : int }

val parse_suppression : Token.t -> suppression option
val suppressions : Token.t array -> suppression list

val lint_string :
  ?rules:Rule.t list -> path:string -> ?mli_exists:bool -> string -> Rule.finding list
(** Lint in-memory source. [path] is the repo-relative path used for
    allowlist matching and reporting; [mli_exists] feeds the
    [mli-required] rule (pass [Some false] to simulate a missing
    interface). Findings are sorted by (file, line, col, rule). *)

val lint_file : ?rules:Rule.t list -> string -> Rule.finding list
(** Read and lint a file. The path doubles as the repo-relative path,
    so call this from the repository root. *)

val errors : Rule.finding list -> Rule.finding list
(** Only the [Error]-severity findings. *)

val read_file : string -> string

val collect : string list -> string list
(** [.ml]/[.mli] files under the given roots (skipping [_build]-style
    and hidden directories), sorted; missing roots are ignored.  Shared
    by [bin/lint] and the [lint_repo] bench kernel. *)
