(* Renders findings to text or JSON.  Pure string builders: the lint
   library itself obeys no-print-in-lib; bin/lint does the printing. *)

open Rule

let to_text findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: [%s] %s: %s\n" f.file f.line f.col
           (severity_to_string f.severity)
           f.rule f.message))
    findings;
  (match findings with
  | [] -> ()
  | _ ->
      let errs = List.length (Engine.errors findings) in
      let warns = List.length findings - errs in
      Buffer.add_string buf
        (Printf.sprintf "%d error%s, %d warning%s\n" errs
           (if errs = 1 then "" else "s")
           warns
           (if warns = 1 then "" else "s")));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
            \"severity\": \"%s\", \"message\": \"%s\"}"
           (json_escape f.file) f.line f.col (json_escape f.rule)
           (severity_to_string f.severity)
           (json_escape f.message)))
    findings;
  if findings <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]\n";
  Buffer.contents buf
