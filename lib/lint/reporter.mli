(** Finding reporters. Pure string builders; the driver prints. *)

val to_text : Rule.finding list -> string
(** Grep-friendly [file:line:col: [severity] rule: message] lines plus a
    summary line when there are findings. *)

val to_json : Rule.finding list -> string
(** JSON array of [{file, line, col, rule, severity, message}] objects.
    Emits [[]] when there are no findings. *)

val json_escape : string -> string
