type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

type ctx = {
  path : string;  (** repo-relative path, '/'-separated *)
  source : string;
  tokens : Token.t array;  (** full stream, comments included *)
  code : Token.t array;  (** comments stripped *)
  mli_exists : bool option;
      (** [Some b] when [path] is a [lib/**.ml] implementation file and a
          matching interface does (not) exist; [None] otherwise. *)
  scope : Scope.t Lazy.t;
      (** scope tree over [code]; built on first use by a scope-aware
          rule, so token-only runs pay nothing for it *)
}

type t = {
  name : string;
  severity : severity;
  doc : string;  (** one-line description shown by [--list-rules] *)
  check : ctx -> finding list;
}

let finding rule ctx ?(message = "") (tok : Token.t) =
  {
    rule = rule.name;
    severity = rule.severity;
    file = ctx.path;
    line = tok.line;
    col = tok.col;
    message = (if message = "" then rule.doc else message);
  }
