(** Rule interface for faultnet-lint. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

type ctx = {
  path : string;  (** repo-relative path, '/'-separated *)
  source : string;
  tokens : Token.t array;  (** full stream, comments included *)
  code : Token.t array;  (** comments stripped *)
  mli_exists : bool option;
      (** [Some b] when [path] is a [lib/**.ml] implementation file and a
          matching interface does (not) exist; [None] otherwise. *)
  scope : Scope.t Lazy.t;
      (** scope tree over [code]; built on first use by a scope-aware
          rule, so token-only runs pay nothing for it *)
}

type t = {
  name : string;
  severity : severity;
  doc : string;
  check : ctx -> finding list;
}

val finding : t -> ctx -> ?message:string -> Token.t -> finding
(** Build a finding anchored at a token; [message] defaults to the
    rule's [doc]. *)
