(* The repo-specific rule set.  Rules work on token streams from
   {!Token}, so occurrences inside comments and string literals never
   trigger code rules. *)

open Rule

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let basename path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let is_ml path = ends_with ~suffix:".ml" path

(* Token-stream helpers. *)

let tok (c : Token.t array) i : Token.t option = if i >= 0 && i < Array.length c then Some c.(i) else None

let is_dot c i = match tok c i with Some { kind = Token.Punct; text = "."; _ } -> true | _ -> false

let is_ident c i name =
  match tok c i with Some { kind = Token.Ident; text; _ } -> text = name | _ -> false

let is_op c i text' =
  match tok c i with Some { kind = Token.Op; text; _ } -> text = text' | _ -> false

(* A token is "qualified" when it follows a '.', e.g. the [compare] in
   [Int.compare]. *)
let qualified c i = is_dot c (i - 1)

(* ------------------------------------------------------------------ *)
(* 1. no-global-random                                                 *)
(* ------------------------------------------------------------------ *)

let no_global_random =
  let rec check rule ctx i acc =
    let c = ctx.code in
    if i >= Array.length c then List.rev acc
    else
      let acc =
        match c.(i) with
        | { kind = Token.Uident; text = "Random"; _ }
          when is_dot c (i + 1) && not (qualified c i) ->
            finding rule ctx
              ~message:
                "global Random breaks experiment reproducibility; use the seeded \
                 splittable generator in lib/prng (Fn_prng) instead"
              c.(i)
            :: acc
        | _ -> acc
      in
      check rule ctx (i + 1) acc
  in
  let rec rule =
    {
      name = "no-global-random";
      severity = Error;
      doc = "use lib/prng instead of OCaml's global Random";
      check = (fun ctx -> if is_ml ctx.path then check rule ctx 0 [] else []);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* 2. no-poly-compare                                                  *)
(* ------------------------------------------------------------------ *)

let sort_functions = [ "sort"; "stable_sort"; "fast_sort"; "sort_uniq" ]
let sort_modules = [ "List"; "Array"; "ListLabels"; "ArrayLabels" ]

let no_poly_compare =
  let rec skip_label c i =
    (* skip an optional [~cmp:] / [~compare:] label *)
    if is_op c i "~" && (match tok c (i + 1) with Some { kind = Token.Ident; _ } -> true | _ -> false) && is_op c (i + 2) ":"
    then skip_label c (i + 3)
    else i
  in
  let comparator_pos c i =
    (* position right after the sort head, labels and one '(' skipped;
       the boolean records whether a '(' was consumed (a lambda
       comparator is always parenthesized in application position) *)
    let i = skip_label c i in
    match tok c i with
    | Some { kind = Token.Punct; text = "("; _ } -> (i + 1, true)
    | _ -> (i, false)
  in
  let flags_at rule ctx i =
    let c = ctx.code in
    let j, parenthesized = comparator_pos c i in
    let bare_compare k = is_ident c k "compare" && not (qualified c k) && not (is_dot c (k + 1)) in
    let stdlib_compare k =
      (match tok c k with Some { kind = Token.Uident; text = "Stdlib"; _ } -> true | _ -> false)
      && is_dot c (k + 1)
      && is_ident c (k + 2) "compare"
    in
    if bare_compare j then
      Some
        (finding rule ctx
           ~message:
             "bare polymorphic compare in a sort hot path costs a C call per \
              comparison; use Int.compare / Float.compare or an explicit \
              monomorphic comparator"
           c.(j))
    else if stdlib_compare j then
      Some
        (finding rule ctx
           ~message:
             "Stdlib.compare in a sort hot path is polymorphic; use a \
              monomorphic comparator"
           c.(j))
    else if parenthesized && (is_ident c j "fun" || is_ident c j "function") then
      (* a lambda comparator: scan its body to the matching close paren
         for a polymorphic compare hidden inside, e.g.
         [Array.sort (fun a b -> compare (x.(a), a) (x.(b), b)) arr] *)
      let n = Array.length c in
      let rec scan k depth =
        if depth = 0 || k >= n then None
        else
          match c.(k) with
          | { kind = Token.Punct; text = "("; _ } -> scan (k + 1) (depth + 1)
          | { kind = Token.Punct; text = ")"; _ } -> scan (k + 1) (depth - 1)
          | _ when bare_compare k ->
              Some
                (finding rule ctx
                   ~message:
                     "polymorphic compare inside a sort comparator costs a C \
                      call (and any tuple it compares, an allocation) per \
                      comparison; compose Int.compare / Float.compare \
                      monomorphically instead"
                   c.(k))
          | _ when stdlib_compare k ->
              Some
                (finding rule ctx
                   ~message:
                     "Stdlib.compare inside a sort comparator is polymorphic; \
                      compose monomorphic comparators instead"
                   c.(k))
          | _ -> scan (k + 1) depth
      in
      scan (j + 1) 1
    else None
  in
  let rec check rule ctx i acc =
    let c = ctx.code in
    if i >= Array.length c then List.rev acc
    else
      let acc =
        match c.(i) with
        | { kind = Token.Uident; text; _ }
          when List.mem text sort_modules && (not (qualified c i)) && is_dot c (i + 1) -> (
            match tok c (i + 2) with
            | Some { kind = Token.Ident; text = fn; _ } when List.mem fn sort_functions -> (
                match flags_at rule ctx (i + 3) with Some f -> f :: acc | None -> acc)
            | _ -> acc)
        | _ -> acc
      in
      check rule ctx (i + 1) acc
  in
  let rec rule =
    {
      name = "no-poly-compare";
      severity = Error;
      doc = "no bare polymorphic compare in sort calls";
      check = (fun ctx -> if is_ml ctx.path then check rule ctx 0 [] else []);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* 3. no-catchall-exn                                                  *)
(* ------------------------------------------------------------------ *)

let no_catchall_exn =
  let rec check rule ctx i stack acc =
    let c = ctx.code in
    if i >= Array.length c then List.rev acc
    else
      match c.(i) with
      | { kind = Token.Ident; text = "try"; _ } -> check rule ctx (i + 1) (`Try :: stack) acc
      | { kind = Token.Ident; text = "match"; _ } -> check rule ctx (i + 1) (`Match :: stack) acc
      | { kind = Token.Ident; text = "with"; _ }
        when is_ident c (i + 1) "type" || is_ident c (i + 1) "module" ->
          (* module-type constraint: [S with type t = ...] *)
          check rule ctx (i + 1) stack acc
      | { kind = Token.Ident; text = "with"; _ } -> (
          let owner, stack = match stack with s :: rest -> (Some s, rest) | [] -> (None, []) in
          let j = if is_op c (i + 1) "|" then i + 2 else i + 1 in
          match owner with
          | Some `Try when is_ident c j "_" && is_op c (j + 1) "->" ->
              let f =
                finding rule ctx
                  ~message:
                    "catch-all exception handler swallows programming errors \
                     (Out_of_memory, Assert_failure, ...); match specific \
                     exceptions instead"
                  c.(j)
              in
              check rule ctx (i + 1) stack (f :: acc)
          | _ -> check rule ctx (i + 1) stack acc)
      | _ -> check rule ctx (i + 1) stack acc
  in
  let rec rule =
    {
      name = "no-catchall-exn";
      severity = Error;
      doc = "no 'try ... with _ ->' catch-all exception handlers";
      check = (fun ctx -> if is_ml ctx.path then check rule ctx 0 [] [] else []);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* 4. mli-required                                                     *)
(* ------------------------------------------------------------------ *)

let mli_required =
  {
    name = "mli-required";
    severity = Error;
    doc = "every lib/**/*.ml needs a matching .mli interface";
    check =
      (fun ctx ->
        match ctx.mli_exists with
        | Some false ->
            [
              {
                rule = "mli-required";
                severity = Error;
                file = ctx.path;
                line = 1;
                col = 1;
                message =
                  "library module has no .mli: exported surface is \
                   unconstrained and cross-module inlining info bloats; add " ^ ctx.path ^ "i";
              };
            ]
        | _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* 5. no-print-in-lib                                                  *)
(* ------------------------------------------------------------------ *)

let print_idents =
  [ "print_endline"; "print_string"; "print_newline"; "print_char"; "print_int"; "print_float" ]

let no_print_in_lib =
  let rec check rule ctx i acc =
    let c = ctx.code in
    if i >= Array.length c then List.rev acc
    else
      let flag tok' =
        finding rule ctx
          ~message:
            "stdout printing inside a library couples computation to the \
             terminal; return data and print from bin/, or move this into an \
             allowlisted reporter module"
          tok'
      in
      let acc =
        match c.(i) with
        | { kind = Token.Ident; text; _ } when List.mem text print_idents && not (qualified c i)
          ->
            flag c.(i) :: acc
        | { kind = Token.Uident; text = "Printf" | "Format"; _ }
          when (not (qualified c i)) && is_dot c (i + 1) && is_ident c (i + 2) "printf" ->
            flag c.(i) :: acc
        | _ -> acc
      in
      check rule ctx (i + 1) acc
  in
  let rec rule =
    {
      name = "no-print-in-lib";
      severity = Error;
      doc = "no stdout printing in lib/ outside reporter modules";
      check =
        (fun ctx ->
          if is_ml ctx.path && starts_with ~prefix:"lib/" ctx.path then check rule ctx 0 []
          else []);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* 6. no-raw-timing                                                    *)
(* ------------------------------------------------------------------ *)

(* [Module.function] pairs that read wall/CPU clocks directly.  All
   timing must flow through lib/obs (Fn_obs.Clock): it is monotone
   (raw gettimeofday can step backwards under NTP) and keeps the
   zero-cost-when-disabled discipline auditable in one place. *)
let raw_timing_calls = [ ("Sys", [ "time" ]); ("Unix", [ "gettimeofday"; "time"; "times" ]) ]

let no_raw_timing =
  let rec check rule ctx i acc =
    let c = ctx.code in
    if i >= Array.length c then List.rev acc
    else
      let acc =
        match c.(i) with
        | { kind = Token.Uident; text; _ }
          when (not (qualified c i)) && is_dot c (i + 1) -> (
            match List.assoc_opt text raw_timing_calls with
            | Some fns
              when (match tok c (i + 2) with
                   | Some { kind = Token.Ident; text = fn; _ } -> List.mem fn fns
                   | _ -> false) ->
                finding rule ctx
                  ~message:
                    "raw clock read bypasses lib/obs; use Fn_obs.Clock (monotone, \
                     nanosecond) or emit through an Fn_obs.Sink so timing stays \
                     zero-cost when observability is off"
                  c.(i)
                :: acc
            | _ -> acc)
        | _ -> acc
      in
      check rule ctx (i + 1) acc
  in
  let rec rule =
    {
      name = "no-raw-timing";
      severity = Error;
      doc = "no Sys.time/Unix.gettimeofday outside lib/obs; use Fn_obs.Clock";
      check = (fun ctx -> if is_ml ctx.path then check rule ctx 0 [] else []);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* 7. no-todo-naked                                                    *)
(* ------------------------------------------------------------------ *)

let no_todo_naked =
  let is_word_char ch =
    (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9') || ch = '_'
  in
  let tagged text i kwlen =
    (* accept TODO(owner) / FIXME(#123) ... *)
    let n = String.length text in
    let j = i + kwlen in
    if j < n && text.[j] = '(' then
      match String.index_from_opt text j ')' with
      | Some k -> k > j + 1
      | None -> false
    else
      (* ... or an issue tag '#<digits>' anywhere later in the comment *)
      let rec scan j =
        if j + 1 >= n then false
        else if text.[j] = '#' && text.[j + 1] >= '0' && text.[j + 1] <= '9' then true
        else scan (j + 1)
      in
      scan j
  in
  let occurrences comment_tok kw acc0 rule ctx =
    let text = (comment_tok : Token.t).text in
    let n = String.length text and kwlen = String.length kw in
    let rec go i line col_base acc =
      if i + kwlen > n then acc
      else if text.[i] = '\n' then go (i + 1) (line + 1) (i + 1) acc
      else if
        String.sub text i kwlen = kw
        && (i = 0 || not (is_word_char text.[i - 1]))
        && (i + kwlen >= n || not (is_word_char text.[i + kwlen]))
        && not (tagged text i kwlen)
      then
        let col = if line = comment_tok.line then comment_tok.col + i else i - col_base + 1 in
        let f =
          {
            rule = rule.name;
            severity = rule.severity;
            file = ctx.path;
            line;
            col;
            message = kw ^ " without an owner or issue tag; write " ^ kw ^ "(name) or cite #<issue>";
          }
        in
        go (i + kwlen) line col_base (f :: acc)
      else go (i + 1) line col_base acc
    in
    go 0 comment_tok.line 0 acc0
  in
  let rec rule =
    {
      name = "no-todo-naked";
      severity = Warning;
      doc = "TODO/FIXME must carry an owner or issue tag";
      check =
        (fun ctx ->
          Array.fold_left
            (fun acc t ->
              match (t : Token.t).kind with
              | Token.Comment -> occurrences t "FIXME" (occurrences t "TODO" acc rule ctx) rule ctx
              | _ -> acc)
            [] ctx.tokens
          |> List.rev);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* 8. no-exit-in-lib                                                   *)
(* ------------------------------------------------------------------ *)

(* Library code must not terminate the process: under Fn_resilience's
   supervision a crash is captured, retried and reported, but [exit]
   bypasses every handler (and kills sibling domains mid fork-join).
   Only bin/ decides exit codes.  Unqualified [exit] is flagged unless
   it is being *defined* ([let exit ...] — lib/obs/span.ml exports its
   own [exit] for spans); [Stdlib.exit] is always flagged. *)
let no_exit_in_lib =
  let rec check rule ctx i acc =
    let c = ctx.code in
    if i >= Array.length c then List.rev acc
    else
      let flag tok' =
        finding rule ctx
          ~message:
            "exit inside a library kills the whole process and bypasses \
             supervision (Fn_resilience) and cleanup; return a result or raise, \
             and let bin/ choose the exit code"
          tok'
      in
      let acc =
        match c.(i) with
        | { kind = Token.Ident; text = "exit"; _ }
          when (not (qualified c i))
               && (not (is_ident c (i - 1) "let"))
               && not (is_ident c (i - 1) "and") ->
            flag c.(i) :: acc
        | { kind = Token.Uident; text = "Stdlib"; _ }
          when (not (qualified c i)) && is_dot c (i + 1) && is_ident c (i + 2) "exit" ->
            flag c.(i) :: acc
        | _ -> acc
      in
      check rule ctx (i + 1) acc
  in
  let rec rule =
    {
      name = "no-exit-in-lib";
      severity = Error;
      doc = "no exit/Stdlib.exit in lib/; only bin/ may terminate the process";
      check =
        (fun ctx ->
          if is_ml ctx.path && starts_with ~prefix:"lib/" ctx.path then check rule ctx 0 []
          else []);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* 9. no-raw-csr-outside-kernels                                       *)
(* ------------------------------------------------------------------ *)

(* [Graph.xadj]/[Graph.adj] expose the flat CSR arrays, which only
   exist on materialized graphs.  Code written against them silently
   loses the implicit arm of [Gview.t] — it cannot run on a generated
   10^7-node torus.  Everything outside the few allowlisted flat-array
   kernels must go through [Graph.iter_neighbors] / [Gview].  The check
   fires on the [Graph] token whether or not it is itself qualified, so
   [Fn_graph.Graph.xadj] from outside the library is caught too. *)
let raw_csr_fields = [ "xadj"; "adj" ]

let no_raw_csr_outside_kernels =
  let rec check rule ctx i acc =
    let c = ctx.code in
    if i >= Array.length c then List.rev acc
    else
      let acc =
        match c.(i) with
        | { kind = Token.Uident; text = "Graph"; _ }
          when is_dot c (i + 1)
               && (match tok c (i + 2) with
                  | Some { kind = Token.Ident; text = fn; _ } -> List.mem fn raw_csr_fields
                  | _ -> false) ->
            finding rule ctx
              ~message:
                "raw CSR access (Graph.xadj/Graph.adj) pins this code to \
                 materialized graphs and breaks on implicit Gview topologies; \
                 iterate with Graph.iter_neighbors / Gview.iter_neighbors, or \
                 allowlist this file as a flat-array kernel"
              c.(i)
            :: acc
        | _ -> acc
      in
      check rule ctx (i + 1) acc
  in
  let rec rule =
    {
      name = "no-raw-csr-outside-kernels";
      severity = Error;
      doc = "Graph.xadj/Graph.adj only in allowlisted flat-array kernels";
      check = (fun ctx -> if is_ml ctx.path then check rule ctx 0 [] else []);
    }
  in
  rule

(* ------------------------------------------------------------------ *)
(* Registry and allowlist                                              *)
(* ------------------------------------------------------------------ *)

(* Tier 2: scope-aware rules (see Scope/Analysis).  Defined in their
   own modules; re-exported here so the registry stays the one list. *)
let par_capture_mutation = Rules_par.par_capture_mutation
let rng_unsplit_in_par = Rules_par.rng_unsplit_in_par
let par_float_reduce = Rules_par.par_float_reduce
let hashtbl_order_dependence = Rules_order.hashtbl_order_dependence
let dls_outside_obs = Rules_order.dls_outside_obs

let all =
  [
    no_global_random;
    no_poly_compare;
    no_catchall_exn;
    mli_required;
    no_print_in_lib;
    no_raw_timing;
    no_todo_naked;
    no_exit_in_lib;
    no_raw_csr_outside_kernels;
    par_capture_mutation;
    rng_unsplit_in_par;
    par_float_reduce;
    hashtbl_order_dependence;
    dls_outside_obs;
  ]

let find name = List.find_opt (fun r -> r.name = name) all

type pattern = Prefix of string | Basename of string
type allow = { pattern : pattern; why : string }

let prefix p why = { pattern = Prefix p; why }
let base b why = { pattern = Basename b; why }

(* Paths where a rule does not apply at all.  Every exemption carries
   its reason as data, so `lint --explain RULE` can print not just
   where a rule is off but why — the record replaces the comments that
   used to sit next to each entry. *)
let allowlist =
  [
    ( "no-global-random",
      [
        prefix "lib/prng/"
          "the PRNG library is the one place allowed to touch Random, to seed/splitmix \
           on top of it";
      ] );
    ( "no-print-in-lib",
      let why =
        "designated reporter module: rendering tables / experiment outcomes to stdout \
         is its whole job"
      in
      [ base "table.ml" why; base "report.ml" why; base "outcome.ml" why ] );
    ( "no-raw-timing",
      [
        prefix "lib/obs/"
          "the observability clock is the one legal wrapper over the raw OS clock; \
           everything else (including lib/bench and bench/, deliberately NOT listed \
           here) times through Fn_obs.Clock so bench numbers and spans share one clock";
      ] );
    ( "no-raw-csr-outside-kernels",
      [
        prefix "lib/graph_core/check.ml"
          "walks the raw CSR to validate its invariants (sortedness, symmetry — the \
           thing the accessors assume)";
        prefix "lib/routing/sim.ml"
          "arc-indexed queues are keyed by CSR edge positions, which have no Gview \
           analogue";
      ] );
    ( "no-catchall-exn",
      [
        prefix "lib/online/engine.ml"
          "the audit-quarantine post-mortem write is crash-only diagnostics: no \
           filesystem failure (full disk, missing dir) may escalate a detected \
           divergence into a dead service, so the one write site deliberately \
           swallows everything";
      ] );
    ( "no-exit-in-lib",
      [
        base "span.ml"
          "defines and internally calls its own [exit] (closing a span); that shadowed \
           name is not Stdlib.exit";
      ] );
    ( "par-capture-mutation",
      [
        prefix "lib/parallel/"
          "implements the blessed primitives themselves: fork-join plumbing writes \
           disjoint per-chunk slots by construction";
      ] );
    ( "par-float-reduce",
      [
        prefix "lib/parallel/"
          "defines the ordered-reduce primitives the rule tells everyone else to reach \
           for";
      ] );
    ( "rng-unsplit-in-par",
      [
        prefix "lib/parallel/"
          "the split-RNG plumbing itself lives here; it hands each chunk its own \
           stream";
      ] );
    ( "dls-outside-obs",
      [
        prefix "lib/obs/"
          "the per-domain span stack is the one sanctioned Domain.DLS use (the rule's \
           own doc says so)";
      ] );
  ]

let matches path = function
  | Prefix p -> starts_with ~prefix:p path
  | Basename b -> basename path = b

let allowed ~rule ~path =
  match List.assoc_opt rule allowlist with
  | None -> false
  | Some entries -> List.exists (fun a -> matches path a.pattern) entries

let allow_reason ~rule ~path =
  match List.assoc_opt rule allowlist with
  | None -> None
  | Some entries ->
      List.find_map (fun a -> if matches path a.pattern then Some a.why else None) entries
