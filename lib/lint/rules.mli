(** The faultnet-lint rule set and allowlist. *)

val no_global_random : Rule.t
(** Forbid [Random.] outside [lib/prng/]: the global generator breaks
    experiment reproducibility. *)

val no_poly_compare : Rule.t
(** Flag bare [compare] (or [Stdlib.compare]) passed to
    [List.sort]/[Array.sort] and friends: polymorphic compare costs a C
    call per element on hot paths. *)

val no_catchall_exn : Rule.t
(** Forbid [try ... with _ ->]: catch-alls swallow programming errors. *)

val mli_required : Rule.t
(** Every [lib/**/*.ml] must have a matching [.mli]. *)

val no_print_in_lib : Rule.t
(** Forbid [Printf.printf]/[print_endline]/... in [lib/] outside the
    reporter allowlist. *)

val no_raw_timing : Rule.t
(** Forbid [Sys.time]/[Unix.gettimeofday]/[Unix.time]/[Unix.times]
    outside [lib/obs/]: all timing flows through the monotone
    [Fn_obs.Clock]. *)

val no_todo_naked : Rule.t
(** [TODO]/[FIXME] must carry an owner ([TODO(name)]) or an issue tag
    ([#123]). Warning severity. *)

val no_exit_in_lib : Rule.t
(** Forbid [exit]/[Stdlib.exit] in [lib/]: terminating the process from
    a library bypasses supervision ({!Fn_resilience}) and kills sibling
    domains; only [bin/] chooses exit codes. *)

(** Tier-2 scope-aware rules, re-exported from {!Rules_par} and
    {!Rules_order} so the registry is the single list. *)

val par_capture_mutation : Rule.t
val rng_unsplit_in_par : Rule.t
val par_float_reduce : Rule.t
val hashtbl_order_dependence : Rule.t
val dls_outside_obs : Rule.t

val all : Rule.t list
val find : string -> Rule.t option

type pattern = Prefix of string | Basename of string

type allow = { pattern : pattern; why : string }
(** One path exemption and the reason it exists.  The rationale is
    data, not a comment: [lint --explain RULE] prints it next to each
    exempted path. *)

val allowlist : (string * allow list) list
(** Per-rule path exemptions. *)

val allowed : rule:string -> path:string -> bool

val allow_reason : rule:string -> path:string -> string option
(** The [why] of the first exemption matching [path], if any. *)

(** Shared path helpers. *)

val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool
val basename : string -> string
