open Rule

let is_ml path = String.ends_with ~suffix:".ml" path

let is_dot (c : Token.t array) i =
  i >= 0 && i < Array.length c && c.(i).kind = Token.Punct && c.(i).text = "."

let ident_at (c : Token.t array) i =
  if i >= 0 && i < Array.length c && c.(i).kind = Token.Ident then Some c.(i).text
  else None

(* A sort anywhere in the same structure-level definition absolves an
   order-dependent fold: building an unordered list and sorting it
   before use is the repo's canonical Hashtbl pattern. *)
let sorted_nearby (c : Token.t array) root at =
  let scope = Scope.innermost_non_closure root at in
  let last = min scope.Scope.last (Array.length c) in
  let rec scan i =
    if i >= last then false
    else
      match ident_at c i with
      | Some ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") -> true
      | _ -> scan (i + 1)
  in
  scan scope.Scope.first

(* Is the combiner body order-sensitive?
   - fold: the accumulator is a bound parameter, so mutation tracking
     cannot see it; any [::]/[@]/[^] or float arithmetic in the body is
     treated as accumulation.
   - iter: only *captured* mutations that accumulate ([::] or float
     ops on the RHS) count — integer counters, [max]-style updates and
     indexed writes are commutative and deterministic.
   Appending to a Buffer/Queue/Stack or printing is order-sensitive for
   both forms. *)
let body_order_sensitive (c : Token.t array) ~fold (closure : Scope.t) =
  let first = closure.Scope.first and last = closure.Scope.last in
  let sink = Analysis.order_sensitive_sink c ~first ~last in
  if sink <> None then sink
  else if fold then begin
    let last = min last (Array.length c) in
    let rec scan i =
      if i >= last then None
      else if Analysis.float_op c i then Some i
      else
        match c.(i) with
        | { Token.kind = Token.Op; text = "::" | "@" | "^"; _ } -> Some i
        | _ -> scan (i + 1)
    in
    scan first
  end
  else
    let bound = Scope.bound_set closure in
    Analysis.mutations c ~first ~last
    |> List.find_opt (fun (m : Analysis.mutation) ->
           m.target <> ""
           && (not (Hashtbl.mem bound m.target))
           && (m.float_acc || m.cons_acc))
    |> Option.map (fun (m : Analysis.mutation) -> m.at)

let hashtbl_order_dependence =
  let rec rule =
    {
      name = "hashtbl-order-dependence";
      severity = Error;
      doc = "Hashtbl iteration feeding ordered output must pass through a sort";
      check =
        (fun ctx ->
          let c = ctx.code in
          if not (is_ml ctx.path) then []
          else begin
            let n = Array.length c in
            let out = ref [] in
            for i = 0 to n - 3 do
              match c.(i) with
              | { Token.kind = Token.Uident; text = "Hashtbl"; _ }
                when is_dot c (i + 1)
                     && (match ident_at c (i + 2) with
                        | Some ("iter" | "fold") -> true
                        | _ -> false)
                     && not (is_dot c (i - 1)) -> (
                let fold = ident_at c (i + 2) = Some "fold" in
                let root = Lazy.force ctx.scope in
                let sensitive =
                  match Analysis.arg_closures c root (i + 2) with
                  | closure :: _ -> body_order_sensitive c ~fold closure
                  | [] ->
                    (* opaque combiner: cannot classify, so require the
                       sort unconditionally *)
                    Some i
                in
                match sensitive with
                | Some _ when not (sorted_nearby c root i) ->
                  out :=
                    finding rule ctx
                      ~message:
                        (Printf.sprintf
                           "Hashtbl.%s feeds an order-sensitive accumulator, \
                            but iteration order is unspecified (it varies \
                            with hash seed and insertion history): collect \
                            then List.sort before the result reaches output, \
                            or use a commutative combiner"
                           (if fold then "fold" else "iter"))
                      c.(i)
                    :: !out
                | _ -> ())
              | _ -> ()
            done;
            List.rev !out
          end);
    }
  in
  rule

let dls_outside_obs =
  let rec rule =
    {
      name = "dls-outside-obs";
      severity = Error;
      doc = "Domain.DLS only in lib/obs; domain-local state evades the determinism contract";
      check =
        (fun ctx ->
          let c = ctx.code in
          if not (is_ml ctx.path) then []
          else begin
            let n = Array.length c in
            let out = ref [] in
            for i = 0 to n - 3 do
              match c.(i) with
              | { Token.kind = Token.Uident; text = "Domain"; _ }
                when is_dot c (i + 1)
                     && (match c.(i + 2) with
                        | { kind = Token.Uident; text = "DLS"; _ } -> true
                        | _ -> false)
                     && not (is_dot c (i - 1)) ->
                out :=
                  finding rule ctx
                    ~message:
                      "Domain.DLS holds per-domain state that checkpointing \
                       and the ?domains determinism contract cannot see; keep \
                       state explicit (pass it through the closure) or extend \
                       Fn_obs if observability truly needs it"
                    c.(i)
                  :: !out
              | _ -> ()
            done;
            List.rev !out
          end);
    }
  in
  rule
