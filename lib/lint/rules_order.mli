(** Scope-aware rules over iteration-order and domain-local state.

    [Hashtbl] iteration order is unspecified and varies with the hash
    seed and insertion history; results that flow into ordered sinks
    (lists built with [::], strings, buffers, float sums) must pass
    through a sort before they reach output, or byte-identity of
    experiment runs is lost. *)

val hashtbl_order_dependence : Rule.t
(** [Hashtbl.iter]/[Hashtbl.fold] whose combiner accumulates in an
    order-sensitive way ([::]/[@]/[^], float [+.], or appends to a
    [Buffer]/[Queue]/[Stack]/printer) with no sort in the same
    definition.  Commutative combiners ([max], integer counters,
    per-index array writes) are fine and not flagged. *)

val dls_outside_obs : Rule.t
(** [Domain.DLS] outside [lib/obs]: domain-local state is invisible to
    the determinism contract and to [Fn_resilience] checkpointing; the
    one blessed use is [Fn_obs.Span]'s per-domain span stack. *)
