(* Scope-aware rules over parallel-region closures.  Shared skeleton:
   find parallel entry points, resolve their literal closure arguments,
   then classify what each closure does to bindings it captures. *)

open Rule

let is_ml path = String.ends_with ~suffix:".ml" path

(* Apply [f entry closure bound] to every literal closure passed to a
   parallel entry point, with the closure's bound-name set. *)
let over_par_closures ctx f =
  let c = ctx.code in
  let root = Lazy.force ctx.scope in
  List.concat_map
    (fun (entry : Analysis.entry) ->
      List.concat_map
        (fun closure -> f entry closure (Scope.bound_set closure))
        (Analysis.arg_closures c root entry.at))
    (Analysis.entries c)

(* Nested entries ([Domain.spawn] inside [Pool] internals) can surface
   the same mutation twice; keep the first finding per token. *)
let dedup_by_col findings =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (f : finding) ->
      let key = (f.line, f.col, f.rule) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    findings

let par_capture_mutation =
  let rec rule =
    {
      name = "par-capture-mutation";
      severity = Error;
      doc = "parallel closures must not mutate captured state without Atomic/Mutex";
      check =
        (fun ctx ->
          if not (is_ml ctx.path) then []
          else
            over_par_closures ctx (fun entry closure bound ->
                Analysis.mutations ctx.code ~first:closure.Scope.first
                  ~last:closure.Scope.last
                |> List.filter_map (fun (m : Analysis.mutation) ->
                       if
                         m.target = ""
                         || Hashtbl.mem bound m.target
                         || m.guarded || m.float_acc
                         || (entry.blessed_indexed && m.indexed)
                       then None
                       else
                         Some
                           (finding rule ctx
                              ~message:
                                (Printf.sprintf
                                   "closure passed to %s mutates '%s' (via %s) \
                                    bound outside the parallel region: a data \
                                    race, and nondeterministic under the \
                                    ?domains contract; use Atomic, hold a \
                                    Mutex, or return values and combine after \
                                    the join"
                                   entry.path m.target m.desc)
                              ctx.code.(m.at))))
            |> dedup_by_col);
    }
  in
  rule

let par_float_reduce =
  let rec rule =
    {
      name = "par-float-reduce";
      severity = Error;
      doc = "no in-place float accumulation across domains; reduce after the join";
      check =
        (fun ctx ->
          if not (is_ml ctx.path) then []
          else
            over_par_closures ctx (fun entry closure bound ->
                Analysis.mutations ctx.code ~first:closure.Scope.first
                  ~last:closure.Scope.last
                |> List.filter_map (fun (m : Analysis.mutation) ->
                       if
                         (not m.float_acc)
                         || m.target = ""
                         || Hashtbl.mem bound m.target
                         || m.guarded
                         || (entry.blessed_indexed && m.indexed)
                       then None
                       else
                         Some
                           (finding rule ctx
                              ~message:
                                (Printf.sprintf
                                   "closure passed to %s accumulates floats \
                                    into captured '%s': float addition is not \
                                    associative, so the sum depends on domain \
                                    scheduling; return per-trial floats and \
                                    reduce after the join in index order \
                                    (Array.fold_left)"
                                   entry.path m.target)
                              ctx.code.(m.at))))
            |> dedup_by_col);
    }
  in
  rule

(* rng-ish: the name contains "rng" ("rng", "rngs", "trial_rng", ...) *)
let rngish name =
  let name = String.lowercase_ascii name in
  let n = String.length name in
  let rec scan i =
    i + 3 <= n && (String.sub name i 3 = "rng" || scan (i + 1))
  in
  scan 0

let rng_unsplit_in_par =
  let is_dot (c : Token.t array) i =
    i >= 0 && i < Array.length c && c.(i).kind = Token.Punct && c.(i).text = "."
  in
  let is_open_paren (c : Token.t array) i =
    i < Array.length c && c.(i).kind = Token.Punct && c.(i).text = "("
  in
  let rec rule =
    {
      name = "rng-unsplit-in-par";
      severity = Error;
      doc = "parallel closures must use pre-split per-index RNG streams";
      check =
        (fun ctx ->
          let c = ctx.code in
          if not (is_ml ctx.path) then []
          else
            over_par_closures ctx (fun entry closure _bound ->
                Scope.captures c closure
                |> List.filter_map (fun (name, at) ->
                       let indexed_access = is_dot c (at + 1) && is_open_paren c (at + 2) in
                       if rngish name && not indexed_access then
                         Some
                           (finding rule ctx
                              ~message:
                                (Printf.sprintf
                                   "closure passed to %s captures RNG handle \
                                    '%s': drawing from a shared generator \
                                    across domains is racy and seed-breaking; \
                                    pre-split per-index streams with \
                                    Rng.split_n before the fork (Par.trials \
                                    does this for you) and index them as \
                                    rngs.(i)"
                                   entry.path name)
                              c.(at))
                       else None))
            |> dedup_by_col);
    }
  in
  rule
