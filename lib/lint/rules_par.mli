(** Scope-aware rules over parallel-region closures.

    These rules mechanically enforce the repo's [?domains] determinism
    contract (DESIGN.md): a closure passed to a parallel entry point
    ([Par.map]/[init]/[trials], [Par.Pool.run], [Domain.spawn],
    [Supervisor.trials], [Workload.trials]) must not smuggle shared
    mutable state or an unsplit RNG across the fork. *)

val par_capture_mutation : Rule.t
(** A parallel closure mutates a binding defined outside it without
    [Atomic]/[Mutex].  [Pool.run] jobs are allowed disjoint indexed
    writes ([slots.(w) <- ...], [Array.set], ...) per the Pool
    contract; fork-join closures are not. *)

val rng_unsplit_in_par : Rule.t
(** An [Fn_prng.Rng] handle is captured into a parallel closure instead
    of a pre-split per-index stream ([Rng.split_n] before the fork, or
    [Par.trials] which pre-splits for you).  Indexed access to a
    captured array of pre-split streams ([rngs.(i)]) is the blessed
    pattern and not flagged. *)

val par_float_reduce : Rule.t
(** A parallel closure accumulates floats in place across domains
    ([sum := !sum +. x]).  Float addition is not associative, so the
    result depends on scheduling; return per-trial floats and reduce
    after the join in index order ([Array.fold_left]). *)
