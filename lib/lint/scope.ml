type kind =
  | File
  | Module of string
  | Binding of string
  | Closure
  | Block

type t = {
  kind : kind;
  first : int;
  mutable last : int;
  mutable binds : (string * int) list;
  mutable children : t list;
}

(* Keywords never collected as binders.  A few non-keywords that show up
   in binder position scans ([true]/[false] in patterns) ride along. *)
let keywords =
  [
    "let"; "rec"; "nonrec"; "and"; "in"; "fun"; "function"; "match"; "with";
    "type"; "module"; "open"; "include"; "if"; "then"; "else"; "begin"; "end";
    "struct"; "sig"; "object"; "do"; "done"; "while"; "for"; "to"; "downto";
    "try"; "when"; "as"; "of"; "exception"; "mutable"; "val"; "external";
    "method"; "lazy"; "assert"; "new"; "true"; "false";
  ]

let is_keyword s = List.mem s keywords

let binder_ident (t : Token.t) =
  t.kind = Token.Ident && not (is_keyword t.text)

(* Build state: the scope stack carries, next to each scope, the paren
   depth and source column at which it was opened, so structure-level
   [let]s (same column, same paren depth) can close their predecessor
   while expression-level [let ... in] just records binders. *)
type frame = { scope : t; parens_at : int; col : int }

let build (c : Token.t array) =
  let n = Array.length c in
  let root = { kind = File; first = 0; last = n; binds = []; children = [] } in
  let stack = ref [ { scope = root; parens_at = 0; col = 0 } ] in
  let parens = ref [] in
  (* for each open paren: stack height when it was opened *)
  let height () = List.length !stack in
  let top () = (List.hd !stack).scope in
  let push kind first col =
    let s = { kind; first; last = n; binds = []; children = [] } in
    stack :=
      { scope = s; parens_at = List.length !parens; col } :: !stack
  in
  let pop stop =
    match !stack with
    | f :: ({ scope = parent; _ } :: _ as rest) ->
      f.scope.last <- stop;
      parent.children <- f.scope :: parent.children;
      stack := rest
    | _ -> ()
  in
  let close_to h stop =
    while height () > h && height () > 1 do
      pop stop
    done
  in
  (* [end]/[done]: close scopes up to and including the nearest
     Module/Block; ignore a stray one. *)
  let close_delimited stop =
    let rec has_delim = function
      | [] -> false
      | { scope = { kind = Module _ | Block; _ }; _ } :: _ -> true
      | _ :: rest -> has_delim rest
    in
    if has_delim (List.tl (List.rev !stack) |> List.rev) then begin
      (* only frames above root considered *)
      let rec go () =
        match !stack with
        | [ _root ] -> ()
        | { scope = { kind; _ }; _ } :: _ ->
          pop stop;
          (match kind with Module _ | Block -> () | _ -> go ())
        | [] -> ()
      in
      go ()
    end
  in
  let add_bind name i =
    let s = top () in
    s.binds <- (name, i) :: s.binds
  in
  let tok i = c.(i) in
  let is_dot i =
    i >= 0 && i < n && (tok i).kind = Token.Punct && (tok i).text = "."
  in
  (* Collect binder idents from [j0] until an [->] at relative paren
     depth 0; abandon (collect nothing) when the pattern clearly is not
     one, e.g. we run off the construct. *)
  let collect_until_arrow j0 =
    let rec go j depth acc steps =
      if j >= n || steps > 80 then None
      else
        let t = tok j in
        match (t.kind, t.text) with
        | Token.Op, "->" when depth = 0 -> Some (List.rev acc)
        | Token.Punct, ("(" | "[" | "{") -> go (j + 1) (depth + 1) acc (steps + 1)
        | Token.Punct, (")" | "]" | "}") ->
          if depth = 0 then None else go (j + 1) (depth - 1) acc (steps + 1)
        | Token.Punct, ";" when depth = 0 -> None
        | Token.Ident, ("in" | "let" | "done" | "end" | "fun") when depth = 0 ->
          None
        | Token.Ident, _ when binder_ident t && not (is_dot (j - 1)) ->
          go (j + 1) depth ((t.text, j) :: acc) (steps + 1)
        | _ -> go (j + 1) depth acc (steps + 1)
    in
    go j0 0 [] 0
  in
  (* Collect binder idents between a [let]/[and] and its [=] at relative
     depth 0.  Over-collects type-annotation names; that is fine (see
     scope.mli). *)
  let collect_let j0 =
    let rec go j depth acc steps =
      if j >= n || steps > 80 then List.rev acc
      else
        let t = tok j in
        match (t.kind, t.text) with
        | Token.Op, "=" when depth = 0 -> List.rev acc
        | Token.Punct, ("(" | "[" | "{") -> go (j + 1) (depth + 1) acc (steps + 1)
        | Token.Punct, (")" | "]" | "}") ->
          if depth = 0 then List.rev acc
          else go (j + 1) (depth - 1) acc (steps + 1)
        | Token.Ident, ("in" | "let" | "struct" | "fun") when depth = 0 ->
          List.rev acc
        | Token.Ident, _ when binder_ident t && not (is_dot (j - 1)) ->
          go (j + 1) depth ((t.text, j) :: acc) (steps + 1)
        | _ -> go (j + 1) depth acc (steps + 1)
    in
    go j0 0 [] 0
  in
  (* name for [module X = struct]: scan back a few tokens for the
     Uident following a [module] keyword *)
  let module_name i =
    let lo = max 0 (i - 8) in
    let rec find_module j =
      if j < lo then None
      else if (tok j).kind = Token.Ident && (tok j).text = "module" then Some j
      else find_module (j - 1)
    in
    match find_module (i - 1) with
    | None -> ""
    | Some m ->
      let rec first_uident j =
        if j >= i then ""
        else if (tok j).kind = Token.Uident then (tok j).text
        else first_uident (j + 1)
      in
      first_uident (m + 1)
  in
  let i = ref 0 in
  while !i < n do
    let t = tok !i in
    (match (t.kind, t.text) with
    | Token.Punct, ("(" | "[" | "{") -> parens := height () :: !parens
    | Token.Punct, (")" | "]" | "}") -> (
      match !parens with
      | h :: rest ->
        close_to h !i;
        parens := rest
      | [] -> ())
    | Token.Ident, "struct" -> push (Module (module_name !i)) !i t.col
    | Token.Ident, ("sig" | "object" | "begin" | "do") -> push Block !i t.col
    | Token.Ident, ("end" | "done") -> close_delimited !i
    | Token.Ident, ("fun" | "function") ->
      push Closure !i t.col;
      (match collect_until_arrow (!i + 1) with
      | Some binders -> List.iter (fun (name, j) -> add_bind name j) binders
      | None -> ())
    | Token.Ident, ("let" | "and")
      when not (is_dot (!i - 1))
           && not
                (!i + 1 < n
                && (tok (!i + 1)).kind = Token.Ident
                && List.mem (tok (!i + 1)).text [ "open"; "module"; "exception" ])
      ->
      (* Structure level?  Close the previous structure binding when we
         are back at (or left of) its column with no extra parens. *)
      let rec close_bindings () =
        match !stack with
        | { scope = { kind = Binding _; _ }; parens_at; col } :: _
          when parens_at = List.length !parens && t.col <= col ->
          pop !i;
          close_bindings ()
        | _ -> ()
      in
      close_bindings ();
      let binders = collect_let (!i + 1) in
      let structural =
        match !stack with
        | { scope = { kind = File | Module _; _ }; parens_at; _ } :: _ ->
          parens_at = List.length !parens
        | _ -> false
      in
      if structural then begin
        let name = match binders with (name, _) :: _ -> name | [] -> "" in
        push (Binding name) !i t.col;
        List.iter (fun (name, j) -> add_bind name j) binders
      end
      else List.iter (fun (name, j) -> add_bind name j) binders
    | Token.Op, "|" -> (
      (* candidate match/function case: binders up to the arrow *)
      match collect_until_arrow (!i + 1) with
      | Some binders -> List.iter (fun (name, j) -> add_bind name j) binders
      | None -> ())
    | Token.Ident, "with"
      when not
             (!i + 1 < n
             && (tok (!i + 1)).kind = Token.Ident
             && List.mem (tok (!i + 1)).text [ "type"; "module" ]) -> (
      (* first case of a [match]/[try] may omit the leading [|] *)
      match collect_until_arrow (!i + 1) with
      | Some binders -> List.iter (fun (name, j) -> add_bind name j) binders
      | None -> ())
    | Token.Ident, "for" ->
      if !i + 1 < n && binder_ident (tok (!i + 1)) then
        add_bind (tok (!i + 1)).text (!i + 1)
    | Token.Ident, "as" ->
      if !i + 1 < n && binder_ident (tok (!i + 1)) then
        add_bind (tok (!i + 1)).text (!i + 1)
    | _ -> ());
    incr i
  done;
  close_to 1 n;
  root

let contains s i = i >= s.first && i < s.last

let enclosing root i =
  let rec go s acc =
    match List.find_opt (fun ch -> contains ch i) s.children with
    | Some ch -> go ch (s :: acc)
    | None -> s :: acc
  in
  if contains root i then go root [] else []

let innermost_non_closure root i =
  let chain = enclosing root i in
  match
    List.find_opt (fun s -> match s.kind with Closure | Block -> false | _ -> true) chain
  with
  | Some s -> s
  | None -> root

let rec iter f s =
  f s;
  List.iter (iter f) s.children

let closure_at root i =
  let found = ref None in
  iter (fun s -> if s.kind = Closure && s.first = i then found := Some s) root;
  !found

let bound_set s =
  let tbl = Hashtbl.create 32 in
  iter (fun sc -> List.iter (fun (name, _) -> Hashtbl.replace tbl name ()) sc.binds) s;
  tbl

let captures (c : Token.t array) s =
  let n = Array.length c in
  let bound = bound_set s in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let is_punct i text = i >= 0 && i < n && c.(i).kind = Token.Punct && c.(i).text = text in
  let is_op i text = i >= 0 && i < n && c.(i).kind = Token.Op && c.(i).text = text in
  for i = s.first to min (s.last - 1) (n - 1) do
    let t = c.(i) in
    if
      t.kind = Token.Ident
      && (not (is_keyword t.text))
      && (not (is_punct (i - 1) "."))
      && (not ((is_op (i - 1) "~" || is_op (i - 1) "?") && is_op (i + 1) ":"))
      && (not (Hashtbl.mem bound t.text))
      && not (Hashtbl.mem seen t.text)
    then begin
      Hashtbl.add seen t.text ();
      out := (t.text, i) :: !out
    end
  done;
  List.rev !out
