(** Scope model for scope-aware lint rules.

    {!build} turns a comment-stripped token stream ({!Token.code}) into
    a tree of scopes — the file, [struct ... end] modules,
    structure-level [let] bindings, and [fun]/[function] closures —
    each carrying the names bound inside it and the token range it
    covers.  Rules use the tree to answer the one question token rules
    cannot: is this identifier bound inside the region I am looking
    at, or captured from outside it?

    The model is deliberately approximate, in the conservative
    direction for capture analysis: binder collection over-approximates
    (pattern idents, type-annotation names and record labels may be
    collected as binders), so a name reported as {e captured} really
    has no binder anywhere in the scope's subtree.  Rules built on it
    therefore under-report rather than false-positive. *)

type kind =
  | File  (** whole compilation unit *)
  | Module of string  (** [struct ... end]; [""] when anonymous *)
  | Binding of string
      (** structure-level [let]; the range covers the right-hand side
          up to the next structure item at the same indentation *)
  | Closure  (** [fun ... ->] or [function ...] literal *)
  | Block  (** [begin]/[sig]/[object]/[do] ... [end]/[done] *)

type t = {
  kind : kind;
  first : int;  (** token index (into the code array) of the opening token *)
  mutable last : int;  (** one past the last token of the scope *)
  mutable binds : (string * int) list;
      (** names bound directly in this scope (params, let names,
          pattern variables, [for] indices), with binding-site token
          index; excludes names bound in child scopes *)
  mutable children : t list;
}

val build : Token.t array -> t
(** [build code] parses the token stream into a scope tree rooted at a
    {!File} scope spanning the whole array.  [code] must be the
    comment-stripped stream ({!Token.code}). *)

val contains : t -> int -> bool
(** [contains s i] is true when token index [i] falls in [s]'s range. *)

val enclosing : t -> int -> t list
(** [enclosing root i] is the chain of scopes containing token [i],
    innermost first (the root is always last when [i] is in range). *)

val innermost_non_closure : t -> int -> t
(** The innermost enclosing scope of token [i] that is not a
    {!Closure} or {!Block} — i.e. the structure-level binding (or
    module, or file) whose body contains [i].  Rules use its range as
    the "same definition" window, e.g. to look for a sort absolving a
    hash-table fold. *)

val closure_at : t -> int -> t option
(** [closure_at root i] finds the {!Closure} scope whose opening
    [fun]/[function] token is exactly [i]. *)

val bound_set : t -> (string, unit) Hashtbl.t
(** All names bound in [t] or any descendant scope.  For a closure
    this is the set of names that are {e not} captures. *)

val captures : Token.t array -> t -> (string * int) list
(** [captures code s] lists identifiers occurring in [s]'s range with
    no binder anywhere in [s]'s subtree — i.e. values captured from an
    enclosing scope — with the token index of their first occurrence.
    Qualified accesses ([M.x], [r.field]) and label names ([~x:]) are
    not occurrences. *)
