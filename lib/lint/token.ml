(* A lightweight OCaml tokenizer for lint purposes.

   It is not a full lexer: it only needs to be precise about the things
   that make naive grep-based linting wrong — comments (which nest, and
   which may contain string literals that themselves contain "*)"),
   string literals (escapes, quoted {id|...|id} form), and char
   literals vs. type variables.  Everything else is classified coarsely
   (identifiers, numbers, operator clusters, single punctuation). *)

type kind =
  | Ident (* lowercase/underscore-initial identifier or keyword *)
  | Uident (* capitalized identifier, i.e. module/constructor *)
  | Number
  | String (* any string literal, including {id|...|id} *)
  | Char (* char literal, e.g. 'a' or '\n' *)
  | Comment (* full comment including delimiters *)
  | Op (* maximal run of operator characters, e.g. "->", "|>" except "." *)
  | Punct (* single punctuation char: ( ) [ ] { } , ; ` plus "." *)

type t = { kind : kind; text : string; line : int; col : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let is_op_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '/' | ':' | '<' | '=' | '>' | '?'
  | '@' | '^' | '|' | '~' | '#' ->
      true
  | _ -> false

let is_number_char c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c = '_'
  || c = '.' || c = 'x' || c = 'X' || c = 'o' || c = 'O'

type cursor = { src : string; len : int; mutable pos : int; mutable line : int; mutable bol : int }

let peek cu i = if cu.pos + i < cu.len then Some cu.src.[cu.pos + i] else None

let advance cu =
  (if cu.src.[cu.pos] = '\n' then begin
     cu.line <- cu.line + 1;
     cu.bol <- cu.pos + 1
   end);
  cu.pos <- cu.pos + 1

let advance_n cu n =
  for _ = 1 to n do
    if cu.pos < cu.len then advance cu
  done

(* Scan a plain "..." string body; cursor is on the opening quote. *)
let scan_string cu =
  advance cu;
  let fin = ref false in
  while (not !fin) && cu.pos < cu.len do
    match cu.src.[cu.pos] with
    | '\\' -> advance_n cu 2
    | '"' ->
        advance cu;
        fin := true
    | _ -> advance cu
  done

(* Scan {id|...|id} quoted string; cursor on '{'. Returns true if it
   really was a quoted string (otherwise cursor untouched). *)
let scan_quoted_string cu =
  let j = ref (cu.pos + 1) in
  while
    !j < cu.len
    && (let c = cu.src.[!j] in
        (c >= 'a' && c <= 'z') || c = '_')
  do
    incr j
  done;
  if !j < cu.len && cu.src.[!j] = '|' then begin
    let id = String.sub cu.src (cu.pos + 1) (!j - cu.pos - 1) in
    let closing = "|" ^ id ^ "}" in
    let clen = String.length closing in
    advance_n cu (!j - cu.pos + 1);
    let fin = ref false in
    while (not !fin) && cu.pos < cu.len do
      if cu.pos + clen <= cu.len && String.sub cu.src cu.pos clen = closing then begin
        advance_n cu clen;
        fin := true
      end
      else advance cu
    done;
    true
  end
  else false

(* Try to scan a char literal; cursor on '\''.  Returns false (cursor
   untouched) when the quote is a type-variable quote like 'a in
   ('a list) or the prime in an identifier (handled by ident scan). *)
let scan_char_literal cu =
  let ok n = cu.pos + n < cu.len && cu.src.[cu.pos + n] = '\'' in
  match peek cu 1 with
  | None -> false
  | Some '\\' ->
      (* '\n' '\\' '\'' '\123' '\xFF' '\o377' — the escaped char at
         position 2 is part of the literal, so the closing quote is at
         position >= 3 (this matters for '\'' and '\\'). *)
      let rec close n = if n > 6 then false else if ok n then true else close (n + 1) in
      if close 3 then begin
        let n = ref 3 in
        while not (ok !n) do
          incr n
        done;
        advance_n cu (!n + 1);
        true
      end
      else false
  | Some _ when ok 2 ->
      advance_n cu 3;
      true
  | _ -> false

(* Scan a comment; cursor on the '(' of "(*".  Comments nest, and
   string and char literals inside a comment hide any "*)" or '"' they
   contain — '"' in particular must not open a string scan, or the
   tokenizer desyncs on comments like [(* '"' *)]. *)
let scan_comment cu =
  advance_n cu 2;
  let depth = ref 1 in
  while !depth > 0 && cu.pos < cu.len do
    match (cu.src.[cu.pos], peek cu 1) with
    | '(', Some '*' ->
        incr depth;
        advance_n cu 2
    | '*', Some ')' ->
        decr depth;
        advance_n cu 2
    | '"', _ -> scan_string cu
    | '{', _ -> if not (scan_quoted_string cu) then advance cu
    | '\'', _ -> if not (scan_char_literal cu) then advance cu
    | _ -> advance cu
  done

let tokenize src =
  let cu = { src; len = String.length src; pos = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit kind start line col =
    toks := { kind; text = String.sub src start (cu.pos - start); line; col } :: !toks
  in
  while cu.pos < cu.len do
    let start = cu.pos and line = cu.line in
    let col = cu.pos - cu.bol + 1 in
    let c = src.[cu.pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance cu
    else if c = '(' && peek cu 1 = Some '*' then begin
      scan_comment cu;
      emit Comment start line col
    end
    else if c = '"' then begin
      scan_string cu;
      emit String start line col
    end
    else if c = '{' && scan_quoted_string cu then emit String start line col
    else if c = '\'' && scan_char_literal cu then emit Char start line col
    else if is_ident_start c then begin
      while cu.pos < cu.len && is_ident_char src.[cu.pos] do
        advance cu
      done;
      emit (if c >= 'A' && c <= 'Z' then Uident else Ident) start line col
    end
    else if is_digit c then begin
      while cu.pos < cu.len && is_number_char src.[cu.pos] do
        advance cu
      done;
      emit Number start line col
    end
    else if c = '.' then begin
      advance cu;
      emit Punct start line col
    end
    else if is_op_char c then begin
      while cu.pos < cu.len && is_op_char src.[cu.pos] do
        advance cu
      done;
      emit Op start line col
    end
    else begin
      advance cu;
      emit Punct start line col
    end
  done;
  Array.of_list (List.rev !toks)

(* Code tokens only (comments stripped), for rules that inspect code. *)
let code tokens = Array.of_list (List.filter (fun t -> t.kind <> Comment) (Array.to_list tokens))
