(** Lightweight OCaml tokenizer for lint purposes.

    Precise about comments (nesting, embedded strings), string literals
    (escapes and [{id|...|id}] quoted strings) and char literals; coarse
    about everything else. *)

type kind =
  | Ident  (** lowercase/underscore-initial identifier or keyword *)
  | Uident  (** capitalized identifier (module / constructor) *)
  | Number
  | String  (** string literal, including quoted-string form *)
  | Char  (** char literal *)
  | Comment  (** full comment text including [(*] and [*)] delimiters *)
  | Op  (** maximal run of operator characters, e.g. ["->"], ["|>"] *)
  | Punct  (** single punctuation char, including ["."] *)

type t = { kind : kind; text : string; line : int; col : int }
(** [line] is 1-based, [col] is 1-based. *)

val tokenize : string -> t array
(** Tokenize a full source file. Never raises; unrecognized bytes become
    single-char [Punct] tokens. *)

val code : t array -> t array
(** The same stream with [Comment] tokens removed, for code rules. *)
