(* Monotone wall clock.  OCaml's stdlib has no monotonic clock, so we
   take the wall clock and clamp it to be non-decreasing process-wide
   with an atomic high-water mark: a backwards step of the system
   clock repeats the last reading instead of going negative. *)

let last = Atomic.make 0

let rec clamp now =
  let prev = Atomic.get last in
  if now <= prev then prev
  else if Atomic.compare_and_set last prev now then now
  else clamp now

let now_ns () = clamp (int_of_float (Unix.gettimeofday () *. 1e9))

let ns_to_s ns = float_of_int ns /. 1e9

let elapsed_s ~since_ns = ns_to_s (now_ns () - since_ns)
