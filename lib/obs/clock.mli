(** Monotone (non-decreasing) wall-clock readings for the
    observability layer.

    All timing in this repository must flow through this module so
    that traces, metrics and reported durations share one clock — the
    [no-raw-timing] lint rule forbids [Sys.time] / [Unix.gettimeofday]
    everywhere outside [lib/obs]. *)

val now_ns : unit -> int
(** Current time in integer nanoseconds.  Monotone non-decreasing
    within the process (a backwards system-clock step repeats the last
    reading); safe to call from any domain. *)

val ns_to_s : int -> float
(** Nanoseconds to seconds. *)

val elapsed_s : since_ns:int -> float
(** Seconds elapsed since an earlier {!now_ns} reading. *)
