type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %.12g keeps 12 significant digits (enough for every quantity this
   repo reports) and always yields a valid JSON number; non-finite
   values have no JSON representation, so they become null *)
let float_repr v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then "null"
  else Printf.sprintf "%.12g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ---- parser ---- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad msg) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when Char.equal d c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  (* [Some c] comparisons go through this monomorphic check: [= Some c]
     is a polymorphic equality on [char option] in the parse hot loop *)
  let peek_is c = match peek () with Some d -> Char.equal d c | None -> false in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("bad literal " ^ word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (if !pos >= n then fail "dangling escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'u' ->
               if !pos + 4 > n then fail "short \\u escape";
               let code =
                 (hex s.[!pos] * 4096) + (hex s.[!pos + 1] * 256) + (hex s.[!pos + 2] * 16)
                 + hex s.[!pos + 3]
               in
               pos := !pos + 4;
               (* the writer only emits \u00xx control escapes; decode
                  the Latin-1 range and substitute elsewhere *)
               if code < 256 then Buffer.add_char buf (Char.chr code)
               else Buffer.add_char buf '?'
             | _ -> fail "bad escape");
          go ()
        | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some v -> Float v
      | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek_is ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek_is ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek_is '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek_is ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos = n then Some v else None
  | exception Bad _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
