(** Minimal JSON values: enough to write the JSONL trace format and
    the machine-readable reports, and to parse them back in tests and
    tooling.  No third-party dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Non-finite floats become [null]
    (JSON has no representation for them). *)

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val parse : string -> t option
(** Parse one complete JSON value; [None] on any syntax error or
    trailing garbage.  Covers standard JSON; [\uXXXX] escapes outside
    the Latin-1 range decode to ['?']. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up a field; [None] on non-objects. *)
