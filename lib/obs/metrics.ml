type counter = { c_value : int Atomic.t }

type gauge = { g_value : float Atomic.t }

type histogram = {
  bounds : float array;  (* inclusive upper bounds, strictly increasing *)
  bucket_counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  h_lock : Mutex.t;
}

type entry = C of counter | G of gauge | H of histogram

type registry = { lock : Mutex.t; table : (string, entry) Hashtbl.t }

let create () = { lock = Mutex.create (); table = Hashtbl.create 32 }

let default = create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter ?(registry = default) name =
  with_lock registry.lock (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some (C c) -> c
      | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
      | None ->
        let c = { c_value = Atomic.make 0 } in
        Hashtbl.add registry.table name (C c);
        c)

let incr c = ignore (Atomic.fetch_and_add c.c_value 1)

let add c n = ignore (Atomic.fetch_and_add c.c_value n)

let counter_value c = Atomic.get c.c_value

let gauge ?(registry = default) name =
  with_lock registry.lock (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some (G g) -> g
      | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)
      | None ->
        let g = { g_value = Atomic.make 0.0 } in
        Hashtbl.add registry.table name (G g);
        g)

let set g v = Atomic.set g.g_value v

let gauge_value g = Atomic.get g.g_value

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0; 100.0 |]

let histogram ?(registry = default) ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: empty buckets";
  Array.iteri
    (fun i b -> if i > 0 && buckets.(i - 1) >= b then invalid_arg "Metrics.histogram: buckets must increase")
    buckets;
  with_lock registry.lock (fun () ->
      match Hashtbl.find_opt registry.table name with
      | Some (H h) -> h
      | Some _ -> invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)
      | None ->
        let h =
          {
            bounds = Array.copy buckets;
            bucket_counts = Array.make (Array.length buckets + 1) 0;
            count = 0;
            sum = 0.0;
            min_v = infinity;
            max_v = neg_infinity;
            h_lock = Mutex.create ();
          }
        in
        Hashtbl.add registry.table name (H h);
        h)

let bucket_index h v =
  let n = Array.length h.bounds in
  let rec find i = if i >= n then n else if v <= h.bounds.(i) then i else find (i + 1) in
  find 0

let observe h v =
  with_lock h.h_lock (fun () ->
      h.bucket_counts.(bucket_index h v) <- h.bucket_counts.(bucket_index h v) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v < h.min_v then h.min_v <- v;
      if v > h.max_v then h.max_v <- v)

let histogram_count h = with_lock h.h_lock (fun () -> h.count)

let histogram_sum h = with_lock h.h_lock (fun () -> h.sum)

let histogram_mean h =
  with_lock h.h_lock (fun () ->
      if h.count = 0 then 0.0 else h.sum /. float_of_int h.count)

let histogram_min h = with_lock h.h_lock (fun () -> if h.count = 0 then 0.0 else h.min_v)

let histogram_max h = with_lock h.h_lock (fun () -> if h.count = 0 then 0.0 else h.max_v)

let histogram_buckets h =
  with_lock h.h_lock (fun () ->
      Array.to_list
        (Array.mapi
           (fun i c ->
             let bound = if i < Array.length h.bounds then h.bounds.(i) else infinity in
             (bound, c))
           h.bucket_counts))

let reset ?(registry = default) () =
  with_lock registry.lock (fun () -> Hashtbl.reset registry.table)

let sorted_entries reg =
  with_lock reg.lock (fun () ->
      Hashtbl.fold (fun name e acc -> (name, e) :: acc) reg.table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let report_text ?(registry = default) () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, e) ->
      match e with
      | C c -> Buffer.add_string buf (Printf.sprintf "counter   %-32s %d\n" name (counter_value c))
      | G g ->
        Buffer.add_string buf (Printf.sprintf "gauge     %-32s %g\n" name (gauge_value g))
      | H h ->
        Buffer.add_string buf
          (Printf.sprintf "histogram %-32s count=%d sum=%g min=%g mean=%g max=%g\n" name
             (histogram_count h) (histogram_sum h) (histogram_min h) (histogram_mean h)
             (histogram_max h)))
    (sorted_entries registry);
  Buffer.contents buf

let report_json ?(registry = default) () =
  let metric (name, e) =
    match e with
    | C c ->
      Jsonx.Obj
        [ ("name", Jsonx.Str name); ("kind", Jsonx.Str "counter"); ("value", Jsonx.Int (counter_value c)) ]
    | G g ->
      Jsonx.Obj
        [ ("name", Jsonx.Str name); ("kind", Jsonx.Str "gauge"); ("value", Jsonx.Float (gauge_value g)) ]
    | H h ->
      Jsonx.Obj
        [
          ("name", Jsonx.Str name);
          ("kind", Jsonx.Str "histogram");
          ("count", Jsonx.Int (histogram_count h));
          ("sum", Jsonx.Float (histogram_sum h));
          ("min", Jsonx.Float (histogram_min h));
          ("mean", Jsonx.Float (histogram_mean h));
          ("max", Jsonx.Float (histogram_max h));
          ( "buckets",
            Jsonx.List
              (List.map
                 (fun (bound, c) ->
                   Jsonx.Obj [ ("le", Jsonx.Float bound); ("count", Jsonx.Int c) ])
                 (histogram_buckets h)) );
        ]
  in
  Jsonx.to_string (Jsonx.List (List.map metric (sorted_entries registry)))
