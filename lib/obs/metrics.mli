(** Named metrics — counters, gauges and histograms in a registry.

    Instruments are get-or-create by name: calling {!counter} twice
    with the same name (and registry) returns the same instrument, so
    library code can look its metrics up at use sites without plumbing
    handles around.  All updates are thread-safe; counters and gauges
    are lock-free ([Atomic]), histograms take a per-instrument mutex. *)

type registry

val create : unit -> registry

val default : registry
(** The process-wide registry used when [?registry] is omitted — the
    one reported by the binaries' [--metrics] flag. *)

type counter

type gauge

type histogram

val counter : ?registry:registry -> string -> counter
(** Get or create.  @raise Invalid_argument if [name] already names a
    different kind of instrument. *)

val gauge : ?registry:registry -> string -> gauge

val histogram : ?registry:registry -> ?buckets:float array -> string -> histogram
(** [buckets] are inclusive upper bounds, strictly increasing (an
    overflow bucket is added implicitly); ignored if the histogram
    already exists.  Defaults to {!default_buckets}. *)

val default_buckets : float array
(** Log-spaced seconds: [1e-6 .. 100.0]. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val histogram_count : histogram -> int

val histogram_sum : histogram -> float

val histogram_mean : histogram -> float
(** [0.] when empty. *)

val histogram_min : histogram -> float
(** [0.] when empty. *)

val histogram_max : histogram -> float
(** [0.] when empty. *)

val histogram_buckets : histogram -> (float * int) list
(** [(upper_bound, count)] pairs in bound order; the final pair has
    bound [infinity] (the overflow bucket). *)

val reset : ?registry:registry -> unit -> unit
(** Drop every instrument (handles held by callers keep working but
    are no longer reported). *)

val report_text : ?registry:registry -> unit -> string
(** One aligned line per instrument, name-sorted. *)

val report_json : ?registry:registry -> unit -> string
(** A JSON array of metric objects, name-sorted. *)
