type value = Bool of bool | Int of int | Float of float | Str of string

type kind = Enter | Exit | Instant

type event = {
  ts_ns : int;
  kind : kind;
  name : string;
  id : int;
  parent : int;
  fields : (string * value) list;
}

type active = {
  write : event -> unit;
  close_fn : unit -> unit;
  next : int Atomic.t;
}

type t = Null | Active of active

let null = Null

let enabled = function Null -> false | Active _ -> true

let next_id = function Null -> -1 | Active a -> Atomic.fetch_and_add a.next 1

let emit t ev = match t with Null -> () | Active a -> a.write ev

let close = function Null -> () | Active a -> a.close_fn ()

let kind_to_string = function Enter -> "enter" | Exit -> "exit" | Instant -> "event"

let json_of_value = function
  | Bool b -> Jsonx.Bool b
  | Int i -> Jsonx.Int i
  | Float v -> Jsonx.Float v
  | Str s -> Jsonx.Str s

let json_of_event ev =
  Jsonx.Obj
    [
      ("ts", Jsonx.Int ev.ts_ns);
      ("kind", Jsonx.Str (kind_to_string ev.kind));
      ("name", Jsonx.Str ev.name);
      ("id", Jsonx.Int ev.id);
      ("parent", if ev.parent < 0 then Jsonx.Null else Jsonx.Int ev.parent);
      ("fields", Jsonx.Obj (List.map (fun (k, v) -> (k, json_of_value v)) ev.fields));
    ]

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Events may arrive concurrently from Par domains; one mutex
   serializes lines so the JSONL stays well-formed. *)
let jsonl_writer oc =
  let lock = Mutex.create () in
  fun ev ->
    with_lock lock (fun () ->
        output_string oc (Jsonx.to_string (json_of_event ev));
        output_char oc '\n')

let jsonl_channel oc =
  Active { write = jsonl_writer oc; close_fn = (fun () -> flush oc); next = Atomic.make 0 }

let jsonl_file path =
  let oc = open_out path in
  Active
    {
      write = jsonl_writer oc;
      close_fn =
        (fun () ->
          flush oc;
          close_out oc);
      next = Atomic.make 0;
    }

let discard () =
  Active { write = ignore; close_fn = ignore; next = Atomic.make 0 }

let memory () =
  let lock = Mutex.create () in
  let events = ref [] in
  let sink =
    Active
      {
        write = (fun ev -> with_lock lock (fun () -> events := ev :: !events));
        close_fn = ignore;
        next = Atomic.make 0;
      }
  in
  (sink, fun () -> with_lock lock (fun () -> List.rev !events))
