(** Pluggable event sinks — the only legal way for library code to
    report progress or telemetry.

    Libraries never print (the [no-print-in-lib] lint rule); instead
    they accept a sink (default {!null}) and emit structured events
    through it.  The null sink is a constant: checking {!enabled}
    before building an event makes disabled instrumentation free of
    clock reads and allocation. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type kind =
  | Enter  (** a span opened *)
  | Exit  (** a span closed *)
  | Instant  (** a point event *)

type event = {
  ts_ns : int;  (** {!Clock.now_ns} at emission *)
  kind : kind;
  name : string;  (** dotted event name, e.g. ["prune.round"] *)
  id : int;  (** span id; [-1] for instants *)
  parent : int;  (** enclosing span id; [-1] for none *)
  fields : (string * value) list;
}

type t

val null : t
(** Drops everything; {!enabled} is [false].  The default for every
    instrumented API. *)

val enabled : t -> bool
(** [false] only for {!null}.  Instrumentation must guard event
    construction (and clock reads) with this. *)

val next_id : t -> int
(** Fresh span id (process-unique per sink); [-1] on the null sink. *)

val emit : t -> event -> unit
(** Deliver one event.  Thread-safe on every built-in sink. *)

val close : t -> unit
(** Flush and release sink resources (closes the channel of
    {!jsonl_file}).  No-op on {!null}, {!discard} and {!memory}. *)

val jsonl_channel : out_channel -> t
(** One JSON object per line on the given channel; {!close} flushes
    but does not close the caller's channel. *)

val jsonl_file : string -> t
(** Opens (truncates) [path] and writes JSONL; {!close} closes it.
    Line schema:
    [{"ts":<ns>,"kind":"enter"|"exit"|"event","name":...,"id":...,
      "parent":<id or null>,"fields":{...}}] *)

val discard : unit -> t
(** An enabled sink that writes nothing: turns instrumentation (and
    the metrics it records) on without producing a trace — used by the
    [--metrics]-without-[--trace] path in the binaries. *)

val memory : unit -> t * (unit -> event list)
(** Collecting sink for tests: returns the sink and a function
    yielding the events emitted so far, in order. *)

val json_of_event : event -> Jsonx.t
(** The JSONL line representation (used by the file sink and tests). *)

val kind_to_string : kind -> string
