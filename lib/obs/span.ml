type t = { sink : Sink.t; id : int; parent : int; name : string }

let null = { sink = Sink.null; id = -1; parent = -1; name = "" }

(* Nesting is tracked per domain: each domain sees its own stack of
   open span ids, so spans opened inside Par workers nest correctly
   without cross-domain interference. *)
let stack_key = Domain.DLS.new_key (fun () -> ref [])

let current_parent () =
  match !(Domain.DLS.get stack_key) with [] -> -1 | id :: _ -> id

let enter ?(fields = []) sink name =
  if not (Sink.enabled sink) then null
  else begin
    let id = Sink.next_id sink in
    let parent = current_parent () in
    let stack = Domain.DLS.get stack_key in
    stack := id :: !stack;
    Sink.emit sink
      { Sink.ts_ns = Clock.now_ns (); kind = Sink.Enter; name; id; parent; fields };
    { sink; id; parent; name }
  end

let exit ?(fields = []) t =
  if Sink.enabled t.sink then begin
    let stack = Domain.DLS.get stack_key in
    (match !stack with
    | id :: rest when id = t.id -> stack := rest
    | _ -> ());
    Sink.emit t.sink
      {
        Sink.ts_ns = Clock.now_ns ();
        kind = Sink.Exit;
        name = t.name;
        id = t.id;
        parent = t.parent;
        fields;
      }
  end

let instant ?(fields = []) sink name =
  if Sink.enabled sink then
    Sink.emit sink
      {
        Sink.ts_ns = Clock.now_ns ();
        kind = Sink.Instant;
        name;
        id = -1;
        parent = current_parent ();
        fields;
      }

let wrap ?fields sink name f =
  let sp = enter ?fields sink name in
  Fun.protect ~finally:(fun () -> exit sp) f
