(** Nestable tracing spans over a {!Sink}.

    A span is an [enter]/[exit] event pair sharing an id; nesting is
    implicit — the innermost open span on the current domain becomes
    the parent of whatever is opened or emitted next.  On the null
    sink every operation is a no-op that reads no clock and allocates
    nothing (callers should still guard field-list construction with
    {!Sink.enabled}). *)

type t

val null : t
(** The span returned by {!enter} on a disabled sink; {!exit} on it is
    a no-op. *)

val enter : ?fields:(string * Sink.value) list -> Sink.t -> string -> t
(** Open a span and emit its [Enter] event.  The span becomes the
    current parent on this domain until {!exit}. *)

val exit : ?fields:(string * Sink.value) list -> t -> unit
(** Close the span and emit its [Exit] event; [fields] carry results
    (e.g. iteration counts) known only at the end. *)

val instant : ?fields:(string * Sink.value) list -> Sink.t -> string -> unit
(** Emit a point event parented to the innermost open span. *)

val wrap : ?fields:(string * Sink.value) list -> Sink.t -> string -> (unit -> 'a) -> 'a
(** [wrap sink name f] runs [f] inside a span, closing it on any exit
    (including exceptions). *)
