open Fn_graph

type t = {
  n : int;
  radius : int;
  threshold : float;
  max_dirty_frac : float; (* shed batches dirtying more than this fraction of n *)
  bfs : Delta_bfs.t;
  dirty : Dirty.t;
  alive : Bitset.t; (* owned copy of the live mask *)
  mutable alive_count : int;
  qual : Bitset.t; (* alive nodes whose ball meets the ratio bound *)
  s_of : int array; (* ball size per alive node, vs the current mask *)
  mutable cached : Faultnet.Prune.result option;
  mutable deferred : bool; (* candidate state is stale; [cached] serves reads *)
  mutable shed : int; (* batches applied without refreshing candidates *)
  mutable recomputed : int; (* candidate surveys since creation *)
}

let qualifies t s b = float_of_int b <= t.threshold *. float_of_int s

(* Refresh one node's candidate state against the current mask: a dead
   node holds no candidate; an alive node's ball is re-surveyed and
   its ratio bound re-tested.  The size-vs-half condition is NOT part
   of [qual] — it depends on the global alive count, so the cascade
   tests it at pick time against the evolving total. *)
let recompute_candidate t v =
  if Bitset.mem t.alive v then begin
    t.recomputed <- t.recomputed + 1;
    let s, b = Delta_bfs.survey t.bfs ~alive:t.alive ~radius:t.radius v in
    t.s_of.(v) <- s;
    Bitset.set t.qual v (qualifies t s b)
  end
  else Bitset.remove t.qual v

let create ?(radius = 2) ?(max_dirty_frac = 1.0) view ~alive ~alpha ~epsilon =
  if alpha <= 0.0 then invalid_arg "Cert.create: alpha must be positive";
  if epsilon <= 0.0 || epsilon >= 1.0 then invalid_arg "Cert.create: need 0 < epsilon < 1";
  if radius < 1 then invalid_arg "Cert.create: radius must be >= 1";
  if max_dirty_frac <= 0.0 || max_dirty_frac > 1.0 then
    invalid_arg "Cert.create: need 0 < max_dirty_frac <= 1";
  let n = Gview.num_nodes view in
  if Bitset.universe alive <> n then invalid_arg "Cert.create: universe mismatch";
  let t =
    {
      n;
      radius;
      threshold = alpha *. epsilon;
      max_dirty_frac;
      bfs = Delta_bfs.create view;
      dirty = Dirty.create n;
      alive = Bitset.copy alive;
      alive_count = Bitset.cardinal alive;
      qual = Bitset.create n;
      s_of = Array.make (max 1 n) 0;
      cached = None;
      deferred = false;
      shed = 0;
      recomputed = 0;
    }
  in
  Bitset.iter (fun v -> recompute_candidate t v) t.alive;
  t

let universe t = t.n
let radius t = t.radius
let threshold t = t.threshold
let alive t = Bitset.copy t.alive
let alive_count t = t.alive_count
let recomputed t = t.recomputed
let dirty_peak t = Dirty.peak t.dirty
let last_dirty t = Dirty.count t.dirty

(* The Prune cascade, run lazily over the maintained candidate state.
   Local copies [a]/[w] of alive/qual evolve as balls are culled; ball
   sizes updated mid-cascade live in a hash overlay rather than an
   O(n) array copy.  By induction each round picks exactly the set the
   ascending-scan finder would pick from scratch on [a], so the result
   is field-for-field the from-scratch [scratch] run. *)
let cascade t =
  let a = Bitset.copy t.alive in
  let w = Bitset.copy t.qual in
  let total = ref t.alive_count in
  let overlay = Hashtbl.create 64 in
  let s_at v = match Hashtbl.find_opt overlay v with Some s -> s | None -> t.s_of.(v) in
  let recompute_local v =
    if Bitset.mem a v then begin
      t.recomputed <- t.recomputed + 1;
      let s, b = Delta_bfs.survey t.bfs ~alive:a ~radius:t.radius v in
      Hashtbl.replace overlay v s;
      Bitset.set w v (qualifies t s b)
    end
    else Bitset.remove w v
  in
  let rec pick from =
    match Bitset.next_member w from with
    | None -> None
    | Some v -> if 2 * s_at v <= !total then Some v else pick (v + 1)
  in
  let culled = ref [] and iterations = ref 0 in
  let running = ref true in
  while !running do
    if !total < 2 then running := false
    else
      match pick 0 with
      | None -> running := false
      | Some v ->
        incr iterations;
        let ball = Bitset.create t.n in
        let s, b = Delta_bfs.survey t.bfs ~alive:a ~into:ball ~radius:t.radius v in
        culled := { Faultnet.Prune.set = ball; size = s; boundary = b } :: !culled;
        Bitset.diff_into a ball;
        Bitset.diff_into w ball;
        total := !total - s;
        let sources = Bitset.fold (fun u acc -> u :: acc) ball [] in
        (* collect first, recompute after: the region traversal and the
           per-candidate surveys share [t.bfs]'s scratch arrays, so the
           callback must not re-enter [survey] mid-traversal *)
        let touched = ref [] in
        Delta_bfs.region t.bfs ~radius:(t.radius + 1) ~sources (fun u ->
            touched := u :: !touched);
        List.iter recompute_local !touched
  done;
  {
    Faultnet.Prune.kept = a;
    culled = List.rev !culled;
    iterations = !iterations;
    threshold = t.threshold;
  }

let result t =
  match t.cached with
  | Some r -> r
  | None ->
    let r = cascade t in
    t.cached <- Some r;
    r

let set_result t r = t.cached <- Some r
let degraded t = t.deferred
let shed t = t.shed

(* Rebuild every candidate against the current mask and leave deferred
   mode: the "scheduled full recompute" that pays off the batches shed
   while overloaded, and the quarantine rebuild after an audit
   divergence.  O(n · ball), like creation. *)
let refresh t =
  Bitset.clear t.qual;
  t.cached <- None;
  t.deferred <- false;
  Bitset.iter (fun v -> recompute_candidate t v) t.alive

let flip t events =
  List.iter
    (fun ev ->
      match ev with
      | Fn_faults.Churn.Fault v ->
        Bitset.remove t.alive v;
        t.alive_count <- t.alive_count - 1
      | Fn_faults.Churn.Repair v ->
        Bitset.add t.alive v;
        t.alive_count <- t.alive_count + 1)
    events

(* Apply a normalized churn batch.  The dirty region — every node
   within unrestricted distance radius + 1 of a change (the locality
   lemma: nothing further away can have moved) — is measured {e
   before} the aliveness flips, because it is also the overload
   signal: a batch dirtying more than [max_dirty_frac] of the graph is
   {e shed} rather than absorbed.  Shedding pins the pre-batch cascade
   as the stale answer reads will serve (forced here, so the served
   value is a pure function of the accepted batch history, never of
   query timing), flips aliveness, and defers all candidate work; the
   full rebuild runs at the next batch that is back under the
   threshold (or at an audit).  Un-shed batches refresh exactly the
   dirty region, as before. *)
let apply t events =
  match events with
  | [] -> ()
  | _ :: _ ->
    let changed = List.map Fn_faults.Churn.event_node events in
    Dirty.next_generation t.dirty;
    Delta_bfs.region t.bfs ~radius:(t.radius + 1) ~sources:changed (fun v ->
        Dirty.mark t.dirty v);
    let overload =
      float_of_int (Dirty.count t.dirty) > t.max_dirty_frac *. float_of_int t.n
    in
    if overload then begin
      if (not t.deferred) && Option.is_none t.cached then t.cached <- Some (cascade t);
      flip t events;
      t.deferred <- true;
      t.shed <- t.shed + 1
    end
    else if t.deferred then begin
      (* load is back under the threshold: catch up in one rebuild
         that also absorbs this batch's changes *)
      flip t events;
      refresh t
    end
    else begin
      flip t events;
      Dirty.iter t.dirty (fun v -> recompute_candidate t v);
      t.cached <- None
    end

(* The from-scratch reference: Prune(ε) with a finder that scans alive
   nodes in ascending id order and returns the first radius-bounded
   ball meeting both the ratio bound and the half-size condition.
   [result] must equal this on the same mask — the differential tests
   drive exactly that comparison. *)
let scratch_finder ?(radius = 2) view =
  let bfs = Delta_bfs.create view in
  let n = Gview.num_nodes view in
  fun ~alive (_ : Gview.t) ~threshold ->
    let total = Bitset.cardinal alive in
    let rec scan from =
      match Bitset.next_member alive from with
      | None -> None
      | Some v ->
        let s, b = Delta_bfs.survey bfs ~alive ~radius v in
        if float_of_int b <= threshold *. float_of_int s && 2 * s <= total then begin
          let ball = Bitset.create n in
          let _ = Delta_bfs.survey bfs ~alive ~into:ball ~radius v in
          Some ball
        end
        else scan (v + 1)
    in
    scan 0

let scratch ?radius ?obs view ~alive ~alpha ~epsilon =
  Faultnet.Prune.run_v ?obs ~finder:(scratch_finder ?radius view) view ~alive ~alpha
    ~epsilon
