open Fn_graph

(** Incremental Prune survivor certificates.

    Maintains, under batched churn, the state needed to answer "what
    does Prune(ε) keep?" without re-running it from scratch: for every
    alive node [v] a radius-r ball survey — [s = |B_r(v)|] alive nodes
    within distance r in the alive subgraph, [b = |Γ(B_r(v))|] its
    node boundary — and the bit "does [v]'s ball meet the ratio bound
    [b <= α·ε·s]".  A churn batch only re-surveys nodes within
    unrestricted distance r + 1 of a change (the locality lemma:
    a ball survey reads aliveness only that far from its center), so
    steady-state cost per event is proportional to the dirty region,
    not to n.

    Culling is deferred: {!result} runs the Prune cascade lazily over
    the maintained candidates — demoting survivors swallowed by a
    culled ball, re-promoting none (culls only shrink the mask) — and
    caches it until the next batch.  The defining property, enforced
    by the differential tests: after {e any} event sequence, {!result}
    equals {!scratch} on the same mask, field for field.

    The finder both paths share scans alive nodes in ascending id
    order and culls the first qualifying ball, so the reference is
    deterministic and rng-free. *)

type t

val create :
  ?radius:int ->
  ?max_dirty_frac:float ->
  Gview.t ->
  alive:Bitset.t ->
  alpha:float ->
  epsilon:float ->
  t
(** Full initial survey: O(n · ball).  [radius] defaults to 2 (must be
    >= 1); threshold is [alpha *. epsilon] exactly as in
    {!Faultnet.Prune}.  [alive] is copied — the certificate owns its
    mask and callers mutate theirs freely.

    [max_dirty_frac] (default 1.0 = never) is the overload-shedding
    threshold: a batch whose dirty region exceeds this fraction of the
    universe is applied to the mask but its candidate refresh is
    deferred — {!result} then serves the pinned pre-overload cascade
    ({!degraded} is true) until the next under-threshold batch or
    {!refresh} performs the full rebuild.  The deferred state is a
    pure function of the accepted batch history, so replaying the same
    batches reproduces the same (stale) answers bit for bit. *)

val universe : t -> int
val radius : t -> int
val threshold : t -> float

val alive : t -> Bitset.t
(** Copy of the current mask. *)

val alive_count : t -> int

val recomputed : t -> int
(** Ball surveys performed since creation (initial survey included) —
    the work counter behind the engine's stats. *)

val dirty_peak : t -> int
(** Largest dirty region any single batch produced. *)

val last_dirty : t -> int
(** Dirty-region size of the most recent batch. *)

val apply : t -> Event.t list -> unit
(** Apply a normalized batch (see
    {!Fn_faults.Churn.normalize_batch}; this module trusts its
    caller): flip aliveness, then either re-survey the dirty region or
    — when the region exceeds [max_dirty_frac] — shed the refresh and
    enter deferred mode (see {!create}).  An empty batch is a no-op. *)

val result : t -> Faultnet.Prune.result
(** The Prune cascade over the current mask, cached until the next
    {!apply} — except in deferred mode, where it is the pinned
    pre-overload cascade (stale by design; check {!degraded}).  Treat
    as read-only — the cache shares structure across calls. *)

val set_result : t -> Faultnet.Prune.result -> unit
(** Replace the cached cascade — the audit's reconciliation hook. *)

val degraded : t -> bool
(** In deferred mode: {!result} serves a stale pinned cascade. *)

val shed : t -> int
(** Batches applied with their candidate refresh deferred. *)

val refresh : t -> unit
(** Rebuild every candidate against the current mask and leave
    deferred mode: the scheduled full recompute behind overload
    shedding and the quarantine rebuild.  O(n · ball), like
    {!create}. *)

val scratch_finder : ?radius:int -> Gview.t -> Faultnet.Low_expansion.t_v
(** The ascending-scan radius-bounded ball finder, as a Prune oracle. *)

val scratch :
  ?radius:int ->
  ?obs:Fn_obs.Sink.t ->
  Gview.t ->
  alive:Bitset.t ->
  alpha:float ->
  epsilon:float ->
  Faultnet.Prune.result
(** From-scratch reference: [Prune.run_v] with {!scratch_finder}.
    {!result} must equal this on the same mask. *)
