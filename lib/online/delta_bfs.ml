open Fn_graph

type t = {
  view : Gview.t;
  n : int;
  dist : int array;
  stamp : int array;
  queue : int array;
  mutable gen : int;
}

let create view =
  let n = Gview.num_nodes view in
  {
    view;
    n;
    dist = Array.make (max 1 n) 0;
    stamp = Array.make (max 1 n) 0;
    queue = Array.make (max 1 n) 0;
    gen = 0;
  }

let universe t = t.n

(* Alive-restricted BFS from [src], bounded at depth radius + 1: nodes
   at distance <= radius form the ball (counted in [s], optionally
   collected into [into]); alive nodes first reached at exactly
   radius + 1 are the ball's node boundary (counted in [b]) and never
   expanded, so the traversal touches only the ball plus one ring. *)
let survey t ~alive ?into ~radius src =
  if src < 0 || src >= t.n then invalid_arg "Delta_bfs.survey: source out of range";
  if radius < 0 then invalid_arg "Delta_bfs.survey: negative radius";
  if not (Bitset.mem alive src) then invalid_arg "Delta_bfs.survey: source not alive";
  t.gen <- t.gen + 1;
  let gen = t.gen in
  let dist = t.dist and stamp = t.stamp and queue = t.queue in
  let head = ref 0 and tail = ref 1 in
  let s = ref 1 and b = ref 0 in
  stamp.(src) <- gen;
  dist.(src) <- 0;
  queue.(0) <- src;
  (match into with Some set -> Bitset.add set src | None -> ());
  let visit du v =
    if stamp.(v) <> gen && Bitset.mem alive v then begin
      stamp.(v) <- gen;
      let d = du + 1 in
      if d <= radius then begin
        dist.(v) <- d;
        incr s;
        (match into with Some set -> Bitset.add set v | None -> ());
        queue.(!tail) <- v;
        incr tail
      end
      else incr b
    end
  in
  (match t.view with
  | Gview.Csr g ->
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      Graph.iter_neighbors g u (fun v -> visit du v)
    done
  | Gview.Implicit i ->
    let iter = i.Gview.iter_neighbors in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      iter u (fun v -> visit du v)
    done);
  (!s, !b)

(* Unrestricted multi-source BFS bounded at depth [radius], calling
   [f] on every node reached (sources included).  Used to stamp out
   the dirty region around a churn batch: a radius-r certificate
   candidate depends only on aliveness within unrestricted distance
   r + 1 of its center, so marking N_{r+1}(changed) covers every
   candidate whose survey could have moved. *)
let region t ~radius ~sources f =
  if radius < 0 then invalid_arg "Delta_bfs.region: negative radius";
  t.gen <- t.gen + 1;
  let gen = t.gen in
  let dist = t.dist and stamp = t.stamp and queue = t.queue in
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun v ->
      if v < 0 || v >= t.n then invalid_arg "Delta_bfs.region: source out of range";
      if stamp.(v) <> gen then begin
        stamp.(v) <- gen;
        dist.(v) <- 0;
        queue.(!tail) <- v;
        incr tail;
        f v
      end)
    sources;
  let visit du v =
    if stamp.(v) <> gen then begin
      stamp.(v) <- gen;
      dist.(v) <- du + 1;
      queue.(!tail) <- v;
      incr tail;
      f v
    end
  in
  match t.view with
  | Gview.Csr g ->
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      if du < radius then Graph.iter_neighbors g u (fun v -> visit du v)
    done
  | Gview.Implicit i ->
    let iter = i.Gview.iter_neighbors in
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      let du = dist.(u) in
      if du < radius then iter u (fun v -> visit du v)
    done
