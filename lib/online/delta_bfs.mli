open Fn_graph

(** Bounded-radius BFS with generation-stamped scratch.

    The online engine runs thousands of small local traversals per
    churn batch.  {!Bfs.ball_grower_v} allocates O(n) per creation,
    which would dominate at that call rate, so this module keeps one
    O(n) scratch (distance, stamp, queue) per view and resets it by
    bumping a generation counter — each traversal costs only the
    nodes it actually touches.  Works on both {!Gview.t} arms; the
    view is matched once per traversal, outside the loop. *)

type t

val create : Gview.t -> t
(** One-time O(n) allocation against a fixed view. *)

val universe : t -> int

val survey : t -> alive:Bitset.t -> ?into:Bitset.t -> radius:int -> int -> int * int
(** [survey t ~alive ~radius v] is [(s, b)] for the alive-restricted
    ball of radius [radius] around [v]: [s] counts alive nodes at
    distance <= [radius] from [v] (members of the ball, [v] included),
    [b] counts alive nodes at distance exactly [radius + 1] — the
    ball's node boundary within the alive subgraph.  [into], when
    given, receives the ball's members ([Bitset.add] only; pass a
    cleared set).  The traversal never expands past the boundary ring,
    so cost is O(ball + ring), independent of n.  [v] must be alive. *)

val region : t -> radius:int -> sources:int list -> (int -> unit) -> unit
(** [region t ~radius ~sources f] calls [f] exactly once on every node
    within {e unrestricted} graph distance [radius] of some source
    (sources included, deduplicated).  This is the dirty-region stamp:
    a radius-r certificate depends only on aliveness within distance
    r + 1 of its center, so re-surveying [region ~radius:(r + 1)]
    around a batch's changed nodes restores every invalidated
    candidate. *)
