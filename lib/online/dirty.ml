type t = {
  stamp : int array;
  mutable gen : int;
  mutable members : int list; (* reverse mark order *)
  mutable count : int;
  mutable peak : int;
}

let create n =
  if n < 0 then invalid_arg "Dirty.create: negative universe";
  (* gen starts above the zeroed stamps so a fresh tracker is clean *)
  { stamp = Array.make (max 1 n) 0; gen = 1; members = []; count = 0; peak = 0 }

let universe t = Array.length t.stamp

let next_generation t =
  t.gen <- t.gen + 1;
  t.members <- [];
  t.count <- 0

let mark t v =
  if v < 0 || v >= Array.length t.stamp then invalid_arg "Dirty.mark: node out of range";
  if t.stamp.(v) <> t.gen then begin
    t.stamp.(v) <- t.gen;
    t.members <- v :: t.members;
    t.count <- t.count + 1;
    if t.count > t.peak then t.peak <- t.count
  end

let mem t v = v >= 0 && v < Array.length t.stamp && t.stamp.(v) = t.gen
let count t = t.count
let peak t = t.peak
let iter t f = List.iter f t.members
