(** Generation-stamped dirty frontier.

    Tracks the set of nodes whose cached certificate state must be
    refreshed after a churn batch.  Clearing is O(1) — bump the
    generation — so a long-lived engine pays per batch only for the
    nodes it actually dirties, never an O(n) sweep.  Membership is a
    stamp comparison; marks are deduplicated within a generation. *)

type t

val create : int -> t
(** [create n] tracks nodes in universe [0 .. n-1], all clean. *)

val universe : t -> int

val next_generation : t -> unit
(** Forget every mark, O(1). *)

val mark : t -> int -> unit
val mem : t -> int -> bool

val count : t -> int
(** Marks in the current generation. *)

val peak : t -> int
(** Largest single-generation mark count seen — the dirty-region high
    water mark the engine reports in stats. *)

val iter : t -> (int -> unit) -> unit
(** Visit the current generation's marks.  Order is deterministic
    (reverse mark order) but not sorted; callers needing a canonical
    order must sort. *)
