open Fn_graph

type config = {
  seed : int;
  radius : int;
  alpha : float;
  epsilon : float;
  mode : Warm.mode;
  audit_every : int;
  max_dirty_frac : float;
  postmortem : string option;
  domains : int option;
  obs : Fn_obs.Sink.t;
}

let default_config =
  {
    seed = 0;
    radius = 2;
    alpha = 0.5;
    epsilon = 0.5;
    mode = Warm.Exact;
    audit_every = 0;
    max_dirty_frac = 1.0;
    postmortem = None;
    domains = None;
    obs = Fn_obs.Sink.null;
  }

type audit_report = {
  kept_equal : bool;
  culled_equal : bool;
  iterations_equal : bool;
  alpha_equal : bool;
  faults : int;
}

type stats = {
  events : int;
  batches : int;
  rejected : int;
  audits : int;
  divergences : int;
  surveys : int;
  dirty_peak : int;
  alpha_computes : int;
  warm_hits : int;
  cold_falls : int;
  shed_batches : int;
  degraded_answers : int;
  quarantines : int;
}

type t = {
  cfg : config;
  view : Gview.t;
  n : int;
  cert : Cert.t;
  warm : Warm.t;
  faulty : Bitset.t;
  mutable events : int;
  mutable batches : int;
  mutable rejected : int;
  mutable audits : int;
  mutable divergences : int;
  mutable degraded_answers : int;
  mutable quarantines : int;
}

let create ?(cfg = default_config) view =
  let n = Gview.num_nodes view in
  let alive = Bitset.create_full n in
  {
    cfg;
    view;
    n;
    cert =
      Cert.create ~radius:cfg.radius ~max_dirty_frac:cfg.max_dirty_frac view ~alive
        ~alpha:cfg.alpha ~epsilon:cfg.epsilon;
    warm = Warm.create ~mode:cfg.mode ?domains:cfg.domains cfg.seed;
    faulty = Bitset.create n;
    events = 0;
    batches = 0;
    rejected = 0;
    audits = 0;
    divergences = 0;
    degraded_answers = 0;
    quarantines = 0;
  }

let config t = t.cfg
let universe t = t.n
let view t = t.view
let alive_mask t = Cert.alive t.cert
let alive_count t = Cert.alive_count t.cert
let faulty_mask t = Bitset.copy t.faulty

let is_alive t v =
  if v < 0 || v >= t.n then invalid_arg "Engine.is_alive: node out of range";
  not (Bitset.mem t.faulty v)

let result t = Cert.result t.cert
let degraded t = Cert.degraded t.cert
let quarantines t = t.quarantines

(* A read served while shedding is a stale-but-stamped answer; the
   server appends the [degraded] stamp, here it is only counted. *)
let note_degraded t =
  if Cert.degraded t.cert then begin
    t.degraded_answers <- t.degraded_answers + 1;
    if Fn_obs.Sink.enabled t.cfg.obs then
      Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.degraded_answers")
  end

let alpha t =
  note_degraded t;
  Warm.query t.warm t.view ~kept:(result t).Faultnet.Prune.kept

let in_certificate t v =
  if v < 0 || v >= t.n then invalid_arg "Engine.in_certificate: node out of range";
  note_degraded t;
  Bitset.mem (result t).Faultnet.Prune.kept v

let recompute t =
  Cert.refresh t.cert;
  if Fn_obs.Sink.enabled t.cfg.obs then
    Fn_obs.Metrics.set (Fn_obs.Metrics.gauge "online.degraded") 0.0

let culled_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Faultnet.Prune.culled) (y : Faultnet.Prune.culled) ->
         x.size = y.size && x.boundary = y.boundary && Bitset.equal x.set y.set)
       a b

(* Post-mortem of a divergent audit: the incremental state as the
   audit caught it, frozen to one atomic snapshot file before the
   scratch truth overwrites it.  The filename is a pure function of
   the engine's counters (no timestamps — two runs of the same batch
   history quarantine into the same file), and the write is
   best-effort: a full disk or missing directory must not take down
   the service on top of the divergence it is reporting. *)
let postmortem_write t ~inc ~scr ~a_inc ~a_scr =
  match t.cfg.postmortem with
  | None -> ()
  | Some dir ->
    let path =
      Filename.concat dir
        (Printf.sprintf "quarantine-%03d-batch%d.json" t.quarantines t.batches)
    in
    let bits set =
      Fn_obs.Jsonx.List
        (List.rev (Bitset.fold (fun v acc -> Fn_obs.Jsonx.Int v :: acc) set []))
    in
    let payload =
      Fn_obs.Jsonx.Obj
        [
          ("events", Fn_obs.Jsonx.Int t.events);
          ("batches", Fn_obs.Jsonx.Int t.batches);
          ("faulty", bits t.faulty);
          ("kept_incremental", bits inc.Faultnet.Prune.kept);
          ("kept_scratch", bits scr.Faultnet.Prune.kept);
          ("iterations_incremental", Fn_obs.Jsonx.Int inc.Faultnet.Prune.iterations);
          ("iterations_scratch", Fn_obs.Jsonx.Int scr.Faultnet.Prune.iterations);
          ("alpha_incremental", Fn_obs.Jsonx.Str (Printf.sprintf "%h" a_inc));
          ("alpha_scratch", Fn_obs.Jsonx.Str (Printf.sprintf "%h" a_scr));
        ]
    in
    let meta = [ ("seed", Fn_obs.Jsonx.Int t.cfg.seed); ("n", Fn_obs.Jsonx.Int t.n) ] in
    (* lint:allow no-catchall-exn — crash-only: the post-mortem is
       diagnostic output; no failure writing it may escape the audit *)
    (try ignore (Fn_resilience.Snapshot.write ~path ~meta payload) with _ -> ())

(* Full-recompute audit: rerun Prune from scratch on the current mask,
   compare every field against the incremental state, then adopt the
   scratch truth (cascade cache and alpha cache both reconciled).  In
   Exact mode any divergence is a bug — the differential tests assert
   zero; in Warm mode alpha divergences are the expected price of
   warm starts and this is where they are measured and repaired.

   A degraded engine first pays its scheduled full recompute, so the
   audit always compares fresh incremental state.  If divergence is
   found anyway the engine {e quarantines}: the divergent state is
   frozen to a post-mortem file and the whole candidate state is
   rebuilt from scratch — self-healing instead of limping on with
   surveys that already lied once. *)
let audit t =
  if Cert.degraded t.cert then Cert.refresh t.cert;
  let inc = Cert.result t.cert in
  let mask = Cert.alive t.cert in
  let scr =
    Cert.scratch ~radius:t.cfg.radius t.view ~alive:mask ~alpha:t.cfg.alpha
      ~epsilon:t.cfg.epsilon
  in
  let a_inc = Warm.query t.warm t.view ~kept:inc.Faultnet.Prune.kept in
  let a_scr =
    Warm.reference ~seed:t.cfg.seed ?domains:t.cfg.domains t.view
      ~kept:scr.Faultnet.Prune.kept
  in
  let kept_equal = Bitset.equal inc.Faultnet.Prune.kept scr.Faultnet.Prune.kept in
  let culled_equal = culled_eq inc.Faultnet.Prune.culled scr.Faultnet.Prune.culled in
  let iterations_equal = inc.Faultnet.Prune.iterations = scr.Faultnet.Prune.iterations in
  let alpha_equal = Int64.equal (Int64.bits_of_float a_inc) (Int64.bits_of_float a_scr) in
  let faults =
    (if kept_equal then 0 else 1)
    + (if culled_equal then 0 else 1)
    + (if iterations_equal then 0 else 1)
    + if alpha_equal then 0 else 1
  in
  t.audits <- t.audits + 1;
  t.divergences <- t.divergences + faults;
  if faults > 0 then begin
    t.quarantines <- t.quarantines + 1;
    postmortem_write t ~inc ~scr ~a_inc ~a_scr;
    (* rebuild the incremental candidate state from scratch — the
       surveys that produced the divergence are not to be trusted *)
    Cert.refresh t.cert
  end;
  Cert.set_result t.cert scr;
  Warm.force t.warm ~kept:scr.Faultnet.Prune.kept a_scr;
  let on = Fn_obs.Sink.enabled t.cfg.obs in
  if on then begin
    Fn_obs.Span.instant t.cfg.obs "online.audit"
      ~fields:
        [
          ("faults", Fn_obs.Sink.Int faults);
          ("kept", Fn_obs.Sink.Int (Bitset.cardinal scr.Faultnet.Prune.kept));
        ];
    Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.audits");
    Fn_obs.Metrics.set (Fn_obs.Metrics.gauge "online.degraded") 0.0;
    if faults > 0 then begin
      Fn_obs.Metrics.add (Fn_obs.Metrics.counter "online.divergences") faults;
      Fn_obs.Metrics.set
        (Fn_obs.Metrics.gauge "online.quarantines")
        (float_of_int t.quarantines)
    end
  end;
  { kept_equal; culled_equal; iterations_equal; alpha_equal; faults }

let apply t events =
  match Fn_faults.Churn.normalize_batch ~n:t.n ~faulty:t.faulty events with
  | Error e ->
    t.rejected <- t.rejected + 1;
    Error e
  | Ok evs ->
    let on = Fn_obs.Sink.enabled t.cfg.obs in
    let sp =
      if on then
        Fn_obs.Span.enter t.cfg.obs "online.apply"
          ~fields:[ ("events", Fn_obs.Sink.Int (List.length evs)) ]
      else Fn_obs.Span.null
    in
    let shed_before = Cert.shed t.cert in
    Fn_faults.Churn.apply_batch ~faulty:t.faulty evs;
    Cert.apply t.cert evs;
    t.events <- t.events + List.length evs;
    t.batches <- t.batches + 1;
    if on then begin
      Fn_obs.Metrics.add (Fn_obs.Metrics.counter "online.events") (List.length evs);
      Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.batches");
      if Cert.shed t.cert > shed_before then
        Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.shed_batches");
      Fn_obs.Metrics.set (Fn_obs.Metrics.gauge "online.degraded")
        (if Cert.degraded t.cert then 1.0 else 0.0);
      Fn_obs.Span.exit sp
        ~fields:[ ("dirty", Fn_obs.Sink.Int (Cert.last_dirty t.cert)) ]
    end;
    if t.cfg.audit_every > 0 && t.batches mod t.cfg.audit_every = 0 then
      ignore (audit t : audit_report);
    Ok (List.length evs)

let stats t =
  {
    events = t.events;
    batches = t.batches;
    rejected = t.rejected;
    audits = t.audits;
    divergences = t.divergences;
    surveys = Cert.recomputed t.cert;
    dirty_peak = Cert.dirty_peak t.cert;
    alpha_computes = Warm.computes t.warm;
    warm_hits = Warm.warm_hits t.warm;
    cold_falls = Warm.cold_falls t.warm;
    shed_batches = Cert.shed t.cert;
    degraded_answers = t.degraded_answers;
    quarantines = t.quarantines;
  }

(* FNV-1a over the replayable state: the fault mask, the cascade
   (kept, every cull's size/boundary/members, iteration count), the
   alpha bits, and the batch counters.  Process-local counters that a
   journal replay cannot reproduce (rejections, cache hits, explicit
   audits) are deliberately excluded — kill-and-resume must yield the
   identical digest. *)
let state_digest t =
  let h = ref 0xcbf29ce484222325L in
  let mix64 x = h := Int64.mul (Int64.logxor !h x) 0x100000001b3L in
  let mix i = mix64 (Int64.of_int i) in
  mix t.n;
  Bitset.iter (fun v -> mix v) t.faulty;
  mix (-1);
  let r = result t in
  Bitset.iter (fun v -> mix v) r.Faultnet.Prune.kept;
  mix (-2);
  List.iter
    (fun (c : Faultnet.Prune.culled) ->
      mix c.size;
      mix c.boundary;
      Bitset.iter (fun v -> mix v) c.set;
      mix (-3))
    r.Faultnet.Prune.culled;
  mix r.Faultnet.Prune.iterations;
  mix64 (Int64.bits_of_float (alpha t));
  mix t.events;
  mix t.batches;
  Printf.sprintf "%016Lx" !h

(* The replayable state as one JSON object — what journal compaction
   folds the dropped prefix into.  The fault mask alone determines the
   cascade and alpha (the incremental==scratch invariant), so only the
   mask, the counters, and the digest to verify against travel; [kept]
   rides along as a cheaper second check.  Never encode a degraded
   engine: its served answers depend on shed candidate state that a
   mask-only snapshot cannot carry — the server skips compaction while
   degraded for exactly this reason. *)
(* The snapshot stores the replayable inputs only — fault mask plus
   accepted-work counters — never derived state like the kept set: a
   10^6-node certificate would bloat every snapshot line by megabytes
   and dominate recovery with JSON parsing.  The digest covers the
   derived state bit for bit, so restore still proves the recomputed
   cascade matches what the snapshotting engine held. *)
let encode_state t =
  let bits set =
    Fn_obs.Jsonx.List
      (List.rev (Bitset.fold (fun v acc -> Fn_obs.Jsonx.Int v :: acc) set []))
  in
  Fn_obs.Jsonx.Obj
    [
      ("digest", Fn_obs.Jsonx.Str (state_digest t));
      ("faulty", bits t.faulty);
      ("events", Fn_obs.Jsonx.Int t.events);
      ("batches", Fn_obs.Jsonx.Int t.batches);
      ("alive", Fn_obs.Jsonx.Int (alive_count t));
    ]

let restore t state =
  let field key = Fn_obs.Jsonx.member key state in
  let int_field key =
    match field key with Some (Fn_obs.Jsonx.Int i) -> Some i | _ -> None
  in
  let nodes key =
    match field key with
    | Some (Fn_obs.Jsonx.List items) ->
      let rec decode acc = function
        | [] -> Some (List.rev acc)
        | Fn_obs.Jsonx.Int v :: rest when v >= 0 && v < t.n -> decode (v :: acc) rest
        | _ -> None
      in
      decode [] items
    | _ -> None
  in
  if t.events > 0 || t.batches > 0 || Bitset.cardinal t.faulty > 0 then
    Error "Engine.restore: engine already has state (restore wants a fresh engine)"
  else
    match (field "digest", nodes "faulty", int_field "events", int_field "batches") with
    | Some (Fn_obs.Jsonx.Str digest), Some faulty, Some events, Some batches
      when events >= 0 && batches >= 0 -> (
      (* Re-derive the cascade by applying the snapshot mask as one
         batch: by the incremental==scratch invariant this lands on
         the exact state the snapshotting engine held, which the
         digest check then proves byte for byte (the digest covers the
         kept set, so derived state needs no separate verification). *)
      let evs = List.map (fun v -> Event.Fault v) faulty in
      (match evs with
      | [] -> ()
      | _ :: _ ->
        Fn_faults.Churn.apply_batch ~faulty:t.faulty evs;
        Cert.apply t.cert evs;
        if Cert.degraded t.cert then Cert.refresh t.cert);
      t.events <- events;
      t.batches <- batches;
      let got = state_digest t in
      if String.equal got digest then Ok ()
      else
        Error
          (Printf.sprintf
             "Engine.restore: digest mismatch — snapshot has %s, replay gives %s"
             digest got))
    | _ -> Error "Engine.restore: malformed snapshot state"
