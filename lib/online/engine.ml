open Fn_graph

type config = {
  seed : int;
  radius : int;
  alpha : float;
  epsilon : float;
  mode : Warm.mode;
  audit_every : int;
  domains : int option;
  obs : Fn_obs.Sink.t;
}

let default_config =
  {
    seed = 0;
    radius = 2;
    alpha = 0.5;
    epsilon = 0.5;
    mode = Warm.Exact;
    audit_every = 0;
    domains = None;
    obs = Fn_obs.Sink.null;
  }

type audit_report = {
  kept_equal : bool;
  culled_equal : bool;
  iterations_equal : bool;
  alpha_equal : bool;
  faults : int;
}

type stats = {
  events : int;
  batches : int;
  rejected : int;
  audits : int;
  divergences : int;
  surveys : int;
  dirty_peak : int;
  alpha_computes : int;
  warm_hits : int;
  cold_falls : int;
}

type t = {
  cfg : config;
  view : Gview.t;
  n : int;
  cert : Cert.t;
  warm : Warm.t;
  faulty : Bitset.t;
  mutable events : int;
  mutable batches : int;
  mutable rejected : int;
  mutable audits : int;
  mutable divergences : int;
}

let create ?(cfg = default_config) view =
  let n = Gview.num_nodes view in
  let alive = Bitset.create_full n in
  {
    cfg;
    view;
    n;
    cert =
      Cert.create ~radius:cfg.radius view ~alive ~alpha:cfg.alpha ~epsilon:cfg.epsilon;
    warm = Warm.create ~mode:cfg.mode ?domains:cfg.domains cfg.seed;
    faulty = Bitset.create n;
    events = 0;
    batches = 0;
    rejected = 0;
    audits = 0;
    divergences = 0;
  }

let config t = t.cfg
let universe t = t.n
let view t = t.view
let alive_mask t = Cert.alive t.cert
let alive_count t = Cert.alive_count t.cert
let faulty_mask t = Bitset.copy t.faulty

let is_alive t v =
  if v < 0 || v >= t.n then invalid_arg "Engine.is_alive: node out of range";
  not (Bitset.mem t.faulty v)

let result t = Cert.result t.cert
let alpha t = Warm.query t.warm t.view ~kept:(result t).Faultnet.Prune.kept

let in_certificate t v =
  if v < 0 || v >= t.n then invalid_arg "Engine.in_certificate: node out of range";
  Bitset.mem (result t).Faultnet.Prune.kept v

let culled_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Faultnet.Prune.culled) (y : Faultnet.Prune.culled) ->
         x.size = y.size && x.boundary = y.boundary && Bitset.equal x.set y.set)
       a b

(* Full-recompute audit: rerun Prune from scratch on the current mask,
   compare every field against the incremental state, then adopt the
   scratch truth (cascade cache and alpha cache both reconciled).  In
   Exact mode any divergence is a bug — the differential tests assert
   zero; in Warm mode alpha divergences are the expected price of
   warm starts and this is where they are measured and repaired. *)
let audit t =
  let inc = Cert.result t.cert in
  let mask = Cert.alive t.cert in
  let scr =
    Cert.scratch ~radius:t.cfg.radius t.view ~alive:mask ~alpha:t.cfg.alpha
      ~epsilon:t.cfg.epsilon
  in
  let a_inc = Warm.query t.warm t.view ~kept:inc.Faultnet.Prune.kept in
  let a_scr =
    Warm.reference ~seed:t.cfg.seed ?domains:t.cfg.domains t.view
      ~kept:scr.Faultnet.Prune.kept
  in
  let kept_equal = Bitset.equal inc.Faultnet.Prune.kept scr.Faultnet.Prune.kept in
  let culled_equal = culled_eq inc.Faultnet.Prune.culled scr.Faultnet.Prune.culled in
  let iterations_equal = inc.Faultnet.Prune.iterations = scr.Faultnet.Prune.iterations in
  let alpha_equal = Int64.equal (Int64.bits_of_float a_inc) (Int64.bits_of_float a_scr) in
  let faults =
    (if kept_equal then 0 else 1)
    + (if culled_equal then 0 else 1)
    + (if iterations_equal then 0 else 1)
    + if alpha_equal then 0 else 1
  in
  t.audits <- t.audits + 1;
  t.divergences <- t.divergences + faults;
  Cert.set_result t.cert scr;
  Warm.force t.warm ~kept:scr.Faultnet.Prune.kept a_scr;
  let on = Fn_obs.Sink.enabled t.cfg.obs in
  if on then begin
    Fn_obs.Span.instant t.cfg.obs "online.audit"
      ~fields:
        [
          ("faults", Fn_obs.Sink.Int faults);
          ("kept", Fn_obs.Sink.Int (Bitset.cardinal scr.Faultnet.Prune.kept));
        ];
    Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.audits");
    if faults > 0 then
      Fn_obs.Metrics.add (Fn_obs.Metrics.counter "online.divergences") faults
  end;
  { kept_equal; culled_equal; iterations_equal; alpha_equal; faults }

let apply t events =
  match Fn_faults.Churn.normalize_batch ~n:t.n ~faulty:t.faulty events with
  | Error e ->
    t.rejected <- t.rejected + 1;
    Error e
  | Ok evs ->
    let on = Fn_obs.Sink.enabled t.cfg.obs in
    let sp =
      if on then
        Fn_obs.Span.enter t.cfg.obs "online.apply"
          ~fields:[ ("events", Fn_obs.Sink.Int (List.length evs)) ]
      else Fn_obs.Span.null
    in
    Fn_faults.Churn.apply_batch ~faulty:t.faulty evs;
    Cert.apply t.cert evs;
    t.events <- t.events + List.length evs;
    t.batches <- t.batches + 1;
    if on then begin
      Fn_obs.Metrics.add (Fn_obs.Metrics.counter "online.events") (List.length evs);
      Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.batches");
      Fn_obs.Span.exit sp
        ~fields:[ ("dirty", Fn_obs.Sink.Int (Cert.last_dirty t.cert)) ]
    end;
    if t.cfg.audit_every > 0 && t.batches mod t.cfg.audit_every = 0 then
      ignore (audit t : audit_report);
    Ok (List.length evs)

let stats t =
  {
    events = t.events;
    batches = t.batches;
    rejected = t.rejected;
    audits = t.audits;
    divergences = t.divergences;
    surveys = Cert.recomputed t.cert;
    dirty_peak = Cert.dirty_peak t.cert;
    alpha_computes = Warm.computes t.warm;
    warm_hits = Warm.warm_hits t.warm;
    cold_falls = Warm.cold_falls t.warm;
  }

(* FNV-1a over the replayable state: the fault mask, the cascade
   (kept, every cull's size/boundary/members, iteration count), the
   alpha bits, and the batch counters.  Process-local counters that a
   journal replay cannot reproduce (rejections, cache hits, explicit
   audits) are deliberately excluded — kill-and-resume must yield the
   identical digest. *)
let state_digest t =
  let h = ref 0xcbf29ce484222325L in
  let mix64 x = h := Int64.mul (Int64.logxor !h x) 0x100000001b3L in
  let mix i = mix64 (Int64.of_int i) in
  mix t.n;
  Bitset.iter (fun v -> mix v) t.faulty;
  mix (-1);
  let r = result t in
  Bitset.iter (fun v -> mix v) r.Faultnet.Prune.kept;
  mix (-2);
  List.iter
    (fun (c : Faultnet.Prune.culled) ->
      mix c.size;
      mix c.boundary;
      Bitset.iter (fun v -> mix v) c.set;
      mix (-3))
    r.Faultnet.Prune.culled;
  mix r.Faultnet.Prune.iterations;
  mix64 (Int64.bits_of_float (alpha t));
  mix t.events;
  mix t.batches;
  Printf.sprintf "%016Lx" !h
