open Fn_graph

(** The online faultnet engine: one live topology, a fault mask
    evolving under batched churn, and always-current answers to
    "is v alive?", "what does Prune keep?", "what is the survivor
    expansion?" — maintained incrementally by {!Cert} and {!Warm}
    instead of recomputed per query.

    Determinism contract: in {!Warm.Exact} mode (the default) every
    answer is a pure function of (view, config, accepted batch
    sequence) — byte-identical to the from-scratch computation on the
    same mask, which is exactly what {!audit} checks and the
    differential tests assert.  {!Warm.Warm} mode trades that for
    warm-started spectral estimates; its drift is measured and
    repaired by the audit. *)

type config = {
  seed : int;  (** derives every rng the engine ever creates *)
  radius : int;  (** certificate ball radius (default 2) *)
  alpha : float;  (** design expansion α of the fault-free topology *)
  epsilon : float;  (** Prune slack ε, threshold α·ε *)
  mode : Warm.mode;
  audit_every : int;  (** auto-audit period in batches; 0 disables *)
  max_dirty_frac : float;
      (** overload-shedding threshold (see {!Cert.create}); 1.0 = never
          shed *)
  postmortem : string option;
      (** directory for quarantine post-mortem snapshots; [None]
          disables the write (the quarantine itself still happens) *)
  domains : int option;
  obs : Fn_obs.Sink.t;
}

val default_config : config
(** seed 0, radius 2, alpha 0.5, epsilon 0.5, Exact, no auto-audit,
    no shedding, no post-mortems, sequential, null sink.  Use record
    update syntax. *)

type audit_report = {
  kept_equal : bool;
  culled_equal : bool;
  iterations_equal : bool;
  alpha_equal : bool;  (** bitwise *)
  faults : int;  (** divergent aspects, 0..4 *)
}

type stats = {
  events : int;  (** accepted events (post-coalescing) *)
  batches : int;  (** accepted batches *)
  rejected : int;  (** rejected batches (process-local) *)
  audits : int;
  divergences : int;
  surveys : int;  (** ball surveys since creation *)
  dirty_peak : int;  (** largest single-batch dirty region *)
  alpha_computes : int;
  warm_hits : int;
  cold_falls : int;
  shed_batches : int;  (** batches absorbed with their refresh deferred *)
  degraded_answers : int;  (** queries served from the stale pinned cascade *)
  quarantines : int;  (** audits that found divergence and rebuilt *)
}

type t

val create : ?cfg:config -> Gview.t -> t
(** All nodes start alive; faults arrive as batches.  Creation pays
    the one full survey (O(n · ball)); it does not estimate alpha. *)

val config : t -> config
val universe : t -> int
val view : t -> Gview.t

val alive_mask : t -> Bitset.t
(** Copies. *)

val faulty_mask : t -> Bitset.t
val alive_count : t -> int
val is_alive : t -> int -> bool

val apply : t -> Event.t list -> (int, Fn_faults.Churn.batch_error) result
(** Validate (against the live fault mask), coalesce, and apply one
    batch; [Ok k] is the number of events after coalescing.  On
    [Error] the engine state is untouched — invalid batches are
    rejected atomically.  Triggers the auto-audit when
    [audit_every > 0] divides the accepted-batch count. *)

val result : t -> Faultnet.Prune.result
(** The Prune cascade for the current mask (cached; read-only). *)

val alpha : t -> float
(** Survivor node expansion per the configured {!Warm.mode}. *)

val in_certificate : t -> int -> bool
(** Is [v] in the current survivor set [result.kept]? *)

val degraded : t -> bool
(** Overload shedding is in effect: {!alpha}, {!in_certificate} and
    {!result} currently serve the stale pre-overload cascade (each
    such answer is counted in [stats.degraded_answers]).  Cleared by
    the next under-threshold batch, {!recompute}, or {!audit}. *)

val recompute : t -> unit
(** Force the full candidate rebuild that overload shedding deferred —
    the "scheduled recompute" a server runs off the query path.
    Leaves degraded mode; a no-op engine-semantically when not
    degraded (it still pays the O(n · ball) rebuild). *)

val quarantines : t -> int
(** Audits that found divergence and triggered the self-healing
    rebuild (see {!audit}). *)

val audit : t -> audit_report
(** Full recompute, field-by-field comparison, reconciliation (the
    scratch result replaces the incremental caches).  A degraded
    engine pays its deferred rebuild first, so the comparison is
    always against fresh incremental state.  On divergence the engine
    {e quarantines}: the divergent state is written to a post-mortem
    snapshot under [config.postmortem] (best-effort, never raises),
    the candidate state is rebuilt from scratch, and
    [stats.quarantines] is bumped.  Counted in {!stats}. *)

val stats : t -> stats

val state_digest : t -> string
(** FNV-1a hex digest of the replayable state: fault mask, cascade,
    alpha bits, accepted event/batch counts.  Process-local counters
    (rejections, cache hits, explicit audits) are excluded, so a
    journal replay of the accepted batches reproduces the digest
    exactly — the kill-and-resume contract. *)

val encode_state : t -> Fn_obs.Jsonx.t
(** The replayable state as one JSON object ([digest], [faulty],
    [events], [batches], [alive]) — the payload journal compaction
    snapshots in place of the batch prefix it drops.  Only replayable
    inputs are stored; derived state (the kept set) is recomputed on
    {!restore} and checked through [digest], keeping snapshot lines
    small on million-node views.  Do not encode a {!degraded} engine:
    its answers depend on deferred candidate state a mask-only
    snapshot cannot carry. *)

val restore : t -> Fn_obs.Jsonx.t -> (unit, string) result
(** Rebuild a {e fresh} engine (no batches applied yet) from
    {!encode_state} output: apply the snapshot's fault mask as one
    batch — by the incremental==scratch invariant this reproduces the
    snapshotting engine's cascade exactly — adopt the snapshot's
    event/batch counters, and verify the full {!state_digest} byte
    for byte.  [Error] on a non-fresh engine, a
    malformed snapshot, or any verification mismatch (discard the
    engine in that case). *)
