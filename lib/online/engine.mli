open Fn_graph

(** The online faultnet engine: one live topology, a fault mask
    evolving under batched churn, and always-current answers to
    "is v alive?", "what does Prune keep?", "what is the survivor
    expansion?" — maintained incrementally by {!Cert} and {!Warm}
    instead of recomputed per query.

    Determinism contract: in {!Warm.Exact} mode (the default) every
    answer is a pure function of (view, config, accepted batch
    sequence) — byte-identical to the from-scratch computation on the
    same mask, which is exactly what {!audit} checks and the
    differential tests assert.  {!Warm.Warm} mode trades that for
    warm-started spectral estimates; its drift is measured and
    repaired by the audit. *)

type config = {
  seed : int;  (** derives every rng the engine ever creates *)
  radius : int;  (** certificate ball radius (default 2) *)
  alpha : float;  (** design expansion α of the fault-free topology *)
  epsilon : float;  (** Prune slack ε, threshold α·ε *)
  mode : Warm.mode;
  audit_every : int;  (** auto-audit period in batches; 0 disables *)
  domains : int option;
  obs : Fn_obs.Sink.t;
}

val default_config : config
(** seed 0, radius 2, alpha 0.5, epsilon 0.5, Exact, no auto-audit,
    sequential, null sink.  Use record update syntax. *)

type audit_report = {
  kept_equal : bool;
  culled_equal : bool;
  iterations_equal : bool;
  alpha_equal : bool;  (** bitwise *)
  faults : int;  (** divergent aspects, 0..4 *)
}

type stats = {
  events : int;  (** accepted events (post-coalescing) *)
  batches : int;  (** accepted batches *)
  rejected : int;  (** rejected batches (process-local) *)
  audits : int;
  divergences : int;
  surveys : int;  (** ball surveys since creation *)
  dirty_peak : int;  (** largest single-batch dirty region *)
  alpha_computes : int;
  warm_hits : int;
  cold_falls : int;
}

type t

val create : ?cfg:config -> Gview.t -> t
(** All nodes start alive; faults arrive as batches.  Creation pays
    the one full survey (O(n · ball)); it does not estimate alpha. *)

val config : t -> config
val universe : t -> int
val view : t -> Gview.t

val alive_mask : t -> Bitset.t
(** Copies. *)

val faulty_mask : t -> Bitset.t
val alive_count : t -> int
val is_alive : t -> int -> bool

val apply : t -> Event.t list -> (int, Fn_faults.Churn.batch_error) result
(** Validate (against the live fault mask), coalesce, and apply one
    batch; [Ok k] is the number of events after coalescing.  On
    [Error] the engine state is untouched — invalid batches are
    rejected atomically.  Triggers the auto-audit when
    [audit_every > 0] divides the accepted-batch count. *)

val result : t -> Faultnet.Prune.result
(** The Prune cascade for the current mask (cached; read-only). *)

val alpha : t -> float
(** Survivor node expansion per the configured {!Warm.mode}. *)

val in_certificate : t -> int -> bool
(** Is [v] in the current survivor set [result.kept]? *)

val audit : t -> audit_report
(** Full recompute, field-by-field comparison, reconciliation (the
    scratch result replaces the incremental caches).  Counted in
    {!stats}. *)

val stats : t -> stats

val state_digest : t -> string
(** FNV-1a hex digest of the replayable state: fault mask, cascade,
    alpha bits, accepted event/batch counts.  Process-local counters
    (rejections, cache hits, explicit audits) are excluded, so a
    journal replay of the accepted batches reproduces the digest
    exactly — the kill-and-resume contract. *)
