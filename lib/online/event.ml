type t = Fn_faults.Churn.event =
  | Fault of int
  | Repair of int

let to_token = function
  | Fault v -> "f" ^ string_of_int v
  | Repair v -> "r" ^ string_of_int v

let of_token s =
  let n = String.length s in
  if n < 2 then None
  else
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | None -> None
    | Some v -> (
      match s.[0] with 'f' -> Some (Fault v) | 'r' -> Some (Repair v) | _ -> None)

let batch_to_json events =
  Fn_obs.Jsonx.List (List.map (fun e -> Fn_obs.Jsonx.Str (to_token e)) events)

let batch_of_json json =
  match json with
  | Fn_obs.Jsonx.List items ->
    let rec decode acc = function
      | [] -> Some (List.rev acc)
      | Fn_obs.Jsonx.Str s :: rest -> (
        match of_token s with Some e -> decode (e :: acc) rest | None -> None)
      | _ -> None
    in
    decode [] items
  | _ -> None
