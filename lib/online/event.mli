(** Online churn events: the {!Fn_faults.Churn.event} type plus the
    wire and journal codecs the serving layer speaks.

    The type equation re-exports the constructors, so online callers
    build [Fault v] / [Repair v] directly and every batch handed to
    the engine is validated against the live fault mask by
    {!Fn_faults.Churn.normalize_batch} — fault-of-already-faulty and
    repair-of-alive are typed errors, never silent no-ops. *)

type t = Fn_faults.Churn.event =
  | Fault of int
  | Repair of int

val to_token : t -> string
(** Wire token: [f12] / [r12] — what [apply f12 r3] lines and journal
    rows carry. *)

val of_token : string -> t option

val batch_to_json : t list -> Fn_obs.Jsonx.t
(** Journal row payload: a JSON array of wire tokens.  Exact
    round-trip with {!batch_of_json} — resume replays the identical
    batch. *)

val batch_of_json : Fn_obs.Jsonx.t -> t list option
