open Fn_graph
open Fn_prng

(* Grammar-aware deterministic fuzzing of the faultnetd line protocol.

   The generator knows the grammar well enough to be mean about it: it
   emits valid commands (so deep engine paths run), near-valid lines
   (off-by-one ids, mangled verbs, truncations), and outright hostile
   bytes (binary garbage, oversized lines and batches).  Everything is
   drawn from a seeded [Rng.t], so a failing seed is a reproducible
   regression and the corpus files under test/fixtures replay
   verbatim forever. *)

type report = {
  lines : int;
  ok : int;
  err : int;
  ignored : int;
  exceptions : (string * string) list;  (** (line, Printexc.to_string) — must be [] *)
  violations : string list;  (** lines whose non-[ok] reply changed engine state *)
}

let weird_ids = [| "-1"; "-999999999"; "4611686018427387903"; "0x7f"; "1e9"; "NaN"; "" |]

let verbs =
  [| "alive?"; "certificate?"; "alpha?"; "apply"; "stats?"; "audit!"; "state?"; "quit" |]

let valid_command rng ~n =
  match Rng.int rng 8 with
  | 0 -> Protocol.render (Protocol.Alive (Rng.int rng n))
  | 1 -> Protocol.render (Protocol.Certificate (Rng.int rng n))
  | 2 -> Protocol.render Protocol.Alpha
  | 3 -> Protocol.render Protocol.Stats
  | 4 -> Protocol.render Protocol.State
  | 5 -> Protocol.render Protocol.Audit
  | 6 ->
    let k = 1 + Rng.int rng 4 in
    let evs =
      List.init k (fun _ ->
          let v = Rng.int rng n in
          if Rng.bool rng then Event.Fault v else Event.Repair v)
    in
    Protocol.render (Protocol.Apply evs)
  | _ -> "# comment " ^ string_of_int (Rng.int rng 1000)

(* Near-valid: right shape, wrong content — the inputs that slip past
   naive parsers. *)
let adversarial rng ~n =
  match Rng.int rng 7 with
  | 0 -> "alive? " ^ Rng.choose rng weird_ids
  | 1 -> "certificate? " ^ string_of_int (n + Rng.int rng 1000)
  | 2 ->
    let tok =
      match Rng.int rng 4 with
      | 0 -> "f" ^ Rng.choose rng weird_ids
      | 1 -> "r" ^ string_of_int (n + Rng.int rng 100)
      | 2 -> "x" ^ string_of_int (Rng.int rng n)
      | _ -> "f"
    in
    "apply " ^ tok
  | 3 -> "apply"
  | 4 -> Rng.choose rng verbs ^ " " ^ Rng.choose rng verbs
  | 5 -> String.uppercase_ascii (Rng.choose rng verbs)
  | _ -> "  apply  f0  f0  r0  extra  "

let mutate rng line =
  let b = Bytes.of_string line in
  let len = Bytes.length b in
  if len = 0 then "?"
  else
    match Rng.int rng 3 with
    | 0 ->
      Bytes.set b (Rng.int rng len) (Char.chr (Rng.int rng 256));
      Bytes.to_string b
    | 1 -> Bytes.sub_string b 0 (Rng.int rng len)
    | _ -> line ^ String.make 1 (Char.chr (Rng.int rng 256))

let random_bytes rng =
  String.init (1 + Rng.int rng 40) (fun _ -> Char.chr (Rng.int rng 256))

let oversized rng (limits : Protocol.limits) ~n =
  if Rng.bool rng then String.make (limits.Protocol.max_line_bytes + 1) 'a'
  else
    (* one past the batch limit, every event individually valid *)
    let k = limits.Protocol.max_batch_events + 1 in
    let buf = Buffer.create (4 * k) in
    Buffer.add_string buf "apply";
    for _ = 1 to k do
      Buffer.add_string buf " f";
      Buffer.add_string buf (string_of_int (Rng.int rng n))
    done;
    Buffer.contents buf

let line rng ~limits ~n =
  match Rng.int rng 10 with
  | 0 | 1 | 2 | 3 -> valid_command rng ~n
  | 4 | 5 -> adversarial rng ~n
  | 6 | 7 -> mutate rng (valid_command rng ~n)
  | 8 -> random_bytes rng
  | _ -> oversized rng limits ~n

(* Cheap fingerprint of the {e replayable} engine state — fault mask
   and accepted-batch counters.  Process-local stats (rejections,
   degraded answers) may move on [err] replies; the invariant under
   test is that the replayable state never does. *)
let fingerprint engine =
  let h = ref 0xcbf29ce484222325L in
  let mix i = h := Int64.mul (Int64.logxor !h (Int64.of_int i)) 0x100000001b3L in
  Bitset.iter mix (Engine.faulty_mask engine);
  mix (-1);
  let s = Engine.stats engine in
  mix s.Engine.events;
  mix s.Engine.batches;
  !h

let run ?(limits = Protocol.default_limits) ?policy engine ~seed ~count =
  let rng = Rng.create seed in
  let ok = ref 0 and err = ref 0 and ignored = ref 0 in
  let exceptions = ref [] and violations = ref [] in
  for _ = 1 to count do
    let l = line rng ~limits ~n:(Engine.universe engine) in
    let before = fingerprint engine in
    match Server.handle ~limits ?policy engine l with
    | exception e -> exceptions := (l, Printexc.to_string e) :: !exceptions
    | out -> (
      let after = fingerprint engine in
      match out.Server.reply with
      | None ->
        incr ignored;
        if not (Int64.equal before after) then violations := l :: !violations
      | Some r ->
        let is_ok = String.length r >= 2 && String.sub r 0 2 = "ok" in
        if is_ok then incr ok
        else begin
          incr err;
          if not (Int64.equal before after) then violations := l :: !violations
        end)
  done;
  {
    lines = count;
    ok = !ok;
    err = !err;
    ignored = !ignored;
    exceptions = List.rev !exceptions;
    violations = List.rev !violations;
  }

let clean r = r.exceptions = [] && r.violations = []

let replay ?(limits = Protocol.default_limits) ?policy engine lines =
  let exceptions = ref [] in
  List.iter
    (fun l ->
      match Server.handle ~limits ?policy engine l with
      | exception e -> exceptions := (l, Printexc.to_string e) :: !exceptions
      | (_ : Server.outcome) -> ())
    lines;
  List.rev !exceptions
