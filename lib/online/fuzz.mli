(** Deterministic, grammar-aware fuzzing of the faultnetd protocol.

    The generator mixes valid commands, near-valid adversarial lines
    (out-of-range ids, mangled verbs, truncations, byte flips), binary
    garbage, and limit-busting lines and batches — all drawn from a
    seeded {!Fn_prng.Rng}, so every run is reproducible and a failing
    seed is a regression test.

    {!run} drives an in-process {!Server.handle} session and checks
    the two crash-only obligations at once: no input line may raise,
    and the {e replayable} engine state (fault mask, accepted
    event/batch counters) may change only on [ok] replies. *)

type report = {
  lines : int;
  ok : int;  (** replies starting with [ok] *)
  err : int;  (** replies starting with [err] *)
  ignored : int;  (** blank/comment lines *)
  exceptions : (string * string) list;
      (** (input line, exception) — any entry is a server bug *)
  violations : string list;
      (** input lines whose non-[ok] reply moved the replayable state
          — any entry breaks the state-changes-only-on-ok invariant *)
}

val line : Fn_prng.Rng.t -> limits:Protocol.limits -> n:int -> string
(** Draw one fuzz line for a universe of [n] nodes. *)

val run :
  ?limits:Protocol.limits ->
  ?policy:Fn_resilience.Policy.t ->
  Engine.t ->
  seed:int ->
  count:int ->
  report
(** Feed [count] generated lines to an in-process session on
    [engine], catching everything.  Pure in (engine config, seed,
    count). *)

val clean : report -> bool
(** No exceptions and no invariant violations. *)

val replay :
  ?limits:Protocol.limits ->
  ?policy:Fn_resilience.Policy.t ->
  Engine.t ->
  string list ->
  (string * string) list
(** Replay a fixed corpus (e.g. [test/fixtures/fuzz/corpus.txt])
    verbatim; returns the (line, exception) pairs — must be []. *)
