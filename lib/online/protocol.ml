type command =
  | Alive of int
  | Certificate of int
  | Alpha
  | Apply of Event.t list
  | Stats
  | Audit
  | State
  | Quit

type error =
  | Bad_command of string
  | Bad_node of string
  | Bad_event of string
  | Line_too_long of int
  | Batch_too_large of int

type limits = {
  max_line_bytes : int;
  max_batch_events : int;
}

let default_limits = { max_line_bytes = 65536; max_batch_events = 4096 }

let error_code = function
  | Bad_command _ -> "bad-command"
  | Bad_node _ -> "bad-node"
  | Bad_event _ -> "bad-event"
  | Line_too_long _ -> "line-too-long"
  | Batch_too_large _ -> "batch-too-large"

let error_detail = function
  | Bad_command d | Bad_node d | Bad_event d -> d
  | Line_too_long n -> Printf.sprintf "%d bytes (limit applies to the whole line)" n
  | Batch_too_large n -> Printf.sprintf "%d events in one apply" n

let error_to_string e = error_code e ^ " " ^ error_detail e

let float_hex f = Printf.sprintf "%h" f

let render = function
  | Alive v -> "alive? " ^ string_of_int v
  | Certificate v -> "certificate? " ^ string_of_int v
  | Alpha -> "alpha?"
  | Apply evs -> "apply " ^ String.concat " " (List.map Event.to_token evs)
  | Stats -> "stats?"
  | Audit -> "audit!"
  | State -> "state?"
  | Quit -> "quit"

let tokens line =
  List.filter (fun s -> String.length s > 0) (String.split_on_char ' ' line)

(* Total decoding of one node argument: anything that is not an
   in-range id is the same typed refusal, whether it failed to parse,
   is negative, or walks off the end of the universe.  Hostile input
   must not reach the engine's invalid_arg guards. *)
let node_arg ~n word v k =
  match int_of_string_opt v with
  | Some id when id >= 0 && id < n -> Ok (Some (k id))
  | Some id -> Error (Bad_node (Printf.sprintf "%s wants a node in [0, %d), got %d" word n id))
  | None -> Error (Bad_node (Printf.sprintf "%s needs a node id, got %S" word v))

let parse ?(limits = default_limits) ~n line =
  if String.length line > limits.max_line_bytes then
    Error (Line_too_long (String.length line))
  else
    let line = String.trim line in
    if String.length line = 0 || line.[0] = '#' then Ok None
    else
      match tokens line with
      | [] -> Ok None
      | [ "alive?"; v ] -> node_arg ~n "alive?" v (fun v -> Alive v)
      | [ "certificate?"; v ] -> node_arg ~n "certificate?" v (fun v -> Certificate v)
      | [ "alpha?" ] -> Ok (Some Alpha)
      | [ "stats?" ] -> Ok (Some Stats)
      | [ "state?" ] -> Ok (Some State)
      | [ "audit!" ] -> Ok (Some Audit)
      | [ "quit" ] -> Ok (Some Quit)
      | "apply" :: evs -> (
        match evs with
        | [] -> Error (Bad_event "apply needs at least one f<id>/r<id> event")
        | _ :: _ when List.length evs > limits.max_batch_events ->
          Error (Batch_too_large (List.length evs))
        | _ :: _ ->
          let rec decode acc = function
            | [] -> Ok (Some (Apply (List.rev acc)))
            | tok :: rest -> (
              match Event.of_token tok with
              | Some e ->
                let v = Fn_faults.Churn.event_node e in
                if v >= 0 && v < n then decode (e :: acc) rest
                else
                  Error
                    (Bad_node (Printf.sprintf "event %s names a node outside [0, %d)" tok n))
              | None ->
                Error (Bad_event (Printf.sprintf "bad event token %S (want f<id>/r<id>)" tok)))
          in
          decode [] evs)
      | cmd :: _ -> Error (Bad_command (Printf.sprintf "unknown command %S" cmd))
