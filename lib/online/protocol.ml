type command =
  | Alive of int
  | Certificate of int
  | Alpha
  | Apply of Event.t list
  | Stats
  | Audit
  | State
  | Quit

let float_hex f = Printf.sprintf "%h" f

let render = function
  | Alive v -> "alive? " ^ string_of_int v
  | Certificate v -> "certificate? " ^ string_of_int v
  | Alpha -> "alpha?"
  | Apply evs -> "apply " ^ String.concat " " (List.map Event.to_token evs)
  | Stats -> "stats?"
  | Audit -> "audit!"
  | State -> "state?"
  | Quit -> "quit"

let tokens line =
  List.filter (fun s -> String.length s > 0) (String.split_on_char ' ' line)

let node_arg word v k =
  match int_of_string_opt v with
  | Some v -> Ok (Some (k v))
  | None -> Error (Printf.sprintf "%s needs a node id, got %S" word v)

let parse line =
  let line = String.trim line in
  if String.length line = 0 || line.[0] = '#' then Ok None
  else
    match tokens line with
    | [] -> Ok None
    | [ "alive?"; v ] -> node_arg "alive?" v (fun v -> Alive v)
    | [ "certificate?"; v ] -> node_arg "certificate?" v (fun v -> Certificate v)
    | [ "alpha?" ] -> Ok (Some Alpha)
    | [ "stats?" ] -> Ok (Some Stats)
    | [ "state?" ] -> Ok (Some State)
    | [ "audit!" ] -> Ok (Some Audit)
    | [ "quit" ] -> Ok (Some Quit)
    | "apply" :: evs -> (
      match evs with
      | [] -> Error "apply needs at least one f<id>/r<id> event"
      | _ :: _ ->
        let rec decode acc = function
          | [] -> Ok (Some (Apply (List.rev acc)))
          | tok :: rest -> (
            match Event.of_token tok with
            | Some e -> decode (e :: acc) rest
            | None -> Error (Printf.sprintf "bad event token %S (want f<id>/r<id>)" tok))
        in
        decode [] evs)
    | cmd :: _ -> Error (Printf.sprintf "unknown command %S" cmd)
