(** The faultnetd line protocol, as pure, total parse/render functions.

    One command per line; replies are single lines starting with [ok]
    or [err].  Blank lines and [#] comments are ignored — scripted
    sessions (the [@online-smoke] script) are plain text files.

    {v
    alive? <v>          ok true|false
    certificate? <v>    ok true|false [degraded]  (is v a Prune survivor?)
    alpha?              ok <hex float> [degraded] (%h — byte-exact)
    apply f<v> r<v> ... ok applied=<k> alive=<a>   or  err <code> <detail>
    stats?              ok events=... batches=... ...
    audit!              ok kept=... alpha=... faults=<k> quarantines=<q>
    state?              ok digest=<fnv64 hex>
    quit                ok bye
    v}

    Parsing is {e total}: no input line — hostile, truncated, binary,
    oversized — raises; every malformed line maps to a typed {!error}
    that the server renders as [err <code> <detail>].  Node ids are
    validated against the engine's universe at parse time, so commands
    carrying out-of-range or negative ids are refused uniformly with
    [bad-node] before they reach the engine.  The error codes the
    server can emit:

    - [bad-command]    — unknown verb
    - [bad-node]       — node id unparsable, negative, or >= n
    - [bad-event]      — apply token that is not f<id>/r<id>
    - [line-too-long]  — request over [limits.max_line_bytes]
    - [batch-too-large]— apply with more than [limits.max_batch_events]
    - [rejected]       — well-formed batch refused by churn validation
    - [deadline]       — query exceeded the request deadline (post-hoc) *)

type command =
  | Alive of int
  | Certificate of int
  | Alpha
  | Apply of Event.t list
  | Stats
  | Audit
  | State
  | Quit

type error =
  | Bad_command of string
  | Bad_node of string
  | Bad_event of string
  | Line_too_long of int  (** actual byte length *)
  | Batch_too_large of int  (** actual event count *)

type limits = {
  max_line_bytes : int;  (** refuse longer request lines outright *)
  max_batch_events : int;  (** refuse larger apply batches outright *)
}

val default_limits : limits
(** 64 KiB lines, 4096 events per batch. *)

val error_code : error -> string
(** The stable machine-readable token after [err]. *)

val error_detail : error -> string

val error_to_string : error -> string
(** [error_code ^ " " ^ error_detail] — the reply tail after [err ]. *)

val parse : ?limits:limits -> n:int -> string -> (command option, error) result
(** [Ok None] for blank/comment lines.  Total: never raises, for any
    byte string.  [n] is the engine universe every node id is checked
    against.  [parse ~n (render c) = Ok (Some c)] for every command
    whose ids are in range. *)

val render : command -> string
(** Canonical wire form. *)

val float_hex : float -> string
(** ["%h"] — the byte-exact rendering every float reply uses. *)
