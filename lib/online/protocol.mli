(** The faultnetd line protocol, as pure parse/render functions.

    One command per line; replies are single lines starting with [ok]
    or [err].  Blank lines and [#] comments are ignored — scripted
    sessions (the [@online-smoke] script) are plain text files.

    {v
    alive? <v>          ok true|false
    certificate? <v>    ok true|false          (is v a Prune survivor?)
    alpha?              ok <hex float>         (%h — byte-exact)
    apply f<v> r<v> ... ok applied=<k> alive=<a>   or  err <reason>
    stats?              ok events=... batches=... ...
    audit!              ok kept=... alpha=... faults=<k>
    state?              ok digest=<fnv64 hex>
    quit                ok bye
    v} *)

type command =
  | Alive of int
  | Certificate of int
  | Alpha
  | Apply of Event.t list
  | Stats
  | Audit
  | State
  | Quit

val parse : string -> (command option, string) result
(** [Ok None] for blank/comment lines; [Error] is the reason echoed in
    the [err] reply.  [parse (render c) = Ok (Some c)] for every
    command. *)

val render : command -> string
(** Canonical wire form. *)

val float_hex : float -> string
(** ["%h"] — the byte-exact rendering every float reply uses. *)
