open Fn_graph

type outcome = { reply : string option; quit : bool }

let scope = "online.batch"
let reply s = { reply = Some s; quit = false }

(* The [degraded] stamp: answers served from the stale pinned cascade
   while overload shedding is in effect say so on the wire, so a
   client can tell "current truth" from "last good truth". *)
let stamp engine s = if Engine.degraded engine then s ^ " degraded" else s

let dispatch ?on_batch engine cmd =
  match cmd with
  | Protocol.Quit -> { reply = Some "ok bye"; quit = true }
  | Protocol.Alive v -> reply ("ok " ^ string_of_bool (Engine.is_alive engine v))
  | Protocol.Certificate v ->
    reply (stamp engine ("ok " ^ string_of_bool (Engine.in_certificate engine v)))
  | Protocol.Alpha ->
    reply (stamp engine ("ok " ^ Protocol.float_hex (Engine.alpha engine)))
  | Protocol.State -> reply ("ok digest=" ^ Engine.state_digest engine)
  | Protocol.Stats ->
    let s = Engine.stats engine in
    reply
      (Printf.sprintf
         "ok events=%d batches=%d rejected=%d audits=%d divergences=%d surveys=%d \
          dirty_peak=%d alpha_computes=%d warm_hits=%d cold_falls=%d shed_batches=%d \
          degraded_answers=%d quarantines=%d"
         s.Engine.events s.Engine.batches s.Engine.rejected s.Engine.audits
         s.Engine.divergences s.Engine.surveys s.Engine.dirty_peak s.Engine.alpha_computes
         s.Engine.warm_hits s.Engine.cold_falls s.Engine.shed_batches
         s.Engine.degraded_answers s.Engine.quarantines)
  | Protocol.Audit ->
    let r = Engine.audit engine in
    reply
      (Printf.sprintf "ok kept=%b culled=%b iterations=%b alpha=%b faults=%d quarantines=%d"
         r.Engine.kept_equal r.Engine.culled_equal r.Engine.iterations_equal
         r.Engine.alpha_equal r.Engine.faults (Engine.quarantines engine))
  | Protocol.Apply evs -> (
    match Engine.apply engine evs with
    | Error e -> reply ("err rejected " ^ Fn_faults.Churn.error_to_string e)
    | Ok k ->
      (match on_batch with Some f -> f evs | None -> ());
      reply (Printf.sprintf "ok applied=%d alive=%d" k (Engine.alive_count engine)))

(* Queries get a post-hoc deadline (cooperative, like
   [Fn_resilience.Policy] everywhere else): the answer is computed,
   but if computing it blew the budget the client gets [err deadline]
   instead — a slow read must look like a refusal, not a stall.
   State-changing commands are exempt: an applied batch must answer
   [ok], or the "state changes only on ok" invariant breaks. *)
let deadline_applies = function
  | Protocol.Alive _ | Protocol.Certificate _ | Protocol.Alpha | Protocol.Stats
  | Protocol.State ->
    true
  | Protocol.Apply _ | Protocol.Audit | Protocol.Quit -> false

let handle ?limits ?policy ?on_batch engine line =
  match Protocol.parse ?limits ~n:(Engine.universe engine) line with
  | Ok None -> { reply = None; quit = false }
  | Error e -> reply ("err " ^ Protocol.error_to_string e)
  | Ok (Some cmd) ->
    let obs = (Engine.config engine).Engine.obs in
    let on = Fn_obs.Sink.enabled obs in
    let since_ns = Fn_obs.Clock.now_ns () in
    let out = dispatch ?on_batch engine cmd in
    let elapsed_s = Fn_obs.Clock.elapsed_s ~since_ns in
    if on then
      Fn_obs.Metrics.observe (Fn_obs.Metrics.histogram "online.command_seconds") elapsed_s;
    let blew_deadline =
      match policy with
      | Some { Fn_resilience.Policy.deadline_s = Some d; _ } ->
        deadline_applies cmd && elapsed_s > d
      | Some { Fn_resilience.Policy.deadline_s = None; _ } | None -> false
    in
    if blew_deadline then begin
      if on then Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.deadline_misses");
      reply
        (Printf.sprintf "err deadline query exceeded %s s budget"
           (match policy with
           | Some { Fn_resilience.Policy.deadline_s = Some d; _ } -> Protocol.float_hex d
           | _ -> "?"))
    end
    else out

let run_loop ?limits ?policy ?on_batch engine ic oc =
  let quit = ref false in
  (try
     while not !quit do
       let line = input_line ic in
       let out = handle ?limits ?policy ?on_batch engine line in
       (match out.reply with
       | Some s ->
         output_string oc s;
         output_char oc '\n';
         flush oc
       | None -> ());
       if out.quit then quit := true
     done
   with End_of_file -> ());
  Ok ()

(* Bring a fresh engine up to date from an open journal: restore the
   compaction snapshot if one governs (O(snapshot) instead of
   O(dropped prefix)), then replay the remaining batches.  Returns the
   next free trial index.  Shared by [serve], the recovery benchmarks,
   and the kill-and-resume tests. *)
let recover j engine =
  let next = ref 0 in
  let start =
    match Fn_resilience.Journal.find_snapshot j ~scope with
    | None -> Ok ()
    | Some (upto, value) -> (
      match Engine.restore engine value with
      | Ok () ->
        next := upto;
        Ok ()
      | Error m -> Error (Printf.sprintf "journal snapshot restore failed: %s" m))
  in
  match start with
  | Error m -> Error m
  | Ok () ->
    let failure = ref None in
    let running = ref true in
    while !running do
      match Fn_resilience.Journal.find_trial j ~scope ~index:!next with
      | None -> running := false
      | Some json -> (
        match Event.batch_of_json json with
        | None ->
          failure := Some (Printf.sprintf "journal record %d is not an event batch" !next);
          running := false
        | Some evs -> (
          match Engine.apply engine evs with
          | Error e ->
            failure :=
              Some
                (Printf.sprintf "journal replay rejected batch %d: %s" !next
                   (Fn_faults.Churn.error_to_string e));
            running := false
          | Ok _ -> incr next))
    done;
    (match !failure with
    | Some m -> Error m
    | None -> Ok !next)

let serve ?journal ?(resume = false) ?(meta = []) ?limits ?policy ?(compact_every = 0)
    engine ic oc =
  if compact_every < 0 then invalid_arg "Server.serve: compact_every must be >= 0";
  match journal with
  | None -> run_loop ?limits ?policy engine ic oc
  | Some path ->
    let cfg = Engine.config engine in
    (* Bind the journal to everything that determines replay results:
       replaying these batches into an engine built with different
       parameters would silently splice two different sessions. *)
    let meta =
      meta
      @ [
          ("service", Fn_obs.Jsonx.Str "faultnetd");
          ("seed", Fn_obs.Jsonx.Int cfg.Engine.seed);
          ("n", Fn_obs.Jsonx.Int (Engine.universe engine));
          ("radius", Fn_obs.Jsonx.Int cfg.Engine.radius);
          ("alpha", Fn_obs.Jsonx.Str (Protocol.float_hex cfg.Engine.alpha));
          ("epsilon", Fn_obs.Jsonx.Str (Protocol.float_hex cfg.Engine.epsilon));
          ("mode", Fn_obs.Jsonx.Str (Warm.mode_to_string cfg.Engine.mode));
          ("audit_every", Fn_obs.Jsonx.Int cfg.Engine.audit_every);
        ]
    in
    (match Fn_resilience.Journal.open_ ~path ~meta with
    | Error m -> Error m
    | Ok j ->
      Fun.protect
        ~finally:(fun () -> Fn_resilience.Journal.close j)
        (fun () ->
          if Fn_resilience.Journal.recovered j > 0 && not resume then
            Error
              (path
             ^ " already holds a recorded session; pass resume to replay and continue it")
          else
            match recover j engine with
            | Error m -> Error m
            | Ok start ->
              let next = ref start in
              let accepted = ref 0 in
              let on = Fn_obs.Sink.enabled cfg.Engine.obs in
              (* Compact every [compact_every] accepted batches — but
                 never while degraded: a mask-only snapshot cannot
                 stand in for deferred candidate state, so compaction
                 waits for the catch-up rebuild.  A failed compaction
                 is logged to metrics and the journal keeps governing —
                 crash-only means degraded persistence, not a dead
                 service. *)
              let maybe_compact () =
                if
                  compact_every > 0
                  && !accepted mod compact_every = 0
                  && not (Engine.degraded engine)
                then
                  match
                    Fn_resilience.Journal.compact j ~scope ~upto:!next
                      ~snapshot:(Engine.encode_state engine)
                  with
                  | Ok () ->
                    if on then
                      Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "online.compactions")
                  | Error _ ->
                    if on then
                      Fn_obs.Metrics.incr
                        (Fn_obs.Metrics.counter "online.compact_failures")
              in
              let on_batch evs =
                Fn_resilience.Journal.record_trial j ~scope ~index:!next
                  (Event.batch_to_json evs);
                incr next;
                incr accepted;
                maybe_compact ()
              in
              run_loop ?limits ?policy ~on_batch engine ic oc))

let parse_dims s =
  let parts = String.split_on_char 'x' s in
  let dims = List.filter_map int_of_string_opt parts in
  if List.length dims = List.length parts && dims <> [] && List.for_all (fun d -> d > 0) dims
  then Some (Array.of_list dims)
  else None

(* Topology specs for the serving layer: the CSR family the CLI
   generates, plus i-prefixed implicit variants that scale the daemon
   to 10^6+ nodes without materializing an edge set. *)
let view_of_spec rng spec =
  let int_arg name v k =
    match int_of_string_opt v with
    | Some v when v > 0 -> k v
    | _ -> Error (Printf.sprintf "%s wants a positive int, got %S" name v)
  in
  match String.split_on_char ':' spec with
  | [ "itorus"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Fn_topology.Implicit.torus d)
    | None -> Error "itorus dims must look like 1000x1000")
  | [ "imesh"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Fn_topology.Implicit.mesh d)
    | None -> Error "imesh dims must look like 1000x1000")
  | [ "ihypercube"; d ] ->
    int_arg "ihypercube" d (fun d -> Ok (Fn_topology.Implicit.hypercube d))
  | [ "mesh"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Gview.Csr (fst (Fn_topology.Mesh.graph d)))
    | None -> Error "mesh dims must look like 8x8")
  | [ "torus"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Gview.Csr (fst (Fn_topology.Torus.graph d)))
    | None -> Error "torus dims must look like 8x8")
  | [ "hypercube"; d ] ->
    int_arg "hypercube" d (fun d -> Ok (Gview.Csr (Fn_topology.Hypercube.graph d)))
  | [ "debruijn"; k ] ->
    int_arg "debruijn" k (fun k -> Ok (Gview.Csr (Fn_topology.Debruijn.graph k)))
  | [ "complete"; n ] ->
    int_arg "complete" n (fun n -> Ok (Gview.Csr (Fn_topology.Basic.complete n)))
  | [ "cycle"; n ] ->
    int_arg "cycle" n (fun n -> Ok (Gview.Csr (Fn_topology.Basic.cycle n)))
  | [ "expander"; n; d ] ->
    int_arg "expander" n (fun n ->
        int_arg "expander" d (fun d ->
            Ok (Gview.Csr (Fn_topology.Expander.random_regular rng ~n ~d))))
  | _ ->
    Error
      "unknown topology; try itorus:1000x1000 imesh:100x100 ihypercube:20 mesh:8x8 \
       torus:16x16 hypercube:10 debruijn:8 complete:64 cycle:100 expander:256:6"
