open Fn_graph

type outcome = { reply : string option; quit : bool }

let scope = "online.batch"
let reply s = { reply = Some s; quit = false }

let dispatch ?on_batch engine cmd =
  let n = Engine.universe engine in
  let range_ok v = v >= 0 && v < n in
  match cmd with
  | Protocol.Quit -> { reply = Some "ok bye"; quit = true }
  | Protocol.Alive v ->
    if range_ok v then reply ("ok " ^ string_of_bool (Engine.is_alive engine v))
    else reply (Printf.sprintf "err node %d out of range" v)
  | Protocol.Certificate v ->
    if range_ok v then reply ("ok " ^ string_of_bool (Engine.in_certificate engine v))
    else reply (Printf.sprintf "err node %d out of range" v)
  | Protocol.Alpha -> reply ("ok " ^ Protocol.float_hex (Engine.alpha engine))
  | Protocol.State -> reply ("ok digest=" ^ Engine.state_digest engine)
  | Protocol.Stats ->
    let s = Engine.stats engine in
    reply
      (Printf.sprintf
         "ok events=%d batches=%d rejected=%d audits=%d divergences=%d surveys=%d \
          dirty_peak=%d alpha_computes=%d warm_hits=%d cold_falls=%d"
         s.Engine.events s.Engine.batches s.Engine.rejected s.Engine.audits
         s.Engine.divergences s.Engine.surveys s.Engine.dirty_peak s.Engine.alpha_computes
         s.Engine.warm_hits s.Engine.cold_falls)
  | Protocol.Audit ->
    let r = Engine.audit engine in
    reply
      (Printf.sprintf "ok kept=%b culled=%b iterations=%b alpha=%b faults=%d"
         r.Engine.kept_equal r.Engine.culled_equal r.Engine.iterations_equal
         r.Engine.alpha_equal r.Engine.faults)
  | Protocol.Apply evs -> (
    match Engine.apply engine evs with
    | Error e -> reply ("err " ^ Fn_faults.Churn.error_to_string e)
    | Ok k ->
      (match on_batch with Some f -> f evs | None -> ());
      reply (Printf.sprintf "ok applied=%d alive=%d" k (Engine.alive_count engine)))

let handle ?on_batch engine line =
  match Protocol.parse line with
  | Ok None -> { reply = None; quit = false }
  | Error msg -> reply ("err " ^ msg)
  | Ok (Some cmd) ->
    let obs = (Engine.config engine).Engine.obs in
    if Fn_obs.Sink.enabled obs then begin
      let since_ns = Fn_obs.Clock.now_ns () in
      let out = dispatch ?on_batch engine cmd in
      Fn_obs.Metrics.observe
        (Fn_obs.Metrics.histogram "online.command_seconds")
        (Fn_obs.Clock.elapsed_s ~since_ns);
      out
    end
    else dispatch ?on_batch engine cmd

let run_loop ?on_batch engine ic oc =
  let quit = ref false in
  (try
     while not !quit do
       let line = input_line ic in
       let out = handle ?on_batch engine line in
       (match out.reply with
       | Some s ->
         output_string oc s;
         output_char oc '\n';
         flush oc
       | None -> ());
       if out.quit then quit := true
     done
   with End_of_file -> ());
  Ok ()

let serve ?journal ?(resume = false) ?(meta = []) engine ic oc =
  match journal with
  | None -> run_loop engine ic oc
  | Some path ->
    let cfg = Engine.config engine in
    (* Bind the journal to everything that determines replay results:
       replaying these batches into an engine built with different
       parameters would silently splice two different sessions. *)
    let meta =
      meta
      @ [
          ("service", Fn_obs.Jsonx.Str "faultnetd");
          ("seed", Fn_obs.Jsonx.Int cfg.Engine.seed);
          ("n", Fn_obs.Jsonx.Int (Engine.universe engine));
          ("radius", Fn_obs.Jsonx.Int cfg.Engine.radius);
          ("alpha", Fn_obs.Jsonx.Str (Protocol.float_hex cfg.Engine.alpha));
          ("epsilon", Fn_obs.Jsonx.Str (Protocol.float_hex cfg.Engine.epsilon));
          ("mode", Fn_obs.Jsonx.Str (Warm.mode_to_string cfg.Engine.mode));
          ("audit_every", Fn_obs.Jsonx.Int cfg.Engine.audit_every);
        ]
    in
    (match Fn_resilience.Journal.open_ ~path ~meta with
    | Error m -> Error m
    | Ok j ->
      Fun.protect
        ~finally:(fun () -> Fn_resilience.Journal.close j)
        (fun () ->
          if Fn_resilience.Journal.recovered j > 0 && not resume then
            Error
              (path
             ^ " already holds a recorded session; pass resume to replay and continue it")
          else begin
            let next = ref 0 in
            let failure = ref None in
            let running = ref true in
            while !running do
              match Fn_resilience.Journal.find_trial j ~scope ~index:!next with
              | None -> running := false
              | Some json -> (
                match Event.batch_of_json json with
                | None ->
                  failure :=
                    Some (Printf.sprintf "journal record %d is not an event batch" !next);
                  running := false
                | Some evs -> (
                  match Engine.apply engine evs with
                  | Error e ->
                    failure :=
                      Some
                        (Printf.sprintf "journal replay rejected batch %d: %s" !next
                           (Fn_faults.Churn.error_to_string e));
                    running := false
                  | Ok _ -> incr next))
            done;
            match !failure with
            | Some m -> Error m
            | None ->
              let on_batch evs =
                Fn_resilience.Journal.record_trial j ~scope ~index:!next
                  (Event.batch_to_json evs);
                incr next
              in
              run_loop ~on_batch engine ic oc
          end))

let parse_dims s =
  let parts = String.split_on_char 'x' s in
  let dims = List.filter_map int_of_string_opt parts in
  if List.length dims = List.length parts && dims <> [] && List.for_all (fun d -> d > 0) dims
  then Some (Array.of_list dims)
  else None

(* Topology specs for the serving layer: the CSR family the CLI
   generates, plus i-prefixed implicit variants that scale the daemon
   to 10^6+ nodes without materializing an edge set. *)
let view_of_spec rng spec =
  let int_arg name v k =
    match int_of_string_opt v with
    | Some v when v > 0 -> k v
    | _ -> Error (Printf.sprintf "%s wants a positive int, got %S" name v)
  in
  match String.split_on_char ':' spec with
  | [ "itorus"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Fn_topology.Implicit.torus d)
    | None -> Error "itorus dims must look like 1000x1000")
  | [ "imesh"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Fn_topology.Implicit.mesh d)
    | None -> Error "imesh dims must look like 1000x1000")
  | [ "ihypercube"; d ] ->
    int_arg "ihypercube" d (fun d -> Ok (Fn_topology.Implicit.hypercube d))
  | [ "mesh"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Gview.Csr (fst (Fn_topology.Mesh.graph d)))
    | None -> Error "mesh dims must look like 8x8")
  | [ "torus"; dims ] -> (
    match parse_dims dims with
    | Some d -> Ok (Gview.Csr (fst (Fn_topology.Torus.graph d)))
    | None -> Error "torus dims must look like 8x8")
  | [ "hypercube"; d ] ->
    int_arg "hypercube" d (fun d -> Ok (Gview.Csr (Fn_topology.Hypercube.graph d)))
  | [ "debruijn"; k ] ->
    int_arg "debruijn" k (fun k -> Ok (Gview.Csr (Fn_topology.Debruijn.graph k)))
  | [ "complete"; n ] ->
    int_arg "complete" n (fun n -> Ok (Gview.Csr (Fn_topology.Basic.complete n)))
  | [ "cycle"; n ] ->
    int_arg "cycle" n (fun n -> Ok (Gview.Csr (Fn_topology.Basic.cycle n)))
  | [ "expander"; n; d ] ->
    int_arg "expander" n (fun n ->
        int_arg "expander" d (fun d ->
            Ok (Gview.Csr (Fn_topology.Expander.random_regular rng ~n ~d))))
  | _ ->
    Error
      "unknown topology; try itorus:1000x1000 imesh:100x100 ihypercube:20 mesh:8x8 \
       torus:16x16 hypercube:10 debruijn:8 complete:64 cycle:100 expander:256:6"
