open Fn_graph
open Fn_prng

(** Serving layer: the {!Protocol} wired to an {!Engine} over line
    channels, with optional journaling, snapshots and compaction for
    bounded-cost kill-and-resume.

    Crash-only discipline: every accepted batch is journaled (scope
    ["online.batch"], dense indices) {e after} it is applied and
    {e before} the reply is sent, so a kill at any point loses at most
    the batch whose reply the client never saw.  Recovery restores the
    latest compaction snapshot (if any) and replays the journaled
    suffix through a fresh engine — batch normalization and the
    Exact-mode estimates are pure functions of the replayed history,
    so the resumed process answers [state?] with the digest the
    uninterrupted one would have.

    Hardening: parsing is total ({!Protocol.parse} — every byte string
    gets a typed reply, nothing raises), request size limits apply per
    line and per batch, and read queries carry an optional post-hoc
    deadline from {!Fn_resilience.Policy} ([err deadline ...] instead
    of a stalled answer; state-changing commands are exempt so engine
    state changes exactly on [ok] replies). *)

type outcome = { reply : string option; quit : bool }
(** [reply = None] for ignored lines (blank, comment). *)

val scope : string
(** The journal trial scope batches are recorded under
    (["online.batch"]) — exposed for benchmarks and tests that build
    journals directly. *)

val handle :
  ?limits:Protocol.limits ->
  ?policy:Fn_resilience.Policy.t ->
  ?on_batch:(Event.t list -> unit) ->
  Engine.t ->
  string ->
  outcome
(** Process one line.  [on_batch] fires on each accepted [apply] with
    the raw batch (journal hook).  [limits] defaults to
    {!Protocol.default_limits}; [policy] supplies the query deadline
    (its other knobs are unused here).  With an enabled obs sink each
    command's latency lands in the ["online.command_seconds"]
    histogram and deadline refusals count in
    ["online.deadline_misses"].  Exposed so tests, fuzzers and
    benchmarks can drive a session without pipes or processes. *)

val run_loop :
  ?limits:Protocol.limits ->
  ?policy:Fn_resilience.Policy.t ->
  ?on_batch:(Event.t list -> unit) ->
  Engine.t ->
  in_channel ->
  out_channel ->
  (unit, string) result
(** Read lines until [quit] or EOF, replying on [oc] (flushed per
    line). *)

val recover : Fn_resilience.Journal.t -> Engine.t -> (int, string) result
(** Bring a {e fresh} engine up to date from an open journal: restore
    the compaction snapshot if one governs, then replay the remaining
    batches in index order.  [Ok next] is the next free trial index.
    Shared by {!serve}, the recovery benchmarks and the
    kill-and-resume tests. *)

val serve :
  ?journal:string ->
  ?resume:bool ->
  ?meta:(string * Fn_obs.Jsonx.t) list ->
  ?limits:Protocol.limits ->
  ?policy:Fn_resilience.Policy.t ->
  ?compact_every:int ->
  Engine.t ->
  in_channel ->
  out_channel ->
  (unit, string) result
(** {!run_loop} with journaling.  [journal] names the JSONL file; its
    meta header binds seed, universe, radius, alpha, epsilon, mode and
    audit period (plus caller [meta], e.g. the topology spec) — a
    mismatched reopen is refused, as is an existing journal without
    [resume].  With [resume] the journal is {!recover}ed into [engine]
    (which must be freshly created) before serving begins.

    [compact_every > 0] compacts the journal after every that many
    accepted batches (skipped while the engine is {!Engine.degraded} —
    a mask-only snapshot cannot carry deferred candidate state).  A
    failed compaction leaves the old journal governing and counts in
    ["online.compact_failures"]; the service keeps running. *)

val view_of_spec : Rng.t -> string -> (Gview.t, string) result
(** Topology specs accepted by the daemon: the CLI's generated CSR
    family plus implicit [itorus:AxB] / [imesh:AxB] / [ihypercube:d]
    for 10^6+-node instances.  [rng] only feeds randomized
    constructions (expander). *)
