open Fn_graph
open Fn_prng

(** Serving layer: the {!Protocol} wired to an {!Engine} over line
    channels, with optional journaling for kill-and-resume.

    Every accepted batch is journaled (scope ["online.batch"], dense
    indices) {e after} it is applied and {e before} the reply is sent,
    so a kill at any point loses at most the batch whose reply the
    client never saw.  Resume replays the journaled batches through a
    fresh engine — batch normalization and the Exact-mode estimates
    are pure functions of the replayed history, so the resumed
    process answers [state?] with the digest the uninterrupted one
    would have. *)

type outcome = { reply : string option; quit : bool }
(** [reply = None] for ignored lines (blank, comment). *)

val handle : ?on_batch:(Event.t list -> unit) -> Engine.t -> string -> outcome
(** Process one line.  [on_batch] fires on each accepted [apply] with
    the raw batch (journal hook).  With an enabled obs sink each
    command's latency lands in the ["online.command_seconds"]
    histogram.  Exposed so tests and benchmarks can drive a session
    without pipes or processes. *)

val run_loop :
  ?on_batch:(Event.t list -> unit) ->
  Engine.t ->
  in_channel ->
  out_channel ->
  (unit, string) result
(** Read lines until [quit] or EOF, replying on [oc] (flushed per
    line). *)

val serve :
  ?journal:string ->
  ?resume:bool ->
  ?meta:(string * Fn_obs.Jsonx.t) list ->
  Engine.t ->
  in_channel ->
  out_channel ->
  (unit, string) result
(** {!run_loop} with journaling.  [journal] names the JSONL file; its
    meta header binds seed, universe, radius, alpha, epsilon, mode and
    audit period (plus caller [meta], e.g. the topology spec) — a
    mismatched reopen is refused, as is an existing journal without
    [resume].  With [resume] the recorded batches are replayed into
    [engine] (which must be freshly created) before serving begins. *)

val view_of_spec : Rng.t -> string -> (Gview.t, string) result
(** Topology specs accepted by the daemon: the CLI's generated CSR
    family plus implicit [itorus:AxB] / [imesh:AxB] / [ihypercube:d]
    for 10^6+-node instances.  [rng] only feeds randomized
    constructions (expander). *)
