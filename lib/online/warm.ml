open Fn_graph

type mode = Exact | Warm

let mode_to_string = function Exact -> "exact" | Warm -> "warm"

let mode_of_string = function
  | "exact" -> Some Exact
  | "warm" -> Some Warm
  | _ -> None

let memo_cap = 8

type t = {
  mode : mode;
  seed : int;
  domains : int option;
  method_ : Fn_expansion.Spectral.Method.t;
  residual_tol : float;
  mutable pair : (float array * float array) option; (* last Fiedler pair *)
  mutable last_lambda2 : float option; (* gap hint for backend selection *)
  mutable last : (Bitset.t * float) option; (* newest kept -> alpha *)
  mutable memo : (Bitset.t * float) list; (* Exact-mode history, newest first *)
  mutable computes : int;
  mutable warm_hits : int;
  mutable cold_falls : int;
}

let create ?(mode = Exact) ?(residual_tol = 0.25) ?domains
    ?(method_ = Fn_expansion.Spectral.Method.Auto) seed =
  {
    mode;
    seed;
    domains;
    method_;
    residual_tol;
    pair = None;
    last_lambda2 = None;
    last = None;
    memo = [];
    computes = 0;
    warm_hits = 0;
    cold_falls = 0;
  }

let mode t = t.mode
let computes t = t.computes
let warm_hits t = t.warm_hits
let cold_falls t = t.cold_falls

(* The history-free alpha of a mask: a fresh seed-derived rng every
   call, so the value depends only on (view, kept, seed, method) —
   what both the Exact engine path and the from-scratch differential
   reference compute, making the two byte-identical.  Fewer than 2
   survivors have expansion 0 by convention; an implicit view whose
   portfolio exhibits no witness reports infinity ("no upper bound
   found"). *)
let reference ~seed ?domains ?method_ view ~kept =
  if Bitset.cardinal kept < 2 then 0.0
  else begin
    let rng = Fn_prng.Rng.create (seed lxor 0x0A11CE) in
    match view with
    | Gview.Csr g ->
      (Fn_expansion.Estimate.run ~alive:kept ~rng ?domains ?method_ g Fn_expansion.Cut.Node)
        .Fn_expansion.Estimate.value
    | Gview.Implicit _ -> (
      match
        Fn_expansion.Estimate.ball_witness_v ~alive:kept ~rng view Fn_expansion.Cut.Node
      with
      | Some c -> c.Fn_expansion.Cut.value
      | None -> infinity)
  end

let rec take k = function
  | [] -> []
  | x :: tl -> if k <= 0 then [] else x :: take (k - 1) tl

(* Warm path: reuse the previous Fiedler pair as the spectral start
   when BOTH vectors' residuals on the new mask are still small, else
   fall back cold.  Gating on the first vector alone let a stale
   second vector ride through: the pair seeds two iterations (or the
   Krylov basis), and a drifted x2 poisons the deflated solve even
   when x1 still tracks the Fiedler direction.  The cached lambda2
   rides along as the gap hint, so a collapsing mask steers
   auto-selection toward shift-invert.  Only the CSR arm is spectral;
   implicit views use the reference portfolio either way. *)
let warm_compute t view ~kept =
  t.computes <- t.computes + 1;
  if Bitset.cardinal kept < 2 then 0.0
  else begin
    match view with
    | Gview.Csr g ->
      let warm =
        match t.pair with
        | Some (x1, x2)
          when Fn_expansion.Spectral.residual ~alive:kept g x1 <= t.residual_tol
               && Fn_expansion.Spectral.residual ~alive:kept g x2 <= t.residual_tol ->
          t.warm_hits <- t.warm_hits + 1;
          t.pair
        | Some _ ->
          t.cold_falls <- t.cold_falls + 1;
          None
        | None -> None
      in
      let est =
        Fn_expansion.Estimate.run ~alive:kept
          ~rng:(Fn_prng.Rng.create (t.seed lxor 0x0A11CE))
          ?domains:t.domains ?warm ~method_:t.method_ ?gap_hint:t.last_lambda2 g
          Fn_expansion.Cut.Node
      in
      t.pair <- est.Fn_expansion.Estimate.fiedler_pair;
      t.last_lambda2 <- est.Fn_expansion.Estimate.lambda2;
      est.Fn_expansion.Estimate.value
    | Gview.Implicit _ -> reference ~seed:t.seed ?domains:t.domains view ~kept
  end

let query t view ~kept =
  match t.last with
  | Some (k, a) when Bitset.equal k kept -> a
  | _ ->
    let a =
      match t.mode with
      | Exact -> (
        match List.find_opt (fun (k, _) -> Bitset.equal k kept) t.memo with
        | Some (_, a) -> a
        | None ->
          let a =
            reference ~seed:t.seed ?domains:t.domains ~method_:t.method_ view ~kept
          in
          t.computes <- t.computes + 1;
          t.memo <- (Bitset.copy kept, a) :: take (memo_cap - 1) t.memo;
          a)
      | Warm -> warm_compute t view ~kept
    in
    t.last <- Some (Bitset.copy kept, a);
    a

let force t ~kept a =
  t.pair <- None;
  t.last_lambda2 <- None;
  t.last <- Some (Bitset.copy kept, a)

let reconcile t view ~kept =
  t.pair <- None;
  t.last_lambda2 <- None;
  let a = reference ~seed:t.seed ?domains:t.domains ~method_:t.method_ view ~kept in
  t.computes <- t.computes + 1;
  t.last <- Some (Bitset.copy kept, a);
  a
