open Fn_graph

(** Cached expansion estimates with spectral warm starts.

    The engine answers [alpha?] with the node expansion of the current
    Prune survivor set.  Two modes:

    - {!Exact} (default): every estimate is history-free — a fresh
      seed-derived rng, cold spectral start — so the value depends
      only on (view, kept mask, seed).  This is what the from-scratch
      differential reference computes, so incremental and scratch
      agree byte for byte; a small mask-keyed memo makes churn that
      revisits a recent survivor set free.
    - {!Warm}: the previous estimate's Fiedler pair seeds the next
      power iteration when its residual on the new mask stays under
      [residual_tol] (cold fallback otherwise).  Faster under drift
      but history-dependent — the periodic audit reconciles it back
      to the cold reference and counts divergences.

    Implicit views have no spectral path; both modes use the
    deterministic ball-witness portfolio there. *)

type mode = Exact | Warm

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type t

val create : ?mode:mode -> ?residual_tol:float -> ?domains:int -> int -> t
(** [create seed].  Defaults: {!Exact}, [residual_tol] 0.25. *)

val mode : t -> mode

val computes : t -> int
(** Full estimates performed (cache hits excluded). *)

val warm_hits : t -> int
val cold_falls : t -> int
(** Warm-mode starts accepted / rejected by the residual gate. *)

val reference : seed:int -> ?domains:int -> Gview.t -> kept:Bitset.t -> float
(** The history-free alpha of a mask — node expansion estimate with a
    fresh rng derived from [seed].  Fewer than 2 survivors yield 0;
    an implicit view with no ball witness yields [infinity].  The
    audit and the differential tests call this directly. *)

val query : t -> Gview.t -> kept:Bitset.t -> float
(** Alpha for [kept], cached against the most recent mask (and the
    memo, in {!Exact} mode). *)

val force : t -> kept:Bitset.t -> float -> unit
(** Seed the cache with an externally computed reference value for
    [kept] and drop the warm pair — what the audit does after it has
    already paid for the scratch estimate. *)

val reconcile : t -> Gview.t -> kept:Bitset.t -> float
(** Cold recompute: drop the warm pair, estimate [kept] from scratch,
    re-seed the cache with the result.  The audit's repair hook. *)
