open Fn_graph

(** Cached expansion estimates with spectral warm starts.

    The engine answers [alpha?] with the node expansion of the current
    Prune survivor set.  Two modes:

    - {!Exact} (default): every estimate is history-free — a fresh
      seed-derived rng, cold spectral start — so the value depends
      only on (view, kept mask, seed).  This is what the from-scratch
      differential reference computes, so incremental and scratch
      agree byte for byte; a small mask-keyed memo makes churn that
      revisits a recent survivor set free.
    - {!Warm}: the previous estimate's Fiedler pair seeds the next
      spectral solve when {e both} vectors' residuals on the new mask
      stay under [residual_tol] (cold fallback otherwise — a stale
      second vector must not ride through on the first one's health).
      Warm starts are method-aware: the cached pair seeds whichever
      backend {!Fn_expansion.Spectral.Method.select} picks, and the
      cached lambda2 rides along as the gap hint steering that
      selection.  Faster under drift but history-dependent — the
      periodic audit reconciles it back to the cold reference and
      counts divergences.

    Implicit views keep the deterministic ball-witness portfolio in
    both modes. *)

type mode = Exact | Warm

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

type t

val create :
  ?mode:mode ->
  ?residual_tol:float ->
  ?domains:int ->
  ?method_:Fn_expansion.Spectral.Method.t ->
  int ->
  t
(** [create seed].  Defaults: {!Exact}, [residual_tol] 0.25,
    [method_] [Auto] (resolved per mask by
    {!Fn_expansion.Spectral.Method.select}). *)

val mode : t -> mode

val computes : t -> int
(** Full estimates performed (cache hits excluded). *)

val warm_hits : t -> int
val cold_falls : t -> int
(** Warm-mode starts accepted / rejected by the residual gate. *)

val reference :
  seed:int ->
  ?domains:int ->
  ?method_:Fn_expansion.Spectral.Method.t ->
  Gview.t ->
  kept:Bitset.t ->
  float
(** The history-free alpha of a mask — node expansion estimate with a
    fresh rng derived from [seed].  Fewer than 2 survivors yield 0;
    an implicit view with no ball witness yields [infinity].  The
    audit and the differential tests call this directly. *)

val query : t -> Gview.t -> kept:Bitset.t -> float
(** Alpha for [kept], cached against the most recent mask (and the
    memo, in {!Exact} mode). *)

val force : t -> kept:Bitset.t -> float -> unit
(** Seed the cache with an externally computed reference value for
    [kept] and drop the warm pair — what the audit does after it has
    already paid for the scratch estimate. *)

val reconcile : t -> Gview.t -> kept:Bitset.t -> float
(** Cold recompute: drop the warm pair, estimate [kept] from scratch,
    re-seed the cache with the result.  The audit's repair hook. *)
