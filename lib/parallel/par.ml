let default_domains () =
  let n = Domain.recommended_domain_count () in
  max 1 (min 8 n)

exception Job_failed of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Job_failed { index; exn } ->
      Some (Printf.sprintf "Par.Job_failed(job %d: %s)" index (Printexc.to_string exn))
    | _ -> None)

let wrap_failure ~index exn bt = Printexc.raise_with_backtrace (Job_failed { index; exn }) bt

let map ?(obs = Fn_obs.Sink.null) ?domains f a =
  let n = Array.length a in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let workers = min domains n in
  if workers <= 1 || n < 2 then
    Array.mapi
      (fun i x -> try f x with e -> wrap_failure ~index:i e (Printexc.get_raw_backtrace ()))
      a
  else begin
    let out = Array.make n None in
    let chunk = (n + workers - 1) / workers in
    let seconds = Array.make workers 0.0 in
    (* First failure per worker, as (job index, exn, backtrace): the
       joining domain re-raises the lowest-index one with its job
       index attached instead of a context-free exception. *)
    let failed = Array.make workers None in
    let run_chunk w () =
      let start_ns = if Fn_obs.Sink.enabled obs then Fn_obs.Clock.now_ns () else 0 in
      let lo = w * chunk in
      let hi = min n (lo + chunk) - 1 in
      let i = ref lo in
      (try
         while !i <= hi do
           out.(!i) <- Some (f a.(!i));
           incr i
         done
       with e -> failed.(w) <- Some (!i, e, Printexc.get_raw_backtrace ()));
      if Fn_obs.Sink.enabled obs then begin
        let dt = Fn_obs.Clock.elapsed_s ~since_ns:start_ns in
        seconds.(w) <- dt;
        Fn_obs.Span.instant obs "par.domain"
          ~fields:
            [
              ("domain", Fn_obs.Sink.Int w);
              ("lo", Fn_obs.Sink.Int lo);
              ("hi", Fn_obs.Sink.Int hi);
              ("seconds", Fn_obs.Sink.Float dt);
            ]
      end
    in
    let handles = Array.init workers (fun w -> Domain.spawn (run_chunk w)) in
    Array.iter Domain.join handles;
    let first_failure =
      Array.fold_left
        (fun acc cur ->
          match (acc, cur) with
          | Some (i, _, _), Some (j, _, _) -> if j < i then cur else acc
          | None, _ -> cur
          | _, None -> acc)
        None failed
    in
    (match first_failure with
    | Some (index, exn, bt) -> wrap_failure ~index exn bt
    | None -> ());
    if Fn_obs.Sink.enabled obs then begin
      let slowest = Array.fold_left max 0.0 seconds in
      let mean = Array.fold_left ( +. ) 0.0 seconds /. float_of_int workers in
      Fn_obs.Metrics.set (Fn_obs.Metrics.gauge "par.domains") (float_of_int workers);
      Fn_obs.Metrics.set (Fn_obs.Metrics.gauge "par.max_seconds") slowest;
      Fn_obs.Metrics.set
        (Fn_obs.Metrics.gauge "par.imbalance")
        (if mean > 0.0 then slowest /. mean else 1.0)
    end;
    Array.map
      (function Some v -> v | None -> assert false)
      out
  end

let init ?obs ?domains n f = map ?obs ?domains f (Array.init n Fun.id)

module Pool = struct
  (* Long-lived worker domains for iterative kernels (the spectral
     matvec runs the same parallel-for a thousand times): spawning a
     domain per Par.map call would dominate the loop body, so a pool
     spawns once and republishes work through a mutex and conditions.

     Protocol: the caller stores the job in [job], resets [pending]
     to the worker count and bumps [epoch] under the mutex; each
     worker blocks on [wake] until the epoch moves, runs the job with
     its worker index and decrements [pending], signalling [drained]
     at zero.  The caller participates as worker 0 and blocks on
     [drained].  Workers block rather than spin so an oversubscribed
     machine (domains > cores — in the extreme, a 1-core box) is not
     slowed by idle workers burning their timeslices. *)
  type t = {
    spawned : int;
    mutex : Mutex.t;
    wake : Condition.t;
    drained : Condition.t;
    mutable job : int -> unit;
    mutable epoch : int;
    mutable pending : int;
    mutable stop : bool;
    failures : exn option array;
    mutable handles : unit Domain.t array;
  }

  let noop (_ : int) = ()

  let worker t w =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mutex;
      while t.epoch = !seen && not t.stop do
        Condition.wait t.wake t.mutex
      done;
      if t.stop then begin
        Mutex.unlock t.mutex;
        running := false
      end
      else begin
        seen := t.epoch;
        let job = t.job in
        Mutex.unlock t.mutex;
        (try job w with e -> t.failures.(w - 1) <- Some e);
        Mutex.lock t.mutex;
        t.pending <- t.pending - 1;
        if t.pending = 0 then Condition.signal t.drained;
        Mutex.unlock t.mutex
      end
    done

  let create ?domains () =
    let size = match domains with Some d -> max 1 d | None -> default_domains () in
    let t =
      {
        spawned = size - 1;
        mutex = Mutex.create ();
        wake = Condition.create ();
        drained = Condition.create ();
        job = noop;
        epoch = 0;
        pending = 0;
        stop = false;
        failures = Array.make (max 1 (size - 1)) None;
        handles = [||];
      }
    in
    t.handles <- Array.init (size - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
    t

  let size t = t.spawned + 1

  let run t f =
    if t.spawned = 0 || t.stop then f 0
    else begin
      Array.fill t.failures 0 t.spawned None;
      Mutex.lock t.mutex;
      t.pending <- t.spawned;
      t.job <- f;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      let mine =
        try
          f 0;
          None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.drained t.mutex
      done;
      t.job <- noop;
      Mutex.unlock t.mutex;
      match mine with
      | Some (e, bt) -> Printexc.raise_with_backtrace (Job_failed { index = 0; exn = e }) bt
      | None ->
        let raised = ref None in
        for w = t.spawned - 1 downto 0 do
          match t.failures.(w) with
          | Some e -> raised := Some (w + 1, e)
          | None -> ()
        done;
        (match !raised with
        | Some (index, exn) -> raise (Job_failed { index; exn })
        | None -> ())
    end

  let shutdown t =
    Mutex.lock t.mutex;
    let first = not t.stop in
    t.stop <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    if first then begin
      Array.iter Domain.join t.handles;
      t.handles <- [||]
    end

  let with_pool ?domains f =
    let t = create ?domains () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let trials ?obs ?domains ~rng n job =
  let rngs = Fn_prng.Rng.split_n rng n in
  map ?obs ?domains job rngs
