let default_domains () =
  let n = Domain.recommended_domain_count () in
  max 1 (min 8 n)

exception Job_failed of { index : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Job_failed { index; exn } ->
      Some (Printf.sprintf "Par.Job_failed(job %d: %s)" index (Printexc.to_string exn))
    | _ -> None)

let wrap_failure ~index exn bt = Printexc.raise_with_backtrace (Job_failed { index; exn }) bt

let map ?(obs = Fn_obs.Sink.null) ?domains f a =
  let n = Array.length a in
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let workers = min domains n in
  if workers <= 1 || n < 2 then
    Array.mapi
      (fun i x -> try f x with e -> wrap_failure ~index:i e (Printexc.get_raw_backtrace ()))
      a
  else begin
    let out = Array.make n None in
    let chunk = (n + workers - 1) / workers in
    let seconds = Array.make workers 0.0 in
    (* First failure per worker, as (job index, exn, backtrace): the
       joining domain re-raises the lowest-index one with its job
       index attached instead of a context-free exception. *)
    let failed = Array.make workers None in
    let run_chunk w () =
      let start_ns = if Fn_obs.Sink.enabled obs then Fn_obs.Clock.now_ns () else 0 in
      let lo = w * chunk in
      let hi = min n (lo + chunk) - 1 in
      let i = ref lo in
      (try
         while !i <= hi do
           out.(!i) <- Some (f a.(!i));
           incr i
         done
       with e -> failed.(w) <- Some (!i, e, Printexc.get_raw_backtrace ()));
      if Fn_obs.Sink.enabled obs then begin
        let dt = Fn_obs.Clock.elapsed_s ~since_ns:start_ns in
        seconds.(w) <- dt;
        Fn_obs.Span.instant obs "par.domain"
          ~fields:
            [
              ("domain", Fn_obs.Sink.Int w);
              ("lo", Fn_obs.Sink.Int lo);
              ("hi", Fn_obs.Sink.Int hi);
              ("seconds", Fn_obs.Sink.Float dt);
            ]
      end
    in
    let handles = Array.init workers (fun w -> Domain.spawn (run_chunk w)) in
    Array.iter Domain.join handles;
    let first_failure =
      Array.fold_left
        (fun acc cur ->
          match (acc, cur) with
          | Some (i, _, _), Some (j, _, _) -> if j < i then cur else acc
          | None, _ -> cur
          | _, None -> acc)
        None failed
    in
    (match first_failure with
    | Some (index, exn, bt) -> wrap_failure ~index exn bt
    | None -> ());
    if Fn_obs.Sink.enabled obs then begin
      let slowest = Array.fold_left max 0.0 seconds in
      let mean = Array.fold_left ( +. ) 0.0 seconds /. float_of_int workers in
      Fn_obs.Metrics.set (Fn_obs.Metrics.gauge "par.domains") (float_of_int workers);
      Fn_obs.Metrics.set (Fn_obs.Metrics.gauge "par.max_seconds") slowest;
      Fn_obs.Metrics.set
        (Fn_obs.Metrics.gauge "par.imbalance")
        (if mean > 0.0 then slowest /. mean else 1.0)
    end;
    Array.map
      (function Some v -> v | None -> assert false)
      out
  end

let init ?obs ?domains n f = map ?obs ?domains f (Array.init n Fun.id)

let trials ?obs ?domains ~rng n job =
  let rngs = Fn_prng.Rng.split_n rng n in
  map ?obs ?domains job rngs
