(** Minimal multicore helpers over OCaml 5 [Domain].

    The workloads in this repository are embarrassingly parallel
    Monte-Carlo trials, so all we need is a deterministic fork-join
    map.  Determinism matters: results must not depend on how the
    runtime schedules domains, so randomized jobs receive
    pre-{!Fn_prng.Rng.split} generators indexed by job number.

    {2 The [?domains] contract, and how to stay inside it}

    Every entry point here promises: [~domains:1] is byte-identical to
    the sequential path, and any [domains > 1] yields one fixed result
    regardless of domain count or scheduling.  That holds only if the
    forked closure is a pure function of its input — the scope-aware
    lint tier checks this mechanically.  The blessed patterns:

    - {b State}: return values and combine after the join.  A closure
      that mutates a captured [ref]/array/[Hashtbl] races and trips
      [par-capture-mutation]; closure-local state, [Atomic], and
      Mutex-held sections are recognized as safe, as are disjoint
      per-worker slot writes under {!Pool.run} ([slots.(w) <- ...]).
    - {b Randomness}: never draw from a captured generator (that trips
      [rng-unsplit-in-par]).  Pre-split one stream per index with
      {!Fn_prng.Rng.split_n} before the fork and use [rngs.(i)] — or
      let {!trials} do exactly that for you.
    - {b Float reduction}: float [+.] is non-associative, so
      accumulating across domains makes the sum schedule-dependent
      ([par-float-reduce]).  {!map} to per-trial floats, then reduce
      sequentially: [Array.fold_left ( +. ) 0.0 parts]. *)

val default_domains : unit -> int
(** Number of domains to use by default: the runtime's recommended
    count, clamped to [1, 8].  Override per call with [?domains]. *)

exception Job_failed of { index : int; exn : exn }
(** Raised on the joining domain when a job raised: [index] is the
    input position whose job failed and [exn] the original exception
    (re-raised with the worker's backtrace).  When jobs fail in
    several chunks, the lowest failing index wins deterministically.
    The sequential fallback raises the same exception, so callers see
    one failure shape whatever the parallelism. *)

val map : ?obs:Fn_obs.Sink.t -> ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f a] applies [f] to every element, distributing contiguous
    chunks over domains.  Result order matches input order.  [f] must
    not rely on shared mutable state.  Falls back to sequential
    execution when [domains <= 1] or the array is small.

    With an enabled [obs] sink each worker emits a ["par.domain"]
    instant (chunk bounds and wall seconds) and the fork-join sets the
    [par.domains] / [par.max_seconds] / [par.imbalance] gauges in
    {!Fn_obs.Metrics.default}; instrumentation never changes results.

    A job exception does not kill the fork-join silently: every
    spawned domain is still joined, then {!Job_failed} is raised with
    the failing job's index.  For retry-instead-of-raise semantics see
    [Fn_resilience.Supervisor.trials]. *)

val init : ?obs:Fn_obs.Sink.t -> ?domains:int -> int -> (int -> 'b) -> 'b array
(** [init n f] is [map f [|0; ...; n-1|]] without building the input
    array. *)

module Pool : sig
  (** Long-lived worker domains for iterative parallel-for kernels.

      {!map} spawns fresh domains per call — fine for Monte-Carlo
      trials, ruinous inside an iteration that runs the same small
      parallel region a thousand times (the spectral matvec).  A pool
      spawns [domains - 1] workers once; each {!run} republishes a
      job to them and blocks until all are done.  Idle workers block
      on a condition variable rather than spin, so oversubscription
      (domains > cores) degrades gracefully.

      Determinism: {!run} imposes no ordering between workers, so
      jobs must write disjoint state (e.g. disjoint index ranges of a
      shared array).  Under that discipline results are identical for
      every pool size, including 1. *)

  type t

  val create : ?domains:int -> unit -> t
  (** [create ~domains ()] spawns [domains - 1] worker domains
      ([domains] defaults to {!default_domains}; clamped to >= 1).
      A pool of size 1 spawns nothing and {!run} executes inline. *)

  val size : t -> int
  (** Total workers including the calling domain (= [domains]). *)

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f w] on every worker [w] in
      [0 .. size - 1] ([f 0] on the calling domain) and returns when
      all are finished.  A job exception is re-raised as
      {!Job_failed} with the lowest failing worker index; the barrier
      still completes first. *)

  val shutdown : t -> unit
  (** Stop and join the workers.  Idempotent.  Using {!run} after
      [shutdown] executes only worker 0 inline. *)

  val with_pool : ?domains:int -> (t -> 'a) -> 'a
  (** Scoped {!create} / {!shutdown} (shutdown also on raise). *)
end

val trials :
  ?obs:Fn_obs.Sink.t ->
  ?domains:int ->
  rng:Fn_prng.Rng.t ->
  int ->
  (Fn_prng.Rng.t -> 'b) ->
  'b array
(** [trials ~rng n job] runs [job] [n] times, each with an independent
    generator split from [rng].  The split happens sequentially before
    any domain is spawned, so the result is identical whatever the
    parallelism. *)
