open Fn_graph
open Fn_prng

type curve = { occupied_largest : int array; total : int; n : int }

let sweep_done obs kind start_ns c =
  if Fn_obs.Sink.enabled obs then begin
    Fn_obs.Span.instant obs "percolation.sweep"
      ~fields:
        [
          ("kind", Fn_obs.Sink.Str kind);
          ("total", Fn_obs.Sink.Int c.total);
          ("n", Fn_obs.Sink.Int c.n);
          ( "largest",
            Fn_obs.Sink.Int
              (if c.total = 0 then 1 else c.occupied_largest.(c.total - 1)) );
          ("seconds", Fn_obs.Sink.Float (Fn_obs.Clock.elapsed_s ~since_ns:start_ns));
        ];
    Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "percolation.sweeps")
  end;
  c

(* The sweeps run on either [Gview.t] arm: site occupation only needs
   the neighbor iterator, and the bond sweep needs one flat endpoint
   array (inherent to Newman–Ziff's random edge order) which the
   implicit arm collects from the generator without ever building a
   CSR structure. *)

let site_run_v ?(obs = Fn_obs.Sink.null) rng view =
  let start_ns = if Fn_obs.Sink.enabled obs then Fn_obs.Clock.now_ns () else 0 in
  let n = Gview.num_nodes view in
  let order = Rng.permutation rng n in
  let uf = Union_find.create n in
  let occupied = Array.make n false in
  let out = Array.make (max n 1) 1 in
  let absorb v w = if occupied.(w) then ignore (Union_find.union uf v w) in
  (match view with
  | Gview.Csr g ->
    Array.iteri
      (fun k v ->
        occupied.(v) <- true;
        Graph.iter_neighbors g v (fun w -> absorb v w);
        out.(k) <- Union_find.max_component_size uf)
      order
  | Gview.Implicit i ->
    let iter = i.Gview.iter_neighbors in
    Array.iteri
      (fun k v ->
        occupied.(v) <- true;
        iter v (fun w -> absorb v w);
        out.(k) <- Union_find.max_component_size uf)
      order);
  sweep_done obs "site" start_ns { occupied_largest = out; total = n; n }

let site_run ?obs rng g = site_run_v ?obs rng (Gview.Csr g)

let bond_run_edges ?(obs = Fn_obs.Sink.null) rng ~n edges =
  let start_ns = if Fn_obs.Sink.enabled obs then Fn_obs.Clock.now_ns () else 0 in
  let m = Array.length edges in
  Rng.shuffle rng edges;
  let uf = Union_find.create n in
  let out = Array.make (max m 1) 1 in
  Array.iteri
    (fun k (u, v) ->
      ignore (Union_find.union uf u v);
      out.(k) <- Union_find.max_component_size uf)
    edges;
  sweep_done obs "bond" start_ns { occupied_largest = out; total = m; n }

let bond_run ?obs rng g = bond_run_edges ?obs rng ~n:(Graph.num_nodes g) (Graph.edges g)

let bond_run_v ?obs rng view =
  match view with
  | Gview.Csr g -> bond_run ?obs rng g
  | Gview.Implicit _ ->
    let m = Gview.num_edges view in
    let edges = Array.make (max 1 m) (0, 0) in
    let k = ref 0 in
    Gview.iter_edges view (fun u v ->
        edges.(!k) <- (u, v);
        incr k);
    let edges = Array.sub edges 0 m in
    (* lex order matches [Graph.edges] on the materialized twin, so
       the shuffled sequence — and the whole curve — is byte-identical
       across arms for the same rng *)
    Array.sort Graph.compare_int_pair edges;
    bond_run_edges ?obs rng ~n:(Gview.num_nodes view) edges

let gamma_at c p =
  if p < 0.0 || p > 1.0 then invalid_arg "Newman_ziff.gamma_at: p out of [0,1]";
  if c.n = 0 then 0.0
  else begin
    let k = int_of_float (Float.round (p *. float_of_int c.total)) in
    if k <= 0 then if c.total = 0 then 0.0 else 1.0 /. float_of_int c.n
    else begin
      let k = min k c.total in
      float_of_int c.occupied_largest.(k - 1) /. float_of_int c.n
    end
  end

let average_gamma ?obs ?domains ~rng ~runs make_curve p =
  let values =
    Fn_parallel.Par.trials ?obs ?domains ~rng runs (fun r -> gamma_at (make_curve r) p)
  in
  let n = float_of_int runs in
  let mean = Array.fold_left ( +. ) 0.0 values /. n in
  let var =
    if runs < 2 then 0.0
    else
      Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
      /. (n -. 1.0)
  in
  (mean, sqrt var)
