open Fn_graph
open Fn_prng

(** Newman–Ziff percolation sweeps.

    A single run inserts sites (or bonds) one at a time in random
    order, maintaining the largest cluster with a union-find, which
    yields the whole curve "largest component fraction vs number of
    occupied sites/bonds" in O((n + m) α(n)) — far cheaper than
    re-sampling the graph at every probability.  Canonical-ensemble
    values γ(p) are obtained by evaluating the curve at k = round(p·N)
    (the binomial distribution concentrates tightly for our sizes;
    Monte-Carlo noise dominates the smoothing error). *)

type curve = {
  occupied_largest : int array;
  (** index k: largest cluster size after k+1 occupations *)
  total : int;  (** number of sites (or bonds) *)
  n : int;  (** number of nodes of the graph *)
}

val site_run : ?obs:Fn_obs.Sink.t -> Rng.t -> Graph.t -> curve
(** One site-percolation sweep: nodes appear in random order; an edge
    is live when both endpoints are occupied.  An enabled [obs] sink
    gets one ["percolation.sweep"] instant per completed sweep —
    progress reporting when many sweeps run in parallel. *)

val bond_run : ?obs:Fn_obs.Sink.t -> Rng.t -> Graph.t -> curve
(** One bond-percolation sweep: all nodes present, edges appear in
    random order — the G^(p) model of the paper's Section 1.1. *)

val site_run_v : ?obs:Fn_obs.Sink.t -> Rng.t -> Gview.t -> curve
(** {!site_run} on either representation.  Curves are byte-identical
    across arms: cluster sizes do not depend on neighbor order. *)

val bond_run_v : ?obs:Fn_obs.Sink.t -> Rng.t -> Gview.t -> curve
(** {!bond_run} on either representation.  The implicit arm collects
    the flat endpoint array from the generator (O(m) tuples — inherent
    to the random edge order; no CSR structure is built) and sorts it
    into [Graph.edges] order so the same rng yields the same curve as
    the materialized twin. *)

val gamma_at : curve -> float -> float
(** [gamma_at c p]: largest-component fraction of the {e node} count
    when each site/bond is occupied with probability [p]. *)

val average_gamma :
  ?obs:Fn_obs.Sink.t ->
  ?domains:int ->
  rng:Rng.t ->
  runs:int ->
  (Rng.t -> curve) ->
  float ->
  float * float
(** Mean and sample standard deviation of [gamma_at _ p] over
    independent runs, executed in parallel. *)
