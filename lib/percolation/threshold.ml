
type mode = Site | Bond

type result = { p_star : float; level : float; runs : int }

let curves ?(obs = Fn_obs.Sink.null) ?domains ~rng ~runs mode g =
  let make = match mode with Site -> Newman_ziff.site_run | Bond -> Newman_ziff.bond_run in
  Fn_parallel.Par.trials ~obs ?domains ~rng runs (fun r -> make ~obs r g)

let mean_gamma cs p =
  let total = Array.fold_left (fun acc c -> acc +. Newman_ziff.gamma_at c p) 0.0 cs in
  total /. float_of_int (Array.length cs)

let estimate ?(obs = Fn_obs.Sink.null) ?domains ?(runs = 32) ?(level = 0.4)
    ?(tolerance = 1e-3) ~rng mode g =
  if runs < 1 then invalid_arg "Threshold.estimate: need runs >= 1";
  let on = Fn_obs.Sink.enabled obs in
  let sp =
    if on then
      Fn_obs.Span.enter obs "percolation.threshold"
        ~fields:
          [
            ("mode", Fn_obs.Sink.Str (match mode with Site -> "site" | Bond -> "bond"));
            ("runs", Fn_obs.Sink.Int runs);
            ("level", Fn_obs.Sink.Float level);
          ]
    else Fn_obs.Span.null
  in
  let cs = curves ~obs ?domains ~rng ~runs mode g in
  let lo = ref 0.0 and hi = ref 1.0 in
  (* γ is monotone in p on a fixed curve set, so bisection is sound *)
  while !hi -. !lo > tolerance do
    let mid = (!lo +. !hi) /. 2.0 in
    if mean_gamma cs mid >= level then hi := mid else lo := mid
  done;
  let p_star = (!lo +. !hi) /. 2.0 in
  if on then Fn_obs.Span.exit sp ~fields:[ ("p_star", Fn_obs.Sink.Float p_star) ];
  { p_star; level; runs }

let gamma_curve ?obs ?domains ?(runs = 32) ~rng mode g ps =
  let cs = curves ?obs ?domains ~rng ~runs mode g in
  List.map
    (fun p ->
      let values = Array.map (fun c -> Newman_ziff.gamma_at c p) cs in
      let n = float_of_int runs in
      let mean = Array.fold_left ( +. ) 0.0 values /. n in
      let var =
        if runs < 2 then 0.0
        else
          Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
          /. (n -. 1.0)
      in
      (p, mean, sqrt var))
    ps
