open Fn_graph
open Fn_prng

(** Critical-probability estimation.

    The estimator finds the p at which the mean largest-component
    fraction γ(p) crosses a target level (default 0.5·γ(1)), by
    bisection over Newman-Ziff curves.  For the families in §1.1 of
    the paper this reproduces the known thresholds (experiment E8):
    K_n → 1/(n-1)·Θ(1), 2-D mesh bonds → 1/2, hypercube bonds → 1/d. *)

type mode = Site | Bond

type result = {
  p_star : float;
  level : float;  (** the γ level whose crossing defines p_star *)
  runs : int;
}

val estimate :
  ?obs:Fn_obs.Sink.t ->
  ?domains:int ->
  ?runs:int ->
  ?level:float ->
  ?tolerance:float ->
  rng:Rng.t ->
  mode ->
  Graph.t ->
  result
(** Defaults: [runs] 32 curves (shared by every probe), [level] 0.4,
    [tolerance] 1e-3 on p.  The same set of curves is evaluated at
    every probe point, so the bisection sees a monotone function.
    An enabled [obs] sink wraps the estimate in a
    ["percolation.threshold"] span with per-sweep progress instants
    from {!Newman_ziff}. *)

val gamma_curve :
  ?obs:Fn_obs.Sink.t ->
  ?domains:int ->
  ?runs:int ->
  rng:Rng.t ->
  mode ->
  Graph.t ->
  float list ->
  (float * float * float) list
(** [(p, mean γ, std γ)] at each requested probability. *)
