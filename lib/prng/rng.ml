type t = Xoshiro256.t

let of_int64 seed = Xoshiro256.of_seed seed

let create seed = of_int64 (Splitmix64.mix (Int64.of_int seed))

let copy = Xoshiro256.copy

let restore = Xoshiro256.restore

let bits64 = Xoshiro256.next

let split t =
  (* Seed a fresh SplitMix from the parent's output: the child is a
     deterministic function of the parent state and advancing the
     parent decorrelates subsequent splits. *)
  let sm = Splitmix64.create (Xoshiro256.next t) in
  ignore (Splitmix64.next sm);
  Xoshiro256.of_splitmix sm

let split_n t k = Array.init k (fun _ -> split t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask the high-quality low bits of xoshiro** *)
    Int64.to_int (Int64.logand (bits64 t) (Int64.of_int (bound - 1)))
  else begin
    (* rejection sampling on 62-bit values to avoid modulo bias *)
    let mask = 0x3FFF_FFFF_FFFF_FFFFL in
    let limit = Int64.sub mask (Int64.rem mask (Int64.of_int bound)) in
    let rec draw () =
      let v = Int64.logand (bits64 t) mask in
      if Int64.unsigned_compare v limit <= 0 then Int64.to_int (Int64.rem v (Int64.of_int bound))
      else draw ()
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 high bits -> [0,1) *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v *. 0x1.0p-53

let float t bound = unit_float t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else unit_float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n Fun.id in
  shuffle t a;
  a

let sample t n k =
  if k < 0 || k > n then invalid_arg "Rng.sample: need 0 <= k <= n";
  if 4 * k >= n then begin
    (* dense regime: partial Fisher-Yates over an explicit index array *)
    let a = Array.init n Fun.id in
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* sparse regime: rejection against a hash set *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
