(** Unified random-number interface for the whole library.

    Every randomized algorithm and experiment in faultnet takes an
    [Rng.t] explicitly, so that all results are reproducible from a
    single integer seed.  The generator is splittable: {!split}
    derives an independent child stream deterministically, which is
    how parallel Monte-Carlo trials obtain per-domain generators. *)

type t
(** Mutable generator. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val of_int64 : int64 -> t
(** [of_int64 seed] builds a generator from a 64-bit seed. *)

val copy : t -> t
(** Independent duplicate with identical future output. *)

val restore : t -> from:t -> unit
(** [restore t ~from] rolls the state of [t] back (or forward) to the
    state of [from], in place.  The supervision layer uses
    [copy]-then-[restore] to retry a failed task without perturbing
    the random stream its siblings will observe: snapshot before the
    attempt, restore before re-running. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of
    the future output of [t].  Deterministic: the child depends only
    on the state of [t] at the time of the call. *)

val split_n : t -> int -> t array
(** [split_n t k] returns [k] pairwise-independent children.

    This is the pre-split pattern the [rng-unsplit-in-par] lint rule
    steers parallel code toward: split {e before} the fork, index the
    children inside it —
    {[
      let rngs = Rng.split_n rng n in
      Par.init n (fun i -> trial rngs.(i))
    ]}
    Each index then owns a private stream, so the result is the same
    for every domain count and schedule.  Drawing from a single shared
    [t] across domains would race on its state {e and} make results
    interleaving-dependent. *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound); requires [bound > 0].
    Uses rejection sampling, so it is exactly uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val unit_float : t -> float
(** Uniform on [0, 1), with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)

val sample : t -> int -> int -> int array
(** [sample t n k] draws [k] distinct integers uniformly from
    [0..n-1], in random order.  Requires [0 <= k <= n].  Uses a
    partial Fisher-Yates for large [k] and hash-rejection for small
    [k], so both regimes are O(k) expected space. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
