(** xoshiro256** pseudo-random number generator.

    Blackman & Vigna's general-purpose 64-bit generator: 256 bits of
    state, period 2^256 - 1, excellent statistical quality.  This is
    the workhorse generator behind {!Rng}. *)

type t
(** Mutable generator state. *)

val of_seed : int64 -> t
(** [of_seed seed] initialises the four state words from a
    {!Splitmix64} stream seeded with [seed], as recommended by the
    authors.  The resulting state is never all-zero. *)

val of_splitmix : Splitmix64.t -> t
(** [of_splitmix sm] draws the four state words from [sm]. *)

val copy : t -> t
(** Independent duplicate of the state. *)

val restore : t -> from:t -> unit
(** [restore t ~from] overwrites the state of [t] with the state of
    [from] in place, so [t]'s future output continues from wherever
    [from] stands.  Together with {!copy} this gives snapshot/rollback
    over a shared generator. *)

val next : t -> int64
(** [next t] returns the next 64-bit value and advances the state. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps, yielding a stream that does
    not overlap the previous one for 2^128 draws.  Used to derive
    parallel sub-streams deterministically. *)
