type event = Pass | Raise_fault | Delay of float

exception Injected of { scope : string; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected { scope; attempt } ->
      Some (Printf.sprintf "Fn_resilience.Chaos.Injected(%s, attempt %d)" scope attempt)
    | _ -> None)

(* A tiny keyed hash over (seed, scope, attempt) via the SplitMix64
   finalizer: cheap, stateless, and order-independent — the decision
   for a given attempt never depends on which domain runs it or on
   what ran before. *)
let derive ~chaos_seed ~scope ~attempt =
  let h = ref (Fn_prng.Splitmix64.mix (Int64.of_int chaos_seed)) in
  String.iter
    (fun c -> h := Fn_prng.Splitmix64.mix (Int64.logxor !h (Int64.of_int (Char.code c))))
    scope;
  h := Fn_prng.Splitmix64.mix (Int64.logxor !h (Int64.of_int (attempt + 1)));
  Fn_prng.Rng.of_int64 !h

let plan ~(policy : Policy.t) ~scope ~attempt =
  if policy.Policy.chaos <= 0.0 then Pass
  else begin
    let rng = derive ~chaos_seed:policy.Policy.chaos_seed ~scope ~attempt in
    if not (Fn_prng.Rng.bernoulli rng policy.Policy.chaos) then Pass
    else if Fn_prng.Rng.bool rng then Raise_fault
    else Delay (0.001 +. Fn_prng.Rng.float rng 0.004)
  end

let record ~obs ~scope ~attempt kind extra =
  if Fn_obs.Sink.enabled obs then begin
    Fn_obs.Metrics.incr (Fn_obs.Metrics.counter "resilience.chaos_injections");
    Fn_obs.Span.instant obs "resilience.chaos"
      ~fields:
        ([
           ("scope", Fn_obs.Sink.Str scope);
           ("attempt", Fn_obs.Sink.Int attempt);
           ("inject", Fn_obs.Sink.Str kind);
         ]
        @ extra)
  end

let apply ~obs ~scope ~attempt = function
  | Pass -> ()
  | Delay d ->
    record ~obs ~scope ~attempt "delay" [ ("seconds", Fn_obs.Sink.Float d) ];
    Unix.sleepf d
  | Raise_fault ->
    record ~obs ~scope ~attempt "raise" [];
    raise (Injected { scope; attempt })
