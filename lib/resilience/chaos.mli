(** Deterministic fault injection — the harness's own adversary.

    The paper subjects networks to adversarial and random faults; this
    module does the same to the experiment runner, so the supervisor's
    retry / deadline / journal machinery is exercised on every CI run
    instead of only on the rare real crash.

    Injection decisions are a pure function of
    [(chaos_seed, scope, attempt)] — independent of domain scheduling
    and of the experiment's own random stream.  A supervised task that
    survives its injected faults therefore produces byte-identical
    results with chaos on or off, which is exactly the property
    [@chaos-smoke] checks. *)

type event =
  | Pass  (** no injection for this attempt *)
  | Raise_fault  (** raise {!Injected} before the task body runs *)
  | Delay of float  (** sleep this many seconds first (1-5 ms), tripping tight deadlines *)

exception Injected of { scope : string; attempt : int }
(** The synthetic crash.  Ordinary code never catches it; only the
    supervisor does (as a {!Failure.Crashed}), which is the point. *)

val plan : policy:Policy.t -> scope:string -> attempt:int -> event
(** Decide what happens to attempt [attempt] (0-based) of [scope].
    With [policy.chaos = 0.] this is always {!Pass} and costs no
    random draws.  Injections split evenly between {!Raise_fault} and
    {!Delay}. *)

val apply : obs:Fn_obs.Sink.t -> scope:string -> attempt:int -> event -> unit
(** Execute the plan: no-op, sleep, or raise {!Injected}; emits a
    ["resilience.chaos"] instant and bumps the
    [resilience.chaos_injections] counter when a sink is enabled. *)
