type t =
  | Timeout of float
  | Crashed of exn * string
  | Cancelled
  | Gave_up of int

exception
  Supervision_failed of {
    scope : string;
    failure : t;
    causes : t list;
  }

let to_string = function
  | Timeout s -> Printf.sprintf "timeout after %.3fs" s
  | Crashed (e, _) -> "crashed: " ^ Printexc.to_string e
  | Cancelled -> "cancelled"
  | Gave_up attempts -> Printf.sprintf "gave up after %d attempt(s)" attempts

let to_json t =
  let open Fn_obs.Jsonx in
  match t with
  | Timeout s -> Obj [ ("kind", Str "timeout"); ("seconds", Float s) ]
  | Crashed (e, bt) ->
    Obj [ ("kind", Str "crashed"); ("exn", Str (Printexc.to_string e)); ("backtrace", Str bt) ]
  | Cancelled -> Obj [ ("kind", Str "cancelled") ]
  | Gave_up attempts -> Obj [ ("kind", Str "gave_up"); ("attempts", Int attempts) ]

let retryable = function
  | Out_of_memory | Stack_overflow | Supervision_failed _ -> false
  | _ -> true

let () =
  Printexc.register_printer (function
    | Supervision_failed { scope; failure; causes } ->
      Some
        (Printf.sprintf "Fn_resilience: task %S %s%s" scope (to_string failure)
           (match causes with
           | [] -> ""
           | cs -> " [" ^ String.concat "; " (List.map to_string cs) ^ "]"))
    | _ -> None)
