(** Structured failure taxonomy for supervised execution.

    Every way a supervised task can end other than success is one of
    these four constructors.  The taxonomy is deliberately closed: the
    supervisor, the observability events, the journal and the tests
    all agree on exactly what can go wrong. *)

type t =
  | Timeout of float
      (** The attempt finished but took longer than the policy
          deadline; the payload is the measured wall seconds.  OCaml
          cannot preempt a running domain, so deadlines are detected
          at attempt completion (and exercised by chaos-injected
          delays), not by killing the task mid-flight. *)
  | Crashed of exn * string
      (** The attempt raised; the payload is the exception and its
          captured backtrace (empty when backtrace recording is
          off). *)
  | Cancelled  (** The cancellation probe returned [true] before the attempt. *)
  | Gave_up of int
      (** Every attempt failed; the payload is the number of attempts
          made (first try + retries). *)

exception
  Supervision_failed of {
    scope : string;  (** which supervised task failed, e.g. ["E5/p=0.05"] *)
    failure : t;  (** the final verdict, usually {!Gave_up} or {!Cancelled} *)
    causes : t list;  (** per-attempt failures, oldest first *)
  }
(** Raised by [Supervisor.protect] / [Supervisor.trials] when a task
    is out of attempts.  Registered with a human-readable
    [Printexc] printer. *)

val to_string : t -> string
(** One-line rendering, e.g. ["crashed: Not_found"] or
    ["timeout after 1.203s"]. *)

val to_json : t -> Fn_obs.Jsonx.t
(** [{"kind":"timeout","seconds":...}]-style object for traces and
    journals. *)

val retryable : exn -> bool
(** [false] for exceptions a retry cannot fix and must not swallow:
    [Out_of_memory], [Stack_overflow] and nested
    {!Supervision_failed} (an inner scope already exhausted its own
    budget).  The supervisor re-raises these instead of recording a
    {!Crashed}. *)
