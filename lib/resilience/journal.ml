module J = Fn_obs.Jsonx

type t = {
  path : string;
  oc : out_channel;
  lock : Mutex.t;
  trials : (string * int, J.t) Hashtbl.t;
  outcomes : (string, J.t) Hashtbl.t;
  recovered : int;
  torn : int;
}

type 'a codec = {
  encode : 'a -> J.t;
  decode : J.t -> 'a option;
}

let int_codec =
  { encode = (fun n -> J.Int n); decode = (function J.Int n -> Some n | _ -> None) }

(* Hex float literals ("%h") round-trip exactly; Jsonx's decimal
   rendering does not, and resume must be bit-exact. *)
let float_codec =
  {
    encode = (fun x -> J.Str (Printf.sprintf "%h" x));
    decode =
      (function
      | J.Str s -> (
        try Some (Scanf.sscanf s "%h%!" Fun.id)
        with Scanf.Scan_failure _ | End_of_file | Stdlib.Failure _ -> None)
      | J.Float x -> Some x
      | J.Int n -> Some (float_of_int n)
      | _ -> None);
  }

let string_codec =
  { encode = (fun s -> J.Str s); decode = (function J.Str s -> Some s | _ -> None) }

let json_codec = { encode = Fun.id; decode = (fun v -> Some v) }

let array_codec c =
  {
    encode = (fun a -> J.List (Array.to_list (Array.map c.encode a)));
    decode =
      (function
      | J.List items ->
        let decoded = List.map c.decode items in
        if List.for_all Option.is_some decoded then
          Some (Array.of_list (List.map Option.get decoded))
        else None
      | _ -> None);
  }

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Classify one journal line.  Anything that does not parse into a
   known shape is "torn" — most likely the tail of a line cut short by
   a kill — and is skipped rather than treated as fatal. *)
type line = Meta of J.t | Trial of string * int * J.t | Outcome of string * J.t | Torn

let classify line =
  match J.parse line with
  | None -> Torn
  | Some json -> (
    match J.member "kind" json with
    | Some (J.Str "meta") -> Meta json
    | Some (J.Str "trial") -> (
      match (J.member "scope" json, J.member "index" json, J.member "value" json) with
      | Some (J.Str scope), Some (J.Int index), Some value -> Trial (scope, index, value)
      | _ -> Torn)
    | Some (J.Str "outcome") -> (
      match (J.member "id" json, J.member "value" json) with
      | Some (J.Str id), Some value -> Outcome (id, value)
      | _ -> Torn)
    | _ -> Torn)

(* A file killed mid-write ends without a newline; appending straight
   after would glue the next record onto the torn fragment. *)
let ends_with_newline path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      len = 0
      ||
      (seek_in ic (len - 1);
       input_char ic = '\n'))

let meta_line meta =
  J.to_string (J.Obj (("kind", J.Str "meta") :: ("version", J.Int 1) :: meta))

(* The stored header must agree with the requested binding on every
   requested key; extra informational fields in the header are fine. *)
let check_meta ~requested stored =
  let mismatch =
    List.find_opt
      (fun (key, want) ->
        match J.member key stored with
        | Some got -> J.to_string got <> J.to_string want
        | None -> true)
      requested
  in
  match mismatch with
  | None -> Ok ()
  | Some (key, want) ->
    Error
      (Printf.sprintf "journal meta mismatch on %S: journal has %s, run has %s" key
         (match J.member key stored with Some got -> J.to_string got | None -> "nothing")
         (J.to_string want))

let open_ ~path ~meta =
  let trials = Hashtbl.create 64 in
  let outcomes = Hashtbl.create 16 in
  let lines = if Sys.file_exists path then read_lines path else [] in
  let classified = List.map classify lines in
  let torn =
    List.length (List.filter (function Torn -> true | _ -> false) classified)
  in
  let recovered = ref 0 in
  let meta_check =
    List.fold_left
      (fun acc l ->
        match (acc, l) with
        | Error _, _ -> acc
        | Ok _, Meta stored -> check_meta ~requested:meta stored
        | Ok _, Trial (scope, index, value) ->
          incr recovered;
          Hashtbl.replace trials (scope, index) value;
          acc
        | Ok _, Outcome (id, value) ->
          incr recovered;
          Hashtbl.replace outcomes id value;
          acc
        | Ok _, Torn -> acc)
      (Ok ()) classified
  in
  match meta_check with
  | Error _ as e -> e
  | Ok () ->
    let has_meta = List.exists (function Meta _ -> true | _ -> false) classified in
    if (not has_meta) && lines <> [] && torn < List.length lines then
      Error (Printf.sprintf "journal %s has records but no meta header" path)
    else begin
      let fresh = not has_meta in
      let needs_newline = (not fresh) && not (ends_with_newline path) in
      let oc =
        if fresh then open_out_gen [ Open_wronly; Open_trunc; Open_creat ] 0o644 path
        else open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
      in
      if fresh then begin
        output_string oc (meta_line meta);
        output_char oc '\n';
        flush oc
      end
      else if needs_newline then begin
        (* terminate the torn tail so the next record starts clean *)
        output_char oc '\n';
        flush oc
      end;
      Ok
        {
          path;
          oc;
          lock = Mutex.create ();
          trials;
          outcomes;
          recovered = !recovered;
          torn;
        }
    end

let append t json =
  with_lock t.lock (fun () ->
      output_string t.oc (J.to_string json);
      output_char t.oc '\n';
      flush t.oc)

let record_trial t ~scope ~index value =
  with_lock t.lock (fun () -> Hashtbl.replace t.trials (scope, index) value);
  append t
    (J.Obj
       [
         ("kind", J.Str "trial");
         ("scope", J.Str scope);
         ("index", J.Int index);
         ("value", value);
       ])

let find_trial t ~scope ~index =
  with_lock t.lock (fun () -> Hashtbl.find_opt t.trials (scope, index))

let record_outcome t ~id value =
  with_lock t.lock (fun () -> Hashtbl.replace t.outcomes id value);
  append t (J.Obj [ ("kind", J.Str "outcome"); ("id", J.Str id); ("value", value) ])

let find_outcome t ~id = with_lock t.lock (fun () -> Hashtbl.find_opt t.outcomes id)
let path t = t.path
let recovered t = t.recovered
let torn t = t.torn

let close t =
  with_lock t.lock (fun () ->
      flush t.oc;
      close_out_noerr t.oc)
