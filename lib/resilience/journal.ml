module J = Fn_obs.Jsonx

type t = {
  path : string;
  mutable oc : out_channel;
  lock : Mutex.t;
  meta_json : J.t; (* the governing header line, kept for compaction rewrites *)
  trials : (string * int, J.t) Hashtbl.t;
  snapshots : (string, int * J.t) Hashtbl.t;
  outcomes : (string, J.t) Hashtbl.t;
  recovered : int;
  torn : int;
}

type 'a codec = {
  encode : 'a -> J.t;
  decode : J.t -> 'a option;
}

let int_codec =
  { encode = (fun n -> J.Int n); decode = (function J.Int n -> Some n | _ -> None) }

(* Hex float literals ("%h") round-trip exactly; Jsonx's decimal
   rendering does not, and resume must be bit-exact. *)
let float_codec =
  {
    encode = (fun x -> J.Str (Printf.sprintf "%h" x));
    decode =
      (function
      | J.Str s -> (
        try Some (Scanf.sscanf s "%h%!" Fun.id)
        with Scanf.Scan_failure _ | End_of_file | Stdlib.Failure _ -> None)
      | J.Float x -> Some x
      | J.Int n -> Some (float_of_int n)
      | _ -> None);
  }

let string_codec =
  { encode = (fun s -> J.Str s); decode = (function J.Str s -> Some s | _ -> None) }

let json_codec = { encode = Fun.id; decode = (fun v -> Some v) }

let array_codec c =
  {
    encode = (fun a -> J.List (Array.to_list (Array.map c.encode a)));
    decode =
      (function
      | J.List items ->
        let decoded = List.map c.decode items in
        if List.for_all Option.is_some decoded then
          Some (Array.of_list (List.map Option.get decoded))
        else None
      | _ -> None);
  }

let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Classify one journal line.  Anything that does not parse into a
   known shape is "torn" — most likely the tail of a line cut short by
   a kill — and is skipped rather than treated as fatal. *)
type line =
  | Meta of J.t
  | Trial of string * int * J.t
  | Snapshot of string * int * J.t
  | Outcome of string * J.t
  | Torn

let classify line =
  match J.parse line with
  | None -> Torn
  | Some json -> (
    match J.member "kind" json with
    | Some (J.Str "meta") -> Meta json
    | Some (J.Str "trial") -> (
      match (J.member "scope" json, J.member "index" json, J.member "value" json) with
      | Some (J.Str scope), Some (J.Int index), Some value -> Trial (scope, index, value)
      | _ -> Torn)
    | Some (J.Str "snapshot") -> (
      match (J.member "scope" json, J.member "upto" json, J.member "value" json) with
      | Some (J.Str scope), Some (J.Int upto), Some value -> Snapshot (scope, upto, value)
      | _ -> Torn)
    | Some (J.Str "outcome") -> (
      match (J.member "id" json, J.member "value" json) with
      | Some (J.Str id), Some value -> Outcome (id, value)
      | _ -> Torn)
    | _ -> Torn)

(* A file killed mid-write ends without a newline; appending straight
   after would glue the next record onto the torn fragment. *)
let ends_with_newline path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      len = 0
      ||
      (seek_in ic (len - 1);
       input_char ic = '\n'))

let meta_line meta =
  J.to_string (J.Obj (("kind", J.Str "meta") :: ("version", J.Int 1) :: meta))

(* The stored header must agree with the requested binding on every
   requested key; extra informational fields in the header are fine.
   The refusal lists every divergent binding with both sides — when a
   resume is refused over one of seed/topology/alpha/epsilon/mode, the
   operator sees the whole diff, not just the first offending key. *)
let check_meta ~requested stored =
  let mismatches =
    List.filter_map
      (fun (key, want) ->
        let got =
          match J.member key stored with
          | Some got -> J.to_string got
          | None -> "nothing"
        in
        if String.equal got (J.to_string want) then None
        else Some (Printf.sprintf "%s: journal has %s, run has %s" key got (J.to_string want)))
      requested
  in
  match mismatches with
  | [] -> Ok ()
  | _ :: _ ->
    Error ("journal meta mismatch — " ^ String.concat "; " mismatches)

(* Where [compact] stages its rewrite.  A process killed between the
   tmp write and the rename leaves this file behind; [open_] discards
   it, so the old journal — still complete — governs recovery. *)
let compact_tmp_path path = path ^ ".compact.tmp"

let open_ ~path ~meta =
  let trials = Hashtbl.create 64 in
  let snapshots = Hashtbl.create 4 in
  let outcomes = Hashtbl.create 16 in
  (* a stale compaction staging file is an aborted rewrite, never state *)
  if Sys.file_exists (compact_tmp_path path) then Sys.remove (compact_tmp_path path);
  let lines = if Sys.file_exists path then read_lines path else [] in
  let classified = List.map classify lines in
  let torn =
    List.length (List.filter (function Torn -> true | _ -> false) classified)
  in
  let recovered = ref 0 in
  let meta_check =
    List.fold_left
      (fun acc l ->
        match (acc, l) with
        | Error _, _ -> acc
        | Ok _, Meta stored -> check_meta ~requested:meta stored
        | Ok _, Trial (scope, index, value) ->
          incr recovered;
          Hashtbl.replace trials (scope, index) value;
          acc
        | Ok _, Snapshot (scope, upto, value) ->
          incr recovered;
          Hashtbl.replace snapshots scope (upto, value);
          acc
        | Ok _, Outcome (id, value) ->
          incr recovered;
          Hashtbl.replace outcomes id value;
          acc
        | Ok _, Torn -> acc)
      (Ok ()) classified
  in
  match meta_check with
  | Error _ as e -> e
  | Ok () ->
    let has_meta = List.exists (function Meta _ -> true | _ -> false) classified in
    if (not has_meta) && lines <> [] && torn < List.length lines then
      Error (Printf.sprintf "journal %s has records but no meta header" path)
    else begin
      let fresh = not has_meta in
      let needs_newline = (not fresh) && not (ends_with_newline path) in
      let oc =
        if fresh then open_out_gen [ Open_wronly; Open_trunc; Open_creat ] 0o644 path
        else open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
      in
      if fresh then begin
        output_string oc (meta_line meta);
        output_char oc '\n';
        flush oc
      end
      else if needs_newline then begin
        (* terminate the torn tail so the next record starts clean *)
        output_char oc '\n';
        flush oc
      end;
      let meta_json =
        if fresh then
          match J.parse (meta_line meta) with Some j -> j | None -> J.Obj []
        else
          match List.find_opt (function Meta _ -> true | _ -> false) classified with
          | Some (Meta stored) -> stored
          | _ -> J.Obj []
      in
      Ok
        {
          path;
          oc;
          lock = Mutex.create ();
          meta_json;
          trials;
          snapshots;
          outcomes;
          recovered = !recovered;
          torn;
        }
    end

let append t json =
  with_lock t.lock (fun () ->
      output_string t.oc (J.to_string json);
      output_char t.oc '\n';
      flush t.oc)

let trial_record ~scope ~index value =
  J.Obj
    [
      ("kind", J.Str "trial");
      ("scope", J.Str scope);
      ("index", J.Int index);
      ("value", value);
    ]

let outcome_record ~id value =
  J.Obj [ ("kind", J.Str "outcome"); ("id", J.Str id); ("value", value) ]

let record_trial t ~scope ~index value =
  with_lock t.lock (fun () -> Hashtbl.replace t.trials (scope, index) value);
  append t (trial_record ~scope ~index value)

let find_trial t ~scope ~index =
  with_lock t.lock (fun () -> Hashtbl.find_opt t.trials (scope, index))

let snapshot_record ~scope ~upto value =
  J.Obj
    [
      ("kind", J.Str "snapshot");
      ("scope", J.Str scope);
      ("upto", J.Int upto);
      ("value", value);
    ]

let find_snapshot t ~scope = with_lock t.lock (fun () -> Hashtbl.find_opt t.snapshots scope)

(* Rewrite the journal as [meta header; snapshot; suffix records]:
   trials of [scope] below [upto] are summarized by [snapshot] and
   dropped, everything else is retained.  The rewrite is staged in
   [compact_tmp_path] and installed with one atomic rename — a kill at
   any point leaves either the old journal (tmp discarded on next
   open) or the new one, never a torn hybrid.  Retained records are
   sorted (scope, then index / id), so the rewritten file is a
   deterministic function of the journal's contents.

   [on_tmp_written] is a test-only fault-injection point: it runs
   after the staged file is complete and before the rename, exactly
   where a SIGKILL would separate the two. *)
let compact ?(on_tmp_written = fun () -> ()) t ~scope ~upto ~snapshot =
  with_lock t.lock (fun () ->
      let tmp = compact_tmp_path t.path in
      match
        let oc' = open_out_gen [ Open_wronly; Open_trunc; Open_creat ] 0o644 tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc')
          (fun () ->
            let put json =
              output_string oc' (J.to_string json);
              output_char oc' '\n'
            in
            put t.meta_json;
            let snaps =
              Hashtbl.fold
                (fun sc sv acc -> if String.equal sc scope then acc else (sc, sv) :: acc)
                t.snapshots []
            in
            let snaps = (scope, (upto, snapshot)) :: snaps in
            List.iter
              (fun (sc, (k, v)) -> put (snapshot_record ~scope:sc ~upto:k v))
              (List.sort (fun (a, _) (b, _) -> String.compare a b) snaps);
            let keep =
              Hashtbl.fold
                (fun (sc, i) v acc ->
                  if String.equal sc scope && i < upto then acc else ((sc, i), v) :: acc)
                t.trials []
            in
            List.iter
              (fun ((sc, i), v) -> put (trial_record ~scope:sc ~index:i v))
              (List.sort
                 (fun ((sa, ia), _) ((sb, ib), _) ->
                   match String.compare sa sb with 0 -> Int.compare ia ib | c -> c)
                 keep);
            let outs = Hashtbl.fold (fun id v acc -> (id, v) :: acc) t.outcomes [] in
            List.iter
              (fun (id, v) -> put (outcome_record ~id v))
              (List.sort (fun (a, _) (b, _) -> String.compare a b) outs);
            flush oc')
      with
      | exception Sys_error m -> Error ("journal compaction failed: " ^ m)
      | () -> (
        on_tmp_written ();
        match Sys.rename tmp t.path with
        | exception Sys_error m -> Error ("journal compaction rename failed: " ^ m)
        | () ->
          (* the old channel still points at the replaced inode *)
          close_out_noerr t.oc;
          t.oc <- open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 t.path;
          Hashtbl.iter
            (fun (sc, i) _ ->
              if String.equal sc scope && i < upto then Hashtbl.remove t.trials (sc, i))
            (Hashtbl.copy t.trials);
          Hashtbl.replace t.snapshots scope (upto, snapshot);
          Ok ()))

let record_outcome t ~id value =
  with_lock t.lock (fun () -> Hashtbl.replace t.outcomes id value);
  append t (outcome_record ~id value)

let find_outcome t ~id = with_lock t.lock (fun () -> Hashtbl.find_opt t.outcomes id)
let path t = t.path
let recovered t = t.recovered
let torn t = t.torn

let close t =
  with_lock t.lock (fun () ->
      flush t.oc;
      close_out_noerr t.oc)
