(** Append-only JSONL checkpoint journal for resumable sweeps.

    One line per completed unit of work: trial rows
    ([{"kind":"trial","scope":...,"index":...,"value":...}]) written
    by [Supervisor.trials], and outcome rows
    ([{"kind":"outcome","id":"E5","value":{...}}]) written by
    [Fn_experiments.Registry.run_entry] when an experiment finishes.
    Every record is flushed before the call returns, so a killed
    process loses at most the line it was writing — and {!open_}
    skips a torn final line instead of refusing the file.

    The first line is a meta header binding the journal to the run
    parameters that determine results (seed, quick).  Re-opening with
    different binding meta is an error: resuming a seed-1 sweep into a
    seed-2 journal would silently splice two different experiments. *)

type t

type 'a codec = {
  encode : 'a -> Fn_obs.Jsonx.t;
  decode : Fn_obs.Jsonx.t -> 'a option;  (** [None] = unreadable, treat as not journaled *)
}
(** How [Supervisor.trials] serializes one trial result.  Decoding
    must be exact — a resumed sweep has to reproduce the uninterrupted
    run byte for byte — hence the hex-float codecs below. *)

val int_codec : int codec

val float_codec : float codec
(** Floats round-trip through ["%h"] hex literals: exact to the last
    bit, unlike the human-oriented decimal rendering of
    {!Fn_obs.Jsonx.to_string}. *)

val string_codec : string codec

val json_codec : Fn_obs.Jsonx.t codec
(** Identity — for callers that already speak JSON. *)

val array_codec : 'a codec -> 'a array codec

val open_ : path:string -> meta:(string * Fn_obs.Jsonx.t) list -> (t, string) result
(** Open (creating or resuming) the journal at [path].  On an
    existing journal, every well-formed line is loaded for
    {!find_trial} / {!find_outcome} replay and appending continues
    after it; the stored meta header must agree with [meta] on every
    given key.  [Error] carries a human-readable reason (meta
    mismatch, unreadable header). *)

val check_meta :
  requested:(string * Fn_obs.Jsonx.t) list -> Fn_obs.Jsonx.t -> (unit, string) result
(** The binding discipline by itself: does [stored] (a header object)
    agree with [requested] on every requested key?  The [Error] lists
    {e every} divergent key with both the stored and the requested
    value.  Shared with {!Snapshot}, whose files carry the same
    header. *)

val record_trial : t -> scope:string -> index:int -> Fn_obs.Jsonx.t -> unit
(** Append one completed trial.  Thread-safe; flushes. *)

val find_trial : t -> scope:string -> index:int -> Fn_obs.Jsonx.t option

val compact :
  ?on_tmp_written:(unit -> unit) ->
  t ->
  scope:string ->
  upto:int ->
  snapshot:Fn_obs.Jsonx.t ->
  (unit, string) result
(** Rewrite the journal as [meta header; snapshot; suffix]: trials of
    [scope] with index below [upto] are replaced by the single
    [snapshot] value (the caller's own encoding of the state they add
    up to), so recovery cost becomes O(snapshot + suffix) instead of
    O(history).  The rewrite is staged in {!compact_tmp_path} and
    installed by one atomic rename: a crash before the rename leaves
    the old journal governing (the staging file is discarded by the
    next {!open_}), a crash after it leaves the compacted one —
    never a torn hybrid.  Appending continues on the new file.

    [on_tmp_written] is a test-only fault-injection hook that runs
    between the staged write and the rename; raising from it aborts
    the compaction at exactly the point a SIGKILL would. *)

val find_snapshot : t -> scope:string -> (int * Fn_obs.Jsonx.t) option
(** The compaction snapshot for [scope], as [(upto, value)]: [value]
    stands for trials [0 .. upto-1], which are no longer stored. *)

val compact_tmp_path : string -> string
(** Where {!compact} stages its rewrite for journal [path]; exposed so
    tests can plant or inspect an aborted staging file. *)

val record_outcome : t -> id:string -> Fn_obs.Jsonx.t -> unit
(** Append one completed experiment outcome.  Thread-safe; flushes. *)

val find_outcome : t -> id:string -> Fn_obs.Jsonx.t option

val path : t -> string

val recovered : t -> int
(** Records successfully loaded from a pre-existing file at open time. *)

val torn : t -> int
(** Malformed lines skipped at open time (normally 0 or, after a kill
    mid-write, 1). *)

val close : t -> unit
