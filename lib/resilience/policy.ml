type t = {
  deadline_s : float option;
  retries : int;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_cap_s : float;
  chaos : float;
  chaos_seed : int;
}

let default =
  {
    deadline_s = None;
    retries = 2;
    backoff_base_s = 0.01;
    backoff_factor = 2.0;
    backoff_cap_s = 1.0;
    chaos = 0.0;
    chaos_seed = 0;
  }

let make ?deadline_s ?(retries = default.retries) ?(backoff_base_s = default.backoff_base_s)
    ?(backoff_factor = default.backoff_factor) ?(backoff_cap_s = default.backoff_cap_s)
    ?(chaos = default.chaos) ?(chaos_seed = default.chaos_seed) () =
  (match deadline_s with
  | Some d when d <= 0.0 -> invalid_arg "Policy.make: deadline_s must be positive"
  | _ -> ());
  if retries < 0 then invalid_arg "Policy.make: retries must be >= 0";
  if backoff_base_s < 0.0 || backoff_cap_s < 0.0 || backoff_factor < 1.0 then
    invalid_arg "Policy.make: backoff must be non-negative with factor >= 1";
  if chaos < 0.0 || chaos > 1.0 then invalid_arg "Policy.make: chaos must be in [0,1]";
  { deadline_s; retries; backoff_base_s; backoff_factor; backoff_cap_s; chaos; chaos_seed }

let backoff_s t ~attempt =
  if attempt < 1 then invalid_arg "Policy.backoff_s: attempt is 1-based";
  Float.min t.backoff_cap_s
    (t.backoff_base_s *. (t.backoff_factor ** float_of_int (attempt - 1)))

let to_json t =
  let open Fn_obs.Jsonx in
  Obj
    [
      ("deadline_s", match t.deadline_s with None -> Null | Some d -> Float d);
      ("retries", Int t.retries);
      ("backoff_base_s", Float t.backoff_base_s);
      ("backoff_factor", Float t.backoff_factor);
      ("backoff_cap_s", Float t.backoff_cap_s);
      ("chaos", Float t.chaos);
      ("chaos_seed", Int t.chaos_seed);
    ]
