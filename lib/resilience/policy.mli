(** The knobs of supervised execution, as one plain record.

    A policy travels with [Workload.config] from the command line down
    to every supervised call site.  {!default} is inert by
    construction: no deadline, no chaos, and retries that can only
    fire if a task actually crashes — so threading a policy through a
    code path cannot change its fault-free behavior. *)

type t = {
  deadline_s : float option;
      (** Per-attempt wall-clock budget; [None] = unlimited.  Checked
          when the attempt completes (cooperative, not preemptive). *)
  retries : int;  (** extra attempts after the first; 0 = fail fast *)
  backoff_base_s : float;  (** pause before the first retry *)
  backoff_factor : float;  (** multiplier per further retry *)
  backoff_cap_s : float;  (** upper bound on any single pause *)
  chaos : float;
      (** probability in [0,1] that an attempt gets a fault injected
          (exception or delay); 0 = chaos off *)
  chaos_seed : int;
      (** chaos stream seed, independent of the experiment seed so
          injection patterns can vary while results stay fixed *)
}

val default : t
(** [{deadline_s = None; retries = 2; backoff_base_s = 0.01;
    backoff_factor = 2.0; backoff_cap_s = 1.0; chaos = 0.0;
    chaos_seed = 0}] *)

val make :
  ?deadline_s:float ->
  ?retries:int ->
  ?backoff_base_s:float ->
  ?backoff_factor:float ->
  ?backoff_cap_s:float ->
  ?chaos:float ->
  ?chaos_seed:int ->
  unit ->
  t
(** Keyword constructor over {!default}.
    @raise Invalid_argument on a negative retry count, a non-positive
    deadline, a negative backoff, or chaos outside [0,1]. *)

val backoff_s : t -> attempt:int -> float
(** Pause before retry [attempt] (1-based): deterministically
    [backoff_base_s *. backoff_factor ^ (attempt - 1)], capped at
    [backoff_cap_s].  No jitter — retry schedules must be reproducible
    like everything else in this repository. *)

val to_json : t -> Fn_obs.Jsonx.t
(** Informational rendering for journal headers and traces. *)
