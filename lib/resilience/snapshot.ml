module J = Fn_obs.Jsonx

(* One self-describing JSON object per file, staged tmp+rename so a
   reader never observes a half-written snapshot.  The header fields
   are the same binding discipline as Journal's meta line; the caller
   payload lives under "value". *)

let document ~meta value =
  J.Obj
    ((("kind", J.Str "snapshot-file") :: ("version", J.Int 1) :: meta)
    @ [ ("value", value) ])

let tmp_path path = path ^ ".tmp"

let write ~path ~meta value =
  let tmp = tmp_path path in
  match
    let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat ] 0o644 tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (J.to_string (document ~meta value));
        output_char oc '\n';
        flush oc)
  with
  | exception Sys_error m -> Error ("snapshot write failed: " ^ m)
  | () -> (
    match Sys.rename tmp path with
    | exception Sys_error m -> Error ("snapshot rename failed: " ^ m)
    | () -> Ok ())

let read ~path ~meta =
  if not (Sys.file_exists path) then Error ("no snapshot at " ^ path)
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> match input_line ic with line -> Some line | exception End_of_file -> None)
    with
    | exception Sys_error m -> Error ("snapshot read failed: " ^ m)
    | None -> Error (path ^ " is empty")
    | Some line -> (
      match J.parse line with
      | None -> Error (path ^ " is not a JSON snapshot")
      | Some json -> (
        match J.member "kind" json with
        | Some (J.Str "snapshot-file") -> (
          match Journal.check_meta ~requested:meta json with
          | Error _ as e -> e
          | Ok () -> (
            match J.member "value" json with
            | Some v -> Ok v
            | None -> Error (path ^ " has no value field")))
        | _ -> Error (path ^ " is not a snapshot file")))
