(** Atomic one-object JSON snapshot files.

    A snapshot is a single JSON object holding a caller payload under
    ["value"], plus the same meta-binding header discipline as
    {!Journal}: the writer records the parameters that determine the
    payload (seed, topology, thresholds, ...), and a reader that
    requests a different binding is refused with the full diff.

    Writes are staged to [path ^ ".tmp"] and installed with one
    atomic rename — a process killed mid-write leaves the previous
    snapshot (or no file) intact, never a torn one.  This is the
    persistence primitive behind journal compaction payloads and the
    online engine's quarantine post-mortems. *)

val write :
  path:string ->
  meta:(string * Fn_obs.Jsonx.t) list ->
  Fn_obs.Jsonx.t ->
  (unit, string) result
(** Atomically replace [path] with a snapshot of the given payload and
    binding meta.  [Error] carries the failed syscall's message; the
    target is untouched on error. *)

val read :
  path:string ->
  meta:(string * Fn_obs.Jsonx.t) list ->
  (Fn_obs.Jsonx.t, string) result
(** Load the payload, refusing a snapshot whose header disagrees with
    [meta] on any requested key (see {!Journal.check_meta}). *)

val tmp_path : string -> string
(** The staging path {!write} uses, exposed for tests. *)
