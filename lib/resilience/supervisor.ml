module Rng = Fn_prng.Rng
module Sink = Fn_obs.Sink
module Span = Fn_obs.Span
module Metrics = Fn_obs.Metrics

let failure_counter = function
  | Failure.Timeout _ -> "resilience.timeouts"
  | Failure.Crashed _ -> "resilience.crashes"
  | Failure.Cancelled -> "resilience.cancellations"
  | Failure.Gave_up _ -> "resilience.gave_up"

let emit_failed ~obs ~scope ~attempt failure =
  if Sink.enabled obs then begin
    Metrics.incr (Metrics.counter (failure_counter failure));
    Span.instant obs "resilience.attempt_failed"
      ~fields:
        [
          ("scope", Sink.Str scope);
          ("attempt", Sink.Int attempt);
          ("failure", Sink.Str (Failure.to_string failure));
        ]
  end

let emit_retry ~obs ~scope ~attempt ~pause =
  if Sink.enabled obs then begin
    Metrics.incr (Metrics.counter "resilience.retries");
    Span.instant obs "resilience.retry"
      ~fields:
        [
          ("scope", Sink.Str scope);
          ("attempt", Sink.Int attempt);
          ("backoff_s", Sink.Float pause);
        ]
  end

let emit_gave_up ~obs ~scope ~attempts =
  if Sink.enabled obs then
    Span.instant obs "resilience.gave_up"
      ~fields:[ ("scope", Sink.Str scope); ("attempts", Sink.Int attempts) ]

(* One attempt: chaos, the task body, then the post-hoc deadline
   check.  Failure rolls the task's rng back to its pre-attempt
   snapshot so the next attempt re-reads the same random stream. *)
let attempt_once ~obs ~(policy : Policy.t) ~scope ~attempt ~rng f =
  let snapshot = Option.map Rng.copy rng in
  let rollback () =
    match (rng, snapshot) with
    | Some r, Some s -> Rng.restore r ~from:s
    | _ -> ()
  in
  let timed = Option.is_some policy.Policy.deadline_s in
  let start_ns = if timed then Fn_obs.Clock.now_ns () else 0 in
  let outcome =
    try
      Chaos.apply ~obs ~scope ~attempt (Chaos.plan ~policy ~scope ~attempt);
      Ok (f ())
    with e when Failure.retryable e ->
      Error (Failure.Crashed (e, Printexc.get_backtrace ()))
  in
  match outcome with
  | Ok v -> (
    match policy.Policy.deadline_s with
    | Some budget ->
      let elapsed = Fn_obs.Clock.elapsed_s ~since_ns:start_ns in
      if elapsed > budget then begin
        rollback ();
        Error (Failure.Timeout elapsed)
      end
      else Ok v
    | None -> Ok v)
  | Error _ as e ->
    rollback ();
    e

(* The retry loop shared by [run] and the sequential phase of
   [trials]: attempt [attempt], then backoff-and-retry on failure
   until the policy is exhausted. *)
let rec supervise ~obs ~policy ~scope ~cancelled ~rng ~attempt ~causes f =
  if cancelled () then begin
    emit_failed ~obs ~scope ~attempt Failure.Cancelled;
    Error (Failure.Cancelled, List.rev causes)
  end
  else
    match attempt_once ~obs ~policy ~scope ~attempt ~rng f with
    | Ok v -> Ok v
    | Error failure ->
      emit_failed ~obs ~scope ~attempt failure;
      let causes = failure :: causes in
      if attempt >= policy.Policy.retries then begin
        emit_gave_up ~obs ~scope ~attempts:(attempt + 1);
        Error (Failure.Gave_up (attempt + 1), List.rev causes)
      end
      else begin
        let next = attempt + 1 in
        let pause = Policy.backoff_s policy ~attempt:next in
        emit_retry ~obs ~scope ~attempt:next ~pause;
        if pause > 0.0 then Unix.sleepf pause;
        supervise ~obs ~policy ~scope ~cancelled ~rng ~attempt:next ~causes f
      end

let never_cancelled () = false

let run ?(obs = Sink.null) ?rng ?(cancelled = never_cancelled) ~policy ~scope f =
  supervise ~obs ~policy ~scope ~cancelled ~rng ~attempt:0 ~causes:[] f

let protect ?obs ?rng ?cancelled ~policy ~scope f =
  match run ?obs ?rng ?cancelled ~policy ~scope f with
  | Ok v -> v
  | Error (failure, causes) ->
    raise (Failure.Supervision_failed { scope; failure; causes })

let trials ?(obs = Sink.null) ?domains ?checkpoint ?(cancelled = never_cancelled)
    ~policy ~scope ~rng n job =
  if n < 0 then invalid_arg "Supervisor.trials: negative trial count";
  let rngs = Rng.split_n rng n in
  let scope_of i = Printf.sprintf "%s[%d]" scope i in
  let record i v =
    match checkpoint with
    | Some (journal, codec) ->
      Journal.record_trial journal ~scope ~index:i (codec.Journal.encode v)
    | None -> ()
  in
  let replay i =
    match checkpoint with
    | Some (journal, codec) -> (
      match Journal.find_trial journal ~scope ~index:i with
      | Some stored -> codec.Journal.decode stored
      | None -> None)
    | None -> None
  in
  let out = Array.make n None in
  let pending = ref [] in
  for i = n - 1 downto 0 do
    match replay i with
    | Some v -> out.(i) <- Some v
    | None -> pending := i :: !pending
  done;
  let pending = Array.of_list !pending in
  let resumed = n - Array.length pending in
  if resumed > 0 && Sink.enabled obs then begin
    Metrics.add (Metrics.counter "resilience.trials_resumed") resumed;
    Span.instant obs "resilience.resume_skip"
      ~fields:
        [ ("scope", Sink.Str scope); ("skipped", Sink.Int resumed); ("total", Sink.Int n) ]
  end;
  (* Phase 1: one parallel attempt per pending trial.  Each job
     captures its own failure as data, so one crashing trial cannot
     kill the fork-join or its siblings; successes are journaled
     immediately, from the worker domain. *)
  let first_attempts =
    Fn_parallel.Par.map ~obs ?domains
      (fun i ->
        let result =
          attempt_once ~obs ~policy ~scope:(scope_of i) ~attempt:0 ~rng:(Some rngs.(i))
            (fun () -> job rngs.(i))
        in
        (match result with Ok v -> record i v | Error _ -> ());
        result)
      pending
  in
  (* Phase 2: only the trials that failed, retried sequentially on the
     joining domain under the normal backoff schedule. *)
  Array.iteri
    (fun k result ->
      let i = pending.(k) in
      match result with
      | Ok v -> out.(i) <- Some v
      | Error first_failure ->
        let scope_i = scope_of i in
        emit_failed ~obs ~scope:scope_i ~attempt:0 first_failure;
        if policy.Policy.retries = 0 then begin
          emit_gave_up ~obs ~scope:scope_i ~attempts:1;
          raise
            (Failure.Supervision_failed
               { scope = scope_i; failure = Failure.Gave_up 1; causes = [ first_failure ] })
        end
        else begin
          let pause = Policy.backoff_s policy ~attempt:1 in
          emit_retry ~obs ~scope:scope_i ~attempt:1 ~pause;
          if pause > 0.0 then Unix.sleepf pause;
          match
            supervise ~obs ~policy ~scope:scope_i ~cancelled ~rng:(Some rngs.(i))
              ~attempt:1
              ~causes:[ first_failure ]
              (fun () -> job rngs.(i))
          with
          | Ok v ->
            record i v;
            out.(i) <- Some v
          | Error (failure, causes) ->
            raise (Failure.Supervision_failed { scope = scope_i; failure; causes })
        end)
    first_attempts;
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Supervisor.trials: missing result (unreachable)")
    out
