(** Supervised execution: deadlines, bounded deterministic retry,
    crash-isolated parallel trials, and checkpoint replay.

    The contract every entry point honors:

    - {b Determinism.}  A supervised task that eventually succeeds
      returns exactly what the unsupervised task would have returned.
      Before each attempt the task's [rng] is snapshotted and on
      failure restored, so a retried task re-reads the same random
      stream; backoff pauses are fixed by the policy (no jitter); and
      chaos decisions are keyed hashes, not draws from the task's
      stream.
    - {b Containment.}  A crash in one parallel trial is captured on
      its own domain and retried sequentially after the fork-join
      completes — it never tears down sibling trials that already did
      their work.
    - {b Honesty.}  When the policy is exhausted the supervisor raises
      {!Failure.Supervision_failed} carrying the complete attempt
      history; nothing is swallowed. *)

val run :
  ?obs:Fn_obs.Sink.t ->
  ?rng:Fn_prng.Rng.t ->
  ?cancelled:(unit -> bool) ->
  policy:Policy.t ->
  scope:string ->
  (unit -> 'a) ->
  ('a, Failure.t * Failure.t list) result
(** Run [f] under [policy].  Attempts are numbered from 0; each gets
    chaos injection (if enabled), then [f], then a post-hoc deadline
    check — OCaml domains cannot be preempted, so a deadline converts
    an over-budget {e completed} attempt into {!Failure.Timeout}
    rather than interrupting it.  On failure the [rng] (if given) is
    rolled back, the backoff pause elapses, and the next attempt runs,
    up to [policy.retries] retries.

    [Error (failure, causes)] gives the final verdict plus every
    per-attempt failure in order.  [cancelled] is polled between
    attempts ([Failure.Cancelled]).  Non-retryable exceptions
    ([Out_of_memory], [Stack_overflow], a nested
    [Supervision_failed]) propagate immediately with their backtrace. *)

val protect :
  ?obs:Fn_obs.Sink.t ->
  ?rng:Fn_prng.Rng.t ->
  ?cancelled:(unit -> bool) ->
  policy:Policy.t ->
  scope:string ->
  (unit -> 'a) ->
  'a
(** {!run}, raising {!Failure.Supervision_failed} instead of
    returning [Error]. *)

val trials :
  ?obs:Fn_obs.Sink.t ->
  ?domains:int ->
  ?checkpoint:Journal.t * 'a Journal.codec ->
  ?cancelled:(unit -> bool) ->
  policy:Policy.t ->
  scope:string ->
  rng:Fn_prng.Rng.t ->
  int ->
  (Fn_prng.Rng.t -> 'a) ->
  'a array
(** [trials ~policy ~scope ~rng n job] runs [job] on [n]
    independently-seeded generators ([Rng.split_n rng n] — results do
    not depend on [domains]) and returns the results in index order.

    Trial [i] is supervised under scope ["scope[i]"].  The first
    attempt of every pending trial runs inside one [Fn_par.map]
    fork-join with per-trial crash capture: a failing trial surfaces
    as data, and only the failures are then retried — sequentially,
    with backoff, on the joining domain.

    With [checkpoint = (journal, codec)], trials already present in
    the journal are replayed instead of re-run, and each fresh success
    is recorded (and flushed) the moment it completes, from whichever
    domain computed it.

    @raise Failure.Supervision_failed on the first trial whose policy
    is exhausted (lowest index wins). *)
